// Command simclient is an authorized client of a similarity-cloud server.
//
//	# Build the encrypted index from a collection file:
//	simclient -addr :4040 -key yeast.key -op insert -data yeast.simcdat
//
//	# Approximate 30-NN of object #5, candidate set 600:
//	simclient -addr :4040 -key yeast.key -op approx -data yeast.simcdat -query 5 -k 30 -cand 600
//
//	# Precise range query:
//	simclient -addr :4040 -key yeast.key -op range -data yeast.simcdat -query 5 -radius 120
//
//	# Precise k-NN (approximate pass + range ρk):
//	simclient -addr :4040 -key yeast.key -op knn -data yeast.simcdat -query 5 -k 10
//
//	# Restricted 1-cell approximate k-NN (the paper's Section 5.4 baseline):
//	simclient -addr :4040 -key yeast.key -op firstcell -data yeast.simcdat -query 5 -k 1
//
//	# Delete objects 100..199 of the collection from the index:
//	simclient -addr :4040 -key yeast.key -op delete -data yeast.simcdat -from 100 -to 200
//
// With -plain the same operations run against a plain (non-encrypted)
// server; no key is needed. -timeout bounds every operation (dial,
// handshake, each round trip) through the context-aware Search API; 0, the
// default, waits indefinitely.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"simcloud/internal/core"
	"simcloud/internal/dataset"
	"simcloud/internal/secret"
	"simcloud/internal/stats"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:4040", "server address")
		keyFile  = flag.String("key", "", "secret key file (encrypted mode)")
		op       = flag.String("op", "", "operation: insert, approx, knn, range, firstcell, delete")
		data     = flag.String("data", "", "collection file (source of objects and queries)")
		queryIdx = flag.Int("query", 0, "index of the query object within the collection")
		k        = flag.Int("k", 10, "number of nearest neighbors")
		cand     = flag.Int("cand", 500, "candidate set size for approximate search")
		radius   = flag.Float64("radius", 1, "range query radius")
		from     = flag.Int("from", 0, "first collection index of the -op delete range")
		to       = flag.Int("to", -1, "one past the last collection index of the -op delete range (-1: end of collection)")
		plain    = flag.Bool("plain", false, "talk to a plain (non-encrypted) server")
		maxLevel = flag.Int("max-level", 8, "index max level (must match the server)")
		dists    = flag.Bool("store-dists", false, "insert with full pivot-distance vectors (precise strategy)")
		timeout  = flag.Duration("timeout", 0, "per-operation deadline (0 = no deadline)")
	)
	flag.Parse()
	if *op == "" || *data == "" {
		fmt.Fprintln(os.Stderr, "simclient: -op and -data are required")
		flag.Usage()
		os.Exit(2)
	}
	ds, err := dataset.LoadFile(*data)
	if err != nil {
		fmt.Fprintf(os.Stderr, "simclient: loading %s: %v\n", *data, err)
		os.Exit(1)
	}
	if *queryIdx < 0 || *queryIdx >= ds.Size() {
		fmt.Fprintf(os.Stderr, "simclient: -query %d out of range [0,%d)\n", *queryIdx, ds.Size())
		os.Exit(2)
	}
	q := ds.Objects[*queryIdx].Vec

	// opCtx bounds one operation with -timeout; every operation (including
	// the dial handshake) gets its own deadline window.
	opCtx := func() (context.Context, context.CancelFunc) {
		if *timeout <= 0 {
			return context.Background(), func() {}
		}
		return context.WithTimeout(context.Background(), *timeout)
	}

	report := func(name string, results []core.Result, costs stats.Costs, err error) {
		if err != nil {
			fmt.Fprintf(os.Stderr, "simclient: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Printf("%s: %d results\n", name, len(results))
		for i, r := range results {
			if i >= 20 {
				fmt.Printf("  ... %d more\n", len(results)-20)
				break
			}
			fmt.Printf("  #%-3d id=%-8d dist=%.6g\n", i+1, r.ID, r.Dist)
		}
		fmt.Printf("costs: %s\n", costs)
	}

	// queryFor maps the CLI operation onto the unified Query value; the
	// same Query runs against either deployment through the Searcher
	// interface.
	queryFor := func() (core.Query, string, bool) {
		switch *op {
		case "approx":
			return core.Query{Kind: core.KindApproxKNN, Vec: q, K: *k, CandSize: *cand}, "approx-knn", true
		case "knn":
			return core.Query{Kind: core.KindKNN, Vec: q, K: *k, CandSize: *cand}, "knn", true
		case "range":
			return core.Query{Kind: core.KindRange, Vec: q, Radius: *radius}, "range", true
		case "firstcell":
			return core.Query{Kind: core.KindFirstCell, Vec: q, K: *k}, "first-cell", true
		}
		return core.Query{}, "", false
	}

	deleteRange := func() []int {
		lo, hi := *from, *to
		if hi < 0 {
			hi = ds.Size()
		}
		if lo < 0 || lo > hi || hi > ds.Size() {
			fmt.Fprintf(os.Stderr, "simclient: delete range [%d,%d) out of collection bounds [0,%d)\n", lo, hi, ds.Size())
			os.Exit(2)
		}
		return []int{lo, hi}
	}

	if *plain {
		ctx, cancel := opCtx()
		client, err := core.DialPlainContext(ctx, *addr)
		cancel()
		if err != nil {
			fmt.Fprintf(os.Stderr, "simclient: %v\n", err)
			os.Exit(1)
		}
		defer client.Close()
		switch *op {
		case "insert":
			ctx, cancel := opCtx()
			costs, err := client.InsertContext(ctx, ds.Objects)
			cancel()
			if err != nil {
				fmt.Fprintf(os.Stderr, "simclient: insert: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("inserted %d objects\ncosts: %s\n", ds.Size(), costs)
		case "delete":
			r := deleteRange()
			ctx, cancel := opCtx()
			deleted, costs, err := client.DeleteContext(ctx, ds.Objects[r[0]:r[1]])
			cancel()
			if err != nil {
				fmt.Fprintf(os.Stderr, "simclient: delete: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("deleted %d of %d referenced objects\ncosts: %s\n", deleted, r[1]-r[0], costs)
		default:
			query, name, ok := queryFor()
			if !ok {
				fmt.Fprintf(os.Stderr, "simclient: unknown op %q\n", *op)
				os.Exit(2)
			}
			ctx, cancel := opCtx()
			res, costs, err := client.Search(ctx, query)
			cancel()
			report(name, res, costs, err)
		}
		return
	}

	if *keyFile == "" {
		fmt.Fprintln(os.Stderr, "simclient: encrypted mode requires -key")
		os.Exit(2)
	}
	blob, err := os.ReadFile(*keyFile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "simclient: reading key: %v\n", err)
		os.Exit(1)
	}
	key, err := secret.Unmarshal(blob)
	if err != nil {
		fmt.Fprintf(os.Stderr, "simclient: parsing key: %v\n", err)
		os.Exit(1)
	}
	dialCtx, dialCancel := opCtx()
	client, err := core.DialEncryptedContext(dialCtx, *addr, key, core.Options{
		MaxLevel:   *maxLevel,
		StoreDists: *dists,
	})
	dialCancel()
	if err != nil {
		fmt.Fprintf(os.Stderr, "simclient: %v\n", err)
		os.Exit(1)
	}
	defer client.Close()

	switch *op {
	case "insert":
		ctx, cancel := opCtx()
		costs, err := client.InsertContext(ctx, ds.Objects)
		cancel()
		if err != nil {
			fmt.Fprintf(os.Stderr, "simclient: insert: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("inserted %d encrypted objects\ncosts: %s\n", ds.Size(), costs)
	case "delete":
		r := deleteRange()
		ctx, cancel := opCtx()
		deleted, costs, err := client.DeleteBatchContext(ctx, ds.Objects[r[0]:r[1]])
		cancel()
		if err != nil {
			fmt.Fprintf(os.Stderr, "simclient: delete: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("deleted %d of %d referenced objects\ncosts: %s\n", deleted, r[1]-r[0], costs)
	default:
		query, name, ok := queryFor()
		if !ok {
			fmt.Fprintf(os.Stderr, "simclient: unknown op %q\n", *op)
			os.Exit(2)
		}
		ctx, cancel := opCtx()
		res, costs, err := client.Search(ctx, query)
		cancel()
		report(name, res, costs, err)
	}
}
