// Command simserver runs a similarity-cloud server.
//
// Encrypted deployment (the server never sees keys, pivots or plaintext):
//
//	simserver -mode encrypted -addr :4040 -pivots 30
//
// Plain deployment (the baseline; the server owns the pivots, supplied via
// the key file — appropriate only for non-sensitive data):
//
//	simserver -mode plain -addr :4040 -key yeast.key
//
// The index parameters must match what clients were configured with (number
// of pivots, max level).
//
// A simserver is also the node role of a multi-node cluster: simcoord
// federates several simservers behind one address (see cmd/simcoord).
// Nodes of a multi-node cluster must run with -eager-root-split (or
// -shards > 1, which implies it) so their promise values stay comparable
// in the coordinator's cross-node merge.
//
// With -wal-dir every acknowledged mutation is appended to a write-ahead
// log before the acknowledgment leaves the server, and a restart replays
// the log — a killed node recovers its pre-crash state, which a replicated
// simcoord cluster (-replicas > 1) relies on when re-admitting it. The log
// composes with -snapshot: a successful shutdown snapshot truncates the
// log, so recovery is snapshot restore plus replay of the tail.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"simcloud/internal/engine"
	"simcloud/internal/mindex"
	"simcloud/internal/secret"
	"simcloud/internal/server"
	"simcloud/internal/wal"
)

func main() {
	var (
		mode     = flag.String("mode", "encrypted", "deployment: encrypted or plain")
		addr     = flag.String("addr", "127.0.0.1:4040", "listen address")
		pivots   = flag.Int("pivots", 30, "number of pivots (must match the client key)")
		maxLevel = flag.Int("max-level", 8, "maximum cell-tree depth")
		bucket   = flag.Int("bucket", 200, "bucket capacity")
		storage  = flag.String("storage", "memory", "bucket storage: memory or disk")
		diskPath = flag.String("disk-path", "", "bucket directory for -storage disk")
		diskMB   = flag.Int("disk-cache-mb", 32, "read-through bucket cache budget in MiB for -storage disk, total across all shards (0 disables)")
		ranking  = flag.String("ranking", "footrule", "cell ranking: footrule or distsum")
		keyFile  = flag.String("key", "", "key file (plain mode only: supplies the pivots)")
		snapshot = flag.String("snapshot", "", "snapshot file: restore on start if present, save on shutdown (encrypted mode with -storage disk)")
		shards   = flag.Int("shards", 1, "index shard count (encrypted mode): >1 partitions the M-Index across independently locked shards")
		autoComp = flag.Float64("auto-compact", 0, "compact a shard when its tombstoned fraction reaches this value in [0,1); 0 leaves compaction to restarts")
		eager    = flag.Bool("eager-root-split", false, "split the root cell on the first insert; required when this server joins a multi-node simcoord cluster (implied by -shards > 1)")
		walDir   = flag.String("wal-dir", "", "write-ahead log directory (encrypted mode): every mutation is logged before it is acknowledged, and a restart replays the log")
		walSync  = flag.String("wal-sync", "always", "WAL durability: always (fsync each append), group (one fsync per commit window — streamed ingests flush before the final ack) or never (OS page cache)")
	)
	flag.Parse()

	cfg := mindex.Config{
		NumPivots:           *pivots,
		MaxLevel:            min(*maxLevel, *pivots),
		BucketCapacity:      *bucket,
		DiskPath:            *diskPath,
		Shards:              *shards,
		EagerRootSplit:      *eager,
		AutoCompactFraction: *autoComp,
	}
	// Config convention: 0 means the library default, negative disables —
	// a 0 on the command line reads as "no cache", so translate it.
	if *diskMB <= 0 {
		cfg.DiskCacheBytes = -1
	} else {
		cfg.DiskCacheBytes = *diskMB << 20
	}
	switch *storage {
	case "memory":
		cfg.Storage = mindex.StorageMemory
	case "disk":
		cfg.Storage = mindex.StorageDisk
	default:
		fmt.Fprintf(os.Stderr, "simserver: unknown storage %q\n", *storage)
		os.Exit(2)
	}
	switch *ranking {
	case "footrule":
		cfg.Ranking = mindex.RankFootrule
	case "distsum":
		cfg.Ranking = mindex.RankDistSum
	default:
		fmt.Fprintf(os.Stderr, "simserver: unknown ranking %q\n", *ranking)
		os.Exit(2)
	}

	if *snapshot != "" && (*mode != "encrypted" || cfg.Storage != mindex.StorageDisk) {
		fmt.Fprintln(os.Stderr, "simserver: -snapshot requires -mode encrypted and -storage disk")
		os.Exit(2)
	}
	if *walDir != "" && *mode != "encrypted" {
		fmt.Fprintln(os.Stderr, "simserver: -wal-dir requires -mode encrypted")
		os.Exit(2)
	}
	walPolicy, perr := wal.ParseSyncPolicy(*walSync)
	if perr != nil {
		fmt.Fprintf(os.Stderr, "simserver: %v\n", perr)
		os.Exit(2)
	}

	var srv *server.Server
	var err error
	switch *mode {
	case "encrypted":
		if *snapshot != "" {
			exists, serr := engine.SnapshotExists(cfg, *snapshot)
			if serr != nil {
				// Files of a different shard layout: refuse to silently
				// start empty over (or mixed with) the persisted data.
				fmt.Fprintf(os.Stderr, "simserver: %v\n", serr)
				os.Exit(1)
			}
			if exists {
				eng, lerr := engine.LoadSnapshot(cfg, *snapshot)
				if lerr != nil {
					// A snapshot that exists but cannot be restored must
					// never be overwritten by the empty index an oblivious
					// start would save on shutdown: exit before serving.
					fmt.Fprintf(os.Stderr, "simserver: restoring snapshot: %v (refusing to start and overwrite it)\n", lerr)
					os.Exit(1)
				}
				srv = server.NewEncryptedWithEngine(eng)
				fmt.Printf("simserver: restored %d entries from %s\n", eng.Size(), *snapshot)
				break
			}
		}
		srv, err = server.NewEncrypted(cfg)
	case "plain":
		if *keyFile == "" {
			fmt.Fprintln(os.Stderr, "simserver: plain mode requires -key to supply the pivots")
			os.Exit(2)
		}
		blob, rerr := os.ReadFile(*keyFile)
		if rerr != nil {
			fmt.Fprintf(os.Stderr, "simserver: reading key: %v\n", rerr)
			os.Exit(1)
		}
		key, kerr := secret.Unmarshal(blob)
		if kerr != nil {
			fmt.Fprintf(os.Stderr, "simserver: parsing key: %v\n", kerr)
			os.Exit(1)
		}
		cfg.NumPivots = key.Pivots().N()
		if cfg.MaxLevel > cfg.NumPivots {
			cfg.MaxLevel = cfg.NumPivots
		}
		srv, err = server.NewPlain(cfg, key.Pivots())
	default:
		fmt.Fprintf(os.Stderr, "simserver: unknown mode %q\n", *mode)
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "simserver: %v\n", err)
		os.Exit(1)
	}
	var mlog *wal.Log
	if *walDir != "" {
		l, recs, werr := wal.Open(*walDir, walPolicy)
		if werr != nil {
			fmt.Fprintf(os.Stderr, "simserver: %v\n", werr)
			os.Exit(1)
		}
		// With -snapshot, surviving records are the post-snapshot tail (a
		// successful snapshot save truncates the log below).
		if rerr := wal.Replay(recs, srv.Index()); rerr != nil {
			fmt.Fprintf(os.Stderr, "simserver: %v\n", rerr)
			os.Exit(1)
		}
		if len(recs) > 0 {
			fmt.Printf("simserver: replayed %d WAL records from %s (%d entries indexed)\n",
				len(recs), l.Path(), srv.Index().Size())
		}
		srv.AttachWAL(l)
		mlog = l
	}
	if err := srv.Start(*addr); err != nil {
		fmt.Fprintf(os.Stderr, "simserver: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("simserver: %s deployment listening on %s (pivots=%d maxLevel=%d bucket=%d storage=%v shards=%d)\n",
		*mode, srv.Addr(), cfg.NumPivots, cfg.MaxLevel, cfg.BucketCapacity, cfg.Storage, max(1, cfg.Shards))

	// SIGINT/SIGTERM trigger the same snapshot-saving shutdown as a clean
	// exit; a second signal while the snapshot is being written forces an
	// immediate exit (the half-written file is a .tmp sibling — the
	// previous snapshot survives, see mindex.SaveSnapshot).
	sig := make(chan os.Signal, 2)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	fmt.Println("\nsimserver: shutting down")
	go func() {
		<-sig
		fmt.Fprintln(os.Stderr, "simserver: second signal, exiting without saving")
		os.Exit(1)
	}()
	exitCode := 0
	if *snapshot != "" && srv.Index() != nil {
		if err := srv.Index().SaveSnapshot(*snapshot); err != nil {
			fmt.Fprintf(os.Stderr, "simserver: saving snapshot: %v\n", err)
			exitCode = 1
		} else {
			fmt.Printf("simserver: saved %d entries to %s\n", srv.Index().Size(), *snapshot)
			// Snapshot-plus-truncate compaction: the snapshot now covers
			// every logged mutation, so the log restarts empty.
			if mlog != nil {
				if err := mlog.Reset(); err != nil {
					fmt.Fprintf(os.Stderr, "simserver: truncating WAL: %v\n", err)
					exitCode = 1
				}
			}
		}
	}
	if err := srv.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "simserver: close: %v\n", err)
		exitCode = 1
	}
	if mlog != nil {
		if err := mlog.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "simserver: closing WAL: %v\n", err)
			exitCode = 1
		}
	}
	os.Exit(exitCode)
}
