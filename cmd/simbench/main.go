// Command simbench regenerates the evaluation tables of "Secure
// Metric-Based Index for Similarity Cloud" (SDM @ VLDB 2012).
//
// Each table runs a real client–server pair over loopback TCP and prints
// the paper's layout: cost decomposition rows against a parameter sweep.
//
//	simbench -table all                  # Tables 1–9, laptop scale
//	simbench -table 6 -scale 1000000     # Table 6 at the paper's full scale
//	simbench -table 5 -queries 100 -v    # verbose progress
//
// With -ablation it runs the routing-family ablation instead: k-NN recall
// against the candidate-set size for both index families (M-Index pivot
// permutations and k-means centroid cells) bracketed by the EHI and FDH
// baselines, plus the learned candidate-size predictor against the best
// global constant. -backend narrows the sweep to one family:
//
//	simbench -ablation -k 10
//	simbench -ablation -backend kmeans -dataset clustered -queries 20 -k 10
//
// With -workers N it instead runs a closed-loop concurrent load test — N
// workers issuing approximate k-NN queries back-to-back against one cloud —
// and reports per-worker and aggregate QPS:
//
//	simbench -workers 8 -dataset YEAST -duration 10s
//	simbench -workers 4 -dataset CoPhIR -encrypted -candsize 2000
//
// With -openloop it becomes a multi-connection open-loop load generator
// against an HTTP gateway (cmd/simgate): arrivals are offered at -qps
// whether or not earlier requests finished, and the report gives achieved
// throughput plus p50/p99/p999 latency measured from each request's
// scheduled arrival (queueing included — no coordinated omission). With no
// -gateway it self-hosts a demo gateway in-process:
//
//	simbench -openloop -qps 500 -conns 8 -duration 10s
//	simbench -openloop -gateway http://127.0.0.1:8080 -apikey alice-key -qps 2000 -conns 16
//
// Both load modes also emit the report as machine-readable JSON with
// -json FILE (same document shape as cmd/benchjson; "-" for stdout).
//
// The absolute milliseconds depend on hardware; the shapes — who wins, by
// what factor, where recall saturates — are the reproduction target (see
// EXPERIMENTS.md).
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"simcloud/internal/bench"
	"simcloud/internal/gateway"
)

// selfHostKey is the API key of the self-hosted open-loop demo gateway.
const selfHostKey = "bench-key"

// selfHostGateway serves a single-tenant demo gateway on a loopback port
// for -openloop runs without an external simgate. It returns a stop
// function and the listen address.
func selfHostGateway(dim int) (stop func(), addr string, err error) {
	tenant, err := gateway.DemoTenant("bench", selfHostKey, 1, 2000, dim, 16, 8)
	if err != nil {
		return nil, "", err
	}
	gw, err := gateway.New(gateway.Config{Tenants: []gateway.Tenant{tenant}})
	if err != nil {
		return nil, "", err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		gw.Close()
		return nil, "", err
	}
	srv := &http.Server{Handler: gw}
	go srv.Serve(ln)
	return func() { srv.Close(); gw.Close() }, ln.Addr().String(), nil
}

func main() {
	// All work happens in run so deferred cleanups — most importantly the
	// pprof writers — fire on every exit path, including failures (the run
	// one most wants to profile is often the failing one).
	os.Exit(run())
}

func run() int {
	var (
		table   = flag.String("table", "all", "table to regenerate: 1..9 or all")
		scale   = flag.Int("scale", 100000, "CoPhIR collection size (paper: 1000000)")
		queries = flag.Int("queries", 100, "number of query objects to average over")
		k       = flag.Int("k", 30, "number of nearest neighbors (Tables 5-8)")
		seed    = flag.Uint64("seed", 2012, "seed for pivot selection and query sampling")
		bulk    = flag.Int("bulk", 1000, "bulk insert size")
		format  = flag.String("format", "text", "output format: text or csv")
		verbose = flag.Bool("v", false, "print progress to stderr")
		cpuProf = flag.String("cpuprofile", "", "write a CPU profile to this file (inspect with go tool pprof)")
		memProf = flag.String("memprofile", "", "write an allocation profile to this file on exit")
		timeout = flag.Duration("timeout", 0, "per-query deadline through the context-aware Search API (0 = no deadline)")

		load   = flag.Bool("load", false, "measure the bulk-ingest pipelines (batch vs stream) on -dataset instead of tables")
		shards = flag.Int("shards", 1, "bulk load: engine shard count")

		workers   = flag.Int("workers", 0, "run a closed-loop concurrent load test with this many workers instead of tables")
		dataset   = flag.String("dataset", "YEAST", "load test data set: YEAST, HUMAN or CoPhIR")
		duration  = flag.Duration("duration", 10*time.Second, "load test measurement window")
		candSize  = flag.Int("candsize", 0, "load test candidate set size (0 = the data set's middle evaluated size)")
		encrypted = flag.Bool("encrypted", false, "load test the encrypted deployment instead of the plain one")

		ablation = flag.Bool("ablation", false, "run the routing-family ablation (recall vs candidate size: M-Index and k-means vs the EHI/FDH brackets) instead of tables")
		backend  = flag.String("backend", "all", "ablation: index families to sweep (all, mindex, kmeans)")

		openloop = flag.Bool("openloop", false, "run an open-loop HTTP load test against a gateway instead of tables")
		qps      = flag.Float64("qps", 100, "open loop: offered arrival rate in queries/s")
		conns    = flag.Int("conns", 4, "open loop: concurrent sender connections")
		gate     = flag.String("gateway", "", "open loop: gateway base URL (empty self-hosts a demo gateway in-process)")
		apiKey   = flag.String("apikey", "", "open loop: tenant API key for -gateway")
		dim      = flag.Int("dim", 8, "open loop: query vector dimensionality (must match the target's data)")
		jsonOut  = flag.String("json", "", "also write the load report as JSON to this file (\"-\" for stdout)")
	)
	flag.Parse()
	if *format != "text" && *format != "csv" {
		fmt.Fprintf(os.Stderr, "simbench: unknown format %q\n", *format)
		return 2
	}
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintf(os.Stderr, "simbench: %v\n", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "simbench: starting CPU profile: %v\n", err)
			f.Close()
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintf(os.Stderr, "simbench: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle live heap so the profile shows retained state
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fmt.Fprintf(os.Stderr, "simbench: writing memory profile: %v\n", err)
			}
		}()
	}

	opts := bench.Options{
		CoPhIRScale: *scale,
		Queries:     *queries,
		K:           *k,
		Seed:        *seed,
		BulkSize:    *bulk,
		Timeout:     *timeout,
	}
	if *verbose {
		opts.Log = os.Stderr
	}

	// writeJSON emits a load report's machine-readable document per -json.
	writeJSON := func(doc *bench.JSONDocument) error {
		if *jsonOut == "" {
			return nil
		}
		if *jsonOut == "-" {
			return doc.Write(os.Stdout)
		}
		f, err := os.Create(*jsonOut)
		if err != nil {
			return err
		}
		defer f.Close()
		return doc.Write(f)
	}

	if *openloop {
		start := time.Now()
		target, apikey := *gate, *apiKey
		if target == "" {
			// No gateway given: self-host a demo gateway over an in-process
			// index, so one command measures the whole HTTP serving stack.
			stop, addr, err := selfHostGateway(*dim)
			if err != nil {
				fmt.Fprintf(os.Stderr, "simbench: %v\n", err)
				return 1
			}
			defer stop()
			target, apikey = "http://"+addr, selfHostKey
			if opts.Log != nil {
				fmt.Fprintf(opts.Log, "openloop: self-hosted demo gateway on %s\n", target)
			}
		}
		rep, err := bench.OpenLoop(bench.OpenLoopOptions{
			Target:   target,
			APIKey:   apikey,
			QPS:      *qps,
			Conns:    *conns,
			Duration: *duration,
			K:        *k,
			CandSize: *candSize,
			Dim:      *dim,
			Seed:     *seed,
			Log:      opts.Log,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "simbench: %v\n", err)
			return 1
		}
		rep.Render(os.Stdout)
		if err := writeJSON(rep.JSONDocument()); err != nil {
			fmt.Fprintf(os.Stderr, "simbench: %v\n", err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "simbench: done in %s\n", bench.Elapsed(start))
		return 0
	}

	if *ablation {
		start := time.Now()
		names := []string{"clustered", "embed768"}
		if *dataset != "YEAST" && *dataset != "all" {
			// -dataset left at its load-test default means every ablation set.
			names = []string{*dataset}
		}
		for _, name := range names {
			t, err := bench.AblationTable(opts, name, *backend)
			if err != nil {
				fmt.Fprintf(os.Stderr, "simbench: %v\n", err)
				return 1
			}
			if *format == "csv" {
				t.RenderCSV(os.Stdout)
			} else {
				t.Render(os.Stdout)
			}
			fmt.Println()
		}
		fmt.Fprintf(os.Stderr, "simbench: done in %s\n", bench.Elapsed(start))
		return 0
	}

	if *load {
		start := time.Now()
		rep, err := bench.BulkLoad(opts, *dataset, *shards)
		if err != nil {
			fmt.Fprintf(os.Stderr, "simbench: %v\n", err)
			return 1
		}
		rep.Render(os.Stdout)
		if err := writeJSON(rep.JSONDocument()); err != nil {
			fmt.Fprintf(os.Stderr, "simbench: %v\n", err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "simbench: done in %s\n", bench.Elapsed(start))
		return 0
	}

	if *workers > 0 {
		start := time.Now()
		rep, err := bench.LoadTest(opts, *dataset, *encrypted, *workers, *duration, *candSize)
		if err != nil {
			fmt.Fprintf(os.Stderr, "simbench: %v\n", err)
			return 1
		}
		rep.Render(os.Stdout)
		if err := writeJSON(rep.JSONDocument()); err != nil {
			fmt.Fprintf(os.Stderr, "simbench: %v\n", err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "simbench: done in %s\n", bench.Elapsed(start))
		return 0
	}

	render := func(t *bench.Table) {
		if *format == "csv" {
			t.RenderCSV(os.Stdout)
		} else {
			t.Render(os.Stdout)
		}
	}
	start := time.Now()
	if *table == "all" {
		tables, err := bench.AllTables(opts)
		for _, t := range tables {
			render(t)
			fmt.Println()
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "simbench: %v\n", err)
			return 1
		}
	} else {
		t, err := bench.Run(*table, opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "simbench: %v\n", err)
			return 1
		}
		render(t)
	}
	fmt.Fprintf(os.Stderr, "simbench: done in %s\n", bench.Elapsed(start))
	return 0
}
