// Command simbench regenerates the evaluation tables of "Secure
// Metric-Based Index for Similarity Cloud" (SDM @ VLDB 2012).
//
// Each table runs a real client–server pair over loopback TCP and prints
// the paper's layout: cost decomposition rows against a parameter sweep.
//
//	simbench -table all                  # Tables 1–9, laptop scale
//	simbench -table 6 -scale 1000000     # Table 6 at the paper's full scale
//	simbench -table 5 -queries 100 -v    # verbose progress
//
// With -workers N it instead runs a closed-loop concurrent load test — N
// workers issuing approximate k-NN queries back-to-back against one cloud —
// and reports per-worker and aggregate QPS:
//
//	simbench -workers 8 -dataset YEAST -duration 10s
//	simbench -workers 4 -dataset CoPhIR -encrypted -candsize 2000
//
// The absolute milliseconds depend on hardware; the shapes — who wins, by
// what factor, where recall saturates — are the reproduction target (see
// EXPERIMENTS.md).
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"simcloud/internal/bench"
)

func main() {
	// All work happens in run so deferred cleanups — most importantly the
	// pprof writers — fire on every exit path, including failures (the run
	// one most wants to profile is often the failing one).
	os.Exit(run())
}

func run() int {
	var (
		table   = flag.String("table", "all", "table to regenerate: 1..9 or all")
		scale   = flag.Int("scale", 100000, "CoPhIR collection size (paper: 1000000)")
		queries = flag.Int("queries", 100, "number of query objects to average over")
		k       = flag.Int("k", 30, "number of nearest neighbors (Tables 5-8)")
		seed    = flag.Uint64("seed", 2012, "seed for pivot selection and query sampling")
		bulk    = flag.Int("bulk", 1000, "bulk insert size")
		format  = flag.String("format", "text", "output format: text or csv")
		verbose = flag.Bool("v", false, "print progress to stderr")
		cpuProf = flag.String("cpuprofile", "", "write a CPU profile to this file (inspect with go tool pprof)")
		memProf = flag.String("memprofile", "", "write an allocation profile to this file on exit")
		timeout = flag.Duration("timeout", 0, "per-query deadline through the context-aware Search API (0 = no deadline)")

		workers   = flag.Int("workers", 0, "run a closed-loop concurrent load test with this many workers instead of tables")
		dataset   = flag.String("dataset", "YEAST", "load test data set: YEAST, HUMAN or CoPhIR")
		duration  = flag.Duration("duration", 10*time.Second, "load test measurement window")
		candSize  = flag.Int("candsize", 0, "load test candidate set size (0 = the data set's middle evaluated size)")
		encrypted = flag.Bool("encrypted", false, "load test the encrypted deployment instead of the plain one")
	)
	flag.Parse()
	if *format != "text" && *format != "csv" {
		fmt.Fprintf(os.Stderr, "simbench: unknown format %q\n", *format)
		return 2
	}
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintf(os.Stderr, "simbench: %v\n", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "simbench: starting CPU profile: %v\n", err)
			f.Close()
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintf(os.Stderr, "simbench: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle live heap so the profile shows retained state
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fmt.Fprintf(os.Stderr, "simbench: writing memory profile: %v\n", err)
			}
		}()
	}

	opts := bench.Options{
		CoPhIRScale: *scale,
		Queries:     *queries,
		K:           *k,
		Seed:        *seed,
		BulkSize:    *bulk,
		Timeout:     *timeout,
	}
	if *verbose {
		opts.Log = os.Stderr
	}

	if *workers > 0 {
		start := time.Now()
		rep, err := bench.LoadTest(opts, *dataset, *encrypted, *workers, *duration, *candSize)
		if err != nil {
			fmt.Fprintf(os.Stderr, "simbench: %v\n", err)
			return 1
		}
		rep.Render(os.Stdout)
		fmt.Fprintf(os.Stderr, "simbench: done in %s\n", bench.Elapsed(start))
		return 0
	}

	render := func(t *bench.Table) {
		if *format == "csv" {
			t.RenderCSV(os.Stdout)
		} else {
			t.Render(os.Stdout)
		}
	}
	start := time.Now()
	if *table == "all" {
		tables, err := bench.AllTables(opts)
		for _, t := range tables {
			render(t)
			fmt.Println()
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "simbench: %v\n", err)
			return 1
		}
	} else {
		t, err := bench.Run(*table, opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "simbench: %v\n", err)
			return 1
		}
		render(t)
	}
	fmt.Fprintf(os.Stderr, "simbench: done in %s\n", bench.Elapsed(start))
	return 0
}
