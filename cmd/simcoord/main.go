// Command simcoord runs a similarity-cloud coordinator: one listening
// address that federates several encrypted simserver nodes into a single
// logical index. Clients connect to it with the unchanged wire protocol —
// simclient and the library client need no flag beyond the address.
//
//	# Three nodes (each started with -eager-root-split or -shards > 1):
//	simserver -addr :4041 -pivots 16 -eager-root-split &
//	simserver -addr :4042 -pivots 16 -eager-root-split &
//	simserver -addr :4043 -pivots 16 -eager-root-split &
//
//	# Federate them:
//	simcoord -addr :4040 -nodes 127.0.0.1:4041,127.0.0.1:4042,127.0.0.1:4043
//
//	# Use exactly like a single server:
//	simclient -addr :4040 -key data.key -op insert -data data.simcdat
//	simclient -addr :4040 -key data.key -op approx -data data.simcdat -query 5
//
// The coordinator hellos every node at startup and refuses to start unless
// all nodes are reachable, run the encrypted deployment, and agree on the
// index shape (pivot count, max level, bucket capacity, ranking) — a
// mismatched node would not fail loudly later, it would silently corrupt
// results. Inserts and deletes route by the entry permutation's first
// element over the live nodes; queries fan out to every node and combine
// by the same merge order a single sharded server uses, so a 1-node
// cluster behaves exactly like that node served directly.
//
// With -replicas R > 1 every entry is stored on R nodes: writes fan to all
// owners (journaling for nodes that are down), reads fail over to a live
// replica, and the cluster keeps answering exactly while any R-1 replicas
// of a cell are down. Down nodes are re-dialed every -reprobe interval and
// re-admitted after a shape check and re-sync of the writes they missed;
// pair the nodes with -wal-dir so a restarted node recovers its pre-crash
// state.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"simcloud/internal/cluster"
)

func main() {
	var (
		addr        = flag.String("addr", "127.0.0.1:4040", "client-facing listen address")
		nodes       = flag.String("nodes", "", "comma-separated addresses of the simserver nodes to federate (required)")
		dialTimeout = flag.Duration("dial-timeout", 5*time.Second, "per-node dial+hello timeout at startup")
		nodeTimeout = flag.Duration("node-timeout", 0, "per-request node timeout; a node exceeding it is treated as failed (0 waits indefinitely)")
		replicas    = flag.Int("replicas", 1, "copies kept of every entry (R); must not exceed the node count")
		reprobe     = flag.Duration("reprobe", 10*time.Second, "how often down nodes are re-dialed and re-admitted after re-sync (0 disables)")
	)
	flag.Parse()

	var addrs []string
	for _, a := range strings.Split(*nodes, ",") {
		if a = strings.TrimSpace(a); a != "" {
			addrs = append(addrs, a)
		}
	}
	if len(addrs) == 0 {
		fmt.Fprintln(os.Stderr, "simcoord: -nodes requires at least one node address")
		os.Exit(2)
	}

	coord, err := cluster.New(addrs, cluster.Options{
		DialTimeout:     *dialTimeout,
		NodeTimeout:     *nodeTimeout,
		Replicas:        *replicas,
		ReprobeInterval: *reprobe,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "simcoord: %v\n", err)
		os.Exit(1)
	}
	if err := coord.Start(*addr); err != nil {
		fmt.Fprintf(os.Stderr, "simcoord: %v\n", err)
		os.Exit(1)
	}
	info := coord.Info()
	fmt.Printf("simcoord: coordinating %d nodes on %s (replicas=%d pivots=%d maxLevel=%d bucket=%d ranking=%d)\n",
		coord.NumNodes(), coord.Addr(), *replicas, info.NumPivots, info.MaxLevel, info.BucketCapacity, info.Ranking)
	for _, n := range coord.LiveNodes() {
		fmt.Printf("simcoord:   node %s\n", n)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	fmt.Println("\nsimcoord: shutting down")
	if err := coord.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "simcoord: close: %v\n", err)
		os.Exit(1)
	}
}
