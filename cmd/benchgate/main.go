// Command benchgate turns `go test -bench` output into a pass/fail CI gate.
// benchstat renders deltas for humans; benchgate enforces machine-checkable
// invariants and exits non-zero when one breaks, so a perf regression fails
// the build instead of scrolling past in a log.
//
//	go test -run '^$' -bench Concurrent -cpu 1,4,8 -benchmem -count=3 ./internal/mindex | tee conc.txt
//	benchgate -scale-limit 1.5 -baseline bench/BENCH_BASELINE_6.txt -alloc-slack 1.5 -alloc-exclude Churn conc.txt
//
// Gates (each enabled by its flag):
//
//   - -scale-limit F: within the CURRENT run, for every benchmark family
//     measured at several GOMAXPROCS values (-cpu 1,4,8), the median ns/op
//     at the comparison proc count must be at most F x the median at the
//     lowest. Parallel benchmarks divide wall time by total ops, so
//     wait-free readers hold this ratio near or below 1 while a serialized
//     read path blows past it (the committed RWMutex curve,
//     bench/BENCH_RWMUTEX_6.txt, shows >3x). Both sides of the ratio come
//     from one run on one machine, so the gate needs no cross-machine
//     baseline — but it does need real cores: the comparison point is the
//     largest measured proc count that the machine actually has hardware
//     for (override with -scale-procs). Proc counts beyond the core count
//     measure scheduler oversubscription, not scaling, and families with
//     no usable multi-proc point are skipped with a note rather than
//     failed, so the gate degrades gracefully on small machines while
//     still biting on CI runners.
//
//   - -alloc-slack F (needs -baseline): median allocs/op per benchmark
//     must stay within max(F x baseline, baseline+2). Slack, not
//     equality, because parallel runs jitter by a few allocations.
//     -alloc-exclude RE skips benchmarks whose allocation counts are
//     interleaving-dependent by construction (the under-churn benchmarks
//     allocate in proportion to how fast the background writer runs,
//     which varies with hardware).
//
//   - -ns-ratio F (needs -baseline): median ns/op must stay within
//     F x baseline. Absolute times only compare within one machine, so
//     this gate is for local before/after runs, not for gating CI against
//     a baseline recorded elsewhere; CI leaves it off and relies on
//     -scale-limit.
//
//   - -speedup-min F (needs -speedup-base and -speedup-new): within the
//     CURRENT run, the median ns/op pooled over benchmarks matching
//     -speedup-base must be at least F x the median pooled over those
//     matching -speedup-new. This gates an in-run A/B pair — e.g. the
//     bulk builder against the incremental ingest baseline measured in
//     the same BenchmarkBulkLoad invocation — so, like -scale-limit, it
//     holds on any machine without a cross-machine baseline. Pick F below
//     the committed headline ratio: both sides jitter on loaded CI
//     runners, and the gate is for catching the optimization rotting
//     away, not for re-proving the paper number every push.
//
// A gate that finds nothing to check fails: an empty run means the bench
// regex or the baseline rotted, and a gate that silently checks nothing is
// worse than no gate.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"runtime"
	"slices"
	"sort"
	"strconv"
	"strings"
)

// key identifies one benchmark configuration: the name with the -GOMAXPROCS
// suffix split off, and the proc count (1 when the suffix is absent).
type key struct {
	name  string
	procs int
}

// run is one benchmark line's metrics (value by unit).
type run map[string]float64

func main() {
	var (
		baseline     = flag.String("baseline", "", "baseline benchmark output for the -alloc-slack and -ns-ratio gates")
		scaleLimit   = flag.Float64("scale-limit", 0, "max ns/op(comparison procs) / ns/op(lowest procs) within the current run (0 = off)")
		scaleProcs   = flag.Int("scale-procs", 0, "proc count to compare against the lowest (0 = largest measured count this machine has cores for)")
		allocSlack   = flag.Float64("alloc-slack", 0, "max allocs/op as a multiple of baseline (0 = off)")
		allocExclude = flag.String("alloc-exclude", "", "regexp of benchmark names to skip in the alloc gate")
		nsRatio      = flag.Float64("ns-ratio", 0, "max ns/op as a multiple of baseline — same-machine runs only (0 = off)")
		speedupBase  = flag.String("speedup-base", "", "regexp of the slow side of the in-run speedup gate")
		speedupNew   = flag.String("speedup-new", "", "regexp of the fast side of the in-run speedup gate")
		speedupMin   = flag.Float64("speedup-min", 0, "min median ns/op ratio base/new within the current run (0 = off)")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: benchgate [flags] current-bench-output.txt")
		flag.PrintDefaults()
		os.Exit(2)
	}
	if *scaleLimit == 0 && *allocSlack == 0 && *nsRatio == 0 && *speedupMin == 0 {
		fmt.Fprintln(os.Stderr, "benchgate: no gate enabled (set -scale-limit, -alloc-slack, -ns-ratio or -speedup-min)")
		os.Exit(2)
	}
	if (*allocSlack != 0 || *nsRatio != 0) && *baseline == "" {
		fmt.Fprintln(os.Stderr, "benchgate: -alloc-slack and -ns-ratio need -baseline")
		os.Exit(2)
	}
	if *speedupMin != 0 && (*speedupBase == "" || *speedupNew == "") {
		fmt.Fprintln(os.Stderr, "benchgate: -speedup-min needs -speedup-base and -speedup-new")
		os.Exit(2)
	}
	baseRE, err := compileOptional(*speedupBase)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: -speedup-base: %v\n", err)
		os.Exit(2)
	}
	newRE, err := compileOptional(*speedupNew)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: -speedup-new: %v\n", err)
		os.Exit(2)
	}
	exclude, err := compileOptional(*allocExclude)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: -alloc-exclude: %v\n", err)
		os.Exit(2)
	}

	current, err := parseFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(1)
	}
	var base map[key][]run
	if *baseline != "" {
		if base, err = parseFile(*baseline); err != nil {
			fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
			os.Exit(1)
		}
	}

	failures, checked := 0, 0
	fail := func(format string, args ...any) {
		failures++
		fmt.Printf("FAIL  "+format+"\n", args...)
	}
	pass := func(format string, args ...any) {
		checked++
		fmt.Printf("ok    "+format+"\n", args...)
	}

	if *scaleLimit > 0 {
		scaleGate(current, *scaleLimit, *scaleProcs, pass, fail)
	}
	if *speedupMin > 0 {
		speedupGate(current, baseRE, newRE, *speedupMin, pass, fail)
	}
	if *allocSlack > 0 {
		gateAgainstBaseline(current, base, "allocs/op", exclude, func(k key, cur, b float64) {
			limit := max(b**allocSlack, b+2)
			line := fmt.Sprintf("%s: %.0f allocs/op vs baseline %.0f (limit %.0f)", k, cur, b, limit)
			if cur > limit {
				fail("%s", line)
			} else {
				pass("%s", line)
			}
		}, fail)
	}
	if *nsRatio > 0 {
		gateAgainstBaseline(current, base, "ns/op", nil, func(k key, cur, b float64) {
			line := fmt.Sprintf("%s: %.0f ns/op vs baseline %.0f (limit %.2fx)", k, cur, b, *nsRatio)
			if cur > b**nsRatio {
				fail("%s", line)
			} else {
				pass("%s", line)
			}
		}, fail)
	}

	if failures > 0 {
		fmt.Printf("benchgate: %d of %d checks failed\n", failures, failures+checked)
		os.Exit(1)
	}
	fmt.Printf("benchgate: all %d checks passed\n", checked)
}

// scaleGate applies the within-run reader-scaling check to every benchmark
// family with a usable multi-proc measurement.
func scaleGate(current map[key][]run, limit float64, procsFlag int, pass, fail func(string, ...any)) {
	families, usable := 0, 0
	for _, name := range familyNames(current) {
		procs := familyProcs(current, name)
		if len(procs) < 2 {
			continue
		}
		families++
		lo := procs[0]
		hi := comparisonProcs(procs, procsFlag)
		if hi <= lo {
			fmt.Printf("skip  %s: measured at procs %v but this machine has %d CPUs — no scaling point to judge\n",
				name, procs, runtime.NumCPU())
			continue
		}
		usable++
		loNs := median(current[key{name, lo}], "ns/op")
		hiNs := median(current[key{name, hi}], "ns/op")
		ratio := hiNs / loNs
		line := fmt.Sprintf("%s: ns/op @%d procs / @%d procs = %.2f (limit %.2f)", name, hi, lo, ratio, limit)
		if ratio > limit {
			fail("%s — read path serializes as procs grow", line)
		} else {
			pass("%s", line)
		}
	}
	if families == 0 {
		fail("scale gate: no benchmark family measured at multiple proc counts — was -cpu 1,4,8 dropped?")
	} else if usable == 0 {
		fmt.Printf("note  scale gate: %d families skipped — rerun on a machine with more cores for a meaningful curve\n", families)
	}
}

// speedupGate checks the in-run A/B ratio: median ns/op over benchmarks
// matching baseRE divided by the median over those matching newRE must be
// at least minRatio. Both sides come from one run on one machine, so the
// gate carries across hardware; a side that matches nothing fails loudly.
func speedupGate(current map[key][]run, baseRE, newRE *regexp.Regexp, minRatio float64, pass, fail func(string, ...any)) {
	pool := func(re *regexp.Regexp) (float64, []string) {
		var vals []float64
		var names []string
		for _, k := range sortedKeys(current) {
			if !re.MatchString(k.name) {
				continue
			}
			for _, r := range current[k] {
				if v, ok := r["ns/op"]; ok {
					vals = append(vals, v)
				}
			}
			names = append(names, k.String())
		}
		sort.Float64s(vals)
		n := len(vals)
		switch {
		case n == 0:
			return 0, names
		case n%2 == 1:
			return vals[n/2], names
		default:
			return (vals[n/2-1] + vals[n/2]) / 2, names
		}
	}
	baseNs, baseNames := pool(baseRE)
	newNs, newNames := pool(newRE)
	if len(baseNames) == 0 || baseNs == 0 {
		fail("speedup gate: -speedup-base %q matched no ns/op results", baseRE)
		return
	}
	if len(newNames) == 0 || newNs == 0 {
		fail("speedup gate: -speedup-new %q matched no ns/op results", newRE)
		return
	}
	ratio := baseNs / newNs
	line := fmt.Sprintf("speedup: %s (%.0f ns/op) / %s (%.0f ns/op) = %.2fx (min %.2fx)",
		strings.Join(baseNames, ","), baseNs, strings.Join(newNames, ","), newNs, ratio, minRatio)
	if ratio < minRatio {
		fail("%s — the bulk path lost its edge over the baseline", line)
	} else {
		pass("%s", line)
	}
}

// comparisonProcs picks the proc count to put on top of the scaling ratio:
// the explicit -scale-procs when given, else the largest measured count the
// machine has hardware parallelism for.
func comparisonProcs(procs []int, procsFlag int) int {
	if procsFlag > 0 {
		best := procs[0]
		for _, p := range procs {
			if p <= procsFlag {
				best = p
			}
		}
		return best
	}
	best := procs[0]
	for _, p := range procs {
		if p <= runtime.NumCPU() {
			best = p
		}
	}
	return best
}

// gateAgainstBaseline runs check on the median of unit for every benchmark
// configuration present in both runs, and fails outright when the overlap is
// empty — a baseline that matches nothing gates nothing.
func gateAgainstBaseline(current, base map[key][]run, unit string, exclude *regexp.Regexp, check func(k key, cur, b float64), fail func(string, ...any)) {
	matched := 0
	for _, k := range sortedKeys(current) {
		if exclude != nil && exclude.MatchString(k.name) {
			continue
		}
		bruns, ok := base[k]
		if !ok || !hasUnit(bruns, unit) || !hasUnit(current[k], unit) {
			continue
		}
		matched++
		check(k, median(current[k], unit), median(bruns, unit))
	}
	if matched == 0 {
		fail("%s gate: no benchmark present in both current run and baseline", unit)
	}
}

func compileOptional(expr string) (*regexp.Regexp, error) {
	if expr == "" {
		return nil, nil
	}
	return regexp.Compile(expr)
}

func (k key) String() string {
	if k.procs == 1 {
		return k.name
	}
	return fmt.Sprintf("%s-%d", k.name, k.procs)
}

func familyNames(m map[key][]run) []string {
	var names []string
	for k := range m {
		if !slices.Contains(names, k.name) {
			names = append(names, k.name)
		}
	}
	sort.Strings(names)
	return names
}

func familyProcs(m map[key][]run, name string) []int {
	var procs []int
	for k := range m {
		if k.name == name {
			procs = append(procs, k.procs)
		}
	}
	sort.Ints(procs)
	return procs
}

func sortedKeys(m map[key][]run) []key {
	keys := make([]key, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].name != keys[j].name {
			return keys[i].name < keys[j].name
		}
		return keys[i].procs < keys[j].procs
	})
	return keys
}

func hasUnit(runs []run, unit string) bool {
	for _, r := range runs {
		if _, ok := r[unit]; ok {
			return true
		}
	}
	return false
}

// median is the middle value of unit across a configuration's -count runs —
// the robust center benchstat also uses, immune to one noisy run.
func median(runs []run, unit string) float64 {
	var vals []float64
	for _, r := range runs {
		if v, ok := r[unit]; ok {
			vals = append(vals, v)
		}
	}
	sort.Float64s(vals)
	n := len(vals)
	if n == 0 {
		return 0
	}
	if n%2 == 1 {
		return vals[n/2]
	}
	return (vals[n/2-1] + vals[n/2]) / 2
}

func parseFile(path string) (map[key][]run, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	m, err := parse(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(m) == 0 {
		return nil, fmt.Errorf("%s: no benchmark results", path)
	}
	return m, nil
}

// parse collects benchmark result lines, grouped by (name, procs), one run
// entry per line (-count runs accumulate).
func parse(in io.Reader) (map[key][]run, error) {
	out := make(map[key][]run)
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		k, r, ok := parseResult(line)
		if !ok {
			continue
		}
		out[k] = append(out[k], r)
	}
	return out, sc.Err()
}

// parseResult parses one result line:
//
//	BenchmarkName-8   8895   58069 ns/op   160772 B/op   2 allocs/op
//
// The -N suffix is the GOMAXPROCS count (1 when absent, as `go test` omits
// it for -cpu 1); metrics are (value, unit) pairs after the iteration count.
func parseResult(line string) (key, run, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || len(fields)%2 != 0 {
		return key{}, nil, false
	}
	k := key{name: fields[0], procs: 1}
	if i := strings.LastIndex(k.name, "-"); i > 0 {
		if p, err := strconv.Atoi(k.name[i+1:]); err == nil {
			k.name, k.procs = k.name[:i], p
		}
	}
	if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
		return key{}, nil, false
	}
	r := make(run)
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return key{}, nil, false
		}
		r[fields[i+1]] = v
	}
	return k, r, true
}
