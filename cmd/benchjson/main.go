// Command benchjson converts `go test -bench` output into a machine-readable
// JSON document, so CI can upload benchmark runs as structured artifacts
// (BENCH_4.json and successors) and the perf trajectory can be charted
// without re-parsing Go's text format downstream.
//
//	go test -run '^$' -bench . -benchmem ./internal/mindex | benchjson -o BENCH_4.json
//	benchjson bench-output.txt
//
// The history mode accumulates runs under a directory, one JSON file per
// commit label, so the perf trajectory lives in-repo with a stable schema:
//
//	go test -run '^$' -bench . | benchjson -history bench/history -label BENCH_9
//
// appends this run's results into bench/history/BENCH_9.json (creating the
// directory and file on first use; re-runs under the same label merge their
// results into the same document).
//
// Lines that are not benchmark results (headers, PASS/ok, logs) are ignored;
// context lines (goos/goarch/pkg/cpu) are captured into the header.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"slices"
	"strconv"
	"strings"
)

// Result is one benchmark line: the benchmark name (with -GOMAXPROCS suffix
// split off), its iteration count, and every reported metric, including
// custom b.ReportMetric units.
type Result struct {
	Name       string             `json:"name"`
	Procs      int                `json:"procs,omitempty"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Document is the emitted artifact.
type Document struct {
	Label   string   `json:"label,omitempty"`
	Goos    string   `json:"goos,omitempty"`
	Goarch  string   `json:"goarch,omitempty"`
	Pkg     []string `json:"pkg,omitempty"`
	CPU     string   `json:"cpu,omitempty"`
	Results []Result `json:"results"`
}

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	history := flag.String("history", "", "accumulate the run under this directory, one JSON per -label")
	label := flag.String("label", "", "history document name (file becomes <history>/<label>.json)")
	flag.Parse()
	if *history != "" && *label == "" {
		fmt.Fprintln(os.Stderr, "benchjson: -history needs -label")
		os.Exit(2)
	}

	var in io.Reader = os.Stdin
	if flag.NArg() > 1 {
		fmt.Fprintln(os.Stderr, "benchjson: at most one input file")
		os.Exit(2)
	}
	if flag.NArg() == 1 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		in = f
	}

	doc, err := parse(in)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if len(doc.Results) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark results in input")
		os.Exit(1)
	}
	if *history != "" {
		if err := appendHistory(*history, *label, doc); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		if *out == "" {
			return
		}
	}
	blob, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	blob = append(blob, '\n')
	if *out == "" {
		os.Stdout.Write(blob)
		return
	}
	if err := os.WriteFile(*out, blob, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}

// appendHistory merges the run into <dir>/<label>.json: a fresh label gets
// the whole document; an existing one accumulates the new results (its
// header context wins — one commit, one machine).
func appendHistory(dir, label string, doc *Document) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(dir, label+".json")
	merged := *doc
	merged.Label = label
	if blob, err := os.ReadFile(path); err == nil {
		var prev Document
		if err := json.Unmarshal(blob, &prev); err != nil {
			return fmt.Errorf("existing %s: %w", path, err)
		}
		prev.Label = label
		prev.Results = append(prev.Results, doc.Results...)
		for _, pkg := range doc.Pkg {
			if !slices.Contains(prev.Pkg, pkg) {
				prev.Pkg = append(prev.Pkg, pkg)
			}
		}
		merged = prev
	} else if !os.IsNotExist(err) {
		return err
	}
	blob, err := json.MarshalIndent(&merged, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(blob, '\n'), 0o644)
}

func parse(in io.Reader) (*Document, error) {
	doc := &Document{}
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos: "):
			doc.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			doc.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "pkg: "):
			doc.Pkg = append(doc.Pkg, strings.TrimPrefix(line, "pkg: "))
		case strings.HasPrefix(line, "cpu: "):
			doc.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "Benchmark"):
			if r, ok := parseResult(line); ok {
				doc.Results = append(doc.Results, r)
			}
		}
	}
	return doc, sc.Err()
}

// parseResult parses one result line:
//
//	BenchmarkName-8   8895   58069 ns/op   160772 B/op   2 allocs/op
//
// Metrics are (value, unit) pairs after the iteration count.
func parseResult(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || len(fields)%2 != 0 {
		return Result{}, false
	}
	r := Result{Name: fields[0], Metrics: make(map[string]float64)}
	// Split a trailing -N GOMAXPROCS suffix (always the last dash; names
	// themselves may contain dashes).
	if i := strings.LastIndex(r.Name, "-"); i > 0 {
		if p, err := strconv.Atoi(r.Name[i+1:]); err == nil {
			r.Name, r.Procs = r.Name[:i], p
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r.Iterations = iters
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		r.Metrics[fields[i+1]] = v
	}
	return r, true
}
