// Command benchjson converts `go test -bench` output into a machine-readable
// JSON document, so CI can upload benchmark runs as structured artifacts
// (BENCH_4.json and successors) and the perf trajectory can be charted
// without re-parsing Go's text format downstream.
//
//	go test -run '^$' -bench . -benchmem ./internal/mindex | benchjson -o BENCH_4.json
//	benchjson bench-output.txt
//
// Lines that are not benchmark results (headers, PASS/ok, logs) are ignored;
// context lines (goos/goarch/pkg/cpu) are captured into the header.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Result is one benchmark line: the benchmark name (with -GOMAXPROCS suffix
// split off), its iteration count, and every reported metric, including
// custom b.ReportMetric units.
type Result struct {
	Name       string             `json:"name"`
	Procs      int                `json:"procs,omitempty"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Document is the emitted artifact.
type Document struct {
	Goos    string   `json:"goos,omitempty"`
	Goarch  string   `json:"goarch,omitempty"`
	Pkg     []string `json:"pkg,omitempty"`
	CPU     string   `json:"cpu,omitempty"`
	Results []Result `json:"results"`
}

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	var in io.Reader = os.Stdin
	if flag.NArg() > 1 {
		fmt.Fprintln(os.Stderr, "benchjson: at most one input file")
		os.Exit(2)
	}
	if flag.NArg() == 1 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		in = f
	}

	doc, err := parse(in)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if len(doc.Results) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark results in input")
		os.Exit(1)
	}
	blob, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	blob = append(blob, '\n')
	if *out == "" {
		os.Stdout.Write(blob)
		return
	}
	if err := os.WriteFile(*out, blob, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}

func parse(in io.Reader) (*Document, error) {
	doc := &Document{}
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos: "):
			doc.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			doc.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "pkg: "):
			doc.Pkg = append(doc.Pkg, strings.TrimPrefix(line, "pkg: "))
		case strings.HasPrefix(line, "cpu: "):
			doc.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "Benchmark"):
			if r, ok := parseResult(line); ok {
				doc.Results = append(doc.Results, r)
			}
		}
	}
	return doc, sc.Err()
}

// parseResult parses one result line:
//
//	BenchmarkName-8   8895   58069 ns/op   160772 B/op   2 allocs/op
//
// Metrics are (value, unit) pairs after the iteration count.
func parseResult(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || len(fields)%2 != 0 {
		return Result{}, false
	}
	r := Result{Name: fields[0], Metrics: make(map[string]float64)}
	// Split a trailing -N GOMAXPROCS suffix (always the last dash; names
	// themselves may contain dashes).
	if i := strings.LastIndex(r.Name, "-"); i > 0 {
		if p, err := strconv.Atoi(r.Name[i+1:]); err == nil {
			r.Name, r.Procs = r.Name[:i], p
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r.Iterations = iters
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		r.Metrics[fields[i+1]] = v
	}
	return r, true
}
