// Command simkeygen generates the data owner's secret key: pivots chosen at
// random from a collection plus a fresh AES-128 key. The resulting key file
// is what the owner distributes to authorized clients — it must never reach
// the similarity-cloud server.
//
//	simkeygen -data yeast.simcdat -pivots 30 -out yeast.key
package main

import (
	"flag"
	"fmt"
	"math/rand/v2"
	"os"

	"simcloud/internal/dataset"
	"simcloud/internal/pivot"
	"simcloud/internal/secret"
)

func main() {
	var (
		data   = flag.String("data", "", "collection file to draw pivots from (required)")
		pivots = flag.Int("pivots", 30, "number of pivots")
		seed   = flag.Uint64("seed", 2012, "pivot selection seed")
		mode   = flag.String("cipher", "aes-ctr-hmac", "cipher: aes-ctr-hmac or aes-gcm")
		out    = flag.String("out", "", "output key file (required)")
	)
	flag.Parse()
	if *data == "" || *out == "" {
		fmt.Fprintln(os.Stderr, "simkeygen: -data and -out are required")
		flag.Usage()
		os.Exit(2)
	}
	ds, err := dataset.LoadFile(*data)
	if err != nil {
		fmt.Fprintf(os.Stderr, "simkeygen: loading %s: %v\n", *data, err)
		os.Exit(1)
	}
	var cipherMode secret.Mode
	switch *mode {
	case "aes-ctr-hmac":
		cipherMode = secret.ModeCTRHMAC
	case "aes-gcm":
		cipherMode = secret.ModeGCM
	default:
		fmt.Fprintf(os.Stderr, "simkeygen: unknown cipher %q\n", *mode)
		os.Exit(2)
	}
	rng := rand.New(rand.NewPCG(*seed, 0x51E7))
	pv := pivot.SelectRandom(rng, ds.Dist, ds.Objects, *pivots)
	key, err := secret.Generate(pv, cipherMode)
	if err != nil {
		fmt.Fprintf(os.Stderr, "simkeygen: %v\n", err)
		os.Exit(1)
	}
	blob, err := key.Marshal()
	if err != nil {
		fmt.Fprintf(os.Stderr, "simkeygen: %v\n", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out, blob, 0o600); err != nil {
		fmt.Fprintf(os.Stderr, "simkeygen: writing %s: %v\n", *out, err)
		os.Exit(1)
	}
	fmt.Printf("simkeygen: wrote %s: %d pivots (%d-dim, %s), cipher %s\n",
		*out, pv.N(), ds.Dim, ds.Dist.Name(), cipherMode)
}
