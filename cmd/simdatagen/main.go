// Command simdatagen materializes the synthetic evaluation collections to
// disk in the binary collection format, so simserver/simclient runs are
// reproducible and fast to start.
//
//	simdatagen -name YEAST -out yeast.simcdat
//	simdatagen -name CoPhIR -scale 100000 -out cophir100k.simcdat
//	simdatagen -name clustered -n 5000 -dim 32 -clusters 10 -out demo.simcdat
package main

import (
	"flag"
	"fmt"
	"os"

	"simcloud/internal/dataset"
	"simcloud/internal/metric"
)

func main() {
	var (
		name     = flag.String("name", "YEAST", "collection: YEAST, HUMAN, CoPhIR, clustered")
		scale    = flag.Int("scale", 100000, "CoPhIR collection size")
		out      = flag.String("out", "", "output file (required)")
		n        = flag.Int("n", 1000, "clustered: object count")
		dim      = flag.Int("dim", 16, "clustered: dimension")
		clusters = flag.Int("clusters", 8, "clustered: cluster count")
		distName = flag.String("dist", "L2", "clustered: distance function (L1, L2, Linf, L<p>)")
		seed     = flag.Uint64("seed", 1, "clustered: generator seed")
	)
	flag.Parse()
	if *out == "" {
		fmt.Fprintln(os.Stderr, "simdatagen: -out is required")
		flag.Usage()
		os.Exit(2)
	}

	var ds *dataset.Dataset
	var err error
	if *name == "clustered" {
		var dist metric.Distance
		dist, err = metric.ByName(*distName)
		if err == nil {
			ds = dataset.Clustered(*seed, *n, *dim, *clusters, dist)
		}
	} else {
		ds, err = dataset.ByName(*name, *scale)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "simdatagen: %v\n", err)
		os.Exit(1)
	}
	if err := ds.SaveFile(*out); err != nil {
		fmt.Fprintf(os.Stderr, "simdatagen: writing %s: %v\n", *out, err)
		os.Exit(1)
	}
	fmt.Printf("simdatagen: wrote %s: %d × %d-dim objects under %s\n",
		*out, ds.Size(), ds.Dim, ds.Dist.Name())
}
