// Command simgate is the similarity cloud's HTTP/JSON gateway: per-tenant
// API keys over the unified Search interface, admission control that
// degrades approximate fidelity before refusing, and a Prometheus /metrics
// endpoint.
//
// Demo deployment (each tenant gets its own in-process index seeded with
// clustered data — zero setup, for trying the HTTP API and load testing):
//
//	simgate -addr :8080 -tenants alice=alice-key,bob=bob-key
//
//	curl -s -H 'X-API-Key: alice-key' -d '{"kind":"approx-knn","vec":[0.1,0.2,0.3,0.4,0.5,0.6,0.7,0.8],"k":3}' \
//	    http://localhost:8080/v1/search
//
// Encrypted deployment (the gateway holds each tenant's secret key and
// fronts a running simserver; clients keep their keys off every box that
// speaks HTTP to the world except this one):
//
//	simgate -addr :8080 -upstream 127.0.0.1:4040 -tenants alice=alice-key=alice.simckey
//
// Admission control is shared across tenants: -max-inflight caps the
// concurrently served requests, between -shed-start and the cap the
// gateway steps approximate queries' CandSize down to -shed-floor, and
// -tenant-qps gives every tenant its own token bucket so one tenant's
// flood cannot starve another's quota.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"simcloud/internal/core"
	"simcloud/internal/gateway"
	"simcloud/internal/secret"
)

func main() {
	var (
		addr        = flag.String("addr", "127.0.0.1:8080", "HTTP listen address")
		tenantsSpec = flag.String("tenants", "demo=demo-key", "comma-separated tenants: name=apikey (demo mode) or name=apikey=keyfile (-upstream mode)")
		upstream    = flag.String("upstream", "", "encrypted simserver address; empty runs per-tenant in-process demo indexes")
		maxLevel    = flag.Int("max-level", 8, "index max level (-upstream: must match the server)")
		nObjects    = flag.Int("n", 2000, "demo mode: objects per tenant index")
		dim         = flag.Int("dim", 8, "demo mode: vector dimensionality")
		numPivots   = flag.Int("pivots", 16, "demo mode: pivots per tenant index")
		maxInflight = flag.Int("max-inflight", gateway.DefaultMaxInflight, "hard cap on concurrently served requests (negative disables admission control)")
		shedStart   = flag.Float64("shed-start", gateway.DefaultShedStart, "inflight fraction of -max-inflight where CandSize shedding starts")
		shedFloor   = flag.Float64("shed-floor", gateway.DefaultShedFloor, "lowest CandSize multiplier shedding applies")
		tenantQPS   = flag.Float64("tenant-qps", 0, "per-tenant token-bucket rate in queries/s (0 = unlimited)")
		tenantBurst = flag.Int("tenant-burst", 0, "per-tenant token-bucket capacity (0 = 2x -tenant-qps)")
	)
	flag.Parse()

	tenants, err := buildTenants(*tenantsSpec, *upstream, *maxLevel, *nObjects, *dim, *numPivots)
	if err != nil {
		fmt.Fprintf(os.Stderr, "simgate: %v\n", err)
		os.Exit(1)
	}
	gw, err := gateway.New(gateway.Config{
		Tenants: tenants,
		Admission: gateway.Admission{
			MaxInflight: *maxInflight,
			ShedStart:   *shedStart,
			ShedFloor:   *shedFloor,
			TenantQPS:   *tenantQPS,
			TenantBurst: *tenantBurst,
		},
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "simgate: %v\n", err)
		os.Exit(1)
	}
	defer gw.Close()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "simgate: %v\n", err)
		os.Exit(1)
	}
	srv := &http.Server{Handler: gw}
	go func() {
		if err := srv.Serve(ln); err != http.ErrServerClosed {
			fmt.Fprintf(os.Stderr, "simgate: %v\n", err)
			os.Exit(1)
		}
	}()
	mode := "demo (per-tenant in-process indexes)"
	if *upstream != "" {
		mode = "encrypted upstream " + *upstream
	}
	fmt.Printf("simgate: serving %d tenant(s) on http://%s (%s)\n", len(tenants), ln.Addr(), mode)
	fmt.Printf("simgate: try  curl -s http://%s/metrics\n", ln.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("\nsimgate: shutting down")
	srv.Close()
}

// buildTenants parses the -tenants spec and constructs each tenant's
// backend: an in-process DirectClient over fresh clustered data in demo
// mode, an EncryptedClient dialing the upstream with the tenant's own
// secret key otherwise.
func buildTenants(spec, upstream string, maxLevel, n, dim, numPivots int) ([]gateway.Tenant, error) {
	var tenants []gateway.Tenant
	for i, entry := range strings.Split(spec, ",") {
		parts := strings.Split(strings.TrimSpace(entry), "=")
		var t gateway.Tenant
		var err error
		switch {
		case upstream == "" && len(parts) == 2:
			t, err = gateway.DemoTenant(parts[0], parts[1], uint64(i+1), n, dim, numPivots, maxLevel)
		case upstream != "" && len(parts) == 3:
			t, err = upstreamTenant(parts[0], parts[1], parts[2], upstream, maxLevel)
		default:
			return nil, fmt.Errorf("tenant %q: want name=apikey (demo) or name=apikey=keyfile (-upstream)", entry)
		}
		if err != nil {
			return nil, fmt.Errorf("tenant %q: %w", parts[0], err)
		}
		tenants = append(tenants, t)
	}
	return tenants, nil
}

// upstreamTenant dials the encrypted upstream with the tenant's own secret
// key from keyFile.
func upstreamTenant(name, apiKey, keyFile, upstream string, maxLevel int) (gateway.Tenant, error) {
	blob, err := os.ReadFile(keyFile)
	if err != nil {
		return gateway.Tenant{}, err
	}
	key, err := secret.Unmarshal(blob)
	if err != nil {
		return gateway.Tenant{}, err
	}
	client, err := core.DialEncrypted(upstream, key, core.Options{MaxLevel: maxLevel})
	if err != nil {
		return gateway.Tenant{}, err
	}
	return gateway.Tenant{Name: name, Key: apiKey, Backend: client}, nil
}
