// Package simcloud is a similarity cloud with data privacy: a Go
// implementation of the Encrypted M-Index (Kozák, Novák, Zezula: "Secure
// Metric-Based Index for Similarity Cloud", SDM @ VLDB 2012).
//
// The system outsources metric similarity search to an untrusted server
// while the data owner retains a two-part secret key: the set of reference
// objects (pivots) and a symmetric cipher key. The server indexes only
// {pivot permutation [, pivot distances], ciphertext} records in an M-Index
// — a dynamic metric index built on recursive Voronoi partitioning — and can
// prune, rank and filter candidate sets without ever being able to evaluate
// the distance function or read an object. Authorized clients refine the
// candidate sets locally (decrypt + compute true distances).
//
// # Key invariant
//
// Everything the cloud side does — filing, pruning, ranking, sharding,
// cross-node merging — consumes only pivot-space metadata (permutation
// prefixes and, optionally, object–pivot distances), never objects, pivots,
// or the distance function. Only key-holding clients can turn candidates
// into answers.
//
// # Quick start
//
//	dist := simcloud.L2()
//	pivots := simcloud.SelectPivots(1, dist, data, 16)
//	key, _ := simcloud.GenerateKey(pivots)
//
//	srv, _ := simcloud.NewEncryptedServer(simcloud.DefaultConfig(16))
//	srv.Start("127.0.0.1:0")
//	defer srv.Close()
//
//	client, _ := simcloud.DialEncrypted(srv.Addr(), key, simcloud.ClientOptions{})
//	defer client.Close()
//	client.Insert(data)
//	results, costs, _ := client.Search(ctx, simcloud.Query{
//		Kind: simcloud.KindApproxKNN, Vec: query, K: 10, CandSize: 200,
//	})
//
// One Query value describes every query kind — precise range (KindRange),
// precise k-NN (KindKNN: approximate pass + range ρk), approximate k-NN
// with a tunable candidate-set size (KindApproxKNN), and the restricted
// 1-cell search (KindFirstCell) — all with the paper's cost decomposition
// (client / server / communication time, encryption / decryption time,
// bytes on the wire). Search and SearchBatch honor the context end to end:
// its deadline bounds every round trip and cancellation interrupts an
// exchange blocked on a stalled server.
//
// The same Searcher interface is implemented by three backends: the
// encrypted client above, the non-encrypted baseline (DialPlain), and an
// embedded in-process engine (NewDirectClient) for the library scenario —
// identical queries, identical answers (see DESIGN.md §API).
//
// # Mutability
//
// The index is mutable: EncryptedClient.Delete and DeleteBatch tombstone
// entries by {ID, permutation prefix} — the same pivot-space metadata an
// insert reveals — and the server compacts tombstones away either on
// demand or automatically (Config.AutoCompactFraction). After compaction
// the index is byte-identical to one freshly built from the surviving
// entries (see DESIGN.md §Mutability), so churn workloads (sustained
// insert/delete at steady state) preserve exact search semantics.
//
// # Scaling out
//
// For heavy concurrent traffic the server-side index can be partitioned:
// Config.Shards > 1 (or DefaultShardedConfig) splits the M-Index across
// independently locked shards keyed by the first permutation element, with
// searches fanned out over a bounded worker pool and merged by cell promise
// — result sets are preserved (see DESIGN.md §Sharding). On the client,
// EncryptedClient.InsertBatch and ApproxKNNBatch pipeline chunked frames so
// many operations share one round trip.
//
// Beyond one process, NewCoordinator federates several encrypted servers
// into a multi-node similarity cloud: entries place on node Perm[0] mod N,
// queries fan out and merge by the same (promise, prefix, source) order a
// sharded single server uses, and clients dial the coordinator with
// DialEncrypted unchanged. A 1-node cluster behaves exactly like that node
// served directly, and a multi-node cluster returns the identical ranked
// candidate lists a single server would (see DESIGN.md §Distribution and
// examples/cluster).
//
// Subpackages under internal implement the substrates: the metric-space
// framework, the M-Index, the encryption layer, the wire protocol, the
// cluster coordinator, the compared baseline techniques (EHI, FDH, trivial
// download), the synthetic stand-ins for the paper's data sets, and the
// benchmark harness that regenerates every evaluation table (see DESIGN.md
// and EXPERIMENTS.md).
package simcloud
