// Multiuser: the data owner outsources once, many authorized clients search
// — and tenants retire their data independently.
//
// The deployment story of the paper's Figure 1 with the key-distribution
// step made explicit: the owner builds the encrypted index and serializes
// the secret key (pivots + cipher key); authorized analysts receive the key
// blob out of band, reconstruct it, and query concurrently over their own
// connections. The server never sees the key and cannot distinguish owner
// from analyst — or from an attacker replaying permutations.
//
// The index is mutable: the second act splits the collection between two
// tenants and has tenant A delete its share. Tenant B's recall is
// untouched — its 10-NN answers before and after A's deletion are
// identical — while A's objects stop being retrievable, demonstrating
// that deletion is scoped precisely to the deleted entries.
//
//	go run ./examples/multiuser
package main

import (
	"context"
	"fmt"
	"log"
	"sort"
	"sync"

	"simcloud"
)

func main() {
	// --- The data owner's machine -------------------------------------
	data := simcloud.Human() // 4,026 gene-expression profiles, L1
	cfg := simcloud.DefaultConfig(50)
	cfg.BucketCapacity = 250 // the paper's HUMAN parameters
	pivots := simcloud.SelectPivots(2012, data.Dist, data.Objects, 50)
	key, err := simcloud.GenerateKey(pivots)
	if err != nil {
		log.Fatal(err)
	}

	srv, err := simcloud.NewEncryptedServer(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if err := srv.Start("127.0.0.1:0"); err != nil {
		log.Fatal(err)
	}
	defer srv.Close()

	owner, err := simcloud.DialEncrypted(srv.Addr(), key, simcloud.ClientOptions{Workers: 4})
	if err != nil {
		log.Fatal(err)
	}
	defer owner.Close()
	costs, err := owner.Insert(data.Objects)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("owner: outsourced %d encrypted profiles in %v\n", data.Size(), costs.Overall)

	// The key blob is what the owner hands to authorized analysts — via a
	// channel of their choosing, never through the similarity cloud.
	keyBlob, err := simcloud.MarshalKey(key)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("owner: distributing %d-byte key blob to 4 analysts\n", len(keyBlob))

	// --- Four analysts' machines, concurrently ------------------------
	// Each analyst reconstructs the key and queries through the unified
	// Search API. (Clients are also safe to share: the connection-lease
	// pool gives every concurrent operation its own connection.)
	ctx := context.Background()
	var wg sync.WaitGroup
	results := make([]string, 4)
	for analyst := range 4 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			k, err := simcloud.UnmarshalKey(keyBlob)
			if err != nil {
				log.Fatal(err)
			}
			c, err := simcloud.DialEncrypted(srv.Addr(), k, simcloud.ClientOptions{})
			if err != nil {
				log.Fatal(err)
			}
			defer c.Close()
			gene := data.Objects[100*(analyst+1)]
			res, costs, err := c.Search(ctx, simcloud.Query{
				Kind: simcloud.KindApproxKNN, Vec: gene.Vec, K: 10, CandSize: 400,
			})
			if err != nil {
				log.Fatal(err)
			}
			results[analyst] = fmt.Sprintf(
				"analyst %d: 10-NN of gene %-4d -> nearest %d (d=%.1f), %v overall, %.1f kB",
				analyst, gene.ID, res[1].ID, res[1].Dist, costs.Overall, float64(costs.CommBytes())/1000)
		}()
	}
	wg.Wait()
	for _, r := range results {
		fmt.Println(r)
	}

	// --- Tenant deletion ----------------------------------------------
	// The collection is split between two tenants: A owns the first half
	// of the profiles, B the rest. Tenant A retires its data; tenant B's
	// recall — measured against B's own ground truth — must not suffer.
	half := data.Size() / 2
	tenantA, tenantB := data.Objects[:half], data.Objects[half:]
	ownedByA := func(id uint64) bool { return id < tenantB[0].ID }

	probe := tenantB[len(tenantB)/2]
	exact := bruteForceKNN(data, tenantB, probe.Vec, 10) // B's own 10 nearest
	recallB := func() float64 {
		res, _, err := owner.Search(ctx, simcloud.Query{
			Kind: simcloud.KindApproxKNN, Vec: probe.Vec, K: 10, CandSize: 400,
		})
		if err != nil {
			log.Fatal(err)
		}
		got := make([]uint64, 0, len(res))
		for _, r := range res {
			got = append(got, r.ID)
		}
		return simcloud.Recall(got, exact)
	}
	before := recallB()

	deleted, _, err := owner.DeleteBatch(tenantA)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntenant A: deleted its %d profiles (server acked %d)\n", len(tenantA), deleted)

	after := recallB()
	fmt.Printf("tenant B: recall of its own 10-NN %.0f%% before A's deletion, %.0f%% after\n", before, after)
	if after < before {
		log.Fatalf("tenant B's recall dropped from %.0f%% to %.0f%%", before, after)
	}

	// And none of A's profiles remain retrievable, from any query angle.
	for _, q := range []simcloud.Vector{tenantA[0].Vec, tenantA[len(tenantA)/2].Vec, probe.Vec} {
		res, _, err := owner.Search(ctx, simcloud.Query{
			Kind: simcloud.KindApproxKNN, Vec: q, K: 10, CandSize: 400,
		})
		if err != nil {
			log.Fatal(err)
		}
		for _, r := range res {
			if ownedByA(r.ID) {
				log.Fatalf("deleted tenant-A profile %d is still retrievable", r.ID)
			}
		}
	}
	fmt.Println("tenant A: none of its profiles are retrievable anymore.")

	fmt.Println("\nthe server saw only permutations and ciphertexts throughout.")
}

// bruteForceKNN computes the exact k-NN of q within a tenant's own slice
// of the collection — the ground truth a tenant measures its recall
// against.
func bruteForceKNN(ds *simcloud.Dataset, own []simcloud.Object, q simcloud.Vector, k int) []uint64 {
	type pair struct {
		id uint64
		d  float64
	}
	ps := make([]pair, len(own))
	for i, o := range own {
		ps[i] = pair{o.ID, ds.Dist.Dist(q, o.Vec)}
	}
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].d != ps[j].d {
			return ps[i].d < ps[j].d
		}
		return ps[i].id < ps[j].id
	})
	out := make([]uint64, 0, k)
	for _, p := range ps[:min(k, len(ps))] {
		out = append(out, p.id)
	}
	return out
}
