// Multiuser: the data owner outsources once, many authorized clients search.
//
// The deployment story of the paper's Figure 1 with the key-distribution
// step made explicit: the owner builds the encrypted index and serializes
// the secret key (pivots + cipher key); authorized analysts receive the key
// blob out of band, reconstruct it, and query concurrently over their own
// connections. The server never sees the key and cannot distinguish owner
// from analyst — or from an attacker replaying permutations.
//
//	go run ./examples/multiuser
package main

import (
	"fmt"
	"log"
	"sync"

	"simcloud"
)

func main() {
	// --- The data owner's machine -------------------------------------
	data := simcloud.Human() // 4,026 gene-expression profiles, L1
	cfg := simcloud.DefaultConfig(50)
	cfg.BucketCapacity = 250 // the paper's HUMAN parameters
	pivots := simcloud.SelectPivots(2012, data.Dist, data.Objects, 50)
	key, err := simcloud.GenerateKey(pivots)
	if err != nil {
		log.Fatal(err)
	}

	srv, err := simcloud.NewEncryptedServer(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if err := srv.Start("127.0.0.1:0"); err != nil {
		log.Fatal(err)
	}
	defer srv.Close()

	owner, err := simcloud.DialEncrypted(srv.Addr(), key, simcloud.ClientOptions{Workers: 4})
	if err != nil {
		log.Fatal(err)
	}
	defer owner.Close()
	costs, err := owner.Insert(data.Objects)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("owner: outsourced %d encrypted profiles in %v\n", data.Size(), costs.Overall)

	// The key blob is what the owner hands to authorized analysts — via a
	// channel of their choosing, never through the similarity cloud.
	keyBlob, err := simcloud.MarshalKey(key)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("owner: distributing %d-byte key blob to 4 analysts\n", len(keyBlob))

	// --- Four analysts' machines, concurrently ------------------------
	var wg sync.WaitGroup
	results := make([]string, 4)
	for analyst := range 4 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			k, err := simcloud.UnmarshalKey(keyBlob)
			if err != nil {
				log.Fatal(err)
			}
			c, err := simcloud.DialEncrypted(srv.Addr(), k, simcloud.ClientOptions{})
			if err != nil {
				log.Fatal(err)
			}
			defer c.Close()
			gene := data.Objects[100*(analyst+1)]
			res, costs, err := c.ApproxKNN(gene.Vec, 10, 400)
			if err != nil {
				log.Fatal(err)
			}
			results[analyst] = fmt.Sprintf(
				"analyst %d: 10-NN of gene %-4d -> nearest %d (d=%.1f), %v overall, %.1f kB",
				analyst, gene.ID, res[1].ID, res[1].Dist, costs.Overall, float64(costs.CommBytes())/1000)
		}()
	}
	wg.Wait()
	for _, r := range results {
		fmt.Println(r)
	}

	fmt.Println("\nthe server saw only permutations and ciphertexts throughout.")
}
