// Cluster: federate three similarity-cloud nodes behind one coordinator.
//
// Starts three encrypted simservers plus a coordinator in one process
// (loopback TCP), indexes the same collection through the coordinator and
// through a single reference server, and shows that the federated
// deployment returns the *identical* ranked answers — the cross-node merge
// reproduces the single-server candidate order exactly, so scaling out
// does not change what clients see.
//
//	go run ./examples/cluster
package main

import (
	"context"
	"fmt"
	"log"
	"sort"

	"simcloud"
)

// bruteForceKNN computes the exact k-NN ground truth locally.
func bruteForceKNN(data *simcloud.Dataset, q simcloud.Vector, k int) []uint64 {
	type pair struct {
		id uint64
		d  float64
	}
	pairs := make([]pair, len(data.Objects))
	for i, o := range data.Objects {
		pairs[i] = pair{id: o.ID, d: data.Dist.Dist(q, o.Vec)}
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].d != pairs[j].d {
			return pairs[i].d < pairs[j].d
		}
		return pairs[i].id < pairs[j].id
	})
	out := make([]uint64, 0, k)
	for _, p := range pairs[:k] {
		out = append(out, p.id)
	}
	return out
}

func main() {
	// The data owner's side: data, pivots, secret key — identical for both
	// deployments; the key never depends on how the cloud side is laid out.
	data := simcloud.ClusteredData(1, 3000, 16, 12, simcloud.L2())
	pivots := simcloud.SelectPivots(1, data.Dist, data.Objects, 16)
	key, err := simcloud.GenerateKey(pivots)
	if err != nil {
		log.Fatal(err)
	}

	// The multi-node similarity cloud: three independent encrypted nodes.
	// Nodes of a multi-node cluster split their root cell eagerly so their
	// promise values stay comparable in the coordinator's cross-node merge
	// (a sharded node, Shards > 1, implies this automatically).
	nodeCfg := simcloud.DefaultConfig(16)
	nodeCfg.EagerRootSplit = true
	var nodeAddrs []string
	for i := range 3 {
		node, err := simcloud.NewEncryptedServer(nodeCfg)
		if err != nil {
			log.Fatal(err)
		}
		if err := node.Start("127.0.0.1:0"); err != nil {
			log.Fatal(err)
		}
		defer node.Close()
		nodeAddrs = append(nodeAddrs, node.Addr())
		fmt.Printf("node %d listening on %s\n", i, node.Addr())
	}

	// The coordinator hellos every node, verifies they agree on the index
	// shape, and serves the same wire protocol the nodes speak.
	coord, err := simcloud.NewCoordinator(nodeAddrs, simcloud.CoordinatorOptions{})
	if err != nil {
		log.Fatal(err)
	}
	if err := coord.Start("127.0.0.1:0"); err != nil {
		log.Fatal(err)
	}
	defer coord.Close()
	fmt.Printf("coordinator federating %d nodes on %s\n\n", coord.NumNodes(), coord.Addr())

	// The single-server reference deployment over the same data.
	ref, err := simcloud.NewEncryptedServer(simcloud.DefaultConfig(16))
	if err != nil {
		log.Fatal(err)
	}
	if err := ref.Start("127.0.0.1:0"); err != nil {
		log.Fatal(err)
	}
	defer ref.Close()

	// The same unchanged client dials either deployment: a coordinator is
	// indistinguishable from a server on the wire.
	cluster, err := simcloud.DialEncrypted(coord.Addr(), key, simcloud.ClientOptions{})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()
	single, err := simcloud.DialEncrypted(ref.Addr(), key, simcloud.ClientOptions{})
	if err != nil {
		log.Fatal(err)
	}
	defer single.Close()

	if _, err := cluster.InsertBatch(data.Objects); err != nil {
		log.Fatal(err)
	}
	if _, err := single.InsertBatch(data.Objects); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("indexed %d encrypted objects into both deployments\n\n", data.Size())

	// Approximate 10-NN over a query sample: recall against the exact
	// answer must be identical, because the candidate lists are identical.
	// The queries run through the context-aware Search API — a dead node
	// mid-query surfaces as an error before the deadline, never as a hang.
	ctx := context.Background()
	const k, candSize = 10, 300
	queries := []int{17, 404, 808, 1212, 1616, 2020, 2424, 2828}
	identical := true
	var recallCluster, recallSingle float64
	for _, qi := range queries {
		q := data.Objects[qi].Vec
		exact := bruteForceKNN(data, q, k)

		query := simcloud.Query{Kind: simcloud.KindApproxKNN, Vec: q, K: k, CandSize: candSize}
		fromCluster, _, err := cluster.Search(ctx, query)
		if err != nil {
			log.Fatal(err)
		}
		fromSingle, _, err := single.Search(ctx, query)
		if err != nil {
			log.Fatal(err)
		}
		for i := range fromSingle {
			if i >= len(fromCluster) || fromCluster[i].ID != fromSingle[i].ID {
				identical = false
			}
		}
		clusterIDs := make([]uint64, len(fromCluster))
		for i, r := range fromCluster {
			clusterIDs[i] = r.ID
		}
		singleIDs := make([]uint64, len(fromSingle))
		for i, r := range fromSingle {
			singleIDs[i] = r.ID
		}
		recallCluster += simcloud.Recall(clusterIDs, exact)
		recallSingle += simcloud.Recall(singleIDs, exact)
	}
	fmt.Printf("approximate %d-NN over %d queries (candidate set %d):\n", k, len(queries), candSize)
	fmt.Printf("  3-node cluster recall: %5.1f%%\n", recallCluster/float64(len(queries)))
	fmt.Printf("  single server recall:  %5.1f%%\n", recallSingle/float64(len(queries)))
	if identical {
		fmt.Println("  result lists are IDENTICAL, query for query — the cross-node")
		fmt.Println("  merge reproduces the single-server ranking exactly")
	} else {
		fmt.Println("  WARNING: result lists diverge — this should not happen")
	}
}
