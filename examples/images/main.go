// Images: approximate search in an outsourced image collection.
//
// The CoPhIR scenario of the paper: MPEG-7 visual descriptors of images
// (here the 280-dim synthetic stand-in compared by the weighted descriptor
// combination) are outsourced encrypted, and a client retrieves visually
// similar images with approximate k-NN, trading candidate-set size against
// recall — the trade-off behind Table 6.
//
//	go run ./examples/images [-n 20000]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"sort"

	"simcloud"
)

func main() {
	n := flag.Int("n", 20000, "collection size")
	flag.Parse()

	images := simcloud.CoPhIRData(*n)
	fmt.Printf("collection: %d images, %d-dim MPEG-7 descriptors, distance %s\n",
		images.Size(), images.Dim, images.Dist.Name())

	// Paper parameters for CoPhIR: 100 pivots, bucket capacity 1,000.
	cfg := simcloud.DefaultConfig(100)
	cfg.BucketCapacity = 1000
	pivots := simcloud.SelectPivots(7, images.Dist, images.Objects, 100)
	key, err := simcloud.GenerateKey(pivots)
	if err != nil {
		log.Fatal(err)
	}

	srv, err := simcloud.NewEncryptedServer(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if err := srv.Start("127.0.0.1:0"); err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	client, err := simcloud.DialEncrypted(srv.Addr(), key, simcloud.ClientOptions{})
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	fmt.Println("uploading encrypted descriptors...")
	if _, err := client.Insert(images.Objects); err != nil {
		log.Fatal(err)
	}

	// Query by example: find images similar to image #4242.
	const k = 30
	q := images.Objects[4242%*n]
	exact := bruteforce(images, q.Vec, k)

	fmt.Printf("\nquery image %d — approximate %d-NN, growing candidate set:\n", q.ID, k)
	fmt.Printf("  %-10s %-9s %-12s %-12s %s\n", "candSize", "recall", "overall", "decrypt", "comm cost")
	ctx := context.Background()
	for _, candSize := range []int{100, 500, 2000, 5000} {
		if candSize > *n {
			break
		}
		res, costs, err := client.Search(ctx, simcloud.Query{
			Kind: simcloud.KindApproxKNN, Vec: q.Vec, K: k, CandSize: candSize,
		})
		if err != nil {
			log.Fatal(err)
		}
		ids := make([]uint64, len(res))
		for i, r := range res {
			ids[i] = r.ID
		}
		fmt.Printf("  %-10d %7.1f%%  %-12v %-12v %6.1f kB\n",
			candSize,
			simcloud.Recall(ids, exact),
			costs.Overall.Round(10e3),
			costs.DecryptTime.Round(10e3),
			float64(costs.CommBytes())/1000)
	}
	fmt.Println("\nrecall rises with the candidate set while every cost component grows linearly —")
	fmt.Println("the client picks its own point on the privacy-era efficiency curve.")
}

// bruteforce computes the exact k-NN IDs.
func bruteforce(ds *simcloud.Dataset, q simcloud.Vector, k int) []uint64 {
	type cand struct {
		id uint64
		d  float64
	}
	cands := make([]cand, ds.Size())
	for i, o := range ds.Objects {
		cands[i] = cand{id: o.ID, d: ds.Dist.Dist(q, o.Vec)}
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].d < cands[j].d })
	ids := make([]uint64, k)
	for i := range k {
		ids[i] = cands[i].id
	}
	return ids
}
