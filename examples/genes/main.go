// Genes: outsourced similarity search over sensitive gene-expression data.
//
// The motivating scenario of the paper: a lab holds a gene-expression
// matrix (here the YEAST stand-in: 2,882 genes × 17 conditions, L1
// distance) that must not leak to the cloud provider. The lab outsources an
// Encrypted M-Index, then authorized clients find co-expressed genes with
// range and k-NN queries.
//
// For contrast, the same workload runs against a plain (non-encrypted)
// deployment and the cost decomposition of both is printed side by side —
// the per-query "price of privacy" of Section 5.
//
//	go run ./examples/genes
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"simcloud"
)

func main() {
	yeast := simcloud.Yeast()
	fmt.Printf("collection: %s, %d genes × %d conditions, distance %s\n",
		yeast.Name, yeast.Size(), yeast.Dim, yeast.Dist.Name())

	// Paper parameters for YEAST: 30 pivots, bucket capacity 200.
	cfg := simcloud.DefaultConfig(30)
	cfg.BucketCapacity = 200
	pivots := simcloud.SelectPivots(2012, yeast.Dist, yeast.Objects, 30)
	key, err := simcloud.GenerateKey(pivots)
	if err != nil {
		log.Fatal(err)
	}

	// Encrypted deployment.
	encSrv, err := simcloud.NewEncryptedServer(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if err := encSrv.Start("127.0.0.1:0"); err != nil {
		log.Fatal(err)
	}
	defer encSrv.Close()
	enc, err := simcloud.DialEncrypted(encSrv.Addr(), key, simcloud.ClientOptions{})
	if err != nil {
		log.Fatal(err)
	}
	defer enc.Close()
	encBuild, err := enc.Insert(yeast.Objects)
	if err != nil {
		log.Fatal(err)
	}

	// Plain deployment over the same pivots.
	plainSrv, err := simcloud.NewPlainServer(cfg, pivots)
	if err != nil {
		log.Fatal(err)
	}
	if err := plainSrv.Start("127.0.0.1:0"); err != nil {
		log.Fatal(err)
	}
	defer plainSrv.Close()
	plain, err := simcloud.DialPlain(plainSrv.Addr())
	if err != nil {
		log.Fatal(err)
	}
	defer plain.Close()
	plainBuild, err := plain.Insert(yeast.Objects)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nindex construction (whole collection):")
	fmt.Printf("  encrypted: %s\n", encBuild)
	fmt.Printf("  plain:     %s\n", plainBuild)

	// A biologist's query: genes co-expressed with gene #100. One Query
	// value runs against both deployments through the Searcher interface —
	// and a deadline guards the lab against a stalled cloud.
	gene := yeast.Objects[100]
	fmt.Printf("\nquery: genes co-expressed with gene %d (approximate 30-NN, candidate set 600)\n", gene.ID)
	query := simcloud.Query{Kind: simcloud.KindApproxKNN, Vec: gene.Vec, K: 30, CandSize: 600}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	encRes, encCosts, err := enc.Search(ctx, query)
	if err != nil {
		log.Fatal(err)
	}
	plainRes, plainCosts, err := plain.Search(ctx, query)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("  encrypted found %d neighbors; nearest: ", len(encRes))
	for i := 0; i < 5 && i < len(encRes); i++ {
		fmt.Printf("%d(%.1f) ", encRes[i].ID, encRes[i].Dist)
	}
	fmt.Printf("\n  plain found %d neighbors; nearest:     ", len(plainRes))
	for i := 0; i < 5 && i < len(plainRes); i++ {
		fmt.Printf("%d(%.1f) ", plainRes[i].ID, plainRes[i].Dist)
	}
	fmt.Println()

	fmt.Println("\nthe price of privacy (per query):")
	fmt.Printf("  encrypted: %s\n", encCosts)
	fmt.Printf("  plain:     %s\n", plainCosts)
	ratio := float64(encCosts.CommBytes()) / float64(plainCosts.CommBytes())
	fmt.Printf("  communication cost ratio (encrypted/plain): %.1f×\n", ratio)

	// A precise range query: all genes within L1 distance 250.
	within, costs, err := enc.Search(ctx, simcloud.Query{Kind: simcloud.KindRange, Vec: gene.Vec, Radius: 250})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nprecise range R(gene %d, 250): %d genes within distance\n  %s\n",
		gene.ID, len(within), costs)

	// The full outsourced flow of the paper's Figure 1: the similarity
	// search produced object IDs; the raw records (here: annotation lines)
	// live encrypted in a separate raw-data storage and are fetched last.
	rawRecords := make(map[uint64][]byte, 5)
	for i, r := range encRes {
		if i == 5 {
			break
		}
		rawRecords[r.ID] = fmt.Appendf(nil, "gene %d | expression profile %v...", r.ID, r.Object.Vec[:3])
	}
	if _, err := enc.UploadRaw(rawRecords); err != nil {
		log.Fatal(err)
	}
	ids := make([]uint64, 0, len(rawRecords))
	for id := range rawRecords {
		ids = append(ids, id)
	}
	raw, costs, err := enc.FetchRaw(ids)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nraw-data storage round trip (%d records):\n", len(raw))
	for _, id := range ids[:min(2, len(ids))] {
		fmt.Printf("  %s\n", raw[id])
	}
	fmt.Printf("  %s\n", costs)
}
