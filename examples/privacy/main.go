// Privacy: what the untrusted server (or an attacker) actually sees.
//
// A walking tour of the paper's privacy taxonomy (Section 2.3) and security
// analysis (Section 4.3): the example outsources a collection at different
// privacy levels, dumps the server's view of the data at each, and then
// plays the attacker — querying with arbitrary permutations and attempting
// to decrypt stolen candidates without the key.
//
//	go run ./examples/privacy
package main

import (
	"context"
	"fmt"
	"log"

	"simcloud"
	"simcloud/internal/core"
	"simcloud/internal/mindex"
	"simcloud/internal/secret"
	"simcloud/internal/server"
)

func main() {
	data := simcloud.ClusteredData(5, 400, 8, 5, simcloud.L2())
	pivots := simcloud.SelectPivots(5, data.Dist, data.Objects, 10)
	key, err := simcloud.GenerateKey(pivots)
	if err != nil {
		log.Fatal(err)
	}
	cfg := simcloud.DefaultConfig(10)
	cfg.BucketCapacity = 50

	fmt.Println("=== Level 1: no encryption (plain deployment) ===")
	plainSrv, err := server.NewPlain(cfg, pivots)
	if err != nil {
		log.Fatal(err)
	}
	if err := plainSrv.Start("127.0.0.1:0"); err != nil {
		log.Fatal(err)
	}
	defer plainSrv.Close()
	pc, err := simcloud.DialPlain(plainSrv.Addr())
	if err != nil {
		log.Fatal(err)
	}
	defer pc.Close()
	if _, err := pc.Insert(data.Objects[:100]); err != nil {
		log.Fatal(err)
	}
	fmt.Println("the server stores raw descriptors, pivots, and can compute all distances:")
	e := firstEntry(plainSrv.PlainIndex().Idx)
	fmt.Printf("  entry id=%d perm=%v dists[0..2]=%.1f vec[0..3]=%.2f  <- plaintext!\n",
		e.ID, e.Perm[:3], e.Dists[:3], e.Vec[:4])

	fmt.Println("\n=== Level 3: MS objects encrypted (Encrypted M-Index) ===")
	encSrv, err := server.NewEncrypted(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if err := encSrv.Start("127.0.0.1:0"); err != nil {
		log.Fatal(err)
	}
	defer encSrv.Close()
	ec, err := simcloud.DialEncrypted(encSrv.Addr(), key, simcloud.ClientOptions{})
	if err != nil {
		log.Fatal(err)
	}
	defer ec.Close()
	if _, err := ec.Insert(data.Objects); err != nil {
		log.Fatal(err)
	}
	fmt.Println("the server stores only a permutation prefix and an AES ciphertext:")
	e = firstEntry(encSrv.Index())
	fmt.Printf("  entry id=%d perm=%v dists=%v payload[0..8]=%x...\n",
		e.ID, e.Perm, e.Dists, e.Payload[:8])
	fmt.Println("  (no vectors, no pivot distances, no pivots, no distance function)")

	fmt.Println("\n=== The attacker's options (Section 4.3) ===")

	// 1. Query with an arbitrary permutation: allowed, but the response is
	// a set of ciphertexts with no distances attached, and the attacker
	// cannot know which query object the permutation corresponds to.
	attackerKey, err := secret.Generate(pivots, secret.ModeCTRHMAC) // different cipher key!
	if err != nil {
		log.Fatal(err)
	}
	attacker, err := core.DialEncrypted(encSrv.Addr(), attackerKey, core.Options{MaxLevel: cfg.MaxLevel})
	if err != nil {
		log.Fatal(err)
	}
	defer attacker.Close()
	_, _, err = attacker.Search(context.Background(),
		core.Query{Kind: core.KindApproxKNN, Vec: data.Objects[0].Vec, K: 5, CandSize: 20})
	fmt.Printf("1. querying with a guessed permutation, then decrypting the candidates:\n   -> %v\n", err)

	// 2. Steal a ciphertext from the server and try to open it.
	stolen := firstEntry(encSrv.Index()).Payload
	if _, err := attackerKey.Open(stolen); err != nil {
		fmt.Printf("2. decrypting a stolen ciphertext without the key:\n   -> %v\n", err)
	}

	// 3. Tamper with a stored ciphertext: an authorized client detects it.
	tampered := append([]byte{}, stolen...)
	tampered[len(tampered)/2] ^= 1
	if _, err := key.Open(tampered); err != nil {
		fmt.Printf("3. tampering with a stored ciphertext (detected by the real client):\n   -> %v\n", err)
	}

	// 4. What leaks: the cell structure, i.e. WHICH objects cluster
	// together — but not WHERE they are or HOW similar. This is the gap to
	// privacy level 4 the paper leaves as future work.
	st := indexStats(encSrv.Index())
	fmt.Printf("4. what does leak: the cell tree shape (%d cells, depth <= %d) —\n", st.Leaves, st.MaxDepth)
	fmt.Println("   encrypted objects sharing cells are likely similar; distances stay hidden.")
}

// entrySource is what both deployments expose for inspection: the bare
// index of the plain server and the sharded engine of the encrypted one.
type entrySource interface {
	AllEntries() ([]mindex.Entry, error)
	TreeStats() mindex.Stats
}

func firstEntry(idx entrySource) mindex.Entry {
	entries, err := idx.AllEntries()
	if err != nil || len(entries) == 0 {
		log.Fatal("no entries on server")
	}
	return entries[0]
}

func indexStats(idx entrySource) mindex.Stats { return idx.TreeStats() }
