// Quickstart: outsource an encrypted similarity index and search it.
//
// Runs a similarity-cloud server and an authorized client in one process
// (loopback TCP), indexes a small clustered collection, and issues the
// query kinds of the paper through the unified Search API: approximate
// k-NN, precise k-NN and precise range — then runs the very same queries
// against an in-process DirectClient (no server, no network) and checks
// the answers agree.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"simcloud"
)

func main() {
	// The data owner's side: data, pivots, secret key.
	data := simcloud.ClusteredData(1, 2000, 16, 12, simcloud.L2())
	pivots := simcloud.SelectPivots(1, data.Dist, data.Objects, 16)
	key, err := simcloud.GenerateKey(pivots)
	if err != nil {
		log.Fatal(err)
	}

	// The untrusted similarity cloud: it receives only the index
	// configuration — never the pivots or the cipher key.
	srv, err := simcloud.NewEncryptedServer(simcloud.DefaultConfig(16))
	if err != nil {
		log.Fatal(err)
	}
	if err := srv.Start("127.0.0.1:0"); err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	fmt.Printf("similarity cloud listening on %s\n", srv.Addr())

	// An authorized client: holds the secret key. Every operation takes a
	// context — a deadline here means a stalled cloud cannot hang us.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	client, err := simcloud.DialEncryptedContext(ctx, srv.Addr(), key, simcloud.ClientOptions{})
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	// Construction phase: encrypt-and-insert the collection.
	costs, err := client.InsertContext(ctx, data.Objects)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("indexed %d encrypted objects\n  %s\n", data.Size(), costs)

	// Approximate 10-NN with a 200-object candidate set.
	q := data.Objects[123].Vec
	results, costs, err := client.Search(ctx, simcloud.Query{
		Kind: simcloud.KindApproxKNN, Vec: q, K: 10, CandSize: 200,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\napproximate 10-NN (candidate set 200):")
	for i, r := range results {
		fmt.Printf("  #%-2d id=%-6d dist=%.4f\n", i+1, r.ID, r.Dist)
	}
	fmt.Printf("  %s\n", costs)

	// Precise 5-NN: approximate pass + range ρk, guaranteed exact.
	precise, costs, err := client.Search(ctx, simcloud.Query{
		Kind: simcloud.KindKNN, Vec: q, K: 5, CandSize: 100,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nprecise 5-NN:")
	for i, r := range precise {
		fmt.Printf("  #%-2d id=%-6d dist=%.4f\n", i+1, r.ID, r.Dist)
	}
	fmt.Printf("  %s\n", costs)

	// Precise range query around the 5th neighbor's distance.
	radius := precise[len(precise)-1].Dist
	within, costs, err := client.Search(ctx, simcloud.Query{
		Kind: simcloud.KindRange, Vec: q, Radius: radius,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nprecise range R(q, %.4f): %d objects\n  %s\n", radius, len(within), costs)

	// The embedded-library deployment: the same engine, key and queries,
	// no server and no network — DirectClient implements the same Searcher
	// interface, so the query code is identical.
	direct, err := simcloud.NewDirectClient(simcloud.DefaultConfig(16), key, simcloud.ClientOptions{})
	if err != nil {
		log.Fatal(err)
	}
	defer direct.Close()
	if _, err := direct.InsertContext(ctx, data.Objects); err != nil {
		log.Fatal(err)
	}
	embedded, _, err := direct.Search(ctx, simcloud.Query{
		Kind: simcloud.KindKNN, Vec: q, K: 5, CandSize: 100,
	})
	if err != nil {
		log.Fatal(err)
	}
	same := len(embedded) == len(precise)
	for i := range embedded {
		same = same && embedded[i].ID == precise[i].ID && embedded[i].Dist == precise[i].Dist
	}
	fmt.Printf("\nembedded DirectClient, same precise 5-NN: identical answers = %v\n", same)
}
