package simcloud

// TestMarkdownLinks is the repo's docs gate: every intra-repo link in
// every markdown file must resolve to an existing file or directory, so
// README/DESIGN/EXPERIMENTS cannot silently rot as files move. CI runs it
// in the docs job; locally: go test -run TestMarkdownLinks .

import (
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// mdLink matches [text](target); target must not contain spaces or a
// closing parenthesis (the markdown this repo writes).
var mdLink = regexp.MustCompile(`\]\(([^)\s]+)\)`)

func TestMarkdownLinks(t *testing.T) {
	checked := 0
	err := filepath.WalkDir(".", func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if name := d.Name(); name == ".git" || name == ".claude" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".md") {
			return nil
		}
		blob, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for _, m := range mdLink.FindAllStringSubmatch(string(blob), -1) {
			target := m[1]
			switch {
			case strings.HasPrefix(target, "http://"),
				strings.HasPrefix(target, "https://"),
				strings.HasPrefix(target, "mailto:"),
				strings.HasPrefix(target, "#"):
				continue // external or in-page; not this test's business
			}
			// Drop an in-file anchor; the file part must still exist.
			if i := strings.IndexByte(target, '#'); i >= 0 {
				target = target[:i]
				if target == "" {
					continue
				}
			}
			resolved := filepath.Join(filepath.Dir(path), target)
			if _, err := os.Stat(resolved); err != nil {
				t.Errorf("%s: broken link %q (resolved %s): %v", path, m[1], resolved, err)
			}
			checked++
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if checked == 0 {
		t.Fatal("no intra-repo markdown links found — the checker is not seeing the docs")
	}
	t.Logf("checked %d intra-repo links", checked)
}
