package simcloud

import (
	"testing"
)

// TestFacadeEndToEnd exercises the documented public API exactly as the
// package comment advertises it.
func TestFacadeEndToEnd(t *testing.T) {
	ds := ClusteredData(1, 500, 8, 6, L2())
	pivots := SelectPivots(1, ds.Dist, ds.Objects, 12)
	key, err := GenerateKey(pivots)
	if err != nil {
		t.Fatal(err)
	}

	srv, err := NewEncryptedServer(DefaultConfig(12))
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	client, err := DialEncrypted(srv.Addr(), key, ClientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	if _, err := client.Insert(ds.Objects); err != nil {
		t.Fatal(err)
	}

	q := ds.Objects[7].Vec
	results, costs, err := client.ApproxKNN(q, 5, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 5 {
		t.Fatalf("got %d results", len(results))
	}
	if results[0].Dist != 0 {
		t.Fatalf("query object not its own nearest neighbor: %g", results[0].Dist)
	}
	if costs.CommBytes() <= 0 || costs.DecryptTime <= 0 {
		t.Fatalf("implausible costs: %+v", costs)
	}

	// Precise search through the facade.
	precise, _, err := client.KNN(q, 3, 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(precise) != 3 || precise[0].Dist != 0 {
		t.Fatalf("precise kNN: %+v", precise)
	}

	within, _, err := client.Range(q, precise[2].Dist)
	if err != nil {
		t.Fatal(err)
	}
	if len(within) < 3 {
		t.Fatalf("range under ρ3 returned %d < 3 objects", len(within))
	}
}

func TestFacadeKeyRoundTrip(t *testing.T) {
	ds := ClusteredData(2, 50, 4, 3, L1())
	key, err := GenerateKey(SelectPivots(2, ds.Dist, ds.Objects, 8))
	if err != nil {
		t.Fatal(err)
	}
	blob, err := MarshalKey(key)
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalKey(blob)
	if err != nil {
		t.Fatal(err)
	}
	if got.Pivots().N() != 8 {
		t.Fatalf("pivots = %d", got.Pivots().N())
	}
}

func TestFacadeDistances(t *testing.T) {
	a, b := Vector{0, 0}, Vector{3, 4}
	if got := L2().Dist(a, b); got != 5 {
		t.Fatalf("L2 = %g", got)
	}
	if got := L1().Dist(a, b); got != 7 {
		t.Fatalf("L1 = %g", got)
	}
	if got := Linf().Dist(a, b); got != 4 {
		t.Fatalf("Linf = %g", got)
	}
	if got := Lp(2).Dist(a, b); got != 5 {
		t.Fatalf("Lp(2) = %g", got)
	}
	if CoPhIR().Name() != "cophir" {
		t.Fatal("CoPhIR distance misnamed")
	}
	if _, err := DistanceByName("L1"); err != nil {
		t.Fatal(err)
	}
	if Recall([]uint64{1}, []uint64{1, 2}) != 50 {
		t.Fatal("recall through facade broken")
	}
}

func TestFacadeDatasets(t *testing.T) {
	if Yeast().Size() != 2882 {
		t.Fatal("YEAST size")
	}
	if Human().Size() != 4026 {
		t.Fatal("HUMAN size")
	}
	if CoPhIRData(10).Size() != 10 {
		t.Fatal("CoPhIR size")
	}
}

func TestFacadeEqualizingTransform(t *testing.T) {
	ds := ClusteredData(9, 400, 6, 5, L2())
	key, err := GenerateKey(SelectPivots(9, ds.Dist, ds.Objects, 10))
	if err != nil {
		t.Fatal(err)
	}
	if err := FitEqualizingTransform(key, ds.Objects, 100, 16); err != nil {
		t.Fatal(err)
	}
	if key.Transform() == nil {
		t.Fatal("transform not attached")
	}
	// Exactness survives end to end.
	srv, err := NewEncryptedServer(DefaultConfig(10))
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	client, err := DialEncrypted(srv.Addr(), key, ClientOptions{StoreDists: true})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if _, err := client.Insert(ds.Objects); err != nil {
		t.Fatal(err)
	}
	q := ds.Objects[3].Vec
	got, _, err := client.Range(q, 6)
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for _, o := range ds.Objects {
		if ds.Dist.Dist(q, o.Vec) <= 6 {
			want++
		}
	}
	if len(got) != want {
		t.Fatalf("transformed range: %d results, want %d", len(got), want)
	}
}

func TestFacadePlainDeployment(t *testing.T) {
	ds := ClusteredData(3, 300, 6, 4, L2())
	pivots := SelectPivots(3, ds.Dist, ds.Objects, 10)
	srv, err := NewPlainServer(DefaultConfig(10), pivots)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	client, err := DialPlain(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if _, err := client.Insert(ds.Objects); err != nil {
		t.Fatal(err)
	}
	res, _, err := client.KNN(ds.Objects[0].Vec, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 4 || res[0].Dist != 0 {
		t.Fatalf("plain kNN: %+v", res)
	}
}
