package simcloud

import (
	"context"
	"math/rand/v2"

	"simcloud/internal/cluster"
	"simcloud/internal/core"
	"simcloud/internal/dataset"
	"simcloud/internal/kmeans"
	"simcloud/internal/metric"
	"simcloud/internal/mindex"
	"simcloud/internal/pivot"
	"simcloud/internal/secret"
	"simcloud/internal/server"
	"simcloud/internal/stats"
)

// Re-exported core types. Aliases keep the full method sets available while
// the implementations live in internal packages.
type (
	// Vector is a metric-space descriptor (float32 components).
	Vector = metric.Vector
	// Object is an identified metric-space object.
	Object = metric.Object
	// Distance is a metric distance function.
	Distance = metric.Distance
	// Result is one similarity-search answer.
	Result = core.Result
	// Costs is the per-operation cost decomposition.
	Costs = stats.Costs
	// Config parametrizes the server-side M-Index.
	Config = mindex.Config
	// Key is the client secret (pivots + cipher key).
	Key = secret.Key
	// PivotSet is an ordered set of reference objects.
	PivotSet = pivot.Set
	// Server is a similarity-cloud server.
	Server = server.Server
	// EncryptedClient is an authorized client of the encrypted deployment.
	EncryptedClient = core.EncryptedClient
	// PlainClient is a client of the non-encrypted baseline deployment.
	PlainClient = core.PlainClient
	// DirectClient embeds the index engine in-process: same client-side
	// transform and refinement as EncryptedClient, no network.
	DirectClient = core.DirectClient
	// ClientOptions configures an encrypted client.
	ClientOptions = core.Options
	// Query is one similarity query, uniform across every backend and kind
	// (see QueryKind and the Searcher interface).
	Query = core.Query
	// QueryKind selects a Query's flavor (KindRange, KindKNN,
	// KindApproxKNN, KindFirstCell).
	QueryKind = core.QueryKind
	// Searcher is the unified context-aware query surface implemented by
	// EncryptedClient, PlainClient and DirectClient.
	Searcher = core.Searcher
	// Dataset is a generated evaluation collection.
	Dataset = dataset.Dataset
	// Coordinator federates several encrypted servers into one similarity
	// cloud (see internal/cluster and DESIGN.md §Distribution).
	Coordinator = cluster.Coordinator
	// CoordinatorOptions configures a Coordinator.
	CoordinatorOptions = cluster.Options
	// Stats is the unified operational view of one Searcher backend:
	// engine population, tree shape, cache counters and lease-pool depth
	// behind one JSON-encodable facade (see CollectStats). The gateway's
	// /metrics endpoint and simbench consume exactly this shape.
	Stats = core.Stats
	// EngineStats is the Stats section describing index entry population.
	EngineStats = core.EngineStats
	// TreeStats is the Stats section describing the cell-tree shape.
	TreeStats = core.TreeStats
	// CacheStats is the Stats section with the disk bucket-cache counters.
	CacheStats = core.CacheStats
	// IngestStats is the Stats section with the ingest counters (entries
	// accepted, bulk-builder batches, encoded bytes).
	IngestStats = core.IngestStats
	// PoolStats is the Stats section with the connection-lease-pool depth
	// and lifetime dial/discard counters of a networked client.
	PoolStats = core.PoolStats
	// KMeansDirect is the in-process client of the k-means routing family:
	// centroid cells instead of pivot permutations, same Searcher contract
	// and encrypted-bucket storage (see DESIGN.md §Routing Families).
	KMeansDirect = core.KMeansDirect
	// KMeansConfig parametrizes the server-side k-means cell index.
	KMeansConfig = kmeans.Config
	// KMeansModel is a trained set of centroids — the client secret of the
	// k-means family, fed to GenerateKey via its PivotSet.
	KMeansModel = kmeans.Model
	// KMeansTrainConfig parametrizes TrainKMeans (K, seed, Lloyd iteration
	// bound, training-sample cap, metric — spherical update under Cosine).
	KMeansTrainConfig = kmeans.TrainConfig
	// CandSizePredictor is the learned per-query candidate-size model
	// selected by Query.TargetRecall (fit it with KMeansDirect.Calibrate).
	CandSizePredictor = kmeans.Predictor
)

// Storage backends for Config.Storage.
const (
	StorageMemory = mindex.StorageMemory
	StorageDisk   = mindex.StorageDisk
)

// DefaultDiskCacheBytes is the bucket-cache budget a disk-backed index gets
// when Config.DiskCacheBytes is left 0: the server keeps up to this many
// bytes of decoded leaf buckets in an LRU and serves repeated queries from
// it instead of re-reading bucket files (set DiskCacheBytes negative to
// disable, positive to size it explicitly; results are identical either
// way — see DESIGN.md §Performance).
const DefaultDiskCacheBytes = mindex.DefaultDiskCacheBytes

// Cell-ranking strategies for Config.Ranking.
const (
	RankFootrule = mindex.RankFootrule
	RankDistSum  = mindex.RankDistSum
)

// Query kinds for Query.Kind: the precise range query R(q, r), the precise
// k-NN query (approximate pass + range ρk), the approximate k-NN over a
// promise-ranked candidate set, and the restricted 1-cell approximate k-NN
// of the paper's Section 5.4 comparison.
const (
	KindRange     = core.KindRange
	KindKNN       = core.KindKNN
	KindApproxKNN = core.KindApproxKNN
	KindFirstCell = core.KindFirstCell
)

// Cipher modes for GenerateKeyMode.
const (
	ModeCTRHMAC = secret.ModeCTRHMAC
	ModeGCM     = secret.ModeGCM
)

// L1 returns the Manhattan distance.
func L1() Distance { return metric.L1{} }

// L2 returns the Euclidean distance.
func L2() Distance { return metric.L2{} }

// Linf returns the Chebyshev (maximum) distance.
func Linf() Distance { return metric.Chebyshev{} }

// Lp returns the Minkowski distance of order p (p >= 1).
func Lp(p float64) Distance { return metric.Lp{P: p} }

// CoPhIR returns the weighted MPEG-7 descriptor-combination distance used
// by the CoPhIR image collection.
func CoPhIR() Distance { return metric.NewCoPhIR() }

// Cosine returns the angular distance (1 − cosine similarity) — the
// standard metric for normalized embedding vectors.
func Cosine() Distance { return metric.Cosine{} }

// DistanceByName resolves a distance function by its Name() string.
func DistanceByName(name string) (Distance, error) { return metric.ByName(name) }

// DefaultConfig returns a reasonable M-Index configuration for numPivots
// pivots: dynamic depth up to min(8, numPivots), bucket capacity 200,
// memory storage, footrule ranking.
func DefaultConfig(numPivots int) Config {
	return Config{
		NumPivots:      numPivots,
		MaxLevel:       min(8, numPivots),
		BucketCapacity: 200,
		Storage:        StorageMemory,
		Ranking:        RankFootrule,
	}
}

// DefaultShardedConfig is DefaultConfig with the index partitioned across
// the given number of independently locked shards (see Config.Shards):
// inserts hash-route by the first permutation element and searches fan out
// in parallel, converting the server hot path from lock-serialized to
// core-parallel while preserving result sets. Shards <= 1 is exactly
// DefaultConfig.
func DefaultShardedConfig(numPivots, shards int) Config {
	cfg := DefaultConfig(numPivots)
	cfg.Shards = shards
	return cfg
}

// SelectPivots draws n pivots at random (deterministically from seed) from
// the data collection, the paper's pivot-selection strategy.
func SelectPivots(seed uint64, dist Distance, data []Object, n int) *PivotSet {
	rng := rand.New(rand.NewPCG(seed, 0x51E7))
	return pivot.SelectRandom(rng, dist, data, n)
}

// SelectPivotsMaxSeparated draws n pivots by greedy farthest-point
// traversal — an alternative to the paper's random choice that yields more
// discriminative permutations (see the pivot-selection ablation benchmark).
func SelectPivotsMaxSeparated(seed uint64, dist Distance, data []Object, n int) *PivotSet {
	rng := rand.New(rand.NewPCG(seed, 0x51E8))
	return pivot.SelectMaxSeparated(rng, dist, data, n, 0)
}

// NewPivotSet wraps explicit pivot vectors.
func NewPivotSet(dist Distance, pivots []Vector) *PivotSet {
	return pivot.NewSet(dist, pivots)
}

// GenerateKey creates a fresh secret key (AES-128-CTR + HMAC-SHA256) for
// the pivot set. The key must be shared only with authorized clients.
func GenerateKey(pivots *PivotSet) (*Key, error) {
	return secret.Generate(pivots, secret.ModeCTRHMAC)
}

// GenerateKeyMode is GenerateKey with an explicit cipher mode.
func GenerateKeyMode(pivots *PivotSet, mode secret.Mode) (*Key, error) {
	return secret.Generate(pivots, mode)
}

// MarshalKey serializes a key for distribution to authorized clients.
func MarshalKey(k *Key) ([]byte, error) { return k.Marshal() }

// FitEqualizingTransform attaches a distribution-hiding distance
// transformation to the key (the paper's future-work privacy level 4,
// implemented for the precise strategy): object–pivot distances stored on
// the server are remapped through a keyed strictly monotone equalizing
// transform, so the server sees an (approximately) uniform distance
// distribution instead of the data's fingerprint. Query results remain
// exact; pruning gets conservatively looser. The transform is fitted from
// sampleSize objects of data (capped at the collection size) and travels
// inside the marshaled key.
func FitEqualizingTransform(k *Key, data []Object, sampleSize, knots int) error {
	if sampleSize > len(data) {
		sampleSize = len(data)
	}
	pivots := k.Pivots()
	sample := make([]float64, 0, sampleSize*pivots.N())
	step := 1
	if sampleSize > 0 {
		step = max(1, len(data)/sampleSize)
	}
	for i := 0; i < len(data); i += step {
		sample = append(sample, pivots.Distances(data[i].Vec)...)
	}
	return k.FitTransform(sample, knots)
}

// UnmarshalKey reconstructs a key serialized by MarshalKey.
func UnmarshalKey(blob []byte) (*Key, error) { return secret.Unmarshal(blob) }

// NewEncryptedServer creates a similarity-cloud server for the encrypted
// deployment: it stores only ciphertexts plus pivot-space metadata and
// returns candidate sets.
func NewEncryptedServer(cfg Config) (*Server, error) { return server.NewEncrypted(cfg) }

// NewPlainServer creates the non-encrypted baseline server: it owns the
// pivots and raw data and answers queries completely.
func NewPlainServer(cfg Config, pivots *PivotSet) (*Server, error) {
	return server.NewPlain(cfg, pivots)
}

// NewCoordinator connects to the encrypted servers at the given addresses,
// verifies they are key-compatible, and federates them behind one address:
// entries place on node Perm[0] mod N, queries fan out and combine by the
// same merge order a sharded single server uses, and clients connect with
// DialEncrypted exactly as to a single server. Nodes of a multi-node
// cluster must run with Config.EagerRootSplit (or Shards > 1); see
// DESIGN.md §Distribution.
func NewCoordinator(nodeAddrs []string, opts CoordinatorOptions) (*Coordinator, error) {
	return cluster.New(nodeAddrs, opts)
}

// DialEncrypted connects an authorized client to an encrypted server.
func DialEncrypted(addr string, key *Key, opts ClientOptions) (*EncryptedClient, error) {
	return core.DialEncrypted(addr, key, opts)
}

// DialEncryptedContext is DialEncrypted under a context: ctx bounds the
// dial and the hello handshake that verifies the server is an encrypted
// deployment over the key's pivot count.
func DialEncryptedContext(ctx context.Context, addr string, key *Key, opts ClientOptions) (*EncryptedClient, error) {
	return core.DialEncryptedContext(ctx, addr, key, opts)
}

// DialPlain connects a client to a plain server.
func DialPlain(addr string) (*PlainClient, error) { return core.DialPlain(addr) }

// DialPlainContext is DialPlain under a context (see DialEncryptedContext).
func DialPlainContext(ctx context.Context, addr string) (*PlainClient, error) {
	return core.DialPlainContext(ctx, addr)
}

// NewDirectClient creates an in-process client over a fresh index engine
// built from cfg — the embedded-library deployment: identical privacy
// posture on disk and in memory (the index stores only ciphertexts plus
// pivot-space metadata), no network. It implements Searcher, so code
// written against Search/SearchBatch runs unchanged against all three
// backends.
func NewDirectClient(cfg Config, key *Key, opts ClientOptions) (*DirectClient, error) {
	return core.NewDirect(cfg, key, opts)
}

// CollectStats gathers the unified operational stats a Searcher backend
// can report: engine/tree/cache sections when the backend holds the engine
// in-process (DirectClient), lease-pool depth when it is networked
// (EncryptedClient, PlainClient). Collection never fails — backends that
// cannot report a section leave it zero.
func CollectStats(s Searcher) Stats { return core.CollectStats(s) }

// Recall returns |result ∩ exact| / |exact| in percent.
func Recall(result, exact []uint64) float64 { return stats.Recall(result, exact) }

// Evaluation data-set generators (synthetic stand-ins for the paper's
// collections; see DESIGN.md for the substitution rationale).

// Yeast generates the YEAST gene-expression stand-in (2,882 × 17, L1).
func Yeast() *Dataset { return dataset.Yeast() }

// Human generates the HUMAN gene-expression stand-in (4,026 × 96, L1).
func Human() *Dataset { return dataset.Human() }

// CoPhIRData generates an n-object CoPhIR image-descriptor stand-in
// (n × 280, weighted MPEG-7 combination).
func CoPhIRData(n int) *Dataset { return dataset.CoPhIR(n) }

// ClusteredData generates a generic clustered collection for experiments.
func ClusteredData(seed uint64, n, dim, clusters int, dist Distance) *Dataset {
	return dataset.Clustered(seed, n, dim, clusters, dist)
}

// Embed768Data generates an n-object 768-dimensional unit-normalized
// embedding stand-in (cosine distance) — today's hottest similarity
// workload and the high-dimensional stress test for both routing families.
func Embed768Data(n int) *Dataset { return dataset.Embed768(n) }

// TrainKMeans fits the centroid model of the k-means routing family to a
// collection (deterministic for a given TrainConfig.Seed). The model is a
// client secret: derive the deployment key from its PivotSet with
// GenerateKey and persist both — a regenerated key cannot decrypt old
// payloads.
func TrainKMeans(cfg KMeansTrainConfig, data []Object) (*KMeansModel, error) {
	return kmeans.Train(cfg, data)
}

// NewKMeansDirect creates an in-process client over a fresh k-means cell
// index — the second index family behind the same Searcher interface:
// objects route to their nearest centroid's cell, approximate queries fan
// out to the Config.Fanout nearest centroids and merge promise-ranked,
// range/KNN answers are equivalence-tested against the M-Index backends.
// The key must be generated from the trained model's PivotSet.
func NewKMeansDirect(cfg KMeansConfig, key *Key, opts ClientOptions) (*KMeansDirect, error) {
	return core.NewKMeansDirect(cfg, key, opts)
}
