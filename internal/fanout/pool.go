// Package fanout provides the bounded worker pool behind every
// fan-out-and-join operation in the serving path: the sharded engine fans
// searches across index shards with it, and the cluster coordinator fans
// requests across simserver nodes with it. One fixed set of workers drains
// a single task channel, so the number of goroutines touching the fanned
// resources at any moment is capped regardless of how many operations are
// in flight — concurrent fan-outs interleave their tasks instead of
// multiplying goroutines.
package fanout

import (
	"errors"
	"sync"
)

// ErrClosed reports a Run attempted on (or interrupted by) a closed pool.
var ErrClosed = errors.New("fanout: pool is closed")

// Pool is a bounded worker pool. The zero value is not usable; construct
// with New.
type Pool struct {
	tasks chan func()
	// mu makes Close safe against in-flight Run calls: Run submits under
	// the read lock, Close closes the channel under the write lock, so a
	// Close racing a fan-out yields ErrClosed instead of a send-on-closed-
	// channel panic.
	mu     sync.RWMutex
	closed bool
}

// New starts workers goroutines draining the task channel.
func New(workers int) *Pool {
	p := &Pool{tasks: make(chan func())}
	for range workers {
		go func() {
			for fn := range p.tasks {
				fn()
			}
		}()
	}
	return p
}

// Close stops the workers once all queued tasks have drained. Idempotent;
// blocks until no Run call is mid-submission.
func (p *Pool) Close() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.closed {
		p.closed = true
		close(p.tasks)
	}
}

// Run executes fn(0..n-1) on the pool and blocks until all calls returned,
// reporting the error of the lowest-numbered failing task (deterministic
// regardless of scheduling). A pool closed before or during submission
// yields ErrClosed.
func (p *Pool) Run(n int, fn func(i int) error) error {
	if n == 1 {
		return fn(0)
	}
	p.mu.RLock()
	if p.closed {
		p.mu.RUnlock()
		return ErrClosed
	}
	errs := make([]error, n)
	var wg sync.WaitGroup
	wg.Add(n)
	for i := range n {
		p.tasks <- func() {
			defer wg.Done()
			errs[i] = fn(i)
		}
	}
	p.mu.RUnlock()
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
