package fanout

import (
	"errors"
	"sync/atomic"
	"testing"
)

func TestRunExecutesAll(t *testing.T) {
	p := New(4)
	defer p.Close()
	var hits [16]atomic.Int32
	if err := p.Run(len(hits), func(i int) error {
		hits[i].Add(1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i := range hits {
		if got := hits[i].Load(); got != 1 {
			t.Fatalf("task %d ran %d times", i, got)
		}
	}
}

func TestRunReportsLowestError(t *testing.T) {
	p := New(3)
	defer p.Close()
	errA, errB := errors.New("a"), errors.New("b")
	err := p.Run(8, func(i int) error {
		switch i {
		case 3:
			return errA
		case 6:
			return errB
		}
		return nil
	})
	if err != errA {
		t.Fatalf("got %v, want the lowest-numbered task's error %v", err, errA)
	}
}

func TestRunSingleTaskInline(t *testing.T) {
	// n == 1 runs inline even on a closed pool — no pool dependency.
	p := New(1)
	p.Close()
	ran := false
	if err := p.Run(1, func(int) error { ran = true; return nil }); err != nil || !ran {
		t.Fatalf("inline task: ran=%v err=%v", ran, err)
	}
}

func TestClosedPool(t *testing.T) {
	p := New(2)
	p.Close()
	p.Close() // idempotent
	if err := p.Run(4, func(int) error { return nil }); !errors.Is(err, ErrClosed) {
		t.Fatalf("got %v, want ErrClosed", err)
	}
}
