package server

import (
	"math/rand/v2"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"simcloud/internal/dataset"
	"simcloud/internal/metric"
	"simcloud/internal/mindex"
	"simcloud/internal/pivot"
	"simcloud/internal/wire"
)

func testCfg() mindex.Config {
	return mindex.Config{
		NumPivots: 6, MaxLevel: 3, BucketCapacity: 10,
		Storage: mindex.StorageMemory, Ranking: mindex.RankFootrule,
	}
}

func startEncrypted(t *testing.T) *Server {
	t.Helper()
	srv, err := NewEncrypted(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	srv.Logf = func(string, ...any) {} // silence expected connection errors
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv
}

func dial(t *testing.T, srv *Server) net.Conn {
	t.Helper()
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return conn
}

// request sends one frame and reads one response.
func request(t *testing.T, conn net.Conn, typ wire.MsgType, payload []byte) (wire.MsgType, []byte) {
	t.Helper()
	if err := wire.WriteFrame(conn, typ, payload); err != nil {
		t.Fatal(err)
	}
	respType, resp, err := wire.ReadFrame(conn)
	if err != nil {
		t.Fatal(err)
	}
	return respType, resp
}

func expectError(t *testing.T, conn net.Conn, typ wire.MsgType, payload []byte, contains string) {
	t.Helper()
	respType, resp := request(t, conn, typ, payload)
	if respType != wire.MsgError {
		t.Fatalf("%v: expected error response, got %v", typ, respType)
	}
	m, err := wire.DecodeErrorResp(resp)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(m.Msg, contains) {
		t.Fatalf("%v: error %q does not mention %q", typ, m.Msg, contains)
	}
}

func TestUnknownMessageType(t *testing.T) {
	srv := startEncrypted(t)
	conn := dial(t, srv)
	expectError(t, conn, wire.MsgType(250), nil, "unsupported request")
}

func TestGarbagePayloadIsError(t *testing.T) {
	srv := startEncrypted(t)
	conn := dial(t, srv)
	// A malformed insert payload must produce an error, not kill the server.
	expectError(t, conn, wire.MsgInsertEntries, []byte{0xFF, 0xFF, 0xFF, 0xFF, 1, 2}, "")
	// The connection must still be usable afterwards.
	respType, _ := request(t, conn, wire.MsgDownloadAll, nil)
	if respType != wire.MsgCandidates {
		t.Fatalf("connection dead after error: got %v", respType)
	}
}

func TestModeGuards(t *testing.T) {
	srv := startEncrypted(t)
	conn := dial(t, srv)
	expectError(t, conn, wire.MsgInsertObjects,
		wire.InsertObjectsReq{Objects: []metric.Object{{ID: 1, Vec: metric.Vector{1}}}}.Encode(),
		"plain")
	expectError(t, conn, wire.MsgKNNPlain,
		wire.KNNPlainReq{Q: metric.Vector{1}, K: 1}.Encode(),
		"plain")

	// And the reverse on a plain server.
	ds := dataset.Clustered(1, 50, 2, 2, metric.L1{})
	rng := rand.New(rand.NewPCG(1, 1))
	pv := pivot.SelectRandom(rng, ds.Dist, ds.Objects, 6)
	psrv, err := NewPlain(testCfg(), pv)
	if err != nil {
		t.Fatal(err)
	}
	if err := psrv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer psrv.Close()
	pconn, err := net.Dial("tcp", psrv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer pconn.Close()
	if err := wire.WriteFrame(pconn, wire.MsgDownloadAll, nil); err != nil {
		t.Fatal(err)
	}
	respType, _, err := wire.ReadFrame(pconn)
	if err != nil {
		t.Fatal(err)
	}
	if respType != wire.MsgError {
		t.Fatalf("encrypted-only request on plain server: got %v", respType)
	}
}

func TestInvalidPermutationRejected(t *testing.T) {
	srv := startEncrypted(t)
	conn := dial(t, srv)
	// Duplicate elements: not a permutation.
	expectError(t, conn, wire.MsgApproxPerm,
		wire.ApproxPermReq{Perm: []int32{0, 0, 1, 2, 3, 4}, CandSize: 5}.Encode(),
		"permutation")
	expectError(t, conn, wire.MsgFirstCell,
		wire.FirstCellReq{Perm: []int32{0, 1}}.Encode(),
		"permutation")
}

// TestDeleteDispatch drives the delete path over the wire: insert entries,
// tombstone a subset, verify searches stop returning them and the ack
// reports the exact count. Hostile references (empty or out-of-range
// routing prefixes) must come back as error responses.
func TestDeleteDispatch(t *testing.T) {
	srv := startEncrypted(t)
	conn := dial(t, srv)

	entries := []mindex.Entry{
		{ID: 1, Perm: []int32{0, 1, 2}, Payload: []byte("a")},
		{ID: 2, Perm: []int32{1, 2, 3}, Payload: []byte("b")},
		{ID: 3, Perm: []int32{2, 3, 4}, Payload: []byte("c")},
		{ID: 4, Perm: []int32{3, 4, 5}, Payload: []byte("d")},
	}
	respType, _ := request(t, conn, wire.MsgInsertEntries, wire.InsertEntriesReq{Entries: entries}.Encode())
	if respType != wire.MsgAck {
		t.Fatalf("insert response = %v", respType)
	}

	// Delete entries 2 and 3, plus an unknown reference (skipped).
	refs := []mindex.Entry{
		{ID: 2, Perm: entries[1].Perm},
		{ID: 3, Perm: entries[2].Perm},
		{ID: 99, Perm: []int32{5, 0, 1}},
	}
	respType, resp := request(t, conn, wire.MsgDeleteEntries, wire.DeleteEntriesReq{Refs: refs}.Encode())
	if respType != wire.MsgDeleteAck {
		t.Fatalf("delete response = %v", respType)
	}
	ack, err := wire.DecodeDeleteAckResp(resp)
	if err != nil {
		t.Fatal(err)
	}
	if ack.Deleted != 2 {
		t.Fatalf("deleted = %d, want 2", ack.Deleted)
	}
	if srv.Index().Size() != 2 || srv.Index().Dead() != 2 {
		t.Fatalf("index size/dead = %d/%d, want 2/2", srv.Index().Size(), srv.Index().Dead())
	}

	// The tombstoned entries are gone from query responses.
	respType, resp = request(t, conn, wire.MsgRangeDists,
		wire.RangeDistsReq{Dists: make([]float64, 6), Radius: 1e18}.Encode())
	if respType != wire.MsgCandidates {
		t.Fatalf("range response = %v", respType)
	}
	cands, err := wire.DecodeCandidatesResp(resp)
	if err != nil {
		t.Fatal(err)
	}
	if len(cands.Entries) != 2 {
		t.Fatalf("range returned %d candidates, want 2", len(cands.Entries))
	}
	for _, e := range cands.Entries {
		if e.ID == 2 || e.ID == 3 {
			t.Fatalf("deleted entry %d still served", e.ID)
		}
	}

	// Hostile references are rejected with an error response, and the
	// connection stays usable.
	expectError(t, conn, wire.MsgDeleteEntries,
		wire.DeleteEntriesReq{Refs: []mindex.Entry{{ID: 7, Perm: []int32{-1, 0, 1}}}}.Encode(),
		"out of range")
	expectError(t, conn, wire.MsgDeleteEntries,
		wire.DeleteEntriesReq{Refs: []mindex.Entry{{ID: 7}}}.Encode(),
		"permutation is empty")
	expectError(t, conn, wire.MsgDeleteEntries, []byte{0xFF, 0xFF}, "")
	if respType, _ := request(t, conn, wire.MsgDeleteEntries,
		wire.DeleteEntriesReq{Refs: nil}.Encode()); respType != wire.MsgDeleteAck {
		t.Fatalf("connection unusable after hostile delete: %v", respType)
	}
}

func TestEHIBlobStore(t *testing.T) {
	srv := startEncrypted(t)
	conn := dial(t, srv)
	respType, _ := request(t, conn, wire.MsgPutNodes, wire.PutNodesReq{
		RootID: 7,
		Nodes:  []wire.EHINode{{ID: 7, Blob: []byte{1, 2, 3}}, {ID: 8, Blob: []byte{4}}},
	}.Encode())
	if respType != wire.MsgAck {
		t.Fatalf("put-nodes: got %v", respType)
	}
	respType, resp := request(t, conn, wire.MsgGetNode, wire.GetNodeReq{ID: 8}.Encode())
	if respType != wire.MsgNodeBlob {
		t.Fatalf("get-node: got %v", respType)
	}
	m, err := wire.DecodeNodeBlobResp(resp)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Blob) != 1 || m.Blob[0] != 4 {
		t.Fatalf("blob = %v", m.Blob)
	}
	expectError(t, conn, wire.MsgGetNode, wire.GetNodeReq{ID: 99}.Encode(), "unknown EHI node")
}

func TestFDHBucketStore(t *testing.T) {
	srv := startEncrypted(t)
	conn := dial(t, srv)
	respType, _ := request(t, conn, wire.MsgPutFDH, wire.PutFDHReq{
		Items: []wire.FDHItem{
			{Key: 1, Payload: []byte{10}},
			{Key: 1, Payload: []byte{11}},
			{Key: 2, Payload: []byte{20}},
		},
	}.Encode())
	if respType != wire.MsgAck {
		t.Fatalf("put-fdh: got %v", respType)
	}
	respType, resp := request(t, conn, wire.MsgFDHQuery,
		wire.FDHQueryReq{Keys: []uint64{1, 3}}.Encode())
	if respType != wire.MsgCandidates {
		t.Fatalf("fdh-query: got %v", respType)
	}
	m, err := wire.DecodeCandidatesResp(resp)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Entries) != 2 {
		t.Fatalf("bucket 1 returned %d payloads", len(m.Entries))
	}
}

func TestServerTimeReported(t *testing.T) {
	srv := startEncrypted(t)
	conn := dial(t, srv)
	entry := mindex.Entry{ID: 1, Perm: []int32{0, 1, 2, 3, 4, 5}, Payload: []byte{1}}
	respType, resp := request(t, conn, wire.MsgInsertEntries,
		wire.InsertEntriesReq{Entries: []mindex.Entry{entry}}.Encode())
	if respType != wire.MsgAck {
		t.Fatalf("insert: got %v", respType)
	}
	ack, err := wire.DecodeAckResp(resp)
	if err != nil {
		t.Fatal(err)
	}
	if ack.ServerNanos == 0 {
		t.Fatal("server reported zero processing time")
	}
}

func TestDroppedConnectionDoesNotKillServer(t *testing.T) {
	srv := startEncrypted(t)
	conn := dial(t, srv)
	// Write half a frame and hang up.
	if _, err := conn.Write([]byte{0, 0, 0, 100, 5, 1, 2}); err != nil {
		t.Fatal(err)
	}
	conn.Close()
	time.Sleep(10 * time.Millisecond)
	// Server still answers new connections.
	conn2 := dial(t, srv)
	respType, _ := request(t, conn2, wire.MsgDownloadAll, nil)
	if respType != wire.MsgCandidates {
		t.Fatalf("server unhealthy after dropped connection: %v", respType)
	}
}

func TestCloseIdempotentAndRefusesNewWork(t *testing.T) {
	srv, err := NewEncrypted(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr()
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
	if _, err := net.DialTimeout("tcp", addr, 100*time.Millisecond); err == nil {
		t.Fatal("closed server still accepting connections")
	}
}

func TestAddrBeforeStart(t *testing.T) {
	srv, err := NewEncrypted(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if srv.Addr() != "" {
		t.Fatalf("addr before start = %q", srv.Addr())
	}
	if srv.Mode() != ModeEncrypted {
		t.Fatalf("mode = %v", srv.Mode())
	}
	if ModePlain.String() != "plain" || Mode(9).String() == "" {
		t.Fatal("mode strings broken")
	}
}

func insertTestEntries(t *testing.T, conn net.Conn, n int) {
	t.Helper()
	entries := make([]mindex.Entry, n)
	for i := range entries {
		perm := []int32{0, 1, 2, 3, 4, 5}
		perm[0], perm[i%6] = perm[i%6], perm[0]
		dists := make([]float64, 6)
		for j := range dists {
			dists[j] = float64((i+j)%17) + 0.5
		}
		entries[i] = mindex.Entry{ID: uint64(i + 1), Perm: perm, Dists: dists, Payload: []byte{byte(i)}}
	}
	respType, _ := request(t, conn, wire.MsgInsertEntries,
		wire.InsertEntriesReq{Entries: entries}.Encode())
	if respType != wire.MsgAck {
		t.Fatalf("insert: got %v", respType)
	}
}

// TestBatchQuery: one frame carrying a range, an approx-perm and an
// approx-dists query must return three candidate sets matching the
// single-query responses.
func TestBatchQuery(t *testing.T) {
	srv := startEncrypted(t)
	conn := dial(t, srv)
	insertTestEntries(t, conn, 60)

	qDists := []float64{1, 2, 3, 4, 5, 6}
	perm := []int32{2, 0, 1, 3, 4, 5}
	batch := wire.BatchQueryReq{Queries: []wire.BatchQuery{
		{Kind: wire.BatchRange, Dists: qDists, Radius: 5},
		{Kind: wire.BatchApproxPerm, Perm: perm, CandSize: 15},
		{Kind: wire.BatchApproxDists, Dists: qDists, CandSize: 10},
	}}
	respType, resp := request(t, conn, wire.MsgBatchQuery, batch.Encode())
	if respType != wire.MsgBatchCandidates {
		t.Fatalf("batch query: got %v", respType)
	}
	m, err := wire.DecodeBatchQueryResp(resp)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Results) != 3 {
		t.Fatalf("batch returned %d results, want 3", len(m.Results))
	}

	// Each batched result must equal its single-query counterpart.
	respType, resp = request(t, conn, wire.MsgRangeDists,
		wire.RangeDistsReq{Dists: qDists, Radius: 5}.Encode())
	if respType != wire.MsgCandidates {
		t.Fatalf("range: got %v", respType)
	}
	single, err := wire.DecodeCandidatesResp(resp)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Results[0]) != len(single.Entries) {
		t.Fatalf("batched range returned %d entries, single %d", len(m.Results[0]), len(single.Entries))
	}
	respType, resp = request(t, conn, wire.MsgApproxPerm,
		wire.ApproxPermReq{Perm: perm, CandSize: 15}.Encode())
	if respType != wire.MsgCandidates {
		t.Fatalf("approx: got %v", respType)
	}
	single, err = wire.DecodeCandidatesResp(resp)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Results[1]) != len(single.Entries) {
		t.Fatalf("batched approx returned %d entries, single %d", len(m.Results[1]), len(single.Entries))
	}
	for i := range single.Entries {
		if m.Results[1][i].ID != single.Entries[i].ID {
			t.Fatalf("batched approx candidate %d = id %d, single = id %d",
				i, m.Results[1][i].ID, single.Entries[i].ID)
		}
	}
}

// TestBatchQueryErrors: invalid sub-queries fail the whole batch with an
// error response naming the offending query.
func TestBatchQueryErrors(t *testing.T) {
	srv := startEncrypted(t)
	conn := dial(t, srv)
	expectError(t, conn, wire.MsgBatchQuery, wire.BatchQueryReq{Queries: []wire.BatchQuery{
		{Kind: wire.BatchApproxPerm, Perm: []int32{0, 0, 1, 2, 3, 4}, CandSize: 5},
	}}.Encode(), "batch query 0")
	// Malformed payload bytes are a codec error, not a crash.
	expectError(t, conn, wire.MsgBatchQuery, []byte{0xFF, 0xFF, 0xFF, 0xFF}, "")
}

// TestShardedServer: a server over a sharded engine answers the protocol
// exactly like the default single-shard one.
func TestShardedServer(t *testing.T) {
	cfg := testCfg()
	cfg.Shards = 4
	srv, err := NewEncrypted(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv.Logf = func(string, ...any) {}
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	conn := dial(t, srv)
	insertTestEntries(t, conn, 80)
	if got := srv.Index().NumShards(); got != 4 {
		t.Fatalf("NumShards = %d", got)
	}
	if got := srv.Index().Size(); got != 80 {
		t.Fatalf("Size = %d", got)
	}
	respType, resp := request(t, conn, wire.MsgApproxPerm,
		wire.ApproxPermReq{Perm: []int32{1, 0, 2, 3, 4, 5}, CandSize: 20}.Encode())
	if respType != wire.MsgCandidates {
		t.Fatalf("approx on sharded server: got %v", respType)
	}
	m, err := wire.DecodeCandidatesResp(resp)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Entries) != 20 {
		t.Fatalf("sharded approx returned %d candidates, want 20", len(m.Entries))
	}
}

// TestHostilePermutationInsert: a wire entry with a negative or
// out-of-range first permutation element must produce an error response —
// on a sharded server a negative shard index would otherwise panic the
// process (remote DoS).
func TestHostilePermutationInsert(t *testing.T) {
	cfg := testCfg()
	cfg.Shards = 4
	srv, err := NewEncrypted(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv.Logf = func(string, ...any) {}
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	conn := dial(t, srv)
	expectError(t, conn, wire.MsgInsertEntries, wire.InsertEntriesReq{
		Entries: []mindex.Entry{{ID: 1, Perm: []int32{-1, 0, 1, 2, 3}}},
	}.Encode(), "out of range")
	// Server must still be alive and serving.
	insertTestEntries(t, conn, 10)
	if got := srv.Index().Size(); got != 10 {
		t.Fatalf("size after hostile insert = %d", got)
	}
}

// TestCloseRacingConnections: Close racing fresh connection registration
// must neither leak a connection nor deadlock — every accepted conn ends up
// closed and the registry drains (the connMu hygiene regression test).
func TestCloseRacingConnections(t *testing.T) {
	for round := range 20 {
		srv, err := NewEncrypted(testCfg())
		if err != nil {
			t.Fatal(err)
		}
		srv.Logf = func(string, ...any) {}
		if err := srv.Start("127.0.0.1:0"); err != nil {
			t.Fatal(err)
		}
		addr := srv.Addr()
		var wg sync.WaitGroup
		for range 8 {
			wg.Add(1)
			go func() {
				defer wg.Done()
				conn, err := net.Dial("tcp", addr)
				if err != nil {
					return // listener already closed: fine
				}
				defer conn.Close()
				// Fire a request; the response may be an answer, a reset or
				// nothing depending on how far Close got. All are fine — only
				// leaks and races are not.
				_ = wire.WriteFrame(conn, wire.MsgDownloadAll, nil)
				_, _, _ = wire.ReadFrame(conn)
			}()
		}
		if round%2 == 0 {
			time.Sleep(time.Duration(round%5) * 100 * time.Microsecond)
		}
		if err := srv.Close(); err != nil {
			t.Fatal(err)
		}
		wg.Wait()
		srv.connMu.Lock()
		leaked := len(srv.conns)
		srv.connMu.Unlock()
		if leaked != 0 {
			t.Fatalf("round %d: %d connections leaked past Close", round, leaked)
		}
	}
}

// TestStartAfterCloseRefused: a closed server must not come back to life
// with a fresh listener that nothing will ever close.
func TestStartAfterCloseRefused(t *testing.T) {
	srv, err := NewEncrypted(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Start("127.0.0.1:0"); err == nil {
		t.Fatal("start after close succeeded")
	}
}

// TestStartTwiceRefused: a second Start must not replace the listener and
// connection registry of the first (leaked listener, orphaned conns).
func TestStartTwiceRefused(t *testing.T) {
	srv := startEncrypted(t)
	addr := srv.Addr()
	if err := srv.Start("127.0.0.1:0"); err == nil {
		t.Fatal("second start succeeded")
	}
	if srv.Addr() != addr {
		t.Fatalf("second start replaced the listener: %s -> %s", addr, srv.Addr())
	}
	// The original listener still serves.
	conn := dial(t, srv)
	respType, _ := request(t, conn, wire.MsgDownloadAll, nil)
	if respType != wire.MsgCandidates {
		t.Fatalf("server unhealthy after refused second start: %v", respType)
	}
}

func TestPipelinedRequests(t *testing.T) {
	srv := startEncrypted(t)
	conn := dial(t, srv)
	// Send several requests back to back before reading any response; the
	// server must answer them in order.
	for range 5 {
		if err := wire.WriteFrame(conn, wire.MsgDownloadAll, nil); err != nil {
			t.Fatal(err)
		}
	}
	for range 5 {
		respType, _, err := wire.ReadFrame(conn)
		if err != nil {
			t.Fatal(err)
		}
		if respType != wire.MsgCandidates {
			t.Fatalf("pipelined response = %v", respType)
		}
	}
}
