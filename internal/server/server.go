// Package server implements the similarity-cloud server: a TCP service
// hosting an M-Index and answering the wire protocol. Two deployment modes
// mirror the paper's evaluation:
//
//   - Encrypted: the server holds only encrypted payloads with their pivot
//     permutations / distance vectors. It can prune, rank and filter — but
//     it cannot compute the metric distance function (it has no pivots and
//     no plaintext), so it returns candidate sets for client refinement.
//   - Plain: the server holds the pivots and raw vectors and evaluates
//     queries completely, returning final answers (the non-encrypted
//     baseline of Tables 4, 7 and 8).
//
// The same server also provides the blob stores used by the baseline
// protocols (EHI encrypted nodes, FDH buckets, trivial download-all), so
// every compared technique runs over an identical network substrate.
package server

import (
	"errors"
	"fmt"
	"log"
	"net"
	"sync"
	"time"

	"simcloud/internal/engine"
	"simcloud/internal/metric"
	"simcloud/internal/mindex"
	"simcloud/internal/pivot"
	"simcloud/internal/wal"
	"simcloud/internal/wire"
)

// Mode selects the deployment mode.
type Mode uint8

// Deployment modes.
const (
	ModeEncrypted Mode = iota + 1
	ModePlain
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case ModeEncrypted:
		return "encrypted"
	case ModePlain:
		return "plain"
	}
	return fmt.Sprintf("mode(%d)", uint8(m))
}

// Server is a similarity-cloud server instance.
type Server struct {
	mode  Mode
	enc   *engine.ShardedIndex
	plain *mindex.Plain
	timed *metric.Timed // instruments the plain server's distance function
	wal   *wal.Log      // optional mutation log; see AttachWAL

	mu       sync.Mutex
	ehiRoot  uint64
	ehiNodes map[uint64][]byte
	fdh      map[uint64][][]byte
	raw      map[uint64][]byte

	// connMu guards the listener, the connection registry and the closed
	// flag: Start, acceptLoop registration, serveConn deregistration and
	// Close all synchronize here, so a Close racing a Start or a freshly
	// accepted connection can neither leak a socket nor double-close.
	connMu sync.Mutex
	ln     net.Listener
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup

	// Logf receives connection-level failures; defaults to log.Printf.
	Logf func(format string, args ...any)
}

// NewEncrypted creates a server hosting an encrypted-deployment M-Index
// engine: cfg.Shards > 1 partitions the index across independently locked
// shards served by a fan-out worker pool (see internal/engine).
func NewEncrypted(cfg mindex.Config) (*Server, error) {
	eng, err := engine.New(cfg)
	if err != nil {
		return nil, err
	}
	return NewEncryptedWithEngine(eng), nil
}

// NewEncryptedWithIndex creates an encrypted-deployment server around an
// existing single index — typically one restored from a snapshot after a
// restart — wrapped as a 1-shard engine.
func NewEncryptedWithIndex(idx *mindex.Index) *Server {
	return NewEncryptedWithEngine(engine.Wrap(idx))
}

// NewEncryptedWithEngine creates an encrypted-deployment server around an
// existing sharded engine.
func NewEncryptedWithEngine(eng *engine.ShardedIndex) *Server {
	return &Server{
		mode:     ModeEncrypted,
		enc:      eng,
		ehiNodes: make(map[uint64][]byte),
		fdh:      make(map[uint64][][]byte),
		raw:      make(map[uint64][]byte),
		Logf:     log.Printf,
	}
}

// NewPlain creates a server hosting a plain-deployment M-Index: it owns the
// pivot set and computes all distances itself. The distance function is
// wrapped for timing so responses can report the server-side
// distance-computation cost.
func NewPlain(cfg mindex.Config, pivots *pivot.Set) (*Server, error) {
	timed := metric.NewTimed(pivots.Dist)
	instrumented := pivot.NewSet(timed, pivots.Pivots)
	p, err := mindex.NewPlain(cfg, instrumented)
	if err != nil {
		return nil, err
	}
	return &Server{
		mode:     ModePlain,
		plain:    p,
		timed:    timed,
		ehiNodes: make(map[uint64][]byte),
		fdh:      make(map[uint64][][]byte),
		raw:      make(map[uint64][]byte),
		Logf:     log.Printf,
	}, nil
}

// AttachWAL attaches a write-ahead log to an encrypted-deployment server:
// every acknowledged entry-store mutation (insert, delete, applied re-sync
// operation) is appended to l after the engine accepts it and before the
// acknowledgment is sent. Attach before Start; the caller keeps ownership of
// l and closes it after the server shuts down. Typically the log was just
// Opened and its recovered records Replayed into the engine this server
// wraps.
func (s *Server) AttachWAL(l *wal.Log) { s.wal = l }

// walAppend logs one applied mutation; a no-op without an attached log or
// with nothing applied.
func (s *Server) walAppend(op wal.Op, entries []mindex.Entry) error {
	if s.wal == nil || len(entries) == 0 {
		return nil
	}
	return s.wal.Append(wal.Record{Op: op, Entries: entries})
}

// Mode returns the deployment mode.
func (s *Server) Mode() Mode { return s.mode }

// Index exposes the underlying encrypted-deployment index engine (nil in
// plain mode) for white-box inspection by tools and tests.
func (s *Server) Index() *engine.ShardedIndex { return s.enc }

// PlainIndex exposes the underlying plain-deployment index (nil in
// encrypted mode).
func (s *Server) PlainIndex() *mindex.Plain { return s.plain }

// Start begins listening on addr (use "127.0.0.1:0" for an ephemeral
// loopback port, the paper's measurement setup).
func (s *Server) Start(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	s.connMu.Lock()
	if s.closed {
		s.connMu.Unlock()
		ln.Close()
		return errors.New("server: already closed")
	}
	if s.ln != nil {
		s.connMu.Unlock()
		ln.Close()
		return errors.New("server: already started")
	}
	s.ln = ln
	s.conns = make(map[net.Conn]struct{})
	// Add under the lock: a Close between Unlock and Add would reach
	// wg.Wait with a zero counter while the Add races it (WaitGroup
	// misuse), and could tear down the engine before acceptLoop is
	// accounted for.
	s.wg.Add(1)
	s.connMu.Unlock()
	go s.acceptLoop(ln)
	return nil
}

// Addr returns the listening address (valid after Start).
func (s *Server) Addr() string {
	s.connMu.Lock()
	defer s.connMu.Unlock()
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		// Register under the lock before serving: once Close holds connMu,
		// either this connection is in the registry (Close closes it) or
		// closed is already observed here (we close it) — never neither.
		s.connMu.Lock()
		if s.closed {
			s.connMu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.connMu.Unlock()
		go s.serveConn(conn)
	}
}

// Close stops the listener, closes open connections and releases the index.
// It is idempotent and safe to call concurrently with Start, acceptLoop
// registration and in-flight requests.
func (s *Server) Close() error {
	s.connMu.Lock()
	if s.closed {
		s.connMu.Unlock()
		return nil
	}
	s.closed = true
	ln := s.ln
	for c := range s.conns {
		c.Close()
	}
	s.connMu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	s.wg.Wait()
	if s.enc != nil {
		if cerr := s.enc.Close(); err == nil {
			err = cerr
		}
	}
	if s.plain != nil {
		if cerr := s.plain.Idx.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.connMu.Lock()
		delete(s.conns, conn)
		s.connMu.Unlock()
		conn.Close()
	}()
	// One pooled response buffer per connection: the hot query responses
	// (candidate sets, batch results) encode into it via AppendTo, so the
	// serving loop reuses a single payload allocation across requests.
	buf := wire.GetBuffer()
	defer wire.PutBuffer(buf)
	for {
		typ, payload, err := wire.ReadFrame(conn)
		if err != nil {
			return // client disconnected or sent garbage framing
		}
		respType, respPayload := s.dispatch(typ, payload, buf)
		if err := wire.WriteFrame(conn, respType, respPayload); err != nil {
			s.Logf("simcloud server: writing response to %s: %v", conn.RemoteAddr(), err)
			return
		}
	}
}

// dispatch handles one request and produces the response frame. Server time
// is measured around the handler body only — framing and socket IO count as
// communication time, matching the paper's decomposition.
func (s *Server) dispatch(typ wire.MsgType, payload []byte, buf *wire.Buffer) (wire.MsgType, []byte) {
	start := time.Now()
	var distBefore time.Duration
	if s.timed != nil {
		distBefore = s.timed.Elapsed()
	}
	respType, resp, err := s.handle(typ, payload, start, distBefore, buf)
	if err != nil {
		return wire.MsgError, wire.ErrorResp{Msg: err.Error()}.Encode()
	}
	return respType, resp
}

func (s *Server) serverNanos(start time.Time) uint64 {
	return uint64(time.Since(start))
}

func (s *Server) distNanos(before time.Duration) uint64 {
	if s.timed == nil {
		return 0
	}
	return uint64(s.timed.Elapsed() - before)
}

var errNeedEncrypted = errors.New("server: request requires the encrypted deployment")
var errNeedPlain = errors.New("server: request requires the plain deployment")

// candidates encodes the hot candidate-set response into the connection's
// reused buffer; the returned bytes are valid until the next request on the
// same connection, which is exactly the WriteFrame lifetime.
func candidates(buf *wire.Buffer, resp wire.CandidatesResp) []byte {
	buf.Reset()
	resp.AppendTo(buf)
	return buf.B
}

func (s *Server) handle(typ wire.MsgType, payload []byte, start time.Time, distBefore time.Duration, buf *wire.Buffer) (wire.MsgType, []byte, error) {
	switch typ {
	case wire.MsgHello:
		if _, err := wire.DecodeHelloReq(payload); err != nil {
			return 0, nil, err
		}
		return wire.MsgHelloAck, s.helloResp().Encode(), nil

	case wire.MsgInsertEntries:
		if s.enc == nil {
			return 0, nil, errNeedEncrypted
		}
		req, err := wire.DecodeInsertEntriesReq(payload)
		if err != nil {
			return 0, nil, err
		}
		if err := s.enc.InsertBulk(req.Entries); err != nil {
			return 0, nil, err
		}
		if err := s.walAppend(wal.OpInsert, req.Entries); err != nil {
			return 0, nil, err
		}
		return wire.MsgAck, wire.AckResp{ServerNanos: s.serverNanos(start)}.Encode(), nil

	case wire.MsgInsertObjects:
		if s.plain == nil {
			return 0, nil, errNeedPlain
		}
		req, err := wire.DecodeInsertObjectsReq(payload)
		if err != nil {
			return 0, nil, err
		}
		if err := s.plain.InsertBulk(req.Objects); err != nil {
			return 0, nil, err
		}
		return wire.MsgAck, wire.AckResp{
			ServerNanos: s.serverNanos(start),
			DistNanos:   s.distNanos(distBefore),
		}.Encode(), nil

	case wire.MsgDeleteEntries:
		if s.enc == nil {
			return 0, nil, errNeedEncrypted
		}
		req, err := wire.DecodeDeleteEntriesReq(payload)
		if err != nil {
			return 0, nil, err
		}
		// The engine validates each reference's routing prefix; hostile
		// permutation elements become an error response, never a panic or a
		// misrouted tombstone.
		deleted, err := s.enc.Delete(req.Refs)
		if err != nil {
			return 0, nil, err
		}
		// Log the full reference set: replaying a delete of an absent ID is
		// a no-op in the engine, so over-logging is harmless and keeps the
		// record identical to the acknowledged request.
		if err := s.walAppend(wal.OpDelete, req.Refs); err != nil {
			return 0, nil, err
		}
		return wire.MsgDeleteAck, wire.DeleteAckResp{
			ServerNanos: s.serverNanos(start), Deleted: uint32(deleted),
		}.Encode(), nil

	case wire.MsgRangeDists:
		if s.enc == nil {
			return 0, nil, errNeedEncrypted
		}
		req, err := wire.DecodeRangeDistsReq(payload)
		if err != nil {
			return 0, nil, err
		}
		cands, err := s.enc.RangeByDists(req.Dists, req.Radius)
		if err != nil {
			return 0, nil, err
		}
		return wire.MsgCandidates, candidates(buf, wire.CandidatesResp{
			ServerNanos: s.serverNanos(start), Entries: cands,
		}), nil

	case wire.MsgApproxPerm:
		if s.enc == nil {
			return 0, nil, errNeedEncrypted
		}
		req, err := wire.DecodeApproxPermReq(payload)
		if err != nil {
			return 0, nil, err
		}
		if !pivot.ValidPermutation(req.Perm, s.enc.Config().NumPivots) {
			return 0, nil, fmt.Errorf("server: request permutation is not a permutation of %d pivots",
				s.enc.Config().NumPivots)
		}
		cands, err := s.enc.ApproxCandidates(
			mindex.ApproxQuery{Ranks: pivot.Ranks(req.Perm)}, int(req.CandSize))
		if err != nil {
			return 0, nil, err
		}
		return wire.MsgCandidates, candidates(buf, wire.CandidatesResp{
			ServerNanos: s.serverNanos(start), Entries: cands,
		}), nil

	case wire.MsgApproxDists:
		if s.enc == nil {
			return 0, nil, errNeedEncrypted
		}
		req, err := wire.DecodeApproxDistsReq(payload)
		if err != nil {
			return 0, nil, err
		}
		cands, err := s.enc.ApproxCandidates(
			mindex.ApproxQuery{
				Dists: req.Dists,
				Ranks: pivot.Ranks(pivot.Permutation(req.Dists)),
			}, int(req.CandSize))
		if err != nil {
			return 0, nil, err
		}
		return wire.MsgCandidates, candidates(buf, wire.CandidatesResp{
			ServerNanos: s.serverNanos(start), Entries: cands,
		}), nil

	case wire.MsgFirstCell:
		if s.enc == nil {
			return 0, nil, errNeedEncrypted
		}
		req, err := wire.DecodeFirstCellReq(payload)
		if err != nil {
			return 0, nil, err
		}
		aq, err := firstCellQuery(req.Perm, req.Dists, s.enc.Config().NumPivots)
		if err != nil {
			return 0, nil, err
		}
		cands, err := s.enc.FirstCellCandidates(aq)
		if err != nil {
			return 0, nil, err
		}
		return wire.MsgCandidates, candidates(buf, wire.CandidatesResp{
			ServerNanos: s.serverNanos(start), Entries: cands,
		}), nil

	case wire.MsgBatchQuery:
		if s.enc == nil {
			return 0, nil, errNeedEncrypted
		}
		req, err := wire.DecodeBatchQueryReq(payload)
		if err != nil {
			return 0, nil, err
		}
		results := make([][]mindex.Entry, len(req.Queries))
		for i, q := range req.Queries {
			results[i], err = s.evalBatchQuery(q)
			if err != nil {
				return 0, nil, fmt.Errorf("server: batch query %d: %w", i, err)
			}
		}
		buf.Reset()
		wire.BatchQueryResp{
			ServerNanos: s.serverNanos(start), Results: results,
		}.AppendTo(buf)
		return wire.MsgBatchCandidates, buf.B, nil

	case wire.MsgBatchRanked:
		if s.enc == nil {
			return 0, nil, errNeedEncrypted
		}
		req, err := wire.DecodeBatchQueryReq(payload)
		if err != nil {
			return 0, nil, err
		}
		results := make([][]mindex.RankedCandidate, len(req.Queries))
		for i, q := range req.Queries {
			results[i], err = s.evalBatchRanked(q, nil)
			if err != nil {
				return 0, nil, fmt.Errorf("server: batch query %d: %w", i, err)
			}
		}
		buf.Reset()
		wire.BatchRankedResp{
			ServerNanos: s.serverNanos(start), Results: results,
		}.AppendTo(buf)
		return wire.MsgBatchRankedCandidates, buf.B, nil

	case wire.MsgRangePlain:
		if s.plain == nil {
			return 0, nil, errNeedPlain
		}
		req, err := wire.DecodeRangePlainReq(payload)
		if err != nil {
			return 0, nil, err
		}
		res, err := s.plain.Range(req.Q, req.Radius)
		if err != nil {
			return 0, nil, err
		}
		return wire.MsgResults, wire.ResultsResp{
			ServerNanos: s.serverNanos(start),
			DistNanos:   s.distNanos(distBefore),
			Results:     res,
		}.Encode(), nil

	case wire.MsgKNNPlain:
		if s.plain == nil {
			return 0, nil, errNeedPlain
		}
		req, err := wire.DecodeKNNPlainReq(payload)
		if err != nil {
			return 0, nil, err
		}
		res, err := s.plain.KNN(req.Q, int(req.K))
		if err != nil {
			return 0, nil, err
		}
		return wire.MsgResults, wire.ResultsResp{
			ServerNanos: s.serverNanos(start),
			DistNanos:   s.distNanos(distBefore),
			Results:     res,
		}.Encode(), nil

	case wire.MsgFirstCellPlain:
		if s.plain == nil {
			return 0, nil, errNeedPlain
		}
		req, err := wire.DecodeFirstCellPlainReq(payload)
		if err != nil {
			return 0, nil, err
		}
		res, err := s.plain.FirstCellKNN(req.Q, int(req.K))
		if err != nil {
			return 0, nil, err
		}
		return wire.MsgResults, wire.ResultsResp{
			ServerNanos: s.serverNanos(start),
			DistNanos:   s.distNanos(distBefore),
			Results:     res,
		}.Encode(), nil

	case wire.MsgDeleteObjects:
		if s.plain == nil {
			return 0, nil, errNeedPlain
		}
		req, err := wire.DecodeDeleteObjectsReq(payload)
		if err != nil {
			return 0, nil, err
		}
		deleted, err := s.plain.Delete(req.IDs)
		if err != nil {
			return 0, nil, err
		}
		return wire.MsgDeleteAck, wire.DeleteAckResp{
			ServerNanos: s.serverNanos(start), Deleted: uint32(deleted),
		}.Encode(), nil

	case wire.MsgApproxPlain:
		if s.plain == nil {
			return 0, nil, errNeedPlain
		}
		req, err := wire.DecodeApproxPlainReq(payload)
		if err != nil {
			return 0, nil, err
		}
		res, err := s.plain.ApproxKNN(req.Q, int(req.K), int(req.CandSize))
		if err != nil {
			return 0, nil, err
		}
		return wire.MsgResults, wire.ResultsResp{
			ServerNanos: s.serverNanos(start),
			DistNanos:   s.distNanos(distBefore),
			Results:     res,
		}.Encode(), nil

	case wire.MsgPutNodes:
		req, err := wire.DecodePutNodesReq(payload)
		if err != nil {
			return 0, nil, err
		}
		s.mu.Lock()
		s.ehiRoot = req.RootID
		for _, n := range req.Nodes {
			s.ehiNodes[n.ID] = n.Blob
		}
		s.mu.Unlock()
		return wire.MsgAck, wire.AckResp{ServerNanos: s.serverNanos(start)}.Encode(), nil

	case wire.MsgGetNode:
		req, err := wire.DecodeGetNodeReq(payload)
		if err != nil {
			return 0, nil, err
		}
		s.mu.Lock()
		blob, ok := s.ehiNodes[req.ID]
		s.mu.Unlock()
		if !ok {
			return 0, nil, fmt.Errorf("server: unknown EHI node %d", req.ID)
		}
		return wire.MsgNodeBlob, wire.NodeBlobResp{
			ServerNanos: s.serverNanos(start), Blob: blob,
		}.Encode(), nil

	case wire.MsgPutFDH:
		req, err := wire.DecodePutFDHReq(payload)
		if err != nil {
			return 0, nil, err
		}
		s.mu.Lock()
		for _, it := range req.Items {
			s.fdh[it.Key] = append(s.fdh[it.Key], it.Payload)
		}
		s.mu.Unlock()
		return wire.MsgAck, wire.AckResp{ServerNanos: s.serverNanos(start)}.Encode(), nil

	case wire.MsgFDHQuery:
		req, err := wire.DecodeFDHQueryReq(payload)
		if err != nil {
			return 0, nil, err
		}
		var entries []mindex.Entry
		s.mu.Lock()
		for _, key := range req.Keys {
			for _, payload := range s.fdh[key] {
				entries = append(entries, mindex.Entry{Payload: payload})
			}
		}
		s.mu.Unlock()
		return wire.MsgCandidates, wire.CandidatesResp{
			ServerNanos: s.serverNanos(start), Entries: entries,
		}.Encode(), nil

	case wire.MsgPutRaw:
		req, err := wire.DecodePutRawReq(payload)
		if err != nil {
			return 0, nil, err
		}
		s.mu.Lock()
		for _, it := range req.Items {
			s.raw[it.ID] = it.Blob
		}
		s.mu.Unlock()
		return wire.MsgAck, wire.AckResp{ServerNanos: s.serverNanos(start)}.Encode(), nil

	case wire.MsgGetRaw:
		req, err := wire.DecodeGetRawReq(payload)
		if err != nil {
			return 0, nil, err
		}
		items := make([]wire.RawItem, 0, len(req.IDs))
		s.mu.Lock()
		for _, id := range req.IDs {
			blob, ok := s.raw[id]
			if !ok {
				s.mu.Unlock()
				return 0, nil, fmt.Errorf("server: no raw data for object %d", id)
			}
			items = append(items, wire.RawItem{ID: id, Blob: blob})
		}
		s.mu.Unlock()
		return wire.MsgRawItems, wire.RawItemsResp{
			ServerNanos: s.serverNanos(start), Items: items,
		}.Encode(), nil

	case wire.MsgDownloadAll:
		if s.enc == nil {
			return 0, nil, errNeedEncrypted
		}
		entries, err := s.enc.AllEntries()
		if err != nil {
			return 0, nil, err
		}
		return wire.MsgCandidates, wire.CandidatesResp{
			ServerNanos: s.serverNanos(start), Entries: entries,
		}.Encode(), nil

	case wire.MsgFilteredQuery:
		if s.enc == nil {
			return 0, nil, errNeedEncrypted
		}
		req, err := wire.DecodeFilteredReq(payload)
		if err != nil {
			return 0, nil, err
		}
		filter, err := mindex.NewPivotFilter(s.enc.Config().NumPivots, req.Allow)
		if err != nil {
			return 0, nil, err
		}
		return s.handleFiltered(req, filter, start, buf)

	case wire.MsgResyncOps:
		if s.enc == nil {
			return 0, nil, errNeedEncrypted
		}
		req, err := wire.DecodeResyncReq(payload)
		if err != nil {
			return 0, nil, err
		}
		for i, op := range req.Ops {
			if err := s.applyResyncOp(op); err != nil {
				return 0, nil, fmt.Errorf("server: resync op %d: %w", i, err)
			}
		}
		return wire.MsgAck, wire.AckResp{ServerNanos: s.serverNanos(start)}.Encode(), nil

	case wire.MsgIngestChunk:
		if s.enc == nil {
			return 0, nil, errNeedEncrypted
		}
		req, err := wire.DecodeIngestChunkReq(payload)
		if err != nil {
			return 0, nil, err
		}
		if err := s.enc.InsertBulk(req.Entries); err != nil {
			return 0, nil, err
		}
		if err := s.walAppend(wal.OpInsert, req.Entries); err != nil {
			return 0, nil, err
		}
		return wire.MsgIngestChunkAck, wire.IngestChunkAckResp{
			Seq: req.Seq, ServerNanos: s.serverNanos(start),
		}.Encode(), nil

	case wire.MsgIngestObjChunk:
		if s.plain == nil {
			return 0, nil, errNeedPlain
		}
		req, err := wire.DecodeIngestObjChunkReq(payload)
		if err != nil {
			return 0, nil, err
		}
		if err := s.plain.InsertBulk(req.Objects); err != nil {
			return 0, nil, err
		}
		return wire.MsgIngestChunkAck, wire.IngestChunkAckResp{
			Seq: req.Seq, ServerNanos: s.serverNanos(start),
		}.Encode(), nil

	case wire.MsgIngestEnd:
		if _, err := wire.DecodeIngestEndReq(payload); err != nil {
			return 0, nil, err
		}
		// The end-of-stream ack promises durability for every streamed
		// chunk: under WAL policy "group" the appends accumulated in the
		// current commit window, which this flush closes. Without a WAL
		// (or in plain mode) there is nothing to flush.
		if s.wal != nil {
			if err := s.wal.Flush(); err != nil {
				return 0, nil, err
			}
		}
		return wire.MsgAck, wire.AckResp{ServerNanos: s.serverNanos(start)}.Encode(), nil
	}
	return 0, nil, fmt.Errorf("server: unsupported request type %v", typ)
}

// handleFiltered evaluates the inner request of a MsgFilteredQuery envelope
// restricted to the filter's first-level cells, answering with the inner
// request's natural response type.
func (s *Server) handleFiltered(req wire.FilteredReq, filter mindex.PivotFilter, start time.Time, buf *wire.Buffer) (wire.MsgType, []byte, error) {
	switch req.Inner {
	case wire.MsgBatchRanked:
		inner, err := wire.DecodeBatchQueryReq(req.Payload)
		if err != nil {
			return 0, nil, err
		}
		results := make([][]mindex.RankedCandidate, len(inner.Queries))
		for i, q := range inner.Queries {
			results[i], err = s.evalBatchRanked(q, filter)
			if err != nil {
				return 0, nil, fmt.Errorf("server: filtered batch query %d: %w", i, err)
			}
		}
		buf.Reset()
		wire.BatchRankedResp{
			ServerNanos: s.serverNanos(start), Results: results,
		}.AppendTo(buf)
		return wire.MsgBatchRankedCandidates, buf.B, nil

	case wire.MsgRangeDists:
		inner, err := wire.DecodeRangeDistsReq(req.Payload)
		if err != nil {
			return 0, nil, err
		}
		cands, err := s.enc.RangeByDistsFiltered(inner.Dists, inner.Radius, filter)
		if err != nil {
			return 0, nil, err
		}
		return wire.MsgCandidates, candidates(buf, wire.CandidatesResp{
			ServerNanos: s.serverNanos(start), Entries: cands,
		}), nil

	case wire.MsgDownloadAll:
		entries, err := s.enc.AllEntriesFiltered(filter)
		if err != nil {
			return 0, nil, err
		}
		return wire.MsgCandidates, candidates(buf, wire.CandidatesResp{
			ServerNanos: s.serverNanos(start), Entries: entries,
		}), nil
	}
	return 0, nil, fmt.Errorf("server: filtered query cannot wrap %v", req.Inner)
}

// applyResyncOp applies one missed write from the coordinator's re-admission
// journal. Inserts are applied entry by entry, skipping IDs already present
// — a crash can lose the acknowledgment but keep the write — and only the
// entries actually applied are logged, keeping the WAL replayable into a
// fresh engine without duplicate-ID errors.
func (s *Server) applyResyncOp(op wire.ResyncOp) error {
	switch op.Op {
	case wire.ResyncInsert:
		applied := make([]mindex.Entry, 0, len(op.Entries))
		for _, e := range op.Entries {
			switch err := s.enc.InsertBulk([]mindex.Entry{e}); {
			case err == nil:
				applied = append(applied, e)
			case errors.Is(err, mindex.ErrDuplicateID):
				// Already delivered before the crash; keep it.
			default:
				return err
			}
		}
		return s.walAppend(wal.OpInsert, applied)
	case wire.ResyncDelete:
		if _, err := s.enc.Delete(op.Entries); err != nil {
			return err
		}
		return s.walAppend(wal.OpDelete, op.Entries)
	}
	return fmt.Errorf("unknown resync op %d", op.Op)
}

// evalBatchQuery evaluates one query of a batched request against the index
// engine — the same evaluations the single-query messages perform. Each
// query fans out across all index shards internally.
func (s *Server) evalBatchQuery(q wire.BatchQuery) ([]mindex.Entry, error) {
	switch q.Kind {
	case wire.BatchRange:
		return s.enc.RangeByDists(q.Dists, q.Radius)
	case wire.BatchApproxPerm:
		if !pivot.ValidPermutation(q.Perm, s.enc.Config().NumPivots) {
			return nil, fmt.Errorf("request permutation is not a permutation of %d pivots",
				s.enc.Config().NumPivots)
		}
		return s.enc.ApproxCandidates(
			mindex.ApproxQuery{Ranks: pivot.Ranks(q.Perm)}, int(q.CandSize))
	case wire.BatchApproxDists:
		return s.enc.ApproxCandidates(
			mindex.ApproxQuery{
				Dists: q.Dists,
				Ranks: pivot.Ranks(pivot.Permutation(q.Dists)),
			}, int(q.CandSize))
	case wire.BatchFirstCell:
		aq, err := firstCellQuery(q.Perm, q.Dists, s.enc.Config().NumPivots)
		if err != nil {
			return nil, err
		}
		return s.enc.FirstCellCandidates(aq)
	}
	return nil, fmt.Errorf("unknown batch query kind %d", q.Kind)
}

// firstCellQuery assembles the ApproxQuery of a first-cell request. The
// footrule form carries the query permutation, the distance-sum form the
// (transformed) distance vector; a non-empty permutation is validated
// here, and the index itself validates that whatever arrived matches what
// its configured ranking strategy needs — so a request missing the needed
// field becomes an error response, never a panic inside the promise
// function.
func firstCellQuery(perm []int32, dists []float64, numPivots int) (mindex.ApproxQuery, error) {
	aq := mindex.ApproxQuery{Dists: dists}
	if len(perm) > 0 {
		if !pivot.ValidPermutation(perm, numPivots) {
			return aq, fmt.Errorf("server: request permutation is not a permutation of %d pivots", numPivots)
		}
		aq.Ranks = pivot.Ranks(perm)
	}
	return aq, nil
}

// evalBatchRanked evaluates one query of a MsgBatchRanked request, keeping
// the source-cell promise annotations that let the cluster coordinator
// merge per-node candidate streams exactly like the engine merges shards.
// Range queries are exact and carry no ranking: their candidates return
// with promise 0 and a nil prefix (the coordinator concatenates them
// instead of merging). A non-nil filter restricts the evaluation to the
// allowed first-level cells (the MsgFilteredQuery envelope); nil evaluates
// the whole index.
func (s *Server) evalBatchRanked(q wire.BatchQuery, filter mindex.PivotFilter) ([]mindex.RankedCandidate, error) {
	switch q.Kind {
	case wire.BatchRange:
		entries, err := s.enc.RangeByDistsFiltered(q.Dists, q.Radius, filter)
		if err != nil {
			return nil, err
		}
		rcs := make([]mindex.RankedCandidate, len(entries))
		for i, e := range entries {
			rcs[i] = mindex.RankedCandidate{Entry: e}
		}
		return rcs, nil
	case wire.BatchApproxPerm:
		if !pivot.ValidPermutation(q.Perm, s.enc.Config().NumPivots) {
			return nil, fmt.Errorf("request permutation is not a permutation of %d pivots",
				s.enc.Config().NumPivots)
		}
		return s.enc.ApproxCandidatesRankedFiltered(
			mindex.ApproxQuery{Ranks: pivot.Ranks(q.Perm)}, int(q.CandSize), filter)
	case wire.BatchApproxDists:
		return s.enc.ApproxCandidatesRankedFiltered(
			mindex.ApproxQuery{
				Dists: q.Dists,
				Ranks: pivot.Ranks(pivot.Permutation(q.Dists)),
			}, int(q.CandSize), filter)
	case wire.BatchFirstCell:
		aq, err := firstCellQuery(q.Perm, q.Dists, s.enc.Config().NumPivots)
		if err != nil {
			return nil, err
		}
		entries, promise, prefix, err := s.enc.FirstCellRankedFiltered(aq, filter)
		if err != nil {
			return nil, err
		}
		rcs := make([]mindex.RankedCandidate, len(entries))
		for i, e := range entries {
			rcs[i] = mindex.RankedCandidate{Entry: e, Promise: promise, Prefix: prefix}
		}
		return rcs, nil
	}
	return nil, fmt.Errorf("unknown batch query kind %d", q.Kind)
}

// helloResp summarizes this server for the hello handshake: deployment
// mode, index shape, and the live entry count as a health signal.
func (s *Server) helloResp() wire.HelloResp {
	var cfg mindex.Config
	var mode uint8
	var entries int
	if s.enc != nil {
		cfg, mode, entries = s.enc.Config(), wire.HelloModeEncrypted, s.enc.Size()
	} else {
		cfg, mode, entries = s.plain.Idx.Config(), wire.HelloModePlain, s.plain.Idx.Size()
	}
	shards := max(1, cfg.Shards)
	return wire.HelloResp{
		Mode:           mode,
		NumPivots:      uint32(cfg.NumPivots),
		MaxLevel:       uint32(cfg.MaxLevel),
		BucketCapacity: uint32(cfg.BucketCapacity),
		Ranking:        uint8(cfg.Ranking),
		// Multi-shard engines split every shard root eagerly, so their
		// leaves always sit at prefix length >= 1 regardless of the
		// engine-level flag.
		EagerRootSplit: cfg.EagerRootSplit || shards > 1,
		Shards:         uint32(shards),
		Entries:        uint64(entries),
	}
}
