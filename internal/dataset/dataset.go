// Package dataset provides the three evaluation data sets of the paper as
// deterministic synthetic generators, plus a binary on-disk format for
// shipping generated collections between tools.
//
// The original collections are not redistributable (YEAST and HUMAN are
// gene-expression matrices from the Harvard biclustering site; CoPhIR is a
// million-image MPEG-7 collection requiring a license). Each generator
// reproduces the properties that drive the paper's measurements — the
// cardinality, dimensionality, distance function, value range and, most
// importantly, the clustered (non-uniform) distribution that recursive
// Voronoi partitioning exploits:
//
//   - Yeast: 2,882 × 17-dim vectors under L1 (expression levels of one gene
//     across 17 conditions; values cluster by co-expressed gene groups).
//   - Human: 4,026 × 96-dim vectors under L1 (Lymphoma/Leukemia profiling).
//   - CoPhIR: n × 280-dim vectors under the weighted MPEG-7 descriptor
//     combination (five concatenated sub-descriptors quantized to 0..255).
//
// All generators are seeded and fully deterministic: the same call always
// yields byte-identical collections, so experiments are reproducible.
package dataset

import (
	"fmt"
	"math"
	"math/rand/v2"

	"simcloud/internal/metric"
)

// Dataset bundles a generated collection with its identity and the distance
// function the paper evaluates it under.
type Dataset struct {
	Name    string
	Objects []metric.Object
	Dim     int
	Dist    metric.Distance
}

// Size returns the number of objects.
func (d *Dataset) Size() int { return len(d.Objects) }

// Paper cardinalities and dimensions (Table 1).
const (
	YeastSize  = 2882
	YeastDim   = 17
	HumanSize  = 4026
	HumanDim   = 96
	CoPhIRSize = 1000000
	CoPhIRDim  = metric.CoPhIRDim
)

// Embed768 default shape: the dimensionality of today's standard sentence /
// image embedding models, at a laptop-scale default cardinality (pass any n
// to Embed768 for other scales).
const (
	Embed768Size = 100000
	Embed768Dim  = 768
)

// clusteredMatrix generates n vectors of dimension dim with a two-level
// cluster structure: k macro clusters (condition groups / visual themes),
// each containing micro clusters (tightly co-expressed gene groups /
// near-duplicate shots) around which the individual vectors scatter with
// small noise. Real gene-expression matrices and photo collections both
// show this hierarchy — many objects have a *very* close nearest neighbor
// while the global structure stays broad — and it is what permutation
// indexes exploit. Macro sizes follow a geometric-ish skew (real
// collections are strongly unbalanced); values are clamped to [lo, hi].
func clusteredMatrix(rng *rand.Rand, n, dim, k int, base, spreadCenter, microSpread, noise, lo, hi float64) []metric.Object {
	type cluster struct {
		center []float64
		scale  float64
	}
	// Macro clusters follow a 1/(i+1) popularity skew; each macro holds as
	// many micro clusters as its expected population divided by the target
	// micro-group size, so that (nearly) every object has close micro-group
	// siblings — the near-duplicate structure of real collections.
	const targetMicroSize = 6
	macroW := make([]float64, k)
	var wsum float64
	for i := range macroW {
		macroW[i] = 1 / float64(i+1)
		wsum += macroW[i]
	}
	type macroCluster struct {
		weight float64
		micros []cluster
	}
	macros := make([]macroCluster, k)
	for i := range macros {
		macro := make([]float64, dim)
		for j := range macro {
			macro[j] = base + rng.NormFloat64()*spreadCenter
		}
		scale := noise * (0.5 + rng.Float64())
		expected := float64(n) * macroW[i] / wsum
		nMicros := max(1, int(expected/targetMicroSize+0.5))
		micros := make([]cluster, nMicros)
		for m := range micros {
			micro := make([]float64, dim)
			for j := range micro {
				micro[j] = macro[j] + rng.NormFloat64()*microSpread
			}
			micros[m] = cluster{center: micro, scale: scale}
		}
		macros[i] = macroCluster{weight: macroW[i], micros: micros}
	}
	pick := func() cluster {
		r := rng.Float64() * wsum
		for i := range macros {
			if r < macros[i].weight {
				return macros[i].micros[rng.IntN(len(macros[i].micros))]
			}
			r -= macros[i].weight
		}
		last := macros[k-1]
		return last.micros[rng.IntN(len(last.micros))]
	}
	objs := make([]metric.Object, n)
	for i := range objs {
		cl := pick()
		v := make(metric.Vector, dim)
		for j := range v {
			x := cl.center[j] + rng.NormFloat64()*cl.scale
			x = math.Max(lo, math.Min(hi, x))
			v[j] = float32(x)
		}
		objs[i] = metric.Object{ID: uint64(i), Vec: v}
	}
	return objs
}

// Yeast generates the YEAST stand-in: 2,882 genes × 17 conditions under L1.
// Expression levels occupy the 0..600 range of the original microarray
// matrix and cluster into ~30 co-expression groups.
func Yeast() *Dataset {
	rng := rand.New(rand.NewPCG(0x59454153, 0x54)) // "YEAST"
	return &Dataset{
		Name:    "YEAST",
		Objects: clusteredMatrix(rng, YeastSize, YeastDim, 30, 280, 120, 60, 1, 0, 600),
		Dim:     YeastDim,
		Dist:    metric.L1{},
	}
}

// Human generates the HUMAN stand-in: 4,026 genes × 96 conditions under L1
// (Lymphoma/Leukemia Molecular Profiling Project shape). The original matrix
// holds log-ratio values roughly in [-200, 200] after scaling.
func Human() *Dataset {
	rng := rand.New(rand.NewPCG(0x48554d41, 0x4e)) // "HUMAN"
	return &Dataset{
		Name:    "HUMAN",
		Objects: clusteredMatrix(rng, HumanSize, HumanDim, 40, 0, 80, 35, 9, -200, 200),
		Dim:     HumanDim,
		Dist:    metric.L1{},
	}
}

// CoPhIR generates an n-object CoPhIR stand-in: 280-dim concatenated MPEG-7
// descriptors quantized to 0..255, compared by the weighted descriptor
// combination. Pass CoPhIRSize for the paper's full one-million scale; the
// benchmark harness defaults to a laptop-scale subset because the cost
// shapes (linearity in candidate size, server/client ratios) are scale-free.
func CoPhIR(n int) *Dataset {
	if n <= 0 {
		panic("dataset: CoPhIR size must be positive")
	}
	rng := rand.New(rand.NewPCG(0x436f5048, 0x495221)) // "CoPHIR!"
	// Images cluster by visual similarity; 200 visual themes with strongly
	// skewed popularity mimic a photo-sharing site. Descriptor coordinates
	// are integer-quantized as in MPEG-7.
	objs := clusteredMatrix(rng, n, CoPhIRDim, 200, 128, 55, 22, 6, 0, 255)
	for i := range objs {
		v := objs[i].Vec
		for j := range v {
			v[j] = float32(math.Round(float64(v[j])))
		}
	}
	return &Dataset{
		Name:    "CoPhIR",
		Objects: objs,
		Dim:     CoPhIRDim,
		Dist:    metric.NewCoPhIR(),
	}
}

// Embed768 generates an n-object embedding-like collection: 768-dimensional
// unit-normalized vectors under the cosine (angular) distance — the workload
// shape of modern text/image embedding models. The two-level cluster
// structure of the other generators carries over (topics with near-duplicate
// micro groups); every vector is then projected onto the unit sphere, where
// the angular distance is a true metric and the normalization the cosine
// pseudo-metric caveat (see metric.Cosine) vanishes.
func Embed768(n int) *Dataset {
	if n <= 0 {
		panic("dataset: Embed768 size must be positive")
	}
	rng := rand.New(rand.NewPCG(0x454d4245, 0x443736b8)) // "EMBED768"
	// Macro centers drawn N(0,1) per coordinate are uniform on the sphere
	// after normalization; micro spread and noise are small relative to the
	// ~sqrt(768) center norm, giving tight angular clusters.
	objs := clusteredMatrix(rng, n, Embed768Dim, 120, 0, 1, 0.25, 0.1, -6, 6)
	for i := range objs {
		v := objs[i].Vec
		var sq float64
		for _, x := range v {
			sq += float64(x) * float64(x)
		}
		if sq == 0 {
			v[0] = 1
			continue
		}
		inv := 1 / math.Sqrt(sq)
		for j := range v {
			v[j] = float32(float64(v[j]) * inv)
		}
	}
	return &Dataset{
		Name:    "embed768",
		Objects: objs,
		Dim:     Embed768Dim,
		Dist:    metric.Cosine{},
	}
}

// Clustered generates a generic clustered collection for tests and examples.
func Clustered(seed uint64, n, dim, k int, d metric.Distance) *Dataset {
	rng := rand.New(rand.NewPCG(seed, 0xC1C1))
	return &Dataset{
		Name:    fmt.Sprintf("clustered-%d", seed),
		Objects: clusteredMatrix(rng, n, dim, k, 0, 10, 2.5, 0.8, -100, 100),
		Dim:     dim,
		Dist:    d,
	}
}

// ByName returns the named data set ("YEAST", "HUMAN", "CoPhIR",
// "embed768"). cophirScale bounds the cardinality of the scalable sets
// (CoPhIR, embed768); <= 0 means their full default scale.
func ByName(name string, cophirScale int) (*Dataset, error) {
	switch name {
	case "YEAST":
		return Yeast(), nil
	case "HUMAN":
		return Human(), nil
	case "CoPhIR":
		if cophirScale <= 0 {
			cophirScale = CoPhIRSize
		}
		return CoPhIR(cophirScale), nil
	case "embed768":
		if cophirScale <= 0 {
			cophirScale = Embed768Size
		}
		return Embed768(cophirScale), nil
	}
	return nil, fmt.Errorf("dataset: unknown data set %q", name)
}

// SampleQueries draws nq query objects from the collection without
// replacement, deterministically from seed. When exclude is true the chosen
// objects are also removed from the returned rest slice — the paper's 1-NN
// experiment excludes query objects from the indexed set, while the 30-NN
// experiments query objects randomly chosen from the data set itself.
func SampleQueries(d *Dataset, nq int, seed uint64, exclude bool) (queries []metric.Object, rest []metric.Object) {
	if nq > len(d.Objects) {
		nq = len(d.Objects)
	}
	rng := rand.New(rand.NewPCG(seed, 0x5155)) // "QU"
	idx := rng.Perm(len(d.Objects))
	chosen := make(map[int]bool, nq)
	queries = make([]metric.Object, 0, nq)
	for _, i := range idx[:nq] {
		chosen[i] = true
		queries = append(queries, d.Objects[i])
	}
	if !exclude {
		return queries, d.Objects
	}
	rest = make([]metric.Object, 0, len(d.Objects)-nq)
	for i, o := range d.Objects {
		if !chosen[i] {
			rest = append(rest, o)
		}
	}
	return queries, rest
}
