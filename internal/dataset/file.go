package dataset

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"

	"simcloud/internal/metric"
)

// Binary collection file format (little endian):
//
//	magic   [8]byte  "SIMCDAT1"
//	nameLen uint16   followed by name bytes
//	distLen uint16   followed by distance-function name bytes
//	n       uint64   object count
//	dim     uint32   vector dimension
//	objects n × { id uint64, dim × float32 }
//
// The format exists so simdatagen can materialize a collection once and the
// server/client tools can share it.

var fileMagic = [8]byte{'S', 'I', 'M', 'C', 'D', 'A', 'T', '1'}

// Write serializes the data set to w.
func (d *Dataset) Write(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.Write(fileMagic[:]); err != nil {
		return err
	}
	if err := writeString(bw, d.Name); err != nil {
		return err
	}
	if err := writeString(bw, d.Dist.Name()); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint64(len(d.Objects))); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(d.Dim)); err != nil {
		return err
	}
	buf := make([]byte, 8+4*d.Dim)
	for _, o := range d.Objects {
		if len(o.Vec) != d.Dim {
			return fmt.Errorf("dataset: object %d has dim %d, want %d", o.ID, len(o.Vec), d.Dim)
		}
		binary.LittleEndian.PutUint64(buf[:8], o.ID)
		for j, f := range o.Vec {
			binary.LittleEndian.PutUint32(buf[8+4*j:], math.Float32bits(f))
		}
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read deserializes a data set previously produced by Write.
func Read(r io.Reader) (*Dataset, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("dataset: reading magic: %w", err)
	}
	if magic != fileMagic {
		return nil, fmt.Errorf("dataset: bad magic %q", magic[:])
	}
	name, err := readString(br)
	if err != nil {
		return nil, err
	}
	distName, err := readString(br)
	if err != nil {
		return nil, err
	}
	dist, err := metric.ByName(distName)
	if err != nil {
		return nil, err
	}
	var n uint64
	if err := binary.Read(br, binary.LittleEndian, &n); err != nil {
		return nil, err
	}
	var dim uint32
	if err := binary.Read(br, binary.LittleEndian, &dim); err != nil {
		return nil, err
	}
	const maxObjects = 1 << 28 // sanity bound against corrupted headers
	if n > maxObjects || dim == 0 || dim > 1<<20 {
		return nil, fmt.Errorf("dataset: implausible header n=%d dim=%d", n, dim)
	}
	objs := make([]metric.Object, n)
	buf := make([]byte, 8+4*int(dim))
	for i := range objs {
		if _, err := io.ReadFull(br, buf); err != nil {
			return nil, fmt.Errorf("dataset: reading object %d: %w", i, err)
		}
		v := make(metric.Vector, dim)
		for j := range v {
			v[j] = math.Float32frombits(binary.LittleEndian.Uint32(buf[8+4*j:]))
		}
		objs[i] = metric.Object{ID: binary.LittleEndian.Uint64(buf[:8]), Vec: v}
	}
	return &Dataset{Name: name, Objects: objs, Dim: int(dim), Dist: dist}, nil
}

// SaveFile writes the data set to path.
func (d *Dataset) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := d.Write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadFile reads a data set from path.
func LoadFile(path string) (*Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}

func writeString(w io.Writer, s string) error {
	if len(s) > 1<<16-1 {
		return fmt.Errorf("dataset: string too long (%d bytes)", len(s))
	}
	if err := binary.Write(w, binary.LittleEndian, uint16(len(s))); err != nil {
		return err
	}
	_, err := io.WriteString(w, s)
	return err
}

func readString(r io.Reader) (string, error) {
	var n uint16
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return "", err
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}
