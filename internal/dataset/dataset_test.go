package dataset

import (
	"bytes"
	"math"
	"path/filepath"
	"testing"

	"simcloud/internal/metric"
)

func TestYeastShape(t *testing.T) {
	d := Yeast()
	if d.Size() != YeastSize {
		t.Fatalf("size = %d, want %d", d.Size(), YeastSize)
	}
	if d.Dim != YeastDim {
		t.Fatalf("dim = %d, want %d", d.Dim, YeastDim)
	}
	if d.Dist.Name() != "L1" {
		t.Fatalf("distance = %s, want L1", d.Dist.Name())
	}
	for i, o := range d.Objects {
		if len(o.Vec) != YeastDim {
			t.Fatalf("object %d dim = %d", i, len(o.Vec))
		}
		if o.ID != uint64(i) {
			t.Fatalf("object %d has ID %d", i, o.ID)
		}
		for _, v := range o.Vec {
			if v < 0 || v > 600 {
				t.Fatalf("object %d value %g out of expression range", i, v)
			}
		}
	}
}

func TestHumanShape(t *testing.T) {
	d := Human()
	if d.Size() != HumanSize || d.Dim != HumanDim {
		t.Fatalf("shape = %d×%d, want %d×%d", d.Size(), d.Dim, HumanSize, HumanDim)
	}
	for _, o := range d.Objects {
		for _, v := range o.Vec {
			if v < -200 || v > 200 {
				t.Fatalf("value %g out of range", v)
			}
		}
	}
}

func TestCoPhIRShape(t *testing.T) {
	d := CoPhIR(500)
	if d.Size() != 500 || d.Dim != CoPhIRDim {
		t.Fatalf("shape = %d×%d", d.Size(), d.Dim)
	}
	if d.Dist.Name() != "cophir" {
		t.Fatalf("distance = %s", d.Dist.Name())
	}
	for _, o := range d.Objects {
		for _, v := range o.Vec {
			if v < 0 || v > 255 || v != float32(math.Trunc(float64(v))) {
				t.Fatalf("descriptor value %g not an MPEG-7 quantized byte", v)
			}
		}
	}
}

func TestCoPhIRRejectsNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	CoPhIR(0)
}

func TestGeneratorsDeterministic(t *testing.T) {
	a, b := Yeast(), Yeast()
	for i := range a.Objects {
		if !a.Objects[i].Vec.Equal(b.Objects[i].Vec) {
			t.Fatalf("YEAST generation not deterministic at object %d", i)
		}
	}
	c, d := CoPhIR(200), CoPhIR(200)
	for i := range c.Objects {
		if !c.Objects[i].Vec.Equal(d.Objects[i].Vec) {
			t.Fatalf("CoPhIR generation not deterministic at object %d", i)
		}
	}
}

func TestCoPhIRPrefixStable(t *testing.T) {
	// A smaller scale must be a prefix-compatible draw: not required to be a
	// strict prefix, but deterministic per n.
	a, b := CoPhIR(100), CoPhIR(100)
	for i := range a.Objects {
		if !a.Objects[i].Vec.Equal(b.Objects[i].Vec) {
			t.Fatal("same-n CoPhIR differs between calls")
		}
	}
}

func TestEmbed768Shape(t *testing.T) {
	d := Embed768(300)
	if d.Size() != 300 || d.Dim != Embed768Dim {
		t.Fatalf("shape = %d×%d", d.Size(), d.Dim)
	}
	if d.Dist.Name() != "cosine" {
		t.Fatalf("distance = %s, want cosine", d.Dist.Name())
	}
	for i, o := range d.Objects {
		if o.ID != uint64(i) {
			t.Fatalf("object %d has ID %d", i, o.ID)
		}
		var sq float64
		for _, v := range o.Vec {
			sq += float64(v) * float64(v)
		}
		if norm := math.Sqrt(sq); math.Abs(norm-1) > 1e-4 {
			t.Fatalf("object %d has norm %g, want 1", i, norm)
		}
	}
}

func TestEmbed768Deterministic(t *testing.T) {
	a, b := Embed768(150), Embed768(150)
	for i := range a.Objects {
		if !a.Objects[i].Vec.Equal(b.Objects[i].Vec) {
			t.Fatalf("embed768 generation not deterministic at object %d", i)
		}
	}
}

func TestEmbed768RejectsNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Embed768(-1)
}

func TestEmbed768IsAngularClustered(t *testing.T) {
	// The angular nearest-neighbor distance must sit well below the average
	// pairwise angle, mirroring TestClusteredIsClustered on the sphere.
	d := Embed768(300)
	objs := d.Objects
	var pairSum, nnSum float64
	var pairN int
	for i := 0; i < 60; i++ {
		nn := math.Inf(1)
		for j := range objs {
			if j == i {
				continue
			}
			dist := d.Dist.Dist(objs[i].Vec, objs[j].Vec)
			pairSum += dist
			pairN++
			if dist < nn {
				nn = dist
			}
		}
		nnSum += nn
	}
	avgPair := pairSum / float64(pairN)
	avgNN := nnSum / 60
	if avgNN > avgPair/2 {
		t.Fatalf("embed768 not clustered: avg NN %g vs avg pair %g", avgNN, avgPair)
	}
}

func TestEmbed768SampleQueriesExcluding(t *testing.T) {
	d := Embed768(120)
	qs, rest := SampleQueries(d, 20, 11, true)
	if len(qs) != 20 || len(rest) != 100 {
		t.Fatalf("split = %d/%d", len(qs), len(rest))
	}
	inRest := make(map[uint64]bool)
	for _, o := range rest {
		inRest[o.ID] = true
	}
	for _, q := range qs {
		if inRest[q.ID] {
			t.Fatalf("query %d not excluded from rest", q.ID)
		}
	}
}

func TestClusteredIsClustered(t *testing.T) {
	// Clustered data must have average nearest-neighbor distance well below
	// the average pairwise distance — that is what the Voronoi partitioning
	// exploits. Uniform data would have the two close together.
	d := Clustered(1, 400, 16, 8, metric.L2{})
	objs := d.Objects
	var pairSum float64
	var pairN int
	nnSum := 0.0
	for i := 0; i < 100; i++ {
		nn := math.Inf(1)
		for j := range objs {
			if j == i {
				continue
			}
			dist := d.Dist.Dist(objs[i].Vec, objs[j].Vec)
			pairSum += dist
			pairN++
			if dist < nn {
				nn = dist
			}
		}
		nnSum += nn
	}
	avgPair := pairSum / float64(pairN)
	avgNN := nnSum / 100
	if avgNN > avgPair/2 {
		t.Fatalf("data not clustered: avg NN %g vs avg pair %g", avgNN, avgPair)
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"YEAST", "HUMAN"} {
		d, err := ByName(name, 0)
		if err != nil {
			t.Fatalf("ByName(%s): %v", name, err)
		}
		if d.Name != name {
			t.Fatalf("name = %s", d.Name)
		}
	}
	d, err := ByName("CoPhIR", 123)
	if err != nil || d.Size() != 123 {
		t.Fatalf("CoPhIR scaled: %v size=%d", err, d.Size())
	}
	e, err := ByName("embed768", 77)
	if err != nil || e.Size() != 77 || e.Name != "embed768" {
		t.Fatalf("embed768 scaled: %v size=%d name=%s", err, e.Size(), e.Name)
	}
	if _, err := ByName("nope", 0); err == nil {
		t.Fatal("unknown data set accepted")
	}
}

func TestSampleQueriesExcluding(t *testing.T) {
	d := Clustered(3, 100, 4, 4, metric.L1{})
	qs, rest := SampleQueries(d, 10, 7, true)
	if len(qs) != 10 || len(rest) != 90 {
		t.Fatalf("split = %d/%d", len(qs), len(rest))
	}
	inRest := make(map[uint64]bool)
	for _, o := range rest {
		inRest[o.ID] = true
	}
	for _, q := range qs {
		if inRest[q.ID] {
			t.Fatalf("query %d not excluded from rest", q.ID)
		}
	}
}

func TestSampleQueriesNonExcluding(t *testing.T) {
	d := Clustered(4, 50, 4, 2, metric.L1{})
	qs, rest := SampleQueries(d, 5, 9, false)
	if len(qs) != 5 || len(rest) != 50 {
		t.Fatalf("split = %d/%d", len(qs), len(rest))
	}
	// Deterministic for the same seed.
	qs2, _ := SampleQueries(d, 5, 9, false)
	for i := range qs {
		if qs[i].ID != qs2[i].ID {
			t.Fatal("sampling not deterministic")
		}
	}
	// Different for a different seed (overwhelmingly likely).
	qs3, _ := SampleQueries(d, 5, 10, false)
	same := true
	for i := range qs {
		if qs[i].ID != qs3[i].ID {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical samples")
	}
}

func TestSampleQueriesOversized(t *testing.T) {
	d := Clustered(5, 10, 2, 2, metric.L1{})
	qs, rest := SampleQueries(d, 50, 1, true)
	if len(qs) != 10 || len(rest) != 0 {
		t.Fatalf("oversized sample: %d/%d", len(qs), len(rest))
	}
}

func TestFileRoundTrip(t *testing.T) {
	d := Clustered(6, 64, 5, 3, metric.L2{})
	var buf bytes.Buffer
	if err := d.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != d.Name || got.Dim != d.Dim || got.Dist.Name() != d.Dist.Name() {
		t.Fatalf("header mismatch: %+v", got)
	}
	if got.Size() != d.Size() {
		t.Fatalf("size = %d, want %d", got.Size(), d.Size())
	}
	for i := range d.Objects {
		if got.Objects[i].ID != d.Objects[i].ID || !got.Objects[i].Vec.Equal(d.Objects[i].Vec) {
			t.Fatalf("object %d mismatch", i)
		}
	}
}

func TestFileRoundTripDisk(t *testing.T) {
	d := CoPhIR(50)
	path := filepath.Join(t.TempDir(), "cophir.simcdat")
	if err := d.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Size() != 50 || got.Dist.Name() != "cophir" {
		t.Fatalf("loaded %d objects under %s", got.Size(), got.Dist.Name())
	}
}

func TestReadRejectsBadMagic(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte("NOTMAGIC-at-all"))); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestReadRejectsTruncated(t *testing.T) {
	d := Clustered(7, 16, 2, 2, metric.L1{})
	var buf bytes.Buffer
	if err := d.Write(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	if _, err := Read(bytes.NewReader(raw[:len(raw)/2])); err == nil {
		t.Fatal("truncated file accepted")
	}
}

func TestReadRejectsImplausibleHeader(t *testing.T) {
	var buf bytes.Buffer
	buf.Write(fileMagic[:])
	buf.Write([]byte{1, 0}) // name len 1
	buf.WriteByte('x')
	buf.Write([]byte{2, 0}) // dist len 2
	buf.WriteString("L1")
	// n = 2^40 (implausible), dim = 4
	buf.Write([]byte{0, 0, 0, 0, 0, 1, 0, 0})
	buf.Write([]byte{4, 0, 0, 0})
	if _, err := Read(&buf); err == nil {
		t.Fatal("implausible header accepted")
	}
}
