// Package transform implements the distance transformation the paper's
// conclusion proposes as future work: "transform the distances to pivots
// stored on the server for precise strategies; such transformation could
// better hide information about the data set distribution" — privacy level
// 4 of the paper's taxonomy (Section 2.3).
//
// The construction is a keyed, strictly increasing, piecewise-linear map
// T: [0, ∞) → [0, 1+) fitted so that the transformed object–pivot distances
// are approximately uniform (histogram equalization over a quantile
// sketch, with keyed jitter). The server then stores T(d(o,p_i)) instead of
// d(o,p_i) and receives T(d(q,p_i)) at query time:
//
//   - Pivot permutations are unchanged (a global monotone map preserves
//     all distance comparisons), so the approximate strategy and cell
//     ranking work as before.
//   - The metric pruning rules remain *correct* in transformed space when
//     the radius is scaled by the transform's maximum slope L: from
//     |T(a)−T(b)| ≤ L·|a−b| it follows that every object within radius r
//     of the query keeps its transformed pivot gaps within L·r, so running
//     the untouched server algorithms with radius L·r yields a candidate
//     superset — no false dismissals; the client refinement restores
//     exactness. Pruning gets looser (the price of hiding), which the
//     ablation benchmark quantifies.
//
// What the server learns from transformed distances is (approximately) a
// uniform distribution on [0,1]: the shape of the data's distance
// distribution — a fingerprint an attacker could match against public
// collections — is gone.
package transform

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"math/rand/v2"
	"sort"
)

// Monotone is a strictly increasing piecewise-linear transform.
type Monotone struct {
	// xs are knot positions (strictly increasing, xs[0] == 0).
	xs []float64
	// ys are transformed values at the knots (strictly increasing).
	ys []float64
	// maxSlope is the Lipschitz constant over all segments (including the
	// extrapolation segment past the last knot).
	maxSlope float64
}

// minSegmentSlope keeps the map strictly increasing and invertible even on
// degenerate (constant) samples.
const minSegmentSlope = 1e-9

// FitEqualizing builds an equalizing transform from a sample of distances:
// knot positions are jittered sample quantiles, knot values are equally
// spaced on [0,1], so applying the transform to data from the sampled
// distribution produces approximately uniform output. The jitter is drawn
// from rng, which the data owner seeds from key material — two owners with
// the same data get different transforms.
func FitEqualizing(rng *rand.Rand, sample []float64, knots int) (*Monotone, error) {
	if len(sample) < 2 {
		return nil, errors.New("transform: need at least 2 sample distances")
	}
	if knots < 2 {
		return nil, fmt.Errorf("transform: need at least 2 knots, got %d", knots)
	}
	sorted := make([]float64, 0, len(sample))
	for _, d := range sample {
		if d < 0 || math.IsNaN(d) || math.IsInf(d, 0) {
			return nil, fmt.Errorf("transform: invalid sample distance %g", d)
		}
		sorted = append(sorted, d)
	}
	sort.Float64s(sorted)
	dmax := sorted[len(sorted)-1]
	if dmax == 0 {
		return nil, errors.New("transform: all sample distances are zero")
	}

	xs := make([]float64, 0, knots+1)
	xs = append(xs, 0)
	for i := 1; i < knots; i++ {
		q := sorted[i*(len(sorted)-1)/(knots-1)]
		// Keyed jitter: ±10% of the local spacing, keeping order.
		q += (rng.Float64() - 0.5) * 0.2 * dmax / float64(knots)
		if q <= xs[len(xs)-1] {
			continue // drop knots that collapsed onto the previous one
		}
		if q > dmax {
			q = dmax
		}
		xs = append(xs, q)
	}
	if len(xs) < 2 {
		xs = append(xs, dmax)
	}
	ys := make([]float64, len(xs))
	for i := range ys {
		ys[i] = float64(i) / float64(len(xs)-1)
	}
	t := &Monotone{xs: xs, ys: ys}
	t.maxSlope = t.computeMaxSlope()
	return t, nil
}

// NewMonotone builds a transform from explicit knots (used by Unmarshal and
// tests). xs must start at 0 and both slices must be strictly increasing.
func NewMonotone(xs, ys []float64) (*Monotone, error) {
	if len(xs) < 2 || len(xs) != len(ys) {
		return nil, errors.New("transform: need matching knot slices of length >= 2")
	}
	if xs[0] != 0 {
		return nil, errors.New("transform: first knot must be at distance 0")
	}
	for i := 1; i < len(xs); i++ {
		if xs[i] <= xs[i-1] || ys[i] <= ys[i-1] {
			return nil, errors.New("transform: knots must be strictly increasing")
		}
	}
	t := &Monotone{xs: append([]float64(nil), xs...), ys: append([]float64(nil), ys...)}
	t.maxSlope = t.computeMaxSlope()
	return t, nil
}

func (t *Monotone) computeMaxSlope() float64 {
	maxSlope := minSegmentSlope
	for i := 1; i < len(t.xs); i++ {
		s := (t.ys[i] - t.ys[i-1]) / (t.xs[i] - t.xs[i-1])
		if s > maxSlope {
			maxSlope = s
		}
	}
	return maxSlope
}

// lastSlope is the extrapolation slope past the final knot.
func (t *Monotone) lastSlope() float64 {
	n := len(t.xs)
	s := (t.ys[n-1] - t.ys[n-2]) / (t.xs[n-1] - t.xs[n-2])
	return math.Max(s, minSegmentSlope)
}

// Apply evaluates the transform. Distances beyond the fitted range
// extrapolate linearly with the last segment's slope, preserving strict
// monotonicity and the Lipschitz bound.
func (t *Monotone) Apply(d float64) float64 {
	if d <= 0 {
		return t.ys[0]
	}
	n := len(t.xs)
	if d >= t.xs[n-1] {
		return t.ys[n-1] + (d-t.xs[n-1])*t.lastSlope()
	}
	i := sort.SearchFloat64s(t.xs, d)
	// xs[i-1] < d <= xs[i] (d < xs[n-1] and d > xs[0] here).
	x0, x1 := t.xs[i-1], t.xs[i]
	y0, y1 := t.ys[i-1], t.ys[i]
	return y0 + (d-x0)*(y1-y0)/(x1-x0)
}

// ApplyAll transforms a distance vector.
func (t *Monotone) ApplyAll(dists []float64) []float64 {
	out := make([]float64, len(dists))
	for i, d := range dists {
		out[i] = t.Apply(d)
	}
	return out
}

// MaxSlope returns the Lipschitz constant of the transform.
func (t *Monotone) MaxSlope() float64 { return t.maxSlope }

// RadiusBound maps a query radius r into transformed space such that all
// server-side pruning remains a superset filter: |T(a)−T(b)| ≤ MaxSlope·|a−b|.
func (t *Monotone) RadiusBound(r float64) float64 {
	return r * t.maxSlope
}

// Knots returns the number of knots (diagnostics).
func (t *Monotone) Knots() int { return len(t.xs) }

// Marshal serializes the transform (it travels inside the secret key).
func (t *Monotone) Marshal() []byte {
	out := make([]byte, 0, 4+16*len(t.xs))
	out = binary.LittleEndian.AppendUint32(out, uint32(len(t.xs)))
	for i := range t.xs {
		out = binary.LittleEndian.AppendUint64(out, math.Float64bits(t.xs[i]))
		out = binary.LittleEndian.AppendUint64(out, math.Float64bits(t.ys[i]))
	}
	return out
}

// Unmarshal reconstructs a transform serialized by Marshal.
func Unmarshal(buf []byte) (*Monotone, error) {
	if len(buf) < 4 {
		return nil, errors.New("transform: truncated blob")
	}
	n := int(binary.LittleEndian.Uint32(buf))
	buf = buf[4:]
	if n < 2 || len(buf) != 16*n {
		return nil, fmt.Errorf("transform: implausible knot count %d for %d bytes", n, len(buf))
	}
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := range n {
		xs[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[16*i:]))
		ys[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[16*i+8:]))
	}
	return NewMonotone(xs, ys)
}
