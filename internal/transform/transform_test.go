package transform

import (
	"math"
	"math/rand/v2"
	"sort"
	"testing"
	"testing/quick"
)

func sampleDists(rng *rand.Rand, n int) []float64 {
	// A lumpy, decidedly non-uniform distance distribution.
	out := make([]float64, n)
	for i := range out {
		if rng.IntN(3) == 0 {
			out[i] = math.Abs(rng.NormFloat64())*5 + 100
		} else {
			out[i] = math.Abs(rng.NormFloat64()) * 30
		}
	}
	return out
}

func fit(t *testing.T, seed uint64, n, knots int) *Monotone {
	t.Helper()
	rng := rand.New(rand.NewPCG(seed, 1))
	tr, err := FitEqualizing(rng, sampleDists(rng, n), knots)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestFitValidation(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	if _, err := FitEqualizing(rng, []float64{1}, 8); err == nil {
		t.Error("single sample accepted")
	}
	if _, err := FitEqualizing(rng, []float64{1, 2}, 1); err == nil {
		t.Error("single knot accepted")
	}
	if _, err := FitEqualizing(rng, []float64{1, -2}, 4); err == nil {
		t.Error("negative distance accepted")
	}
	if _, err := FitEqualizing(rng, []float64{1, math.NaN()}, 4); err == nil {
		t.Error("NaN distance accepted")
	}
	if _, err := FitEqualizing(rng, []float64{0, 0, 0}, 4); err == nil {
		t.Error("all-zero sample accepted")
	}
}

func TestStrictlyIncreasing(t *testing.T) {
	tr := fit(t, 2, 2000, 16)
	prev := math.Inf(-1)
	for d := 0.0; d < 300; d += 0.37 {
		v := tr.Apply(d)
		if v <= prev {
			t.Fatalf("not strictly increasing at %g: %g <= %g", d, v, prev)
		}
		prev = v
	}
}

func TestQuickMonotoneAndLipschitz(t *testing.T) {
	tr := fit(t, 3, 1000, 12)
	L := tr.MaxSlope()
	f := func(a, b float64) bool {
		a, b = math.Abs(a), math.Abs(b)
		if math.IsInf(a, 0) || math.IsInf(b, 0) || a != a || b != b || a > 1e12 || b > 1e12 {
			return true
		}
		ta, tb := tr.Apply(a), tr.Apply(b)
		// Monotone.
		if (a < b && ta >= tb) || (a > b && ta <= tb) {
			return false
		}
		// Lipschitz: |T(a)-T(b)| <= L|a-b| (with float tolerance).
		return math.Abs(ta-tb) <= L*math.Abs(a-b)*(1+1e-9)+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestEqualizesDistribution(t *testing.T) {
	rng := rand.New(rand.NewPCG(4, 4))
	sample := sampleDists(rng, 5000)
	tr, err := FitEqualizing(rng, sample, 64)
	if err != nil {
		t.Fatal(err)
	}
	// Transform an independent draw from the same distribution; the output
	// should be near-uniform on [0,1]: quartiles near 0.25/0.5/0.75.
	fresh := sampleDists(rng, 5000)
	out := tr.ApplyAll(fresh)
	sort.Float64s(out)
	q := func(p float64) float64 { return out[int(p*float64(len(out)-1))] }
	for _, tc := range []struct{ p, want float64 }{{0.25, 0.25}, {0.5, 0.5}, {0.75, 0.75}} {
		if got := q(tc.p); math.Abs(got-tc.want) > 0.06 {
			t.Errorf("quantile %.2f of transformed data = %.3f, want ≈ %.2f", tc.p, got, tc.want)
		}
	}
	// Whereas the raw data's quartiles are nowhere near uniform once scaled
	// to [0,1] (sanity check that the test is meaningful).
	raw := append([]float64(nil), fresh...)
	sort.Float64s(raw)
	rawQ50 := raw[len(raw)/2] / raw[len(raw)-1]
	if math.Abs(rawQ50-0.5) < 0.1 {
		t.Skip("raw sample unexpectedly uniform; equalization test uninformative")
	}
}

func TestKeyedJitterDiffers(t *testing.T) {
	rngData := rand.New(rand.NewPCG(5, 5))
	sample := sampleDists(rngData, 2000)
	t1, err := FitEqualizing(rand.New(rand.NewPCG(1, 0)), sample, 16)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := FitEqualizing(rand.New(rand.NewPCG(2, 0)), sample, 16)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for d := 1.0; d < 100; d += 7 {
		if t1.Apply(d) != t2.Apply(d) {
			same = false
			break
		}
	}
	if same {
		t.Fatal("two keys produced identical transforms")
	}
}

func TestRadiusBoundCoversTransformedGaps(t *testing.T) {
	tr := fit(t, 6, 3000, 24)
	rng := rand.New(rand.NewPCG(6, 6))
	for range 5000 {
		a := math.Abs(rng.NormFloat64()) * 60
		r := rng.Float64() * 20
		b := a + (rng.Float64()*2-1)*r // |a-b| <= r
		if b < 0 {
			b = 0
		}
		if math.Abs(tr.Apply(a)-tr.Apply(b)) > tr.RadiusBound(r)*(1+1e-9) {
			t.Fatalf("transformed gap %g exceeds radius bound %g (a=%g b=%g r=%g)",
				math.Abs(tr.Apply(a)-tr.Apply(b)), tr.RadiusBound(r), a, b, r)
		}
	}
}

func TestExtrapolation(t *testing.T) {
	tr := fit(t, 7, 500, 8)
	big := tr.Apply(1e6)
	bigger := tr.Apply(2e6)
	if !(bigger > big) {
		t.Fatal("extrapolation not increasing")
	}
	if tr.Apply(-5) != tr.Apply(0) {
		t.Fatal("negative distances must clamp to 0")
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	tr := fit(t, 8, 1000, 12)
	got, err := Unmarshal(tr.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got.Knots() != tr.Knots() || got.MaxSlope() != tr.MaxSlope() {
		t.Fatalf("round trip changed shape: %d/%g vs %d/%g",
			got.Knots(), got.MaxSlope(), tr.Knots(), tr.MaxSlope())
	}
	for d := 0.0; d < 200; d += 3.1 {
		if got.Apply(d) != tr.Apply(d) {
			t.Fatalf("round trip changed value at %g", d)
		}
	}
}

func TestUnmarshalRejectsGarbage(t *testing.T) {
	for _, buf := range [][]byte{
		nil,
		{1, 2},
		{0, 0, 0, 0},          // zero knots
		{2, 0, 0, 0, 1, 2, 3}, // truncated
	} {
		if _, err := Unmarshal(buf); err == nil {
			t.Fatalf("garbage %v accepted", buf)
		}
	}
	// Non-monotone knots must be rejected at reconstruction.
	bad, err := NewMonotone([]float64{0, 1, 2}, []float64{0, 0.5, 1})
	if err != nil {
		t.Fatal(err)
	}
	blob := bad.Marshal()
	// Swap the middle knot's y with the last to break monotonicity.
	copyBlob := append([]byte(nil), blob...)
	copy(copyBlob[4+16+8:], blob[4+32+8:4+32+16])
	copy(copyBlob[4+32+8:], blob[4+16+8:4+16+16])
	if _, err := Unmarshal(copyBlob); err == nil {
		t.Fatal("non-monotone knots accepted")
	}
}

func TestNewMonotoneValidation(t *testing.T) {
	if _, err := NewMonotone([]float64{0}, []float64{0}); err == nil {
		t.Error("single knot accepted")
	}
	if _, err := NewMonotone([]float64{1, 2}, []float64{0, 1}); err == nil {
		t.Error("non-zero origin accepted")
	}
	if _, err := NewMonotone([]float64{0, 0}, []float64{0, 1}); err == nil {
		t.Error("duplicate x accepted")
	}
	if _, err := NewMonotone([]float64{0, 1}, []float64{1, 0}); err == nil {
		t.Error("decreasing y accepted")
	}
}
