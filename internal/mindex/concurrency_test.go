package mindex

import (
	"math/rand/v2"
	"sync"
	"testing"

	"simcloud/internal/dataset"
	"simcloud/internal/metric"
	"simcloud/internal/pivot"
)

// Random-config property test: for arbitrary (sane) index parameters, the
// fundamental invariants must hold — range ≡ linear scan, kNN ≡ brute
// force, tree bounded by MaxLevel. This catches interactions between
// bucket capacity, pivot count and split depth that fixed-config tests
// would miss.
func TestQuickRandomConfigs(t *testing.T) {
	rng := rand.New(rand.NewPCG(0xC0FFEE, 1))
	for trial := range 12 {
		nPivots := 3 + rng.IntN(14)
		cfg := Config{
			NumPivots:      nPivots,
			MaxLevel:       1 + rng.IntN(nPivots),
			BucketCapacity: 1 + rng.IntN(60),
			Storage:        StorageMemory,
			Ranking:        []RankStrategy{RankFootrule, RankDistSum}[rng.IntN(2)],
		}
		n := 100 + rng.IntN(500)
		dim := 2 + rng.IntN(8)
		ds := dataset.Clustered(uint64(trial)+100, n, dim, 1+rng.IntN(6), metric.L2{})
		pv := pivot.SelectRandom(rng, ds.Dist, ds.Objects, nPivots)
		p, err := NewPlain(cfg, pv)
		if err != nil {
			t.Fatalf("trial %d cfg %+v: %v", trial, cfg, err)
		}
		if err := p.InsertBulk(ds.Objects); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}

		st := p.Idx.TreeStats()
		if st.Entries != n || st.TotalBucket != n {
			t.Fatalf("trial %d: stats %+v for %d objects", trial, st, n)
		}
		if st.MaxDepth > cfg.MaxLevel {
			t.Fatalf("trial %d: depth %d > MaxLevel %d", trial, st.MaxDepth, cfg.MaxLevel)
		}

		q := ds.Objects[rng.IntN(n)].Vec
		r := 1 + rng.Float64()*15
		got, err := p.Range(q, r)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		want := 0
		for _, o := range ds.Objects {
			if ds.Dist.Dist(q, o.Vec) <= r {
				want++
			}
		}
		if len(got) != want {
			t.Fatalf("trial %d cfg %+v: range %d results, scan %d", trial, cfg, len(got), want)
		}

		k := 1 + rng.IntN(12)
		knn, err := p.KNN(q, k)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		brute, err := p.BruteForceKNN(q, k)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for i := range knn {
			if knn[i].Dist != brute[i].Dist {
				t.Fatalf("trial %d cfg %+v: kNN rank %d dist %g vs %g",
					trial, cfg, i, knn[i].Dist, brute[i].Dist)
			}
		}
		p.Idx.Close()
	}
}

// Concurrent inserts and searches must not corrupt the index (run under
// -race in CI). Readers may see a prefix of the inserts, never torn state.
func TestConcurrentInsertAndSearch(t *testing.T) {
	ds := dataset.Clustered(321, 2000, 4, 6, metric.L2{})
	rng := rand.New(rand.NewPCG(321, 1))
	pv := pivot.SelectRandom(rng, ds.Dist, ds.Objects, 8)
	p, err := NewPlain(testConfig(8), pv)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Idx.Close()

	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Writer: inserts everything.
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(stop)
		for _, o := range ds.Objects {
			if err := p.Insert(o); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	// Readers: hammer searches while the writer runs.
	for w := range 4 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			qrng := rand.New(rand.NewPCG(uint64(w), 2))
			for {
				select {
				case <-stop:
					return
				default:
				}
				q := ds.Objects[qrng.IntN(len(ds.Objects))].Vec
				if _, err := p.Range(q, 5); err != nil {
					t.Error(err)
					return
				}
				if _, err := p.ApproxKNN(q, 5, 50); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()

	// Afterwards the index must hold everything and answer exactly.
	if p.Idx.Size() != len(ds.Objects) {
		t.Fatalf("size = %d, want %d", p.Idx.Size(), len(ds.Objects))
	}
	q := ds.Objects[0].Vec
	got, err := p.KNN(q, 5)
	if err != nil {
		t.Fatal(err)
	}
	brute, err := p.BruteForceKNN(q, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i].Dist != brute[i].Dist {
			t.Fatalf("post-concurrency kNN mismatch at %d", i)
		}
	}
}

// Duplicate objects (identical vectors) must all be indexed and all be
// returned by a radius-0 query — degenerate data is common in real
// collections (the near-duplicate images the paper's CoPhIR holds).
func TestDuplicateObjects(t *testing.T) {
	rng := rand.New(rand.NewPCG(77, 1))
	vecs := make([]metric.Vector, 5)
	for i := range vecs {
		v := make(metric.Vector, 4)
		for j := range v {
			v[j] = float32(rng.NormFloat64())
		}
		vecs[i] = v
	}
	var objs []metric.Object
	for i := range 100 {
		objs = append(objs, metric.Object{ID: uint64(i), Vec: vecs[i%len(vecs)].Clone()})
	}
	pv := pivot.NewSet(metric.L2{}, vecs)
	p, err := NewPlain(Config{
		NumPivots: 5, MaxLevel: 3, BucketCapacity: 4,
		Storage: StorageMemory, Ranking: RankFootrule,
	}, pv)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Idx.Close()
	if err := p.InsertBulk(objs); err != nil {
		t.Fatal(err)
	}
	got, err := p.Range(vecs[0], 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 20 {
		t.Fatalf("radius-0 over 20 duplicates returned %d", len(got))
	}
}
