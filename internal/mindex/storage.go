package mindex

import (
	"bufio"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// BucketID identifies a bucket within a BucketStore.
type BucketID uint64

// BucketStore abstracts the leaf-bucket backend of the M-Index. The paper's
// Table 2 uses memory storage for the small gene-expression sets and disk
// storage for CoPhIR; both are provided.
//
// Implementations must be safe for concurrent use — searches Load buckets
// under the index read-lock while other goroutines may be reading too.
type BucketStore interface {
	// Create allocates a new empty bucket.
	Create() (BucketID, error)
	// Append adds an entry to a bucket.
	Append(id BucketID, e Entry) error
	// Load returns all entries of a bucket.
	Load(id BucketID) ([]Entry, error)
	// Replace overwrites a bucket's contents (compaction and update purges
	// rewrite buckets after dropping dead entries).
	Replace(id BucketID, entries []Entry) error
	// Free releases a bucket (after a split has redistributed it).
	Free(id BucketID) error
	// Close releases all resources.
	Close() error
}

// MemStore keeps buckets as in-memory slices.
type MemStore struct {
	mu      sync.RWMutex
	buckets map[BucketID][]Entry
	next    BucketID
}

// NewMemStore creates an empty in-memory bucket store.
func NewMemStore() *MemStore {
	return &MemStore{buckets: make(map[BucketID][]Entry)}
}

// Create implements BucketStore.
func (s *MemStore) Create() (BucketID, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.next++
	id := s.next
	s.buckets[id] = nil
	return id, nil
}

// Append implements BucketStore.
func (s *MemStore) Append(id BucketID, e Entry) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.buckets[id]; !ok {
		return fmt.Errorf("mindex: append to unknown bucket %d", id)
	}
	s.buckets[id] = append(s.buckets[id], e)
	return nil
}

// Load implements BucketStore.
func (s *MemStore) Load(id BucketID) ([]Entry, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	entries, ok := s.buckets[id]
	if !ok {
		return nil, fmt.Errorf("mindex: load of unknown bucket %d", id)
	}
	out := make([]Entry, len(entries))
	copy(out, entries)
	return out, nil
}

// Replace implements BucketStore.
func (s *MemStore) Replace(id BucketID, entries []Entry) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.buckets[id]; !ok {
		return fmt.Errorf("mindex: replace of unknown bucket %d", id)
	}
	out := make([]Entry, len(entries))
	copy(out, entries)
	s.buckets[id] = out
	return nil
}

// Free implements BucketStore.
func (s *MemStore) Free(id BucketID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.buckets[id]; !ok {
		return fmt.Errorf("mindex: free of unknown bucket %d", id)
	}
	delete(s.buckets, id)
	return nil
}

// Close implements BucketStore.
func (s *MemStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.buckets = nil
	return nil
}

// DiskStore keeps each bucket as an append-only file of encoded entries in a
// directory, with a bounded cache of open append handles so bulk loading
// does not pay an open/close syscall pair per insert.
type DiskStore struct {
	mu     sync.Mutex
	dir    string
	next   BucketID
	counts map[BucketID]int
	open   map[BucketID]*bufio.Writer
	files  map[BucketID]*os.File
	lru    []BucketID
	maxFDs int
	closed bool
}

// NewDiskStore creates a bucket store rooted at dir (created if missing).
func NewDiskStore(dir string) (*DiskStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("mindex: creating bucket directory: %w", err)
	}
	return &DiskStore{
		dir:    dir,
		counts: make(map[BucketID]int),
		open:   make(map[BucketID]*bufio.Writer),
		files:  make(map[BucketID]*os.File),
		maxFDs: 128,
	}, nil
}

// ReopenDiskStore reattaches to an existing bucket directory after a
// restart, using the per-bucket entry counts and allocation cursor recorded
// in an index snapshot. Every referenced bucket file must exist.
func ReopenDiskStore(dir string, counts map[BucketID]int, next BucketID) (*DiskStore, error) {
	s, err := NewDiskStore(dir)
	if err != nil {
		return nil, err
	}
	for id := range counts {
		if id > next {
			s.Close()
			return nil, fmt.Errorf("mindex: bucket %d beyond allocation cursor %d", id, next)
		}
		if _, err := os.Stat(s.path(id)); err != nil {
			s.Close()
			return nil, fmt.Errorf("mindex: reattaching bucket %d: %w", id, err)
		}
		s.counts[id] = counts[id]
	}
	s.next = next
	return s, nil
}

// Sync flushes all buffered appends to disk.
func (s *DiskStore) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for id := range s.open {
		if err := s.closeHandle(id); err != nil {
			return err
		}
	}
	return nil
}

// NextID returns the bucket allocation cursor (for snapshots).
func (s *DiskStore) NextID() BucketID {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.next
}

func (s *DiskStore) path(id BucketID) string {
	return filepath.Join(s.dir, fmt.Sprintf("bucket-%09d.bin", id))
}

// Create implements BucketStore.
func (s *DiskStore) Create() (BucketID, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, errors.New("mindex: disk store closed")
	}
	s.next++
	id := s.next
	f, err := os.Create(s.path(id))
	if err != nil {
		return 0, err
	}
	if err := f.Close(); err != nil {
		return 0, err
	}
	s.counts[id] = 0
	return id, nil
}

// writer returns a buffered append handle for the bucket, evicting the least
// recently used handle when the cache is full.
func (s *DiskStore) writer(id BucketID) (*bufio.Writer, error) {
	if w, ok := s.open[id]; ok {
		s.touch(id)
		return w, nil
	}
	if len(s.open) >= s.maxFDs {
		victim := s.lru[0]
		if err := s.closeHandle(victim); err != nil {
			return nil, err
		}
	}
	f, err := os.OpenFile(s.path(id), os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		return nil, err
	}
	w := bufio.NewWriterSize(f, 1<<14)
	s.open[id] = w
	s.files[id] = f
	s.lru = append(s.lru, id)
	return w, nil
}

func (s *DiskStore) touch(id BucketID) {
	for i, v := range s.lru {
		if v == id {
			copy(s.lru[i:], s.lru[i+1:])
			s.lru[len(s.lru)-1] = id
			return
		}
	}
}

func (s *DiskStore) closeHandle(id BucketID) error {
	w, ok := s.open[id]
	if !ok {
		return nil
	}
	flushErr := w.Flush()
	closeErr := s.files[id].Close()
	delete(s.open, id)
	delete(s.files, id)
	for i, v := range s.lru {
		if v == id {
			s.lru = append(s.lru[:i], s.lru[i+1:]...)
			break
		}
	}
	if flushErr != nil {
		return flushErr
	}
	return closeErr
}

// Append implements BucketStore.
func (s *DiskStore) Append(id BucketID, e Entry) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errors.New("mindex: disk store closed")
	}
	if _, ok := s.counts[id]; !ok {
		return fmt.Errorf("mindex: append to unknown bucket %d", id)
	}
	w, err := s.writer(id)
	if err != nil {
		return err
	}
	if _, err := w.Write(EncodeEntry(e)); err != nil {
		return err
	}
	s.counts[id]++
	return nil
}

// Load implements BucketStore.
func (s *DiskStore) Load(id BucketID) ([]Entry, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, errors.New("mindex: disk store closed")
	}
	count, ok := s.counts[id]
	if !ok {
		return nil, fmt.Errorf("mindex: load of unknown bucket %d", id)
	}
	// Any buffered appends must be visible before reading the file back.
	if err := s.closeHandle(id); err != nil {
		return nil, err
	}
	raw, err := os.ReadFile(s.path(id))
	if err != nil {
		return nil, err
	}
	entries := make([]Entry, 0, count)
	for len(raw) > 0 {
		e, rest, err := DecodeEntry(raw)
		if err != nil {
			return nil, fmt.Errorf("mindex: bucket %d corrupted: %w", id, err)
		}
		entries = append(entries, e)
		raw = rest
	}
	if len(entries) != count {
		return nil, fmt.Errorf("mindex: bucket %d holds %d entries, expected %d", id, len(entries), count)
	}
	return entries, nil
}

// Replace implements BucketStore. The bucket file is rewritten through a
// temporary file and renamed into place, so a crash mid-rewrite leaves the
// previous contents intact.
func (s *DiskStore) Replace(id BucketID, entries []Entry) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errors.New("mindex: disk store closed")
	}
	if _, ok := s.counts[id]; !ok {
		return fmt.Errorf("mindex: replace of unknown bucket %d", id)
	}
	// Retire the append handle; the rewrite below replaces the file it
	// pointed at.
	if err := s.closeHandle(id); err != nil {
		return err
	}
	tmp := s.path(id) + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	w := bufio.NewWriterSize(f, 1<<14)
	for i := range entries {
		if _, err := w.Write(EncodeEntry(entries[i])); err != nil {
			f.Close()
			os.Remove(tmp)
			return err
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	// Reach stable storage before the rename replaces the old contents —
	// a power cut must never swap a good bucket for a truncated one.
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, s.path(id)); err != nil {
		os.Remove(tmp)
		return err
	}
	// Make the rename itself durable: a purge that later stops being
	// reflected in the tombstone set (snapshots persist after this) must
	// not be undone by a power cut resurrecting the old bucket contents.
	dir, err := os.Open(s.dir)
	if err != nil {
		return err
	}
	syncErr := dir.Sync()
	dir.Close()
	if syncErr != nil {
		return syncErr
	}
	s.counts[id] = len(entries)
	return nil
}

// Free implements BucketStore.
func (s *DiskStore) Free(id BucketID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errors.New("mindex: disk store closed")
	}
	if _, ok := s.counts[id]; !ok {
		return fmt.Errorf("mindex: free of unknown bucket %d", id)
	}
	if err := s.closeHandle(id); err != nil {
		return err
	}
	delete(s.counts, id)
	return os.Remove(s.path(id))
}

// Close implements BucketStore.
func (s *DiskStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	var firstErr error
	for id := range s.open {
		if err := s.closeHandle(id); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}
