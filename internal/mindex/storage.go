package mindex

import (
	"bufio"
	"container/list"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"slices"
	"sync"
)

// BucketID identifies a bucket within a BucketStore.
type BucketID uint64

// BucketStore abstracts the leaf-bucket backend of the M-Index. The paper's
// Table 2 uses memory storage for the small gene-expression sets and disk
// storage for CoPhIR; both are provided.
//
// Implementations must be safe for concurrent use — lock-free searches View
// buckets while mutators append, replace and free others (see
// Index.leafView for the read protocol layered on top).
type BucketStore interface {
	// Create allocates a new empty bucket.
	Create() (BucketID, error)
	// Append adds an entry to a bucket.
	Append(id BucketID, e Entry) error
	// Load returns all entries of a bucket as a caller-owned copy.
	Load(id BucketID) ([]Entry, error)
	// View returns all entries of a bucket without copying. The returned
	// slice is a read-only snapshot owned by the store: callers must not
	// modify it (in particular not compact it in place), but may hold it
	// across later store mutations — an Append never rewrites the elements
	// a previously returned snapshot covers, and a Replace or Free swaps
	// the backing rather than mutating it. This is the query hot path:
	// searches that only scan and copy out should View, mutators that need
	// ownership should Load.
	View(id BucketID) ([]Entry, error)
	// Replace overwrites a bucket's contents (compaction and update purges
	// rewrite buckets after dropping dead entries).
	Replace(id BucketID, entries []Entry) error
	// Free releases a bucket (after a split has redistributed it).
	Free(id BucketID) error
	// Close releases all resources.
	Close() error
}

// MemStore keeps buckets as in-memory slices.
type MemStore struct {
	mu      sync.RWMutex
	buckets map[BucketID][]Entry
	next    BucketID
}

// NewMemStore creates an empty in-memory bucket store.
func NewMemStore() *MemStore {
	return &MemStore{buckets: make(map[BucketID][]Entry)}
}

// Create implements BucketStore.
func (s *MemStore) Create() (BucketID, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.next++
	id := s.next
	s.buckets[id] = nil
	return id, nil
}

// Append implements BucketStore. Appending writes only at the end of the
// backing array (or relocates it), so snapshots previously handed out by
// View stay valid: they cover a prefix the append never touches.
func (s *MemStore) Append(id BucketID, e Entry) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.buckets[id]; !ok {
		return fmt.Errorf("mindex: append to unknown bucket %d", id)
	}
	s.buckets[id] = append(s.buckets[id], e)
	return nil
}

// createGhost burns one bucket ID without materializing a bucket — the
// bulk builder's allocation replay for buckets the incremental insert path
// would have created and later freed (see bulk.go).
func (s *MemStore) createGhost() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.next++
	return nil
}

// appendBatch appends a batch of entries under one lock acquisition.
// All-or-nothing: a MemStore append cannot fail partway.
func (s *MemStore) appendBatch(id BucketID, entries []Entry) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.buckets[id]
	if !ok {
		return fmt.Errorf("mindex: append to unknown bucket %d", id)
	}
	s.buckets[id] = append(b, entries...)
	return nil
}

// appendIndexed appends arena[idx[0]], arena[idx[1]], ... without the
// caller materializing a contiguous batch first — the bulk builder's leaf
// content goes arena→bucket in one copy.
func (s *MemStore) appendIndexed(id BucketID, arena []Entry, idx []int32) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.buckets[id]
	if !ok {
		return fmt.Errorf("mindex: append to unknown bucket %d", id)
	}
	if cap(b)-len(b) < len(idx) {
		nb := make([]Entry, len(b), len(b)+len(idx))
		copy(nb, b)
		b = nb
	}
	for _, i := range idx {
		b = append(b, arena[i])
	}
	s.buckets[id] = b
	return nil
}

// Load implements BucketStore.
func (s *MemStore) Load(id BucketID) ([]Entry, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	entries, ok := s.buckets[id]
	if !ok {
		return nil, fmt.Errorf("mindex: load of unknown bucket %d", id)
	}
	out := make([]Entry, len(entries))
	copy(out, entries)
	return out, nil
}

// View implements BucketStore: the bucket slice itself, zero-copy.
func (s *MemStore) View(id BucketID) ([]Entry, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	entries, ok := s.buckets[id]
	if !ok {
		return nil, fmt.Errorf("mindex: view of unknown bucket %d", id)
	}
	return entries, nil
}

// Replace implements BucketStore. The replacement is copied into a fresh
// backing array, so outstanding View snapshots keep the old contents.
func (s *MemStore) Replace(id BucketID, entries []Entry) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.buckets[id]; !ok {
		return fmt.Errorf("mindex: replace of unknown bucket %d", id)
	}
	out := make([]Entry, len(entries))
	copy(out, entries)
	s.buckets[id] = out
	return nil
}

// Free implements BucketStore.
func (s *MemStore) Free(id BucketID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.buckets[id]; !ok {
		return fmt.Errorf("mindex: free of unknown bucket %d", id)
	}
	delete(s.buckets, id)
	return nil
}

// Close implements BucketStore.
func (s *MemStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.buckets = nil
	return nil
}

// DefaultDiskCacheBytes is the DiskStore entry-cache budget applied when
// Config.DiskCacheBytes is 0.
const DefaultDiskCacheBytes = 32 << 20

// cachedBucketOverhead approximates the per-bucket bookkeeping cost charged
// against the cache budget on top of the entries' encoded size (slice
// headers, map entry, LRU element).
const cachedBucketOverhead = 128

// DiskStore keeps each bucket as an append-only file of encoded entries in
// a directory, with two bounded caches in front of the file system:
//
//   - a cache of open append handles (bufio.Writer over an O_APPEND file),
//     so bulk loading does not pay an open/close syscall pair per insert;
//   - a byte-budget LRU cache of decoded buckets, read-through on Load and
//     View and invalidated by Append/Replace/Free, so a repeated-query
//     workload against a static-or-slowly-churning index stops re-reading
//     and re-decoding the same bucket files (the dominant cost of the
//     paper's Tables 5–9 workload shape on disk storage).
type DiskStore struct {
	mu     sync.Mutex
	dir    string
	next   BucketID
	counts map[BucketID]int
	// virgin tracks allocated buckets whose file does not exist yet: Create
	// only reserves the ID and the count, and the file materializes on the
	// first write (an open/close syscall pair per bucket saved — the
	// dominant cost of a bulk build's allocation replay). A virgin bucket
	// reads as empty, frees without touching the file system, and loses its
	// virginity on the first Append/Replace.
	virgin map[BucketID]struct{}
	// eras counts content-destroying rewrites (Replace) per bucket. Bucket
	// IDs are never reused, so a (bucket, era) pair names one content
	// lineage that only ever grows by appends; ViewVersioned hands the era
	// out with the view so snapshot readers can detect a replacement that
	// happened after their tree version was published (Index.leafView).
	eras   map[BucketID]uint64
	closed bool

	// Append-handle cache. handleLRU is ordered least → most recently
	// used; each element's Value is the BucketID, and the handle keeps a
	// pointer to its element so a touch is O(1) instead of the former
	// linear scan over a slice.
	open      map[BucketID]*appendHandle
	handleLRU *list.List
	maxFDs    int

	// Decoded-bucket cache, same LRU discipline with a byte budget.
	cache       map[BucketID]*cachedBucket
	cacheLRU    *list.List
	cacheBytes  int
	cacheBudget int
	hits        uint64
	misses      uint64

	// scratch is the entry-encoding buffer reused across Append/Replace so
	// writes stop allocating one encoded blob per entry.
	scratch []byte
	// wfree recycles bufio.Writers between append handles: a bulk build
	// opens and retires hundreds of handles, and re-allocating each 16 KiB
	// buffer is pure GC pressure.
	wfree []*bufio.Writer
}

type appendHandle struct {
	w *bufio.Writer
	f *os.File
	// dirty marks buffered bytes not yet flushed to the OS. A Load/View
	// only needs a Flush (not a close-and-reopen) to observe them, and a
	// clean handle needs nothing at all.
	dirty bool
	elem  *list.Element
}

type cachedBucket struct {
	entries []Entry
	bytes   int
	elem    *list.Element
}

// NewDiskStore creates a bucket store rooted at dir (created if missing)
// with the default entry-cache budget.
func NewDiskStore(dir string) (*DiskStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("mindex: creating bucket directory: %w", err)
	}
	return &DiskStore{
		dir:         dir,
		counts:      make(map[BucketID]int),
		virgin:      make(map[BucketID]struct{}),
		eras:        make(map[BucketID]uint64),
		open:        make(map[BucketID]*appendHandle),
		handleLRU:   list.New(),
		cache:       make(map[BucketID]*cachedBucket),
		cacheLRU:    list.New(),
		cacheBudget: DefaultDiskCacheBytes,
		maxFDs:      128,
	}, nil
}

// ReopenDiskStore reattaches to an existing bucket directory after a
// restart, using the per-bucket entry counts and allocation cursor recorded
// in an index snapshot. Every non-empty bucket's file must exist; an empty
// bucket may legitimately have none (Create is lazy — the file materializes
// on the first write), in which case it reattaches as virgin.
func ReopenDiskStore(dir string, counts map[BucketID]int, next BucketID) (*DiskStore, error) {
	s, err := NewDiskStore(dir)
	if err != nil {
		return nil, err
	}
	for id := range counts {
		if id > next {
			s.Close()
			return nil, fmt.Errorf("mindex: bucket %d beyond allocation cursor %d", id, next)
		}
		if _, err := os.Stat(s.path(id)); err != nil {
			if !(os.IsNotExist(err) && counts[id] == 0) {
				s.Close()
				return nil, fmt.Errorf("mindex: reattaching bucket %d: %w", id, err)
			}
			s.virgin[id] = struct{}{}
		}
		s.counts[id] = counts[id]
	}
	s.next = next
	return s, nil
}

// SetCacheBudget bounds the decoded-bucket cache: n > 0 sets the budget in
// bytes, n == 0 restores the default, n < 0 disables the cache entirely.
// Shrinking evicts immediately.
func (s *DiskStore) SetCacheBudget(n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch {
	case n == 0:
		s.cacheBudget = DefaultDiskCacheBytes
	case n < 0:
		s.cacheBudget = 0
	default:
		s.cacheBudget = n
	}
	for s.cacheBytes > s.cacheBudget && s.cacheLRU.Len() > 0 {
		s.evictOneLocked()
	}
}

// CacheStats reports the decoded-bucket cache counters: read-through hits
// and misses since creation, and the bytes currently charged against the
// budget. Cache-disabled stores report every read as a miss.
func (s *DiskStore) CacheStats() (hits, misses uint64, bytes int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.hits, s.misses, s.cacheBytes
}

// Sync flushes all buffered appends to disk.
func (s *DiskStore) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for id := range s.open {
		if err := s.closeHandleLocked(id); err != nil {
			return err
		}
	}
	return nil
}

// NextID returns the bucket allocation cursor (for snapshots).
func (s *DiskStore) NextID() BucketID {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.next
}

func (s *DiskStore) path(id BucketID) string {
	return filepath.Join(s.dir, fmt.Sprintf("bucket-%09d.bin", id))
}

// Create implements BucketStore. Allocation is lazy: no file is created
// until the bucket's first write, so a build that allocates hundreds of
// buckets pays no per-bucket syscalls up front.
func (s *DiskStore) Create() (BucketID, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, errors.New("mindex: disk store closed")
	}
	s.next++
	id := s.next
	s.counts[id] = 0
	s.virgin[id] = struct{}{}
	return id, nil
}

// createGhost burns one bucket ID without creating a bucket file — the
// bulk builder's allocation replay for buckets the incremental insert path
// would have created and later freed (see bulk.go).
func (s *DiskStore) createGhost() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errors.New("mindex: disk store closed")
	}
	s.next++
	return nil
}

// appendBatch appends a batch of entries under one lock acquisition and one
// buffered write sequence. All-or-nothing: on a write failure the bucket
// file is truncated back to its pre-batch length and the count stays
// untouched, so a failed batch leaves the bucket exactly as it was.
func (s *DiskStore) appendBatch(id BucketID, entries []Entry) error {
	return s.appendSeq(id, len(entries), func(i int) *Entry { return &entries[i] })
}

// appendIndexed encodes arena[idx[0]], arena[idx[1]], ... straight into the
// bucket writer — no contiguous batch materialization on the caller's side.
func (s *DiskStore) appendIndexed(id BucketID, arena []Entry, idx []int32) error {
	return s.appendSeq(id, len(idx), func(i int) *Entry { return &arena[idx[i]] })
}

func (s *DiskStore) appendSeq(id BucketID, n int, at func(int) *Entry) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errors.New("mindex: disk store closed")
	}
	if _, ok := s.counts[id]; !ok {
		return fmt.Errorf("mindex: append to unknown bucket %d", id)
	}
	_, isVirgin := s.virgin[id]
	h, err := s.writer(id)
	if err != nil {
		return err
	}
	// The rollback point is the file length before this batch. A virgin
	// bucket's file was just created empty, so the Stat (and the flush of
	// buffered earlier appends it would have to see) is skipped.
	var base int64
	if !isVirgin {
		// Earlier appends may still sit in the bufio buffer; flush them so
		// the file length below is the true rollback point for this batch.
		if h.dirty {
			if err := h.w.Flush(); err != nil {
				return err
			}
			h.dirty = false
		}
		fi, err := h.f.Stat()
		if err != nil {
			return err
		}
		base = fi.Size()
	}
	for i := 0; i < n; i++ {
		s.scratch = AppendEntry(s.scratch[:0], *at(i))
		if _, err := h.w.Write(s.scratch); err != nil {
			s.rollbackAppendLocked(id, base)
			return err
		}
	}
	if err := h.w.Flush(); err != nil {
		s.rollbackAppendLocked(id, base)
		return err
	}
	s.counts[id] += n
	s.dropCacheLocked(id)
	return nil
}

// rollbackAppendLocked undoes a failed appendBatch: the handle is retired
// without flushing (its buffered bytes are part of the failed batch) and the
// file cut back to the pre-batch length.
func (s *DiskStore) rollbackAppendLocked(id BucketID, base int64) {
	if h, ok := s.open[id]; ok {
		h.f.Close()
		s.handleLRU.Remove(h.elem)
		delete(s.open, id)
	}
	os.Truncate(s.path(id), base)
}

// writer returns a buffered append handle for the bucket, evicting the
// least recently used handle when the cache is full.
func (s *DiskStore) writer(id BucketID) (*appendHandle, error) {
	if h, ok := s.open[id]; ok {
		s.handleLRU.MoveToBack(h.elem)
		return h, nil
	}
	if len(s.open) >= s.maxFDs {
		victim := s.handleLRU.Front().Value.(BucketID)
		if err := s.closeHandleLocked(victim); err != nil {
			return nil, err
		}
	}
	f, err := os.OpenFile(s.path(id), os.O_WRONLY|os.O_APPEND|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	delete(s.virgin, id)
	var w *bufio.Writer
	if n := len(s.wfree); n > 0 {
		w = s.wfree[n-1]
		s.wfree = s.wfree[:n-1]
		w.Reset(f)
	} else {
		w = bufio.NewWriterSize(f, 1<<14)
	}
	h := &appendHandle{w: w, f: f}
	h.elem = s.handleLRU.PushBack(id)
	s.open[id] = h
	return h, nil
}

func (s *DiskStore) closeHandleLocked(id BucketID) error {
	h, ok := s.open[id]
	if !ok {
		return nil
	}
	flushErr := h.w.Flush()
	closeErr := h.f.Close()
	s.handleLRU.Remove(h.elem)
	delete(s.open, id)
	if len(s.wfree) < 16 {
		h.w.Reset(nil)
		s.wfree = append(s.wfree, h.w)
	}
	if flushErr != nil {
		return flushErr
	}
	return closeErr
}

// flushHandleLocked makes buffered appends visible to readers of the bucket
// file without retiring the handle, so the next Append reuses it instead of
// paying an open syscall. A clean handle (or no handle) is a no-op.
func (s *DiskStore) flushHandleLocked(id BucketID) error {
	h, ok := s.open[id]
	if !ok || !h.dirty {
		return nil
	}
	if err := h.w.Flush(); err != nil {
		return err
	}
	h.dirty = false
	return nil
}

// Append implements BucketStore.
func (s *DiskStore) Append(id BucketID, e Entry) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errors.New("mindex: disk store closed")
	}
	if _, ok := s.counts[id]; !ok {
		return fmt.Errorf("mindex: append to unknown bucket %d", id)
	}
	h, err := s.writer(id)
	if err != nil {
		return err
	}
	s.scratch = AppendEntry(s.scratch[:0], e)
	if _, err := h.w.Write(s.scratch); err != nil {
		return err
	}
	h.dirty = true
	s.counts[id]++
	s.dropCacheLocked(id)
	return nil
}

// Load implements BucketStore (read-through: a hit copies out of the cache,
// a miss reads and decodes the file and caches the result).
func (s *DiskStore) Load(id BucketID) ([]Entry, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	entries, err := s.readLocked(id)
	if err != nil {
		return nil, err
	}
	return slices.Clone(entries), nil
}

// View implements BucketStore (read-through, zero-copy: the returned slice
// is the cached decode itself and must not be modified).
func (s *DiskStore) View(id BucketID) ([]Entry, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.readLocked(id)
}

// ViewVersioned is View plus the bucket's content era, read atomically with
// the view under the store mutex. Snapshot readers compare the era against
// the one recorded in their node version: a match proves the first n entries
// of the view are exactly that version's content (appends only extend).
func (s *DiskStore) ViewVersioned(id BucketID) ([]Entry, uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	entries, err := s.readLocked(id)
	if err != nil {
		return nil, 0, err
	}
	return entries, s.eras[id], nil
}

// readLocked returns the bucket's decoded entries, serving from the cache
// when possible. The returned slice is shared with the cache — callers copy
// if they need ownership.
func (s *DiskStore) readLocked(id BucketID) ([]Entry, error) {
	if s.closed {
		return nil, errors.New("mindex: disk store closed")
	}
	count, ok := s.counts[id]
	if !ok {
		return nil, fmt.Errorf("mindex: load of unknown bucket %d", id)
	}
	if _, ok := s.virgin[id]; ok {
		return nil, nil // allocated, never written: empty, no file yet
	}
	if cb, ok := s.cache[id]; ok {
		s.hits++
		s.cacheLRU.MoveToBack(cb.elem)
		return cb.entries, nil
	}
	s.misses++
	// Any buffered appends must be visible before reading the file back.
	if err := s.flushHandleLocked(id); err != nil {
		return nil, err
	}
	raw, err := os.ReadFile(s.path(id))
	if err != nil {
		return nil, err
	}
	entries := make([]Entry, 0, count)
	for len(raw) > 0 {
		e, rest, err := DecodeEntry(raw)
		if err != nil {
			return nil, fmt.Errorf("mindex: bucket %d corrupted: %w", id, err)
		}
		entries = append(entries, e)
		raw = rest
	}
	if len(entries) != count {
		return nil, fmt.Errorf("mindex: bucket %d holds %d entries, expected %d", id, len(entries), count)
	}
	s.insertCacheLocked(id, entries, true)
	return entries, nil
}

// insertCacheLocked admits a decoded bucket to the cache, evicting least
// recently used buckets until the byte budget holds. Buckets larger than
// the whole budget are served but never cached. owned marks a slice the
// store may keep as-is; a caller-owned slice is cloned, and only once the
// bucket has actually been admitted.
func (s *DiskStore) insertCacheLocked(id BucketID, entries []Entry, owned bool) {
	if s.cacheBudget <= 0 {
		return
	}
	size := cachedBucketOverhead
	for i := range entries {
		size += EncodedEntrySize(entries[i])
	}
	if size > s.cacheBudget {
		return
	}
	if !owned {
		entries = slices.Clone(entries)
	}
	for s.cacheBytes+size > s.cacheBudget && s.cacheLRU.Len() > 0 {
		s.evictOneLocked()
	}
	cb := &cachedBucket{entries: entries, bytes: size}
	cb.elem = s.cacheLRU.PushBack(id)
	s.cache[id] = cb
	s.cacheBytes += size
}

func (s *DiskStore) evictOneLocked() {
	victim := s.cacheLRU.Front().Value.(BucketID)
	s.dropCacheLocked(victim)
}

func (s *DiskStore) dropCacheLocked(id BucketID) {
	cb, ok := s.cache[id]
	if !ok {
		return
	}
	s.cacheLRU.Remove(cb.elem)
	s.cacheBytes -= cb.bytes
	delete(s.cache, id)
}

// Replace implements BucketStore. The bucket file is rewritten through a
// temporary file and renamed into place, so a crash mid-rewrite leaves the
// previous contents intact. The cache is refreshed write-through: the next
// read of a just-compacted bucket should not pay a disk round trip.
func (s *DiskStore) Replace(id BucketID, entries []Entry) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errors.New("mindex: disk store closed")
	}
	if _, ok := s.counts[id]; !ok {
		return fmt.Errorf("mindex: replace of unknown bucket %d", id)
	}
	// Retire the append handle entirely; its descriptor points at the old
	// inode the rename below replaces.
	if err := s.closeHandleLocked(id); err != nil {
		return err
	}
	s.dropCacheLocked(id)
	tmp := s.path(id) + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	w := bufio.NewWriterSize(f, 1<<14)
	for i := range entries {
		s.scratch = AppendEntry(s.scratch[:0], entries[i])
		if _, err := w.Write(s.scratch); err != nil {
			f.Close()
			os.Remove(tmp)
			return err
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	// Reach stable storage before the rename replaces the old contents —
	// a power cut must never swap a good bucket for a truncated one.
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, s.path(id)); err != nil {
		os.Remove(tmp)
		return err
	}
	delete(s.virgin, id)
	// Make the rename itself durable: a purge that later stops being
	// reflected in the tombstone set (snapshots persist after this) must
	// not be undone by a power cut resurrecting the old bucket contents.
	dir, err := os.Open(s.dir)
	if err != nil {
		return err
	}
	syncErr := dir.Sync()
	dir.Close()
	if syncErr != nil {
		return syncErr
	}
	s.counts[id] = len(entries)
	s.eras[id]++
	s.insertCacheLocked(id, entries, false)
	return nil
}

// Free implements BucketStore.
func (s *DiskStore) Free(id BucketID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errors.New("mindex: disk store closed")
	}
	if _, ok := s.counts[id]; !ok {
		return fmt.Errorf("mindex: free of unknown bucket %d", id)
	}
	if err := s.closeHandleLocked(id); err != nil {
		return err
	}
	s.dropCacheLocked(id)
	delete(s.counts, id)
	delete(s.eras, id)
	if _, ok := s.virgin[id]; ok {
		delete(s.virgin, id)
		return nil // never materialized; nothing on disk to remove
	}
	return os.Remove(s.path(id))
}

// Close implements BucketStore.
func (s *DiskStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	var firstErr error
	for id := range s.open {
		if err := s.closeHandleLocked(id); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	s.cache = nil
	s.cacheLRU = list.New()
	s.cacheBytes = 0
	return firstErr
}
