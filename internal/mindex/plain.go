package mindex

import (
	"container/heap"
	"fmt"
	"math"
	"sort"

	"simcloud/internal/metric"
	"simcloud/internal/pivot"
)

// Result is one answer of a refined similarity query.
type Result struct {
	ID   uint64
	Dist float64
	Vec  metric.Vector
}

// sortResults orders results by distance, ties by ID, and trims to k (k <= 0
// keeps everything).
func sortResults(rs []Result, k int) []Result {
	sort.Slice(rs, func(i, j int) bool {
		if rs[i].Dist != rs[j].Dist {
			return rs[i].Dist < rs[j].Dist
		}
		return rs[i].ID < rs[j].ID
	})
	if k > 0 && len(rs) > k {
		rs = rs[:k]
	}
	return rs
}

// Plain couples an M-Index with the pivot set and raw vectors, forming the
// basic non-encrypted M-Index of the paper's baseline measurements: the
// server holds everything and performs the entire search, returning only
// final answers.
type Plain struct {
	Idx    *Index
	Pivots *pivot.Set
}

// NewPlain builds an empty plain M-Index over the given pivots.
func NewPlain(cfg Config, pivots *pivot.Set) (*Plain, error) {
	if pivots.N() != cfg.NumPivots {
		return nil, fmt.Errorf("mindex: pivot set has %d pivots, config says %d", pivots.N(), cfg.NumPivots)
	}
	idx, err := New(cfg)
	if err != nil {
		return nil, err
	}
	return &Plain{Idx: idx, Pivots: pivots}, nil
}

// Insert computes the object's pivot distances and permutation and indexes
// the raw vector.
func (p *Plain) Insert(o metric.Object) error {
	dists := p.Pivots.Distances(o.Vec)
	return p.Idx.Insert(Entry{
		ID:    o.ID,
		Perm:  pivot.Permutation(dists),
		Dists: dists,
		Vec:   o.Vec.Clone(),
	})
}

// InsertBulk indexes a batch of objects.
func (p *Plain) InsertBulk(objs []metric.Object) error {
	for i := range objs {
		if err := p.Insert(objs[i]); err != nil {
			return fmt.Errorf("mindex: plain bulk insert object %d: %w", i, err)
		}
	}
	return nil
}

// Range evaluates the precise range query R(q, r) entirely on the server:
// candidate collection via RangeByDists followed by refinement with real
// distances.
func (p *Plain) Range(q metric.Vector, r float64) ([]Result, error) {
	qDists := p.Pivots.Distances(q)
	cands, err := p.Idx.RangeByDists(qDists, r)
	if err != nil {
		return nil, err
	}
	var out []Result
	for _, e := range cands {
		d := p.Pivots.Dist.Dist(q, e.Vec)
		if d <= r {
			out = append(out, Result{ID: e.ID, Dist: d, Vec: e.Vec})
		}
	}
	return sortResults(out, 0), nil
}

// knnHeap is a bounded max-heap of the k best results found so far.
type knnHeap []Result

func (h knnHeap) Len() int           { return len(h) }
func (h knnHeap) Less(i, j int) bool { return h[i].Dist > h[j].Dist } // max-heap
func (h knnHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *knnHeap) Push(x any)        { *h = append(*h, x.(Result)) }
func (h *knnHeap) Pop() any {
	old := *h
	n := len(old)
	item := old[n-1]
	*h = old[:n-1]
	return item
}

// offer inserts r if it improves the k best; returns the current pruning
// radius (k-th best distance, or +Inf while fewer than k results are known).
func (h *knnHeap) offer(r Result, k int) float64 {
	if h.Len() < k {
		heap.Push(h, r)
	} else if r.Dist < (*h)[0].Dist {
		(*h)[0] = r
		heap.Fix(h, 0)
	}
	if h.Len() < k {
		return math.Inf(1)
	}
	return (*h)[0].Dist
}

// KNN evaluates the precise k-NN query with an optimal best-first traversal
// of the cell tree: nodes are visited in order of their metric lower bound
// and the traversal stops as soon as no remaining cell can improve the k-th
// best distance. This is the library's exact search; KNNApproxRange mirrors
// the two-phase strategy the paper describes.
func (p *Plain) KNN(q metric.Vector, k int) ([]Result, error) {
	if k <= 0 {
		return nil, fmt.Errorf("mindex: k must be positive, got %d", k)
	}
	ix := p.Idx
	qDists := p.Pivots.Distances(q)
	st := ix.state.Load()

	best := &knnHeap{}
	radius := math.Inf(1)
	pq := ix.getQueue(st.root, false) // promise reused as lower bound
	defer ix.putQueue(pq)
	for pq.Len() > 0 {
		item := pq.pop()
		if item.promise > radius {
			break // every remaining cell is at least this far
		}
		if item.n.isLeaf() {
			if item.n.live() == 0 {
				continue
			}
			entries, err := ix.leafView(item.n)
			if err != nil {
				return nil, err
			}
			for _, e := range entries {
				if _, gone := st.tombstones[e.ID]; gone {
					continue
				}
				if e.Dists != nil && pivot.LowerBound(qDists, e.Dists) > radius {
					continue
				}
				d := p.Pivots.Dist.Dist(q, e.Vec)
				if d <= radius || best.Len() < k {
					radius = best.offer(Result{ID: e.ID, Dist: d, Vec: e.Vec}, k)
				}
			}
			continue
		}
		for i := range item.n.kids {
			kid := item.n.kids[i]
			lb := ix.cellLowerBound(kid.n, kid.key, item.n, qDists)
			if lb < item.promise {
				lb = item.promise // bounds accumulate along the path
			}
			if lb <= radius {
				pq.push(rankedNode{n: kid.n, promise: lb})
			}
		}
	}
	return sortResults(*best, k), nil
}

// KNNApproxRange evaluates the precise k-NN query the way Section 4.2
// describes: run an approximate k-NN to obtain an upper bound ρk on the k-th
// nearest-neighbor distance, then execute the precise range query R(q, ρk)
// and keep the k closest answers. candSize controls the first phase (it only
// affects cost, not correctness, as long as at least k candidates exist).
func (p *Plain) KNNApproxRange(q metric.Vector, k, candSize int) ([]Result, error) {
	if k <= 0 {
		return nil, fmt.Errorf("mindex: k must be positive, got %d", k)
	}
	if candSize < k {
		candSize = k
	}
	approx, err := p.ApproxKNN(q, k, candSize)
	if err != nil {
		return nil, err
	}
	if len(approx) < k {
		// Fewer than k objects indexed in promising cells; fall back to the
		// whole data set radius.
		return p.KNN(q, k)
	}
	rho := approx[len(approx)-1].Dist
	within, err := p.Range(q, rho)
	if err != nil {
		return nil, err
	}
	return sortResults(within, k), nil
}

// ApproxKNN evaluates the approximate k-NN query entirely on the server:
// candidate collection via the promise-ranked cell traversal, then
// refinement of the candidate set with real distances.
func (p *Plain) ApproxKNN(q metric.Vector, k, candSize int) ([]Result, error) {
	if k <= 0 {
		return nil, fmt.Errorf("mindex: k must be positive, got %d", k)
	}
	qDists := p.Pivots.Distances(q)
	aq := ApproxQuery{Dists: qDists, Ranks: pivot.Ranks(pivot.Permutation(qDists))}
	cands, err := p.Idx.ApproxCandidates(aq, candSize)
	if err != nil {
		return nil, err
	}
	out := make([]Result, 0, len(cands))
	for _, e := range cands {
		out = append(out, Result{ID: e.ID, Dist: p.Pivots.Dist.Dist(q, e.Vec), Vec: e.Vec})
	}
	return sortResults(out, k), nil
}

// FirstCellKNN evaluates the restricted 1-cell approximate k-NN fully on
// the server: the single most promising Voronoi cell is the candidate set
// (the paper's Section 5.4 comparison), refined with real distances — the
// non-encrypted counterpart of the encrypted first-cell query.
func (p *Plain) FirstCellKNN(q metric.Vector, k int) ([]Result, error) {
	if k <= 0 {
		return nil, fmt.Errorf("mindex: k must be positive, got %d", k)
	}
	qDists := p.Pivots.Distances(q)
	aq := ApproxQuery{Dists: qDists, Ranks: pivot.Ranks(pivot.Permutation(qDists))}
	cands, err := p.Idx.FirstCellCandidates(aq)
	if err != nil {
		return nil, err
	}
	out := make([]Result, 0, len(cands))
	for _, e := range cands {
		out = append(out, Result{ID: e.ID, Dist: p.Pivots.Dist.Dist(q, e.Vec), Vec: e.Vec})
	}
	return sortResults(out, k), nil
}

// Delete tombstones the objects with the given IDs (the plain server holds
// the location map, so a bare ID suffices); unknown or already-deleted IDs
// are skipped and the count actually deleted is returned.
func (p *Plain) Delete(ids []uint64) (int, error) {
	return p.Idx.Delete(ids)
}

// AllEntries returns every live stored entry (used by the trivial
// download-all baseline and diagnostics). The order is unspecified.
func (ix *Index) AllEntries() ([]Entry, error) {
	st := ix.state.Load()
	out := make([]Entry, 0, st.size)
	var walk func(n *node) error
	walk = func(n *node) error {
		if n.isLeaf() {
			if n.count == 0 {
				return nil
			}
			entries, err := ix.leafView(n)
			if err != nil {
				return err
			}
			out = append(out, st.liveOnly(entries)...)
			return nil
		}
		for i := range n.kids {
			if err := walk(n.kids[i].n); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(st.root); err != nil {
		return nil, err
	}
	return out, nil
}

// BruteForceKNN scans all entries — the reference answer generator used by
// recall measurements and tests. It requires raw vectors (plain deployment).
func (p *Plain) BruteForceKNN(q metric.Vector, k int) ([]Result, error) {
	ix := p.Idx
	st := ix.state.Load()
	var out []Result
	var walk func(n *node) error
	walk = func(n *node) error {
		if n.isLeaf() {
			if n.count == 0 {
				return nil
			}
			entries, err := ix.leafView(n)
			if err != nil {
				return err
			}
			for _, e := range entries {
				if _, gone := st.tombstones[e.ID]; gone {
					continue
				}
				out = append(out, Result{ID: e.ID, Dist: p.Pivots.Dist.Dist(q, e.Vec), Vec: e.Vec})
			}
			return nil
		}
		for i := range n.kids {
			if err := walk(n.kids[i].n); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(st.root); err != nil {
		return nil, err
	}
	return sortResults(out, k), nil
}
