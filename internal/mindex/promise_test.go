package mindex

import (
	"math"
	"math/rand/v2"
	"testing"

	"simcloud/internal/pivot"
)

// The approximate traversal computes cell promises incrementally (one
// weighted term per tree level) and, under Config.QuantizedPromise, as
// scaled integers. Both paths claim bit-for-bit identity with the
// from-scratch pivot.FootrulePromise/DistSumPromise reference — these tests
// enforce the claim on the emitted candidate streams.

// intDistEntries builds entries whose pivot distances lie on the integer
// grid [0,200) — the regime where the distance-sum fixed-point path
// qualifies — with permutations derived from the distances like a real
// ingest would.
func intDistEntries(rng *rand.Rand, n, numPivots int) []Entry {
	entries := make([]Entry, 0, n)
	for i := range n {
		dists := make([]float64, numPivots)
		for j := range dists {
			dists[j] = float64(rng.IntN(200))
		}
		entries = append(entries, Entry{
			ID:    uint64(i + 1),
			Perm:  pivot.Permutation(dists),
			Dists: dists,
		})
	}
	return entries
}

func promiseTestQueries(rng *rand.Rand, n, numPivots int, integral bool) []ApproxQuery {
	queries := make([]ApproxQuery, 0, n)
	for range n {
		dists := make([]float64, numPivots)
		for j := range dists {
			if integral {
				dists[j] = float64(rng.IntN(200))
			} else {
				dists[j] = rng.Float64() * 200
			}
		}
		queries = append(queries, ApproxQuery{
			Ranks: pivot.Ranks(pivot.Permutation(dists)),
			Dists: dists,
		})
	}
	return queries
}

// TestPromiseIncrementalMatchesReference checks that every promise the
// traversal emits equals the from-scratch recomputation over the emitted
// cell's prefix, bit for bit, for both ranking strategies.
func TestPromiseIncrementalMatchesReference(t *testing.T) {
	for _, ranking := range []RankStrategy{RankFootrule, RankDistSum} {
		t.Run(ranking.String(), func(t *testing.T) {
			rng := rand.New(rand.NewPCG(42, uint64(ranking)))
			ix, err := New(Config{
				NumPivots: 12, MaxLevel: 5, BucketCapacity: 8,
				Storage: StorageMemory, Ranking: ranking,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer ix.Close()
			for _, e := range intDistEntries(rng, 1200, 12) {
				if err := ix.Insert(e); err != nil {
					t.Fatal(err)
				}
			}
			weights := pivot.FootruleWeights(5)
			for _, q := range promiseTestQueries(rng, 20, 12, false) {
				cands, err := ix.ApproxCandidatesRanked(q, 400)
				if err != nil {
					t.Fatal(err)
				}
				if len(cands) == 0 {
					t.Fatal("no candidates")
				}
				for _, c := range cands {
					var want float64
					if ranking == RankDistSum {
						want = pivot.DistSumPromise(q.Dists, c.Prefix, weights)
					} else {
						want = pivot.FootrulePromise(q.Ranks, c.Prefix, weights)
					}
					if math.Float64bits(c.Promise) != math.Float64bits(want) {
						t.Fatalf("prefix %v: promise %x, reference %x", c.Prefix, c.Promise, want)
					}
				}
			}
		})
	}
}

// TestQuantizedPromiseEquivalence runs the same data and queries through a
// float-promise index and a quantized-promise index and requires the full
// ranked candidate streams — IDs, order, promises, prefixes — to be
// identical. Integral distance-sum queries take the fixed-point path;
// fractional ones exercise the per-query fallback, which must also be
// invisible in the results.
func TestQuantizedPromiseEquivalence(t *testing.T) {
	for _, ranking := range []RankStrategy{RankFootrule, RankDistSum} {
		for _, integral := range []bool{true, false} {
			name := ranking.String()
			if integral {
				name += "/integral"
			} else {
				name += "/fractional"
			}
			t.Run(name, func(t *testing.T) {
				rng := rand.New(rand.NewPCG(7, uint64(ranking)))
				entries := intDistEntries(rng, 1500, 10)
				cfg := Config{
					NumPivots: 10, MaxLevel: 4, BucketCapacity: 10,
					Storage: StorageMemory, Ranking: ranking,
				}
				base, err := New(cfg)
				if err != nil {
					t.Fatal(err)
				}
				defer base.Close()
				qcfg := cfg
				qcfg.QuantizedPromise = true
				quant, err := New(qcfg)
				if err != nil {
					t.Fatal(err)
				}
				defer quant.Close()
				if err := base.InsertBulk(entries); err != nil {
					t.Fatal(err)
				}
				if err := quant.InsertBulk(entries); err != nil {
					t.Fatal(err)
				}
				for qi, q := range promiseTestQueries(rng, 25, 10, integral) {
					want, err := base.ApproxCandidatesRanked(q, 500)
					if err != nil {
						t.Fatal(err)
					}
					got, err := quant.ApproxCandidatesRanked(q, 500)
					if err != nil {
						t.Fatal(err)
					}
					if len(got) != len(want) {
						t.Fatalf("query %d: %d candidates vs %d", qi, len(got), len(want))
					}
					for i := range got {
						if got[i].Entry.ID != want[i].Entry.ID ||
							math.Float64bits(got[i].Promise) != math.Float64bits(want[i].Promise) {
							t.Fatalf("query %d cand %d: got (%d, %x), want (%d, %x)",
								qi, i, got[i].Entry.ID, got[i].Promise, want[i].Entry.ID, want[i].Promise)
						}
					}
					we, wp, wpre, err := base.FirstCellRanked(q)
					if err != nil {
						t.Fatal(err)
					}
					ge, gp, gpre, err := quant.FirstCellRanked(q)
					if err != nil {
						t.Fatal(err)
					}
					if math.Float64bits(gp) != math.Float64bits(wp) || len(ge) != len(we) {
						t.Fatalf("query %d first cell: got (%d entries, %x, %v), want (%d entries, %x, %v)",
							qi, len(ge), gp, gpre, len(we), wp, wpre)
					}
				}
			})
		}
	}
}
