package mindex

import (
	"container/heap"
	"fmt"
	"math"

	"simcloud/internal/pivot"
)

// RangeByDists evaluates the server side of a precise range query
// (Algorithm 3 of the paper): given only the query's pivot-distance vector
// and the radius, it prunes the Voronoi cell tree with metric constraints
// and pivot-filters the surviving entries, returning the candidate set.
//
// Every returned entry is a possible member of R(q, r); every indexed object
// within the radius is guaranteed to be returned (no false dismissals — the
// applied bounds are true metric lower bounds). The caller refines by
// computing real distances: the server in the plain deployment, the
// authorized client in the encrypted one.
func (ix *Index) RangeByDists(qDists []float64, r float64) ([]Entry, error) {
	if len(qDists) != ix.cfg.NumPivots {
		return nil, fmt.Errorf("mindex: query has %d pivot distances, want %d", len(qDists), ix.cfg.NumPivots)
	}
	if r < 0 {
		return nil, fmt.Errorf("mindex: negative query radius %g", r)
	}
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	var out []Entry
	var visit func(n *node) error
	visit = func(n *node) error {
		if n.isLeaf() {
			if n.live() == 0 {
				return nil
			}
			entries, err := ix.store.Load(n.bucket)
			if err != nil {
				return err
			}
			for _, e := range entries {
				if _, gone := ix.tombstones[e.ID]; gone {
					continue
				}
				// Pivot filtering (Algorithm 3, lines 5–7): discard when the
				// triangle-inequality lower bound exceeds the radius.
				if e.Dists != nil && pivot.LowerBound(qDists, e.Dists) > r {
					continue
				}
				out = append(out, e)
			}
			return nil
		}
		// Children are visited in ascending key order, so the candidate
		// list is fully deterministic (map iteration order must not leak
		// into results — it would break response reproducibility and the
		// compaction equivalence guarantee).
		for _, key := range sortedChildKeys(n) {
			child := n.children[key]
			if ix.pruneCell(child, key, n, qDists, r) {
				continue
			}
			if err := visit(child); err != nil {
				return err
			}
		}
		return nil
	}
	if err := visit(ix.root); err != nil {
		return nil, err
	}
	return out, nil
}

// pruneCell decides whether the child cell (reached from parent via
// permutation element key) can be excluded from a range query of radius r.
// Two true lower bounds are applied:
//
//   - Generalized-hyperplane: every object o in the cell has pivot p_key
//     among its nearest pivots outside the parent prefix, so
//     d(q,o) ≥ (d(q,p_key) − min_{m∉prefix} d(q,p_m)) / 2.
//   - Ball (range-pivot): subtree objects satisfy
//     rmin ≤ d(o,p_key) ≤ rmax, so d(q,o) ≥ d(q,p_key) − rmax and
//     d(q,o) ≥ rmin − d(q,p_key).
func (ix *Index) pruneCell(child *node, key int32, parent *node, qDists []float64, r float64) bool {
	return ix.cellLowerBound(child, key, parent, qDists) > r
}

// cellLowerBound returns a lower bound on the distance from the query to any
// object in the cell, combining the hyperplane and ball constraints.
func (ix *Index) cellLowerBound(child *node, key int32, parent *node, qDists []float64) float64 {
	dq := qDists[key]
	lb := 0.0
	// Hyperplane bound against the closest other pivot not already used on
	// the path (including key's siblings and all deeper pivots).
	minOther := math.Inf(1)
	inPrefix := make(map[int32]bool, len(parent.prefix)+1)
	for _, p := range parent.prefix {
		inPrefix[p] = true
	}
	inPrefix[key] = true
	for m, d := range qDists {
		if inPrefix[int32(m)] {
			continue
		}
		if d < minOther {
			minOther = d
		}
	}
	if !math.IsInf(minOther, 1) {
		if hb := (dq - minOther) / 2; hb > lb {
			lb = hb
		}
	}
	if child.boundsValid && child.count > 0 {
		if bb := dq - child.rmax; bb > lb {
			lb = bb
		}
		if bb := child.rmin - dq; bb > lb {
			lb = bb
		}
	}
	return lb
}

// rankedNode is a cell-tree node queued by its promise value during the
// approximate search (lower promise = more promising).
type rankedNode struct {
	n       *node
	promise float64
}

type rankedQueue []rankedNode

func (q rankedQueue) Len() int { return len(q) }

// Less orders by promise, breaking ties by cell prefix so traversal order —
// and therefore every candidate set — is fully deterministic (children are
// discovered in map order, which must not leak into results).
func (q rankedQueue) Less(i, j int) bool {
	if q[i].promise != q[j].promise {
		return q[i].promise < q[j].promise
	}
	return PrefixLess(q[i].n.prefix, q[j].n.prefix)
}

// PrefixLess compares cell prefixes lexicographically, shorter first — the
// deterministic tie-break used wherever cells of equal promise must be
// ordered (the traversal queue here, and the cross-shard candidate merge in
// internal/engine).
func PrefixLess(a, b []int32) bool {
	for k := range min(len(a), len(b)) {
		if a[k] != b[k] {
			return a[k] < b[k]
		}
	}
	return len(a) < len(b)
}
func (q rankedQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *rankedQueue) Push(x any)   { *q = append(*q, x.(rankedNode)) }
func (q *rankedQueue) Pop() any {
	old := *q
	n := len(old)
	item := old[n-1]
	*q = old[:n-1]
	return item
}

// ApproxQuery carries the query-side information for an approximate k-NN
// candidate collection. Exactly the information the client chose to reveal
// must be present: Ranks (derived from the query permutation) for the
// footrule strategy, Dists for the distance-sum strategy.
type ApproxQuery struct {
	Ranks []int32
	Dists []float64
}

// validateApprox checks that the query carries what the configured ranking
// strategy needs.
func (ix *Index) validateApprox(q ApproxQuery) error {
	switch ix.cfg.Ranking {
	case RankFootrule:
		if len(q.Ranks) != ix.cfg.NumPivots {
			return fmt.Errorf("mindex: footrule ranking needs %d pivot ranks, got %d",
				ix.cfg.NumPivots, len(q.Ranks))
		}
	case RankDistSum:
		if len(q.Dists) != ix.cfg.NumPivots {
			return fmt.Errorf("mindex: distsum ranking needs %d pivot distances, got %d",
				ix.cfg.NumPivots, len(q.Dists))
		}
	}
	return nil
}

// approxCollect visits leaf cells in promise order and emits their live
// entries (with the source cell's promise and prefix) until at least
// candSize have been emitted — the traversal shared by ApproxCandidates and
// ApproxCandidatesRanked. The caller holds no lock.
func (ix *Index) approxCollect(q ApproxQuery, candSize int,
	emit func(entries []Entry, promise float64, prefix []int32)) error {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	pq := &rankedQueue{{n: ix.root, promise: 0}}
	heap.Init(pq)
	emitted := 0
	for pq.Len() > 0 && emitted < candSize {
		item := heap.Pop(pq).(rankedNode)
		if item.n.isLeaf() {
			if item.n.live() == 0 {
				continue
			}
			entries, err := ix.store.Load(item.n.bucket)
			if err != nil {
				return err
			}
			entries = ix.liveOnly(entries)
			emit(entries, item.promise, item.n.prefix)
			emitted += len(entries)
			continue
		}
		for _, child := range item.n.children {
			heap.Push(pq, rankedNode{n: child, promise: ix.promise(child, q)})
		}
	}
	return nil
}

// liveOnly filters tombstoned entries out of a freshly loaded bucket
// (in place — Load returns a private copy). With no tombstones pending it
// returns the slice untouched.
func (ix *Index) liveOnly(entries []Entry) []Entry {
	if len(ix.tombstones) == 0 {
		return entries
	}
	out := entries[:0]
	for _, e := range entries {
		if _, gone := ix.tombstones[e.ID]; gone {
			continue
		}
		out = append(out, e)
	}
	return out
}

// ApproxCandidates evaluates the server side of the approximate k-NN query
// (Algorithm 4 of the paper): Voronoi cells are visited in order of their
// promise value and their entries collected until the candidate set reaches
// candSize; the set is then trimmed to exactly candSize. The returned
// candidates are pre-ranked: entries of more promising cells come first, so
// a client may choose to decrypt only a prefix.
func (ix *Index) ApproxCandidates(q ApproxQuery, candSize int) ([]Entry, error) {
	if candSize <= 0 {
		return nil, fmt.Errorf("mindex: candidate size must be positive, got %d", candSize)
	}
	if err := ix.validateApprox(q); err != nil {
		return nil, err
	}
	out := make([]Entry, 0, candSize)
	err := ix.approxCollect(q, candSize, func(entries []Entry, _ float64, _ []int32) {
		out = append(out, entries...)
	})
	if err != nil {
		return nil, err
	}
	if len(out) > candSize {
		out = out[:candSize]
	}
	return out, nil
}

// RankedCandidate is one approximate-search candidate annotated with the
// promise value and prefix of its source cell. The annotations let a
// sharded engine merge per-shard candidate streams into one globally
// promise-ordered list (ties broken by prefix, then shard), reproducing the
// cell-visit discipline of Algorithm 4 across index partitions.
type RankedCandidate struct {
	Entry   Entry
	Promise float64
	Prefix  []int32
}

// ApproxCandidatesRanked is ApproxCandidates with the source-cell promise
// and prefix attached to every candidate. The list is ordered exactly like
// the ApproxCandidates result.
func (ix *Index) ApproxCandidatesRanked(q ApproxQuery, candSize int) ([]RankedCandidate, error) {
	if candSize <= 0 {
		return nil, fmt.Errorf("mindex: candidate size must be positive, got %d", candSize)
	}
	if err := ix.validateApprox(q); err != nil {
		return nil, err
	}
	out := make([]RankedCandidate, 0, candSize)
	err := ix.approxCollect(q, candSize, func(entries []Entry, promise float64, prefix []int32) {
		for _, e := range entries {
			out = append(out, RankedCandidate{Entry: e, Promise: promise, Prefix: prefix})
		}
	})
	if err != nil {
		return nil, err
	}
	if len(out) > candSize {
		out = out[:candSize]
	}
	return out, nil
}

// promise computes the cell-ordering key of Algorithm 4, line 3 ("next
// promising Voronoi cell") under the configured strategy.
func (ix *Index) promise(n *node, q ApproxQuery) float64 {
	switch ix.cfg.Ranking {
	case RankDistSum:
		return pivot.DistSumPromise(q.Dists, n.prefix, ix.weights)
	default:
		return pivot.FootrulePromise(q.Ranks, n.prefix, ix.weights)
	}
}

// FirstCellCandidates returns the entries of the single most promising leaf
// cell — the restricted strategy of the paper's 1-NN comparison experiment
// (Section 5.4), where "the server-side M-Index was limited to access only
// one M-Index Voronoi cell which then forms the candidate set".
func (ix *Index) FirstCellCandidates(q ApproxQuery) ([]Entry, error) {
	entries, _, _, err := ix.FirstCellRanked(q)
	return entries, err
}

// FirstCellRanked returns the entries of the single most promising
// non-empty leaf cell together with the cell's promise value and prefix, so
// a sharded engine can pick the globally most promising first cell among
// the per-shard winners. An empty index yields nil entries.
func (ix *Index) FirstCellRanked(q ApproxQuery) ([]Entry, float64, []int32, error) {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	pq := &rankedQueue{{n: ix.root, promise: 0}}
	heap.Init(pq)
	for pq.Len() > 0 {
		item := heap.Pop(pq).(rankedNode)
		if item.n.isLeaf() {
			if item.n.live() == 0 {
				continue // skip empty cells; the experiment wants a non-empty one
			}
			entries, err := ix.store.Load(item.n.bucket)
			if err != nil {
				return nil, 0, nil, err
			}
			return ix.liveOnly(entries), item.promise, item.n.prefix, nil
		}
		for _, child := range item.n.children {
			heap.Push(pq, rankedNode{n: child, promise: ix.promise(child, q)})
		}
	}
	return nil, 0, nil, nil
}
