package mindex

import (
	"fmt"
	"math"

	"simcloud/internal/pivot"
)

// RangeByDists evaluates the server side of a precise range query
// (Algorithm 3 of the paper): given only the query's pivot-distance vector
// and the radius, it prunes the Voronoi cell tree with metric constraints
// and pivot-filters the surviving entries, returning the candidate set.
//
// Every returned entry is a possible member of R(q, r); every indexed object
// within the radius is guaranteed to be returned (no false dismissals — the
// applied bounds are true metric lower bounds). The caller refines by
// computing real distances: the server in the plain deployment, the
// authorized client in the encrypted one.
func (ix *Index) RangeByDists(qDists []float64, r float64) ([]Entry, error) {
	if len(qDists) != ix.cfg.NumPivots {
		return nil, fmt.Errorf("mindex: query has %d pivot distances, want %d", len(qDists), ix.cfg.NumPivots)
	}
	if r < 0 {
		return nil, fmt.Errorf("mindex: negative query radius %g", r)
	}
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	var out []Entry
	var visit func(n *node) error
	visit = func(n *node) error {
		if n.isLeaf() {
			if n.live() == 0 {
				return nil
			}
			entries, err := ix.store.View(n.bucket)
			if err != nil {
				return err
			}
			for _, e := range entries {
				if _, gone := ix.tombstones[e.ID]; gone {
					continue
				}
				// Pivot filtering (Algorithm 3, lines 5–7): discard when the
				// triangle-inequality lower bound exceeds the radius.
				if e.Dists != nil && pivot.LowerBound(qDists, e.Dists) > r {
					continue
				}
				out = append(out, e)
			}
			return nil
		}
		// Children are visited in ascending key order, so the candidate
		// list is fully deterministic (map iteration order must not leak
		// into results — it would break response reproducibility and the
		// compaction equivalence guarantee).
		for _, key := range sortedChildKeys(n) {
			child := n.children[key]
			if ix.pruneCell(child, key, n, qDists, r) {
				continue
			}
			if err := visit(child); err != nil {
				return err
			}
		}
		return nil
	}
	if err := visit(ix.root); err != nil {
		return nil, err
	}
	return out, nil
}

// pruneCell decides whether the child cell (reached from parent via
// permutation element key) can be excluded from a range query of radius r.
// Two true lower bounds are applied:
//
//   - Generalized-hyperplane: every object o in the cell has pivot p_key
//     among its nearest pivots outside the parent prefix, so
//     d(q,o) ≥ (d(q,p_key) − min_{m∉prefix} d(q,p_m)) / 2.
//   - Ball (range-pivot): subtree objects satisfy
//     rmin ≤ d(o,p_key) ≤ rmax, so d(q,o) ≥ d(q,p_key) − rmax and
//     d(q,o) ≥ rmin − d(q,p_key).
func (ix *Index) pruneCell(child *node, key int32, parent *node, qDists []float64, r float64) bool {
	return ix.cellLowerBound(child, key, parent, qDists) > r
}

// onPath reports whether pivot m lies on the cell path: in the parent's
// prefix or equal to the child's key. Prefixes are at most MaxLevel (≤ the
// pivot count, typically ≤ 8) elements, so a linear scan beats building a
// set — and unlike the map this path used to allocate per pruning decision,
// it allocates nothing.
func onPath(prefix []int32, key, m int32) bool {
	if m == key {
		return true
	}
	for _, p := range prefix {
		if p == m {
			return true
		}
	}
	return false
}

// cellLowerBound returns a lower bound on the distance from the query to any
// object in the cell, combining the hyperplane and ball constraints.
func (ix *Index) cellLowerBound(child *node, key int32, parent *node, qDists []float64) float64 {
	dq := qDists[key]
	lb := 0.0
	// Hyperplane bound against the closest other pivot not already used on
	// the path (including key's siblings and all deeper pivots).
	minOther := math.Inf(1)
	for m, d := range qDists {
		if onPath(parent.prefix, key, int32(m)) {
			continue
		}
		if d < minOther {
			minOther = d
		}
	}
	if !math.IsInf(minOther, 1) {
		if hb := (dq - minOther) / 2; hb > lb {
			lb = hb
		}
	}
	if child.boundsValid && child.count > 0 {
		if bb := dq - child.rmax; bb > lb {
			lb = bb
		}
		if bb := child.rmin - dq; bb > lb {
			lb = bb
		}
	}
	return lb
}

// rankedNode is a cell-tree node queued by its promise value during the
// approximate search (lower promise = more promising).
type rankedNode struct {
	n       *node
	promise float64
}

// rankedQueue is a typed min-heap of rankedNodes. It is hand-rolled rather
// than layered over container/heap because the interface-based API boxes
// every pushed element into a heap allocation, and the query path pushes
// one element per visited child; the sift algorithms are the standard ones,
// and because less is a total order over distinct cells (promise, then
// prefix — no two distinct cells share a prefix) the pop sequence is
// byte-identical to container/heap's.
type rankedQueue []rankedNode

// Len returns the number of queued nodes.
func (q rankedQueue) Len() int { return len(q) }

// less orders by promise, breaking ties by cell prefix so traversal order —
// and therefore every candidate set — is fully deterministic (children are
// discovered in map order, which must not leak into results).
func (q rankedQueue) less(i, j int) bool {
	if q[i].promise != q[j].promise {
		return q[i].promise < q[j].promise
	}
	return PrefixLess(q[i].n.prefix, q[j].n.prefix)
}

// push adds an element and restores the heap invariant (sift-up).
func (q *rankedQueue) push(it rankedNode) {
	*q = append(*q, it)
	h := *q
	for i := len(h) - 1; i > 0; {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

// pop removes and returns the minimum element (sift-down).
func (q *rankedQueue) pop() rankedNode {
	h := *q
	n := len(h) - 1
	h[0], h[n] = h[n], h[0]
	top := h[n]
	h = h[:n]
	*q = h
	for i := 0; ; {
		l := 2*i + 1
		if l >= n {
			break
		}
		m := l
		if r := l + 1; r < n && h.less(r, l) {
			m = r
		}
		if !h.less(m, i) {
			break
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
	return top
}

// getQueue hands out a promise queue seeded with the root, recycling
// backing arrays across searches; putQueue returns it. Steady-state
// searches therefore allocate no traversal state.
func (ix *Index) getQueue() *rankedQueue {
	var q *rankedQueue
	if v := ix.pqPool.Get(); v != nil {
		q = v.(*rankedQueue)
	} else {
		q = new(rankedQueue)
	}
	q.push(rankedNode{n: ix.root, promise: 0})
	return q
}

func (ix *Index) putQueue(q *rankedQueue) {
	// Zero the full capacity so a pooled queue cannot pin nodes of a tree
	// that Compact has since discarded.
	full := (*q)[:cap(*q)]
	clear(full)
	*q = (*q)[:0]
	ix.pqPool.Put(q)
}

// PrefixLess compares cell prefixes lexicographically, shorter first — the
// deterministic tie-break used wherever cells of equal promise must be
// ordered (the traversal queue here, and the cross-shard candidate merge in
// internal/engine).
func PrefixLess(a, b []int32) bool {
	for k := range min(len(a), len(b)) {
		if a[k] != b[k] {
			return a[k] < b[k]
		}
	}
	return len(a) < len(b)
}

// ApproxQuery carries the query-side information for an approximate k-NN
// candidate collection. Exactly the information the client chose to reveal
// must be present: Ranks (derived from the query permutation) for the
// footrule strategy, Dists for the distance-sum strategy.
type ApproxQuery struct {
	Ranks []int32
	Dists []float64
}

// validateApprox checks that the query carries what the configured ranking
// strategy needs.
func (ix *Index) validateApprox(q ApproxQuery) error {
	switch ix.cfg.Ranking {
	case RankFootrule:
		if len(q.Ranks) != ix.cfg.NumPivots {
			return fmt.Errorf("mindex: footrule ranking needs %d pivot ranks, got %d",
				ix.cfg.NumPivots, len(q.Ranks))
		}
	case RankDistSum:
		if len(q.Dists) != ix.cfg.NumPivots {
			return fmt.Errorf("mindex: distsum ranking needs %d pivot distances, got %d",
				ix.cfg.NumPivots, len(q.Dists))
		}
	}
	return nil
}

// approxCollect visits leaf cells in promise order and emits their live
// entries (with the source cell's promise and prefix) until at least
// candSize have been emitted — the traversal shared by ApproxCandidates and
// ApproxCandidatesRanked. The caller holds no lock. The emitted slice may
// be a read-only store view: callers copy out, never mutate or retain it.
func (ix *Index) approxCollect(q ApproxQuery, candSize int,
	emit func(entries []Entry, promise float64, prefix []int32)) error {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	pq := ix.getQueue()
	defer ix.putQueue(pq)
	emitted := 0
	for pq.Len() > 0 && emitted < candSize {
		item := pq.pop()
		if item.n.isLeaf() {
			if item.n.live() == 0 {
				continue
			}
			entries, err := ix.store.View(item.n.bucket)
			if err != nil {
				return err
			}
			entries = ix.liveOnly(entries)
			emit(entries, item.promise, item.n.prefix)
			emitted += len(entries)
			continue
		}
		for _, child := range item.n.children {
			pq.push(rankedNode{n: child, promise: ix.promise(child, q)})
		}
	}
	return nil
}

// liveOnly filters tombstoned entries out of a bucket view. With no
// tombstones pending it returns the view untouched (the common case);
// otherwise the survivors are copied into a fresh slice — views are
// read-only and must never be compacted in place.
func (ix *Index) liveOnly(entries []Entry) []Entry {
	if len(ix.tombstones) == 0 {
		return entries
	}
	out := make([]Entry, 0, len(entries))
	for _, e := range entries {
		if _, gone := ix.tombstones[e.ID]; gone {
			continue
		}
		out = append(out, e)
	}
	return out
}

// ApproxCandidates evaluates the server side of the approximate k-NN query
// (Algorithm 4 of the paper): Voronoi cells are visited in order of their
// promise value and their entries collected until the candidate set reaches
// candSize; the set is then trimmed to exactly candSize. The returned
// candidates are pre-ranked: entries of more promising cells come first, so
// a client may choose to decrypt only a prefix.
func (ix *Index) ApproxCandidates(q ApproxQuery, candSize int) ([]Entry, error) {
	if candSize <= 0 {
		return nil, fmt.Errorf("mindex: candidate size must be positive, got %d", candSize)
	}
	if err := ix.validateApprox(q); err != nil {
		return nil, err
	}
	out := make([]Entry, 0, candSize)
	err := ix.approxCollect(q, candSize, func(entries []Entry, _ float64, _ []int32) {
		out = append(out, entries...)
	})
	if err != nil {
		return nil, err
	}
	if len(out) > candSize {
		out = out[:candSize]
	}
	return out, nil
}

// RankedCandidate is one approximate-search candidate annotated with the
// promise value and prefix of its source cell. The annotations let a
// sharded engine merge per-shard candidate streams into one globally
// promise-ordered list (ties broken by prefix, then shard), reproducing the
// cell-visit discipline of Algorithm 4 across index partitions.
type RankedCandidate struct {
	Entry   Entry
	Promise float64
	Prefix  []int32
}

// ApproxCandidatesRanked is ApproxCandidates with the source-cell promise
// and prefix attached to every candidate. The list is ordered exactly like
// the ApproxCandidates result.
func (ix *Index) ApproxCandidatesRanked(q ApproxQuery, candSize int) ([]RankedCandidate, error) {
	if candSize <= 0 {
		return nil, fmt.Errorf("mindex: candidate size must be positive, got %d", candSize)
	}
	if err := ix.validateApprox(q); err != nil {
		return nil, err
	}
	out := make([]RankedCandidate, 0, candSize)
	err := ix.approxCollect(q, candSize, func(entries []Entry, promise float64, prefix []int32) {
		for _, e := range entries {
			out = append(out, RankedCandidate{Entry: e, Promise: promise, Prefix: prefix})
		}
	})
	if err != nil {
		return nil, err
	}
	if len(out) > candSize {
		out = out[:candSize]
	}
	return out, nil
}

// promise computes the cell-ordering key of Algorithm 4, line 3 ("next
// promising Voronoi cell") under the configured strategy.
func (ix *Index) promise(n *node, q ApproxQuery) float64 {
	switch ix.cfg.Ranking {
	case RankDistSum:
		return pivot.DistSumPromise(q.Dists, n.prefix, ix.weights)
	default:
		return pivot.FootrulePromise(q.Ranks, n.prefix, ix.weights)
	}
}

// FirstCellCandidates returns the entries of the single most promising leaf
// cell — the restricted strategy of the paper's 1-NN comparison experiment
// (Section 5.4), where "the server-side M-Index was limited to access only
// one M-Index Voronoi cell which then forms the candidate set".
func (ix *Index) FirstCellCandidates(q ApproxQuery) ([]Entry, error) {
	entries, _, _, err := ix.FirstCellRanked(q)
	return entries, err
}

// FirstCellRanked returns the entries of the single most promising
// non-empty leaf cell together with the cell's promise value and prefix, so
// a sharded engine can pick the globally most promising first cell among
// the per-shard winners. An empty index yields nil entries.
func (ix *Index) FirstCellRanked(q ApproxQuery) ([]Entry, float64, []int32, error) {
	// Validate like every other promise-ranked traversal: a query missing
	// what the configured ranking needs (ranks for footrule, distances for
	// distance-sum) must become an error, not an index-out-of-range panic
	// inside the promise function.
	if err := ix.validateApprox(q); err != nil {
		return nil, 0, nil, err
	}
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	pq := ix.getQueue()
	defer ix.putQueue(pq)
	for pq.Len() > 0 {
		item := pq.pop()
		if item.n.isLeaf() {
			if item.n.live() == 0 {
				continue // skip empty cells; the experiment wants a non-empty one
			}
			entries, err := ix.store.View(item.n.bucket)
			if err != nil {
				return nil, 0, nil, err
			}
			// Copy out of the view: the winning cell's entries are handed
			// to the caller, which owns its result.
			out := make([]Entry, 0, item.n.live())
			for _, e := range entries {
				if _, gone := ix.tombstones[e.ID]; gone {
					continue
				}
				out = append(out, e)
			}
			return out, item.promise, item.n.prefix, nil
		}
		for _, child := range item.n.children {
			pq.push(rankedNode{n: child, promise: ix.promise(child, q)})
		}
	}
	return nil, 0, nil, nil
}
