package mindex

import (
	"fmt"
	"math"

	"simcloud/internal/pivot"
	"simcloud/internal/simd"
)

// RangeByDists evaluates the server side of a precise range query
// (Algorithm 3 of the paper): given only the query's pivot-distance vector
// and the radius, it prunes the Voronoi cell tree with metric constraints
// and pivot-filters the surviving entries, returning the candidate set.
//
// Every returned entry is a possible member of R(q, r); every indexed object
// within the radius is guaranteed to be returned (no false dismissals — the
// applied bounds are true metric lower bounds). The caller refines by
// computing real distances: the server in the plain deployment, the
// authorized client in the encrypted one. Like every search, the traversal
// runs lock-free against the last published snapshot.
func (ix *Index) RangeByDists(qDists []float64, r float64) ([]Entry, error) {
	return ix.rangeByDists(qDists, r, nil)
}

func (ix *Index) rangeByDists(qDists []float64, r float64, filter PivotFilter) ([]Entry, error) {
	if len(qDists) != ix.cfg.NumPivots {
		return nil, fmt.Errorf("mindex: query has %d pivot distances, want %d", len(qDists), ix.cfg.NumPivots)
	}
	if r < 0 {
		return nil, fmt.Errorf("mindex: negative query radius %g", r)
	}
	st := ix.state.Load()
	var out []Entry
	var visit func(n *node) error
	visit = func(n *node) error {
		if n.isLeaf() {
			if n.live() == 0 {
				return nil
			}
			entries, err := ix.leafView(n)
			if err != nil {
				return err
			}
			for _, e := range entries {
				if _, gone := st.tombstones[e.ID]; gone {
					continue
				}
				// Only an unsplit root leaf mixes first-level cells; deeper
				// leaves were filtered at the root's child table.
				if filter != nil && len(n.prefix) == 0 && !filter.allowsEntry(e) {
					continue
				}
				// Pivot filtering (Algorithm 3, lines 5–7): discard when the
				// triangle-inequality lower bound exceeds the radius.
				if e.Dists != nil && pivot.LowerBound(qDists, e.Dists) > r {
					continue
				}
				out = append(out, e)
			}
			return nil
		}
		// The child table is sorted by key, so the candidate list is fully
		// deterministic.
		for i := range n.kids {
			k := n.kids[i]
			// A root child's key is its subtree's first-level cell.
			if filter != nil && len(n.prefix) == 0 && !filter.Allows(k.key) {
				continue
			}
			if ix.pruneCell(k.n, k.key, n, qDists, r) {
				continue
			}
			if err := visit(k.n); err != nil {
				return err
			}
		}
		return nil
	}
	if err := visit(st.root); err != nil {
		return nil, err
	}
	return out, nil
}

// pruneCell decides whether the child cell (reached from parent via
// permutation element key) can be excluded from a range query of radius r.
// Two true lower bounds are applied:
//
//   - Generalized-hyperplane: every object o in the cell has pivot p_key
//     among its nearest pivots outside the parent prefix, so
//     d(q,o) ≥ (d(q,p_key) − min_{m∉prefix} d(q,p_m)) / 2.
//   - Ball (range-pivot): subtree objects satisfy
//     rmin ≤ d(o,p_key) ≤ rmax, so d(q,o) ≥ d(q,p_key) − rmax and
//     d(q,o) ≥ rmin − d(q,p_key).
func (ix *Index) pruneCell(child *node, key int32, parent *node, qDists []float64, r float64) bool {
	return ix.cellLowerBound(child, key, parent, qDists) > r
}

// onPath reports whether pivot m lies on the cell path: in the parent's
// prefix or equal to the child's key. Prefixes are at most MaxLevel (≤ the
// pivot count, typically ≤ 8) elements, so a linear scan beats building a
// set — and unlike the map this path used to allocate per pruning decision,
// it allocates nothing.
func onPath(prefix []int32, key, m int32) bool {
	if m == key {
		return true
	}
	for _, p := range prefix {
		if p == m {
			return true
		}
	}
	return false
}

// cellLowerBound returns a lower bound on the distance from the query to any
// object in the cell, combining the hyperplane and ball constraints.
func (ix *Index) cellLowerBound(child *node, key int32, parent *node, qDists []float64) float64 {
	dq := qDists[key]
	lb := 0.0
	// Hyperplane bound against the closest other pivot not already used on
	// the path (including key's siblings and all deeper pivots).
	minOther := math.Inf(1)
	for m, d := range qDists {
		if onPath(parent.prefix, key, int32(m)) {
			continue
		}
		if d < minOther {
			minOther = d
		}
	}
	if !math.IsInf(minOther, 1) {
		if hb := (dq - minOther) / 2; hb > lb {
			lb = hb
		}
	}
	if child.boundsValid && child.count > 0 {
		if bb := dq - child.rmax; bb > lb {
			lb = bb
		}
		if bb := child.rmin - dq; bb > lb {
			lb = bb
		}
	}
	return lb
}

// rankedNode is a cell-tree node queued by its promise value during the
// approximate search (lower promise = more promising). In the fixed-point
// traversal (see promiser) ikey carries the promise scaled to an integer;
// the float promise is only materialized when a cell is emitted.
type rankedNode struct {
	n       *node
	promise float64
	ikey    uint64
}

// rankedQueue is a typed min-heap of rankedNodes. It is hand-rolled rather
// than layered over container/heap because the interface-based API boxes
// every pushed element into a heap allocation, and the query path pushes
// one element per visited child; the sift algorithms are the standard ones,
// and because less is a total order over distinct cells (promise, then
// prefix — no two distinct cells share a prefix) the pop sequence is
// byte-identical to container/heap's.
type rankedQueue struct {
	items []rankedNode
	// useInt orders by the integer promise key instead of the float
	// promise. The fixed-point path only runs when the integer order
	// provably equals the float order (see promiser), so the pop sequence
	// is identical either way.
	useInt bool
}

// Len returns the number of queued nodes.
func (q *rankedQueue) Len() int { return len(q.items) }

// less orders by promise, breaking ties by cell prefix so traversal order —
// and therefore every candidate set — is fully deterministic.
func (q *rankedQueue) less(i, j int) bool {
	h := q.items
	if q.useInt {
		if h[i].ikey != h[j].ikey {
			return h[i].ikey < h[j].ikey
		}
	} else if h[i].promise != h[j].promise {
		return h[i].promise < h[j].promise
	}
	return PrefixLess(h[i].n.prefix, h[j].n.prefix)
}

// push adds an element and restores the heap invariant (sift-up).
func (q *rankedQueue) push(it rankedNode) {
	q.items = append(q.items, it)
	for i := len(q.items) - 1; i > 0; {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			break
		}
		q.items[i], q.items[parent] = q.items[parent], q.items[i]
		i = parent
	}
}

// pop removes and returns the minimum element (sift-down).
func (q *rankedQueue) pop() rankedNode {
	h := q.items
	n := len(h) - 1
	h[0], h[n] = h[n], h[0]
	top := h[n]
	q.items = h[:n]
	for i := 0; ; {
		l := 2*i + 1
		if l >= n {
			break
		}
		m := l
		if r := l + 1; r < n && q.less(r, l) {
			m = r
		}
		if !q.less(m, i) {
			break
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
	return top
}

// getQueue hands out a promise queue seeded with the given snapshot root,
// recycling backing arrays across searches; putQueue returns it.
// Steady-state searches therefore allocate no traversal state.
func (ix *Index) getQueue(root *node, useInt bool) *rankedQueue {
	var q *rankedQueue
	if v := ix.pqPool.Get(); v != nil {
		q = v.(*rankedQueue)
	} else {
		q = new(rankedQueue)
	}
	q.useInt = useInt
	q.push(rankedNode{n: root})
	return q
}

func (ix *Index) putQueue(q *rankedQueue) {
	// Zero the full capacity so a pooled queue cannot pin nodes of a
	// snapshot that has since been superseded.
	full := q.items[:cap(q.items)]
	clear(full)
	q.items = q.items[:0]
	ix.pqPool.Put(q)
}

// PrefixLess compares cell prefixes lexicographically, shorter first — the
// deterministic tie-break used wherever cells of equal promise must be
// ordered (the traversal queue here, and the cross-shard candidate merge in
// internal/engine).
func PrefixLess(a, b []int32) bool {
	for k := range min(len(a), len(b)) {
		if a[k] != b[k] {
			return a[k] < b[k]
		}
	}
	return len(a) < len(b)
}

// ApproxQuery carries the query-side information for an approximate k-NN
// candidate collection. Exactly the information the client chose to reveal
// must be present: Ranks (derived from the query permutation) for the
// footrule strategy, Dists for the distance-sum strategy.
type ApproxQuery struct {
	Ranks []int32
	Dists []float64
}

// validateApprox checks that the query carries what the configured ranking
// strategy needs.
func (ix *Index) validateApprox(q ApproxQuery) error {
	switch ix.cfg.Ranking {
	case RankFootrule:
		if len(q.Ranks) != ix.cfg.NumPivots {
			return fmt.Errorf("mindex: footrule ranking needs %d pivot ranks, got %d",
				ix.cfg.NumPivots, len(q.Ranks))
		}
	case RankDistSum:
		if len(q.Dists) != ix.cfg.NumPivots {
			return fmt.Errorf("mindex: distsum ranking needs %d pivot distances, got %d",
				ix.cfg.NumPivots, len(q.Dists))
		}
	}
	return nil
}

// promiser computes cell promises incrementally along the traversal: a
// child's promise is its parent's promise plus one level-weighted term, so
// each heap push costs O(1) instead of the O(prefix) a from-scratch
// pivot.FootrulePromise/DistSumPromise evaluation would. The terms are
// added in ascending level order along every root→leaf path — exactly the
// summation order of the from-scratch functions — so the accumulated floats
// are bit-for-bit identical to theirs (enforced by TestPromiseIncremental*).
//
// When Config.QuantizedPromise is set and exactness is provable, promises
// are instead accumulated and compared as integers scaled by 2^(MaxLevel-1)
// (useInt): footrule terms |rank−level| are integers by construction;
// distance-sum terms qualify when every query–pivot distance lies on the
// non-negative uint16 integer grid (simd.CanQuantizeU16). Every such
// promise is a dyadic rational whose partial sums are exactly representable
// in float64, so the integer order equals the float order and the emitted
// float promises (materialized via Ldexp) are bit-identical — otherwise the
// promiser silently falls back to the float path.
type promiser struct {
	ranking RankStrategy
	weights []float64
	ranks   []int32
	dists   []float64
	useInt  bool
	lm1     int // MaxLevel-1: the fixed-point scale is 2^lm1
}

// quantizedMaxLevel bounds MaxLevel for the fixed-point path: with terms
// below 2^17 and shifts up to MaxLevel-1, integer keys stay far below 2^53,
// keeping the float64 materialization exact.
const quantizedMaxLevel = 32

// quantizedMaxPivots bounds the footrule term magnitude (|rank−level| <
// NumPivots) for the same exactness argument.
const quantizedMaxPivots = 1 << 20

func (ix *Index) newPromiser(q ApproxQuery) promiser {
	p := promiser{
		ranking: ix.cfg.Ranking,
		weights: ix.weights,
		ranks:   q.Ranks,
		dists:   q.Dists,
		lm1:     ix.cfg.MaxLevel - 1,
	}
	if ix.cfg.QuantizedPromise && ix.cfg.MaxLevel <= quantizedMaxLevel {
		switch p.ranking {
		case RankFootrule:
			p.useInt = ix.cfg.NumPivots <= quantizedMaxPivots
		case RankDistSum:
			p.useInt = simd.CanQuantizeU16(q.Dists)
		}
	}
	return p
}

// childItem derives the queue item of child c (reached from item's node via
// permutation element key at the given level) from its parent's item.
func (p *promiser) childItem(item rankedNode, c *node, level int, key int32) rankedNode {
	if p.useInt {
		var t uint64
		if p.ranking == RankDistSum {
			t = uint64(p.dists[key])
		} else {
			d := p.ranks[key] - int32(level)
			if d < 0 {
				d = -d
			}
			t = uint64(d)
		}
		return rankedNode{n: c, ikey: item.ikey + t<<(p.lm1-level)}
	}
	var term float64
	if p.ranking == RankDistSum {
		term = p.weights[level] * p.dists[key]
	} else {
		d := float64(p.ranks[key] - int32(level))
		if d < 0 {
			d = -d
		}
		term = p.weights[level] * d
	}
	return rankedNode{n: c, promise: item.promise + term}
}

// emitPromise materializes the float promise of a queue item.
func (p *promiser) emitPromise(item rankedNode) float64 {
	if p.useInt {
		return math.Ldexp(float64(item.ikey), -p.lm1)
	}
	return item.promise
}

// approxCollect visits leaf cells in promise order and emits their live
// entries (with the source cell's promise and prefix) until at least
// candSize have been emitted — the traversal shared by ApproxCandidates and
// ApproxCandidatesRanked. A non-nil filter restricts the visit to its
// first-level cells before any counting, so the filtered stream is what an
// index holding only those cells would emit. The emitted slice may be a
// read-only snapshot view: callers copy out, never mutate or retain it.
func (ix *Index) approxCollect(q ApproxQuery, candSize int, filter PivotFilter,
	emit func(entries []Entry, promise float64, prefix []int32)) error {
	st := ix.state.Load()
	pr := ix.newPromiser(q)
	pq := ix.getQueue(st.root, pr.useInt)
	defer ix.putQueue(pq)
	emitted := 0
	for pq.Len() > 0 && emitted < candSize {
		item := pq.pop()
		if item.n.isLeaf() {
			if item.n.live() == 0 {
				continue
			}
			entries, err := ix.leafView(item.n)
			if err != nil {
				return err
			}
			entries = st.liveOnly(entries)
			// Only an unsplit root leaf mixes first-level cells; deeper
			// leaves were filtered when the root's children were queued.
			if len(item.n.prefix) == 0 {
				entries = filter.filterEntries(entries)
			}
			if len(entries) == 0 {
				continue
			}
			emit(entries, pr.emitPromise(item), item.n.prefix)
			emitted += len(entries)
			continue
		}
		level := item.n.level()
		for i := range item.n.kids {
			k := item.n.kids[i]
			if filter != nil && level == 0 && !filter.Allows(k.key) {
				continue
			}
			pq.push(pr.childItem(item, k.n, level, k.key))
		}
	}
	return nil
}

// liveOnly filters tombstoned entries out of a bucket view. With no
// tombstones pending it returns the view untouched (the common case);
// otherwise the survivors are copied into a fresh slice — views are
// read-only and must never be compacted in place.
func (st *readState) liveOnly(entries []Entry) []Entry {
	if len(st.tombstones) == 0 {
		return entries
	}
	out := make([]Entry, 0, len(entries))
	for _, e := range entries {
		if _, gone := st.tombstones[e.ID]; gone {
			continue
		}
		out = append(out, e)
	}
	return out
}

// ApproxCandidates evaluates the server side of the approximate k-NN query
// (Algorithm 4 of the paper): Voronoi cells are visited in order of their
// promise value and their entries collected until the candidate set reaches
// candSize; the set is then trimmed to exactly candSize. The returned
// candidates are pre-ranked: entries of more promising cells come first, so
// a client may choose to decrypt only a prefix.
func (ix *Index) ApproxCandidates(q ApproxQuery, candSize int) ([]Entry, error) {
	if candSize <= 0 {
		return nil, fmt.Errorf("mindex: candidate size must be positive, got %d", candSize)
	}
	if err := ix.validateApprox(q); err != nil {
		return nil, err
	}
	out := make([]Entry, 0, candSize)
	err := ix.approxCollect(q, candSize, nil, func(entries []Entry, _ float64, _ []int32) {
		out = append(out, entries...)
	})
	if err != nil {
		return nil, err
	}
	if len(out) > candSize {
		out = out[:candSize]
	}
	return out, nil
}

// RankedCandidate is one approximate-search candidate annotated with the
// promise value and prefix of its source cell. The annotations let a
// sharded engine merge per-shard candidate streams into one globally
// promise-ordered list (ties broken by prefix, then shard), reproducing the
// cell-visit discipline of Algorithm 4 across index partitions.
type RankedCandidate struct {
	Entry   Entry
	Promise float64
	Prefix  []int32
}

// ApproxCandidatesRanked is ApproxCandidates with the source-cell promise
// and prefix attached to every candidate. The list is ordered exactly like
// the ApproxCandidates result.
func (ix *Index) ApproxCandidatesRanked(q ApproxQuery, candSize int) ([]RankedCandidate, error) {
	if candSize <= 0 {
		return nil, fmt.Errorf("mindex: candidate size must be positive, got %d", candSize)
	}
	if err := ix.validateApprox(q); err != nil {
		return nil, err
	}
	out := make([]RankedCandidate, 0, candSize)
	err := ix.approxCollect(q, candSize, nil, func(entries []Entry, promise float64, prefix []int32) {
		for _, e := range entries {
			out = append(out, RankedCandidate{Entry: e, Promise: promise, Prefix: prefix})
		}
	})
	if err != nil {
		return nil, err
	}
	if len(out) > candSize {
		out = out[:candSize]
	}
	return out, nil
}

// promise computes the cell-ordering key of Algorithm 4, line 3 ("next
// promising Voronoi cell") under the configured strategy, from scratch in
// O(prefix length). The traversals use the incremental promiser instead;
// this remains the reference implementation their results are tested
// against.
func (ix *Index) promise(n *node, q ApproxQuery) float64 {
	switch ix.cfg.Ranking {
	case RankDistSum:
		return pivot.DistSumPromise(q.Dists, n.prefix, ix.weights)
	default:
		return pivot.FootrulePromise(q.Ranks, n.prefix, ix.weights)
	}
}

// FirstCellCandidates returns the entries of the single most promising leaf
// cell — the restricted strategy of the paper's 1-NN comparison experiment
// (Section 5.4), where "the server-side M-Index was limited to access only
// one M-Index Voronoi cell which then forms the candidate set".
func (ix *Index) FirstCellCandidates(q ApproxQuery) ([]Entry, error) {
	entries, _, _, err := ix.FirstCellRanked(q)
	return entries, err
}

// FirstCellRanked returns the entries of the single most promising
// non-empty leaf cell together with the cell's promise value and prefix, so
// a sharded engine can pick the globally most promising first cell among
// the per-shard winners. An empty index yields nil entries.
func (ix *Index) FirstCellRanked(q ApproxQuery) ([]Entry, float64, []int32, error) {
	return ix.firstCellRanked(q, nil)
}

func (ix *Index) firstCellRanked(q ApproxQuery, filter PivotFilter) ([]Entry, float64, []int32, error) {
	// Validate like every other promise-ranked traversal: a query missing
	// what the configured ranking needs (ranks for footrule, distances for
	// distance-sum) must become an error, not an index-out-of-range panic
	// inside the promise function.
	if err := ix.validateApprox(q); err != nil {
		return nil, 0, nil, err
	}
	st := ix.state.Load()
	pr := ix.newPromiser(q)
	pq := ix.getQueue(st.root, pr.useInt)
	defer ix.putQueue(pq)
	for pq.Len() > 0 {
		item := pq.pop()
		if item.n.isLeaf() {
			if item.n.live() == 0 {
				continue // skip empty cells; the experiment wants a non-empty one
			}
			entries, err := ix.leafView(item.n)
			if err != nil {
				return nil, 0, nil, err
			}
			// Copy out of the view: the winning cell's entries are handed
			// to the caller, which owns its result.
			out := make([]Entry, 0, item.n.live())
			for _, e := range entries {
				if _, gone := st.tombstones[e.ID]; gone {
					continue
				}
				// Only an unsplit root leaf mixes first-level cells (see
				// approxCollect).
				if filter != nil && len(item.n.prefix) == 0 && !filter.allowsEntry(e) {
					continue
				}
				out = append(out, e)
			}
			if filter != nil && len(out) == 0 {
				continue // the cell's allowed slice is empty; keep looking
			}
			return out, pr.emitPromise(item), item.n.prefix, nil
		}
		level := item.n.level()
		for i := range item.n.kids {
			k := item.n.kids[i]
			if filter != nil && level == 0 && !filter.Allows(k.key) {
				continue
			}
			pq.push(pr.childItem(item, k.n, level, k.key))
		}
	}
	return nil, 0, nil, nil
}
