package mindex

// Bulk-ingest builder: the bottom-up construction path behind
// Index.InsertBulk.
//
// The incremental insert path files one entry at a time: every entry is
// appended to its leaf bucket the moment it arrives, so a leaf that later
// overflows re-reads and re-appends its whole content once per split — an
// entry that ends up at depth d has been encoded and written O(d) times,
// and on memory storage every insert also re-pins the leaf's view. The
// builder removes that churn: it first runs the incremental algorithm's
// exact bookkeeping on path-copied nodes with every store operation
// *deferred* (the simulation), then applies the net result — each entry is
// appended exactly once, to the bucket of the leaf it finally lands in, and
// buckets the incremental path would have created and later freed are
// replayed as ghost allocations that only burn their ID.
//
// Invariants (pinned by TestBulkBuildEquivalence):
//
//   - Byte identity. The published snapshot — tree shape, per-node counts,
//     dead counts and ball bounds, leaf bucket IDs, the store's allocation
//     cursor, and every bucket's content order — is byte-identical (snapshot
//     codec output) to what the incremental path produces for the same batch
//     in the same arrival order. Bucket IDs match because the simulation
//     records the exact sequence of Create calls the incremental path would
//     issue and the apply phase replays it against the store's monotone
//     cursor; bounds match because count++/updateBounds are replayed
//     per-entry in the same order (the count==1 case is order-sensitive).
//   - RCU discipline. Readers of previously published snapshots are
//     untouched: appends to surviving pre-existing buckets strictly extend
//     them (published counts cover a prefix), and a pre-existing leaf the
//     build splits away has its old content pinned into the shared pin cell
//     before its bucket is freed — the same point-of-no-return protocol as
//     the incremental split.
//   - All-or-nothing on store failure. A failed apply rolls back: buckets
//     this build materialized are freed, pre-existing buckets that already
//     received their batch suffix are rewritten to their pre-batch content
//     (after pinning it), and the sequence cursor is rewound. The loc map
//     needs no undo at all — the simulation never touches it (within-batch
//     duplicates are caught by a batch-local ID set), and the one sweep
//     that files the batch's records runs only after the apply phase can no
//     longer fail. Nothing is published and the error is returned — unlike
//     the incremental path there is no partial progress, because the store
//     writes happen after the plan is complete. Ghost IDs stay burned (IDs
//     are never reused, so a gap is harmless).
//
// The batch falls back to the incremental path when it is too small to
// amortize the plan, or when an entry re-inserts a tombstoned ID (the purge
// protocol is inherently incremental).

import "fmt"

// bulkMinBatch is the smallest batch routed through the builder; below it
// the plan/apply split costs more than it saves.
const bulkMinBatch = 16

// ghostAllocator is implemented by stores whose bucket IDs come from a
// monotone cursor: createGhost burns one ID without materializing a bucket.
// Stores without it get a Create+Free pair, which has the same net effect.
type ghostAllocator interface {
	createGhost() error
}

// batchAppender is implemented by stores that can append a batch of entries
// atomically (all-or-nothing) under one lock acquisition.
type batchAppender interface {
	appendBatch(id BucketID, entries []Entry) error
}

// indexedAppender is implemented by stores that can append straight from
// the builder's arena by index, skipping the contiguous scratch copy.
type indexedAppender interface {
	appendIndexed(id BucketID, arena []Entry, idx []int32) error
}

// bulkLeaf is the deferred store work for one leaf the build touches.
type bulkLeaf struct {
	n *node
	// isNew marks a leaf created by this build (its bucket is allocated at
	// apply time); a pre-existing leaf keeps its bucket and only receives
	// the batch suffix.
	isNew bool
	// oldN is a pre-existing leaf's pre-batch entry count — what the store
	// actually holds until the apply phase runs.
	oldN int
	// items are the entries destined for this leaf as indices into the
	// build's entry arena, in bucket content order after any pre-existing
	// content. Indices, not Entry values: an entry a deep tree re-files
	// once per split costs four bytes per hop instead of a struct copy,
	// which keeps the plan's allocation footprint (and GC share) flat in
	// the tree depth.
	items []int32
}

// noLocSeq marks an item with no entry-location record (a tombstoned
// pre-existing entry swept along by a split).
const noLocSeq = ^uint64(0)

// bulkFree is one pre-existing leaf the build split away: at apply time its
// old content is pinned into the shared cell (for readers of previously
// published snapshots) and its bucket freed — the same order the
// incremental split uses.
type bulkFree struct {
	pin    *pinCell
	view   []Entry
	bucket BucketID
}

// bulkTxn runs the simulation and the apply phase on top of an ordinary
// mutation transaction.
// idSet is the builder's within-batch duplicate detector: a flat
// open-addressing probe table (≤50% load, linear probing) over the batch's
// IDs. It replaces per-entry provisional loc records — one cheap set op
// per entry instead of a map assign, and an abort has nothing to clean up
// because the set dies with the plan.
type idSet struct {
	tab     []uint64
	mask    uint64
	hasZero bool
}

func newIDSet(n int) *idSet {
	size := 16
	for size < 2*n {
		size <<= 1
	}
	return &idSet{tab: make([]uint64, size), mask: uint64(size - 1)}
}

// add inserts id and reports whether it was already present. Zero is a
// valid ID; the table uses it as the empty sentinel, so it gets a flag.
func (s *idSet) add(id uint64) bool {
	if id == 0 {
		had := s.hasZero
		s.hasZero = true
		return had
	}
	h := id * 0x9E3779B97F4A7C15
	h ^= h >> 29
	for i := h & s.mask; ; i = (i + 1) & s.mask {
		switch s.tab[i] {
		case 0:
			s.tab[i] = id
			return false
		case id:
			return true
		}
	}
}

type bulkTxn struct {
	t    *txn
	pend map[*node]*bulkLeaf
	// leaves lists every touched leaf in first-touch order (deterministic
	// apply order); entries whose node has since become internal are
	// skipped at apply time.
	leaves []*bulkLeaf
	// events is the bucket allocation replay: one element per Create call
	// the incremental path would issue, in issue order. An event whose node
	// is still a leaf at apply time materializes a bucket; one whose node
	// split again only burns the ID.
	events []*bulkLeaf
	frees  []bulkFree
	seq0   uint64
	path   []*node
	// arena holds every entry the build moves: the caller's batch first
	// (aliased, never mutated — the first split-content append reallocates
	// thanks to the three-index slice), then the pre-batch content of each
	// leaf the build splits, appended as it is first read. Leaf item lists
	// index into it.
	arena  []Entry
	nBatch int
	// oldSeqs carries the loc sequence numbers of arena[nBatch:] (noLocSeq
	// for a tombstoned pre-existing entry, which has no loc record); a
	// batch entry's seq is derived from its arena index instead. The
	// simulation never writes loc — every filed entry's record lands in
	// one sweep after the apply phase succeeds, so per-split re-filing
	// never rewrites loc and an abort has nothing to undo there.
	oldSeqs []uint64
	// scratch is the apply-phase materialization buffer, reused across
	// leaves (stores copy or encode what they append, never retain it).
	scratch []Entry
	// lastLeaf memoizes the most recent leafState result; invalidated when
	// its node splits.
	lastLeaf *bulkLeaf
	// kidTab is split's key→child table, indexed by pivot key — O(1) where
	// the incremental split linear-scans its kids. Cleared per split call.
	kidTab []*bulkLeaf
}

// seqAt returns the loc sequence number of an arena index: batch entry i is
// the i-th insert of the build, so its seq is derived; split content carries
// its seq (or the tombstone sentinel) in oldSeqs.
func (b *bulkTxn) seqAt(i int32) uint64 {
	if int(i) < b.nBatch {
		return b.seq0 + uint64(i)
	}
	return b.oldSeqs[int(i)-b.nBatch]
}

// bulkEligible reports whether the batch may take the builder path. Callers
// hold wmu and have run ensureLoc.
func (ix *Index) bulkEligible(entries []Entry) bool {
	if len(entries) < bulkMinBatch {
		return false
	}
	st := ix.state.Load()
	if len(st.tombstones) > 0 {
		// Re-inserting a tombstoned ID purges the dead twin in place —
		// inherently incremental.
		for i := range entries {
			if _, gone := st.tombstones[entries[i].ID]; gone {
				return false
			}
		}
	}
	return true
}

// insertBulkBuilt is the builder path of InsertBulk. Callers hold wmu, have
// run ensureLoc, and have checked bulkEligible.
func (ix *Index) insertBulkBuilt(entries []Entry) error {
	t := ix.begin()
	// The batch size is known up front — rebuild the loc map at its final
	// capacity so the post-apply sweep doesn't rehash it a dozen times.
	// Callers hold wmu.
	if len(entries) > len(ix.loc) {
		loc := make(map[uint64]entryLoc, len(ix.loc)+len(entries))
		for id, l := range ix.loc {
			loc[id] = l
		}
		ix.loc = loc
		t.loc = loc
	}
	seen := newIDSet(len(entries))
	b := &bulkTxn{
		t:      t,
		pend:   make(map[*node]*bulkLeaf, len(entries)/4),
		seq0:   ix.nextSeq,
		path:   make([]*node, 0, ix.cfg.MaxLevel+1),
		arena:  entries[:len(entries):len(entries)],
		nBatch: len(entries),
	}
	t.root = t.mutable(t.root)
	var simErr error
	accepted := len(entries)
	// The simulation never writes loc (the sweep below is the only writer),
	// so its population is fixed for the whole loop — empty means no
	// pre-existing entry can collide and the lookup is skipped wholesale.
	checkLoc := len(t.loc) > 0
	for i := range entries {
		err := ix.checkEntry(&entries[i])
		if err == nil {
			// bulkEligible excluded tombstoned twins, so a loc hit is a
			// pre-existing live duplicate; the batch-local set catches a
			// duplicate earlier in this same batch. Order matters: the
			// set only records IDs that were actually accepted.
			dup := false
			if checkLoc {
				_, dup = t.loc[entries[i].ID]
			}
			if dup || seen.add(entries[i].ID) {
				err = fmt.Errorf("%w: %d", ErrDuplicateID, entries[i].ID)
			}
		}
		if err == nil {
			err = b.insert(i)
		}
		if err != nil {
			// Stop the plan here; the entries before i still build and
			// publish, matching the incremental path's partial progress.
			simErr = fmt.Errorf("mindex: bulk insert entry %d: %w", i, err)
			accepted = i
			break
		}
	}
	fatal, freeErr := b.apply()
	if fatal != nil {
		// abort rewound the tree and the store; loc was never touched.
		return fatal
	}
	// The deferred loc pass: every filed item gets its final leaf prefix in
	// one sweep, now that the store can no longer force an abort.
	for _, bl := range b.leaves {
		if !bl.n.isLeaf() {
			continue
		}
		for _, idx := range bl.items {
			seq := b.seqAt(idx)
			if seq == noLocSeq {
				continue
			}
			t.loc[b.arena[idx].ID] = entryLoc{prefix: bl.n.prefix, seq: seq}
		}
	}
	t.commit()
	ix.recordIngest(entries, accepted, true)
	if simErr != nil {
		return simErr
	}
	return freeErr
}

// leafState returns (creating on first touch) the deferred-work record of a
// pre-existing leaf. Must run before the leaf's count is incremented: oldN
// captures what the store holds. The one-element memo short-circuits the
// map for consecutive entries landing in the same leaf — the common case
// for clustered batches.
func (b *bulkTxn) leafState(n *node) *bulkLeaf {
	if b.lastLeaf != nil && b.lastLeaf.n == n {
		return b.lastLeaf
	}
	bl, ok := b.pend[n]
	if !ok {
		bl = &bulkLeaf{n: n, oldN: n.count}
		b.pend[n] = bl
		b.leaves = append(b.leaves, bl)
	}
	b.lastLeaf = bl
	return bl
}

// insert mirrors txn.insert with the store operations deferred: descend by
// the permutation prefix cloning the path, record the entry (as its arena
// index) against its leaf, split on overflow. The bookkeeping (counts,
// bounds, seq, size) is applied in exactly the incremental order, so the
// resulting node fields are bit-identical; loc writes wait for the
// post-apply sweep.
func (b *bulkTxn) insert(idx int) error {
	t := b.t
	e := &b.arena[idx]
	n := t.root
	b.path = b.path[:0]
	b.path = append(b.path, n)
	for !n.isLeaf() {
		key := e.Perm[n.level()]
		c := n.child(key)
		if c == nil {
			c = t.fresh(&node{
				prefix:      appendPrefix(n.prefix, key),
				pin:         &pinCell{},
				boundsValid: true,
			})
			if e.Dists != nil {
				c.rmin, c.rmax = e.Dists[key], e.Dists[key]
			}
			n.addKid(key, c)
			bl := &bulkLeaf{n: c, isNew: true}
			b.pend[c] = bl
			b.leaves = append(b.leaves, bl)
			b.events = append(b.events, bl)
		} else if m := t.mutable(c); m != c {
			// Only re-wire the kid slot when mutable actually cloned;
			// after the first hop through a child the pointer is stable.
			n.setKid(key, m)
			c = m
		}
		n = c
		b.path = append(b.path, n)
	}
	bl := b.leafState(n)
	bl.items = append(bl.items, int32(idx))
	for _, pn := range b.path {
		pn.count++
		pn.updateBounds(e)
	}
	t.ix.nextSeq++
	t.size++
	overflow := n.count > t.ix.cfg.BucketCapacity ||
		(t.ix.cfg.EagerRootSplit && n.level() == 0)
	if overflow && n.level() < t.ix.cfg.MaxLevel {
		return b.split(n)
	}
	return nil
}

// split mirrors txn.split on the plan: distribute the leaf's content (old
// bucket prefix, then batch items, in content order) over children created
// in key-first-occurrence order — the same order the incremental split
// issues its Create calls — and mark a pre-existing source for
// pin-and-free. Only the old-content read touches the store.
func (b *bulkTxn) split(n *node) error {
	t := b.t
	bl := b.pend[n]
	oldIdx0, nOld := int32(len(b.arena)), 0
	if !bl.isNew {
		old, err := t.ix.leafViewN(n, bl.oldN)
		if err != nil {
			// The leaf stays a consistent (overfull) leaf, exactly like a
			// failed incremental split.
			return err
		}
		nOld = len(old)
		// Move the pre-batch content into the arena, capturing each entry's
		// seq once. A live pre-existing entry's seq comes from its loc
		// record; a tombstoned one has no record and carries the sentinel
		// (the loc sweep skips it, exactly like the incremental re-file
		// loop does).
		b.arena = append(b.arena, old...)
		for i := range old {
			seq := noLocSeq
			if l, ok := t.loc[old[i].ID]; ok {
				seq = l.seq
			}
			b.oldSeqs = append(b.oldSeqs, seq)
		}
		b.frees = append(b.frees, bulkFree{pin: n.pin, view: old, bucket: n.bucket})
	}
	level := n.level()
	var kids []child
	if need := int(t.ix.cfg.NumPivots); len(b.kidTab) < need {
		b.kidTab = make([]*bulkLeaf, need)
	} else {
		clear(b.kidTab)
	}
	childFor := func(key int32) *bulkLeaf {
		if int(key) < len(b.kidTab) {
			if cb := b.kidTab[key]; cb != nil {
				return cb
			}
		} else {
			// Out-of-range pivot key (malformed stored entry): fall back to
			// the scan the incremental split would effectively do.
			for i := range kids {
				if kids[i].key == key {
					return b.pend[kids[i].n]
				}
			}
		}
		c := t.fresh(&node{
			prefix:      appendPrefix(n.prefix, key),
			pin:         &pinCell{},
			boundsValid: true,
		})
		cb := &bulkLeaf{n: c, isNew: true}
		b.pend[c] = cb
		b.leaves = append(b.leaves, cb)
		b.events = append(b.events, cb)
		i := len(kids)
		kids = append(kids, child{key: key, n: c})
		for ; i > 0 && key < kids[i-1].key; i-- {
			kids[i] = kids[i-1]
		}
		kids[i] = child{key: key, n: c}
		if int(key) < len(b.kidTab) {
			b.kidTab[key] = cb
		}
		return cb
	}
	anyTomb := len(t.tomb) > 0
	file := func(idx int32) {
		e := &b.arena[idx]
		cb := childFor(e.Perm[level])
		cb.items = append(cb.items, idx)
		cb.n.count++
		if anyTomb {
			if _, gone := t.tomb[e.ID]; gone {
				cb.n.dead++
			}
		}
		cb.n.updateBounds(e)
	}
	// Old content first, then batch items — bucket content order.
	for i := 0; i < nOld; i++ {
		file(oldIdx0 + int32(i))
	}
	for _, idx := range bl.items {
		file(idx)
	}
	n.kids = kids
	n.bucket = 0
	n.era = 0
	n.pin = nil
	delete(b.pend, n)
	if b.lastLeaf == bl {
		b.lastLeaf = nil
	}
	bl.items = nil
	for i := range n.kids {
		c := n.kids[i].n
		if c.count > t.ix.cfg.BucketCapacity && c.level() < t.ix.cfg.MaxLevel {
			if err := b.split(c); err != nil {
				return err
			}
		}
	}
	return nil
}

// apply replays the plan against the store. fatal reports a failure that
// aborted and rolled back the whole build (nothing may be published);
// freeErr reports a failed Free of a split-away bucket — the built state is
// fully consistent (the bucket merely leaks), so the caller publishes and
// surfaces the error, like the incremental split does.
func (b *bulkTxn) apply() (fatal, freeErr error) {
	t := b.t
	store := t.ix.store

	// 1. Bucket allocation replay, in incremental Create order: surviving
	// leaves materialize, split-away intermediates only burn their ID.
	for _, bl := range b.events {
		if bl.n.isLeaf() {
			id, err := store.Create()
			if err != nil {
				return b.abort(err, nil), nil
			}
			bl.n.bucket = id
		} else if err := ghostCreate(store); err != nil {
			return b.abort(err, nil), nil
		}
	}

	// 2. Content: new leaves get their full content, surviving pre-existing
	// leaves their batch suffix — each entry written exactly once. Stores
	// that can read the arena by index copy/encode each entry straight from
	// it; otherwise a scratch buffer materializes each leaf's indices back
	// into entries (stores copy or encode what they are handed, so one
	// buffer serves every leaf).
	ia, hasIA := store.(indexedAppender)
	var dirty []*bulkLeaf // pre-existing buckets needing rollback on abort
	for _, bl := range b.leaves {
		if !bl.n.isLeaf() {
			continue // split away; content moved to descendants
		}
		if len(bl.items) == 0 {
			t.refreshPin(bl.n)
			continue
		}
		if !bl.isNew {
			dirty = append(dirty, bl)
		}
		var err error
		if hasIA {
			err = ia.appendIndexed(bl.n.bucket, b.arena, bl.items)
		} else {
			b.scratch = b.scratch[:0]
			for _, idx := range bl.items {
				b.scratch = append(b.scratch, b.arena[idx])
			}
			err = appendAll(store, bl.n.bucket, b.scratch)
		}
		if err != nil {
			return b.abort(err, dirty), nil
		}
		t.refreshPin(bl.n)
	}

	// 3. Point of no return: pin each split-away source's old content for
	// readers of previously published snapshots, then retire its bucket.
	for _, f := range b.frees {
		full := f.view
		f.pin.v.Store(&full)
		if err := store.Free(f.bucket); err != nil && freeErr == nil {
			freeErr = err
		}
	}
	return nil, freeErr
}

// abort rolls the build back after a store failure: free what was
// materialized, restore pre-existing buckets that already took their batch
// suffix (pin first, so published readers never notice), and rewind the
// sequence cursor. The caller deletes the batch's provisional loc records.
// Returns cause for convenience.
func (b *bulkTxn) abort(cause error, dirty []*bulkLeaf) error {
	t := b.t
	store := t.ix.store
	for _, bl := range b.events {
		if bl.n.isLeaf() && bl.n.bucket != 0 {
			store.Free(bl.n.bucket) // best effort
		}
	}
	for _, bl := range dirty {
		// The bucket's first oldN entries are its pre-batch content
		// (appends strictly extend). Pin them, then rewrite the bucket back
		// to exactly that; the Replace bumps the content era, which sends
		// published node versions to the pin.
		v, err := store.View(bl.n.bucket)
		if err != nil || len(v) < bl.oldN {
			continue // best effort; the store is already failing
		}
		old := v[:bl.oldN]
		bl.n.pin.v.Store(&old)
		store.Replace(bl.n.bucket, old)
	}
	t.ix.nextSeq = b.seq0
	return cause
}

// ghostCreate burns one bucket ID. Stores without the fast path pay a
// Create+Free pair, which leaves the same net state.
func ghostCreate(s BucketStore) error {
	if g, ok := s.(ghostAllocator); ok {
		return g.createGhost()
	}
	id, err := s.Create()
	if err != nil {
		return err
	}
	return s.Free(id)
}

// appendAll appends entries to one bucket, batching when the store can.
func appendAll(s BucketStore, id BucketID, entries []Entry) error {
	if len(entries) == 0 {
		return nil
	}
	if ba, ok := s.(batchAppender); ok {
		return ba.appendBatch(id, entries)
	}
	for i := range entries {
		if err := s.Append(id, entries[i]); err != nil {
			return err
		}
	}
	return nil
}
