package mindex

// Mutation machinery for the RCU read path. Every mutator serializes on
// Index.wmu, builds its changes on path-copied nodes inside a txn, and
// publishes the result as a fresh immutable readState with one atomic
// store. The txn keeps the under-construction state consistent after every
// store operation, so a mutation that fails halfway can still publish
// (partial but coherent) progress instead of corrupting the tree — e.g. a
// failed split leaves a consistent overfull leaf behind.

import (
	"fmt"
	"slices"
	"sort"
)

// txn is one mutation transaction: a private, mutable view of the index
// state. Nodes reachable from the published snapshot are never written;
// mutable() clones them on first touch (path copying) and remembers the
// clones so later steps of the same transaction can mutate them in place.
type txn struct {
	ix   *Index
	root *node
	size int
	dead int
	// tomb aliases the published tombstone map until tombMutable clones it
	// (copy-on-write: most transactions never touch tombstones).
	tomb      map[uint64]struct{}
	tombOwned bool
	// loc is the entry-location map this transaction maintains — the
	// writer-private ix.loc for ordinary mutations, a fresh map for the
	// Compact rebuild.
	loc map[uint64]entryLoc
	// gen is this transaction's ownership stamp: a node whose gen matches
	// was cloned or created by this transaction and may be mutated in
	// place. Generations are handed out monotonically under wmu, so a
	// published node (stamped by some earlier transaction) can never match
	// — the stamp replaces a per-txn clone set and its map lookup on every
	// path descent.
	gen uint64
}

// begin opens a transaction over the currently published snapshot. Callers
// hold wmu and have run ensureLoc.
func (ix *Index) begin() *txn {
	st := ix.state.Load()
	ix.txnGen++
	return &txn{
		ix:   ix,
		root: st.root,
		size: st.size,
		dead: st.dead,
		tomb: st.tombstones,
		loc:  ix.loc,
		gen:  ix.txnGen,
	}
}

// commit publishes the transaction's state as the new snapshot. Everything
// reachable from it is immutable from this moment on.
func (t *txn) commit() {
	t.ix.state.Store(&readState{root: t.root, size: t.size, dead: t.dead, tombstones: t.tomb})
}

// tombMutable returns a tombstone map the transaction owns and may mutate.
func (t *txn) tombMutable() map[uint64]struct{} {
	if !t.tombOwned {
		m := make(map[uint64]struct{}, len(t.tomb)+1)
		for id := range t.tomb {
			m[id] = struct{}{}
		}
		t.tomb = m
		t.tombOwned = true
	}
	return t.tomb
}

// mutable returns a node the transaction owns: n itself when it was already
// cloned (or created) by this transaction, otherwise a shallow path-copy
// clone. The clone shares the pin cell with the original — they describe
// the same bucket content era.
func (t *txn) mutable(n *node) *node {
	if n.gen == t.gen {
		return n
	}
	c := &node{
		prefix:      n.prefix,
		bucket:      n.bucket,
		era:         n.era,
		pin:         n.pin,
		count:       n.count,
		dead:        n.dead,
		rmin:        n.rmin,
		rmax:        n.rmax,
		boundsValid: n.boundsValid,
		gen:         t.gen,
	}
	if n.kids != nil {
		c.kids = slices.Clone(n.kids)
	}
	return c
}

// fresh registers a node created by this transaction as owned.
func (t *txn) fresh(n *node) *node {
	n.gen = t.gen
	return n
}

// pathTo clones the nodes along prefix — which must address an existing
// leaf — and returns the owned path, root first, leaf last.
func (t *txn) pathTo(prefix []int32) ([]*node, error) {
	t.root = t.mutable(t.root)
	n := t.root
	path := make([]*node, 0, len(prefix)+1)
	path = append(path, n)
	for n.level() < len(prefix) {
		key := prefix[n.level()]
		c := n.child(key)
		if c == nil {
			return nil, fmt.Errorf("mindex: no cell at prefix %v", prefix)
		}
		c = t.mutable(c)
		n.setKid(key, c)
		n = c
		path = append(path, n)
	}
	if !n.isLeaf() {
		return nil, fmt.Errorf("mindex: prefix %v addresses an internal cell", prefix)
	}
	return path, nil
}

// refreshPin re-pins a leaf's current full bucket view into its cell.
// Only eager-pinning storage (memory) does this on every content change;
// it is what lets memory-backed searches never touch the store at all.
func (t *txn) refreshPin(n *node) {
	if !t.ix.eagerPin {
		return
	}
	v, err := t.ix.store.View(n.bucket)
	if err != nil {
		return // unreachable for MemStore on a live bucket
	}
	n.pin.v.Store(&v)
}

// updateBounds maintains the node's ball bounds from the entry's distance
// vector; entries without distances invalidate the bounds (the cell can then
// no longer be ball-pruned, but remains correct).
func (n *node) updateBounds(e *Entry) {
	p := n.lastPivot()
	if p < 0 {
		return
	}
	if e.Dists == nil {
		n.boundsValid = false
		return
	}
	d := e.Dists[p]
	if n.count == 1 {
		n.rmin, n.rmax = d, d
		return
	}
	if d < n.rmin {
		n.rmin = d
	}
	if d > n.rmax {
		n.rmax = d
	}
}

// insertEntry is the full insert protocol: reject live duplicates, purge a
// tombstoned twin, then file the entry.
func (t *txn) insertEntry(e Entry) error {
	if _, ok := t.loc[e.ID]; ok {
		if _, gone := t.tomb[e.ID]; !gone {
			return fmt.Errorf("%w: %d", ErrDuplicateID, e.ID)
		}
		if err := t.purge(e.ID); err != nil {
			return err
		}
	}
	return t.insert(e)
}

// insert files e into its leaf cell (the server side of the paper's insert
// operation, Figure 4): descend by the permutation prefix cloning the path,
// append to the leaf bucket, split on overflow. Bookkeeping (counts,
// bounds, loc, size) is only touched after the append succeeded, so a
// failed insert leaves the transaction state unchanged.
func (t *txn) insert(e Entry) error {
	t.root = t.mutable(t.root)
	n := t.root
	path := make([]*node, 0, t.ix.cfg.MaxLevel+1)
	path = append(path, n)
	for !n.isLeaf() {
		key := e.Perm[n.level()]
		c := n.child(key)
		if c == nil {
			b, err := t.ix.store.Create()
			if err != nil {
				return err
			}
			c = t.fresh(&node{
				prefix:      appendPrefix(n.prefix, key),
				bucket:      b,
				pin:         &pinCell{},
				boundsValid: true,
			})
			if e.Dists != nil {
				c.rmin, c.rmax = e.Dists[key], e.Dists[key]
			}
			n.addKid(key, c)
		} else {
			c = t.mutable(c)
			n.setKid(key, c)
		}
		n = c
		path = append(path, n)
	}
	if err := t.ix.store.Append(n.bucket, e); err != nil {
		return err
	}
	for _, pn := range path {
		pn.count++
		pn.updateBounds(&e)
	}
	t.refreshPin(n)
	t.loc[e.ID] = entryLoc{prefix: n.prefix, seq: t.ix.nextSeq}
	t.ix.nextSeq++
	t.size++
	overflow := n.count > t.ix.cfg.BucketCapacity ||
		(t.ix.cfg.EagerRootSplit && n.level() == 0)
	if overflow && n.level() < t.ix.cfg.MaxLevel {
		return t.split(n)
	}
	return nil
}

// split turns an overflowing leaf into an internal node, redistributing its
// bucket by the next permutation element — the recursive Voronoi step. The
// children are fully built beside the leaf first; only once they are
// complete is the old content pinned for published readers, the old bucket
// freed and the leaf converted. A failure before that point frees the
// half-built children and leaves a consistent overfull leaf.
func (t *txn) split(n *node) error {
	view, err := t.ix.leafView(n)
	if err != nil {
		return err
	}
	level := n.level()
	var kids []child
	var created []BucketID
	fail := func(err error) error {
		for _, b := range created {
			t.ix.store.Free(b)
		}
		return err
	}
	childFor := func(key int32) (*node, error) {
		for i := range kids {
			if kids[i].key == key {
				return kids[i].n, nil
			}
		}
		b, err := t.ix.store.Create()
		if err != nil {
			return nil, err
		}
		created = append(created, b)
		c := t.fresh(&node{
			prefix:      appendPrefix(n.prefix, key),
			bucket:      b,
			pin:         &pinCell{},
			boundsValid: true,
		})
		i := len(kids)
		kids = append(kids, child{key: key, n: c})
		for ; i > 0 && key < kids[i-1].key; i-- {
			kids[i] = kids[i-1]
		}
		kids[i] = child{key: key, n: c}
		return c, nil
	}
	for _, e := range view {
		c, err := childFor(e.Perm[level])
		if err != nil {
			return fail(err)
		}
		if err := t.ix.store.Append(c.bucket, e); err != nil {
			return fail(err)
		}
		c.count++
		if _, gone := t.tomb[e.ID]; gone {
			c.dead++
		}
		c.updateBounds(&e)
	}
	// Point of no return: pin the old content for readers of previously
	// published versions of this leaf (they share the cell), then retire
	// the bucket and convert the leaf.
	full := view
	n.pin.v.Store(&full)
	freeErr := t.ix.store.Free(n.bucket)
	n.kids = kids
	n.bucket = 0
	n.era = 0
	n.pin = nil
	for i := range n.kids {
		t.refreshPin(n.kids[i].n)
	}
	for _, e := range view {
		if l, ok := t.loc[e.ID]; ok {
			l.prefix = n.child(e.Perm[level]).prefix
			t.loc[e.ID] = l
		}
	}
	if freeErr != nil {
		return freeErr
	}
	// A pathological split can put everything into one child (all objects
	// share the next permutation element); recurse so capacity is restored
	// where possible.
	for i := range n.kids {
		c := n.kids[i].n
		if c.count > t.ix.cfg.BucketCapacity && c.level() < t.ix.cfg.MaxLevel {
			if err := t.split(c); err != nil {
				return err
			}
		}
	}
	return nil
}

func appendPrefix(prefix []int32, key int32) []int32 {
	out := make([]int32, len(prefix)+1)
	copy(out, prefix)
	out[len(prefix)] = key
	return out
}

// purge physically removes the tombstoned entry id from its bucket and
// repairs the count/dead bookkeeping along its path. The old bucket content
// is pinned for published readers before the Replace destroys it; the new
// leaf version starts a fresh content era with its own cell.
func (t *txn) purge(id uint64) error {
	l := t.loc[id]
	path, err := t.pathTo(l.prefix)
	if err != nil {
		return err
	}
	n := path[len(path)-1]
	view, err := t.ix.leafView(n)
	if err != nil {
		return err
	}
	// The view is read-only — survivors are gathered into a fresh slice
	// instead of compacting in place.
	kept := make([]Entry, 0, len(view))
	removed := 0
	for _, e := range view {
		if e.ID == id {
			removed++
			continue
		}
		kept = append(kept, e)
	}
	if removed > 0 {
		full := view
		n.pin.v.Store(&full)
		if err := t.ix.store.Replace(n.bucket, kept); err != nil {
			return err
		}
		n.era++ // DiskStore.Replace bumped the store-side era in lockstep
		n.pin = &pinCell{}
		t.refreshPin(n)
		for _, pn := range path {
			pn.count -= removed
			pn.dead -= removed
		}
		t.dead -= removed
	}
	delete(t.tombMutable(), id)
	delete(t.loc, id)
	t.ix.dirty = true
	return nil
}

// delete tombstones the given IDs; unknown or already-tombstoned IDs are
// skipped. Returns the number actually deleted.
func (t *txn) delete(ids []uint64) (int, error) {
	deleted := 0
	for _, id := range ids {
		l, ok := t.loc[id]
		if !ok {
			continue
		}
		if _, gone := t.tomb[id]; gone {
			continue
		}
		path, err := t.pathTo(l.prefix)
		if err != nil {
			return deleted, err
		}
		t.tombMutable()[id] = struct{}{}
		for _, pn := range path {
			pn.dead++
		}
		t.size--
		t.dead++
		t.ix.dirty = true
		deleted++
	}
	return deleted, nil
}

// resurrect undoes a tombstone set earlier in this transaction when the
// entry is still physically present (Update's failed-insert recovery).
func (t *txn) resurrect(id uint64) {
	l, ok := t.loc[id]
	if !ok {
		return
	}
	if _, gone := t.tomb[id]; !gone {
		return
	}
	path, err := t.pathTo(l.prefix)
	if err != nil {
		return
	}
	delete(t.tombMutable(), id)
	for _, pn := range path {
		pn.dead--
	}
	t.size++
	t.dead--
}

// Insert adds an entry to the index. Inserting an ID that is live fails
// with ErrDuplicateID; inserting an ID that is tombstoned first purges the
// dead record, so at most one physical entry ever carries a given ID.
func (ix *Index) Insert(e Entry) error {
	if err := ix.CheckEntry(e); err != nil {
		return err
	}
	ix.wmu.Lock()
	defer ix.wmu.Unlock()
	if err := ix.ensureLoc(); err != nil {
		return err
	}
	t := ix.begin()
	err := t.insertEntry(e)
	// Publish even on error: the transaction is consistent after every
	// store operation (a failed split, for instance, leaves a valid
	// overfull leaf that the entry was appended to).
	t.commit()
	if err == nil {
		ix.ingestEntries.Add(1)
		ix.ingestBytes.Add(uint64(EncodedEntrySize(e)))
	}
	return err
}

// InsertBulk inserts a batch of entries under one transaction — the unit
// the construction-phase experiments measure (bulk size 1,000 in the
// paper). The batch is published as one snapshot, so concurrent readers see
// it atomically.
//
// Batches of at least bulkMinBatch entries take the bottom-up builder path
// (see bulk.go): the final tree is planned first and every entry is written
// to the store exactly once, skipping the per-split re-append churn of the
// incremental path. The published snapshot is byte-identical to the
// incremental result for the same arrival order. Small batches — and
// batches re-inserting tombstoned IDs, which need the purge protocol — use
// the incremental path; on error there the entries inserted so far are
// published and the failing entry reported, while the builder path is
// all-or-nothing on store failure.
func (ix *Index) InsertBulk(entries []Entry) error {
	ix.wmu.Lock()
	defer ix.wmu.Unlock()
	if err := ix.ensureLoc(); err != nil {
		return err
	}
	if ix.bulkEligible(entries) {
		return ix.insertBulkBuilt(entries)
	}
	return ix.insertBulkIncremental(entries)
}

// insertBulkIncremental is the entry-at-a-time bulk path: every entry goes
// through the full insert protocol (append, then split on overflow). It is
// the reference implementation the builder path is equivalence-tested
// against. Callers hold wmu and have run ensureLoc.
func (ix *Index) insertBulkIncremental(entries []Entry) error {
	t := ix.begin()
	for i := range entries {
		err := ix.CheckEntry(entries[i])
		if err == nil {
			err = t.insertEntry(entries[i])
		}
		if err != nil {
			t.commit()
			ix.recordIngest(entries, i, false)
			return fmt.Errorf("mindex: bulk insert entry %d: %w", i, err)
		}
	}
	t.commit()
	ix.recordIngest(entries, len(entries), false)
	return nil
}

// Delete tombstones the entries with the given IDs: they vanish from every
// search as soon as the transaction publishes, and Compact later reclaims
// their storage. IDs that are unknown or already tombstoned are skipped;
// the count of entries actually deleted is returned.
func (ix *Index) Delete(ids []uint64) (int, error) {
	ix.wmu.Lock()
	defer ix.wmu.Unlock()
	if err := ix.ensureLoc(); err != nil {
		return 0, err
	}
	t := ix.begin()
	deleted, err := t.delete(ids)
	t.commit()
	return deleted, err
}

// Update replaces the entry carrying e.ID with e — the delete + re-insert
// of a mutable similarity cloud, performed inside one transaction: the
// single snapshot publication means no search ever observes the entry
// absent, and concurrent Updates of the same ID serialize instead of
// tripping over each other's tombstones. The old record (which may live in
// a different cell when the object moved in pivot space) is tombstoned and
// physically purged before the fresh entry is filed; an unknown ID makes
// Update a plain insert. The replacement is validated first, so an invalid
// e leaves the existing record untouched.
func (ix *Index) Update(e Entry) error {
	if err := ix.CheckEntry(e); err != nil {
		return err
	}
	ix.wmu.Lock()
	defer ix.wmu.Unlock()
	if err := ix.ensureLoc(); err != nil {
		return err
	}
	t := ix.begin()
	tombstoned, err := t.delete([]uint64{e.ID})
	if err != nil {
		t.commit()
		return err
	}
	if err := t.insertEntry(e); err != nil {
		// Resurrect the old record when it is still physically present
		// (the tombstone is pure bookkeeping until a purge or compaction
		// touches the bucket), so a failed insert does not destroy the
		// entry it was meant to replace.
		if tombstoned == 1 {
			t.resurrect(e.ID)
		}
		t.commit()
		return err
	}
	t.commit()
	return nil
}

// ensureLoc builds the entry-location map when it is missing (after a
// snapshot restore). Queries never need it; the first mutation pays one
// walk over all buckets. Sequence numbers are assigned in deterministic
// tree order (preorder, children by ascending key, bucket order), so a
// later Compact rebuilds restored entries in that same order. Callers hold
// wmu.
func (ix *Index) ensureLoc() error {
	if ix.loc != nil {
		return nil
	}
	st := ix.state.Load()
	loc := make(map[uint64]entryLoc, st.size+st.dead)
	var walk func(n *node) error
	walk = func(n *node) error {
		if n.isLeaf() {
			entries, err := ix.leafView(n)
			if err != nil {
				return err
			}
			for _, e := range entries {
				loc[e.ID] = entryLoc{prefix: n.prefix, seq: ix.nextSeq}
				ix.nextSeq++
			}
			return nil
		}
		for i := range n.kids {
			if err := walk(n.kids[i].n); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(st.root); err != nil {
		return err
	}
	ix.loc = loc
	return nil
}

// Compact physically drops every tombstoned entry and merges underfull
// cells back into their parents by rebuilding the cell tree from the
// surviving entries in arrival order. The post-compaction index is
// byte-identical — tree shape, ball bounds, bucket order, and therefore
// every range candidate set and ranked approximate candidate list — to a
// fresh index into which only the survivors were inserted (in their
// original arrival order). A no-op on an index untouched by deletions.
//
// The rebuild happens entirely beside the published tree: readers keep
// traversing the old snapshot until the one atomic publication at the end,
// and the old leaves' bucket views are pinned before the old buckets are
// freed, so even searches that started long before the compaction finish
// on a complete, consistent image.
func (ix *Index) Compact() error {
	ix.wmu.Lock()
	defer ix.wmu.Unlock()
	if !ix.dirty {
		return nil
	}
	if err := ix.ensureLoc(); err != nil {
		return err
	}
	st := ix.state.Load()
	// Gather the survivors without touching the live tree, so any error
	// up to the final publication leaves the pre-compact index intact.
	type seqEntry struct {
		e   Entry
		seq uint64
	}
	type oldLeaf struct {
		n    *node
		view []Entry
	}
	live := make([]seqEntry, 0, st.size)
	var olds []oldLeaf
	var gather func(n *node) error
	gather = func(n *node) error {
		if n.isLeaf() {
			view, err := ix.leafView(n)
			if err != nil {
				return err
			}
			olds = append(olds, oldLeaf{n: n, view: view})
			for _, e := range view {
				if _, gone := st.tombstones[e.ID]; gone {
					continue
				}
				live = append(live, seqEntry{e: e, seq: ix.loc[e.ID].seq})
			}
			return nil
		}
		for i := range n.kids {
			if err := gather(n.kids[i].n); err != nil {
				return err
			}
		}
		return nil
	}
	if err := gather(st.root); err != nil {
		return err
	}
	sort.Slice(live, func(i, j int) bool { return live[i].seq < live[j].seq })

	// Rebuild into fresh buckets beside the published tree, through the
	// same insert machinery a fresh index would use. On any failure the
	// new buckets are released (best effort) and nothing was published —
	// the index is untouched.
	rootBucket, err := ix.store.Create()
	if err != nil {
		return err
	}
	ix.txnGen++
	b := &txn{
		ix:   ix,
		tomb: make(map[uint64]struct{}),
		loc:  make(map[uint64]entryLoc, len(live)),
		gen:  ix.txnGen,
	}
	b.tombOwned = true
	b.root = b.fresh(&node{bucket: rootBucket, pin: &pinCell{}, boundsValid: true})
	for _, se := range live {
		if err := b.insert(se.e); err != nil {
			ix.freeSubtreeBuckets(b.root)
			return err
		}
	}
	// Pin every old leaf's content for searches still traversing previous
	// snapshots, publish the rebuilt tree, then retire the old buckets. A
	// failing Free leaks the bucket but the rebuilt index is already fully
	// consistent, so the error is reported without rolling anything back.
	for i := range olds {
		o := olds[i]
		o.n.pin.v.Store(&o.view)
	}
	ix.loc = b.loc
	ix.dirty = false
	b.commit()
	var firstErr error
	for i := range olds {
		if err := ix.store.Free(olds[i].n.bucket); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// freeSubtreeBuckets releases every bucket of a partially built subtree
// during a Compact rollback; errors are ignored (best effort on an
// already-failing path).
func (ix *Index) freeSubtreeBuckets(n *node) {
	if n == nil {
		return
	}
	if n.isLeaf() {
		ix.store.Free(n.bucket)
		return
	}
	for i := range n.kids {
		ix.freeSubtreeBuckets(n.kids[i].n)
	}
}
