package mindex

import (
	"math/rand/v2"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"

	"simcloud/internal/dataset"
	"simcloud/internal/metric"
	"simcloud/internal/pivot"
)

// buildDisk creates a disk-backed plain index over a clustered collection.
func buildDisk(t *testing.T, dir string, seed uint64, n int) (*Plain, *dataset.Dataset) {
	t.Helper()
	ds := dataset.Clustered(seed, n, 5, 6, metric.L2{})
	rng := rand.New(rand.NewPCG(seed, 9))
	pv := pivot.SelectRandom(rng, ds.Dist, ds.Objects, 8)
	cfg := testConfig(8)
	cfg.Storage = StorageDisk
	cfg.DiskPath = dir
	p, err := NewPlain(cfg, pv)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.InsertBulk(ds.Objects); err != nil {
		t.Fatal(err)
	}
	return p, ds
}

func TestSnapshotRoundTrip(t *testing.T) {
	dir := t.TempDir()
	snap := filepath.Join(t.TempDir(), "index.snap")
	p, ds := buildDisk(t, dir, 61, 900)
	origStats := p.Idx.TreeStats()

	// Reference answers before shutdown.
	q := ds.Objects[17].Vec
	wantRange, err := p.Idx.RangeByDists(p.Pivots.Distances(q), 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Idx.SaveSnapshot(snap); err != nil {
		t.Fatal(err)
	}
	if err := p.Idx.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart: reattach from the snapshot.
	cfg := testConfig(8)
	cfg.Storage = StorageDisk
	cfg.DiskPath = dir
	idx, err := LoadSnapshot(cfg, snap)
	if err != nil {
		t.Fatal(err)
	}
	defer idx.Close()
	if idx.Size() != 900 {
		t.Fatalf("restored size = %d", idx.Size())
	}
	st := idx.TreeStats()
	if st != origStats {
		t.Fatalf("restored stats %+v != original %+v", st, origStats)
	}
	gotRange, err := idx.RangeByDists(p.Pivots.Distances(q), 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(gotRange) != len(wantRange) {
		t.Fatalf("restored range: %d candidates, want %d", len(gotRange), len(wantRange))
	}
	wantIDs := map[uint64]bool{}
	for _, e := range wantRange {
		wantIDs[e.ID] = true
	}
	for _, e := range gotRange {
		if !wantIDs[e.ID] {
			t.Fatalf("restored range returned unexpected entry %d", e.ID)
		}
	}
}

func TestSnapshotSupportsFurtherInserts(t *testing.T) {
	dir := t.TempDir()
	snap := filepath.Join(t.TempDir(), "index.snap")
	p, ds := buildDisk(t, dir, 62, 400)
	if err := p.Idx.SaveSnapshot(snap); err != nil {
		t.Fatal(err)
	}
	if err := p.Idx.Close(); err != nil {
		t.Fatal(err)
	}

	cfg := testConfig(8)
	cfg.Storage = StorageDisk
	cfg.DiskPath = dir
	idx, err := LoadSnapshot(cfg, snap)
	if err != nil {
		t.Fatal(err)
	}
	defer idx.Close()

	// Insert more objects through the restored index; splits must work
	// (fresh bucket IDs must not collide with pre-restart buckets).
	pv := p.Pivots
	more := dataset.Clustered(63, 400, 5, 6, metric.L2{})
	for _, o := range more.Objects {
		dists := pv.Distances(o.Vec)
		if err := idx.Insert(Entry{
			ID:    o.ID + 10000,
			Perm:  pivot.Permutation(dists),
			Dists: dists,
			Vec:   o.Vec,
		}); err != nil {
			t.Fatal(err)
		}
	}
	if idx.Size() != 800 {
		t.Fatalf("size after further inserts = %d", idx.Size())
	}
	all, err := idx.AllEntries()
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 800 {
		t.Fatalf("AllEntries after restore+insert = %d", len(all))
	}
	seen := map[uint64]bool{}
	for _, e := range all {
		if seen[e.ID] {
			t.Fatalf("duplicate entry %d after restore", e.ID)
		}
		seen[e.ID] = true
	}
	_ = ds
}

// TestSnapshotTombstoneRoundTrip: a snapshot taken after deletions must
// carry the tombstone set — the restored index keeps hiding the deleted
// entries, keeps refusing duplicate IDs, and still compacts.
func TestSnapshotTombstoneRoundTrip(t *testing.T) {
	dir := t.TempDir()
	snap := filepath.Join(t.TempDir(), "index.snap")
	p, ds := buildDisk(t, dir, 68, 700)
	pv := p.Pivots

	gone := map[uint64]bool{}
	var victims []uint64
	for i := 0; i < 700; i += 4 {
		victims = append(victims, ds.Objects[i].ID)
		gone[ds.Objects[i].ID] = true
	}
	if _, err := p.Idx.Delete(victims); err != nil {
		t.Fatal(err)
	}
	origStats := p.Idx.TreeStats()
	if err := p.Idx.SaveSnapshot(snap); err != nil {
		t.Fatal(err)
	}
	if err := p.Idx.Close(); err != nil {
		t.Fatal(err)
	}

	cfg := testConfig(8)
	cfg.Storage = StorageDisk
	cfg.DiskPath = dir
	idx, err := LoadSnapshot(cfg, snap)
	if err != nil {
		t.Fatal(err)
	}
	defer idx.Close()
	if idx.Size() != 700-len(victims) || idx.Dead() != len(victims) {
		t.Fatalf("restored size/dead = %d/%d, want %d/%d",
			idx.Size(), idx.Dead(), 700-len(victims), len(victims))
	}
	if st := idx.TreeStats(); st != origStats {
		t.Fatalf("restored stats %+v != original %+v", st, origStats)
	}

	// Tombstoned entries stay invisible after the restart.
	cands, err := idx.RangeByDists(pv.Distances(ds.Objects[2].Vec), 1e9)
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) != idx.Size() {
		t.Fatalf("restored range returned %d candidates, want %d", len(cands), idx.Size())
	}
	for _, e := range cands {
		if gone[e.ID] {
			t.Fatalf("restored index surfaced deleted entry %d", e.ID)
		}
	}

	// Mutations after restore rebuild the location map from the buckets:
	// live duplicates are still rejected, tombstoned IDs re-insert, and
	// further deletes work.
	liveID := ds.Objects[1].ID
	dists := pv.Distances(ds.Objects[1].Vec)
	dup := Entry{ID: liveID, Perm: pivot.Permutation(dists), Dists: dists}
	if err := idx.Insert(dup); err == nil {
		t.Fatal("restored index accepted a live duplicate ID")
	}
	reDists := pv.Distances(ds.Objects[0].Vec)
	re := Entry{ID: ds.Objects[0].ID, Perm: pivot.Permutation(reDists), Dists: reDists}
	if err := idx.Insert(re); err != nil {
		t.Fatalf("re-insert of tombstoned ID after restore: %v", err)
	}
	if n, err := idx.Delete([]uint64{liveID}); err != nil || n != 1 {
		t.Fatalf("delete after restore = %d, %v", n, err)
	}

	// Compaction after restore drops every tombstone.
	if err := idx.Compact(); err != nil {
		t.Fatal(err)
	}
	if idx.Dead() != 0 {
		t.Fatalf("dead = %d after post-restore compact", idx.Dead())
	}
	want := 700 - len(victims) + 1 - 1 // re-inserted one victim, deleted one live
	if idx.Size() != want {
		t.Fatalf("size after compact = %d, want %d", idx.Size(), want)
	}
	all, err := idx.AllEntries()
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != want {
		t.Fatalf("AllEntries after compact = %d, want %d", len(all), want)
	}

	// And the compacted state snapshots and restores again (version 2
	// with an empty tombstone set).
	snap2 := filepath.Join(t.TempDir(), "index2.snap")
	if err := idx.SaveSnapshot(snap2); err != nil {
		t.Fatal(err)
	}
	if err := idx.Close(); err != nil {
		t.Fatal(err)
	}
	idx2, err := LoadSnapshot(cfg, snap2)
	if err != nil {
		t.Fatal(err)
	}
	defer idx2.Close()
	if idx2.Size() != want || idx2.Dead() != 0 {
		t.Fatalf("second restore size/dead = %d/%d, want %d/0", idx2.Size(), idx2.Dead(), want)
	}
}

func TestSnapshotRejectsMemoryStore(t *testing.T) {
	idx, err := New(testConfig(6))
	if err != nil {
		t.Fatal(err)
	}
	defer idx.Close()
	if err := idx.SaveSnapshot(filepath.Join(t.TempDir(), "x.snap")); err == nil {
		t.Fatal("memory-store snapshot accepted")
	}
	cfg := testConfig(6)
	if _, err := LoadSnapshot(cfg, "nonexistent"); err == nil {
		t.Fatal("memory-store load accepted")
	}
}

func TestSnapshotRejectsConfigMismatch(t *testing.T) {
	dir := t.TempDir()
	snap := filepath.Join(t.TempDir(), "index.snap")
	p, _ := buildDisk(t, dir, 64, 200)
	if err := p.Idx.SaveSnapshot(snap); err != nil {
		t.Fatal(err)
	}
	p.Idx.Close()

	cfg := testConfig(8)
	cfg.Storage = StorageDisk
	cfg.DiskPath = dir
	cfg.BucketCapacity = 999 // mismatch
	if _, err := LoadSnapshot(cfg, snap); err == nil {
		t.Fatal("mismatched config accepted")
	}
}

func TestSnapshotRejectsCorruption(t *testing.T) {
	dir := t.TempDir()
	snap := filepath.Join(t.TempDir(), "index.snap")
	p, _ := buildDisk(t, dir, 65, 300)
	if err := p.Idx.SaveSnapshot(snap); err != nil {
		t.Fatal(err)
	}
	p.Idx.Close()

	cfg := testConfig(8)
	cfg.Storage = StorageDisk
	cfg.DiskPath = dir

	raw, err := os.ReadFile(snap)
	if err != nil {
		t.Fatal(err)
	}
	// Truncations at various points must all be rejected.
	for _, cut := range []int{3, 9, 20, len(raw) / 2, len(raw) - 1} {
		bad := filepath.Join(t.TempDir(), "bad.snap")
		if err := os.WriteFile(bad, raw[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := LoadSnapshot(cfg, bad); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	// Bad magic.
	mangled := append([]byte{}, raw...)
	mangled[0] = 'X'
	bad := filepath.Join(t.TempDir(), "badmagic.snap")
	os.WriteFile(bad, mangled, 0o644)
	if _, err := LoadSnapshot(cfg, bad); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestSnapshotRejectsMissingBucketFiles(t *testing.T) {
	dir := t.TempDir()
	snap := filepath.Join(t.TempDir(), "index.snap")
	p, _ := buildDisk(t, dir, 66, 300)
	if err := p.Idx.SaveSnapshot(snap); err != nil {
		t.Fatal(err)
	}
	p.Idx.Close()

	// Delete one bucket file behind the snapshot's back.
	files, err := filepath.Glob(filepath.Join(dir, "bucket-*.bin"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no bucket files: %v", err)
	}
	if err := os.Remove(files[0]); err != nil {
		t.Fatal(err)
	}
	cfg := testConfig(8)
	cfg.Storage = StorageDisk
	cfg.DiskPath = dir
	if _, err := LoadSnapshot(cfg, snap); err == nil {
		t.Fatal("missing bucket file not detected")
	}
}

func TestWriteDot(t *testing.T) {
	p, _ := buildDisk(t, t.TempDir(), 67, 300)
	defer p.Idx.Close()
	var b strings.Builder
	if err := p.Idx.WriteDot(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.HasPrefix(out, "digraph mindex {") || !strings.HasSuffix(out, "}\n") {
		t.Fatalf("not a digraph:\n%.120s", out)
	}
	st := p.Idx.TreeStats()
	if got := strings.Count(out, "shape=box"); got != st.Leaves {
		t.Fatalf("dot shows %d leaves, tree has %d", got, st.Leaves)
	}
	if got := strings.Count(out, "->"); got != st.Leaves+st.InnerNodes-1 {
		t.Fatalf("dot shows %d edges, want %d", got, st.Leaves+st.InnerNodes-1)
	}
}

// TestRestorePrewarmsLocMap pins the eager loc-map rebuild during restore:
// LoadSnapshot walks the buckets up front, so the first post-restore
// mutation pays a steady-state insert, not a whole-index rebuild. The
// structural half asserts the map exists (covering live and tombstoned
// entries) before any mutation; the latency half asserts the first
// mutation after restore is within noise of the steady-state median, with
// a generous multiplier so scheduler jitter cannot fail it.
func TestRestorePrewarmsLocMap(t *testing.T) {
	const n = 4000
	entries, _, _ := testEntries(t, 71, n+64, 8)
	batch, extra := entries[:n], entries[n:]
	dir := t.TempDir()
	snap := filepath.Join(t.TempDir(), "index.snap")
	cfg := testConfig(8)
	cfg.Storage = StorageDisk
	cfg.DiskPath = dir
	ix := mustIndex(t, cfg)
	if err := ix.InsertBulk(batch); err != nil {
		t.Fatal(err)
	}
	victims := []uint64{batch[3].ID, batch[77].ID, batch[1234].ID}
	if _, err := ix.Delete(victims); err != nil {
		t.Fatal(err)
	}
	if err := ix.SaveSnapshot(snap); err != nil {
		t.Fatal(err)
	}
	if err := ix.Close(); err != nil {
		t.Fatal(err)
	}

	ix2, err := LoadSnapshot(cfg, snap)
	if err != nil {
		t.Fatal(err)
	}
	defer ix2.Close()
	if ix2.loc == nil {
		t.Fatal("loc map not pre-warmed by LoadSnapshot")
	}
	if got := len(ix2.loc); got != n {
		t.Fatalf("pre-warmed loc holds %d entries, want %d (live+tombstoned)", got, n)
	}

	// First mutation after restore vs steady state: insert the reserved
	// entries one at a time and compare the first latency against the
	// median of the rest.
	lat := make([]time.Duration, len(extra))
	for i, e := range extra {
		start := time.Now()
		if err := ix2.Insert(e); err != nil {
			t.Fatal(err)
		}
		lat[i] = time.Since(start)
	}
	first := lat[0]
	rest := append([]time.Duration(nil), lat[1:]...)
	sort.Slice(rest, func(i, j int) bool { return rest[i] < rest[j] })
	median := rest[len(rest)/2]
	if limit := max(20*median, 5*time.Millisecond); first > limit {
		t.Errorf("first post-restore mutation took %v, steady-state median %v (limit %v)", first, median, limit)
	}
}
