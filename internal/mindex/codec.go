package mindex

import (
	"encoding/binary"
	"errors"
	"math"

	"simcloud/internal/metric"
)

// Entry wire/disk encoding (little endian):
//
//	id       uint64
//	permLen  uint16 | perm int32 × permLen
//	distsLen uint16 | dists float64 × distsLen
//	payLen   uint32 | payload bytes
//	vecLen   uint32 | vec float32 × vecLen
//
// The same encoding serves the disk bucket store and the client–server
// protocol, so the measured communication cost reflects exactly what the
// server persists.

// ErrCodec reports a malformed entry encoding.
var ErrCodec = errors.New("mindex: malformed entry encoding")

// EncodedEntrySize returns the exact encoded size of e in bytes.
func EncodedEntrySize(e Entry) int {
	return 8 + 2 + 4*len(e.Perm) + 2 + 8*len(e.Dists) + 4 + len(e.Payload) + 4 + 4*len(e.Vec)
}

// AppendEntry appends the encoding of e to dst and returns the result.
func AppendEntry(dst []byte, e Entry) []byte {
	dst = binary.LittleEndian.AppendUint64(dst, e.ID)
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(e.Perm)))
	for _, p := range e.Perm {
		dst = binary.LittleEndian.AppendUint32(dst, uint32(p))
	}
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(e.Dists)))
	for _, d := range e.Dists {
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(d))
	}
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(e.Payload)))
	dst = append(dst, e.Payload...)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(e.Vec)))
	for _, f := range e.Vec {
		dst = binary.LittleEndian.AppendUint32(dst, math.Float32bits(f))
	}
	return dst
}

// EncodeEntry returns the binary encoding of e.
func EncodeEntry(e Entry) []byte {
	return AppendEntry(make([]byte, 0, EncodedEntrySize(e)), e)
}

// DecodeEntry decodes one entry from the front of buf, returning the entry
// and the remaining bytes.
func DecodeEntry(buf []byte) (Entry, []byte, error) {
	var e Entry
	if len(buf) < 10 {
		return e, nil, ErrCodec
	}
	e.ID = binary.LittleEndian.Uint64(buf)
	buf = buf[8:]

	permLen := int(binary.LittleEndian.Uint16(buf))
	buf = buf[2:]
	if len(buf) < 4*permLen+2 {
		return e, nil, ErrCodec
	}
	if permLen > 0 {
		e.Perm = make([]int32, permLen)
		for i := range e.Perm {
			e.Perm[i] = int32(binary.LittleEndian.Uint32(buf[4*i:]))
		}
		buf = buf[4*permLen:]
	}

	distsLen := int(binary.LittleEndian.Uint16(buf))
	buf = buf[2:]
	if len(buf) < 8*distsLen+4 {
		return e, nil, ErrCodec
	}
	if distsLen > 0 {
		e.Dists = make([]float64, distsLen)
		for i := range e.Dists {
			e.Dists[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[8*i:]))
		}
		buf = buf[8*distsLen:]
	}

	payLen := int(binary.LittleEndian.Uint32(buf))
	buf = buf[4:]
	if len(buf) < payLen+4 {
		return e, nil, ErrCodec
	}
	if payLen > 0 {
		e.Payload = make([]byte, payLen)
		copy(e.Payload, buf[:payLen])
		buf = buf[payLen:]
	}

	vecLen := int(binary.LittleEndian.Uint32(buf))
	buf = buf[4:]
	if len(buf) < 4*vecLen {
		return e, nil, ErrCodec
	}
	if vecLen > 0 {
		e.Vec = make(metric.Vector, vecLen)
		for i := range e.Vec {
			e.Vec[i] = math.Float32frombits(binary.LittleEndian.Uint32(buf[4*i:]))
		}
		buf = buf[4*vecLen:]
	}
	return e, buf, nil
}
