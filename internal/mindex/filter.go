package mindex

import "fmt"

// PivotFilter restricts a search to the entries whose first permutation
// element — their first-level Voronoi cell — lies in an allowed set. A nil
// PivotFilter allows everything.
//
// The replicated cluster coordinator is the consumer: it assigns each
// first-level cell to exactly one live replica and sends every node a query
// filtered to its assigned cells, so each entry is counted by exactly one
// node no matter how many replicas store it. The filter applies at the top
// of the traversal — disallowed first-level subtrees are never visited, and
// on an unsplit root leaf the entries are filtered individually — before
// any candidate-size trimming, so a node's filtered candidate stream is
// byte-identical to what a node holding only the allowed cells would return.
type PivotFilter []bool

// NewPivotFilter builds a filter over numPivots first-level cells allowing
// exactly the listed pivots.
func NewPivotFilter(numPivots int, allowed []int32) (PivotFilter, error) {
	if numPivots <= 0 {
		return nil, fmt.Errorf("mindex: pivot filter needs a positive pivot count, got %d", numPivots)
	}
	f := make(PivotFilter, numPivots)
	for _, p := range allowed {
		if p < 0 || int(p) >= numPivots {
			return nil, fmt.Errorf("mindex: pivot filter element %d out of range [0, %d)", p, numPivots)
		}
		f[p] = true
	}
	return f, nil
}

// Allows reports whether first-level cell p passes the filter.
func (f PivotFilter) Allows(p int32) bool {
	return f == nil || (p >= 0 && int(p) < len(f) && f[p])
}

// allowsEntry reports whether e's first-level cell passes the filter.
func (f PivotFilter) allowsEntry(e Entry) bool {
	return f == nil || (len(e.Perm) > 0 && f.Allows(e.Perm[0]))
}

// filterEntries returns the entries passing the filter. With a nil filter
// the input is returned untouched; otherwise survivors are copied — the
// input may be a read-only snapshot view.
func (f PivotFilter) filterEntries(entries []Entry) []Entry {
	if f == nil {
		return entries
	}
	out := make([]Entry, 0, len(entries))
	for _, e := range entries {
		if f.allowsEntry(e) {
			out = append(out, e)
		}
	}
	return out
}

// RangeByDistsFiltered is RangeByDists restricted to the filter's
// first-level cells.
func (ix *Index) RangeByDistsFiltered(qDists []float64, r float64, filter PivotFilter) ([]Entry, error) {
	return ix.rangeByDists(qDists, r, filter)
}

// ApproxCandidatesRankedFiltered is ApproxCandidatesRanked restricted to
// the filter's first-level cells: cells are visited in the same promise
// order, disallowed first-level subtrees simply never enter the queue, and
// the candidate-size trim applies to the filtered stream.
func (ix *Index) ApproxCandidatesRankedFiltered(q ApproxQuery, candSize int, filter PivotFilter) ([]RankedCandidate, error) {
	if candSize <= 0 {
		return nil, fmt.Errorf("mindex: candidate size must be positive, got %d", candSize)
	}
	if err := ix.validateApprox(q); err != nil {
		return nil, err
	}
	out := make([]RankedCandidate, 0, candSize)
	err := ix.approxCollect(q, candSize, filter, func(entries []Entry, promise float64, prefix []int32) {
		for _, e := range entries {
			out = append(out, RankedCandidate{Entry: e, Promise: promise, Prefix: prefix})
		}
	})
	if err != nil {
		return nil, err
	}
	if len(out) > candSize {
		out = out[:candSize]
	}
	return out, nil
}

// FirstCellRankedFiltered is FirstCellRanked restricted to the filter's
// first-level cells.
func (ix *Index) FirstCellRankedFiltered(q ApproxQuery, filter PivotFilter) ([]Entry, float64, []int32, error) {
	return ix.firstCellRanked(q, filter)
}

// AllEntriesFiltered is AllEntries restricted to the filter's first-level
// cells, in the same traversal order.
func (ix *Index) AllEntriesFiltered(filter PivotFilter) ([]Entry, error) {
	entries, err := ix.AllEntries()
	if err != nil {
		return nil, err
	}
	if filter == nil {
		return entries, nil
	}
	// AllEntries already copied; filter in place.
	out := entries[:0]
	for _, e := range entries {
		if filter.allowsEntry(e) {
			out = append(out, e)
		}
	}
	return out, nil
}
