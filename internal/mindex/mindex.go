package mindex

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"simcloud/internal/metric"
	"simcloud/internal/pivot"
)

// StorageKind selects the bucket storage backend.
type StorageKind uint8

// Storage backends (Table 2 of the paper uses memory storage for YEAST and
// HUMAN and disk storage for CoPhIR).
const (
	StorageMemory StorageKind = iota + 1
	StorageDisk
)

// String implements fmt.Stringer.
func (s StorageKind) String() string {
	switch s {
	case StorageMemory:
		return "memory"
	case StorageDisk:
		return "disk"
	}
	return fmt.Sprintf("storage(%d)", uint8(s))
}

// RankStrategy selects how approximate search orders Voronoi cells.
type RankStrategy uint8

// Cell-ranking strategies for the approximate k-NN candidate collection.
const (
	// RankFootrule orders cells by a level-weighted Spearman footrule
	// between the cell's permutation prefix and the query's pivot ranks.
	// It needs only the query permutation — the minimum the encrypted
	// client must reveal.
	RankFootrule RankStrategy = iota + 1
	// RankDistSum orders cells by the level-weighted sum of query–pivot
	// distances along the prefix. It needs the query's distance vector.
	RankDistSum
)

// String implements fmt.Stringer.
func (r RankStrategy) String() string {
	switch r {
	case RankFootrule:
		return "footrule"
	case RankDistSum:
		return "distsum"
	}
	return fmt.Sprintf("rank(%d)", uint8(r))
}

// Config parametrizes an M-Index instance.
type Config struct {
	// NumPivots is the size of the pivot set (n in the paper).
	NumPivots int
	// MaxLevel bounds the depth of the dynamic cell tree; permutation
	// prefixes of at most this length address cells.
	MaxLevel int
	// BucketCapacity is the split threshold of a leaf cell.
	BucketCapacity int
	// Storage selects the bucket backend.
	Storage StorageKind
	// DiskPath is the bucket directory for StorageDisk.
	DiskPath string
	// DiskCacheBytes bounds the DiskStore read-through bucket cache (the
	// decoded-entry LRU that lets repeated queries skip re-reading and
	// re-decoding bucket files): positive values set the budget in bytes,
	// 0 means DefaultDiskCacheBytes, negative disables the cache. Ignored
	// for memory storage. internal/engine treats the budget as a
	// whole-engine figure and divides it across shards. The cache never
	// changes any result — see DESIGN.md §Performance.
	DiskCacheBytes int
	// Ranking selects the approximate-search cell ordering.
	Ranking RankStrategy
	// Shards partitions the index across this many independently locked
	// sub-indexes keyed by the first permutation element. The field is
	// consumed by internal/engine — a bare Index always behaves as one
	// shard. 0 means 1 (the pre-sharding behavior).
	Shards int
	// EagerRootSplit splits the root cell on the first insert instead of
	// waiting for BucketCapacity overflow, so every leaf lies at prefix
	// length >= 1. internal/engine sets it on shard sub-indexes: it makes a
	// shard's cells (and their promise values) coincide exactly with the
	// corresponding cells of an unsharded tree, which keeps the cross-shard
	// promise merge faithful to Algorithm 4's global cell ordering.
	EagerRootSplit bool
	// AutoCompactFraction, when positive, lets internal/engine compact a
	// shard as soon as its tombstoned entries reach this fraction of the
	// stored (live + dead) entries. A bare Index never compacts on its own;
	// 0 disables the policy everywhere.
	AutoCompactFraction float64
	// QuantizedPromise enables the fixed-point promise kernel for the
	// approximate traversal: when the query-side promise terms are exactly
	// representable on an integer grid (always true for the footrule
	// ranking, true for distance-sum when every query–pivot distance is a
	// non-negative integer below 65536 — the uint16 grid), cell promises
	// are accumulated and compared as integers instead of floats. The
	// emitted promise values and the ranked candidate lists are bit-for-bit
	// identical to the float path (see DESIGN.md §Performance); whenever
	// exactness cannot be proven the traversal silently falls back to the
	// float path, so enabling this never changes any result.
	QuantizedPromise bool
}

func (c Config) validate() error {
	if c.NumPivots <= 0 {
		return errors.New("mindex: NumPivots must be positive")
	}
	if c.MaxLevel <= 0 || c.MaxLevel > c.NumPivots {
		return fmt.Errorf("mindex: MaxLevel must be in 1..NumPivots, got %d", c.MaxLevel)
	}
	if c.BucketCapacity <= 0 {
		return errors.New("mindex: BucketCapacity must be positive")
	}
	switch c.Storage {
	case StorageMemory:
	case StorageDisk:
		if c.DiskPath == "" {
			return errors.New("mindex: StorageDisk requires DiskPath")
		}
	default:
		return fmt.Errorf("mindex: unknown storage kind %d", c.Storage)
	}
	if c.Ranking != RankFootrule && c.Ranking != RankDistSum {
		return fmt.Errorf("mindex: unknown ranking strategy %d", c.Ranking)
	}
	if c.Shards < 0 || c.Shards > MaxShards {
		return fmt.Errorf("mindex: Shards must be in 0..%d, got %d", MaxShards, c.Shards)
	}
	if c.AutoCompactFraction < 0 || c.AutoCompactFraction >= 1 {
		return fmt.Errorf("mindex: AutoCompactFraction must be in [0,1), got %g", c.AutoCompactFraction)
	}
	return nil
}

// MaxShards bounds Config.Shards against absurd partition counts.
const MaxShards = 1 << 10

// Entry is one indexed record as stored on the (possibly untrusted) server.
//
// Exactly one of Payload (encrypted deployments) or Vec (plain deployments)
// is normally set; Perm always is. Dists is present when the data owner uses
// the precise strategy (Algorithm 1, line 4) and enables server-side pivot
// filtering; without it only the approximate strategy is available.
type Entry struct {
	ID      uint64
	Perm    []int32   // permutation prefix, at least Config.MaxLevel long
	Dists   []float64 // object–pivot distances (optional, precise strategy)
	Payload []byte    // opaque encrypted object (encrypted deployments)
	Vec     metric.Vector
}

// Index is a thread-safe M-Index over Entries. All operations use only
// pivot-space information carried by the entries and queries; see the
// package comment.
//
// Concurrency follows a read-copy-update discipline: every search and
// statistics call runs against the immutable snapshot last published in
// state and never takes a lock; mutators serialize on wmu, build their
// changes on path-copied nodes aside, and publish a new snapshot with one
// atomic pointer store. See DESIGN.md §Performance for the full protocol.
//
// The index is mutable: Delete marks entries dead through an ID-keyed
// tombstone set (searches skip them immediately), Update replaces an
// entry's record, and Compact physically drops tombstoned entries while
// collapsing subtrees that deletion left underfull. Entry IDs must be
// unique among live entries; Insert rejects a duplicate of a live ID and
// physically purges the dead twin when re-inserting a tombstoned one.
type Index struct {
	cfg     Config
	store   BucketStore
	weights []float64
	// eagerPin marks storage whose leaf views are pinned into the nodes at
	// mutation time (memory storage), so searches never touch the store at
	// all. Disk-backed leaves are read through the store on demand to keep
	// the DiskCacheBytes budget meaningful; see leafView.
	eagerPin bool

	// state is the published immutable snapshot: the cell tree, the
	// tombstone set and the live/dead counters, all mutually consistent.
	// Readers Load it once per operation and never block.
	state atomic.Pointer[readState]

	// wmu serializes mutators (and snapshot persistence). Readers never
	// acquire it. The fields below are writer-private state guarded by it.
	wmu sync.Mutex
	// loc maps every physically stored entry (live or tombstoned) to its
	// leaf cell prefix and arrival sequence number. LoadSnapshot pre-warms
	// it eagerly (queries never need it, but mutations do — the eager walk
	// keeps the first post-restore mutation at steady-state latency);
	// ensureLoc remains the backstop for any path that leaves it nil.
	loc     map[uint64]entryLoc
	nextSeq uint64
	// txnGen hands out transaction ownership stamps (see txn.gen).
	// Mutated only under wmu.
	txnGen uint64
	// dirty records that deletions or updates have driven the tree away
	// from the canonical shape a fresh build of the surviving entries would
	// have; Compact restores it.
	dirty bool

	// Ingest counters: entries accepted through the insert paths, builder-
	// path batches, and the encoded bytes those entries occupy. Written by
	// mutators (under wmu), read lock-free by IngestStats.
	ingestEntries atomic.Uint64
	ingestBuilds  atomic.Uint64
	ingestBytes   atomic.Uint64

	// pqPool recycles promise-queue backing arrays across searches so the
	// steady-state query path allocates no traversal state (see search.go).
	pqPool sync.Pool
}

// readState is one published snapshot of the index. All reachable data —
// the node tree, the tombstone map, pinned bucket views — is immutable once
// published; mutators clone what they change and publish a fresh readState.
type readState struct {
	root *node
	size int // live entries
	dead int // tombstoned entries still physically stored
	// tombstones holds the IDs of deleted-but-not-yet-compacted entries.
	tombstones map[uint64]struct{}
}

// entryLoc locates one stored entry: its leaf cell prefix and the
// monotonically increasing arrival sequence number that Compact uses to
// preserve insertion order when it rebuilds buckets. The prefix (not a node
// pointer) is stored because path-copying mutations continually supersede
// node objects; the prefix stays the entry's stable address until a split
// moves it (which rewrites the loc entry).
type entryLoc struct {
	prefix []int32
	seq    uint64
}

// pinCell holds a pinned full bucket view shared by every node version of
// one bucket content era (the span between content-destroying store
// operations — Replace and Free; appends extend an era). Before a mutator
// destroys a bucket's content it stores the full pre-destruction view here,
// so readers of any previously published node version — all of which share
// this cell and slice the view to their own count — keep a consistent
// bucket image without locks. See Index.leafView.
type pinCell struct {
	v atomic.Pointer[[]Entry]
}

// child is one entry of a node's sorted child table.
type child struct {
	key int32
	n   *node
}

// node is a cell of the dynamic Voronoi cell tree. A node is either a leaf
// owning a bucket, or an internal node with children keyed by the next
// permutation element. Published nodes are immutable: mutators clone the
// nodes along the root→leaf path they change (path copying) and publish the
// new root; the only mutable field of a published node is the pin cell's
// atomic pointer.
type node struct {
	prefix []int32
	// kids is the sorted (by key) child table — nil for leaves. A slice
	// (not a map) so path copying clones a node in one allocation and
	// traversals walk children in deterministic order with no sorting.
	kids   []child
	bucket BucketID
	// era is the bucket content era this node was built against; a
	// mismatch with the store's current era tells a reader the bucket was
	// replaced after this node version was published and the pinned view
	// must be used instead. Only meaningful for lazily read (disk) leaves.
	era uint64
	pin *pinCell
	// count/dead cover this subtree, tombstoned entries included in count.
	count int
	dead  int

	// Ball bounds: min/max distance from subtree objects to the cell's
	// defining pivot (the last prefix element). Valid only while every
	// inserted entry carried a distance vector. Deletions leave the bounds
	// untouched — they then cover a superset of the live entries, which
	// keeps pruning correct (conservative) until Compact recomputes them.
	rmin, rmax  float64
	boundsValid bool

	// gen is the ownership stamp of the transaction that created or cloned
	// this node version (see txn.gen). Runtime-only — never serialized.
	gen uint64
}

// live returns the number of non-tombstoned entries in the subtree.
func (n *node) live() int { return n.count - n.dead }

func (n *node) isLeaf() bool { return n.kids == nil }

// child returns the child reached via permutation element key, or nil. The
// child table is short (bounded by the pivot count), so a linear scan over
// the contiguous slice beats a map lookup and allocates nothing.
func (n *node) child(key int32) *node {
	for i := range n.kids {
		if n.kids[i].key == key {
			return n.kids[i].n
		}
	}
	return nil
}

// addKid links c under n at key, keeping the child table sorted by key.
// Callers own n (it is unpublished or path-copied this transaction).
func (n *node) addKid(key int32, c *node) {
	i := len(n.kids)
	n.kids = append(n.kids, child{key: key, n: c})
	for ; i > 0 && key < n.kids[i-1].key; i-- {
		n.kids[i] = n.kids[i-1]
	}
	n.kids[i] = child{key: key, n: c}
}

// setKid replaces the child at key with c (used when path copying descends
// through an already-linked child). Callers own n.
func (n *node) setKid(key int32, c *node) {
	for i := range n.kids {
		if n.kids[i].key == key {
			n.kids[i].n = c
			return
		}
	}
	panic("mindex: setKid of missing key")
}

func (n *node) level() int { return len(n.prefix) }

// lastPivot returns the cell's defining pivot index, or -1 for the root.
func (n *node) lastPivot() int32 {
	if len(n.prefix) == 0 {
		return -1
	}
	return n.prefix[len(n.prefix)-1]
}

// New creates an empty M-Index.
func New(cfg Config) (*Index, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	var store BucketStore
	var err error
	switch cfg.Storage {
	case StorageMemory:
		store = NewMemStore()
	case StorageDisk:
		ds, derr := NewDiskStore(cfg.DiskPath)
		if derr != nil {
			return nil, derr
		}
		ds.SetCacheBudget(cfg.DiskCacheBytes)
		store = ds
	}
	idx := &Index{
		cfg:      cfg,
		store:    store,
		weights:  pivot.FootruleWeights(cfg.MaxLevel),
		eagerPin: cfg.Storage == StorageMemory,
		loc:      make(map[uint64]entryLoc),
	}
	rootBucket, err := store.Create()
	if err != nil {
		return nil, err
	}
	root := &node{bucket: rootBucket, pin: &pinCell{}, rmin: 0, rmax: 0, boundsValid: true}
	idx.state.Store(&readState{root: root, tombstones: make(map[uint64]struct{})})
	return idx, nil
}

// Config returns the index configuration.
func (ix *Index) Config() Config { return ix.cfg }

// Size returns the number of live (non-tombstoned) indexed entries.
func (ix *Index) Size() int { return ix.state.Load().size }

// Dead returns the number of tombstoned entries still physically stored
// (they disappear on Compact).
func (ix *Index) Dead() int { return ix.state.Load().dead }

// Counts returns the live and dead entry counts read from one snapshot, so
// the two figures are mutually consistent even while mutations are in
// flight (Size and Dead called separately may straddle a publication).
func (ix *Index) Counts() (live, dead int) {
	st := ix.state.Load()
	return st.size, st.dead
}

// Close releases the bucket storage.
func (ix *Index) Close() error {
	ix.wmu.Lock()
	defer ix.wmu.Unlock()
	return ix.store.Close()
}

// ErrDuplicateID reports an Insert whose entry ID is already live in the
// index. Use Update to replace an existing entry.
var ErrDuplicateID = errors.New("mindex: entry ID already indexed")

// CheckEntry validates an entry's pivot-space metadata against the index
// configuration without mutating anything — the same checks Insert
// applies. Update runs it before tombstoning the entry it replaces, so an
// invalid replacement cannot destroy the existing record.
func (ix *Index) CheckEntry(e Entry) error { return ix.checkEntry(&e) }

func (ix *Index) checkEntry(e *Entry) error {
	if len(e.Perm) < ix.cfg.MaxLevel {
		return fmt.Errorf("mindex: entry permutation has %d elements, need at least MaxLevel=%d",
			len(e.Perm), ix.cfg.MaxLevel)
	}
	for _, p := range e.Perm {
		if p < 0 || int(p) >= ix.cfg.NumPivots {
			return fmt.Errorf("mindex: permutation element %d out of range [0,%d)", p, ix.cfg.NumPivots)
		}
	}
	if e.Dists != nil && len(e.Dists) != ix.cfg.NumPivots {
		return fmt.Errorf("mindex: entry has %d pivot distances, want %d", len(e.Dists), ix.cfg.NumPivots)
	}
	return nil
}

// leafView returns leaf n's stored entries — exactly the n.count entries
// that existed when n's snapshot was published, tombstoned ones included —
// without copying. The protocol (see DESIGN.md §Performance):
//
//  1. A pinned view, when present, is authoritative: it was stored by the
//     mutator that superseded this node version (or, for memory storage, by
//     the mutation that built it) and covers at least n.count entries.
//  2. Otherwise the bucket is read through the store. If the store's
//     content era still matches the node's, only appends can have happened
//     since this node version was current, and appends strictly extend a
//     bucket — the first n.count entries are this version's content.
//  3. On an era mismatch (or a store error, e.g. the bucket was freed), the
//     destroying mutator is guaranteed to have pinned the old content into
//     the shared cell before touching the store, so a re-check of the pin
//     must succeed.
func (ix *Index) leafView(n *node) ([]Entry, error) {
	return ix.leafViewN(n, n.count)
}

// leafViewN is leafView for an explicit entry count at most n.count. The
// bulk builder reads a touched leaf's pre-batch content with it: the node
// clone's count already includes the batch entries the build has routed
// here, but the store still holds only the pre-batch prefix.
func (ix *Index) leafViewN(n *node, count int) ([]Entry, error) {
	if p := n.pin.v.Load(); p != nil {
		return (*p)[:count], nil
	}
	v, era, err := viewVersioned(ix.store, n.bucket)
	if err == nil && era == n.era && len(v) >= count {
		return v[:count], nil
	}
	if p := n.pin.v.Load(); p != nil {
		return (*p)[:count], nil
	}
	if err != nil {
		return nil, err
	}
	return nil, fmt.Errorf("mindex: bucket %d content superseded with no pinned view", n.bucket)
}

// viewVersioned reads a bucket view together with its content era. Stores
// without era tracking (MemStore — its leaves are eagerly pinned, so lazy
// reads never reach it) report era 0.
func viewVersioned(s BucketStore, id BucketID) ([]Entry, uint64, error) {
	if vv, ok := s.(interface {
		ViewVersioned(BucketID) ([]Entry, uint64, error)
	}); ok {
		return vv.ViewVersioned(id)
	}
	v, err := s.View(id)
	return v, 0, err
}

// Stats summarizes the tree shape, used by tooling and tests. Entries
// counts live entries only; Dead counts tombstoned entries still stored
// (bucket figures include them until Compact reclaims the space).
type Stats struct {
	Entries     int
	Dead        int
	Leaves      int
	InnerNodes  int
	MaxDepth    int
	MaxBucket   int
	TotalBucket int
}

// CacheStats reports the bucket store's read-through entry cache counters
// (DiskStore only; ok is false for backends without a cache). Surfaced per
// deployment through engine.Stats.
func (ix *Index) CacheStats() (hits, misses uint64, ok bool) {
	cs, ok := ix.store.(interface {
		CacheStats() (uint64, uint64, int)
	})
	if !ok {
		return 0, 0, false
	}
	hits, misses, _ = cs.CacheStats()
	return hits, misses, true
}

// IngestStats describes what the insert paths have accepted since the
// index opened: entries admitted through Insert/InsertBulk, how many
// batches took the bottom-up builder (see bulk.go), and the encoded bytes
// those entries occupy in the bucket store. Counters start at zero on every
// open — including a snapshot restore — so they measure this process's
// ingest work, not the collection's lifetime.
type IngestStats struct {
	Entries uint64
	Builds  uint64
	Bytes   uint64
}

// IngestStats reports the ingest counters. Lock-free, like every read.
func (ix *Index) IngestStats() IngestStats {
	return IngestStats{
		Entries: ix.ingestEntries.Load(),
		Builds:  ix.ingestBuilds.Load(),
		Bytes:   ix.ingestBytes.Load(),
	}
}

// recordIngest credits n accepted entries (the first n of entries) to the
// ingest counters. Callers hold wmu.
func (ix *Index) recordIngest(entries []Entry, n int, built bool) {
	if built {
		ix.ingestBuilds.Add(1)
	}
	if n <= 0 {
		return
	}
	var bytes uint64
	for i := range n {
		bytes += uint64(EncodedEntrySize(entries[i]))
	}
	ix.ingestEntries.Add(uint64(n))
	ix.ingestBytes.Add(bytes)
}

// TreeStats walks the cell tree and reports its shape. Like every read it
// runs against one published snapshot and takes no lock, so its figures are
// internally consistent (Entries, Dead and the bucket totals all describe
// the same moment).
func (ix *Index) TreeStats() Stats {
	st := ix.state.Load()
	var s Stats
	s.Entries = st.size
	s.Dead = st.dead
	var walk func(n *node)
	walk = func(n *node) {
		if n.level() > s.MaxDepth {
			s.MaxDepth = n.level()
		}
		if n.isLeaf() {
			s.Leaves++
			s.TotalBucket += n.count
			if n.count > s.MaxBucket {
				s.MaxBucket = n.count
			}
			return
		}
		s.InnerNodes++
		for i := range n.kids {
			walk(n.kids[i].n)
		}
	}
	walk(st.root)
	return s
}
