package mindex

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"simcloud/internal/metric"
	"simcloud/internal/pivot"
)

// StorageKind selects the bucket storage backend.
type StorageKind uint8

// Storage backends (Table 2 of the paper uses memory storage for YEAST and
// HUMAN and disk storage for CoPhIR).
const (
	StorageMemory StorageKind = iota + 1
	StorageDisk
)

// String implements fmt.Stringer.
func (s StorageKind) String() string {
	switch s {
	case StorageMemory:
		return "memory"
	case StorageDisk:
		return "disk"
	}
	return fmt.Sprintf("storage(%d)", uint8(s))
}

// RankStrategy selects how approximate search orders Voronoi cells.
type RankStrategy uint8

// Cell-ranking strategies for the approximate k-NN candidate collection.
const (
	// RankFootrule orders cells by a level-weighted Spearman footrule
	// between the cell's permutation prefix and the query's pivot ranks.
	// It needs only the query permutation — the minimum the encrypted
	// client must reveal.
	RankFootrule RankStrategy = iota + 1
	// RankDistSum orders cells by the level-weighted sum of query–pivot
	// distances along the prefix. It needs the query's distance vector.
	RankDistSum
)

// String implements fmt.Stringer.
func (r RankStrategy) String() string {
	switch r {
	case RankFootrule:
		return "footrule"
	case RankDistSum:
		return "distsum"
	}
	return fmt.Sprintf("rank(%d)", uint8(r))
}

// Config parametrizes an M-Index instance.
type Config struct {
	// NumPivots is the size of the pivot set (n in the paper).
	NumPivots int
	// MaxLevel bounds the depth of the dynamic cell tree; permutation
	// prefixes of at most this length address cells.
	MaxLevel int
	// BucketCapacity is the split threshold of a leaf cell.
	BucketCapacity int
	// Storage selects the bucket backend.
	Storage StorageKind
	// DiskPath is the bucket directory for StorageDisk.
	DiskPath string
	// DiskCacheBytes bounds the DiskStore read-through bucket cache (the
	// decoded-entry LRU that lets repeated queries skip re-reading and
	// re-decoding bucket files): positive values set the budget in bytes,
	// 0 means DefaultDiskCacheBytes, negative disables the cache. Ignored
	// for memory storage. internal/engine treats the budget as a
	// whole-engine figure and divides it across shards. The cache never
	// changes any result — see DESIGN.md §Performance.
	DiskCacheBytes int
	// Ranking selects the approximate-search cell ordering.
	Ranking RankStrategy
	// Shards partitions the index across this many independently locked
	// sub-indexes keyed by the first permutation element. The field is
	// consumed by internal/engine — a bare Index always behaves as one
	// shard. 0 means 1 (the pre-sharding behavior).
	Shards int
	// EagerRootSplit splits the root cell on the first insert instead of
	// waiting for BucketCapacity overflow, so every leaf lies at prefix
	// length >= 1. internal/engine sets it on shard sub-indexes: it makes a
	// shard's cells (and their promise values) coincide exactly with the
	// corresponding cells of an unsharded tree, which keeps the cross-shard
	// promise merge faithful to Algorithm 4's global cell ordering.
	EagerRootSplit bool
	// AutoCompactFraction, when positive, lets internal/engine compact a
	// shard as soon as its tombstoned entries reach this fraction of the
	// stored (live + dead) entries. A bare Index never compacts on its own;
	// 0 disables the policy everywhere.
	AutoCompactFraction float64
}

func (c Config) validate() error {
	if c.NumPivots <= 0 {
		return errors.New("mindex: NumPivots must be positive")
	}
	if c.MaxLevel <= 0 || c.MaxLevel > c.NumPivots {
		return fmt.Errorf("mindex: MaxLevel must be in 1..NumPivots, got %d", c.MaxLevel)
	}
	if c.BucketCapacity <= 0 {
		return errors.New("mindex: BucketCapacity must be positive")
	}
	switch c.Storage {
	case StorageMemory:
	case StorageDisk:
		if c.DiskPath == "" {
			return errors.New("mindex: StorageDisk requires DiskPath")
		}
	default:
		return fmt.Errorf("mindex: unknown storage kind %d", c.Storage)
	}
	if c.Ranking != RankFootrule && c.Ranking != RankDistSum {
		return fmt.Errorf("mindex: unknown ranking strategy %d", c.Ranking)
	}
	if c.Shards < 0 || c.Shards > MaxShards {
		return fmt.Errorf("mindex: Shards must be in 0..%d, got %d", MaxShards, c.Shards)
	}
	if c.AutoCompactFraction < 0 || c.AutoCompactFraction >= 1 {
		return fmt.Errorf("mindex: AutoCompactFraction must be in [0,1), got %g", c.AutoCompactFraction)
	}
	return nil
}

// MaxShards bounds Config.Shards against absurd partition counts.
const MaxShards = 1 << 10

// Entry is one indexed record as stored on the (possibly untrusted) server.
//
// Exactly one of Payload (encrypted deployments) or Vec (plain deployments)
// is normally set; Perm always is. Dists is present when the data owner uses
// the precise strategy (Algorithm 1, line 4) and enables server-side pivot
// filtering; without it only the approximate strategy is available.
type Entry struct {
	ID      uint64
	Perm    []int32   // permutation prefix, at least Config.MaxLevel long
	Dists   []float64 // object–pivot distances (optional, precise strategy)
	Payload []byte    // opaque encrypted object (encrypted deployments)
	Vec     metric.Vector
}

// Index is a thread-safe M-Index over Entries. All operations use only
// pivot-space information carried by the entries and queries; see the
// package comment.
//
// The index is mutable: Delete marks entries dead through an ID-keyed
// tombstone set (searches skip them immediately), Update replaces an
// entry's record, and Compact physically drops tombstoned entries while
// collapsing subtrees that deletion left underfull. Entry IDs must be
// unique among live entries; Insert rejects a duplicate of a live ID and
// physically purges the dead twin when re-inserting a tombstoned one.
type Index struct {
	mu      sync.RWMutex
	cfg     Config
	store   BucketStore
	root    *node
	weights []float64
	size    int // live entries
	dead    int // tombstoned entries still physically stored

	// tombstones holds the IDs of deleted-but-not-yet-compacted entries.
	tombstones map[uint64]struct{}
	// loc maps every physically stored entry (live or tombstoned) to its
	// leaf cell and arrival sequence number. nil after a snapshot restore
	// until the first mutation rebuilds it from the buckets (queries never
	// need it).
	loc     map[uint64]entryLoc
	nextSeq uint64
	// dirty records that deletions or updates have driven the tree away
	// from the canonical shape a fresh build of the surviving entries would
	// have; Compact restores it.
	dirty bool

	// pqPool recycles promise-queue backing arrays across searches so the
	// steady-state query path allocates no traversal state (see search.go).
	pqPool sync.Pool
}

// entryLoc locates one stored entry: its leaf cell and the monotonically
// increasing arrival sequence number that Compact uses to preserve
// insertion order when it rebuilds buckets.
type entryLoc struct {
	leaf *node
	seq  uint64
}

// node is a cell of the dynamic Voronoi cell tree. A node is either a leaf
// owning a bucket, or an internal node with children keyed by the next
// permutation element.
type node struct {
	prefix   []int32
	parent   *node           // nil for the root
	children map[int32]*node // nil for leaves
	// sorted caches the child keys in ascending order — the deterministic
	// traversal order. Children are only ever added (deletion works through
	// tombstones and Compact rebuilds whole trees), so every structural
	// mutation maintains it via addChild under the write lock and queries
	// read it allocation-free under the read lock.
	sorted []int32
	bucket BucketID
	count  int // objects in this subtree, tombstoned included
	dead   int // tombstoned objects in this subtree

	// Ball bounds: min/max distance from subtree objects to the cell's
	// defining pivot (the last prefix element). Valid only while every
	// inserted entry carried a distance vector. Deletions leave the bounds
	// untouched — they then cover a superset of the live entries, which
	// keeps pruning correct (conservative) until Compact recomputes them.
	rmin, rmax  float64
	boundsValid bool
}

// live returns the number of non-tombstoned entries in the subtree.
func (n *node) live() int { return n.count - n.dead }

func (n *node) isLeaf() bool { return n.children == nil }

// addChild links child under n at key, keeping the cached sorted key list
// in ascending order (an insertion into a short slice — child counts are
// bounded by the pivot count). Callers hold the index write lock.
func (n *node) addChild(key int32, child *node) {
	n.children[key] = child
	i := len(n.sorted)
	n.sorted = append(n.sorted, key)
	for ; i > 0 && key < n.sorted[i-1]; i-- {
		n.sorted[i] = n.sorted[i-1]
	}
	n.sorted[i] = key
}

func (n *node) level() int { return len(n.prefix) }

// lastPivot returns the cell's defining pivot index, or -1 for the root.
func (n *node) lastPivot() int32 {
	if len(n.prefix) == 0 {
		return -1
	}
	return n.prefix[len(n.prefix)-1]
}

// New creates an empty M-Index.
func New(cfg Config) (*Index, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	var store BucketStore
	var err error
	switch cfg.Storage {
	case StorageMemory:
		store = NewMemStore()
	case StorageDisk:
		ds, derr := NewDiskStore(cfg.DiskPath)
		if derr != nil {
			return nil, derr
		}
		ds.SetCacheBudget(cfg.DiskCacheBytes)
		store = ds
	}
	idx := &Index{
		cfg:        cfg,
		store:      store,
		weights:    pivot.FootruleWeights(cfg.MaxLevel),
		tombstones: make(map[uint64]struct{}),
		loc:        make(map[uint64]entryLoc),
	}
	rootBucket, err := store.Create()
	if err != nil {
		return nil, err
	}
	idx.root = &node{bucket: rootBucket, rmin: 0, rmax: 0, boundsValid: true}
	return idx, nil
}

// Config returns the index configuration.
func (ix *Index) Config() Config { return ix.cfg }

// Size returns the number of live (non-tombstoned) indexed entries.
func (ix *Index) Size() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.size
}

// Dead returns the number of tombstoned entries still physically stored
// (they disappear on Compact).
func (ix *Index) Dead() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.dead
}

// Close releases the bucket storage.
func (ix *Index) Close() error {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	return ix.store.Close()
}

// ErrDuplicateID reports an Insert whose entry ID is already live in the
// index. Use Update to replace an existing entry.
var ErrDuplicateID = errors.New("mindex: entry ID already indexed")

// CheckEntry validates an entry's pivot-space metadata against the index
// configuration without mutating anything — the same checks Insert
// applies. Update runs it before tombstoning the entry it replaces, so an
// invalid replacement cannot destroy the existing record.
func (ix *Index) CheckEntry(e Entry) error {
	if len(e.Perm) < ix.cfg.MaxLevel {
		return fmt.Errorf("mindex: entry permutation has %d elements, need at least MaxLevel=%d",
			len(e.Perm), ix.cfg.MaxLevel)
	}
	for _, p := range e.Perm {
		if p < 0 || int(p) >= ix.cfg.NumPivots {
			return fmt.Errorf("mindex: permutation element %d out of range [0,%d)", p, ix.cfg.NumPivots)
		}
	}
	if e.Dists != nil && len(e.Dists) != ix.cfg.NumPivots {
		return fmt.Errorf("mindex: entry has %d pivot distances, want %d", len(e.Dists), ix.cfg.NumPivots)
	}
	return nil
}

// Insert adds an entry to the index — the server side of the paper's insert
// operation (Figure 4): locate the leaf cell of the entry's permutation
// prefix, store the entry, split the leaf if it overflows. Inserting an ID
// that is live fails with ErrDuplicateID; inserting an ID that is
// tombstoned first purges the dead record, so at most one physical entry
// ever carries a given ID.
func (ix *Index) Insert(e Entry) error {
	if err := ix.CheckEntry(e); err != nil {
		return err
	}
	ix.mu.Lock()
	defer ix.mu.Unlock()
	return ix.insertLocked(e)
}

// insertLocked is the body of Insert once the entry is validated and the
// write lock is held (shared with Update).
func (ix *Index) insertLocked(e Entry) error {
	if err := ix.ensureLoc(); err != nil {
		return err
	}
	if _, ok := ix.loc[e.ID]; ok {
		if _, gone := ix.tombstones[e.ID]; !gone {
			return fmt.Errorf("%w: %d", ErrDuplicateID, e.ID)
		}
		if err := ix.purgeLocked(e.ID); err != nil {
			return err
		}
	}
	if err := ix.insertAt(ix.root, e); err != nil {
		return err
	}
	ix.size++
	return nil
}

// InsertBulk inserts a batch of entries, the unit the construction-phase
// experiments measure (bulk size 1,000 in the paper).
func (ix *Index) InsertBulk(entries []Entry) error {
	for i := range entries {
		if err := ix.Insert(entries[i]); err != nil {
			return fmt.Errorf("mindex: bulk insert entry %d: %w", i, err)
		}
	}
	return nil
}

func (ix *Index) insertAt(n *node, e Entry) error {
	for !n.isLeaf() {
		n.count++
		n.updateBounds(e)
		key := e.Perm[n.level()]
		child, ok := n.children[key]
		if !ok {
			b, err := ix.store.Create()
			if err != nil {
				return err
			}
			child = &node{
				prefix:      appendPrefix(n.prefix, key),
				parent:      n,
				bucket:      b,
				boundsValid: true,
			}
			if e.Dists != nil {
				child.rmin = e.Dists[key]
				child.rmax = e.Dists[key]
			}
			n.addChild(key, child)
		}
		n = child
	}
	n.count++
	n.updateBounds(e)
	if err := ix.store.Append(n.bucket, e); err != nil {
		return err
	}
	ix.loc[e.ID] = entryLoc{leaf: n, seq: ix.nextSeq}
	ix.nextSeq++
	overflow := n.count > ix.cfg.BucketCapacity ||
		(ix.cfg.EagerRootSplit && n.level() == 0)
	if overflow && n.level() < ix.cfg.MaxLevel {
		return ix.split(n)
	}
	return nil
}

// updateBounds maintains the node's ball bounds from the entry's distance
// vector; entries without distances invalidate the bounds (the cell can then
// no longer be ball-pruned, but remains correct).
func (n *node) updateBounds(e Entry) {
	p := n.lastPivot()
	if p < 0 {
		return
	}
	if e.Dists == nil {
		n.boundsValid = false
		return
	}
	d := e.Dists[p]
	if n.count == 1 {
		n.rmin, n.rmax = d, d
		return
	}
	if d < n.rmin {
		n.rmin = d
	}
	if d > n.rmax {
		n.rmax = d
	}
}

// split turns an overflowing leaf into an internal node, redistributing its
// bucket by the next permutation element — the recursive Voronoi step.
func (ix *Index) split(n *node) error {
	// View, not Load: the entries are only read (and re-encoded into the
	// child buckets), and the Free below drops the store's reference while
	// this snapshot stays valid.
	entries, err := ix.store.View(n.bucket)
	if err != nil {
		return err
	}
	if err := ix.store.Free(n.bucket); err != nil {
		return err
	}
	n.children = make(map[int32]*node)
	n.sorted = nil
	n.bucket = 0
	level := n.level()
	for _, e := range entries {
		key := e.Perm[level]
		child, ok := n.children[key]
		if !ok {
			b, err := ix.store.Create()
			if err != nil {
				return err
			}
			child = &node{
				prefix:      appendPrefix(n.prefix, key),
				parent:      n,
				bucket:      b,
				boundsValid: true,
			}
			n.addChild(key, child)
		}
		child.count++
		if _, gone := ix.tombstones[e.ID]; gone {
			child.dead++
		}
		child.updateBounds(e)
		if err := ix.store.Append(child.bucket, e); err != nil {
			return err
		}
		if l, ok := ix.loc[e.ID]; ok {
			l.leaf = child
			ix.loc[e.ID] = l
		}
	}
	// A pathological split can put everything into one child (all objects
	// share the next permutation element); recurse so capacity is restored
	// where possible.
	for _, child := range n.children {
		if child.count > ix.cfg.BucketCapacity && child.level() < ix.cfg.MaxLevel {
			if err := ix.split(child); err != nil {
				return err
			}
		}
	}
	return nil
}

func appendPrefix(prefix []int32, key int32) []int32 {
	out := make([]int32, len(prefix)+1)
	copy(out, prefix)
	out[len(prefix)] = key
	return out
}

// sortedChildKeys returns the node's child keys in ascending order — the
// deterministic traversal order used by searches, snapshots, the loc
// rebuild and Compact (map iteration order must never leak into results or
// persisted state). The list is the node's maintained cache (see
// node.addChild), so calling this allocates and sorts nothing; the returned
// slice must not be modified.
func sortedChildKeys(n *node) []int32 {
	return n.sorted
}

// ensureLoc builds the entry-location map when it is missing (after a
// snapshot restore). Queries never need it; the first mutation pays one
// walk over all buckets. Sequence numbers are assigned in deterministic
// tree order (preorder, children by ascending key, bucket order), so a
// later Compact rebuilds restored entries in that same order. Callers hold
// the write lock.
func (ix *Index) ensureLoc() error {
	if ix.loc != nil {
		return nil
	}
	loc := make(map[uint64]entryLoc, ix.size+ix.dead)
	var walk func(n *node) error
	walk = func(n *node) error {
		if n.isLeaf() {
			entries, err := ix.store.View(n.bucket)
			if err != nil {
				return err
			}
			for _, e := range entries {
				loc[e.ID] = entryLoc{leaf: n, seq: ix.nextSeq}
				ix.nextSeq++
			}
			return nil
		}
		for _, k := range sortedChildKeys(n) {
			if err := walk(n.children[k]); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(ix.root); err != nil {
		return err
	}
	ix.loc = loc
	return nil
}

// purgeLocked physically removes the tombstoned entry id from its bucket
// and repairs the count/dead bookkeeping along its path. Callers hold the
// write lock and have verified the tombstone.
func (ix *Index) purgeLocked(id uint64) error {
	l := ix.loc[id]
	entries, err := ix.store.View(l.leaf.bucket)
	if err != nil {
		return err
	}
	// The view is read-only — survivors are gathered into a fresh slice
	// instead of compacting in place.
	kept := make([]Entry, 0, len(entries))
	removed := 0
	for _, e := range entries {
		if e.ID == id {
			removed++
			continue
		}
		kept = append(kept, e)
	}
	if removed > 0 {
		if err := ix.store.Replace(l.leaf.bucket, kept); err != nil {
			return err
		}
		for n := l.leaf; n != nil; n = n.parent {
			n.count -= removed
			n.dead -= removed
		}
		ix.dead -= removed
	}
	delete(ix.tombstones, id)
	delete(ix.loc, id)
	ix.dirty = true
	return nil
}

// Delete tombstones the entries with the given IDs: they vanish from every
// search immediately, and Compact later reclaims their storage. IDs that
// are unknown or already tombstoned are skipped; the count of entries
// actually deleted is returned.
func (ix *Index) Delete(ids []uint64) (int, error) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	return ix.deleteLocked(ids)
}

// deleteLocked is the body of Delete once the write lock is held (shared
// with Update).
func (ix *Index) deleteLocked(ids []uint64) (int, error) {
	if err := ix.ensureLoc(); err != nil {
		return 0, err
	}
	deleted := 0
	for _, id := range ids {
		l, ok := ix.loc[id]
		if !ok {
			continue
		}
		if _, gone := ix.tombstones[id]; gone {
			continue
		}
		ix.tombstones[id] = struct{}{}
		for n := l.leaf; n != nil; n = n.parent {
			n.dead++
		}
		ix.size--
		ix.dead++
		ix.dirty = true
		deleted++
	}
	return deleted, nil
}

// Update replaces the entry carrying e.ID with e — the delete + re-insert
// of a mutable similarity cloud, performed atomically under one lock
// acquisition: no search ever observes the entry absent, and concurrent
// Updates of the same ID serialize instead of tripping over each other's
// tombstones. The old record (which may live in a different cell when the
// object moved in pivot space) is tombstoned and physically purged before
// the fresh entry is filed; an unknown ID makes Update a plain insert.
// The replacement is validated first, so an invalid e leaves the existing
// record untouched.
func (ix *Index) Update(e Entry) error {
	if err := ix.CheckEntry(e); err != nil {
		return err
	}
	ix.mu.Lock()
	defer ix.mu.Unlock()
	tombstoned, err := ix.deleteLocked([]uint64{e.ID})
	if err != nil {
		return err
	}
	if err := ix.insertLocked(e); err != nil {
		// Resurrect the old record when it is still physically present
		// (the tombstone is pure bookkeeping until a purge or compaction
		// touches the bucket), so a failed insert does not destroy the
		// entry it was meant to replace.
		if tombstoned == 1 {
			if l, ok := ix.loc[e.ID]; ok {
				if _, gone := ix.tombstones[e.ID]; gone {
					delete(ix.tombstones, e.ID)
					for n := l.leaf; n != nil; n = n.parent {
						n.dead--
					}
					ix.size++
					ix.dead--
				}
			}
		}
		return err
	}
	return nil
}

// Compact physically drops every tombstoned entry and merges underfull
// cells back into their parents by rebuilding the cell tree from the
// surviving entries in arrival order. The post-compaction index is
// byte-identical — tree shape, ball bounds, bucket order, and therefore
// every range candidate set and ranked approximate candidate list — to a
// fresh index into which only the survivors were inserted (in their
// original arrival order). A no-op on an index untouched by deletions.
func (ix *Index) Compact() error {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if !ix.dirty {
		return nil
	}
	if err := ix.ensureLoc(); err != nil {
		return err
	}
	// Gather the survivors without touching the live tree, so any error
	// up to the final bucket swap leaves the pre-compact index intact.
	type seqEntry struct {
		e   Entry
		seq uint64
	}
	live := make([]seqEntry, 0, ix.size)
	var oldBuckets []BucketID
	var gather func(n *node) error
	gather = func(n *node) error {
		if n.isLeaf() {
			oldBuckets = append(oldBuckets, n.bucket)
			entries, err := ix.store.View(n.bucket)
			if err != nil {
				return err
			}
			for _, e := range entries {
				if _, gone := ix.tombstones[e.ID]; gone {
					continue
				}
				live = append(live, seqEntry{e: e, seq: ix.loc[e.ID].seq})
			}
			return nil
		}
		for _, c := range n.children {
			if err := gather(c); err != nil {
				return err
			}
		}
		return nil
	}
	if err := gather(ix.root); err != nil {
		return err
	}
	sort.Slice(live, func(i, j int) bool { return live[i].seq < live[j].seq })

	// Rebuild into fresh buckets. On any failure the previous tree,
	// tombstones and bookkeeping are restored and the partially built
	// buckets are released (best effort) — the index stays consistent.
	oldRoot, oldLoc, oldTombstones := ix.root, ix.loc, ix.tombstones
	oldSize, oldDead := ix.size, ix.dead
	rollback := func() {
		ix.freeSubtreeBuckets(ix.root)
		ix.root, ix.loc, ix.tombstones = oldRoot, oldLoc, oldTombstones
		ix.size, ix.dead = oldSize, oldDead
	}
	rootBucket, err := ix.store.Create()
	if err != nil {
		return err
	}
	ix.root = &node{bucket: rootBucket, rmin: 0, rmax: 0, boundsValid: true}
	ix.tombstones = make(map[uint64]struct{})
	ix.loc = make(map[uint64]entryLoc, len(live))
	ix.size = 0
	ix.dead = 0
	for _, se := range live {
		if err := ix.insertAt(ix.root, se.e); err != nil {
			rollback()
			return err
		}
		ix.size++
	}
	ix.dirty = false
	// Only now retire the old buckets. A failing Free leaks the bucket
	// but the rebuilt index is already fully consistent, so the error is
	// reported without rolling anything back.
	var firstErr error
	for _, b := range oldBuckets {
		if err := ix.store.Free(b); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// freeSubtreeBuckets releases every bucket of a partially built subtree
// during a Compact rollback; errors are ignored (best effort on an
// already-failing path).
func (ix *Index) freeSubtreeBuckets(n *node) {
	if n == nil {
		return
	}
	if n.isLeaf() {
		ix.store.Free(n.bucket)
		return
	}
	for _, c := range n.children {
		ix.freeSubtreeBuckets(c)
	}
}

// Stats summarizes the tree shape, used by tooling and tests. Entries
// counts live entries only; Dead counts tombstoned entries still stored
// (bucket figures include them until Compact reclaims the space).
type Stats struct {
	Entries     int
	Dead        int
	Leaves      int
	InnerNodes  int
	MaxDepth    int
	MaxBucket   int
	TotalBucket int
}

// CacheStats reports the bucket store's read-through entry cache counters
// (DiskStore only; ok is false for backends without a cache). Surfaced per
// deployment through engine.Stats.
func (ix *Index) CacheStats() (hits, misses uint64, ok bool) {
	cs, ok := ix.store.(interface {
		CacheStats() (uint64, uint64, int)
	})
	if !ok {
		return 0, 0, false
	}
	hits, misses, _ = cs.CacheStats()
	return hits, misses, true
}

// TreeStats walks the cell tree and reports its shape.
func (ix *Index) TreeStats() Stats {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	var s Stats
	s.Entries = ix.size
	s.Dead = ix.dead
	var walk func(n *node)
	walk = func(n *node) {
		if n.level() > s.MaxDepth {
			s.MaxDepth = n.level()
		}
		if n.isLeaf() {
			s.Leaves++
			s.TotalBucket += n.count
			if n.count > s.MaxBucket {
				s.MaxBucket = n.count
			}
			return
		}
		s.InnerNodes++
		for _, c := range n.children {
			walk(c)
		}
	}
	walk(ix.root)
	return s
}
