// Package mindex implements the M-Index (Novak & Batko 2009; Novak, Batko,
// Zezula 2011): a dynamic, disk-efficient metric index based on recursive
// Voronoi partitioning driven by pivot-permutation prefixes.
//
// Each indexed object is assigned to the Voronoi cell of its closest pivot;
// cells exceeding a capacity limit are recursively re-partitioned by the
// next-closest pivot, producing a dynamic cell tree addressed by permutation
// prefixes (Figures 2 and 3 of the paper). Range queries prune the tree with
// metric constraints (generalized-hyperplane and ball bounds) and filter
// individual objects with the pivot-distance lower bound; approximate k-NN
// queries rank cells by a promise value and collect a candidate set of a
// requested size (Algorithms 3 and 4).
//
// Crucially for the Encrypted M-Index, every index operation here consumes
// only object–pivot and query–pivot distances (or the permutations derived
// from them) — never the objects or pivots themselves. The index therefore
// runs unmodified on an untrusted server that stores opaque encrypted
// payloads: this is precisely the property the paper exploits. The Plain
// wrapper in plain.go adds the server-side refinement used by the
// non-encrypted baseline, which does hold the pivots and raw vectors.
package mindex

import (
	"errors"
	"fmt"
	"sync"

	"simcloud/internal/metric"
	"simcloud/internal/pivot"
)

// StorageKind selects the bucket storage backend.
type StorageKind uint8

// Storage backends (Table 2 of the paper uses memory storage for YEAST and
// HUMAN and disk storage for CoPhIR).
const (
	StorageMemory StorageKind = iota + 1
	StorageDisk
)

// String implements fmt.Stringer.
func (s StorageKind) String() string {
	switch s {
	case StorageMemory:
		return "memory"
	case StorageDisk:
		return "disk"
	}
	return fmt.Sprintf("storage(%d)", uint8(s))
}

// RankStrategy selects how approximate search orders Voronoi cells.
type RankStrategy uint8

// Cell-ranking strategies for the approximate k-NN candidate collection.
const (
	// RankFootrule orders cells by a level-weighted Spearman footrule
	// between the cell's permutation prefix and the query's pivot ranks.
	// It needs only the query permutation — the minimum the encrypted
	// client must reveal.
	RankFootrule RankStrategy = iota + 1
	// RankDistSum orders cells by the level-weighted sum of query–pivot
	// distances along the prefix. It needs the query's distance vector.
	RankDistSum
)

// String implements fmt.Stringer.
func (r RankStrategy) String() string {
	switch r {
	case RankFootrule:
		return "footrule"
	case RankDistSum:
		return "distsum"
	}
	return fmt.Sprintf("rank(%d)", uint8(r))
}

// Config parametrizes an M-Index instance.
type Config struct {
	// NumPivots is the size of the pivot set (n in the paper).
	NumPivots int
	// MaxLevel bounds the depth of the dynamic cell tree; permutation
	// prefixes of at most this length address cells.
	MaxLevel int
	// BucketCapacity is the split threshold of a leaf cell.
	BucketCapacity int
	// Storage selects the bucket backend.
	Storage StorageKind
	// DiskPath is the bucket directory for StorageDisk.
	DiskPath string
	// Ranking selects the approximate-search cell ordering.
	Ranking RankStrategy
	// Shards partitions the index across this many independently locked
	// sub-indexes keyed by the first permutation element. The field is
	// consumed by internal/engine — a bare Index always behaves as one
	// shard. 0 means 1 (the pre-sharding behavior).
	Shards int
	// EagerRootSplit splits the root cell on the first insert instead of
	// waiting for BucketCapacity overflow, so every leaf lies at prefix
	// length >= 1. internal/engine sets it on shard sub-indexes: it makes a
	// shard's cells (and their promise values) coincide exactly with the
	// corresponding cells of an unsharded tree, which keeps the cross-shard
	// promise merge faithful to Algorithm 4's global cell ordering.
	EagerRootSplit bool
}

func (c Config) validate() error {
	if c.NumPivots <= 0 {
		return errors.New("mindex: NumPivots must be positive")
	}
	if c.MaxLevel <= 0 || c.MaxLevel > c.NumPivots {
		return fmt.Errorf("mindex: MaxLevel must be in 1..NumPivots, got %d", c.MaxLevel)
	}
	if c.BucketCapacity <= 0 {
		return errors.New("mindex: BucketCapacity must be positive")
	}
	switch c.Storage {
	case StorageMemory:
	case StorageDisk:
		if c.DiskPath == "" {
			return errors.New("mindex: StorageDisk requires DiskPath")
		}
	default:
		return fmt.Errorf("mindex: unknown storage kind %d", c.Storage)
	}
	if c.Ranking != RankFootrule && c.Ranking != RankDistSum {
		return fmt.Errorf("mindex: unknown ranking strategy %d", c.Ranking)
	}
	if c.Shards < 0 || c.Shards > MaxShards {
		return fmt.Errorf("mindex: Shards must be in 0..%d, got %d", MaxShards, c.Shards)
	}
	return nil
}

// MaxShards bounds Config.Shards against absurd partition counts.
const MaxShards = 1 << 10

// Entry is one indexed record as stored on the (possibly untrusted) server.
//
// Exactly one of Payload (encrypted deployments) or Vec (plain deployments)
// is normally set; Perm always is. Dists is present when the data owner uses
// the precise strategy (Algorithm 1, line 4) and enables server-side pivot
// filtering; without it only the approximate strategy is available.
type Entry struct {
	ID      uint64
	Perm    []int32   // permutation prefix, at least Config.MaxLevel long
	Dists   []float64 // object–pivot distances (optional, precise strategy)
	Payload []byte    // opaque encrypted object (encrypted deployments)
	Vec     metric.Vector
}

// Index is a thread-safe M-Index over Entries. All operations use only
// pivot-space information carried by the entries and queries; see the
// package comment.
type Index struct {
	mu      sync.RWMutex
	cfg     Config
	store   BucketStore
	root    *node
	weights []float64
	size    int
}

// node is a cell of the dynamic Voronoi cell tree. A node is either a leaf
// owning a bucket, or an internal node with children keyed by the next
// permutation element.
type node struct {
	prefix   []int32
	children map[int32]*node // nil for leaves
	bucket   BucketID
	count    int // objects in this subtree

	// Ball bounds: min/max distance from subtree objects to the cell's
	// defining pivot (the last prefix element). Valid only while every
	// inserted entry carried a distance vector.
	rmin, rmax  float64
	boundsValid bool
}

func (n *node) isLeaf() bool { return n.children == nil }

func (n *node) level() int { return len(n.prefix) }

// lastPivot returns the cell's defining pivot index, or -1 for the root.
func (n *node) lastPivot() int32 {
	if len(n.prefix) == 0 {
		return -1
	}
	return n.prefix[len(n.prefix)-1]
}

// New creates an empty M-Index.
func New(cfg Config) (*Index, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	var store BucketStore
	var err error
	switch cfg.Storage {
	case StorageMemory:
		store = NewMemStore()
	case StorageDisk:
		store, err = NewDiskStore(cfg.DiskPath)
		if err != nil {
			return nil, err
		}
	}
	idx := &Index{
		cfg:     cfg,
		store:   store,
		weights: pivot.FootruleWeights(cfg.MaxLevel),
	}
	rootBucket, err := store.Create()
	if err != nil {
		return nil, err
	}
	idx.root = &node{bucket: rootBucket, rmin: 0, rmax: 0, boundsValid: true}
	return idx, nil
}

// Config returns the index configuration.
func (ix *Index) Config() Config { return ix.cfg }

// Size returns the number of indexed entries.
func (ix *Index) Size() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.size
}

// Close releases the bucket storage.
func (ix *Index) Close() error {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	return ix.store.Close()
}

// Insert adds an entry to the index — the server side of the paper's insert
// operation (Figure 4): locate the leaf cell of the entry's permutation
// prefix, store the entry, split the leaf if it overflows.
func (ix *Index) Insert(e Entry) error {
	if len(e.Perm) < ix.cfg.MaxLevel {
		return fmt.Errorf("mindex: entry permutation has %d elements, need at least MaxLevel=%d",
			len(e.Perm), ix.cfg.MaxLevel)
	}
	for _, p := range e.Perm {
		if p < 0 || int(p) >= ix.cfg.NumPivots {
			return fmt.Errorf("mindex: permutation element %d out of range [0,%d)", p, ix.cfg.NumPivots)
		}
	}
	if e.Dists != nil && len(e.Dists) != ix.cfg.NumPivots {
		return fmt.Errorf("mindex: entry has %d pivot distances, want %d", len(e.Dists), ix.cfg.NumPivots)
	}
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if err := ix.insertAt(ix.root, e); err != nil {
		return err
	}
	ix.size++
	return nil
}

// InsertBulk inserts a batch of entries, the unit the construction-phase
// experiments measure (bulk size 1,000 in the paper).
func (ix *Index) InsertBulk(entries []Entry) error {
	for i := range entries {
		if err := ix.Insert(entries[i]); err != nil {
			return fmt.Errorf("mindex: bulk insert entry %d: %w", i, err)
		}
	}
	return nil
}

func (ix *Index) insertAt(n *node, e Entry) error {
	for !n.isLeaf() {
		n.count++
		n.updateBounds(e)
		key := e.Perm[n.level()]
		child, ok := n.children[key]
		if !ok {
			b, err := ix.store.Create()
			if err != nil {
				return err
			}
			child = &node{
				prefix:      appendPrefix(n.prefix, key),
				bucket:      b,
				boundsValid: true,
			}
			if e.Dists != nil {
				child.rmin = e.Dists[key]
				child.rmax = e.Dists[key]
			}
			n.children[key] = child
		}
		n = child
	}
	n.count++
	n.updateBounds(e)
	if err := ix.store.Append(n.bucket, e); err != nil {
		return err
	}
	overflow := n.count > ix.cfg.BucketCapacity ||
		(ix.cfg.EagerRootSplit && n.level() == 0)
	if overflow && n.level() < ix.cfg.MaxLevel {
		return ix.split(n)
	}
	return nil
}

// updateBounds maintains the node's ball bounds from the entry's distance
// vector; entries without distances invalidate the bounds (the cell can then
// no longer be ball-pruned, but remains correct).
func (n *node) updateBounds(e Entry) {
	p := n.lastPivot()
	if p < 0 {
		return
	}
	if e.Dists == nil {
		n.boundsValid = false
		return
	}
	d := e.Dists[p]
	if n.count == 1 {
		n.rmin, n.rmax = d, d
		return
	}
	if d < n.rmin {
		n.rmin = d
	}
	if d > n.rmax {
		n.rmax = d
	}
}

// split turns an overflowing leaf into an internal node, redistributing its
// bucket by the next permutation element — the recursive Voronoi step.
func (ix *Index) split(n *node) error {
	entries, err := ix.store.Load(n.bucket)
	if err != nil {
		return err
	}
	if err := ix.store.Free(n.bucket); err != nil {
		return err
	}
	n.children = make(map[int32]*node)
	n.bucket = 0
	level := n.level()
	for _, e := range entries {
		key := e.Perm[level]
		child, ok := n.children[key]
		if !ok {
			b, err := ix.store.Create()
			if err != nil {
				return err
			}
			child = &node{
				prefix:      appendPrefix(n.prefix, key),
				bucket:      b,
				boundsValid: true,
			}
			n.children[key] = child
		}
		child.count++
		child.updateBounds(e)
		if err := ix.store.Append(child.bucket, e); err != nil {
			return err
		}
	}
	// A pathological split can put everything into one child (all objects
	// share the next permutation element); recurse so capacity is restored
	// where possible.
	for _, child := range n.children {
		if child.count > ix.cfg.BucketCapacity && child.level() < ix.cfg.MaxLevel {
			if err := ix.split(child); err != nil {
				return err
			}
		}
	}
	return nil
}

func appendPrefix(prefix []int32, key int32) []int32 {
	out := make([]int32, len(prefix)+1)
	copy(out, prefix)
	out[len(prefix)] = key
	return out
}

// Stats summarizes the tree shape, used by tooling and tests.
type Stats struct {
	Entries     int
	Leaves      int
	InnerNodes  int
	MaxDepth    int
	MaxBucket   int
	TotalBucket int
}

// TreeStats walks the cell tree and reports its shape.
func (ix *Index) TreeStats() Stats {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	var s Stats
	s.Entries = ix.size
	var walk func(n *node)
	walk = func(n *node) {
		if n.level() > s.MaxDepth {
			s.MaxDepth = n.level()
		}
		if n.isLeaf() {
			s.Leaves++
			s.TotalBucket += n.count
			if n.count > s.MaxBucket {
				s.MaxBucket = n.count
			}
			return
		}
		s.InnerNodes++
		for _, c := range n.children {
			walk(c)
		}
	}
	walk(ix.root)
	return s
}
