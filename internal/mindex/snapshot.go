package mindex

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"os"

	"simcloud/internal/pivot"
)

// Snapshot support: a disk-backed M-Index can persist its cell tree to a
// small metadata file and reattach to its bucket directory after a restart,
// so an outsourced deployment does not re-ingest the collection. Bucket
// payloads already live in the DiskStore directory; the snapshot holds the
// tree shape, per-node bounds and per-bucket entry counts.
//
// Snapshot file format (little endian):
//
//	magic    [8]byte "SIMCSNAP"
//	version  uint8 (1)
//	numPivots, maxLevel, bucketCapacity uint32
//	ranking  uint8
//	size     uint64  (total entries)
//	nextBkt  uint64  (DiskStore allocation cursor)
//	tree     preorder node records (see writeNode)

var snapMagic = [8]byte{'S', 'I', 'M', 'C', 'S', 'N', 'A', 'P'}

// ErrSnapshot reports a malformed or mismatched snapshot file.
var ErrSnapshot = errors.New("mindex: invalid snapshot")

// SaveSnapshot writes the index metadata to path. Only disk-backed indexes
// can be snapshotted — a memory store loses its buckets with the process.
func (ix *Index) SaveSnapshot(path string) error {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	ds, ok := ix.store.(*DiskStore)
	if !ok {
		return errors.New("mindex: only disk-backed indexes support snapshots")
	}
	if err := ds.Sync(); err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	if _, err := w.Write(snapMagic[:]); err != nil {
		f.Close()
		return err
	}
	hdr := make([]byte, 0, 64)
	hdr = append(hdr, 1) // version
	hdr = binary.LittleEndian.AppendUint32(hdr, uint32(ix.cfg.NumPivots))
	hdr = binary.LittleEndian.AppendUint32(hdr, uint32(ix.cfg.MaxLevel))
	hdr = binary.LittleEndian.AppendUint32(hdr, uint32(ix.cfg.BucketCapacity))
	hdr = append(hdr, byte(ix.cfg.Ranking))
	hdr = binary.LittleEndian.AppendUint64(hdr, uint64(ix.size))
	hdr = binary.LittleEndian.AppendUint64(hdr, uint64(ds.NextID()))
	if _, err := w.Write(hdr); err != nil {
		f.Close()
		return err
	}
	if err := writeNode(w, ix.root); err != nil {
		f.Close()
		return err
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Node record:
//
//	prefixLen uint16 | prefix int32s
//	kind      uint8  (0 internal, 1 leaf)
//	count     uint32
//	rmin, rmax float64 | boundsValid uint8
//	leaf:     bucket uint64
//	internal: childCount uint16 | children...
func writeNode(w io.Writer, n *node) error {
	buf := make([]byte, 0, 64)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(n.prefix)))
	for _, p := range n.prefix {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(p))
	}
	kind := byte(0)
	if n.isLeaf() {
		kind = 1
	}
	buf = append(buf, kind)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(n.count))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(n.rmin))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(n.rmax))
	valid := byte(0)
	if n.boundsValid {
		valid = 1
	}
	buf = append(buf, valid)
	if n.isLeaf() {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(n.bucket))
		_, err := w.Write(buf)
		return err
	}
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(n.children)))
	if _, err := w.Write(buf); err != nil {
		return err
	}
	// Deterministic child order: ascending key.
	keys := make([]int32, 0, len(n.children))
	for k := range n.children {
		keys = append(keys, k)
	}
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	for _, k := range keys {
		if err := writeNode(w, n.children[k]); err != nil {
			return err
		}
	}
	return nil
}

// LoadSnapshot reopens a disk-backed index from its snapshot file and
// bucket directory. cfg must match the snapshotted configuration (pivot
// count, max level, bucket capacity, ranking) and carry the DiskPath.
func LoadSnapshot(cfg Config, path string) (*Index, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.Storage != StorageDisk {
		return nil, errors.New("mindex: snapshots require disk storage")
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	r := &snapReader{buf: raw}
	var magic [8]byte
	copy(magic[:], r.take(8))
	if magic != snapMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrSnapshot)
	}
	if v := r.u8(); v != 1 {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrSnapshot, v)
	}
	numPivots := int(r.u32())
	maxLevel := int(r.u32())
	bucketCap := int(r.u32())
	ranking := RankStrategy(r.u8())
	size := int(r.u64())
	next := BucketID(r.u64())
	if r.err != nil {
		return nil, fmt.Errorf("%w: truncated header", ErrSnapshot)
	}
	if numPivots != cfg.NumPivots || maxLevel != cfg.MaxLevel ||
		bucketCap != cfg.BucketCapacity || ranking != cfg.Ranking {
		return nil, fmt.Errorf("%w: snapshot parameters (pivots=%d level=%d bucket=%d ranking=%v) do not match config",
			ErrSnapshot, numPivots, maxLevel, bucketCap, ranking)
	}
	root, counts, err := readNode(r, 0)
	if err != nil {
		return nil, err
	}
	if r.err != nil || len(r.buf) != 0 {
		return nil, fmt.Errorf("%w: trailing or missing bytes", ErrSnapshot)
	}
	store, err := ReopenDiskStore(cfg.DiskPath, counts, next)
	if err != nil {
		return nil, err
	}
	ix := &Index{
		cfg:     cfg,
		store:   store,
		root:    root,
		weights: pivot.FootruleWeights(cfg.MaxLevel),
		size:    size,
	}
	return ix, nil
}

type snapReader struct {
	buf []byte
	err error
}

func (r *snapReader) take(n int) []byte {
	if r.err != nil || len(r.buf) < n {
		r.err = ErrSnapshot
		return make([]byte, n)
	}
	out := r.buf[:n]
	r.buf = r.buf[n:]
	return out
}

func (r *snapReader) u8() uint8   { return r.take(1)[0] }
func (r *snapReader) u16() uint16 { return binary.LittleEndian.Uint16(r.take(2)) }
func (r *snapReader) u32() uint32 { return binary.LittleEndian.Uint32(r.take(4)) }
func (r *snapReader) u64() uint64 { return binary.LittleEndian.Uint64(r.take(8)) }
func (r *snapReader) f64() float64 {
	return math.Float64frombits(r.u64())
}

const maxSnapshotDepth = 1 << 10

func readNode(r *snapReader, depth int) (*node, map[BucketID]int, error) {
	if depth > maxSnapshotDepth {
		return nil, nil, fmt.Errorf("%w: tree deeper than %d", ErrSnapshot, maxSnapshotDepth)
	}
	prefixLen := int(r.u16())
	if r.err != nil || prefixLen > maxSnapshotDepth {
		return nil, nil, fmt.Errorf("%w: implausible prefix length", ErrSnapshot)
	}
	prefix := make([]int32, prefixLen)
	for i := range prefix {
		prefix[i] = int32(r.u32())
	}
	kind := r.u8()
	count := int(r.u32())
	rmin := r.f64()
	rmax := r.f64()
	valid := r.u8() == 1
	if r.err != nil {
		return nil, nil, fmt.Errorf("%w: truncated node", ErrSnapshot)
	}
	n := &node{prefix: prefix, count: count, rmin: rmin, rmax: rmax, boundsValid: valid}
	counts := make(map[BucketID]int)
	switch kind {
	case 1:
		n.bucket = BucketID(r.u64())
		if r.err != nil {
			return nil, nil, fmt.Errorf("%w: truncated leaf", ErrSnapshot)
		}
		counts[n.bucket] = count
		return n, counts, nil
	case 0:
		childCount := int(r.u16())
		if r.err != nil || childCount > 1<<16 {
			return nil, nil, fmt.Errorf("%w: implausible child count", ErrSnapshot)
		}
		n.children = make(map[int32]*node, childCount)
		for range childCount {
			child, childCounts, err := readNode(r, depth+1)
			if err != nil {
				return nil, nil, err
			}
			if len(child.prefix) != len(prefix)+1 {
				return nil, nil, fmt.Errorf("%w: child depth mismatch", ErrSnapshot)
			}
			n.children[child.lastPivot()] = child
			for id, c := range childCounts {
				counts[id] = c
			}
		}
		return n, counts, nil
	}
	return nil, nil, fmt.Errorf("%w: unknown node kind %d", ErrSnapshot, kind)
}
