package mindex

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"

	"simcloud/internal/pivot"
)

// Snapshot support: a disk-backed M-Index can persist its cell tree to a
// small metadata file and reattach to its bucket directory after a restart,
// so an outsourced deployment does not re-ingest the collection. Bucket
// payloads already live in the DiskStore directory; the snapshot holds the
// tree shape, per-node bounds, per-bucket entry counts, and — since
// version 2 — the tombstone set of deleted-but-not-compacted entries.
//
// Snapshot file format (little endian):
//
//	magic    [8]byte "SIMCSNAP"
//	version  uint8 (1 or 2)
//	numPivots, maxLevel, bucketCapacity uint32
//	ranking  uint8
//	size     uint64  (live entries)
//	nextBkt  uint64  (DiskStore allocation cursor)
//	v2 only: dirty uint8 | deadCount uint64 | tombstoned IDs uint64 × deadCount
//	tree     preorder node records (see writeNode)
//
// Version 1 files (written before the index became mutable) load as
// tombstone-free indexes.

var snapMagic = [8]byte{'S', 'I', 'M', 'C', 'S', 'N', 'A', 'P'}

// ErrSnapshot reports a malformed or mismatched snapshot file.
var ErrSnapshot = errors.New("mindex: invalid snapshot")

// SaveSnapshot writes the index metadata to path. Only disk-backed indexes
// can be snapshotted — a memory store loses its buckets with the process.
// The file is written to a temporary sibling and renamed into place, so an
// interrupted save never truncates an existing snapshot.
func (ix *Index) SaveSnapshot(path string) error {
	// Serialize with mutators: the writer-private dirty flag must describe
	// the snapshot being persisted, and no mutation may replace or free
	// buckets between reading the tree and syncing the store.
	ix.wmu.Lock()
	defer ix.wmu.Unlock()
	st := ix.state.Load()
	ds, ok := ix.store.(*DiskStore)
	if !ok {
		return errors.New("mindex: only disk-backed indexes support snapshots")
	}
	if err := ds.Sync(); err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := ix.writeSnapshot(tmp, ds, st); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	// Persist the rename itself: without the directory fsync a crash can
	// still forget that the new file replaced the old one.
	if dir, err := os.Open(filepath.Dir(path)); err == nil {
		syncErr := dir.Sync()
		dir.Close()
		return syncErr
	}
	return nil
}

func (ix *Index) writeSnapshot(path string, ds *DiskStore, st *readState) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	if _, err := w.Write(snapMagic[:]); err != nil {
		f.Close()
		return err
	}
	hdr := make([]byte, 0, 64+8*len(st.tombstones))
	hdr = append(hdr, 2) // version
	hdr = binary.LittleEndian.AppendUint32(hdr, uint32(ix.cfg.NumPivots))
	hdr = binary.LittleEndian.AppendUint32(hdr, uint32(ix.cfg.MaxLevel))
	hdr = binary.LittleEndian.AppendUint32(hdr, uint32(ix.cfg.BucketCapacity))
	hdr = append(hdr, byte(ix.cfg.Ranking))
	hdr = binary.LittleEndian.AppendUint64(hdr, uint64(st.size))
	hdr = binary.LittleEndian.AppendUint64(hdr, uint64(ds.NextID()))
	dirty := byte(0)
	if ix.dirty {
		dirty = 1
	}
	hdr = append(hdr, dirty)
	hdr = binary.LittleEndian.AppendUint64(hdr, uint64(len(st.tombstones)))
	// Deterministic tombstone order: ascending ID.
	dead := make([]uint64, 0, len(st.tombstones))
	for id := range st.tombstones {
		dead = append(dead, id)
	}
	sort.Slice(dead, func(i, j int) bool { return dead[i] < dead[j] })
	for _, id := range dead {
		hdr = binary.LittleEndian.AppendUint64(hdr, id)
	}
	if _, err := w.Write(hdr); err != nil {
		f.Close()
		return err
	}
	if err := writeNode(w, st.root); err != nil {
		f.Close()
		return err
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	// The data must be on stable storage before the caller renames this
	// file over the previous snapshot — otherwise a power cut can replace
	// the only good snapshot with a truncated one.
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Node record:
//
//	prefixLen uint16 | prefix int32s
//	kind      uint8  (0 internal, 1 leaf)
//	count     uint32
//	dead      uint32 (version 2 only)
//	rmin, rmax float64 | boundsValid uint8
//	leaf:     bucket uint64
//	internal: childCount uint16 | children...
func writeNode(w io.Writer, n *node) error {
	buf := make([]byte, 0, 64)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(n.prefix)))
	for _, p := range n.prefix {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(p))
	}
	kind := byte(0)
	if n.isLeaf() {
		kind = 1
	}
	buf = append(buf, kind)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(n.count))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(n.dead))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(n.rmin))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(n.rmax))
	valid := byte(0)
	if n.boundsValid {
		valid = 1
	}
	buf = append(buf, valid)
	if n.isLeaf() {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(n.bucket))
		_, err := w.Write(buf)
		return err
	}
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(n.kids)))
	if _, err := w.Write(buf); err != nil {
		return err
	}
	// The child table is sorted by key, so the file order is deterministic.
	for i := range n.kids {
		if err := writeNode(w, n.kids[i].n); err != nil {
			return err
		}
	}
	return nil
}

// LoadSnapshot reopens a disk-backed index from its snapshot file and
// bucket directory. cfg must match the snapshotted configuration (pivot
// count, max level, bucket capacity, ranking) and carry the DiskPath.
func LoadSnapshot(cfg Config, path string) (*Index, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.Storage != StorageDisk {
		return nil, errors.New("mindex: snapshots require disk storage")
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	r := &snapReader{buf: raw}
	var magic [8]byte
	copy(magic[:], r.take(8))
	if magic != snapMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrSnapshot)
	}
	version := r.u8()
	if version != 1 && version != 2 {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrSnapshot, version)
	}
	numPivots := int(r.u32())
	maxLevel := int(r.u32())
	bucketCap := int(r.u32())
	ranking := RankStrategy(r.u8())
	size := int(r.u64())
	next := BucketID(r.u64())
	dirty := false
	tombstones := make(map[uint64]struct{})
	if version == 2 {
		dirty = r.u8() == 1
		deadCount := int(r.u64())
		if r.err != nil || deadCount < 0 || deadCount > len(r.buf)/8 {
			return nil, fmt.Errorf("%w: implausible tombstone count", ErrSnapshot)
		}
		for range deadCount {
			tombstones[r.u64()] = struct{}{}
		}
		if len(tombstones) != deadCount {
			return nil, fmt.Errorf("%w: duplicate tombstone IDs", ErrSnapshot)
		}
	}
	if r.err != nil {
		return nil, fmt.Errorf("%w: truncated header", ErrSnapshot)
	}
	if numPivots != cfg.NumPivots || maxLevel != cfg.MaxLevel ||
		bucketCap != cfg.BucketCapacity || ranking != cfg.Ranking {
		return nil, fmt.Errorf("%w: snapshot parameters (pivots=%d level=%d bucket=%d ranking=%v) do not match config",
			ErrSnapshot, numPivots, maxLevel, bucketCap, ranking)
	}
	root, counts, err := readNode(r, 0, int(version))
	if err != nil {
		return nil, err
	}
	if r.err != nil || len(r.buf) != 0 {
		return nil, fmt.Errorf("%w: trailing or missing bytes", ErrSnapshot)
	}
	if root.dead != len(tombstones) || root.count != size+root.dead {
		return nil, fmt.Errorf("%w: entry counts disagree (tree %d/%d dead, header %d live + %d tombstones)",
			ErrSnapshot, root.count, root.dead, size, len(tombstones))
	}
	store, err := ReopenDiskStore(cfg.DiskPath, counts, next)
	if err != nil {
		return nil, err
	}
	store.SetCacheBudget(cfg.DiskCacheBytes)
	ix := &Index{
		cfg:     cfg,
		store:   store,
		weights: pivot.FootruleWeights(cfg.MaxLevel),
		dirty:   dirty,
	}
	ix.state.Store(&readState{
		root:       root,
		size:       size,
		dead:       len(tombstones),
		tombstones: tombstones,
	})
	// Pre-warm the entry-location map now, while the index is still
	// private to this goroutine: ensureLoc walks every bucket, and paying
	// that walk here keeps the first post-restore mutation as cheap as a
	// steady-state one (it also primes the disk store's bucket cache for
	// early queries). Before this ran eagerly, the first mutation after a
	// restore stalled for the whole rebuild.
	if err := ix.ensureLoc(); err != nil {
		store.Close()
		return nil, err
	}
	return ix, nil
}

type snapReader struct {
	buf []byte
	err error
}

func (r *snapReader) take(n int) []byte {
	if r.err != nil || len(r.buf) < n {
		r.err = ErrSnapshot
		return make([]byte, n)
	}
	out := r.buf[:n]
	r.buf = r.buf[n:]
	return out
}

func (r *snapReader) u8() uint8   { return r.take(1)[0] }
func (r *snapReader) u16() uint16 { return binary.LittleEndian.Uint16(r.take(2)) }
func (r *snapReader) u32() uint32 { return binary.LittleEndian.Uint32(r.take(4)) }
func (r *snapReader) u64() uint64 { return binary.LittleEndian.Uint64(r.take(8)) }
func (r *snapReader) f64() float64 {
	return math.Float64frombits(r.u64())
}

const maxSnapshotDepth = 1 << 10

func readNode(r *snapReader, depth, version int) (*node, map[BucketID]int, error) {
	if depth > maxSnapshotDepth {
		return nil, nil, fmt.Errorf("%w: tree deeper than %d", ErrSnapshot, maxSnapshotDepth)
	}
	prefixLen := int(r.u16())
	if r.err != nil || prefixLen > maxSnapshotDepth {
		return nil, nil, fmt.Errorf("%w: implausible prefix length", ErrSnapshot)
	}
	prefix := make([]int32, prefixLen)
	for i := range prefix {
		prefix[i] = int32(r.u32())
	}
	kind := r.u8()
	count := int(r.u32())
	dead := 0
	if version >= 2 {
		dead = int(r.u32())
	}
	rmin := r.f64()
	rmax := r.f64()
	valid := r.u8() == 1
	if r.err != nil {
		return nil, nil, fmt.Errorf("%w: truncated node", ErrSnapshot)
	}
	if dead > count {
		return nil, nil, fmt.Errorf("%w: node with %d dead of %d entries", ErrSnapshot, dead, count)
	}
	n := &node{prefix: prefix, count: count, dead: dead, rmin: rmin, rmax: rmax, boundsValid: valid}
	counts := make(map[BucketID]int)
	switch kind {
	case 1:
		n.bucket = BucketID(r.u64())
		n.pin = &pinCell{}
		if r.err != nil {
			return nil, nil, fmt.Errorf("%w: truncated leaf", ErrSnapshot)
		}
		counts[n.bucket] = count
		return n, counts, nil
	case 0:
		childCount := int(r.u16())
		if r.err != nil || childCount > 1<<16 {
			return nil, nil, fmt.Errorf("%w: implausible child count", ErrSnapshot)
		}
		if childCount == 0 {
			// A childless internal node would be indistinguishable from a
			// leaf (kids == nil) and the writer never produces one.
			return nil, nil, fmt.Errorf("%w: internal node without children", ErrSnapshot)
		}
		n.kids = make([]child, 0, childCount)
		for range childCount {
			c, childCounts, err := readNode(r, depth+1, version)
			if err != nil {
				return nil, nil, err
			}
			if len(c.prefix) != len(prefix)+1 {
				return nil, nil, fmt.Errorf("%w: child depth mismatch", ErrSnapshot)
			}
			// Children are written in strictly ascending key order; appending
			// under that check rebuilds the sorted child table in O(1) each.
			key := c.lastPivot()
			if len(n.kids) > 0 && key <= n.kids[len(n.kids)-1].key {
				return nil, nil, fmt.Errorf("%w: duplicate or misordered child key %d", ErrSnapshot, key)
			}
			n.kids = append(n.kids, child{key: key, n: c})
			for id, cnt := range childCounts {
				counts[id] = cnt
			}
		}
		return n, counts, nil
	}
	return nil, nil, fmt.Errorf("%w: unknown node kind %d", ErrSnapshot, kind)
}
