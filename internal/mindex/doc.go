// Package mindex implements the M-Index (Novak & Batko 2009; Novak, Batko,
// Zezula 2011): a dynamic, disk-efficient metric index based on recursive
// Voronoi partitioning driven by pivot-permutation prefixes.
//
// Each indexed object is assigned to the Voronoi cell of its closest pivot;
// cells exceeding a capacity limit are recursively re-partitioned by the
// next-closest pivot, producing a dynamic cell tree addressed by permutation
// prefixes (Figures 2 and 3 of the paper). Range queries prune the tree with
// metric constraints (generalized-hyperplane and ball bounds) and filter
// individual objects with the pivot-distance lower bound; approximate k-NN
// queries rank cells by a promise value and collect a candidate set of a
// requested size (Algorithms 3 and 4).
//
// # Key invariant: pivot-space-only operation
//
// Every index operation here consumes only object–pivot and query–pivot
// distances (or the permutations derived from them) — never the objects or
// pivots themselves. The index therefore runs unmodified on an untrusted
// server that stores opaque encrypted payloads: this is precisely the
// property the paper exploits. The Plain wrapper in plain.go adds the
// server-side refinement used by the non-encrypted baseline, which does
// hold the pivots and raw vectors.
//
// # Key invariant: tombstones and compaction
//
// The index is mutable. Delete marks entries dead through an ID-keyed
// tombstone set — searches skip tombstoned entries immediately, so a
// deleted entry is never observable in any result even though its record
// still occupies its bucket. Entry IDs must be unique among live entries
// (Insert returns ErrDuplicateID for a live duplicate and physically
// purges a dead twin on re-insert). Compact physically drops tombstoned
// entries and merges cells that deletion left underfull; afterwards the
// index is byte-identical to one freshly built from the surviving entries
// in arrival order (see DESIGN.md §Mutability), so churn never degrades
// search semantics.
//
// # Key invariant: deterministic tree shape and candidate order
//
// The cell tree's shape depends only on the final entry multiset (a cell
// splits iff its count exceeds BucketCapacity), not on arrival order, and
// bucket order within a cell is arrival order. Approximate candidates are
// emitted cell by cell in (promise, prefix) order — the contract the
// sharded engine and the cluster coordinator rely on when they merge
// partitioned streams (internal/merge).
package mindex
