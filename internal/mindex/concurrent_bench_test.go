package mindex

// Concurrent-scaling benchmarks for the read path. Run with -cpu 1,4,8 they
// produce the reader-scaling curve the CI bench job gates on: before the
// RCU snapshot refactor every search serialized on the index RWMutex (reads
// flatlined as cores were added, and collapsed under a churning writer);
// after it readers are wait-free and the curve should be near-linear. Both
// curves are committed under bench/ (BENCH_RWMUTEX_6.txt is the pre-refactor
// lock-based baseline, BENCH_BASELINE_6.txt the snapshot-based result).

import (
	"sync"
	"sync/atomic"
	"testing"

	"simcloud/internal/dataset"
	"simcloud/internal/metric"
	"simcloud/internal/pivot"

	"math/rand/v2"
)

// benchIndexChurn builds the standard benchmark index plus a disjoint set of
// pre-computed churn entries (fresh IDs far above the dataset's) that a
// background writer can insert, delete, re-insert and compact away while
// readers run.
func benchIndexChurn(b *testing.B, cfg Config, n int) (*Index, []ApproxQuery, [][]float64, []Entry) {
	b.Helper()
	ds := dataset.Clustered(4242, n, 8, 10, metric.L2{})
	rng := rand.New(rand.NewPCG(4242, 7))
	pv := pivot.SelectRandom(rng, ds.Dist, ds.Objects, cfg.NumPivots)
	ix, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { ix.Close() })
	for _, o := range ds.Objects {
		dists := pv.Distances(o.Vec)
		err := ix.Insert(Entry{ID: o.ID, Perm: pivot.Permutation(dists), Dists: dists})
		if err != nil {
			b.Fatal(err)
		}
	}
	var queries []ApproxQuery
	var qDists [][]float64
	for i := range 32 {
		q := ds.Objects[(i*173)%len(ds.Objects)].Vec
		d := pv.Distances(q)
		queries = append(queries, ApproxQuery{
			Ranks: pivot.Ranks(pivot.Permutation(d)),
			Dists: d,
		})
		qDists = append(qDists, d)
	}
	churn := make([]Entry, 0, 256)
	for i := range 256 {
		o := ds.Objects[(i*37)%len(ds.Objects)]
		dists := pv.Distances(o.Vec)
		churn = append(churn, Entry{
			ID:    uint64(1)<<40 + uint64(i),
			Perm:  pivot.Permutation(dists),
			Dists: dists,
		})
	}
	return ix, queries, qDists, churn
}

// BenchmarkConcurrentReadApprox measures parallel approximate candidate
// collection against a static index — the pure reader-scaling curve. With
// the RWMutex read path the RLock/RUnlock pair's shared-cacheline traffic
// caps scaling; with published snapshots readers share nothing mutable.
func BenchmarkConcurrentReadApprox(b *testing.B) {
	ix, queries, _ := benchIndex(b, benchMemConfig(), 8000)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			cands, err := ix.ApproxCandidates(queries[i%len(queries)], 600)
			if err != nil {
				b.Error(err)
				return
			}
			if len(cands) == 0 {
				b.Error("no candidates")
				return
			}
			i++
		}
	})
}

// BenchmarkConcurrentReadRange is the reader-scaling curve for the precise
// range traversal (tree pruning + pivot filtering).
func BenchmarkConcurrentReadRange(b *testing.B) {
	ix, _, qDists := benchIndex(b, benchMemConfig(), 8000)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			if _, err := ix.RangeByDists(qDists[i%len(qDists)], 3); err != nil {
				b.Error(err)
				return
			}
			i++
		}
	})
}

// BenchmarkConcurrentSearchUnderChurn measures parallel approximate searches
// while one background writer continuously inserts, deletes, re-inserts and
// periodically compacts — the workload ROADMAP item 2 names: with a single
// RWMutex every reader stalls behind every mutation (and Compact holds the
// write lock for a full tree rebuild); with snapshot publication readers
// proceed wait-free on the last published tree.
func BenchmarkConcurrentSearchUnderChurn(b *testing.B) {
	ix, queries, _, churn := benchIndexChurn(b, benchMemConfig(), 8000)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var writerOps atomic.Int64
	wg.Add(1)
	go func() {
		defer wg.Done()
		i := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			e := churn[i%len(churn)]
			if err := ix.Insert(e); err != nil {
				b.Error(err)
				return
			}
			if _, err := ix.Delete([]uint64{e.ID}); err != nil {
				b.Error(err)
				return
			}
			i++
			if i%128 == 0 {
				if err := ix.Compact(); err != nil {
					b.Error(err)
					return
				}
			}
			writerOps.Add(1)
		}
	}()
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			cands, err := ix.ApproxCandidates(queries[i%len(queries)], 600)
			if err != nil {
				b.Error(err)
				return
			}
			if len(cands) == 0 {
				b.Error("no candidates")
				return
			}
			i++
		}
	})
	b.StopTimer()
	close(stop)
	wg.Wait()
	b.ReportMetric(float64(writerOps.Load())/b.Elapsed().Seconds(), "writer-ops/s")
}

// BenchmarkConcurrentStatsUnderChurn measures Size/Dead/TreeStats while a
// writer churns — the bookkeeping reads that used to take the same lock as
// mutations (and, taken separately, could report mutually inconsistent
// numbers; see Counts).
func BenchmarkConcurrentStatsUnderChurn(b *testing.B) {
	ix, _, _, churn := benchIndexChurn(b, benchMemConfig(), 8000)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		i := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			e := churn[i%len(churn)]
			if err := ix.Insert(e); err != nil {
				b.Error(err)
				return
			}
			if _, err := ix.Delete([]uint64{e.ID}); err != nil {
				b.Error(err)
				return
			}
			i++
		}
	}()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if ix.Size() < 0 {
				b.Error("negative size")
				return
			}
			st := ix.TreeStats()
			if st.Entries < 0 {
				b.Error("negative entries")
				return
			}
		}
	})
	b.StopTimer()
	close(stop)
	wg.Wait()
}
