package mindex

import (
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestSnapshotConsistencyUnderChurn hammers the lock-free read path while a
// writer continuously inserts, deletes, re-inserts and compacts: every
// reader observation must be internally consistent — drawn from exactly one
// published snapshot, never a torn mix of two. The base collection of 400
// entries is never touched, and the writer keeps at most one churn entry
// live at a time, so every consistent snapshot shows exactly 400 or 401 live
// entries with no duplicate IDs. Run under -race this also proves the
// publication protocol establishes the necessary happens-before edges, for
// both storage backends (memory pins leaf views eagerly; disk readers take
// the era-checked store path with the pin fallback around Compact/purge).
func TestSnapshotConsistencyUnderChurn(t *testing.T) {
	for _, storage := range []StorageKind{StorageMemory, StorageDisk} {
		t.Run(storage.String(), func(t *testing.T) {
			cfg := Config{
				NumPivots: 8, MaxLevel: 4, BucketCapacity: 6,
				Storage: storage, Ranking: RankFootrule,
			}
			if storage == StorageDisk {
				cfg.DiskPath = t.TempDir()
			}
			ix, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			defer ix.Close()
			rng := rand.New(rand.NewPCG(99, uint64(storage)))
			const baseSize = 400
			if err := ix.InsertBulk(intDistEntries(rng, baseSize, 8)); err != nil {
				t.Fatal(err)
			}
			churn := intDistEntries(rng, 64, 8)
			for i := range churn {
				churn[i].ID += 1 << 20
			}
			queries := promiseTestQueries(rng, 8, 8, false)

			stop := make(chan struct{})
			var writerOps atomic.Int64
			var wg sync.WaitGroup
			wg.Add(1)
			go func() {
				defer wg.Done()
				i := 0
				for {
					select {
					case <-stop:
						return
					default:
					}
					e := churn[i%len(churn)]
					if err := ix.Insert(e); err != nil {
						t.Error(err)
						return
					}
					if _, err := ix.Delete([]uint64{e.ID}); err != nil {
						t.Error(err)
						return
					}
					i++
					if i%32 == 0 {
						if err := ix.Compact(); err != nil {
							t.Error(err)
							return
						}
					}
					writerOps.Add(1)
				}
			}()

			checkIDs := func(what string, ids []uint64) {
				if len(ids) != baseSize && len(ids) != baseSize+1 {
					t.Errorf("%s: %d entries, want %d or %d", what, len(ids), baseSize, baseSize+1)
				}
				seen := make(map[uint64]struct{}, len(ids))
				for _, id := range ids {
					if _, dup := seen[id]; dup {
						t.Errorf("%s: duplicate ID %d", what, id)
					}
					seen[id] = struct{}{}
				}
			}

			for r := range 4 {
				wg.Add(1)
				go func() {
					defer wg.Done()
					qi := r
					for {
						select {
						case <-stop:
							return
						default:
						}
						q := queries[qi%len(queries)]
						qi++
						// Big enough to exhaust the tree: the candidate set
						// is every live entry of one snapshot.
						cands, err := ix.ApproxCandidates(q, 10*baseSize)
						if err != nil {
							t.Error(err)
							return
						}
						ids := make([]uint64, len(cands))
						for i := range cands {
							ids[i] = cands[i].ID
						}
						checkIDs("approx", ids)

						all, err := ix.AllEntries()
						if err != nil {
							t.Error(err)
							return
						}
						ids = ids[:0]
						for i := range all {
							ids = append(ids, all[i].ID)
						}
						checkIDs("all-entries", ids)

						live, dead := ix.Counts()
						if live != baseSize && live != baseSize+1 {
							t.Errorf("Counts live = %d", live)
						}
						if dead < 0 || dead > len(churn)+1 {
							t.Errorf("Counts dead = %d", dead)
						}
						st := ix.TreeStats()
						if st.Entries+st.Dead != st.TotalBucket {
							t.Errorf("TreeStats torn: %d live + %d dead != %d stored",
								st.Entries, st.Dead, st.TotalBucket)
						}
						if st.Entries != baseSize && st.Entries != baseSize+1 {
							t.Errorf("TreeStats entries = %d", st.Entries)
						}
					}
				}()
			}

			dur := 300 * time.Millisecond
			if testing.Short() {
				dur = 50 * time.Millisecond
			}
			time.Sleep(dur)
			close(stop)
			wg.Wait()
			if writerOps.Load() == 0 {
				t.Fatal("writer made no progress")
			}
		})
	}
}
