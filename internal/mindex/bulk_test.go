package mindex

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"regexp"
	"sort"
	"testing"

	"simcloud/internal/pivot"
)

// fingerprint captures everything the bulk builder must reproduce
// bit-for-bit: the snapshot codec output of the tree (shape, counts, dead,
// bounds, leaf bucket IDs), the store's allocation cursor, every bucket's
// content in order, and the writer-private loc/seq bookkeeping.
func fingerprint(t *testing.T, ix *Index) string {
	t.Helper()
	st := ix.state.Load()
	var tree bytes.Buffer
	if err := writeNode(&tree, st.root); err != nil {
		t.Fatal(err)
	}
	var next BucketID
	switch s := ix.store.(type) {
	case *MemStore:
		next = s.next
	case *DiskStore:
		next = s.NextID()
	}
	var buckets bytes.Buffer
	var walk func(n *node)
	walk = func(n *node) {
		if n.isLeaf() {
			v, err := ix.store.View(n.bucket)
			if err != nil {
				t.Fatalf("view bucket %d: %v", n.bucket, err)
			}
			fmt.Fprintf(&buckets, "bucket %d:", n.bucket)
			for _, e := range v {
				buckets.Write(EncodeEntry(e))
			}
			return
		}
		for i := range n.kids {
			walk(n.kids[i].n)
		}
	}
	walk(st.root)
	locs := make([]string, 0, len(ix.loc))
	for id, l := range ix.loc {
		locs = append(locs, fmt.Sprintf("%d@%v#%d", id, l.prefix, l.seq))
	}
	sort.Strings(locs)
	return fmt.Sprintf("size=%d dead=%d next=%d nextSeq=%d\ntree=%x\nbuckets=%x\nloc=%v",
		st.size, st.dead, next, ix.nextSeq, tree.Bytes(), buckets.Bytes(), locs)
}

// buildPair returns two empty indexes with identical configs (and, for
// disk, separate directories).
func buildPair(t *testing.T, cfg Config) (bulk, incr *Index) {
	t.Helper()
	cfgA, cfgB := cfg, cfg
	if cfg.Storage == StorageDisk {
		cfgA.DiskPath = filepath.Join(t.TempDir(), "bulk")
		cfgB.DiskPath = filepath.Join(t.TempDir(), "incr")
	}
	return mustIndex(t, cfgA), mustIndex(t, cfgB)
}

func bulkTestConfigs(nPivots int) map[string]Config {
	base := Config{
		NumPivots:      nPivots,
		MaxLevel:       4,
		BucketCapacity: 20,
		Ranking:        RankFootrule,
	}
	out := make(map[string]Config)
	for _, storage := range []StorageKind{StorageMemory, StorageDisk} {
		for _, eager := range []bool{false, true} {
			c := base
			c.Storage = storage
			c.EagerRootSplit = eager
			name := fmt.Sprintf("%v", storage)
			if eager {
				name += "-eagerroot"
			}
			out[name] = c
		}
	}
	return out
}

// TestBulkBuildEquivalence pins the tentpole claim: the builder path of
// InsertBulk publishes a state byte-identical to the incremental path for
// the same entries in the same arrival order — fresh builds and builds on
// top of an existing tree with tombstones, on both storage backends.
func TestBulkBuildEquivalence(t *testing.T) {
	for name, cfg := range bulkTestConfigs(8) {
		t.Run(name, func(t *testing.T) {
			entries, _, _ := testEntries(t, 11, 2400, 8)
			pre, batch := entries[:800], entries[800:]

			ixBulk, ixIncr := buildPair(t, cfg)
			// Identical pre-state on both sides, built incrementally:
			// some entries plus a few tombstones that stay outside the
			// batch (tombstoned batch IDs take the incremental fallback).
			var victims []uint64
			for i := 0; i < len(pre); i += 7 {
				victims = append(victims, pre[i].ID)
			}
			for _, ix := range []*Index{ixBulk, ixIncr} {
				ix.wmu.Lock()
				if err := ix.insertBulkIncremental(pre); err != nil {
					ix.wmu.Unlock()
					t.Fatal(err)
				}
				ix.wmu.Unlock()
				if _, err := ix.Delete(victims); err != nil {
					t.Fatal(err)
				}
			}

			if len(batch) < bulkMinBatch {
				t.Fatal("batch too small to exercise the builder")
			}
			if !ixBulk.bulkEligible(batch) {
				t.Fatal("batch unexpectedly ineligible for the builder")
			}
			if err := ixBulk.InsertBulk(batch); err != nil {
				t.Fatal(err)
			}
			ixIncr.wmu.Lock()
			err := ixIncr.insertBulkIncremental(batch)
			ixIncr.wmu.Unlock()
			if err != nil {
				t.Fatal(err)
			}

			got, want := fingerprint(t, ixBulk), fingerprint(t, ixIncr)
			if got != want {
				t.Errorf("bulk-built state differs from incremental:\nbulk: %.300s\nincr: %.300s", got, want)
			}
			if cfg.Storage == StorageDisk {
				compareDiskState(t, ixBulk, ixIncr)
			}
		})
	}
}

// compareDiskState compares the snapshot files byte for byte, plus the
// bucket directories file by file.
func compareDiskState(t *testing.T, a, b *Index) {
	t.Helper()
	snapA := filepath.Join(t.TempDir(), "a.snap")
	snapB := filepath.Join(t.TempDir(), "b.snap")
	if err := a.SaveSnapshot(snapA); err != nil {
		t.Fatal(err)
	}
	if err := b.SaveSnapshot(snapB); err != nil {
		t.Fatal(err)
	}
	rawA, err := os.ReadFile(snapA)
	if err != nil {
		t.Fatal(err)
	}
	rawB, err := os.ReadFile(snapB)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rawA, rawB) {
		t.Error("snapshot files differ byte-for-byte")
	}
	dirA, dirB := a.cfg.DiskPath, b.cfg.DiskPath
	filesA, err := os.ReadDir(dirA)
	if err != nil {
		t.Fatal(err)
	}
	filesB, err := os.ReadDir(dirB)
	if err != nil {
		t.Fatal(err)
	}
	if len(filesA) != len(filesB) {
		t.Fatalf("bucket directories hold %d vs %d files", len(filesA), len(filesB))
	}
	for i := range filesA {
		if filesA[i].Name() != filesB[i].Name() {
			t.Fatalf("bucket file %d: %s vs %s", i, filesA[i].Name(), filesB[i].Name())
		}
		ca, err := os.ReadFile(filepath.Join(dirA, filesA[i].Name()))
		if err != nil {
			t.Fatal(err)
		}
		cb, err := os.ReadFile(filepath.Join(dirB, filesB[i].Name()))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(ca, cb) {
			t.Errorf("bucket file %s differs", filesA[i].Name())
		}
	}
}

// TestBulkBuildDuplicateStops verifies the builder matches the incremental
// path when a batch entry duplicates a live ID: the prefix before the
// duplicate publishes, the error names the entry, and the states agree.
func TestBulkBuildDuplicateStops(t *testing.T) {
	entries, _, _ := testEntries(t, 5, 600, 8)
	cfg := testConfig(8)
	ixBulk, ixIncr := buildPair(t, cfg)

	batch := make([]Entry, len(entries))
	copy(batch, entries)
	batch[400] = batch[100] // live duplicate mid-batch

	errBulk := ixBulk.InsertBulk(batch)
	ixIncr.wmu.Lock()
	errIncr := ixIncr.insertBulkIncremental(batch)
	ixIncr.wmu.Unlock()

	if !errors.Is(errBulk, ErrDuplicateID) || !errors.Is(errIncr, ErrDuplicateID) {
		t.Fatalf("errors = %v / %v, want ErrDuplicateID", errBulk, errIncr)
	}
	if errBulk.Error() != errIncr.Error() {
		t.Errorf("error text differs: %q vs %q", errBulk, errIncr)
	}
	if got, want := fingerprint(t, ixBulk), fingerprint(t, ixIncr); got != want {
		t.Error("partial publish after duplicate differs between paths")
	}
	if ixBulk.Size() != 400 {
		t.Errorf("size after duplicate stop = %d, want 400", ixBulk.Size())
	}
}

// TestBulkBuildTombstonedTwinFallsBack verifies a batch re-inserting a
// tombstoned ID takes the incremental purge path and still matches the
// reference result.
func TestBulkBuildTombstonedTwinFallsBack(t *testing.T) {
	entries, _, _ := testEntries(t, 9, 400, 8)
	cfg := testConfig(8)
	ixBulk, ixIncr := buildPair(t, cfg)
	for _, ix := range []*Index{ixBulk, ixIncr} {
		ix.wmu.Lock()
		if err := ix.insertBulkIncremental(entries[:200]); err != nil {
			ix.wmu.Unlock()
			t.Fatal(err)
		}
		ix.wmu.Unlock()
		if _, err := ix.Delete([]uint64{entries[50].ID}); err != nil {
			t.Fatal(err)
		}
	}
	batch := append([]Entry{entries[50]}, entries[200:]...)
	if ixBulk.bulkEligible(batch) {
		t.Fatal("tombstoned twin should disqualify the builder path")
	}
	if err := ixBulk.InsertBulk(batch); err != nil {
		t.Fatal(err)
	}
	ixIncr.wmu.Lock()
	err := ixIncr.insertBulkIncremental(batch)
	ixIncr.wmu.Unlock()
	if err != nil {
		t.Fatal(err)
	}
	if got, want := fingerprint(t, ixBulk), fingerprint(t, ixIncr); got != want {
		t.Error("tombstoned-twin batch differs between paths")
	}
}

// failStore wraps a BucketStore and fails the nth create/append operation.
// It deliberately implements neither ghostAllocator nor batchAppender, so
// it also exercises the builder's interface fallbacks.
type failStore struct {
	BucketStore
	ops    int
	failAt int
}

var errInjected = errors.New("injected store failure")

func (s *failStore) Create() (BucketID, error) {
	s.ops++
	if s.ops == s.failAt {
		return 0, errInjected
	}
	return s.BucketStore.Create()
}

func (s *failStore) Append(id BucketID, e Entry) error {
	s.ops++
	if s.ops == s.failAt {
		return errInjected
	}
	return s.BucketStore.Append(id, e)
}

// stripCursor drops the store allocation cursor from a fingerprint. An
// aborted build leaves IDs it allocated burned (IDs are never reused, so
// the gap is harmless and unobservable through any read); everything else
// must be restored exactly.
func stripCursor(fp string) string {
	return cursorRE.ReplaceAllString(fp, "next=?")
}

var cursorRE = regexp.MustCompile(`next=\d+`)

// TestBulkBuildAbortRollsBack injects store failures at every operation
// index of the apply phase and verifies the abort restores the pre-batch
// state exactly (modulo burned bucket IDs) — and that the index still
// accepts the batch afterwards.
func TestBulkBuildAbortRollsBack(t *testing.T) {
	entries, _, _ := testEntries(t, 13, 900, 8)
	pre, batch := entries[:300], entries[300:]

	for failAt := 1; ; failAt++ {
		cfg := testConfig(8)
		ix := mustIndex(t, cfg)
		ix.wmu.Lock()
		if err := ix.insertBulkIncremental(pre); err != nil {
			ix.wmu.Unlock()
			t.Fatal(err)
		}
		ix.wmu.Unlock()
		before := fingerprint(t, ix)

		fs := &failStore{BucketStore: ix.store, failAt: failAt}
		ix.store = fs
		err := ix.InsertBulk(batch)
		ix.store = fs.BucketStore
		if err == nil {
			// The apply phase issued fewer than failAt operations: the
			// whole failure surface is covered. Sanity-check success.
			if got := fingerprint(t, ix); got == before {
				t.Fatal("successful bulk insert did not change the index")
			}
			if failAt == 1 {
				t.Fatal("failure injection never triggered")
			}
			return
		}
		if !errors.Is(err, errInjected) {
			t.Fatalf("failAt=%d: unexpected error %v", failAt, err)
		}
		if got := fingerprint(t, ix); stripCursor(got) != stripCursor(before) {
			t.Fatalf("failAt=%d: abort did not restore the pre-batch state", failAt)
		}
		// The rolled-back index must accept the batch cleanly.
		if err := ix.InsertBulk(batch); err != nil {
			t.Fatalf("failAt=%d: retry after abort: %v", failAt, err)
		}
		ix.Close()
	}
}

// TestBulkBuildSearchEquivalence double-checks the equivalence through the
// public read path: range and approximate searches agree between a
// bulk-built and an incrementally built index.
func TestBulkBuildSearchEquivalence(t *testing.T) {
	entries, pv, objs := testEntries(t, 21, 1500, 8)
	cfg := testConfig(8)
	ixBulk, ixIncr := buildPair(t, cfg)
	if err := ixBulk.InsertBulk(entries); err != nil {
		t.Fatal(err)
	}
	ixIncr.wmu.Lock()
	err := ixIncr.insertBulkIncremental(entries)
	ixIncr.wmu.Unlock()
	if err != nil {
		t.Fatal(err)
	}
	for qi := 0; qi < 25; qi++ {
		q := objs[qi*37%len(objs)]
		dists := pv.Distances(q.Vec)
		ra, err := ixBulk.RangeByDists(dists, 3)
		if err != nil {
			t.Fatal(err)
		}
		rb, err := ixIncr.RangeByDists(dists, 3)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(ra, rb) {
			t.Fatalf("query %d: range results differ", qi)
		}
		aq := ApproxQuery{Ranks: pivot.Permutation(dists), Dists: dists}
		aa, err := ixBulk.ApproxCandidates(aq, 64)
		if err != nil {
			t.Fatal(err)
		}
		ab, err := ixIncr.ApproxCandidates(aq, 64)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(aa, ab) {
			t.Fatalf("query %d: approximate results differ", qi)
		}
	}
}
