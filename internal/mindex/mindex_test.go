package mindex

import (
	"math/rand/v2"
	"testing"

	"simcloud/internal/dataset"
	"simcloud/internal/metric"
	"simcloud/internal/pivot"
)

func testConfig(nPivots int) Config {
	return Config{
		NumPivots:      nPivots,
		MaxLevel:       4,
		BucketCapacity: 20,
		Storage:        StorageMemory,
		Ranking:        RankFootrule,
	}
}

// buildPlain indexes a clustered data set and returns the index plus data.
func buildPlain(t *testing.T, seed uint64, n, dim, nPivots int) (*Plain, []metric.Object) {
	t.Helper()
	ds := dataset.Clustered(seed, n, dim, 8, metric.L2{})
	rng := rand.New(rand.NewPCG(seed, 99))
	pv := pivot.SelectRandom(rng, ds.Dist, ds.Objects, nPivots)
	p, err := NewPlain(testConfig(nPivots), pv)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Idx.Close() })
	if err := p.InsertBulk(ds.Objects); err != nil {
		t.Fatal(err)
	}
	return p, ds.Objects
}

func TestConfigValidation(t *testing.T) {
	good := testConfig(8)
	if err := good.validate(); err != nil {
		t.Fatalf("good config rejected: %v", err)
	}
	cases := []func(*Config){
		func(c *Config) { c.NumPivots = 0 },
		func(c *Config) { c.MaxLevel = 0 },
		func(c *Config) { c.MaxLevel = c.NumPivots + 1 },
		func(c *Config) { c.BucketCapacity = 0 },
		func(c *Config) { c.Storage = StorageKind(9) },
		func(c *Config) { c.Storage = StorageDisk; c.DiskPath = "" },
		func(c *Config) { c.Ranking = RankStrategy(9) },
	}
	for i, mutate := range cases {
		c := good
		mutate(&c)
		if err := c.validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestInsertValidation(t *testing.T) {
	idx, err := New(testConfig(8))
	if err != nil {
		t.Fatal(err)
	}
	defer idx.Close()
	if err := idx.Insert(Entry{ID: 1, Perm: []int32{0, 1}}); err == nil {
		t.Error("short permutation accepted")
	}
	if err := idx.Insert(Entry{ID: 1, Perm: []int32{0, 1, 2, 99}}); err == nil {
		t.Error("out-of-range permutation element accepted")
	}
	if err := idx.Insert(Entry{ID: 1, Perm: []int32{0, 1, 2, 3}, Dists: []float64{1}}); err == nil {
		t.Error("wrong-length distance vector accepted")
	}
	if err := idx.Insert(Entry{ID: 1, Perm: []int32{0, 1, 2, 3}}); err != nil {
		t.Errorf("valid entry rejected: %v", err)
	}
	if idx.Size() != 1 {
		t.Errorf("size = %d, want 1", idx.Size())
	}
}

func TestTreeInvariants(t *testing.T) {
	p, objs := buildPlain(t, 1, 2000, 8, 10)
	ix := p.Idx
	st := ix.TreeStats()
	if st.Entries != len(objs) {
		t.Fatalf("stats entries = %d, want %d", st.Entries, len(objs))
	}
	if st.TotalBucket != len(objs) {
		t.Fatalf("bucket total = %d, want %d", st.TotalBucket, len(objs))
	}
	if st.Leaves < 2 {
		t.Fatalf("no splits happened: %d leaves", st.Leaves)
	}
	if st.MaxDepth > ix.cfg.MaxLevel {
		t.Fatalf("depth %d exceeds MaxLevel %d", st.MaxDepth, ix.cfg.MaxLevel)
	}

	// Walk the tree: every entry in every leaf must carry a permutation
	// prefix equal to the leaf's prefix, non-max-level leaves must respect
	// capacity, counts must match bucket sizes, and ball bounds must cover
	// every stored distance.
	seen := 0
	var walk func(n *node)
	walk = func(n *node) {
		if n.isLeaf() {
			entries, err := ix.store.Load(n.bucket)
			if err != nil {
				t.Fatal(err)
			}
			if len(entries) != n.count {
				t.Fatalf("leaf %v count %d, bucket holds %d", n.prefix, n.count, len(entries))
			}
			if n.level() < ix.cfg.MaxLevel && n.count > ix.cfg.BucketCapacity {
				t.Fatalf("leaf %v over capacity: %d > %d", n.prefix, n.count, ix.cfg.BucketCapacity)
			}
			for _, e := range entries {
				seen++
				for i, want := range n.prefix {
					if e.Perm[i] != want {
						t.Fatalf("entry %d perm %v does not match leaf prefix %v", e.ID, e.Perm, n.prefix)
					}
				}
				if lp := n.lastPivot(); lp >= 0 && n.boundsValid {
					d := e.Dists[lp]
					if d < n.rmin-1e-9 || d > n.rmax+1e-9 {
						t.Fatalf("entry %d dist %g outside bounds [%g,%g]", e.ID, d, n.rmin, n.rmax)
					}
				}
			}
			return
		}
		childTotal := 0
		for i := range n.kids {
			key, c := n.kids[i].key, n.kids[i].n
			if i > 0 && key <= n.kids[i-1].key {
				t.Fatalf("node %v child table not strictly sorted at key %d", n.prefix, key)
			}
			if c.lastPivot() != key {
				t.Fatalf("child keyed %d has prefix %v", key, c.prefix)
			}
			if c.level() != n.level()+1 {
				t.Fatalf("child depth %d under parent depth %d", c.level(), n.level())
			}
			childTotal += c.count
			walk(c)
		}
		if childTotal != n.count {
			t.Fatalf("node %v count %d != sum of children %d", n.prefix, n.count, childTotal)
		}
	}
	walk(ix.state.Load().root)
	if seen != len(objs) {
		t.Fatalf("walked %d entries, want %d", seen, len(objs))
	}
}

// Range query must be exactly equivalent to a linear scan — the fundamental
// no-false-dismissal invariant of the metric pruning rules.
func TestRangeEqualsLinearScan(t *testing.T) {
	p, objs := buildPlain(t, 2, 1500, 6, 12)
	rng := rand.New(rand.NewPCG(5, 5))
	d := p.Pivots.Dist
	for trial := range 30 {
		q := objs[rng.IntN(len(objs))].Vec
		// Radii spanning empty to large result sets.
		r := []float64{0.1, 1, 3, 8, 20}[trial%5]
		got, err := p.Range(q, r)
		if err != nil {
			t.Fatal(err)
		}
		want := map[uint64]float64{}
		for _, o := range objs {
			if dist := d.Dist(q, o.Vec); dist <= r {
				want[o.ID] = dist
			}
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d r=%g: index returned %d, scan %d", trial, r, len(got), len(want))
		}
		for _, res := range got {
			wd, ok := want[res.ID]
			if !ok {
				t.Fatalf("trial %d: spurious result %d", trial, res.ID)
			}
			if wd != res.Dist {
				t.Fatalf("trial %d: result %d dist %g, want %g", trial, res.ID, res.Dist, wd)
			}
		}
	}
}

func TestRangeValidation(t *testing.T) {
	p, _ := buildPlain(t, 3, 100, 4, 6)
	if _, err := p.Idx.RangeByDists([]float64{1, 2}, 1); err == nil {
		t.Error("wrong-length query distances accepted")
	}
	if _, err := p.Idx.RangeByDists(make([]float64, 6), -1); err == nil {
		t.Error("negative radius accepted")
	}
}

// Precise k-NN (best-first) must equal brute force.
func TestKNNEqualsBruteForce(t *testing.T) {
	p, objs := buildPlain(t, 4, 1200, 5, 10)
	rng := rand.New(rand.NewPCG(6, 6))
	for range 25 {
		q := objs[rng.IntN(len(objs))].Vec
		k := 1 + rng.IntN(20)
		got, err := p.KNN(q, k)
		if err != nil {
			t.Fatal(err)
		}
		want, err := p.BruteForceKNN(q, k)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("k=%d: got %d results, want %d", k, len(got), len(want))
		}
		for i := range got {
			// Tied distances may legitimately swap objects; distances must match.
			if got[i].Dist != want[i].Dist {
				t.Fatalf("k=%d rank %d: dist %g, want %g", k, i, got[i].Dist, want[i].Dist)
			}
		}
	}
}

// The paper's two-phase precise k-NN (approximate then range ρk) must also
// be exact.
func TestKNNApproxRangeEqualsBruteForce(t *testing.T) {
	p, objs := buildPlain(t, 5, 800, 4, 8)
	rng := rand.New(rand.NewPCG(7, 7))
	for range 15 {
		q := objs[rng.IntN(len(objs))].Vec
		k := 1 + rng.IntN(10)
		got, err := p.KNNApproxRange(q, k, 50)
		if err != nil {
			t.Fatal(err)
		}
		want, err := p.BruteForceKNN(q, k)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("k=%d: got %d, want %d", k, len(got), len(want))
		}
		for i := range got {
			if got[i].Dist != want[i].Dist {
				t.Fatalf("k=%d rank %d: %g vs %g", k, i, got[i].Dist, want[i].Dist)
			}
		}
	}
}

func TestKNNValidation(t *testing.T) {
	p, _ := buildPlain(t, 6, 100, 4, 6)
	q := make(metric.Vector, 4)
	if _, err := p.KNN(q, 0); err == nil {
		t.Error("k=0 accepted by KNN")
	}
	if _, err := p.ApproxKNN(q, 0, 10); err == nil {
		t.Error("k=0 accepted by ApproxKNN")
	}
	if _, err := p.KNNApproxRange(q, -1, 10); err == nil {
		t.Error("negative k accepted")
	}
}

// Approximate k-NN recall must grow with the candidate-set size and reach
// 100% when the candidate set covers the whole collection.
func TestApproxRecallMonotoneInCandSize(t *testing.T) {
	p, objs := buildPlain(t, 7, 1000, 6, 10)
	rng := rand.New(rand.NewPCG(8, 8))
	const k = 10
	sizes := []int{25, 100, 400, 1000}
	sumRecall := make([]float64, len(sizes))
	for range 20 {
		q := objs[rng.IntN(len(objs))].Vec
		exact, err := p.BruteForceKNN(q, k)
		if err != nil {
			t.Fatal(err)
		}
		exactIDs := resultIDs(exact)
		for i, cs := range sizes {
			approx, err := p.ApproxKNN(q, k, cs)
			if err != nil {
				t.Fatal(err)
			}
			sumRecall[i] += recallOf(resultIDs(approx), exactIDs)
		}
	}
	for i := 1; i < len(sizes); i++ {
		if sumRecall[i] < sumRecall[i-1]-1e-9 {
			t.Fatalf("recall not monotone: %v for sizes %v", sumRecall, sizes)
		}
	}
	if sumRecall[len(sizes)-1] != 100*20 {
		t.Fatalf("full-collection candidate set recall = %g, want 100%%", sumRecall[len(sizes)-1]/20)
	}
}

func resultIDs(rs []Result) []uint64 {
	ids := make([]uint64, len(rs))
	for i, r := range rs {
		ids[i] = r.ID
	}
	return ids
}

func recallOf(got, want []uint64) float64 {
	in := make(map[uint64]bool, len(got))
	for _, id := range got {
		in[id] = true
	}
	hit := 0
	for _, id := range want {
		if in[id] {
			hit++
		}
	}
	return float64(hit) / float64(len(want)) * 100
}

func TestApproxCandidatesExactSizeAndPreRanked(t *testing.T) {
	p, objs := buildPlain(t, 8, 900, 5, 10)
	q := objs[3].Vec
	qd := p.Pivots.Distances(q)
	aq := ApproxQuery{Ranks: pivot.Ranks(pivot.Permutation(qd)), Dists: qd}
	for _, cs := range []int{1, 10, 150, 899, 5000} {
		cands, err := p.Idx.ApproxCandidates(aq, cs)
		if err != nil {
			t.Fatal(err)
		}
		wantLen := min(cs, len(objs))
		if len(cands) != wantLen {
			t.Fatalf("candSize %d: got %d candidates, want %d", cs, len(cands), wantLen)
		}
	}
	if _, err := p.Idx.ApproxCandidates(aq, 0); err == nil {
		t.Error("candSize 0 accepted")
	}
	if _, err := p.Idx.ApproxCandidates(ApproxQuery{Ranks: []int32{0}}, 5); err == nil {
		t.Error("short rank vector accepted")
	}
}

func TestApproxDistSumStrategy(t *testing.T) {
	cfg := testConfig(10)
	cfg.Ranking = RankDistSum
	ds := dataset.Clustered(9, 600, 5, 6, metric.L2{})
	rng := rand.New(rand.NewPCG(9, 9))
	pv := pivot.SelectRandom(rng, ds.Dist, ds.Objects, 10)
	p, err := NewPlain(cfg, pv)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Idx.Close()
	if err := p.InsertBulk(ds.Objects); err != nil {
		t.Fatal(err)
	}
	q := ds.Objects[0].Vec
	res, err := p.ApproxKNN(q, 5, 200)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 5 {
		t.Fatalf("got %d results", len(res))
	}
	// With a third of the collection as candidates, the query object itself
	// (distance 0) must be found.
	if res[0].Dist != 0 {
		t.Fatalf("query object not found: nearest dist %g", res[0].Dist)
	}
	// Strategy validation: distsum without distances must fail.
	if _, err := p.Idx.ApproxCandidates(ApproxQuery{Ranks: make([]int32, 10)}, 5); err == nil {
		t.Error("distsum ranking accepted a query without distances")
	}
}

func TestFirstCellCandidates(t *testing.T) {
	p, objs := buildPlain(t, 10, 700, 5, 8)
	q := objs[10].Vec
	qd := p.Pivots.Distances(q)
	aq := ApproxQuery{Ranks: pivot.Ranks(pivot.Permutation(qd)), Dists: qd}
	cands, err := p.Idx.FirstCellCandidates(aq)
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) == 0 {
		t.Fatal("no candidates from first cell")
	}
	// A single cell is a small fraction of the collection (cells at depth
	// below MaxLevel respect the bucket capacity; max-depth cells may exceed
	// it but still hold far less than everything).
	if len(cands) >= p.Idx.Size()/2 {
		t.Fatalf("first cell returned %d of %d objects — not a single cell", len(cands), p.Idx.Size())
	}
	// All candidates must share the permutation prefix of one cell.
	first := cands[0].Perm
	for _, e := range cands {
		if e.Perm[0] != first[0] {
			t.Fatalf("candidates from different first-level cells: %v vs %v", e.Perm, first)
		}
	}
}

func TestEmptyIndexSearches(t *testing.T) {
	idx, err := New(testConfig(6))
	if err != nil {
		t.Fatal(err)
	}
	defer idx.Close()
	got, err := idx.RangeByDists(make([]float64, 6), 10)
	if err != nil || len(got) != 0 {
		t.Fatalf("empty range: %v, %d results", err, len(got))
	}
	cands, err := idx.ApproxCandidates(ApproxQuery{Ranks: make([]int32, 6)}, 5)
	if err != nil || len(cands) != 0 {
		t.Fatalf("empty approx: %v, %d candidates", err, len(cands))
	}
	first, err := idx.FirstCellCandidates(ApproxQuery{Ranks: make([]int32, 6)})
	if err != nil || first != nil {
		t.Fatalf("empty first cell: %v, %v", err, first)
	}
}

func TestPlainPivotMismatch(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 11))
	ds := dataset.Clustered(11, 50, 3, 2, metric.L1{})
	pv := pivot.SelectRandom(rng, ds.Dist, ds.Objects, 5)
	if _, err := NewPlain(testConfig(8), pv); err == nil {
		t.Fatal("pivot-count mismatch accepted")
	}
}

// Entries without distance vectors disable ball bounds and pivot filtering
// but must never break correctness of approximate search.
func TestPermOnlyEntries(t *testing.T) {
	idx, err := New(testConfig(6))
	if err != nil {
		t.Fatal(err)
	}
	defer idx.Close()
	rng := rand.New(rand.NewPCG(12, 12))
	for i := range 300 {
		dists := make([]float64, 6)
		for j := range dists {
			dists[j] = rng.Float64() * 100
		}
		perm := pivot.Permutation(dists)
		if err := idx.Insert(Entry{ID: uint64(i), Perm: perm}); err != nil {
			t.Fatal(err)
		}
	}
	qRanks := pivot.Ranks(pivot.Permutation([]float64{1, 2, 3, 4, 5, 6}))
	cands, err := idx.ApproxCandidates(ApproxQuery{Ranks: qRanks}, 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) != 50 {
		t.Fatalf("got %d candidates, want 50", len(cands))
	}
}
