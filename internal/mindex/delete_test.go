package mindex

import (
	"errors"
	"math/rand/v2"
	"reflect"
	"sync"
	"testing"

	"simcloud/internal/dataset"
	"simcloud/internal/metric"
	"simcloud/internal/pivot"
)

// testEntries derives index entries (with distance vectors) for a
// deterministic clustered collection.
func testEntries(t *testing.T, seed uint64, n, nPivots int) ([]Entry, *pivot.Set, []metric.Object) {
	t.Helper()
	ds := dataset.Clustered(seed, n, 6, 8, metric.L2{})
	rng := rand.New(rand.NewPCG(seed, 99))
	pv := pivot.SelectRandom(rng, ds.Dist, ds.Objects, nPivots)
	entries := make([]Entry, n)
	for i, o := range ds.Objects {
		dists := pv.Distances(o.Vec)
		entries[i] = Entry{ID: o.ID, Perm: pivot.Permutation(dists), Dists: dists}
	}
	return entries, pv, ds.Objects
}

func mustIndex(t *testing.T, cfg Config) *Index {
	t.Helper()
	ix, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ix.Close() })
	return ix
}

func TestDeleteBasics(t *testing.T) {
	entries, pv, objs := testEntries(t, 7, 500, 8)
	ix := mustIndex(t, testConfig(8))
	if err := ix.InsertBulk(entries); err != nil {
		t.Fatal(err)
	}

	// Delete every third entry.
	var victims []uint64
	gone := make(map[uint64]bool)
	for i := 0; i < len(entries); i += 3 {
		victims = append(victims, entries[i].ID)
		gone[entries[i].ID] = true
	}
	n, err := ix.Delete(victims)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(victims) {
		t.Fatalf("deleted %d, want %d", n, len(victims))
	}
	if ix.Size() != len(entries)-len(victims) {
		t.Fatalf("size = %d, want %d", ix.Size(), len(entries)-len(victims))
	}
	if ix.Dead() != len(victims) {
		t.Fatalf("dead = %d, want %d", ix.Dead(), len(victims))
	}

	// Idempotence: repeating the delete (plus unknown IDs) removes nothing.
	n, err = ix.Delete(append(victims, 1<<40, 1<<41))
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("re-delete removed %d entries", n)
	}

	// No search path may surface a tombstoned entry.
	qDists := pv.Distances(objs[1].Vec)
	cands, err := ix.RangeByDists(qDists, 1e9)
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) != ix.Size() {
		t.Fatalf("unbounded range returned %d candidates, want %d", len(cands), ix.Size())
	}
	for _, e := range cands {
		if gone[e.ID] {
			t.Fatalf("range surfaced deleted entry %d", e.ID)
		}
	}
	aq := ApproxQuery{Ranks: pivot.Ranks(pivot.Permutation(qDists)), Dists: qDists}
	approx, err := ix.ApproxCandidates(aq, len(entries))
	if err != nil {
		t.Fatal(err)
	}
	if len(approx) != ix.Size() {
		t.Fatalf("approx returned %d candidates, want all %d live", len(approx), ix.Size())
	}
	for _, e := range approx {
		if gone[e.ID] {
			t.Fatalf("approx surfaced deleted entry %d", e.ID)
		}
	}
	first, err := ix.FirstCellCandidates(aq)
	if err != nil {
		t.Fatal(err)
	}
	if len(first) == 0 {
		t.Fatal("first cell empty despite live entries")
	}
	for _, e := range first {
		if gone[e.ID] {
			t.Fatalf("first cell surfaced deleted entry %d", e.ID)
		}
	}
	all, err := ix.AllEntries()
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != ix.Size() {
		t.Fatalf("AllEntries returned %d, want %d", len(all), ix.Size())
	}

	st := ix.TreeStats()
	if st.Entries != ix.Size() || st.Dead != len(victims) {
		t.Fatalf("stats = %+v, want %d live / %d dead", st, ix.Size(), len(victims))
	}
}

func TestInsertDuplicateAndReinsert(t *testing.T) {
	entries, _, _ := testEntries(t, 8, 100, 8)
	ix := mustIndex(t, testConfig(8))
	if err := ix.InsertBulk(entries); err != nil {
		t.Fatal(err)
	}
	// A live duplicate is rejected.
	if err := ix.Insert(entries[10]); !errors.Is(err, ErrDuplicateID) {
		t.Fatalf("duplicate insert: got %v, want ErrDuplicateID", err)
	}
	// Re-inserting after a delete purges the dead twin: exactly one
	// physical record carries the ID afterwards.
	if _, err := ix.Delete([]uint64{entries[10].ID}); err != nil {
		t.Fatal(err)
	}
	if err := ix.Insert(entries[10]); err != nil {
		t.Fatalf("re-insert after delete: %v", err)
	}
	if ix.Size() != len(entries) || ix.Dead() != 0 {
		t.Fatalf("size/dead = %d/%d, want %d/0", ix.Size(), ix.Dead(), len(entries))
	}
	st := ix.TreeStats()
	if st.TotalBucket != len(entries) {
		t.Fatalf("buckets hold %d records, want %d (dead twin not purged)", st.TotalBucket, len(entries))
	}
}

func TestUpdateMovesEntryAcrossCells(t *testing.T) {
	entries, pv, objs := testEntries(t, 9, 400, 8)
	ix := mustIndex(t, testConfig(8))
	if err := ix.InsertBulk(entries); err != nil {
		t.Fatal(err)
	}
	// Re-file entry 0 under entry 1's pivot metadata (the object "moved"):
	// searches must find the new record, never the old one.
	moved := entries[1]
	moved.ID = entries[0].ID
	if err := ix.Update(moved); err != nil {
		t.Fatal(err)
	}
	if ix.Size() != len(entries) {
		t.Fatalf("size = %d, want %d", ix.Size(), len(entries))
	}
	qDists := pv.Distances(objs[1].Vec)
	cands, err := ix.RangeByDists(qDists, 1e9)
	if err != nil {
		t.Fatal(err)
	}
	seen := 0
	for _, e := range cands {
		if e.ID == moved.ID {
			seen++
			if !reflect.DeepEqual(e.Perm, moved.Perm) {
				t.Fatalf("search returned stale record for updated entry %d", e.ID)
			}
		}
	}
	if seen != 1 {
		t.Fatalf("updated entry appeared %d times, want exactly once", seen)
	}
	// Updating an unknown ID is a plain insert.
	fresh := entries[2]
	fresh.ID = 1 << 40
	if err := ix.Update(fresh); err != nil {
		t.Fatal(err)
	}
	if ix.Size() != len(entries)+1 {
		t.Fatalf("size after upsert = %d, want %d", ix.Size(), len(entries)+1)
	}

	// An invalid replacement must not destroy the entry it targets.
	bad := Entry{ID: entries[5].ID, Perm: []int32{0}} // shorter than MaxLevel
	if err := ix.Update(bad); err == nil {
		t.Fatal("invalid update accepted")
	}
	cands, err = ix.RangeByDists(pv.Distances(objs[5].Vec), 1e9)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, e := range cands {
		found = found || e.ID == entries[5].ID
	}
	if !found {
		t.Fatal("failed update destroyed the existing entry")
	}
}

// TestCompactCanonical is the single-index core of the mutation
// equivalence guarantee: after deletes and a Compact, the index must be
// byte-identical — tree shape, range candidate sets, ranked approximate
// candidate lists — to a fresh index holding only the survivors, inserted
// in their original arrival order.
func TestCompactCanonical(t *testing.T) {
	entries, pv, objs := testEntries(t, 10, 1500, 10)
	cfg := testConfig(10)
	ix := mustIndex(t, cfg)
	if err := ix.InsertBulk(entries); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(10, 1))
	gone := make(map[uint64]bool)
	var victims []uint64
	for _, e := range entries {
		if rng.Float64() < 0.4 {
			victims = append(victims, e.ID)
			gone[e.ID] = true
		}
	}
	if _, err := ix.Delete(victims); err != nil {
		t.Fatal(err)
	}
	if err := ix.Compact(); err != nil {
		t.Fatal(err)
	}
	if ix.Dead() != 0 {
		t.Fatalf("dead = %d after compact", ix.Dead())
	}

	fresh := mustIndex(t, cfg)
	for _, e := range entries {
		if gone[e.ID] {
			continue
		}
		if err := fresh.Insert(e); err != nil {
			t.Fatal(err)
		}
	}

	if a, b := ix.TreeStats(), fresh.TreeStats(); a != b {
		t.Fatalf("tree stats diverge after compact:\n compacted %+v\n fresh     %+v", a, b)
	}
	for qi := 0; qi < 10; qi++ {
		qDists := pv.Distances(objs[qi*17].Vec)
		for _, r := range []float64{2, 5, 1e9} {
			got, err := ix.RangeByDists(qDists, r)
			if err != nil {
				t.Fatal(err)
			}
			want, err := fresh.RangeByDists(qDists, r)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("range(q%d, r=%g) diverges after compact: %d vs %d candidates", qi, r, len(got), len(want))
			}
		}
		aq := ApproxQuery{Ranks: pivot.Ranks(pivot.Permutation(qDists)), Dists: qDists}
		got, err := ix.ApproxCandidatesRanked(aq, 300)
		if err != nil {
			t.Fatal(err)
		}
		want, err := fresh.ApproxCandidatesRanked(aq, 300)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("ranked approx candidates diverge after compact for query %d", qi)
		}
	}

	// Compact with nothing to do is a no-op, and compacting to empty
	// leaves a working index.
	if err := ix.Compact(); err != nil {
		t.Fatal(err)
	}
	var all []uint64
	for _, e := range entries {
		if !gone[e.ID] {
			all = append(all, e.ID)
		}
	}
	if _, err := ix.Delete(all); err != nil {
		t.Fatal(err)
	}
	if err := ix.Compact(); err != nil {
		t.Fatal(err)
	}
	if ix.Size() != 0 || ix.Dead() != 0 {
		t.Fatalf("emptied index reports %d live / %d dead", ix.Size(), ix.Dead())
	}
	if err := ix.Insert(entries[0]); err != nil {
		t.Fatalf("insert into compacted-empty index: %v", err)
	}
}

// TestDeleteCompactDisk exercises the purge and compaction bucket
// rewrites on the disk store.
func TestDeleteCompactDisk(t *testing.T) {
	entries, pv, objs := testEntries(t, 11, 600, 8)
	cfg := testConfig(8)
	cfg.Storage = StorageDisk
	cfg.DiskPath = t.TempDir()
	ix := mustIndex(t, cfg)
	if err := ix.InsertBulk(entries); err != nil {
		t.Fatal(err)
	}
	var victims []uint64
	for i := 0; i < len(entries); i += 2 {
		victims = append(victims, entries[i].ID)
	}
	if _, err := ix.Delete(victims); err != nil {
		t.Fatal(err)
	}
	// Re-insert one victim (exercises the disk Replace purge path).
	if err := ix.Insert(entries[0]); err != nil {
		t.Fatal(err)
	}
	if err := ix.Compact(); err != nil {
		t.Fatal(err)
	}
	want := len(entries) - len(victims) + 1
	if ix.Size() != want || ix.Dead() != 0 {
		t.Fatalf("size/dead = %d/%d, want %d/0", ix.Size(), ix.Dead(), want)
	}
	qDists := pv.Distances(objs[3].Vec)
	cands, err := ix.RangeByDists(qDists, 1e9)
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) != want {
		t.Fatalf("post-compact range returned %d candidates, want %d", len(cands), want)
	}
}

// TestConcurrentUpdatesSameID: Update is atomic under the index lock, so
// racing Updates of one ID never trip over each other's tombstones
// (spurious ErrDuplicateID) and always leave exactly one live record.
func TestConcurrentUpdatesSameID(t *testing.T) {
	entries, pv, objs := testEntries(t, 12, 200, 8)
	ix := mustIndex(t, testConfig(8))
	if err := ix.InsertBulk(entries); err != nil {
		t.Fatal(err)
	}
	id := entries[0].ID
	var wg sync.WaitGroup
	for w := range 8 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range 50 {
				donor := entries[(w*50+i)%len(entries)]
				e := Entry{ID: id, Perm: donor.Perm, Dists: donor.Dists}
				if err := ix.Update(e); err != nil {
					t.Errorf("worker %d: %v", w, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	if ix.Size() != len(entries) {
		t.Fatalf("size = %d, want %d", ix.Size(), len(entries))
	}
	cands, err := ix.RangeByDists(pv.Distances(objs[0].Vec), 1e9)
	if err != nil {
		t.Fatal(err)
	}
	seen := 0
	for _, e := range cands {
		if e.ID == id {
			seen++
		}
	}
	if seen != 1 {
		t.Fatalf("entry %d appears %d times after racing updates, want 1", id, seen)
	}
}
