package mindex

import (
	"fmt"
	"io"
	"strings"
)

// WriteDot renders the dynamic Voronoi cell tree as a Graphviz digraph —
// the picture of the paper's Figure 3, generated from a live index. Leaves
// show their occupancy; internal nodes their subtree size. Useful for
// understanding how a pivot set partitions a concrete collection.
func (ix *Index) WriteDot(w io.Writer) error {
	st := ix.state.Load()
	var b strings.Builder
	b.WriteString("digraph mindex {\n")
	b.WriteString("  rankdir=TB;\n")
	b.WriteString("  node [fontname=\"monospace\" fontsize=10];\n")
	id := 0
	var emit func(n *node) int
	emit = func(n *node) int {
		my := id
		id++
		label := "ε" // the root covers the whole space
		if len(n.prefix) > 0 {
			parts := make([]string, len(n.prefix))
			for i, p := range n.prefix {
				parts[i] = fmt.Sprintf("%d", p)
			}
			label = strings.Join(parts, ",")
		}
		if n.isLeaf() {
			fmt.Fprintf(&b, "  n%d [shape=box style=filled fillcolor=lightyellow label=\"C(%s)\\n%d objs\"];\n",
				my, label, n.count)
			return my
		}
		fmt.Fprintf(&b, "  n%d [shape=ellipse label=\"C(%s)\\n%d objs\"];\n", my, label, n.count)
		for i := range n.kids {
			k := n.kids[i]
			child := emit(k.n)
			fmt.Fprintf(&b, "  n%d -> n%d [label=\"p%d\"];\n", my, child, k.key)
		}
		return my
	}
	emit(st.root)
	b.WriteString("}\n")
	_, err := io.WriteString(w, b.String())
	return err
}
