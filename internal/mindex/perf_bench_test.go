package mindex

// Hot-path microbenchmarks for the query path. These are the benchmarks the
// CI bench job runs with -benchmem and compares against the committed
// baseline in bench/BENCH_BASELINE_4.txt (recorded before the
// allocation-discipline pass of PR 4), tracking the perf trajectory of the
// serving hot path: promise-ranked approximate collection, range pruning,
// first-cell selection, and repeated disk-backed queries.

import (
	"math/rand/v2"
	"testing"

	"simcloud/internal/dataset"
	"simcloud/internal/metric"
	"simcloud/internal/pivot"
)

// benchIndex builds an index over a clustered collection with full distance
// vectors (so both pruning bounds and both rankings are exercised) and
// returns it together with prepared queries.
func benchIndex(b *testing.B, cfg Config, n int) (*Index, []ApproxQuery, [][]float64) {
	b.Helper()
	ds := dataset.Clustered(4242, n, 8, 10, metric.L2{})
	rng := rand.New(rand.NewPCG(4242, 7))
	pv := pivot.SelectRandom(rng, ds.Dist, ds.Objects, cfg.NumPivots)
	ix, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { ix.Close() })
	for _, o := range ds.Objects {
		dists := pv.Distances(o.Vec)
		err := ix.Insert(Entry{ID: o.ID, Perm: pivot.Permutation(dists), Dists: dists})
		if err != nil {
			b.Fatal(err)
		}
	}
	var queries []ApproxQuery
	var qDists [][]float64
	for i := range 32 {
		q := ds.Objects[(i*173)%len(ds.Objects)].Vec
		d := pv.Distances(q)
		queries = append(queries, ApproxQuery{
			Ranks: pivot.Ranks(pivot.Permutation(d)),
			Dists: d,
		})
		qDists = append(qDists, d)
	}
	return ix, queries, qDists
}

func benchMemConfig() Config {
	return Config{
		NumPivots: 16, MaxLevel: 5, BucketCapacity: 50,
		Storage: StorageMemory, Ranking: RankFootrule,
	}
}

// BenchmarkQueryPathApprox measures the approximate k-NN candidate
// collection (Algorithm 4) on a memory-backed index: the promise heap, the
// leaf loads and the candidate assembly.
func BenchmarkQueryPathApprox(b *testing.B) {
	ix, queries, _ := benchIndex(b, benchMemConfig(), 8000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cands, err := ix.ApproxCandidates(queries[i%len(queries)], 600)
		if err != nil {
			b.Fatal(err)
		}
		if len(cands) == 0 {
			b.Fatal("no candidates")
		}
	}
}

// BenchmarkQueryPathRange measures the precise range query (Algorithm 3):
// tree pruning via cellLowerBound plus pivot filtering of surviving leaves.
func BenchmarkQueryPathRange(b *testing.B) {
	ix, _, qDists := benchIndex(b, benchMemConfig(), 8000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ix.RangeByDists(qDists[i%len(qDists)], 3); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQueryPathRangePruned measures the pruning machinery alone: a
// radius so tight that (nearly) every cell is excluded, so the cost is pure
// traversal + lower-bound evaluation.
func BenchmarkQueryPathRangePruned(b *testing.B) {
	ix, _, qDists := benchIndex(b, benchMemConfig(), 8000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ix.RangeByDists(qDists[i%len(qDists)], 1e-9); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQueryPathFirstCell measures the single-cell strategy of the
// paper's 1-NN comparison: one promise-ordered descent to the best leaf.
func BenchmarkQueryPathFirstCell(b *testing.B) {
	ix, queries, _ := benchIndex(b, benchMemConfig(), 8000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cands, err := ix.FirstCellCandidates(queries[i%len(queries)])
		if err != nil {
			b.Fatal(err)
		}
		if len(cands) == 0 {
			b.Fatal("no candidates")
		}
	}
}

// BenchmarkDiskRepeatedQuery measures a repeated-query workload against a
// disk-backed index — the paper's evaluation shape (Tables 5–9): a fixed
// query set replayed against a static index. This is the workload the
// DiskStore read-through bucket cache exists for.
func BenchmarkDiskRepeatedQuery(b *testing.B) {
	cfg := benchMemConfig()
	cfg.Storage = StorageDisk
	for _, sub := range diskBenchVariants() {
		b.Run(sub.name, func(b *testing.B) {
			c := cfg
			c.DiskPath = b.TempDir()
			sub.tune(&c)
			ix, queries, _ := benchIndex(b, c, 8000)
			// Warm once so the steady state (not first-touch IO) is measured.
			if _, err := ix.ApproxCandidates(queries[0], 600); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				cands, err := ix.ApproxCandidates(queries[i%len(queries)], 600)
				if err != nil {
					b.Fatal(err)
				}
				if len(cands) == 0 {
					b.Fatal("no candidates")
				}
			}
		})
	}
}

// BenchmarkDiskRangeRepeated is BenchmarkDiskRepeatedQuery for the precise
// range query, whose leaf loads dominate once pruning has done its work.
func BenchmarkDiskRangeRepeated(b *testing.B) {
	cfg := benchMemConfig()
	cfg.Storage = StorageDisk
	for _, sub := range diskBenchVariants() {
		b.Run(sub.name, func(b *testing.B) {
			c := cfg
			c.DiskPath = b.TempDir()
			sub.tune(&c)
			ix, _, qDists := benchIndex(b, c, 8000)
			if _, err := ix.RangeByDists(qDists[0], 3); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := ix.RangeByDists(qDists[i%len(qDists)], 3); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// diskBenchVariant tunes the disk-backed config for one sub-benchmark.
// "default" is whatever a plain Config gets — before PR 4 that meant a full
// file read + decode per leaf visit, after it the read-through bucket cache;
// benchstat against the committed baseline therefore shows the cache win
// under the same benchmark name.
type diskBenchVariant struct {
	name string
	tune func(*Config)
}

func diskBenchVariants() []diskBenchVariant {
	return []diskBenchVariant{
		{name: "default", tune: func(*Config) {}},
		// nocache approximates the seed's per-query read+decode behavior
		// for a same-binary ablation of the cache alone.
		{name: "nocache", tune: func(c *Config) { c.DiskCacheBytes = -1 }},
	}
}
