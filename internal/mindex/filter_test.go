package mindex

import (
	"math/rand/v2"
	"reflect"
	"testing"

	"simcloud/internal/dataset"
	"simcloud/internal/metric"
	"simcloud/internal/pivot"
)

func TestPivotFilterValidation(t *testing.T) {
	if _, err := NewPivotFilter(0, nil); err == nil {
		t.Error("zero pivot count accepted")
	}
	if _, err := NewPivotFilter(8, []int32{8}); err == nil {
		t.Error("out-of-range pivot accepted")
	}
	if _, err := NewPivotFilter(8, []int32{-1}); err == nil {
		t.Error("negative pivot accepted")
	}
	f, err := NewPivotFilter(8, []int32{0, 3})
	if err != nil {
		t.Fatal(err)
	}
	if !f.Allows(0) || !f.Allows(3) || f.Allows(1) || f.Allows(7) {
		t.Errorf("filter %v misclassifies", f)
	}
	var nilFilter PivotFilter
	if !nilFilter.Allows(5) {
		t.Error("nil filter rejected a pivot")
	}
}

// TestFilteredEquivalence is the correctness contract the replicated
// coordinator rests on: every filtered search over the full index returns
// exactly what the unfiltered search returns over an index holding only the
// allowed first-level cells — same entries, same order, same promise
// annotations. Both indexes use the eager root split (as every federated
// node does), so their per-cell subtree shapes are identical by
// construction.
func TestFilteredEquivalence(t *testing.T) {
	const nPivots = 8
	ds := dataset.Clustered(21, 1200, 6, 9, metric.L2{})
	rng := rand.New(rand.NewPCG(21, 99))
	pv := pivot.SelectRandom(rng, ds.Dist, ds.Objects, nPivots)

	cfg := testConfig(nPivots)
	cfg.EagerRootSplit = true

	full, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer full.Close()
	subset, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer subset.Close()

	allowed := []int32{0, 2, 5, 7}
	filter, err := NewPivotFilter(nPivots, allowed)
	if err != nil {
		t.Fatal(err)
	}

	var fullEntries, subsetEntries []Entry
	for i, o := range ds.Objects {
		dists := pv.Distances(o.Vec)
		perm := pivot.Permutation(dists)
		e := Entry{ID: uint64(i + 1), Perm: perm, Dists: dists}
		fullEntries = append(fullEntries, e)
		if filter.allowsEntry(e) {
			subsetEntries = append(subsetEntries, e)
		}
	}
	if err := full.InsertBulk(fullEntries); err != nil {
		t.Fatal(err)
	}
	if err := subset.InsertBulk(subsetEntries); err != nil {
		t.Fatal(err)
	}
	if len(subsetEntries) == 0 || len(subsetEntries) == len(fullEntries) {
		t.Fatalf("degenerate split: %d of %d entries allowed", len(subsetEntries), len(fullEntries))
	}

	for qi := 0; qi < 25; qi++ {
		q := ds.Objects[qi*37%len(ds.Objects)].Vec
		qd := pv.Distances(q)
		aq := ApproxQuery{Ranks: pivot.Ranks(pivot.Permutation(qd)), Dists: qd}

		gotR, err := full.RangeByDistsFiltered(qd, 2.5, filter)
		if err != nil {
			t.Fatal(err)
		}
		wantR, err := subset.RangeByDists(qd, 2.5)
		if err != nil {
			t.Fatal(err)
		}
		if !sameEntries(gotR, wantR) {
			t.Fatalf("query %d: filtered range %d entries != subset range %d entries",
				qi, len(gotR), len(wantR))
		}

		for _, cs := range []int{1, 40, 300} {
			gotA, err := full.ApproxCandidatesRankedFiltered(aq, cs, filter)
			if err != nil {
				t.Fatal(err)
			}
			wantA, err := subset.ApproxCandidatesRanked(aq, cs)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(gotA, wantA) {
				t.Fatalf("query %d candSize %d: filtered approx differs from subset approx (%d vs %d)",
					qi, cs, len(gotA), len(wantA))
			}
		}

		gotF, gotP, gotPre, err := full.FirstCellRankedFiltered(aq, filter)
		if err != nil {
			t.Fatal(err)
		}
		wantF, wantP, wantPre, err := subset.FirstCellRanked(aq)
		if err != nil {
			t.Fatal(err)
		}
		if gotP != wantP || !reflect.DeepEqual(gotPre, wantPre) || !sameEntries(gotF, wantF) {
			t.Fatalf("query %d: filtered first cell (%v, %v, %d entries) != subset (%v, %v, %d entries)",
				qi, gotP, gotPre, len(gotF), wantP, wantPre, len(wantF))
		}
	}

	gotAll, err := full.AllEntriesFiltered(filter)
	if err != nil {
		t.Fatal(err)
	}
	wantAll, err := subset.AllEntries()
	if err != nil {
		t.Fatal(err)
	}
	if !sameEntries(gotAll, wantAll) {
		t.Fatalf("filtered download %d entries != subset download %d", len(gotAll), len(wantAll))
	}

	// A nil filter must change nothing anywhere.
	un, err := full.RangeByDistsFiltered(qdOf(pv, ds.Objects[0].Vec), 2.5, nil)
	if err != nil {
		t.Fatal(err)
	}
	base, err := full.RangeByDists(qdOf(pv, ds.Objects[0].Vec), 2.5)
	if err != nil {
		t.Fatal(err)
	}
	if !sameEntries(un, base) {
		t.Fatal("nil filter changed the range result")
	}
}

func qdOf(pv *pivot.Set, v metric.Vector) []float64 { return pv.Distances(v) }

func sameEntries(a, b []Entry) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !reflect.DeepEqual(a[i], b[i]) {
			return false
		}
	}
	return true
}
