package mindex

// Tests for the PR 4 allocation-discipline pass: allocation-regression
// bounds on the query hot paths, DiskStore bucket-cache invalidation and
// budget behavior, the append-handle dirty-flag fix, and — the contract the
// whole pass rests on — equivalence tests proving that cached, pooled,
// zero-copy reads return byte-identical candidate lists under churn.

import (
	"math/rand/v2"
	"slices"
	"sync"
	"testing"

	"simcloud/internal/dataset"
	"simcloud/internal/metric"
	"simcloud/internal/pivot"
)

// perfEntries prepares deterministic entries (with distance vectors, so all
// pruning bounds are live) and matching queries.
func perfEntries(n, numPivots int) ([]Entry, []ApproxQuery, [][]float64) {
	ds := dataset.Clustered(777, n, 6, 8, metric.L2{})
	rng := rand.New(rand.NewPCG(777, 3))
	pv := pivot.SelectRandom(rng, ds.Dist, ds.Objects, numPivots)
	entries := make([]Entry, 0, len(ds.Objects))
	for _, o := range ds.Objects {
		dists := pv.Distances(o.Vec)
		entries = append(entries, Entry{ID: o.ID, Perm: pivot.Permutation(dists), Dists: dists})
	}
	var queries []ApproxQuery
	var qDists [][]float64
	for i := range 16 {
		d := pv.Distances(ds.Objects[(i*97)%len(ds.Objects)].Vec)
		queries = append(queries, ApproxQuery{Ranks: pivot.Ranks(pivot.Permutation(d)), Dists: d})
		qDists = append(qDists, d)
	}
	return entries, queries, qDists
}

func perfConfig(numPivots int) Config {
	return Config{
		NumPivots: numPivots, MaxLevel: 4, BucketCapacity: 25,
		Storage: StorageMemory, Ranking: RankFootrule,
	}
}

// TestQueryPathAllocs pins allocation ceilings on the prune, promise and
// approximate-collect paths. Before the allocation-discipline pass the
// approximate path cost >100 allocs/op (heap boxing per visited child plus
// a bucket copy per visited leaf) and the range path allocated a map per
// pruning decision; the ceilings below would all fail loudly on a
// regression to that state while leaving slack for incidental allocations.
func TestQueryPathAllocs(t *testing.T) {
	entries, queries, qDists := perfEntries(3000, 12)
	ix, err := New(perfConfig(12))
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	if err := ix.InsertBulk(entries); err != nil {
		t.Fatal(err)
	}
	// Warm pools so the steady state is measured, not first-touch growth.
	for i := range queries {
		if _, err := ix.ApproxCandidates(queries[i], 400); err != nil {
			t.Fatal(err)
		}
		if _, err := ix.RangeByDists(qDists[i], 2); err != nil {
			t.Fatal(err)
		}
	}
	cases := []struct {
		name string
		max  float64
		run  func(i int)
	}{
		{"approx-collect", 12, func(i int) {
			if _, err := ix.ApproxCandidates(queries[i%len(queries)], 400); err != nil {
				t.Fatal(err)
			}
		}},
		{"first-cell", 12, func(i int) {
			if _, err := ix.FirstCellCandidates(queries[i%len(queries)]); err != nil {
				t.Fatal(err)
			}
		}},
		{"range-pruned", 8, func(i int) {
			// A tiny radius exercises the pruning machinery (cellLowerBound
			// per child) with almost no leaf visits.
			if _, err := ix.RangeByDists(qDists[i%len(qDists)], 1e-9); err != nil {
				t.Fatal(err)
			}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			i := 0
			got := testing.AllocsPerRun(50, func() { tc.run(i); i++ })
			if got > tc.max {
				t.Errorf("%s: %.1f allocs/op, want <= %.0f", tc.name, got, tc.max)
			}
		})
	}
}

// TestDiskCacheInvalidation drives the DiskStore read-through cache through
// every invalidation edge: append, replace and free after a cached read
// must serve fresh data, and the hit/miss counters must tick accordingly.
func TestDiskCacheInvalidation(t *testing.T) {
	s, err := NewDiskStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	rng := rand.New(rand.NewPCG(9, 9))
	id, err := s.Create()
	if err != nil {
		t.Fatal(err)
	}
	e1, e2, e3 := randomEntry(rng, 1), randomEntry(rng, 2), randomEntry(rng, 3)

	expect := func(step string, want []Entry) {
		t.Helper()
		for _, read := range []func(BucketID) ([]Entry, error){s.View, s.Load} {
			got, err := read(id)
			if err != nil {
				t.Fatalf("%s: %v", step, err)
			}
			if len(got) != len(want) {
				t.Fatalf("%s: got %d entries, want %d", step, len(got), len(want))
			}
			for i := range want {
				if !entriesEqual(got[i], want[i]) {
					t.Fatalf("%s: entry %d differs", step, i)
				}
			}
		}
	}

	if err := s.Append(id, e1); err != nil {
		t.Fatal(err)
	}
	expect("after first append", []Entry{e1})
	expect("cached reread", []Entry{e1})
	if hits, misses, _ := s.CacheStats(); hits < 3 || misses != 1 {
		t.Fatalf("after warm rereads: hits=%d misses=%d, want >=3 hits and exactly 1 miss", hits, misses)
	}

	if err := s.Append(id, e2); err != nil {
		t.Fatal(err)
	}
	expect("append invalidates", []Entry{e1, e2})

	if err := s.Replace(id, []Entry{e3}); err != nil {
		t.Fatal(err)
	}
	expect("replace invalidates", []Entry{e3})
	hitsBefore, missesBefore, _ := s.CacheStats()
	expect("replace write-through", []Entry{e3}) // two reads, both hits
	if hits, misses, _ := s.CacheStats(); hits != hitsBefore+2 || misses != missesBefore {
		t.Fatalf("replace should have refreshed the cache write-through: hits %d->%d misses %d->%d",
			hitsBefore, hits, missesBefore, misses)
	}

	if err := s.Free(id); err != nil {
		t.Fatal(err)
	}
	if _, err := s.View(id); err == nil {
		t.Fatal("view of freed bucket succeeded")
	}
	if _, _, bytes := s.CacheStats(); bytes != 0 {
		t.Fatalf("freed bucket still charged %d bytes against the cache", bytes)
	}
}

// TestDiskCacheBudget verifies the byte budget: a tiny budget forces
// eviction, the charged bytes never exceed it, disabling drops everything,
// and correctness is unaffected throughout.
func TestDiskCacheBudget(t *testing.T) {
	s, err := NewDiskStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	rng := rand.New(rand.NewPCG(11, 11))
	const buckets = 12
	budget := 4 * 1024
	s.SetCacheBudget(budget)
	ids := make([]BucketID, buckets)
	want := make(map[BucketID][]Entry)
	for i := range ids {
		ids[i], err = s.Create()
		if err != nil {
			t.Fatal(err)
		}
		for j := range 8 {
			e := randomEntry(rng, uint64(i*100+j))
			want[ids[i]] = append(want[ids[i]], e)
			if err := s.Append(ids[i], e); err != nil {
				t.Fatal(err)
			}
		}
	}
	for round := range 3 {
		for _, id := range ids {
			got, err := s.View(id)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want[id]) {
				t.Fatalf("round %d bucket %d: %d entries, want %d", round, id, len(got), len(want[id]))
			}
			for i := range got {
				if !entriesEqual(got[i], want[id][i]) {
					t.Fatalf("round %d bucket %d entry %d differs", round, id, i)
				}
			}
			if _, _, bytes := s.CacheStats(); bytes > budget {
				t.Fatalf("cache charged %d bytes, budget %d", bytes, budget)
			}
		}
	}
	_, misses, _ := s.CacheStats()
	if misses == 0 {
		t.Fatalf("budget churn should produce misses, got %d", misses)
	}
	// The round-robin scan above thrashes a tiny LRU (every reuse distance
	// exceeds the budget), so hits come from re-reading the bucket that was
	// just cached.
	hitsBefore, _, _ := s.CacheStats()
	if _, err := s.View(ids[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := s.View(ids[0]); err != nil {
		t.Fatal(err)
	}
	if hits, _, _ := s.CacheStats(); hits < hitsBefore+1 {
		t.Fatalf("consecutive views of one bucket produced no cache hit (hits %d -> %d)", hitsBefore, hits)
	}
	s.SetCacheBudget(-1)
	if _, _, bytes := s.CacheStats(); bytes != 0 {
		t.Fatalf("disabled cache still charges %d bytes", bytes)
	}
	if got, err := s.View(ids[0]); err != nil || len(got) != len(want[ids[0]]) {
		t.Fatalf("cache-disabled view: %v, %d entries", err, len(got))
	}
}

// TestDiskLoadKeepsAppendHandle pins the dirty-flag fix: a Load between
// appends flushes the buffered bytes but must keep the append handle open,
// so the next append does not pay a file-open syscall (the seed closed the
// handle on every load). White-box: the handle registry is inspected.
func TestDiskLoadKeepsAppendHandle(t *testing.T) {
	s, err := NewDiskStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	rng := rand.New(rand.NewPCG(13, 13))
	id, err := s.Create()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Append(id, randomEntry(rng, 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Load(id); err != nil {
		t.Fatal(err)
	}
	s.mu.Lock()
	h, open := s.open[id]
	dirty := open && h.dirty
	s.mu.Unlock()
	if !open {
		t.Fatal("load closed the append handle")
	}
	if dirty {
		t.Fatal("load left the handle dirty after flushing")
	}
	// A clean handle means a second read must not flush again, and a
	// subsequent append must reuse the same writer.
	if err := s.Append(id, randomEntry(rng, 2)); err != nil {
		t.Fatal(err)
	}
	got, err := s.Load(id)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("loaded %d entries, want 2", len(got))
	}
}

// TestDiskHandleLRUConsistency hammers the bounded append-handle cache
// (container/list since PR 4) across eviction churn and checks the map and
// list never diverge.
func TestDiskHandleLRUConsistency(t *testing.T) {
	s, err := NewDiskStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.maxFDs = 3
	rng := rand.New(rand.NewPCG(17, 17))
	ids := make([]BucketID, 10)
	for i := range ids {
		if ids[i], err = s.Create(); err != nil {
			t.Fatal(err)
		}
	}
	for i := range 500 {
		id := ids[rng.IntN(len(ids))]
		if err := s.Append(id, randomEntry(rng, uint64(i))); err != nil {
			t.Fatal(err)
		}
		if rng.IntN(4) == 0 {
			if _, err := s.View(id); err != nil {
				t.Fatal(err)
			}
		}
		s.mu.Lock()
		mapLen, listLen := len(s.open), s.handleLRU.Len()
		over := mapLen > s.maxFDs
		s.mu.Unlock()
		if mapLen != listLen {
			t.Fatalf("handle map has %d entries, LRU list %d", mapLen, listLen)
		}
		if over {
			t.Fatalf("%d handles open, cap %d", mapLen, s.maxFDs)
		}
	}
}

// TestCacheEquivalenceUnderChurn is the tentpole contract: a memory-backed
// index, a disk-backed index with the read-through cache, and a disk-backed
// index with the cache disabled must return byte-identical ranked candidate
// lists, range candidate sets and first cells at every point of an
// insert/delete/update/compact churn schedule. Run under -race in CI.
func TestCacheEquivalenceUnderChurn(t *testing.T) {
	entries, queries, qDists := perfEntries(1200, 10)
	mk := func(tune func(*Config)) *Index {
		cfg := perfConfig(10)
		tune(&cfg)
		ix, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { ix.Close() })
		return ix
	}
	indexes := map[string]*Index{
		"mem": mk(func(c *Config) {}),
		"disk-cached": mk(func(c *Config) {
			c.Storage = StorageDisk
			c.DiskPath = t.TempDir()
		}),
		"disk-nocache": mk(func(c *Config) {
			c.Storage = StorageDisk
			c.DiskPath = t.TempDir()
			c.DiskCacheBytes = -1
		}),
		"disk-tiny-cache": mk(func(c *Config) {
			c.Storage = StorageDisk
			c.DiskPath = t.TempDir()
			c.DiskCacheBytes = 8 * 1024 // heavy eviction churn
		}),
	}

	compareAll := func(phase string) {
		t.Helper()
		ref := indexes["mem"]
		for qi := range queries {
			wantRanked, err := ref.ApproxCandidatesRanked(queries[qi], 300)
			if err != nil {
				t.Fatal(err)
			}
			wantRange, err := ref.RangeByDists(qDists[qi], 3)
			if err != nil {
				t.Fatal(err)
			}
			wantCell, wantPromise, wantPrefix, err := ref.FirstCellRanked(queries[qi])
			if err != nil {
				t.Fatal(err)
			}
			for name, ix := range indexes {
				if name == "mem" {
					continue
				}
				gotRanked, err := ix.ApproxCandidatesRanked(queries[qi], 300)
				if err != nil {
					t.Fatal(err)
				}
				if len(gotRanked) != len(wantRanked) {
					t.Fatalf("%s %s q%d: %d ranked candidates, want %d", phase, name, qi, len(gotRanked), len(wantRanked))
				}
				for i := range wantRanked {
					if !entriesEqual(gotRanked[i].Entry, wantRanked[i].Entry) ||
						gotRanked[i].Promise != wantRanked[i].Promise ||
						!slices.Equal(gotRanked[i].Prefix, wantRanked[i].Prefix) {
						t.Fatalf("%s %s q%d: ranked candidate %d differs", phase, name, qi, i)
					}
				}
				gotRange, err := ix.RangeByDists(qDists[qi], 3)
				if err != nil {
					t.Fatal(err)
				}
				if len(gotRange) != len(wantRange) {
					t.Fatalf("%s %s q%d: %d range candidates, want %d", phase, name, qi, len(gotRange), len(wantRange))
				}
				for i := range wantRange {
					if !entriesEqual(gotRange[i], wantRange[i]) {
						t.Fatalf("%s %s q%d: range candidate %d differs", phase, name, qi, i)
					}
				}
				gotCell, gotPromise, gotPrefix, err := ix.FirstCellRanked(queries[qi])
				if err != nil {
					t.Fatal(err)
				}
				if len(gotCell) != len(wantCell) || gotPromise != wantPromise || !slices.Equal(gotPrefix, wantPrefix) {
					t.Fatalf("%s %s q%d: first cell differs", phase, name, qi)
				}
				for i := range wantCell {
					if !entriesEqual(gotCell[i], wantCell[i]) {
						t.Fatalf("%s %s q%d: first-cell entry %d differs", phase, name, qi, i)
					}
				}
			}
		}
	}

	apply := func(phase string, f func(ix *Index) error) {
		t.Helper()
		for name, ix := range indexes {
			if err := f(ix); err != nil {
				t.Fatalf("%s on %s: %v", phase, name, err)
			}
		}
		compareAll(phase)
	}

	apply("initial build", func(ix *Index) error { return ix.InsertBulk(entries[:800]) })
	var dead []uint64
	for i := 0; i < 800; i += 3 {
		dead = append(dead, entries[i].ID)
	}
	apply("delete third", func(ix *Index) error { _, err := ix.Delete(dead); return err })
	apply("insert more", func(ix *Index) error { return ix.InsertBulk(entries[800:]) })
	apply("update batch", func(ix *Index) error {
		for i := 801; i < 850; i++ {
			e := entries[i]
			e.Dists = entries[i-400].Dists
			e.Perm = entries[i-400].Perm
			if err := ix.Update(e); err != nil {
				return err
			}
		}
		return nil
	})
	apply("compact", func(ix *Index) error { return ix.Compact() })
	apply("reinsert deleted", func(ix *Index) error {
		for _, id := range dead[:50] {
			for _, e := range entries {
				if e.ID == id {
					if err := ix.Insert(e); err != nil {
						return err
					}
					break
				}
			}
		}
		return nil
	})
}

// TestCacheConcurrentChurn runs concurrent searches against a disk-backed
// cached index while a writer inserts and deletes — the -race gate over the
// zero-copy view discipline (views of buckets being appended to, cache
// entries dropped mid-read, pooled queues shared across goroutines).
func TestCacheConcurrentChurn(t *testing.T) {
	entries, queries, qDists := perfEntries(1500, 10)
	cfg := perfConfig(10)
	cfg.Storage = StorageDisk
	cfg.DiskPath = t.TempDir()
	cfg.DiskCacheBytes = 64 * 1024
	ix, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	if err := ix.InsertBulk(entries[:1000]); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := range 4 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				qi := (i + w) % len(queries)
				if _, err := ix.ApproxCandidates(queries[qi], 200); err != nil {
					t.Error(err)
					return
				}
				if _, err := ix.RangeByDists(qDists[qi], 2); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	for i := 1000; i < len(entries); i++ {
		if err := ix.Insert(entries[i]); err != nil {
			t.Error(err)
			break
		}
		if i%7 == 0 {
			if _, err := ix.Delete([]uint64{entries[i-900].ID}); err != nil {
				t.Error(err)
				break
			}
		}
		if i%250 == 0 {
			if err := ix.Compact(); err != nil {
				t.Error(err)
				break
			}
		}
	}
	close(stop)
	wg.Wait()
}
