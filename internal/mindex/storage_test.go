package mindex

import (
	"math/rand/v2"
	"sync"
	"testing"
	"testing/quick"

	"simcloud/internal/dataset"
	"simcloud/internal/metric"
	"simcloud/internal/pivot"
)

func randomEntry(rng *rand.Rand, id uint64) Entry {
	perm := pivot.Permutation([]float64{
		rng.Float64(), rng.Float64(), rng.Float64(), rng.Float64(),
	})
	e := Entry{ID: id, Perm: perm}
	if rng.IntN(2) == 0 {
		e.Dists = []float64{rng.Float64(), rng.Float64(), rng.Float64(), rng.Float64()}
	}
	if rng.IntN(2) == 0 {
		e.Payload = make([]byte, rng.IntN(64))
		for i := range e.Payload {
			e.Payload[i] = byte(rng.IntN(256))
		}
	} else {
		e.Vec = metric.Vector{float32(rng.NormFloat64()), float32(rng.NormFloat64())}
	}
	return e
}

func entriesEqual(a, b Entry) bool {
	if a.ID != b.ID || len(a.Perm) != len(b.Perm) || len(a.Dists) != len(b.Dists) ||
		len(a.Payload) != len(b.Payload) || len(a.Vec) != len(b.Vec) {
		return false
	}
	for i := range a.Perm {
		if a.Perm[i] != b.Perm[i] {
			return false
		}
	}
	for i := range a.Dists {
		if a.Dists[i] != b.Dists[i] {
			return false
		}
	}
	for i := range a.Payload {
		if a.Payload[i] != b.Payload[i] {
			return false
		}
	}
	return a.Vec.Equal(b.Vec) || len(a.Vec) == 0
}

func TestEntryCodecRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	for i := range 200 {
		e := randomEntry(rng, uint64(i))
		buf := EncodeEntry(e)
		if len(buf) != EncodedEntrySize(e) {
			t.Fatalf("encoded size %d, predicted %d", len(buf), EncodedEntrySize(e))
		}
		got, rest, err := DecodeEntry(buf)
		if err != nil {
			t.Fatal(err)
		}
		if len(rest) != 0 {
			t.Fatalf("%d trailing bytes", len(rest))
		}
		if !entriesEqual(e, got) {
			t.Fatalf("round trip mismatch:\n in: %+v\nout: %+v", e, got)
		}
	}
}

func TestEntryCodecStream(t *testing.T) {
	rng := rand.New(rand.NewPCG(2, 2))
	var buf []byte
	var want []Entry
	for i := range 50 {
		e := randomEntry(rng, uint64(i))
		want = append(want, e)
		buf = AppendEntry(buf, e)
	}
	var got []Entry
	for len(buf) > 0 {
		e, rest, err := DecodeEntry(buf)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, e)
		buf = rest
	}
	if len(got) != len(want) {
		t.Fatalf("decoded %d entries, want %d", len(got), len(want))
	}
	for i := range want {
		if !entriesEqual(want[i], got[i]) {
			t.Fatalf("entry %d mismatch", i)
		}
	}
}

func TestQuickDecodeNeverPanics(t *testing.T) {
	f := func(buf []byte) bool {
		if len(buf) > 4096 {
			buf = buf[:4096]
		}
		// Must return an error or an entry, never panic or over-read.
		_, _, _ = DecodeEntry(buf)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeEntryRejectsTruncations(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 3))
	e := randomEntry(rng, 9)
	e.Payload = []byte{1, 2, 3, 4}
	e.Dists = []float64{1, 2, 3, 4}
	buf := EncodeEntry(e)
	for cut := 1; cut < len(buf); cut++ {
		if _, _, err := DecodeEntry(buf[:cut]); err == nil {
			// A truncation may still parse if it lands exactly on a field
			// boundary AND the remaining lengths happen to be consistent —
			// impossible here because the total length is checked per field.
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func storeSuite(t *testing.T, mk func(t *testing.T) BucketStore) {
	t.Run("create-append-load", func(t *testing.T) {
		s := mk(t)
		defer s.Close()
		id, err := s.Create()
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewPCG(4, 4))
		var want []Entry
		for i := range 25 {
			e := randomEntry(rng, uint64(i))
			want = append(want, e)
			if err := s.Append(id, e); err != nil {
				t.Fatal(err)
			}
		}
		got, err := s.Load(id)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("loaded %d, want %d", len(got), len(want))
		}
		for i := range want {
			if !entriesEqual(want[i], got[i]) {
				t.Fatalf("entry %d mismatch", i)
			}
		}
	})
	t.Run("interleaved-append-load", func(t *testing.T) {
		s := mk(t)
		defer s.Close()
		id, _ := s.Create()
		rng := rand.New(rand.NewPCG(5, 5))
		for i := range 10 {
			if err := s.Append(id, randomEntry(rng, uint64(i))); err != nil {
				t.Fatal(err)
			}
			got, err := s.Load(id)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != i+1 {
				t.Fatalf("after %d appends loaded %d", i+1, len(got))
			}
		}
	})
	t.Run("free", func(t *testing.T) {
		s := mk(t)
		defer s.Close()
		id, _ := s.Create()
		if err := s.Free(id); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Load(id); err == nil {
			t.Fatal("load of freed bucket succeeded")
		}
		if err := s.Append(id, Entry{}); err == nil {
			t.Fatal("append to freed bucket succeeded")
		}
		if err := s.Free(id); err == nil {
			t.Fatal("double free succeeded")
		}
	})
	t.Run("unknown-bucket", func(t *testing.T) {
		s := mk(t)
		defer s.Close()
		if _, err := s.Load(12345); err == nil {
			t.Fatal("load of unknown bucket succeeded")
		}
	})
	t.Run("concurrent", func(t *testing.T) {
		s := mk(t)
		defer s.Close()
		ids := make([]BucketID, 8)
		for i := range ids {
			id, err := s.Create()
			if err != nil {
				t.Fatal(err)
			}
			ids[i] = id
		}
		var wg sync.WaitGroup
		for w := range 8 {
			wg.Add(1)
			go func() {
				defer wg.Done()
				rng := rand.New(rand.NewPCG(uint64(w), 6))
				for i := range 50 {
					id := ids[rng.IntN(len(ids))]
					if err := s.Append(id, randomEntry(rng, uint64(i))); err != nil {
						t.Error(err)
						return
					}
					if _, err := s.Load(id); err != nil {
						t.Error(err)
						return
					}
				}
			}()
		}
		wg.Wait()
	})
}

func TestMemStore(t *testing.T) {
	storeSuite(t, func(t *testing.T) BucketStore { return NewMemStore() })
}

func TestDiskStore(t *testing.T) {
	storeSuite(t, func(t *testing.T) BucketStore {
		s, err := NewDiskStore(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		return s
	})
}

func TestDiskStoreManyBucketsExceedFDCache(t *testing.T) {
	s, err := NewDiskStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.maxFDs = 4 // force eviction churn
	rng := rand.New(rand.NewPCG(7, 7))
	ids := make([]BucketID, 20)
	for i := range ids {
		ids[i], err = s.Create()
		if err != nil {
			t.Fatal(err)
		}
	}
	counts := make(map[BucketID]int)
	for i := range 300 {
		id := ids[rng.IntN(len(ids))]
		if err := s.Append(id, randomEntry(rng, uint64(i))); err != nil {
			t.Fatal(err)
		}
		counts[id]++
	}
	for _, id := range ids {
		got, err := s.Load(id)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != counts[id] {
			t.Fatalf("bucket %d holds %d, want %d", id, len(got), counts[id])
		}
	}
}

func TestDiskStoreClosedOps(t *testing.T) {
	s, err := NewDiskStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	id, _ := s.Create()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Create(); err == nil {
		t.Error("create after close succeeded")
	}
	if err := s.Append(id, Entry{}); err == nil {
		t.Error("append after close succeeded")
	}
	if _, err := s.Load(id); err == nil {
		t.Error("load after close succeeded")
	}
	if err := s.Close(); err != nil {
		t.Errorf("second close: %v", err)
	}
}

// A disk-backed index must behave identically to the memory-backed one.
func TestDiskIndexEqualsMemoryIndex(t *testing.T) {
	ds := dataset.Clustered(20, 800, 5, 6, metric.L2{})
	rng := rand.New(rand.NewPCG(20, 20))
	pv := pivot.SelectRandom(rng, ds.Dist, ds.Objects, 8)

	memCfg := testConfig(8)
	diskCfg := testConfig(8)
	diskCfg.Storage = StorageDisk
	diskCfg.DiskPath = t.TempDir()

	mem, err := NewPlain(memCfg, pv)
	if err != nil {
		t.Fatal(err)
	}
	defer mem.Idx.Close()
	disk, err := NewPlain(diskCfg, pv)
	if err != nil {
		t.Fatal(err)
	}
	defer disk.Idx.Close()

	if err := mem.InsertBulk(ds.Objects); err != nil {
		t.Fatal(err)
	}
	if err := disk.InsertBulk(ds.Objects); err != nil {
		t.Fatal(err)
	}

	for trial := range 10 {
		q := ds.Objects[rng.IntN(len(ds.Objects))].Vec
		r := []float64{1, 5, 15}[trial%3]
		a, err := mem.Range(q, r)
		if err != nil {
			t.Fatal(err)
		}
		b, err := disk.Range(q, r)
		if err != nil {
			t.Fatal(err)
		}
		if len(a) != len(b) {
			t.Fatalf("range results differ: %d vs %d", len(a), len(b))
		}
		for i := range a {
			if a[i].ID != b[i].ID || a[i].Dist != b[i].Dist {
				t.Fatalf("result %d differs: %+v vs %+v", i, a[i], b[i])
			}
		}
		ka, err := mem.KNN(q, 7)
		if err != nil {
			t.Fatal(err)
		}
		kb, err := disk.KNN(q, 7)
		if err != nil {
			t.Fatal(err)
		}
		for i := range ka {
			if ka[i].Dist != kb[i].Dist {
				t.Fatalf("kNN rank %d differs: %g vs %g", i, ka[i].Dist, kb[i].Dist)
			}
		}
	}
}
