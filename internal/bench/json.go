package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"
)

// Machine-readable load-test artifacts, in the same document shape
// cmd/benchjson emits for `go test -bench` runs (goos/goarch header plus a
// results list of name + iterations + metrics map), so CI uploads both
// kinds of artifact through one downstream pipeline.

// JSONResult is one measurement: a name, how many operations it covers and
// its metrics. Mirrors benchjson's Result.
type JSONResult struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// JSONDocument is the emitted artifact. Mirrors benchjson's Document.
type JSONDocument struct {
	Goos    string       `json:"goos,omitempty"`
	Goarch  string       `json:"goarch,omitempty"`
	Results []JSONResult `json:"results"`
}

// Write writes the document as indented JSON.
func (d *JSONDocument) Write(w io.Writer) error {
	blob, err := json.MarshalIndent(d, "", "  ")
	if err != nil {
		return err
	}
	_, err = w.Write(append(blob, '\n'))
	return err
}

func newJSONDocument() *JSONDocument {
	return &JSONDocument{Goos: runtime.GOOS, Goarch: runtime.GOARCH}
}

// JSONDocument renders the closed-loop report machine-readably: one result
// per worker plus the aggregate, throughput in q/s.
func (r *LoadReport) JSONDocument() *JSONDocument {
	doc := newJSONDocument()
	base := fmt.Sprintf("LoadTest/%s/%s/workers=%d", r.Spec, mode(r.Encrypted), r.Workers)
	for _, wl := range r.PerWorker {
		doc.Results = append(doc.Results, JSONResult{
			Name:       fmt.Sprintf("%s/worker=%d", base, wl.Worker),
			Iterations: wl.Queries,
			Metrics:    map[string]float64{"qps": wl.QPS},
		})
	}
	doc.Results = append(doc.Results, JSONResult{
		Name:       base,
		Iterations: r.Total,
		Metrics: map[string]float64{
			"qps":        r.QPS,
			"workers":    float64(r.Workers),
			"k":          float64(r.K),
			"cand_size":  float64(r.CandSize),
			"indexed":    float64(r.Indexed),
			"elapsed_ms": float64(r.Elapsed.Milliseconds()),
		},
	})
	return doc
}

// JSONDocument renders the open-loop report machine-readably: offered and
// achieved rates, the outcome counts, and the latency percentiles in
// milliseconds.
func (r *OpenLoopReport) JSONDocument() *JSONDocument {
	doc := newJSONDocument()
	doc.Results = append(doc.Results, JSONResult{
		Name:       fmt.Sprintf("OpenLoop/qps=%.0f/conns=%d", r.OfferedQPS, r.Conns),
		Iterations: r.Sent,
		Metrics: map[string]float64{
			"offered_qps":  r.OfferedQPS,
			"achieved_qps": r.Achieved,
			"ok":           float64(r.OK),
			"rejected":     float64(r.Rejected),
			"errors":       float64(r.Errors),
			"degraded":     float64(r.Degraded),
			"p50_ms":       ms(r.P50),
			"p99_ms":       ms(r.P99),
			"p999_ms":      ms(r.P999),
			"max_ms":       ms(r.Max),
			"elapsed_ms":   ms(r.Duration),
		},
	})
	return doc
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
