package bench

import (
	"fmt"
	"io"
	"os"
	"time"

	"simcloud/internal/core"
	"simcloud/internal/secret"
	"simcloud/internal/server"
	"simcloud/internal/wal"
)

// BulkLoadMode is one measured ingest pipeline: the pre-streaming shape
// (stop-and-wait Insert bulks, -wal-sync always) or the streaming one
// (pipelined InsertStream under windowed acks, -wal-sync group).
type BulkLoadMode struct {
	Name    string // "batch" or "stream"
	WALSync string // the -wal-sync policy the mode ran under
	Objects int
	Elapsed time.Duration
}

// Throughput is the mode's ingest rate in objects/s.
func (m BulkLoadMode) Throughput() float64 {
	if m.Elapsed <= 0 {
		return 0
	}
	return float64(m.Objects) / m.Elapsed.Seconds()
}

// BulkLoadReport compares the two ingest pipelines end to end — encrypted
// client over loopback TCP into a WAL-attached server — on one evaluation
// data set. Both modes end with the same durability: every accepted entry
// is WAL-logged and fsynced before the final ack.
type BulkLoadReport struct {
	Spec   string
	Shards int
	Bulk   int // client-side bulk/chunk size (the paper's construction bulk)
	Modes  []BulkLoadMode
}

// Speedup is stream throughput over batch throughput (0 until both ran).
func (r *BulkLoadReport) Speedup() float64 {
	var batch, stream float64
	for _, m := range r.Modes {
		switch m.Name {
		case "batch":
			batch = m.Throughput()
		case "stream":
			stream = m.Throughput()
		}
	}
	if batch == 0 {
		return 0
	}
	return stream / batch
}

// Render writes the human-readable report.
func (r *BulkLoadReport) Render(w io.Writer) {
	fmt.Fprintf(w, "Bulk load: %s, shards=%d, bulk=%d, encrypted deployment, WAL attached\n",
		r.Spec, r.Shards, r.Bulk)
	fmt.Fprintf(w, "  %-8s %-8s %10s %12s %12s\n", "mode", "wal-sync", "objects", "elapsed", "objs/s")
	for _, m := range r.Modes {
		fmt.Fprintf(w, "  %-8s %-8s %10d %12s %12.0f\n",
			m.Name, m.WALSync, m.Objects, m.Elapsed.Round(time.Millisecond), m.Throughput())
	}
	if s := r.Speedup(); s > 0 {
		fmt.Fprintf(w, "  stream/batch speedup: %.2fx\n", s)
	}
}

// JSONDocument renders the report machine-readably: one result per mode
// (objs_per_s, elapsed_ms) plus the stream/batch speedup, named so
// cmd/benchjson history files line up across commits.
func (r *BulkLoadReport) JSONDocument() *JSONDocument {
	doc := newJSONDocument()
	for _, m := range r.Modes {
		doc.Results = append(doc.Results, JSONResult{
			Name:       fmt.Sprintf("BulkLoad/%s/%s/shards=%d", r.Spec, m.Name, r.Shards),
			Iterations: 1,
			Metrics: map[string]float64{
				"objs_per_s": m.Throughput(),
				"elapsed_ms": float64(m.Elapsed.Milliseconds()),
			},
		})
	}
	if s := r.Speedup(); s > 0 {
		doc.Results = append(doc.Results, JSONResult{
			Name:       fmt.Sprintf("BulkLoad/%s/speedup/shards=%d", r.Spec, r.Shards),
			Iterations: 1,
			Metrics:    map[string]float64{"stream_over_batch": s},
		})
	}
	return doc
}

// BulkLoad measures both ingest pipelines end to end on the named
// evaluation data set: a fresh encrypted server (with a WAL attached) per
// mode, the whole collection pushed through the client, wall clock around
// the inserts only. The batch mode reproduces the pre-streaming pipeline —
// stop-and-wait Insert bulks with -wal-sync always, one fsync per wire
// frame — while the stream mode runs pipelined InsertStream frames under
// windowed acks with -wal-sync group.
func BulkLoad(o Options, specName string, shards int) (*BulkLoadReport, error) {
	o = o.withDefaults()
	if shards < 1 {
		shards = 1
	}
	s, err := SpecByName(specName)
	if err != nil {
		return nil, err
	}
	ds := s.Load(o)
	objs := ds.Objects
	rep := &BulkLoadReport{Spec: ds.Name, Shards: shards, Bulk: o.BulkSize}

	run := func(mode string, policy wal.SyncPolicy) error {
		cfg := s.Cfg
		cfg.Shards = shards
		cfg, tmp, err := preparedCfg(cfg)
		if err != nil {
			return err
		}
		defer func() {
			if tmp != "" {
				os.RemoveAll(tmp)
			}
		}()
		walDir, err := os.MkdirTemp("", "simcloud-wal-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(walDir)
		pv := selectPivots(ds, cfg.NumPivots, o.Seed)
		key, err := secret.Generate(pv, secret.ModeCTRHMAC)
		if err != nil {
			return err
		}
		srv, err := server.NewEncrypted(cfg)
		if err != nil {
			return err
		}
		defer srv.Close()
		l, _, err := wal.Open(walDir, policy)
		if err != nil {
			return err
		}
		defer l.Close()
		srv.AttachWAL(l)
		if err := srv.Start("127.0.0.1:0"); err != nil {
			return err
		}
		opts := core.Options{MaxLevel: cfg.MaxLevel, Ranking: cfg.Ranking}
		if mode == "stream" {
			opts.BatchChunk = o.BulkSize
		}
		client, err := core.DialEncrypted(srv.Addr(), key, opts)
		if err != nil {
			return err
		}
		defer client.Close()

		o.logf("load: %s mode (wal-sync %s): inserting %d objects...", mode, policy, len(objs))
		start := time.Now()
		if mode == "stream" {
			if _, err := client.InsertStream(objs); err != nil {
				return err
			}
		} else {
			for off := 0; off < len(objs); off += o.BulkSize {
				end := min(off+o.BulkSize, len(objs))
				if _, err := client.Insert(objs[off:end]); err != nil {
					return err
				}
			}
		}
		elapsed := time.Since(start)
		if got := srv.Index().Size(); got != len(objs) {
			return fmt.Errorf("bench: %s load holds %d of %d objects", mode, got, len(objs))
		}
		rep.Modes = append(rep.Modes, BulkLoadMode{
			Name: mode, WALSync: policy.String(), Objects: len(objs), Elapsed: elapsed,
		})
		return nil
	}

	if err := run("batch", wal.SyncAlways); err != nil {
		return nil, err
	}
	if err := run("stream", wal.SyncGroup); err != nil {
		return nil, err
	}
	return rep, nil
}
