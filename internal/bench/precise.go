package bench

import (
	"fmt"
	"sort"

	"simcloud/internal/core"
	"simcloud/internal/dataset"
	"simcloud/internal/stats"
)

// The paper's Section 6 leaves "analyzing the precise range and k-NN
// evaluation strategies of Encrypted M-Index in comparison to the
// approximate strategy" as future work. This experiment performs that
// analysis: the same queries are evaluated with the approximate k-NN
// (single round trip, tunable candidate set, recall < 100%), the precise
// k-NN (approximate pass + range ρk — two round trips, exact), and the
// precise range query at the true k-th neighbor radius (one round trip,
// exact, needs stored distance vectors for server-side pivot filtering).

// PreciseResult is the measured outcome of one evaluation strategy.
type PreciseResult struct {
	Strategy string
	Costs    stats.Costs
	Recall   float64
}

// PreciseSweep compares the three evaluation strategies on one data set.
// The index is built with the precise strategy (stored distance vectors),
// which all three can use.
func PreciseSweep(o Options, specName string, candSize int) ([]PreciseResult, error) {
	o = o.withDefaults()
	s, err := SpecByName(specName)
	if err != nil {
		return nil, err
	}
	ds := s.Load(o)
	queries, indexed := dataset.SampleQueries(ds, o.Queries, o.Seed, false)

	cloud, err := NewEncryptedCloud(ds, s.Cfg, o.Seed, core.Options{StoreDists: true})
	if err != nil {
		return nil, err
	}
	defer cloud.Close()
	cloud.Timeout = o.Timeout
	o.logf("precise: inserting %d objects (precise strategy)...", len(indexed))
	if _, err := cloud.InsertAll(indexed, o.BulkSize); err != nil {
		return nil, err
	}
	o.logf("precise: computing ground truth...")
	exactIDs := GroundTruth(ds, indexed, queries, o.K)
	// The true k-th neighbor radius per query drives the precise range run.
	radii := make([]float64, len(queries))
	for qi, q := range queries {
		dists := make([]float64, len(indexed))
		for i, obj := range indexed {
			dists[i] = ds.Dist.Dist(q.Vec, obj.Vec)
		}
		sort.Float64s(dists)
		radii[qi] = dists[min(o.K, len(dists))-1]
	}

	type strategy struct {
		name string
		run  func(qi int) ([]core.Result, stats.Costs, error)
	}
	strategies := []strategy{
		{fmt.Sprintf("ApproxKNN(%d)", candSize), func(qi int) ([]core.Result, stats.Costs, error) {
			ctx, cancel := o.opCtx()
			defer cancel()
			return cloud.Enc.Search(ctx, core.Query{Kind: core.KindApproxKNN, Vec: queries[qi].Vec, K: o.K, CandSize: candSize})
		}},
		{"PreciseKNN", func(qi int) ([]core.Result, stats.Costs, error) {
			ctx, cancel := o.opCtx()
			defer cancel()
			return cloud.Enc.Search(ctx, core.Query{Kind: core.KindKNN, Vec: queries[qi].Vec, K: o.K, CandSize: candSize})
		}},
		{"PreciseRange(rk)", func(qi int) ([]core.Result, stats.Costs, error) {
			ctx, cancel := o.opCtx()
			defer cancel()
			return cloud.Enc.Search(ctx, core.Query{Kind: core.KindRange, Vec: queries[qi].Vec, Radius: radii[qi]})
		}},
	}

	var out []PreciseResult
	for _, st := range strategies {
		o.logf("precise: strategy %s...", st.name)
		var sum stats.Costs
		var recallSum float64
		for qi := range queries {
			res, costs, err := st.run(qi)
			if err != nil {
				return nil, fmt.Errorf("%s query %d: %w", st.name, qi, err)
			}
			ids := make([]uint64, 0, len(res))
			for _, r := range res {
				ids = append(ids, r.ID)
			}
			recallSum += stats.Recall(ids, exactIDs[qi])
			sum.Accumulate(costs)
		}
		out = append(out, PreciseResult{
			Strategy: st.name,
			Costs:    sum.DividedBy(len(queries)),
			Recall:   recallSum / float64(len(queries)),
		})
	}
	return out, nil
}

// PreciseTable renders the precise-vs-approximate analysis.
func PreciseTable(o Options, specName string, candSize int) (*Table, error) {
	o = o.withDefaults()
	results, err := PreciseSweep(o, specName, candSize)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID: "Table P",
		Title: fmt.Sprintf("Precise vs. approximate evaluation strategies, Encrypted M-Index (%s, k=%d) — the paper's §6 future-work analysis",
			specName, o.K),
	}
	for _, r := range results {
		t.Columns = append(t.Columns, r.Strategy)
	}
	cells := func(get func(PreciseResult) string) []string {
		out := make([]string, len(results))
		for i, r := range results {
			out[i] = get(r)
		}
		return out
	}
	t.AddRow("Client time [ms]", cells(func(r PreciseResult) string { return millis(r.Costs.ClientTime) })...)
	t.AddRow("Decryption time [ms]", cells(func(r PreciseResult) string { return millis(r.Costs.DecryptTime) })...)
	t.AddRow("Dist. comp. time [ms]", cells(func(r PreciseResult) string { return millis(r.Costs.DistCompTime) })...)
	t.AddRow("Server time [ms]", cells(func(r PreciseResult) string { return millis(r.Costs.ServerTime) })...)
	t.AddRow("Communication time [ms]", cells(func(r PreciseResult) string { return millis(r.Costs.CommTime) })...)
	t.AddRow("Overall time [ms]", cells(func(r PreciseResult) string { return millis(r.Costs.Overall) })...)
	t.AddRow("Recall [%]", cells(func(r PreciseResult) string { return pct(r.Recall) })...)
	t.AddRow("Communication cost [kB]", cells(func(r PreciseResult) string { return kb(r.Costs.CommBytes()) })...)
	t.AddRow("Round trips", cells(func(r PreciseResult) string { return fmt.Sprintf("%d", r.Costs.RoundTrips) })...)
	t.AddRow("Candidates", cells(func(r PreciseResult) string { return fmt.Sprintf("%d", r.Costs.Candidates) })...)
	return t, nil
}
