package bench

import (
	"context"
	"fmt"
	"math/rand/v2"

	"simcloud/internal/baseline"
	"simcloud/internal/core"
	"simcloud/internal/dataset"
	"simcloud/internal/kmeans"
	"simcloud/internal/metric"
	"simcloud/internal/mindex"
	"simcloud/internal/secret"
	"simcloud/internal/stats"
)

// The routing-family ablation: the same workload, ground truth and
// candidate-size sweep measured across both index families (M-Index pivot
// permutations and k-means centroid cells) with the EHI and FDH baselines
// as brackets — EHI's exact best-first traversal bounds recall from above,
// FDH's Hamming-ball hashing from below. The k-means side additionally
// reports its learned candidate-size predictor against the best global
// constant (the smallest one matching the predictor's achieved recall).

// AblationSpec describes one ablation workload: the collection, the number
// of routing anchors K (pivots for the M-Index, centroids for k-means — the
// same count, so the families spend the same routing metadata), the
// candidate-size sweep and the predictor's target recall.
type AblationSpec struct {
	Name         string
	K            int
	CandSizes    []int
	TargetRecall float64
	Cfg          mindex.Config
	Load         func(o Options) *dataset.Dataset
}

// mixedClustered is the ablation's clustered workload: the generic
// clustered collection plus a uniform sparse background. The two
// populations need very different candidate budgets (cluster queries
// resolve inside one tight cell, background queries scatter across many
// near-tied cells), which is the variance a per-query predictor exists to
// exploit — a single-density collection would hide the difference between
// a learned allocation and a well-tuned constant.
func mixedClustered() *dataset.Dataset {
	ds := dataset.Clustered(2036, 1800, 8, 14, metric.L2{})
	rng := rand.New(rand.NewPCG(2036, 0xBA5E))
	objs := append([]metric.Object(nil), ds.Objects...)
	for i := 0; i < 400; i++ {
		v := make(metric.Vector, ds.Dim)
		for j := range v {
			v[j] = float32(rng.Float64()*56 - 28)
		}
		objs = append(objs, metric.Object{ID: uint64(len(ds.Objects) + i), Vec: v})
	}
	return &dataset.Dataset{Name: "clustered", Objects: objs, Dim: ds.Dim, Dist: ds.Dist}
}

// AblationSpecs returns the two ablation workloads: the mixed-density
// clustered collection under L2 and the embedding-shaped collection under
// the cosine distance.
func AblationSpecs() []AblationSpec {
	return []AblationSpec{
		{
			Name: "clustered", K: 16,
			CandSizes:    []int{60, 120, 240, 480},
			TargetRecall: 0.9,
			Cfg: mindex.Config{
				NumPivots: 16, MaxLevel: 4, BucketCapacity: 200,
				Storage: mindex.StorageMemory, Ranking: mindex.RankFootrule,
			},
			Load: func(Options) *dataset.Dataset { return mixedClustered() },
		},
		{
			Name: "embed768", K: 24,
			CandSizes:    []int{30, 60, 120, 240},
			TargetRecall: 0.9,
			Cfg: mindex.Config{
				NumPivots: 24, MaxLevel: 4, BucketCapacity: 200,
				Storage: mindex.StorageMemory, Ranking: mindex.RankFootrule,
			},
			Load: func(Options) *dataset.Dataset { return dataset.Embed768(1500) },
		},
	}
}

// AblationSpecByName returns the named ablation workload.
func AblationSpecByName(name string) (AblationSpec, error) {
	for _, s := range AblationSpecs() {
		if s.Name == name {
			return s, nil
		}
	}
	return AblationSpec{}, fmt.Errorf("bench: unknown ablation data set %q", name)
}

// AblationResult holds one workload's measured recall curves (percent, per
// CandSizes entry) and the predictor summary. Slices are nil for families
// excluded by the backend filter.
type AblationResult struct {
	Spec   AblationSpec
	K      int // neighbors per query
	MIndex []float64
	KMeans []float64
	FDH    []float64
	// FDHCand is FDH's measured mean candidate count per sweep entry: the
	// Hamming-ball buckets are fetched whole, so small targets overshoot
	// and the measured count, not the target, is the comparable budget.
	FDHCand []float64
	// EHI traverses exactly; its recall and mean candidate count are
	// budget-free scalars.
	EHIRecall float64
	EHICand   float64
	// Predictor summary (kmeans family only): achieved recall and mean
	// candidate count on the evaluation queries at Spec.TargetRecall, and
	// the smallest global constant matching that recall on the same queries.
	PredRecall float64
	PredCand   float64
	BestGlobal int
}

// Ablation measures one workload. backend filters the index families:
// "all", "mindex" or "kmeans". The EHI/FDH brackets always run — a curve
// without its bounds is not an ablation.
func Ablation(o Options, spec AblationSpec, backend string) (*AblationResult, error) {
	o = o.withDefaults()
	if backend != "all" && backend != "mindex" && backend != "kmeans" {
		return nil, fmt.Errorf("bench: unknown ablation backend %q (have all, mindex, kmeans)", backend)
	}
	ds := spec.Load(o)
	// One draw, two disjoint halves, both excluded from the index: the
	// first evaluates every sweep, the second calibrates the predictor (a
	// calibration query must not be indexed, or its zero-distance self-match
	// skews the fitted profile).
	sampled, indexed := dataset.SampleQueries(ds, 2*o.Queries, o.Seed, true)
	queries, calObjs := sampled[:len(sampled)/2], sampled[len(sampled)/2:]
	o.logf("ablation %s: ground truth for %d queries (k=%d)...", spec.Name, len(queries), o.K)
	exact := GroundTruth(ds, indexed, queries, o.K)
	res := &AblationResult{Spec: spec, K: o.K}

	// sweep averages recall (percent) over the evaluation queries.
	sweep := func(search func(q metric.Vector) ([]core.Result, stats.Costs, error)) (float64, float64, error) {
		var recall, cand float64
		for qi, q := range queries {
			rs, costs, err := search(q.Vec)
			if err != nil {
				return 0, 0, fmt.Errorf("query %d: %w", qi, err)
			}
			ids := make([]uint64, len(rs))
			for i, r := range rs {
				ids[i] = r.ID
			}
			recall += stats.Recall(ids, exact[qi])
			cand += float64(costs.Candidates)
		}
		n := float64(len(queries))
		return recall / n, cand / n, nil
	}

	// The encrypted M-Index cloud hosts the M-Index sweep and the EHI/FDH
	// uploads (the baselines store their structures on the same server).
	cloud, err := NewEncryptedCloud(ds, spec.Cfg, o.Seed, core.Options{})
	if err != nil {
		return nil, err
	}
	defer cloud.Close()
	cloud.Timeout = o.Timeout
	o.logf("ablation %s: inserting %d objects into the M-Index cloud...", spec.Name, len(indexed))
	if _, err := cloud.InsertAll(indexed, o.BulkSize); err != nil {
		return nil, err
	}

	if backend != "kmeans" {
		for _, cs := range spec.CandSizes {
			o.logf("ablation %s: M-Index candSize=%d...", spec.Name, cs)
			r, _, err := sweep(func(q metric.Vector) ([]core.Result, stats.Costs, error) {
				ctx, cancel := o.opCtx()
				defer cancel()
				return cloud.Enc.Search(ctx, core.Query{Kind: core.KindApproxKNN, Vec: q, K: o.K, CandSize: cs})
			})
			if err != nil {
				return nil, fmt.Errorf("M-Index: %w", err)
			}
			res.MIndex = append(res.MIndex, r)
		}
	}

	// EHI: exact best-first traversal, the upper bracket.
	rng := rand.New(rand.NewPCG(o.Seed, 0xAB1A))
	root, nodes, err := baseline.EHIBuild(rng, ds.Dist, indexed, cloud.Key, 10, max(spec.Cfg.BucketCapacity/4, 8))
	if err != nil {
		return nil, err
	}
	ehi, err := baseline.DialEHI(cloud.Srv.Addr(), cloud.Key, ds.Dist)
	if err != nil {
		return nil, err
	}
	defer ehi.Close()
	if _, err := ehi.Upload(root, nodes); err != nil {
		return nil, err
	}
	o.logf("ablation %s: EHI (%d nodes)...", spec.Name, len(nodes))
	if res.EHIRecall, res.EHICand, err = sweep(func(q metric.Vector) ([]core.Result, stats.Costs, error) {
		return ehi.KNN(q, o.K)
	}); err != nil {
		return nil, fmt.Errorf("EHI: %w", err)
	}

	// FDH: Hamming-ball hashing, the lower bracket, swept over the same
	// candidate targets.
	params, err := baseline.NewFDHParams(rng, ds.Dist, indexed, 16)
	if err != nil {
		return nil, err
	}
	items, err := baseline.FDHBuild(params, cloud.Key, indexed)
	if err != nil {
		return nil, err
	}
	fdh, err := baseline.DialFDH(cloud.Srv.Addr(), cloud.Key, params)
	if err != nil {
		return nil, err
	}
	defer fdh.Close()
	if _, err := fdh.Upload(items); err != nil {
		return nil, err
	}
	for _, cs := range spec.CandSizes {
		o.logf("ablation %s: FDH candTarget=%d...", spec.Name, cs)
		r, cand, err := sweep(func(q metric.Vector) ([]core.Result, stats.Costs, error) {
			return fdh.KNN(q, o.K, cs, 2)
		})
		if err != nil {
			return nil, fmt.Errorf("FDH: %w", err)
		}
		res.FDH = append(res.FDH, r)
		res.FDHCand = append(res.FDHCand, cand)
	}

	if backend != "mindex" {
		o.logf("ablation %s: training %d centroids...", spec.Name, spec.K)
		m, err := kmeans.Train(kmeans.TrainConfig{K: spec.K, Seed: o.Seed, Dist: ds.Dist}, indexed)
		if err != nil {
			return nil, err
		}
		key, err := secret.Generate(m.PivotSet(), secret.ModeCTRHMAC)
		if err != nil {
			return nil, err
		}
		km, err := core.NewKMeansDirect(kmeans.Config{NumCentroids: spec.K, Storage: mindex.StorageMemory}, key, core.Options{})
		if err != nil {
			return nil, err
		}
		defer km.Close()
		if _, err := km.Insert(indexed); err != nil {
			return nil, err
		}
		ctx := context.Background()
		for _, cs := range spec.CandSizes {
			o.logf("ablation %s: k-means candSize=%d...", spec.Name, cs)
			r, _, err := sweep(func(q metric.Vector) ([]core.Result, stats.Costs, error) {
				return km.Search(ctx, core.Query{Kind: core.KindApproxKNN, Vec: q, K: o.K, CandSize: cs})
			})
			if err != nil {
				return nil, fmt.Errorf("k-means: %w", err)
			}
			res.KMeans = append(res.KMeans, r)
		}

		// Predictor: calibrate on the second held-out half, evaluate on the
		// same queries as the sweeps.
		calQ := make([]metric.Vector, len(calObjs))
		for i, obj := range calObjs {
			calQ[i] = obj.Vec
		}
		o.logf("ablation %s: calibrating the predictor on %d queries...", spec.Name, len(calQ))
		pred, err := km.Calibrate(ctx, calQ, o.K, []float64{spec.TargetRecall}, 6)
		if err != nil {
			return nil, err
		}
		km.SetPredictor(pred)
		res.PredRecall, res.PredCand, err = sweep(func(q metric.Vector) ([]core.Result, stats.Costs, error) {
			return km.Search(ctx, core.Query{Kind: core.KindApproxKNN, Vec: q, K: o.K, TargetRecall: spec.TargetRecall})
		})
		if err != nil {
			return nil, fmt.Errorf("predictor: %w", err)
		}

		// Best global constant: the candidate budget is a prefix of the same
		// promise-ranked stream, so mean recall is non-decreasing in the
		// constant and the smallest one matching the predictor's achieved
		// recall is found by bisection.
		recallAt := func(cs int) (float64, error) {
			r, _, err := sweep(func(q metric.Vector) ([]core.Result, stats.Costs, error) {
				return km.Search(ctx, core.Query{Kind: core.KindApproxKNN, Vec: q, K: o.K, CandSize: cs})
			})
			return r, err
		}
		lo, hi := o.K, km.Index().Size()
		for lo < hi {
			mid := (lo + hi) / 2
			r, err := recallAt(mid)
			if err != nil {
				return nil, err
			}
			if r >= res.PredRecall-1e-9 {
				hi = mid
			} else {
				lo = mid + 1
			}
		}
		res.BestGlobal = lo
	}
	return res, nil
}

// AblationTable renders one workload's ablation as a table: recall curves
// over the candidate-size sweep, the EHI/FDH brackets, and the predictor
// summary (single-valued rows carry their figure in the first column).
func AblationTable(o Options, specName, backend string) (*Table, error) {
	o = o.withDefaults()
	spec, err := AblationSpecByName(specName)
	if err != nil {
		return nil, err
	}
	r, err := Ablation(o, spec, backend)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:    "Ablation " + spec.Name,
		Title: fmt.Sprintf("Routing-family ablation, %d-NN recall vs candidate-set size (%s, %d anchors)", r.K, spec.Name, spec.K),
	}
	for _, cs := range spec.CandSizes {
		t.Columns = append(t.Columns, fmt.Sprintf("%d", cs))
	}
	curve := func(vals []float64) []string {
		out := make([]string, len(spec.CandSizes))
		for i := range out {
			if vals == nil {
				out[i] = "-"
			} else {
				out[i] = pct(vals[i])
			}
		}
		return out
	}
	single := func(v string) []string {
		out := make([]string, len(spec.CandSizes))
		out[0] = v
		for i := 1; i < len(out); i++ {
			out[i] = "-"
		}
		return out
	}
	t.AddRow("M-Index recall [%]", curve(r.MIndex)...)
	t.AddRow("k-means recall [%]", curve(r.KMeans)...)
	t.AddRow("FDH recall [%]", curve(r.FDH)...)
	fdhCand := make([]string, len(spec.CandSizes))
	for i := range fdhCand {
		fdhCand[i] = fmt.Sprintf("%.0f", r.FDHCand[i])
	}
	t.AddRow("FDH mean candidates", fdhCand...)
	t.AddRow("EHI recall [%] (exact)", single(pct(r.EHIRecall))...)
	t.AddRow("EHI mean candidates", single(fmt.Sprintf("%.0f", r.EHICand))...)
	if r.KMeans != nil {
		t.AddRow(fmt.Sprintf("Predictor recall [%%] (target %.0f)", spec.TargetRecall*100), single(pct(r.PredRecall))...)
		t.AddRow("Predictor mean candidates", single(fmt.Sprintf("%.1f", r.PredCand))...)
		t.AddRow("Best global candidates", single(fmt.Sprintf("%d", r.BestGlobal))...)
	}
	return t, nil
}
