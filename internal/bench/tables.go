package bench

import (
	"fmt"
	"math/rand/v2"
	"time"

	"simcloud/internal/baseline"
	"simcloud/internal/core"
	"simcloud/internal/dataset"
	"simcloud/internal/metric"
	"simcloud/internal/stats"
)

// Run regenerates the table with the given id ("1" … "9").
func Run(id string, o Options) (*Table, error) {
	o = o.withDefaults()
	switch id {
	case "1":
		return Table1(o)
	case "2":
		return Table2(o)
	case "3":
		return Table3(o)
	case "4":
		return Table4(o)
	case "5":
		return SearchTable(o, "YEAST", true, "5")
	case "5h", "5H":
		// The paper omits HUMAN search results ("the trends do not differ
		// from YEAST"); this extra table makes that claim checkable.
		return SearchTable(o, "HUMAN", true, "5H")
	case "6":
		return SearchTable(o, "CoPhIR", true, "6")
	case "7":
		return SearchTable(o, "YEAST", false, "7")
	case "7h", "7H":
		return SearchTable(o, "HUMAN", false, "7H")
	case "8":
		return SearchTable(o, "CoPhIR", false, "8")
	case "9":
		return Table9(o)
	case "precise", "P":
		return PreciseTable(o, "YEAST", 600)
	}
	return nil, fmt.Errorf("bench: unknown table %q (have 1..9, 5h, 7h, precise)", id)
}

// AllTables regenerates every table in order.
func AllTables(o Options) ([]*Table, error) {
	var out []*Table
	for _, id := range []string{"1", "2", "3", "4", "5", "5h", "6", "7", "7h", "8", "9", "precise"} {
		t, err := Run(id, o)
		if err != nil {
			return out, fmt.Errorf("bench: table %s: %w", id, err)
		}
		out = append(out, t)
	}
	return out, nil
}

// Table1 summarizes the data sets (paper Table 1).
func Table1(o Options) (*Table, error) {
	o = o.withDefaults()
	t := &Table{ID: "Table 1", Title: "Data sets summary",
		Columns: []string{"# of records", "Data type", "Distance function"}}
	for _, s := range Specs() {
		ds := s.Load(o)
		t.AddRow(ds.Name,
			fmt.Sprintf("%d", ds.Size()),
			fmt.Sprintf("%d-dim num. vectors", ds.Dim),
			ds.Dist.Name())
	}
	return t, nil
}

// Table2 summarizes the M-Index parameters (paper Table 2).
func Table2(Options) (*Table, error) {
	t := &Table{ID: "Table 2", Title: "M-Index parameters",
		Columns: []string{"Bucket capacity", "Storage type", "# of pivots"}}
	for _, s := range Specs() {
		t.AddRow(s.Name,
			fmt.Sprintf("%d", s.Cfg.BucketCapacity),
			s.Cfg.Storage.String(),
			fmt.Sprintf("%d", s.Cfg.NumPivots))
	}
	return t, nil
}

// Table3 measures index construction through the encryption layer
// (paper Table 3).
func Table3(o Options) (*Table, error) {
	return constructionTable(o, true, "Table 3", "Index construction of encrypted M-Index")
}

// Table4 measures index construction of the basic non-encrypted M-Index
// (paper Table 4).
func Table4(o Options) (*Table, error) {
	return constructionTable(o, false, "Table 4", "Index construction of the basic (non-encrypted) M-Index")
}

func constructionTable(o Options, encrypted bool, id, title string) (*Table, error) {
	o = o.withDefaults()
	t := &Table{ID: id, Title: title}
	perSet := make([]stats.Costs, 0, 3)
	for _, s := range Specs() {
		o.logf("%s: constructing %s (encrypted=%v)...", id, s.Name, encrypted)
		ds := s.Load(o)
		costs, err := Construction(ds, s, o, encrypted)
		if err != nil {
			return nil, fmt.Errorf("constructing %s: %w", s.Name, err)
		}
		t.Columns = append(t.Columns, s.Name)
		perSet = append(perSet, costs)
	}
	cells := func(get func(stats.Costs) string) []string {
		out := make([]string, len(perSet))
		for i, c := range perSet {
			out[i] = get(c)
		}
		return out
	}
	if encrypted {
		t.AddRow("Client time [s]", cells(func(c stats.Costs) string { return secs(c.ClientTime) })...)
		t.AddRow("Encryption time [s]", cells(func(c stats.Costs) string { return secs(c.EncryptTime) })...)
		t.AddRow("Dist. comp. time [s]", cells(func(c stats.Costs) string { return secs(c.DistCompTime) })...)
		t.AddRow("Server time [s]", cells(func(c stats.Costs) string { return secs(c.ServerTime) })...)
	} else {
		t.AddRow("Client time [s]", cells(func(c stats.Costs) string { return secs(c.ClientTime) })...)
		t.AddRow("Server time [s]", cells(func(c stats.Costs) string { return secs(c.ServerTime) })...)
		t.AddRow("Dist. comp. time [s]", cells(func(c stats.Costs) string { return secs(c.DistCompTime) })...)
	}
	t.AddRow("Communication time [s]", cells(func(c stats.Costs) string { return secs(c.CommTime) })...)
	t.AddRow("Overall time [s]", cells(func(c stats.Costs) string { return secs(c.Overall) })...)
	return t, nil
}

// Construction builds the index for one data set and returns the summed
// construction costs.
func Construction(ds *dataset.Dataset, s Spec, o Options, encrypted bool) (stats.Costs, error) {
	o = o.withDefaults()
	var cloud *Cloud
	var err error
	if encrypted {
		cloud, err = NewEncryptedCloud(ds, s.Cfg, o.Seed, core.Options{})
	} else {
		cloud, err = NewPlainCloud(ds, s.Cfg, o.Seed)
	}
	if err != nil {
		return stats.Costs{}, err
	}
	defer cloud.Close()
	cloud.Timeout = o.Timeout
	return cloud.InsertAll(ds.Objects, o.BulkSize)
}

// SearchResult bundles the averaged costs and recall of one candidate-size
// configuration.
type SearchResult struct {
	CandSize int
	Costs    stats.Costs
	Recall   float64
}

// SearchSweep runs the approximate k-NN evaluation of Tables 5–8 for one
// data set: o.Queries random queries per candidate size, averaged.
func SearchSweep(o Options, specName string, encrypted bool) ([]SearchResult, error) {
	o = o.withDefaults()
	s, err := SpecByName(specName)
	if err != nil {
		return nil, err
	}
	ds := s.Load(o)
	queries, indexed := dataset.SampleQueries(ds, o.Queries, o.Seed, false)

	var cloud *Cloud
	if encrypted {
		cloud, err = NewEncryptedCloud(ds, s.Cfg, o.Seed, core.Options{})
	} else {
		cloud, err = NewPlainCloud(ds, s.Cfg, o.Seed)
	}
	if err != nil {
		return nil, err
	}
	defer cloud.Close()
	cloud.Timeout = o.Timeout
	o.logf("table: inserting %d objects into %s cloud...", len(indexed), mode(encrypted))
	if _, err := cloud.InsertAll(indexed, o.BulkSize); err != nil {
		return nil, err
	}
	o.logf("table: computing ground truth for %d queries...", len(queries))
	exact := GroundTruth(ds, indexed, queries, o.K)

	results := make([]SearchResult, 0, len(s.CandSizes))
	for _, cs := range s.CandSizes {
		o.logf("table: %s candSize=%d...", specName, cs)
		var sum stats.Costs
		var recallSum float64
		for qi, q := range queries {
			var res []core.Result
			var costs stats.Costs
			var err error
			ctx, cancel := o.opCtx()
			query := core.Query{Kind: core.KindApproxKNN, Vec: q.Vec, K: o.K, CandSize: cs}
			if encrypted {
				res, costs, err = cloud.Enc.Search(ctx, query)
			} else {
				res, costs, err = cloud.Plain.Search(ctx, query)
			}
			cancel()
			if err != nil {
				return nil, fmt.Errorf("query %d candSize %d: %w", qi, cs, err)
			}
			ids := make([]uint64, len(res))
			for i, r := range res {
				ids[i] = r.ID
			}
			recallSum += stats.Recall(ids, exact[qi])
			sum.Accumulate(costs)
		}
		results = append(results, SearchResult{
			CandSize: cs,
			Costs:    sum.DividedBy(len(queries)),
			Recall:   recallSum / float64(len(queries)),
		})
	}
	return results, nil
}

func mode(encrypted bool) string {
	if encrypted {
		return "encrypted"
	}
	return "plain"
}

// SearchTable renders a SearchSweep as the corresponding paper table.
func SearchTable(o Options, specName string, encrypted bool, tableNo string) (*Table, error) {
	o = o.withDefaults()
	results, err := SearchSweep(o, specName, encrypted)
	if err != nil {
		return nil, err
	}
	variant := "Encrypted M-Index"
	if !encrypted {
		variant = "basic (non-encrypted) M-Index"
	}
	t := &Table{
		ID:    "Table " + tableNo,
		Title: fmt.Sprintf("Approximate %d-NN evaluation using the %s (%s)", o.K, variant, specName),
	}
	for _, r := range results {
		t.Columns = append(t.Columns, fmt.Sprintf("%d", r.CandSize))
	}
	cells := func(get func(SearchResult) string) []string {
		out := make([]string, len(results))
		for i, r := range results {
			out[i] = get(r)
		}
		return out
	}
	if encrypted {
		t.AddRow("Client time [s]", cells(func(r SearchResult) string { return secs(r.Costs.ClientTime) })...)
		t.AddRow("Decryption time [s]", cells(func(r SearchResult) string { return secs(r.Costs.DecryptTime) })...)
		t.AddRow("Dist. comp. time [s]", cells(func(r SearchResult) string { return secs(r.Costs.DistCompTime) })...)
		t.AddRow("Server time [s]", cells(func(r SearchResult) string { return secs(r.Costs.ServerTime) })...)
		t.AddRow("Communication time [s]", cells(func(r SearchResult) string { return secs(r.Costs.CommTime) })...)
		t.AddRow("Overall time [s]", cells(func(r SearchResult) string { return secs(r.Costs.Overall) })...)
		t.AddRow("Recall [%]", cells(func(r SearchResult) string { return pct(r.Recall) })...)
		t.AddRow("Communication cost [kB]", cells(func(r SearchResult) string { return kb(r.Costs.CommBytes()) })...)
	} else {
		t.AddRow("Client time [s]", cells(func(SearchResult) string { return "-" })...)
		t.AddRow("Server time [s]", cells(func(r SearchResult) string { return secs(r.Costs.ServerTime) })...)
		t.AddRow("Dist. comp. time [s]", cells(func(r SearchResult) string { return secs(r.Costs.DistCompTime) })...)
		t.AddRow("Communication time [s]", cells(func(r SearchResult) string { return secs(r.Costs.CommTime) })...)
		t.AddRow("Overall time [s]", cells(func(r SearchResult) string { return secs(r.Costs.Overall) })...)
		t.AddRow("Recall [%]", cells(func(r SearchResult) string { return pct(r.Recall) })...)
		t.AddRow("Communication cost [kB]", cells(func(r SearchResult) string { return kb(r.Costs.CommBytes()) })...)
	}
	return t, nil
}

// Table9Result is the measured outcome for one technique in the Section 5.4
// comparison.
type Table9Result struct {
	Technique string
	Costs     stats.Costs
	Recall    float64
}

// Table9Sweep evaluates approximate 1-NN on YEAST with the candidate set
// limited to a single M-Index Voronoi cell (the paper's comparison setting),
// alongside re-implementations of the compared techniques: EHI, FDH and the
// trivial download-everything scheme. Query objects are excluded from the
// indexed set, as in the paper.
func Table9Sweep(o Options) ([]Table9Result, error) {
	o = o.withDefaults()
	s, err := SpecByName("YEAST")
	if err != nil {
		return nil, err
	}
	ds := s.Load(o)
	queries, indexed := dataset.SampleQueries(ds, o.Queries, o.Seed, true)
	exact := GroundTruth(ds, indexed, queries, 1)

	var out []Table9Result

	// Encrypted M-Index, single-cell candidate strategy.
	cloud, err := NewEncryptedCloud(ds, s.Cfg, o.Seed, core.Options{})
	if err != nil {
		return nil, err
	}
	defer cloud.Close()
	cloud.Timeout = o.Timeout
	o.logf("table9: inserting %d objects...", len(indexed))
	if _, err := cloud.InsertAll(indexed, o.BulkSize); err != nil {
		return nil, err
	}
	run := func(name string, query func(q metric.Vector, qi int) ([]core.Result, stats.Costs, error)) error {
		var sum stats.Costs
		var recallSum float64
		for qi, q := range queries {
			res, costs, err := query(q.Vec, qi)
			if err != nil {
				return fmt.Errorf("%s query %d: %w", name, qi, err)
			}
			ids := make([]uint64, len(res))
			for i, r := range res {
				ids[i] = r.ID
			}
			recallSum += stats.Recall(ids, exact[qi])
			sum.Accumulate(costs)
		}
		out = append(out, Table9Result{
			Technique: name,
			Costs:     sum.DividedBy(len(queries)),
			Recall:    recallSum / float64(len(queries)),
		})
		return nil
	}

	o.logf("table9: Encrypted M-Index (1 cell)...")
	if err := run("EncMIndex", func(q metric.Vector, _ int) ([]core.Result, stats.Costs, error) {
		ctx, cancel := o.opCtx()
		defer cancel()
		return cloud.Enc.Search(ctx, core.Query{Kind: core.KindFirstCell, Vec: q, K: 1})
	}); err != nil {
		return nil, err
	}

	// EHI over the same server, key, and collection.
	rng := rand.New(rand.NewPCG(o.Seed, 0xE41))
	root, nodes, err := baseline.EHIBuild(rng, ds.Dist, indexed, cloud.Key, 10, s.Cfg.BucketCapacity/4)
	if err != nil {
		return nil, err
	}
	ehi, err := baseline.DialEHI(cloud.Srv.Addr(), cloud.Key, ds.Dist)
	if err != nil {
		return nil, err
	}
	defer ehi.Close()
	if _, err := ehi.Upload(root, nodes); err != nil {
		return nil, err
	}
	o.logf("table9: EHI (%d nodes)...", len(nodes))
	if err := run("EHI", func(q metric.Vector, _ int) ([]core.Result, stats.Costs, error) {
		return ehi.KNN(q, 1)
	}); err != nil {
		return nil, err
	}

	// FDH over the same server and key.
	params, err := baseline.NewFDHParams(rng, ds.Dist, indexed, 16)
	if err != nil {
		return nil, err
	}
	items, err := baseline.FDHBuild(params, cloud.Key, indexed)
	if err != nil {
		return nil, err
	}
	fdh, err := baseline.DialFDH(cloud.Srv.Addr(), cloud.Key, params)
	if err != nil {
		return nil, err
	}
	defer fdh.Close()
	if _, err := fdh.Upload(items); err != nil {
		return nil, err
	}
	o.logf("table9: FDH...")
	if err := run("FDH", func(q metric.Vector, _ int) ([]core.Result, stats.Costs, error) {
		return fdh.KNN(q, 1, 42, 2) // ~42 candidates, matching the M-Index single-cell average
	}); err != nil {
		return nil, err
	}

	// Trivial download-everything.
	triv, err := baseline.DialTrivial(cloud.Srv.Addr(), cloud.Key)
	if err != nil {
		return nil, err
	}
	defer triv.Close()
	o.logf("table9: trivial...")
	if err := run("Trivial", func(q metric.Vector, _ int) ([]core.Result, stats.Costs, error) {
		return triv.KNN(q, ds.Dist, 1)
	}); err != nil {
		return nil, err
	}
	return out, nil
}

// Table9 renders the Section 5.4 comparison (paper Table 9, extended with
// measured rows for the re-implemented comparison techniques).
func Table9(o Options) (*Table, error) {
	o = o.withDefaults()
	results, err := Table9Sweep(o)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:    "Table 9",
		Title: "Approximate 1-NN search evaluation, YEAST (single-cell candidate set; compared techniques re-implemented)",
	}
	for _, r := range results {
		t.Columns = append(t.Columns, r.Technique)
	}
	cells := func(get func(Table9Result) string) []string {
		out := make([]string, len(results))
		for i, r := range results {
			out[i] = get(r)
		}
		return out
	}
	t.AddRow("Client time [ms]", cells(func(r Table9Result) string { return millis(r.Costs.ClientTime) })...)
	t.AddRow("Decryption time [ms]", cells(func(r Table9Result) string { return millis(r.Costs.DecryptTime) })...)
	t.AddRow("Dist. comp. time [ms]", cells(func(r Table9Result) string { return millis(r.Costs.DistCompTime) })...)
	t.AddRow("Server time [ms]", cells(func(r Table9Result) string { return millis(r.Costs.ServerTime) })...)
	t.AddRow("Communication time [ms]", cells(func(r Table9Result) string { return millis(r.Costs.CommTime) })...)
	t.AddRow("Overall time [ms]", cells(func(r Table9Result) string { return millis(r.Costs.Overall) })...)
	t.AddRow("Recall [%]", cells(func(r Table9Result) string { return pct(r.Recall) })...)
	t.AddRow("Communication cost [kB]", cells(func(r Table9Result) string { return kb(r.Costs.CommBytes()) })...)
	t.AddRow("Round trips", cells(func(r Table9Result) string { return fmt.Sprintf("%d", r.Costs.RoundTrips) })...)
	t.AddRow("Candidates", cells(func(r Table9Result) string { return fmt.Sprintf("%d", r.Costs.Candidates) })...)
	return t, nil
}

// Elapsed is a tiny helper for progress logging in cmd/simbench.
func Elapsed(start time.Time) string { return time.Since(start).Round(time.Millisecond).String() }
