package bench

import (
	"fmt"
	"io"
	"strings"
	"time"
)

// Table is one regenerated experiment table, rendered in the layout of the
// paper (measures as rows, parameter sweep as columns).
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    []Row
}

// Row is one measure across the column sweep.
type Row struct {
	Label string
	Cells []string
}

// AddRow appends a row.
func (t *Table) AddRow(label string, cells ...string) {
	t.Rows = append(t.Rows, Row{Label: label, Cells: cells})
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.Columns)+1)
	widths[0] = len("Measure")
	for _, r := range t.Rows {
		if len(r.Label) > widths[0] {
			widths[0] = len(r.Label)
		}
	}
	for i, c := range t.Columns {
		widths[i+1] = len(c)
	}
	for _, r := range t.Rows {
		for i, c := range r.Cells {
			if i+1 < len(widths) && len(c) > widths[i+1] {
				widths[i+1] = len(c)
			}
		}
	}
	fmt.Fprintf(w, "%s — %s\n", t.ID, t.Title)
	line := func(cells []string) {
		parts := make([]string, len(widths))
		for i := range widths {
			v := ""
			if i < len(cells) {
				v = cells[i]
			}
			if i == 0 {
				parts[i] = fmt.Sprintf("%-*s", widths[i], v)
			} else {
				parts[i] = fmt.Sprintf("%*s", widths[i], v)
			}
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	line(append([]string{"Measure"}, t.Columns...))
	sep := make([]string, len(widths))
	for i, wd := range widths {
		sep[i] = strings.Repeat("-", wd)
	}
	line(sep)
	for _, r := range t.Rows {
		line(append([]string{r.Label}, r.Cells...))
	}
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	t.Render(&b)
	return b.String()
}

// RenderCSV writes the table as CSV (measure column first), ready for
// external plotting of the recall/cost series.
func (t *Table) RenderCSV(w io.Writer) {
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
		}
		return s
	}
	cols := make([]string, 0, len(t.Columns)+1)
	cols = append(cols, "measure")
	for _, c := range t.Columns {
		cols = append(cols, esc(c))
	}
	fmt.Fprintf(w, "# %s — %s\n", t.ID, t.Title)
	fmt.Fprintln(w, strings.Join(cols, ","))
	for _, r := range t.Rows {
		cells := make([]string, 0, len(r.Cells)+1)
		cells = append(cells, esc(r.Label))
		for _, c := range r.Cells {
			cells = append(cells, esc(c))
		}
		fmt.Fprintln(w, strings.Join(cells, ","))
	}
}

// Formatting helpers shared by the table builders.

// secs renders a duration in seconds with adaptive precision, matching the
// paper's second-based tables.
func secs(d time.Duration) string {
	s := d.Seconds()
	switch {
	case s >= 100:
		return fmt.Sprintf("%.1f", s)
	case s >= 1:
		return fmt.Sprintf("%.2f", s)
	default:
		return fmt.Sprintf("%.3f", s)
	}
}

// millis renders a duration in milliseconds (Table 9 layout).
func millis(d time.Duration) string {
	return fmt.Sprintf("%.3f", float64(d.Microseconds())/1000)
}

// kb renders a byte count in kB as the paper does.
func kb(bytes int64) string {
	return fmt.Sprintf("%.2f", float64(bytes)/1000)
}

// pct renders a percentage.
func pct(v float64) string {
	return fmt.Sprintf("%.2f", v)
}
