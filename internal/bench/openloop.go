package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"sort"
	"sync"
	"time"

	"simcloud/internal/gateway"
)

// OpenLoopOptions configures an open-loop load run against a gateway.
type OpenLoopOptions struct {
	// Target is the gateway base URL (e.g. "http://127.0.0.1:8080").
	Target string
	// APIKey authenticates every request.
	APIKey string
	// QPS is the offered arrival rate. Open loop: arrivals keep coming at
	// this rate whether or not earlier requests finished, so queueing delay
	// under overload shows up in the latency tail instead of silently
	// throttling the generator (the coordinated-omission trap of closed
	// loops).
	QPS float64
	// Conns is the number of concurrent sender connections.
	Conns int
	// Duration is the offered-load window. Senders drain what was scheduled
	// inside it, so the run can finish slightly later under overload.
	Duration time.Duration
	// K, CandSize and Dim shape the approx-knn query stream (Dim must match
	// the target's indexed vectors).
	K        int
	CandSize int
	Dim      int
	// Seed derives the query vectors.
	Seed uint64
	// Log, when set, receives progress lines.
	Log io.Writer
}

func (o OpenLoopOptions) withDefaults() OpenLoopOptions {
	if o.QPS <= 0 {
		o.QPS = 100
	}
	if o.Conns <= 0 {
		o.Conns = 4
	}
	if o.Duration <= 0 {
		o.Duration = 10 * time.Second
	}
	if o.K <= 0 {
		o.K = 10
	}
	if o.Dim <= 0 {
		o.Dim = 8
	}
	if o.Seed == 0 {
		o.Seed = 2012
	}
	return o
}

// OpenLoopReport is the outcome of one open-loop run. Latency percentiles
// are measured from each request's scheduled arrival time — not its send
// time — so time spent queueing for a free connection counts, exactly the
// delay a real open-world client would see.
type OpenLoopReport struct {
	Target     string        `json:"target"`
	OfferedQPS float64       `json:"offered_qps"`
	Conns      int           `json:"conns"`
	Duration   time.Duration `json:"duration_ns"`
	Sent       int64         `json:"sent"`
	OK         int64         `json:"ok"`
	Rejected   int64         `json:"rejected"` // 429s
	Errors     int64         `json:"errors"`   // transport failures + non-200/429
	Degraded   int64         `json:"degraded"` // 200s served with a shed CandSize
	Achieved   float64       `json:"achieved_qps"`
	P50        time.Duration `json:"p50_ns"`
	P99        time.Duration `json:"p99_ns"`
	P999       time.Duration `json:"p999_ns"`
	Max        time.Duration `json:"max_ns"`
}

// Render writes the human-readable summary.
func (r *OpenLoopReport) Render(w io.Writer) {
	fmt.Fprintf(w, "Open-loop load test: %s, offered %.0f q/s over %d conns for %s\n",
		r.Target, r.OfferedQPS, r.Conns, r.Duration.Round(time.Millisecond))
	fmt.Fprintf(w, "  sent %d: %d ok (%d degraded), %d rejected (429), %d errors\n",
		r.Sent, r.OK, r.Degraded, r.Rejected, r.Errors)
	fmt.Fprintf(w, "  achieved %8.1f q/s\n", r.Achieved)
	fmt.Fprintf(w, "  latency  p50 %v  p99 %v  p999 %v  max %v\n",
		r.P50.Round(10*time.Microsecond), r.P99.Round(10*time.Microsecond),
		r.P999.Round(10*time.Microsecond), r.Max.Round(10*time.Microsecond))
}

// OpenLoop offers requests to a gateway at a fixed rate from Conns
// concurrent connections and reports achieved throughput and the latency
// distribution. Arrivals are scheduled on the ideal clock (arrival i is due
// at start + i/QPS) and buffered, so a slow or refusing server cannot slow
// the offered rate down.
func OpenLoop(o OpenLoopOptions) (*OpenLoopReport, error) {
	o = o.withDefaults()
	logf := func(format string, args ...any) {
		if o.Log != nil {
			fmt.Fprintf(o.Log, format+"\n", args...)
		}
	}

	// Pre-encode the query bodies: a pool of distinct vectors large enough
	// to defeat any response caching, cycled per arrival. Encoding outside
	// the measured window keeps the generator's own cost out of the tail.
	rng := rand.New(rand.NewPCG(o.Seed, 0x0417))
	const nBodies = 256
	bodies := make([][]byte, nBodies)
	for i := range bodies {
		vec := make([]float32, o.Dim)
		for d := range vec {
			vec[d] = float32(rng.NormFloat64() * 10)
		}
		body, err := json.Marshal(gateway.SearchRequest{
			Kind: "approx-knn", Vec: vec, K: o.K, CandSize: o.CandSize,
		})
		if err != nil {
			return nil, err
		}
		bodies[i] = body
	}

	total := int64(o.QPS * o.Duration.Seconds())
	if total < 1 {
		total = 1
	}
	interval := time.Duration(float64(time.Second) / o.QPS)
	arrivals := make(chan arrival, total)

	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        o.Conns,
		MaxIdleConnsPerHost: o.Conns,
	}}
	defer client.CloseIdleConnections()
	url := o.Target + "/v1/search"

	// Warm up the connections (and the server's first-touch paths) before
	// the clock starts.
	if code, _, err := postOne(client, url, o.APIKey, bodies[0]); err != nil {
		return nil, fmt.Errorf("bench: open-loop warm-up: %w", err)
	} else if code != http.StatusOK {
		return nil, fmt.Errorf("bench: open-loop warm-up: gateway answered %d", code)
	}

	logf("openloop: offering %.0f q/s x %s over %d conns (%d requests)...",
		o.QPS, o.Duration, o.Conns, total)

	type counts struct {
		ok, rejected, errors, degraded int64
		lats                           []time.Duration
	}
	perConn := make([]counts, o.Conns)
	var wg sync.WaitGroup
	start := time.Now()
	for c := range o.Conns {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cc := &perConn[c]
			cc.lats = make([]time.Duration, 0, int(total)/o.Conns+1)
			for a := range arrivals {
				code, degraded, err := postOne(client, url, o.APIKey, bodies[a.seq%nBodies])
				lat := time.Since(start) - a.due
				switch {
				case err != nil:
					cc.errors++
				case code == http.StatusOK:
					cc.ok++
					if degraded {
						cc.degraded++
					}
					cc.lats = append(cc.lats, lat)
				case code == http.StatusTooManyRequests:
					cc.rejected++
				default:
					cc.errors++
				}
			}
		}()
	}

	// The scheduler: enqueue each arrival when its ideal due time passes.
	// The channel holds the full run, so a stalled server backs requests up
	// in the queue (where their waiting is measured) — never in the
	// scheduler.
	for i := int64(0); i < total; i++ {
		due := time.Duration(i) * interval
		if sleep := due - time.Since(start); sleep > 0 {
			time.Sleep(sleep)
		}
		arrivals <- arrival{seq: int(i), due: due}
	}
	close(arrivals)
	wg.Wait()
	elapsed := time.Since(start)

	rep := &OpenLoopReport{
		Target:     o.Target,
		OfferedQPS: o.QPS,
		Conns:      o.Conns,
		Duration:   elapsed,
		Sent:       total,
	}
	var all []time.Duration
	for _, cc := range perConn {
		rep.OK += cc.ok
		rep.Rejected += cc.rejected
		rep.Errors += cc.errors
		rep.Degraded += cc.degraded
		all = append(all, cc.lats...)
	}
	rep.Achieved = float64(rep.OK) / elapsed.Seconds()
	if len(all) > 0 {
		sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
		rep.P50 = percentile(all, 0.50)
		rep.P99 = percentile(all, 0.99)
		rep.P999 = percentile(all, 0.999)
		rep.Max = all[len(all)-1]
	}
	return rep, nil
}

type arrival struct {
	seq int
	due time.Duration // offset from the run's start on the ideal clock
}

// percentile reads the q-quantile from an ascending latency sample
// (nearest-rank; exact, unlike a bucketed histogram).
func percentile(sorted []time.Duration, q float64) time.Duration {
	idx := int(q*float64(len(sorted))) - 1
	if idx < 0 {
		idx = 0
	}
	return sorted[min(idx, len(sorted)-1)]
}

// postOne sends one search request and reports the status code and whether
// the gateway flagged the answer as degraded.
func postOne(client *http.Client, url, apiKey string, body []byte) (code int, degraded bool, err error) {
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return 0, false, err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-API-Key", apiKey)
	resp, err := client.Do(req)
	if err != nil {
		return 0, false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		var sr gateway.SearchResponse
		if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
			return resp.StatusCode, false, err
		}
		return resp.StatusCode, sr.Degraded, nil
	}
	io.Copy(io.Discard, resp.Body)
	return resp.StatusCode, false, nil
}
