package bench

import (
	"strings"
	"testing"

	"simcloud/internal/dataset"
	"simcloud/internal/metric"
)

// small returns laptop-test-scale options.
func small() Options {
	return Options{CoPhIRScale: 600, Queries: 6, K: 5, Seed: 7, BulkSize: 500}
}

func TestTableRender(t *testing.T) {
	tab := &Table{ID: "Table X", Title: "demo", Columns: []string{"a", "bb"}}
	tab.AddRow("row one", "1", "2")
	tab.AddRow("r2", "333", "4")
	s := tab.String()
	for _, want := range []string{"Table X", "demo", "Measure", "row one", "333"} {
		if !strings.Contains(s, want) {
			t.Fatalf("render missing %q:\n%s", want, s)
		}
	}
}

func TestFormatHelpers(t *testing.T) {
	if got := kb(25810); got != "25.81" {
		t.Fatalf("kb = %q", got)
	}
	if got := pct(59.8); got != "59.80" {
		t.Fatalf("pct = %q", got)
	}
}

func TestTable1And2(t *testing.T) {
	o := small()
	t1, err := Table1(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(t1.Rows) != 3 {
		t.Fatalf("table 1 has %d rows", len(t1.Rows))
	}
	if t1.Rows[0].Cells[0] != "2882" {
		t.Fatalf("YEAST size cell = %q", t1.Rows[0].Cells[0])
	}
	t2, err := Table2(o)
	if err != nil {
		t.Fatal(err)
	}
	if t2.Rows[2].Cells[1] != "disk" {
		t.Fatalf("CoPhIR storage = %q", t2.Rows[2].Cells[1])
	}
	if t2.Rows[0].Cells[2] != "30" || t2.Rows[1].Cells[2] != "50" || t2.Rows[2].Cells[2] != "100" {
		t.Fatalf("pivot columns wrong: %+v", t2.Rows)
	}
}

func TestSpecByName(t *testing.T) {
	if _, err := SpecByName("YEAST"); err != nil {
		t.Fatal(err)
	}
	if _, err := SpecByName("bogus"); err == nil {
		t.Fatal("bogus spec accepted")
	}
}

func TestConstructionEncryptedVsPlain(t *testing.T) {
	o := small()
	spec, err := SpecByName("YEAST")
	if err != nil {
		t.Fatal(err)
	}
	ds := spec.Load(o)
	encCosts, err := Construction(ds, spec, o, true)
	if err != nil {
		t.Fatal(err)
	}
	plainCosts, err := Construction(ds, spec, o, false)
	if err != nil {
		t.Fatal(err)
	}
	// Shape: encryption happens only in the encrypted variant, and its
	// client does the distance computations while the plain server does.
	if encCosts.EncryptTime <= 0 {
		t.Fatal("no encryption time in encrypted construction")
	}
	if plainCosts.EncryptTime != 0 {
		t.Fatal("encryption time in plain construction")
	}
	if encCosts.ClientTime <= plainCosts.ClientTime {
		t.Fatalf("encrypted client %v not above plain client %v",
			encCosts.ClientTime, plainCosts.ClientTime)
	}
	if plainCosts.DistCompTime <= 0 {
		t.Fatal("plain construction reported no server distance time")
	}
}

func TestSearchSweepShapesYeast(t *testing.T) {
	o := small()
	res, err := SearchSweep(o, "YEAST", true)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 4 {
		t.Fatalf("%d sweep points", len(res))
	}
	for i := 1; i < len(res); i++ {
		if res[i].Costs.CommBytes() <= res[i-1].Costs.CommBytes() {
			t.Fatalf("communication cost not increasing with candidate size: %d then %d",
				res[i-1].Costs.CommBytes(), res[i].Costs.CommBytes())
		}
	}
	first, last := res[0], res[len(res)-1]
	if last.Recall < first.Recall-5 {
		t.Fatalf("recall did not improve: %g%% -> %g%%", first.Recall, last.Recall)
	}
	if last.Recall < 60 {
		t.Fatalf("recall at candSize %d only %g%%", last.CandSize, last.Recall)
	}
	// Candidate counts transferred must match the requested sizes.
	for _, r := range res {
		if r.Costs.Candidates != int64(r.CandSize) {
			t.Fatalf("candSize %d transferred %d candidates", r.CandSize, r.Costs.Candidates)
		}
	}
}

func TestSearchSweepPlainCommConstant(t *testing.T) {
	o := small()
	res, err := SearchSweep(o, "YEAST", false)
	if err != nil {
		t.Fatal(err)
	}
	base := res[0].Costs.CommBytes()
	for _, r := range res {
		if r.Costs.CommBytes() != base {
			t.Fatalf("plain communication cost varies: %d vs %d", base, r.Costs.CommBytes())
		}
	}
	// Recall must match the encrypted variant: same candidates, same
	// refinement — only where the work happens differs.
	enc, err := SearchSweep(o, "YEAST", true)
	if err != nil {
		t.Fatal(err)
	}
	for i := range res {
		if res[i].Recall != enc[i].Recall {
			t.Fatalf("candSize %d: plain recall %g != encrypted recall %g",
				res[i].CandSize, res[i].Recall, enc[i].Recall)
		}
	}
}

func TestSearchSweepDiskBackedCoPhIR(t *testing.T) {
	o := small()
	o.Queries = 3
	res, err := SearchSweep(o, "CoPhIR", true)
	if err != nil {
		t.Fatal(err)
	}
	// With only 600 objects every candidate size ≥ 600 covers everything.
	last := res[len(res)-1]
	if last.Recall != 100 {
		t.Fatalf("full-coverage recall = %g%%", last.Recall)
	}
}

func TestTable9SweepTechniques(t *testing.T) {
	o := small()
	o.Queries = 8
	res, err := Table9Sweep(o)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Table9Result{}
	for _, r := range res {
		byName[r.Technique] = r
	}
	for _, name := range []string{"EncMIndex", "EHI", "FDH", "Trivial"} {
		if _, ok := byName[name]; !ok {
			t.Fatalf("technique %s missing from sweep", name)
		}
	}
	// Trivial and EHI are exact: recall 100. FDH and the single-cell
	// M-Index are approximate but must find most 1-NNs.
	if byName["Trivial"].Recall != 100 {
		t.Fatalf("trivial recall = %g", byName["Trivial"].Recall)
	}
	if byName["EHI"].Recall != 100 {
		t.Fatalf("EHI recall = %g", byName["EHI"].Recall)
	}
	// Cost ordering claims of the paper: the Encrypted M-Index beats the
	// others on communication cost.
	m := byName["EncMIndex"].Costs.CommBytes()
	for _, other := range []string{"EHI", "Trivial"} {
		if byName[other].Costs.CommBytes() <= m {
			t.Fatalf("%s comm bytes %d not above EncMIndex %d",
				other, byName[other].Costs.CommBytes(), m)
		}
	}
	if byName["EncMIndex"].Costs.RoundTrips != 1 {
		t.Fatalf("EncMIndex used %d round trips", byName["EncMIndex"].Costs.RoundTrips)
	}
	if byName["EHI"].Costs.RoundTrips <= 1 {
		t.Fatalf("EHI used %d round trips", byName["EHI"].Costs.RoundTrips)
	}
}

func TestGroundTruth(t *testing.T) {
	ds := dataset.Clustered(5, 50, 3, 2, metric.L1{})
	queries := ds.Objects[:2]
	gt := GroundTruth(ds, ds.Objects, queries, 3)
	if len(gt) != 2 {
		t.Fatalf("%d ground truths", len(gt))
	}
	for qi, ids := range gt {
		if len(ids) != 3 {
			t.Fatalf("query %d: %d neighbors", qi, len(ids))
		}
		// The query object itself is indexed, so it must be its own 1-NN.
		if ids[0] != queries[qi].ID {
			t.Fatalf("query %d: 1-NN is %d, want itself (%d)", qi, ids[0], queries[qi].ID)
		}
	}
}

func TestRunDispatch(t *testing.T) {
	if _, err := Run("42", small()); err == nil {
		t.Fatal("unknown table id accepted")
	}
	tab, err := Run("2", small())
	if err != nil {
		t.Fatal(err)
	}
	if tab.ID != "Table 2" {
		t.Fatalf("dispatched to %s", tab.ID)
	}
}

func TestPreciseSweepStrategies(t *testing.T) {
	o := small()
	o.Queries = 6
	o.K = 10
	res, err := PreciseSweep(o, "YEAST", 300)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 {
		t.Fatalf("%d strategies", len(res))
	}
	byName := map[string]PreciseResult{}
	for _, r := range res {
		byName[r.Strategy] = r
	}
	// Both precise strategies must be exact; the approximate one may not be.
	if r := byName["PreciseKNN"]; r.Recall != 100 {
		t.Fatalf("precise kNN recall = %g", r.Recall)
	}
	if r := byName["PreciseRange(rk)"]; r.Recall != 100 {
		t.Fatalf("precise range recall = %g", r.Recall)
	}
	// Precise kNN pays two round trips (approximate pass + range ρk).
	if byName["PreciseKNN"].Costs.RoundTrips != 2 {
		t.Fatalf("precise kNN used %d round trips", byName["PreciseKNN"].Costs.RoundTrips)
	}
	if byName["ApproxKNN(300)"].Costs.RoundTrips != 1 {
		t.Fatalf("approx kNN used %d round trips", byName["ApproxKNN(300)"].Costs.RoundTrips)
	}
	// Exactness costs more communication than the approximate pass alone.
	if byName["PreciseKNN"].Costs.CommBytes() <= byName["ApproxKNN(300)"].Costs.CommBytes() {
		t.Fatal("precise kNN communication not above approximate")
	}
	// The dispatcher knows the new table.
	tab, err := Run("precise", o)
	if err != nil {
		t.Fatal(err)
	}
	if tab.ID != "Table P" {
		t.Fatalf("dispatched to %s", tab.ID)
	}
}

func TestTableRenderCSV(t *testing.T) {
	tab := &Table{ID: "Table X", Title: "demo", Columns: []string{"150", "300"}}
	tab.AddRow("Recall [%]", "59.80", "82.87")
	tab.AddRow(`weird,"label`, "1", "2")
	var b strings.Builder
	tab.RenderCSV(&b)
	out := b.String()
	if !strings.Contains(out, "measure,150,300") {
		t.Fatalf("csv header missing:\n%s", out)
	}
	if !strings.Contains(out, "Recall [%],59.80,82.87") {
		t.Fatalf("csv row missing:\n%s", out)
	}
	if !strings.Contains(out, `"weird,""label"`) {
		t.Fatalf("csv escaping broken:\n%s", out)
	}
}
