package bench

import (
	"testing"

	"simcloud/internal/dataset"
	"simcloud/internal/metric"
	"simcloud/internal/mindex"
)

// testAblationSpec is a laptop-second version of the clustered ablation
// workload: same shape, smaller collection.
func testAblationSpec() AblationSpec {
	return AblationSpec{
		Name: "clustered", K: 10,
		CandSizes:    []int{40, 120, 300},
		TargetRecall: 0.85,
		Cfg: mindex.Config{
			NumPivots: 10, MaxLevel: 4, BucketCapacity: 100,
			Storage: mindex.StorageMemory, Ranking: mindex.RankFootrule,
		},
		Load: func(Options) *dataset.Dataset {
			return dataset.Clustered(2040, 700, 8, 10, metric.L2{})
		},
	}
}

// TestAblationBaselinesBracketFamilies: the point of the ablation path —
// on the same workload and ground truth, the exact EHI traversal bounds
// both index families' recall from above and the FDH hashing baseline
// bounds them from below at every swept candidate size.
func TestAblationBaselinesBracketFamilies(t *testing.T) {
	o := Options{Queries: 15, K: 10, Seed: 7}
	spec := testAblationSpec()
	r, err := Ablation(o, spec, "all")
	if err != nil {
		t.Fatal(err)
	}
	if len(r.MIndex) != len(spec.CandSizes) || len(r.KMeans) != len(spec.CandSizes) || len(r.FDH) != len(spec.CandSizes) {
		t.Fatalf("curve lengths: mindex=%d kmeans=%d fdh=%d, want %d",
			len(r.MIndex), len(r.KMeans), len(r.FDH), len(spec.CandSizes))
	}
	t.Logf("mindex=%v kmeans=%v fdh=%v ehi=%.2f (cand %.0f) pred=%.2f@%.1f best=%d",
		r.MIndex, r.KMeans, r.FDH, r.EHIRecall, r.EHICand, r.PredRecall, r.PredCand, r.BestGlobal)
	for i, cs := range spec.CandSizes {
		for _, fam := range []struct {
			name   string
			recall float64
		}{{"M-Index", r.MIndex[i]}, {"k-means", r.KMeans[i]}} {
			if fam.recall > r.EHIRecall+1e-9 {
				t.Errorf("candSize %d: %s recall %.2f above the exact EHI bracket %.2f",
					cs, fam.name, fam.recall, r.EHIRecall)
			}
		}
	}
	// The FDH bracket holds at the top of the sweep: its Hamming-ball
	// hashing has a recall ceiling no candidate budget lifts, while both
	// index families converge toward exact. (Small sweep points are not
	// budget-comparable — FDH fetches buckets whole and overshoots small
	// targets; see FDHCand.)
	last := len(spec.CandSizes) - 1
	for _, fam := range []struct {
		name   string
		recall float64
	}{{"M-Index", r.MIndex[last]}, {"k-means", r.KMeans[last]}} {
		if fam.recall < r.FDH[last]-1e-9 {
			t.Errorf("%s recall %.2f at candSize %d below the FDH bracket %.2f",
				fam.name, fam.recall, spec.CandSizes[last], r.FDH[last])
		}
	}
	// A candidate budget is a prefix of the family's ranked stream: both
	// curves must be non-decreasing in the candidate size.
	for i := 1; i < len(spec.CandSizes); i++ {
		if r.MIndex[i] < r.MIndex[i-1] || r.KMeans[i] < r.KMeans[i-1] {
			t.Errorf("recall curve decreased at candSize %d: mindex=%v kmeans=%v",
				spec.CandSizes[i], r.MIndex, r.KMeans)
		}
	}
	if r.PredCand <= 0 || r.BestGlobal <= 0 {
		t.Fatalf("predictor summary missing: cand=%.1f best=%d", r.PredCand, r.BestGlobal)
	}
}

// TestAblationBackendFilter: the backend filter drops the other family's
// sweep but keeps the brackets.
func TestAblationBackendFilter(t *testing.T) {
	o := Options{Queries: 6, K: 5, Seed: 7}
	spec := testAblationSpec()
	spec.CandSizes = []int{60}
	r, err := Ablation(o, spec, "kmeans")
	if err != nil {
		t.Fatal(err)
	}
	if r.MIndex != nil {
		t.Errorf("backend kmeans still measured the M-Index: %v", r.MIndex)
	}
	if len(r.KMeans) != 1 || len(r.FDH) != 1 || r.EHIRecall == 0 {
		t.Errorf("kmeans run incomplete: kmeans=%v fdh=%v ehi=%.2f", r.KMeans, r.FDH, r.EHIRecall)
	}
	if _, err := Ablation(o, spec, "bogus"); err == nil {
		t.Fatal("bogus backend accepted")
	}
}
