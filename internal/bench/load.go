package bench

import (
	"fmt"
	"io"
	"sync"
	"time"

	"simcloud/internal/core"
	"simcloud/internal/dataset"
	"simcloud/internal/metric"
)

// WorkerLoad is one closed-loop worker's share of a load test.
type WorkerLoad struct {
	Worker  int
	Queries int64
	QPS     float64
}

// LoadReport is the outcome of a closed-loop concurrent load test: per-worker
// and aggregate throughput over a shared cloud. It is the client-side
// counterpart of the in-process concurrent benchmarks in internal/mindex —
// the numbers here include the wire protocol and (in encrypted mode) the
// cryptography, so they bound what a deployment actually serves.
type LoadReport struct {
	Spec      string
	Encrypted bool
	Workers   int
	K         int
	CandSize  int
	Indexed   int
	Elapsed   time.Duration
	PerWorker []WorkerLoad
	Total     int64
	QPS       float64
}

// Render writes the report in the same spirit as the paper tables: one line
// per worker, then the aggregate.
func (r *LoadReport) Render(w io.Writer) {
	fmt.Fprintf(w, "Load test: %s, %s deployment, %d objects, %d workers, k=%d, candSize=%d\n",
		r.Spec, mode(r.Encrypted), r.Indexed, r.Workers, r.K, r.CandSize)
	for _, wl := range r.PerWorker {
		fmt.Fprintf(w, "  worker %2d: %6d queries  %8.1f q/s\n", wl.Worker, wl.Queries, wl.QPS)
	}
	fmt.Fprintf(w, "  aggregate: %6d queries  %8.1f q/s  in %s\n",
		r.Total, r.QPS, r.Elapsed.Round(time.Millisecond))
}

// LoadTest runs a closed-loop concurrent approximate k-NN load test: workers
// goroutines each issue queries back-to-back against one cloud for the given
// duration. Closed-loop means each worker waits for its answer before asking
// again, so aggregate throughput scaling with worker count directly measures
// how well the server's lock-free read path overlaps concurrent searches.
// candSize <= 0 picks the middle of the spec's evaluated candidate sizes.
func LoadTest(o Options, specName string, encrypted bool, workers int, duration time.Duration, candSize int) (*LoadReport, error) {
	o = o.withDefaults()
	if workers < 1 {
		return nil, fmt.Errorf("bench: load test needs at least 1 worker, got %d", workers)
	}
	if duration <= 0 {
		duration = 10 * time.Second
	}
	s, err := SpecByName(specName)
	if err != nil {
		return nil, err
	}
	if candSize <= 0 {
		candSize = s.CandSizes[len(s.CandSizes)/2]
	}
	ds := s.Load(o)
	queries, indexed := dataset.SampleQueries(ds, o.Queries, o.Seed, false)

	var cloud *Cloud
	if encrypted {
		cloud, err = NewEncryptedCloud(ds, s.Cfg, o.Seed, core.Options{})
	} else {
		cloud, err = NewPlainCloud(ds, s.Cfg, o.Seed)
	}
	if err != nil {
		return nil, err
	}
	defer cloud.Close()
	cloud.Timeout = o.Timeout
	o.logf("load: inserting %d objects into %s cloud...", len(indexed), mode(encrypted))
	if _, err := cloud.InsertAll(indexed, o.BulkSize); err != nil {
		return nil, err
	}

	search := func(q metric.Vector) error {
		ctx, cancel := o.opCtx()
		defer cancel()
		query := core.Query{Kind: core.KindApproxKNN, Vec: q, K: o.K, CandSize: candSize}
		if encrypted {
			_, _, err := cloud.Enc.Search(ctx, query)
			return err
		}
		_, _, err := cloud.Plain.Search(ctx, query)
		return err
	}

	// One warm-up query so connection dials and first-touch work do not
	// land inside the measured window of whichever worker goes first.
	if err := search(queries[0].Vec); err != nil {
		return nil, fmt.Errorf("bench: load warm-up query: %w", err)
	}

	o.logf("load: %d workers x %s, candSize=%d...", workers, duration, candSize)
	counts := make([]int64, workers)
	errs := make([]error, workers)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	start := time.Now()
	for w := range workers {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Stagger starting query indexes so workers do not march
			// through the query set in lockstep.
			qi := w * len(queries) / workers
			for {
				select {
				case <-stop:
					return
				default:
				}
				if err := search(queries[qi%len(queries)].Vec); err != nil {
					errs[w] = fmt.Errorf("bench: load worker %d: %w", w, err)
					return
				}
				qi++
				counts[w]++
			}
		}()
	}
	time.Sleep(duration)
	close(stop)
	wg.Wait()
	elapsed := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	rep := &LoadReport{
		Spec:      s.Name,
		Encrypted: encrypted,
		Workers:   workers,
		K:         o.K,
		CandSize:  candSize,
		Indexed:   len(indexed),
		Elapsed:   elapsed,
	}
	secs := elapsed.Seconds()
	for w, n := range counts {
		rep.PerWorker = append(rep.PerWorker, WorkerLoad{Worker: w, Queries: n, QPS: float64(n) / secs})
		rep.Total += n
	}
	rep.QPS = float64(rep.Total) / secs
	return rep, nil
}
