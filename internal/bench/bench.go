// Package bench is the experiment harness that regenerates every table of
// the paper's evaluation (Section 5): index construction (Tables 3–4),
// approximate 30-NN search (Tables 5–8), and the 1-NN comparison with the
// techniques of Yiu et al. (Table 9), plus the data-set and parameter
// summaries (Tables 1–2) and the ablation sweeps called out in DESIGN.md.
//
// Every experiment runs a real client–server pair over loopback TCP — the
// paper's measurement setup — and reports the same cost decomposition:
// client / encryption / decryption / distance-computation / server /
// communication / overall time, recall, and communication cost.
package bench

import (
	"context"
	"fmt"
	"io"
	"math/rand/v2"
	"os"
	"sort"
	"time"

	"simcloud/internal/core"
	"simcloud/internal/dataset"
	"simcloud/internal/metric"
	"simcloud/internal/mindex"
	"simcloud/internal/pivot"
	"simcloud/internal/secret"
	"simcloud/internal/server"
	"simcloud/internal/stats"
)

// Options scales the experiments. The zero value is the paper-faithful
// configuration except for CoPhIRScale, which defaults to a laptop-scale
// subset (set it to dataset.CoPhIRSize for the full million).
type Options struct {
	// CoPhIRScale is the CoPhIR collection size (default 100,000).
	CoPhIRScale int
	// Queries is the number of query objects averaged over (paper: 100).
	Queries int
	// K is the number of neighbors (paper: 30; Table 9 uses 1).
	K int
	// Seed drives pivot selection and query sampling.
	Seed uint64
	// BulkSize is the insert batch size (paper: 1,000).
	BulkSize int
	// Timeout bounds each client operation (an insert bulk or one query)
	// through the context-aware Search API; 0 means no deadline, the
	// paper's patient-measurement behavior.
	Timeout time.Duration
	// Log, when non-nil, receives progress lines.
	Log io.Writer
}

func (o Options) withDefaults() Options {
	if o.CoPhIRScale == 0 {
		o.CoPhIRScale = 100000
	}
	if o.Queries == 0 {
		o.Queries = 100
	}
	if o.K == 0 {
		o.K = 30
	}
	if o.Seed == 0 {
		o.Seed = 2012
	}
	if o.BulkSize == 0 {
		o.BulkSize = 1000
	}
	return o
}

func (o Options) logf(format string, args ...any) {
	if o.Log != nil {
		fmt.Fprintf(o.Log, format+"\n", args...)
	}
}

// Spec describes one evaluation data set with its paper parameters
// (Table 2) and candidate-size sweep (Tables 5–8).
type Spec struct {
	Name      string
	Cfg       mindex.Config
	CandSizes []int
	Load      func(o Options) *dataset.Dataset
}

// MaxLevel used across the evaluation; the M-Index papers use dynamic
// depth ≤ 8 for collections of this scale.
const evalMaxLevel = 6

// Specs returns the three evaluation data sets with the paper's M-Index
// parameters: bucket capacities 200/250/1,000, memory/memory/disk storage,
// and 30/50/100 pivots.
func Specs() []Spec {
	return []Spec{
		{
			Name: "YEAST",
			Cfg: mindex.Config{
				NumPivots: 30, MaxLevel: evalMaxLevel, BucketCapacity: 200,
				Storage: mindex.StorageMemory, Ranking: mindex.RankFootrule,
			},
			CandSizes: []int{150, 300, 600, 1500},
			Load:      func(Options) *dataset.Dataset { return dataset.Yeast() },
		},
		{
			Name: "HUMAN",
			Cfg: mindex.Config{
				NumPivots: 50, MaxLevel: evalMaxLevel, BucketCapacity: 250,
				Storage: mindex.StorageMemory, Ranking: mindex.RankFootrule,
			},
			CandSizes: []int{200, 400, 800, 2000},
			Load:      func(Options) *dataset.Dataset { return dataset.Human() },
		},
		{
			Name: "CoPhIR",
			Cfg: mindex.Config{
				NumPivots: 100, MaxLevel: evalMaxLevel, BucketCapacity: 1000,
				Storage: mindex.StorageDisk, Ranking: mindex.RankFootrule,
			},
			CandSizes: []int{500, 1000, 5000, 10000, 20000, 50000},
			Load:      func(o Options) *dataset.Dataset { return dataset.CoPhIR(o.CoPhIRScale) },
		},
	}
}

// SpecByName returns the named evaluation spec.
func SpecByName(name string) (Spec, error) {
	for _, s := range Specs() {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("bench: unknown data set %q", name)
}

// opCtx derives the per-operation context from Options.Timeout.
func (o Options) opCtx() (context.Context, context.CancelFunc) {
	if o.Timeout <= 0 {
		return context.Background(), func() {}
	}
	return context.WithTimeout(context.Background(), o.Timeout)
}

// Cloud is a running client–server pair used by one experiment.
type Cloud struct {
	Srv    *server.Server
	Enc    *core.EncryptedClient
	Plain  *core.PlainClient
	Key    *secret.Key
	Pivots *pivot.Set
	// Timeout bounds each insert bulk of InsertAll (0 = no deadline); the
	// experiment loops set it from Options.Timeout so the construction
	// phase is deadline-bounded like the query phase.
	Timeout time.Duration
	tmpDir  string
}

// Close tears the pair down and removes temporary bucket storage.
func (c *Cloud) Close() {
	if c.Enc != nil {
		c.Enc.Close()
	}
	if c.Plain != nil {
		c.Plain.Close()
	}
	if c.Srv != nil {
		c.Srv.Close()
	}
	if c.tmpDir != "" {
		os.RemoveAll(c.tmpDir)
	}
}

// preparedCfg materializes a disk path for disk-backed configs.
func preparedCfg(cfg mindex.Config) (mindex.Config, string, error) {
	if cfg.Storage != mindex.StorageDisk {
		return cfg, "", nil
	}
	dir, err := os.MkdirTemp("", "simcloud-buckets-*")
	if err != nil {
		return cfg, "", err
	}
	cfg.DiskPath = dir
	return cfg, dir, nil
}

// selectPivots draws the pivot set from the collection, the paper's
// strategy ("chosen at random from within the data set").
func selectPivots(ds *dataset.Dataset, n int, seed uint64) *pivot.Set {
	rng := rand.New(rand.NewPCG(seed, 0x9170))
	return pivot.SelectRandom(rng, ds.Dist, ds.Objects, n)
}

// NewEncryptedCloud starts an encrypted-deployment server and an authorized
// client for the data set, without inserting anything.
func NewEncryptedCloud(ds *dataset.Dataset, cfg mindex.Config, seed uint64, opts core.Options) (*Cloud, error) {
	cfg, tmp, err := preparedCfg(cfg)
	if err != nil {
		return nil, err
	}
	pv := selectPivots(ds, cfg.NumPivots, seed)
	key, err := secret.Generate(pv, secret.ModeCTRHMAC)
	if err != nil {
		os.RemoveAll(tmp)
		return nil, err
	}
	srv, err := server.NewEncrypted(cfg)
	if err != nil {
		os.RemoveAll(tmp)
		return nil, err
	}
	if err := srv.Start("127.0.0.1:0"); err != nil {
		srv.Close()
		os.RemoveAll(tmp)
		return nil, err
	}
	opts.MaxLevel = cfg.MaxLevel
	opts.Ranking = cfg.Ranking
	enc, err := core.DialEncrypted(srv.Addr(), key, opts)
	if err != nil {
		srv.Close()
		os.RemoveAll(tmp)
		return nil, err
	}
	return &Cloud{Srv: srv, Enc: enc, Key: key, Pivots: pv, tmpDir: tmp}, nil
}

// NewPlainCloud starts a plain-deployment server and client.
func NewPlainCloud(ds *dataset.Dataset, cfg mindex.Config, seed uint64) (*Cloud, error) {
	cfg, tmp, err := preparedCfg(cfg)
	if err != nil {
		return nil, err
	}
	pv := selectPivots(ds, cfg.NumPivots, seed)
	srv, err := server.NewPlain(cfg, pv)
	if err != nil {
		os.RemoveAll(tmp)
		return nil, err
	}
	if err := srv.Start("127.0.0.1:0"); err != nil {
		srv.Close()
		os.RemoveAll(tmp)
		return nil, err
	}
	pc, err := core.DialPlain(srv.Addr())
	if err != nil {
		srv.Close()
		os.RemoveAll(tmp)
		return nil, err
	}
	return &Cloud{Srv: srv, Plain: pc, Pivots: pv, tmpDir: tmp}, nil
}

// InsertAll bulk-inserts the objects through whichever client the cloud has,
// in bulks of bulkSize, and returns the summed construction costs. Each
// bulk runs under Cloud.Timeout when set.
func (c *Cloud) InsertAll(objs []metric.Object, bulkSize int) (stats.Costs, error) {
	var total stats.Costs
	for start := 0; start < len(objs); start += bulkSize {
		end := min(start+bulkSize, len(objs))
		ctx, cancel := Options{Timeout: c.Timeout}.opCtx()
		var costs stats.Costs
		var err error
		if c.Enc != nil {
			costs, err = c.Enc.InsertContext(ctx, objs[start:end])
		} else {
			costs, err = c.Plain.InsertContext(ctx, objs[start:end])
		}
		cancel()
		if err != nil {
			return total, err
		}
		total.Accumulate(costs)
	}
	return total, nil
}

// GroundTruth computes the exact k-NN answer IDs for each query by a linear
// scan — the reference for recall measurements.
func GroundTruth(ds *dataset.Dataset, indexed []metric.Object, queries []metric.Object, k int) [][]uint64 {
	type cand struct {
		id uint64
		d  float64
	}
	out := make([][]uint64, len(queries))
	for qi, q := range queries {
		cands := make([]cand, len(indexed))
		for i, o := range indexed {
			cands[i] = cand{id: o.ID, d: ds.Dist.Dist(q.Vec, o.Vec)}
		}
		sort.Slice(cands, func(i, j int) bool {
			if cands[i].d != cands[j].d {
				return cands[i].d < cands[j].d
			}
			return cands[i].id < cands[j].id
		})
		n := min(k, len(cands))
		ids := make([]uint64, n)
		for i := range n {
			ids[i] = cands[i].id
		}
		out[qi] = ids
	}
	return out
}
