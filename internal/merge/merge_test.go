package merge

import (
	"slices"
	"testing"

	"simcloud/internal/mindex"
)

func rc(id uint64, promise float64, prefix ...int32) mindex.RankedCandidate {
	return mindex.RankedCandidate{Entry: mindex.Entry{ID: id, Perm: prefix}, Promise: promise, Prefix: prefix}
}

func ids(rcs []mindex.RankedCandidate) []uint64 {
	out := make([]uint64, len(rcs))
	for i, c := range rcs {
		out[i] = c.Entry.ID
	}
	return out
}

func TestRankedOrder(t *testing.T) {
	per := [][]mindex.RankedCandidate{
		{rc(1, 0.1, 0), rc(2, 0.1, 0), rc(3, 0.7, 2)}, // source 0, promise order
		{rc(4, 0.1, 1), rc(5, 0.3, 3)},                // source 1
		nil,                                           // an empty source contributes nothing
	}
	got := ids(Ranked(per))
	// promise 0.1 first: prefix 0 (ids 1,2 in bucket order) before prefix 1
	// (id 4); then 0.3, then 0.7.
	want := []uint64{1, 2, 4, 5, 3}
	if !slices.Equal(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestRankedSourceTieBreak(t *testing.T) {
	// Identical (promise, prefix) across sources: source order decides, and
	// within one source bucket order is preserved (stable sort).
	per := [][]mindex.RankedCandidate{
		{rc(10, 0.5, 7), rc(11, 0.5, 7)},
		{rc(20, 0.5, 7)},
	}
	got := ids(Ranked(per))
	want := []uint64{10, 11, 20}
	if !slices.Equal(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestRankedPrefixTieBreak(t *testing.T) {
	// Equal promise, different prefixes: lexicographic, shorter first.
	per := [][]mindex.RankedCandidate{
		{rc(1, 0.2, 1, 2)},
		{rc(2, 0.2, 1)},
		{rc(3, 0.2, 0, 9)},
	}
	got := ids(Ranked(per))
	want := []uint64{3, 2, 1}
	if !slices.Equal(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestEntriesTrims(t *testing.T) {
	rcs := []mindex.RankedCandidate{rc(1, 0, 0), rc(2, 0, 0), rc(3, 0, 0)}
	if got := Entries(rcs, 2); len(got) != 2 || got[0].ID != 1 || got[1].ID != 2 {
		t.Fatalf("trim to 2: got %v", got)
	}
	if got := Entries(rcs, -1); len(got) != 3 {
		t.Fatalf("candSize -1 should keep everything, got %d", len(got))
	}
	if got := Entries(rcs, 10); len(got) != 3 {
		t.Fatalf("oversized candSize should keep everything, got %d", len(got))
	}
}

func TestBestCell(t *testing.T) {
	e := []mindex.Entry{{ID: 1}}
	cells := []Cell{
		{}, // empty source
		{Entries: e, Promise: 0.4, Prefix: []int32{1}},
		{Entries: e, Promise: 0.4, Prefix: []int32{0}},
		{Entries: e, Promise: 0.9, Prefix: []int32{}},
	}
	if got := BestCell(cells); got != 2 {
		t.Fatalf("best cell %d, want 2 (lowest promise, then prefix)", got)
	}
	if got := BestCell([]Cell{{}, {}}); got != -1 {
		t.Fatalf("all-empty best cell %d, want -1", got)
	}
	// Equal (promise, prefix): first source wins.
	tie := []Cell{
		{Entries: e, Promise: 0.4, Prefix: []int32{2}},
		{Entries: e, Promise: 0.4, Prefix: []int32{2}},
	}
	if got := BestCell(tie); got != 0 {
		t.Fatalf("tie best cell %d, want 0", got)
	}
}
