// Package merge implements the candidate-merge discipline shared by every
// component that combines per-partition M-Index result streams: the
// in-process sharded engine (internal/engine) and the multi-node cluster
// coordinator (internal/cluster) both merge with the functions here, so a
// query answered by N index partitions — shards inside one server, or whole
// servers behind a coordinator — is provably ordered the same way as a
// query answered by one unpartitioned index.
//
// The invariant: approximate candidates are ordered by
// (promise, prefix, source), where promise is the source cell's ranking
// value (Algorithm 4 of the paper), prefix is the cell's permutation prefix
// (lexicographic, shorter first — mindex.PrefixLess), and source is the
// partition index, a final tie-break that can only matter for cells that
// are bytewise identical across partitions (impossible under first-level
// Voronoi routing, where every cell lives in exactly one partition, but
// kept so the order is total no matter how callers partition). Because the
// sort is stable, entries of one cell stay in bucket order.
package merge

import (
	"slices"
	"sort"

	"simcloud/internal/mindex"
)

// Ranked flattens per-source candidate lists (each already in promise
// order, as produced by mindex.ApproxCandidatesRanked or
// engine.ApproxCandidatesRanked) into one list ordered by
// (promise, prefix, source). The result is fully deterministic for any
// interleaving of sources.
func Ranked(per [][]mindex.RankedCandidate) []mindex.RankedCandidate {
	type tagged struct {
		rc     mindex.RankedCandidate
		source int
	}
	total := 0
	for _, p := range per {
		total += len(p)
	}
	all := make([]tagged, 0, total)
	for i, p := range per {
		for _, rc := range p {
			all = append(all, tagged{rc: rc, source: i})
		}
	}
	sort.SliceStable(all, func(a, b int) bool {
		x, y := all[a], all[b]
		if x.rc.Promise != y.rc.Promise {
			return x.rc.Promise < y.rc.Promise
		}
		if !slices.Equal(x.rc.Prefix, y.rc.Prefix) {
			return mindex.PrefixLess(x.rc.Prefix, y.rc.Prefix)
		}
		return x.source < y.source
	})
	out := make([]mindex.RankedCandidate, len(all))
	for i, t := range all {
		out[i] = t.rc
	}
	return out
}

// Entries strips the ranking annotations off a merged candidate list,
// trimming it to at most candSize entries (candSize < 0 keeps everything).
func Entries(rcs []mindex.RankedCandidate, candSize int) []mindex.Entry {
	if candSize >= 0 && len(rcs) > candSize {
		rcs = rcs[:candSize]
	}
	out := make([]mindex.Entry, len(rcs))
	for i, rc := range rcs {
		out[i] = rc.Entry
	}
	return out
}

// Cell is one source's most promising non-empty Voronoi cell, as returned
// by mindex.FirstCellRanked. A source with no non-empty cell contributes
// nil Entries.
type Cell struct {
	Entries []mindex.Entry
	Promise float64
	Prefix  []int32
}

// BestCell returns the index of the globally most promising cell among the
// per-source winners, ordered by (promise, prefix, source) exactly like
// Ranked, or -1 when every source is empty.
func BestCell(cells []Cell) int {
	best := -1
	for i, c := range cells {
		if c.Entries == nil {
			continue
		}
		if best < 0 || less(c, cells[best]) {
			best = i
		}
	}
	return best
}

// less orders two cells by (promise, prefix); the caller's iteration order
// supplies the source tie-break (first wins).
func less(a, b Cell) bool {
	if a.Promise != b.Promise {
		return a.Promise < b.Promise
	}
	return mindex.PrefixLess(a.Prefix, b.Prefix)
}
