package wire

import (
	"encoding/binary"
	"errors"
	"math"
	"sync"

	"simcloud/internal/metric"
)

// ErrCodec reports a malformed message payload.
var ErrCodec = errors.New("wire: malformed message payload")

// Buffer is an append-only message payload writer.
type Buffer struct {
	B []byte
}

// Reset truncates the buffer for reuse, keeping its capacity.
func (b *Buffer) Reset() { b.B = b.B[:0] }

// maxPooledBuffer bounds the capacity of a buffer returned to the pool, so
// one outsized response cannot pin megabytes for the pool's lifetime.
const maxPooledBuffer = 4 << 20

var bufferPool = sync.Pool{New: func() any { return new(Buffer) }}

// GetBuffer hands out a pooled, reset payload buffer. Encoding responses
// into a pooled buffer (see the AppendTo methods on the hot response types)
// lets a serving loop reuse one allocation across requests instead of
// paying a fresh payload slice per response.
func GetBuffer() *Buffer {
	b := bufferPool.Get().(*Buffer)
	b.Reset()
	return b
}

// PutBuffer returns a buffer to the pool once its bytes have been written
// out. The caller must not touch b.B afterwards.
func PutBuffer(b *Buffer) {
	if cap(b.B) > maxPooledBuffer {
		return
	}
	bufferPool.Put(b)
}

// U8 appends a byte.
func (b *Buffer) U8(v uint8) { b.B = append(b.B, v) }

// U32 appends a uint32.
func (b *Buffer) U32(v uint32) { b.B = binary.LittleEndian.AppendUint32(b.B, v) }

// U64 appends a uint64.
func (b *Buffer) U64(v uint64) { b.B = binary.LittleEndian.AppendUint64(b.B, v) }

// F64 appends a float64.
func (b *Buffer) F64(v float64) { b.U64(math.Float64bits(v)) }

// Bytes appends a length-prefixed byte slice.
func (b *Buffer) Bytes(v []byte) {
	b.U32(uint32(len(v)))
	b.B = append(b.B, v...)
}

// String appends a length-prefixed string.
func (b *Buffer) String(v string) {
	b.U32(uint32(len(v)))
	b.B = append(b.B, v...)
}

// F64Slice appends a length-prefixed []float64.
func (b *Buffer) F64Slice(v []float64) {
	b.U32(uint32(len(v)))
	for _, f := range v {
		b.F64(f)
	}
}

// I32Slice appends a length-prefixed []int32.
func (b *Buffer) I32Slice(v []int32) {
	b.U32(uint32(len(v)))
	for _, i := range v {
		b.U32(uint32(i))
	}
}

// Vec appends a length-prefixed metric vector (float32 components).
func (b *Buffer) Vec(v metric.Vector) {
	b.U32(uint32(len(v)))
	for _, f := range v {
		b.U32(math.Float32bits(f))
	}
}

// Reader consumes a message payload written by Buffer. All methods are
// sticky-error: after the first failure every subsequent read returns zero
// values and Err reports the failure.
type Reader struct {
	b   []byte
	err error
}

// NewReader wraps payload bytes.
func NewReader(b []byte) *Reader { return &Reader{b: b} }

// Err returns the first decoding error, or an error if unconsumed bytes
// remain (call after all fields are read).
func (r *Reader) Err() error {
	if r.err != nil {
		return r.err
	}
	if len(r.b) != 0 {
		return ErrCodec
	}
	return nil
}

func (r *Reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if len(r.b) < n {
		r.err = ErrCodec
		return nil
	}
	out := r.b[:n]
	r.b = r.b[n:]
	return out
}

// U8 reads a byte.
func (r *Reader) U8() uint8 {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// U32 reads a uint32.
func (r *Reader) U32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

// U64 reads a uint64.
func (r *Reader) U64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// F64 reads a float64.
func (r *Reader) F64() float64 { return math.Float64frombits(r.U64()) }

// len32 reads a length prefix, bounding it by the remaining payload so a
// hostile length cannot trigger a huge allocation.
func (r *Reader) len32(elemSize int) int {
	n := int(r.U32())
	if r.err != nil {
		return 0
	}
	if n < 0 || n*elemSize > len(r.b) {
		r.err = ErrCodec
		return 0
	}
	return n
}

// BytesField reads a length-prefixed byte slice (copied).
func (r *Reader) BytesField() []byte {
	n := r.len32(1)
	b := r.take(n)
	if b == nil {
		return nil
	}
	out := make([]byte, n)
	copy(out, b)
	return out
}

// StringField reads a length-prefixed string.
func (r *Reader) StringField() string { return string(r.BytesField()) }

// F64Slice reads a length-prefixed []float64.
func (r *Reader) F64Slice() []float64 {
	n := r.len32(8)
	if r.err != nil || n == 0 {
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = r.F64()
	}
	return out
}

// I32Slice reads a length-prefixed []int32.
func (r *Reader) I32Slice() []int32 {
	n := r.len32(4)
	if r.err != nil || n == 0 {
		return nil
	}
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(r.U32())
	}
	return out
}

// VecField reads a length-prefixed metric vector.
func (r *Reader) VecField() metric.Vector {
	n := r.len32(4)
	if r.err != nil || n == 0 {
		return nil
	}
	out := make(metric.Vector, n)
	for i := range out {
		out[i] = math.Float32frombits(r.U32())
	}
	return out
}
