package wire

import (
	"bytes"
	"testing"

	"simcloud/internal/metric"
	"simcloud/internal/mindex"
)

// Fuzz targets for every untrusted parsing surface of the protocol. Under
// plain `go test` they run their seed corpus; `go test -fuzz=FuzzX` explores
// further. The invariant everywhere: decoders never panic, never over-read,
// and accept exactly what the encoders produce.

func FuzzDecodeEntry(f *testing.F) {
	f.Add([]byte{})
	f.Add(mindex.EncodeEntry(mindex.Entry{ID: 1, Perm: []int32{0, 1}, Payload: []byte{9}}))
	f.Add(mindex.EncodeEntry(mindex.Entry{ID: 2, Dists: []float64{1, 2}, Vec: metric.Vector{3}}))
	f.Add(bytes.Repeat([]byte{0xFF}, 64))
	f.Fuzz(func(t *testing.T, data []byte) {
		e, rest, err := mindex.DecodeEntry(data)
		if err != nil {
			return
		}
		if len(rest) > len(data) {
			t.Fatal("decoder grew the buffer")
		}
		// Whatever decoded must re-encode to the consumed bytes.
		consumed := data[:len(data)-len(rest)]
		if !bytes.Equal(mindex.EncodeEntry(e), consumed) {
			t.Fatalf("re-encoding mismatch for %d consumed bytes", len(consumed))
		}
	})
}

func FuzzReadFrame(f *testing.F) {
	var buf bytes.Buffer
	_ = WriteFrame(&buf, MsgAck, []byte{1, 2, 3})
	f.Add(buf.Bytes())
	f.Add([]byte{0, 0, 0, 1, 5})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		typ, payload, err := ReadFrame(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Round trip: writing the frame back must produce a prefix of data.
		var out bytes.Buffer
		if err := WriteFrame(&out, typ, payload); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(out.Bytes(), data[:out.Len()]) {
			t.Fatal("frame round trip mismatch")
		}
	})
}

func FuzzDecodeRequests(f *testing.F) {
	f.Add(RangeDistsReq{Dists: []float64{1, 2}, Radius: 3}.Encode())
	f.Add(ApproxPermReq{Perm: []int32{1, 0}, CandSize: 5}.Encode())
	f.Add(InsertEntriesReq{Entries: []mindex.Entry{{ID: 1, Perm: []int32{0}}}}.Encode())
	f.Add(PutNodesReq{RootID: 1, Nodes: []EHINode{{ID: 1, Blob: []byte{2}}}}.Encode())
	f.Add(PutFDHReq{Items: []FDHItem{{Key: 3, Payload: []byte{4}}}}.Encode())
	f.Add(BatchQueryReq{Queries: []BatchQuery{
		{Kind: BatchRange, Dists: []float64{1}, Radius: 2},
		{Kind: BatchApproxPerm, Perm: []int32{0, 1}, CandSize: 3},
	}}.Encode())
	f.Add(BatchQueryResp{ServerNanos: 1, Results: [][]mindex.Entry{{{ID: 1, Perm: []int32{0}}}}}.Encode())
	f.Add(DeleteEntriesReq{Refs: []mindex.Entry{
		{ID: 7, Perm: []int32{1, 0, 2}},
		{ID: 8, Perm: []int32{2, 1, 0}},
	}}.Encode())
	f.Add(DeleteAckResp{ServerNanos: 9, Deleted: 2}.Encode())
	f.Add(HelloResp{Mode: HelloModeEncrypted, NumPivots: 16, MaxLevel: 8,
		BucketCapacity: 200, Ranking: 1, EagerRootSplit: true, Shards: 4, Entries: 12}.Encode())
	f.Add(BatchQueryReq{Queries: []BatchQuery{{Kind: BatchFirstCell, Perm: []int32{1, 0}}}}.Encode())
	f.Add(BatchRankedResp{ServerNanos: 2, Results: [][]mindex.RankedCandidate{{
		{Entry: mindex.Entry{ID: 3, Perm: []int32{1, 0}}, Promise: 0.5, Prefix: []int32{1}},
	}}}.Encode())
	f.Add(DeleteObjectsReq{IDs: []uint64{1, 2, 3}}.Encode())
	f.Add(FirstCellPlainReq{Q: metric.Vector{1, 2}, K: 4}.Encode())
	f.Add(FilteredReq{Allow: []int32{0, 3, 5}, Inner: MsgBatchRanked,
		Payload: BatchQueryReq{Queries: []BatchQuery{{Kind: BatchRange, Dists: []float64{1}, Radius: 2}}}.Encode()}.Encode())
	f.Add(ResyncReq{Ops: []ResyncOp{
		{Op: ResyncInsert, Entries: []mindex.Entry{{ID: 1, Perm: []int32{0, 1}, Payload: []byte{9}}}},
		{Op: ResyncDelete, Entries: []mindex.Entry{{ID: 2, Perm: []int32{1}}}},
	}}.Encode())
	f.Add(IngestChunkReq{Seq: 1, Entries: []mindex.Entry{{ID: 4, Perm: []int32{1, 0}, Payload: []byte{8}}}}.Encode())
	f.Add(IngestObjChunkReq{Seq: 2, Objects: []metric.Object{{ID: 5, Vec: metric.Vector{1, 2}}}}.Encode())
	f.Add(IngestChunkAckResp{Seq: 3, ServerNanos: 77}.Encode())
	f.Add(IngestEndReq{}.Encode())
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		// None of these may panic; errors are fine.
		_, _ = DecodeInsertEntriesReq(data)
		_, _ = DecodeInsertObjectsReq(data)
		_, _ = DecodeRangeDistsReq(data)
		_, _ = DecodeApproxPermReq(data)
		_, _ = DecodeApproxDistsReq(data)
		_, _ = DecodeFirstCellReq(data)
		_, _ = DecodeRangePlainReq(data)
		_, _ = DecodeKNNPlainReq(data)
		_, _ = DecodeApproxPlainReq(data)
		_, _ = DecodeCandidatesResp(data)
		_, _ = DecodeResultsResp(data)
		_, _ = DecodeAckResp(data)
		_, _ = DecodeErrorResp(data)
		_, _ = DecodePutNodesReq(data)
		_, _ = DecodeGetNodeReq(data)
		_, _ = DecodeNodeBlobResp(data)
		_, _ = DecodePutFDHReq(data)
		_, _ = DecodeFDHQueryReq(data)
		_, _ = DecodeBatchQueryReq(data)
		_, _ = DecodeBatchQueryResp(data)
		_, _ = DecodeDeleteEntriesReq(data)
		_, _ = DecodeDeleteAckResp(data)
		_, _ = DecodeHelloResp(data)
		_, _ = DecodeBatchRankedResp(data)
		_, _ = DecodeDeleteObjectsReq(data)
		_, _ = DecodeFirstCellPlainReq(data)
		_, _ = DecodeFilteredReq(data)
		_, _ = DecodeResyncReq(data)
		_, _ = DecodeIngestChunkReq(data)
		_, _ = DecodeIngestObjChunkReq(data)
		_, _ = DecodeIngestChunkAckResp(data)
		_, _ = DecodeIngestEndReq(data)
	})
}
