package wire

import "simcloud/internal/mindex"

// This file defines the messages the cluster coordinator exchanges with
// simserver nodes: the hello handshake that verifies key-compatibility
// before a node joins a federation, and the ranked batch query whose
// replies keep per-candidate promise annotations so per-node streams can be
// merged by the shared (promise, prefix, source) order (internal/merge).
// Both messages are ordinary protocol citizens — any client may send them.

// HelloReq asks a server to identify itself. It carries no fields; the
// message type alone is the request.
type HelloReq struct{}

// Encode serializes the request payload.
func (m HelloReq) Encode() []byte { return nil }

// DecodeHelloReq parses a HelloReq payload (any payload is accepted — the
// request has no fields, and tolerating trailing bytes keeps the handshake
// forward-extensible).
func DecodeHelloReq(p []byte) (HelloReq, error) { return HelloReq{}, nil }

// Deployment modes as reported by HelloResp.Mode (mirrors server.Mode
// without importing it — wire sits below server in the layering).
const (
	HelloModeEncrypted uint8 = 1
	HelloModePlain     uint8 = 2
)

// HelloResp identifies a server: its deployment mode and the index shape a
// client (or coordinator) must match to talk to it meaningfully. A
// coordinator rejects nodes whose NumPivots, MaxLevel or Ranking disagree —
// entries indexed under one pivot set are garbage under another, and the
// mismatch is otherwise invisible until recall silently collapses.
type HelloResp struct {
	// Mode is the deployment mode (HelloModeEncrypted / HelloModePlain).
	Mode uint8
	// NumPivots, MaxLevel, BucketCapacity and Ranking echo the server's
	// mindex.Config. NumPivots must equal the client key's pivot count.
	NumPivots      uint32
	MaxLevel       uint32
	BucketCapacity uint32
	Ranking        uint8
	// EagerRootSplit reports whether every leaf cell of the server's index
	// lies at permutation-prefix length >= 1 (true for multi-shard engines
	// and for single-shard indexes started with the eager-root-split
	// option). A coordinator federating more than one node requires it:
	// without it a node whose root bucket has not split yet would advertise
	// all its entries at promise 0 and crowd out the other nodes' cells in
	// the cross-node merge (see DESIGN.md §Distribution).
	EagerRootSplit bool
	// Shards is the node's in-process partition count (informational).
	Shards uint32
	// Entries is the live entry count — the health-check payload.
	Entries uint64
}

// Encode serializes the response payload.
func (m HelloResp) Encode() []byte {
	var b Buffer
	b.U8(m.Mode)
	b.U32(m.NumPivots)
	b.U32(m.MaxLevel)
	b.U32(m.BucketCapacity)
	b.U8(m.Ranking)
	if m.EagerRootSplit {
		b.U8(1)
	} else {
		b.U8(0)
	}
	b.U32(m.Shards)
	b.U64(m.Entries)
	return b.B
}

// DecodeHelloResp parses a HelloResp payload.
func DecodeHelloResp(p []byte) (HelloResp, error) {
	r := NewReader(p)
	m := HelloResp{
		Mode:           r.U8(),
		NumPivots:      r.U32(),
		MaxLevel:       r.U32(),
		BucketCapacity: r.U32(),
		Ranking:        r.U8(),
		EagerRootSplit: r.U8() != 0,
		Shards:         r.U32(),
		Entries:        r.U64(),
	}
	return m, r.Err()
}

// appendRanked writes a count-prefixed ranked-candidate list: per
// candidate, the source cell's promise and prefix followed by the entry
// record.
func appendRanked(b *Buffer, rcs []mindex.RankedCandidate) {
	b.U32(uint32(len(rcs)))
	for i := range rcs {
		b.F64(rcs[i].Promise)
		b.I32Slice(rcs[i].Prefix)
		b.B = mindex.AppendEntry(b.B, rcs[i].Entry)
	}
}

func readRanked(r *Reader) []mindex.RankedCandidate {
	n := int(r.U32())
	if r.err != nil {
		return nil
	}
	// Each ranked candidate occupies at least 32 bytes: 8 (promise) +
	// 4 (prefix length) + 20 (minimal entry record).
	if n < 0 || n > len(r.b)/32+1 {
		r.err = ErrCodec
		return nil
	}
	out := make([]mindex.RankedCandidate, 0, n)
	for range n {
		promise := r.F64()
		prefix := r.I32Slice()
		if r.err != nil {
			return nil
		}
		e, rest, err := mindex.DecodeEntry(r.b)
		if err != nil {
			r.err = err
			return nil
		}
		r.b = rest
		out = append(out, mindex.RankedCandidate{Entry: e, Promise: promise, Prefix: prefix})
	}
	return out
}

// BatchRankedResp returns the ranked candidate sets of a MsgBatchRanked
// request, parallel to the request's query list. Range queries (exact, no
// cell ranking) return their candidates with promise 0 and a nil prefix;
// first-cell queries return the winning cell's entries, every one annotated
// with that cell's promise and prefix.
type BatchRankedResp struct {
	ServerNanos uint64
	Results     [][]mindex.RankedCandidate
}

// AppendTo appends the encoded response to b (see CandidatesResp.AppendTo).
func (m BatchRankedResp) AppendTo(b *Buffer) {
	b.U64(m.ServerNanos)
	b.U32(uint32(len(m.Results)))
	for _, rcs := range m.Results {
		appendRanked(b, rcs)
	}
}

// Encode serializes the response payload.
func (m BatchRankedResp) Encode() []byte {
	var b Buffer
	m.AppendTo(&b)
	return b.B
}

// DecodeBatchRankedResp parses a BatchRankedResp payload.
func DecodeBatchRankedResp(p []byte) (BatchRankedResp, error) {
	r := NewReader(p)
	m := BatchRankedResp{ServerNanos: r.U64()}
	n := int(r.U32())
	// Each result occupies at least its 4-byte candidate count.
	if n < 0 || n > len(p)/4+1 {
		return m, ErrCodec
	}
	m.Results = make([][]mindex.RankedCandidate, 0, n)
	for range n {
		rcs := readRanked(r)
		if r.err != nil {
			break
		}
		m.Results = append(m.Results, rcs)
	}
	return m, r.Err()
}
