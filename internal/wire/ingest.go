package wire

import (
	"simcloud/internal/metric"
	"simcloud/internal/mindex"
)

// Streaming bulk-ingest payloads. A streamed ingest is a sequence of
// numbered chunk frames followed by one MsgIngestEnd, all pipelined over a
// single connection: the server applies chunks in arrival order and answers
// each with an ack echoing its sequence number, so the client can bound the
// number of unacknowledged chunks in flight (the ack window) while it
// prepares the next chunk. Sequence numbers exist for the client's window
// bookkeeping — the transport already guarantees ordering — and to make a
// server that answered out of order detectable.

// IngestChunkReq is one streamed chunk of pre-computed entries (encrypted
// deployment).
type IngestChunkReq struct {
	Seq     uint32
	Entries []mindex.Entry
}

// Encode serializes the request payload.
func (m IngestChunkReq) Encode() []byte {
	var b Buffer
	b.U32(m.Seq)
	appendEntries(&b, m.Entries)
	return b.B
}

// DecodeIngestChunkReq parses an IngestChunkReq payload.
func DecodeIngestChunkReq(p []byte) (IngestChunkReq, error) {
	r := NewReader(p)
	m := IngestChunkReq{Seq: r.U32(), Entries: readEntries(r)}
	return m, r.Err()
}

// IngestObjChunkReq is one streamed chunk of raw objects (plain
// deployment).
type IngestObjChunkReq struct {
	Seq     uint32
	Objects []metric.Object
}

// Encode serializes the request payload.
func (m IngestObjChunkReq) Encode() []byte {
	var b Buffer
	b.U32(m.Seq)
	b.U32(uint32(len(m.Objects)))
	for _, o := range m.Objects {
		b.U64(o.ID)
		b.Vec(o.Vec)
	}
	return b.B
}

// DecodeIngestObjChunkReq parses an IngestObjChunkReq payload.
func DecodeIngestObjChunkReq(p []byte) (IngestObjChunkReq, error) {
	r := NewReader(p)
	m := IngestObjChunkReq{Seq: r.U32()}
	n := int(r.U32())
	// Each object occupies at least 12 bytes on the wire.
	if n < 0 || n > len(p)/12+1 {
		return IngestObjChunkReq{}, ErrCodec
	}
	m.Objects = make([]metric.Object, 0, n)
	for range n {
		id := r.U64()
		vec := r.VecField()
		if r.err != nil {
			break
		}
		m.Objects = append(m.Objects, metric.Object{ID: id, Vec: vec})
	}
	return m, r.Err()
}

// IngestChunkAckResp acknowledges one streamed chunk.
type IngestChunkAckResp struct {
	Seq         uint32
	ServerNanos uint64
}

// Encode serializes the response payload.
func (m IngestChunkAckResp) Encode() []byte {
	var b Buffer
	b.U32(m.Seq)
	b.U64(m.ServerNanos)
	return b.B
}

// DecodeIngestChunkAckResp parses an IngestChunkAckResp payload.
func DecodeIngestChunkAckResp(p []byte) (IngestChunkAckResp, error) {
	r := NewReader(p)
	m := IngestChunkAckResp{Seq: r.U32(), ServerNanos: r.U64()}
	return m, r.Err()
}

// IngestEndReq closes a streamed ingest: flush the WAL and acknowledge.
// It carries no payload — deliberately, so it is stream-agnostic: a
// coordinator multiplexes many client streams over one node connection,
// and the end frame it forwards must mean "make everything appended so far
// durable", not "my stream had N chunks". Answered with MsgAck after the
// server's WAL flush.
type IngestEndReq struct{}

// Encode serializes the request payload.
func (m IngestEndReq) Encode() []byte { return nil }

// DecodeIngestEndReq parses an IngestEndReq payload.
func DecodeIngestEndReq(p []byte) (IngestEndReq, error) {
	if len(p) != 0 {
		return IngestEndReq{}, ErrCodec
	}
	return IngestEndReq{}, nil
}
