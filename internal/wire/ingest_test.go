package wire

import (
	"errors"
	"reflect"
	"testing"

	"simcloud/internal/metric"
	"simcloud/internal/mindex"
)

func TestIngestChunkReqRoundTrip(t *testing.T) {
	want := IngestChunkReq{
		Seq: 7,
		Entries: []mindex.Entry{
			{ID: 1, Perm: []int32{2, 0, 1}, Payload: []byte{9, 9}},
			{ID: 2, Perm: []int32{0, 1, 2}, Dists: []float64{1, 2, 3}},
		},
	}
	got, err := DecodeIngestChunkReq(want.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip: got %+v, want %+v", got, want)
	}
	empty, err := DecodeIngestChunkReq(IngestChunkReq{Seq: 3}.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if empty.Seq != 3 || len(empty.Entries) != 0 {
		t.Fatalf("empty chunk round trip: %+v", empty)
	}
}

func TestIngestChunkReqHostileCount(t *testing.T) {
	var b Buffer
	b.U32(0)          // seq
	b.U32(0xFFFFFFFF) // absurd entry count for a tiny payload
	if _, err := DecodeIngestChunkReq(b.B); err == nil {
		t.Fatal("hostile entry count decoded without error")
	}
	if _, err := DecodeIngestChunkReq([]byte{1, 2}); err == nil {
		t.Fatal("truncated header decoded without error")
	}
}

func TestIngestObjChunkReqRoundTrip(t *testing.T) {
	want := IngestObjChunkReq{
		Seq: 9,
		Objects: []metric.Object{
			{ID: 4, Vec: metric.Vector{1, 2.5}},
			{ID: 5, Vec: metric.Vector{-1}},
		},
	}
	got, err := DecodeIngestObjChunkReq(want.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.Seq != want.Seq || len(got.Objects) != len(want.Objects) {
		t.Fatalf("round trip header mismatch: %+v", got)
	}
	for i, o := range want.Objects {
		g := got.Objects[i]
		if g.ID != o.ID || !g.Vec.Equal(o.Vec) {
			t.Fatalf("object %d mismatch: got %+v, want %+v", i, g, o)
		}
	}
}

func TestIngestObjChunkReqHostileCount(t *testing.T) {
	var b Buffer
	b.U32(0)
	b.U32(0x7FFFFFFF) // object count far beyond the payload
	if !errors.Is(mustErr(DecodeIngestObjChunkReq(b.B)), ErrCodec) {
		t.Fatal("hostile object count decoded without ErrCodec")
	}
	// Truncated mid-object: plausible count, missing vector bytes.
	var c Buffer
	c.U32(0)
	c.U32(1)
	c.U64(7)
	if err := mustErr(DecodeIngestObjChunkReq(c.B)); err == nil {
		t.Fatal("truncated object decoded without error")
	}
}

// mustErr adapts a (value, error) decode result to its error.
func mustErr[T any](_ T, err error) error { return err }

func TestIngestChunkAckRespRoundTrip(t *testing.T) {
	want := IngestChunkAckResp{Seq: 11, ServerNanos: 12345}
	got, err := DecodeIngestChunkAckResp(want.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("round trip: got %+v, want %+v", got, want)
	}
	if _, err := DecodeIngestChunkAckResp([]byte{1, 2, 3}); err == nil {
		t.Fatal("truncated ack decoded without error")
	}
	if _, err := DecodeIngestChunkAckResp(append(want.Encode(), 0)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}

func TestIngestEndReqRoundTrip(t *testing.T) {
	if _, err := DecodeIngestEndReq(IngestEndReq{}.Encode()); err != nil {
		t.Fatal(err)
	}
	// The end frame is deliberately payload-free; anything else is hostile.
	if !errors.Is(mustErr(DecodeIngestEndReq([]byte{0})), ErrCodec) {
		t.Fatal("non-empty ingest-end payload accepted")
	}
}
