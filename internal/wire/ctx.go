package wire

import (
	"context"
	"errors"
	"fmt"
	"net"
	"time"
)

// Context-aware IO: every client exchange arms the connection with the
// calling context before touching the socket, so a stalled or dead peer can
// never hang the caller past its deadline, and cancelling the context
// interrupts an exchange that is blocked mid-read. This is the one place
// where context semantics meet net.Conn deadlines; everything above (core
// clients, cluster coordinator) goes through ArmContext instead of calling
// SetDeadline directly.

// aLongTimeAgo is a non-zero past deadline: setting it forces any blocked
// read or write on the connection to fail immediately (the net package's
// standard interruption idiom).
var aLongTimeAgo = time.Unix(1, 0)

// ErrNotStarted marks an exchange aborted before any byte touched the
// connection (the context was already dead when ArmContext ran). The
// connection is pristine — callers pooling connections may reuse it.
var ErrNotStarted = errors.New("wire: exchange not started")

// ArmContext ties conn's IO deadlines to ctx for the duration of one
// exchange (one round trip or one pipelined flight):
//
//   - If ctx already carries an error, it is returned and the connection is
//     left untouched.
//   - If ctx has a deadline, it becomes the connection's read+write deadline.
//   - If ctx is cancellable, a watcher interrupts blocked IO on cancellation.
//
// The returned disarm function must be called exactly once with the
// exchange's outcome. It stops the watcher, clears the connection deadline,
// and — when the exchange failed because the context fired — replaces the
// raw net timeout error with one wrapping ctx.Err(), so callers observe
// errors.Is(err, context.DeadlineExceeded) / context.Canceled rather than a
// bare i/o timeout.
//
// An interrupted connection is left with whatever partial frame was in
// flight; it must not be reused for further exchanges.
func ArmContext(ctx context.Context, conn net.Conn) (disarm func(error) error, err error) {
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("%w: %w", ErrNotStarted, err)
	}
	deadline, hasDeadline := ctx.Deadline()
	done := ctx.Done()
	if !hasDeadline && done == nil {
		return func(opErr error) error { return opErr }, nil
	}
	if hasDeadline {
		conn.SetDeadline(deadline)
	}
	var stop, stopped chan struct{}
	if done != nil {
		stop = make(chan struct{})
		stopped = make(chan struct{})
		go func() {
			defer close(stopped)
			select {
			case <-done:
				conn.SetDeadline(aLongTimeAgo)
			case <-stop:
			}
		}()
	}
	return func(opErr error) error {
		if stop != nil {
			close(stop)
			<-stopped
		}
		conn.SetDeadline(time.Time{})
		if opErr == nil {
			return nil
		}
		if ctxErr := ctx.Err(); ctxErr != nil {
			return fmt.Errorf("wire: exchange aborted: %w (%v)", ctxErr, opErr)
		}
		// The connection deadline derives solely from ctx, so an IO timeout
		// means the context deadline fired — even when the race between the
		// net poller and the context's own timer lets the socket lose first
		// and ctx.Err() still reads nil here.
		var ne net.Error
		if hasDeadline && errors.As(opErr, &ne) && ne.Timeout() {
			return fmt.Errorf("wire: exchange aborted: %w (%v)", context.DeadlineExceeded, opErr)
		}
		return opErr
	}, nil
}
