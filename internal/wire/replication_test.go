package wire

import (
	"reflect"
	"testing"

	"simcloud/internal/mindex"
)

func TestFilteredReqRoundTrip(t *testing.T) {
	cases := []FilteredReq{
		{Inner: MsgDownloadAll},
		{Allow: []int32{0}, Inner: MsgRangeDists,
			Payload: RangeDistsReq{Dists: []float64{1, 2}, Radius: 3}.Encode()},
		{Allow: []int32{7, 0, 3, 5}, Inner: MsgBatchRanked,
			Payload: BatchQueryReq{Queries: []BatchQuery{
				{Kind: BatchApproxPerm, Perm: []int32{3, 0}, CandSize: 10},
			}}.Encode()},
	}
	for _, want := range cases {
		got, err := DecodeFilteredReq(want.Encode())
		if err != nil {
			t.Fatalf("%+v: %v", want, err)
		}
		if !reflect.DeepEqual(normalizeFiltered(got), normalizeFiltered(want)) {
			t.Fatalf("round trip: got %+v, want %+v", got, want)
		}
	}
}

// normalizeFiltered maps empty and nil slices together: the codec does not
// distinguish them.
func normalizeFiltered(m FilteredReq) FilteredReq {
	if len(m.Allow) == 0 {
		m.Allow = nil
	}
	if len(m.Payload) == 0 {
		m.Payload = nil
	}
	return m
}

func TestFilteredReqTruncated(t *testing.T) {
	full := FilteredReq{Allow: []int32{1, 2}, Inner: MsgBatchRanked,
		Payload: []byte{1, 2, 3}}.Encode()
	for n := range len(full) {
		if _, err := DecodeFilteredReq(full[:n]); err == nil {
			t.Fatalf("truncation to %d bytes decoded without error", n)
		}
	}
	// Trailing garbage must be rejected too.
	if _, err := DecodeFilteredReq(append(full, 0)); err == nil {
		t.Fatal("trailing byte decoded without error")
	}
}

func TestResyncReqRoundTrip(t *testing.T) {
	want := ResyncReq{Ops: []ResyncOp{
		{Op: ResyncInsert, Entries: []mindex.Entry{
			{ID: 1, Perm: []int32{0, 2, 1}, Dists: []float64{0.5}, Payload: []byte{7}},
			{ID: 2, Perm: []int32{1, 0, 2}},
		}},
		{Op: ResyncDelete, Entries: []mindex.Entry{{ID: 1, Perm: []int32{0}}}},
		{Op: ResyncInsert, Entries: nil},
	}}
	got, err := DecodeResyncReq(want.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Ops) != len(want.Ops) {
		t.Fatalf("round trip: %d ops, want %d", len(got.Ops), len(want.Ops))
	}
	for i := range want.Ops {
		if got.Ops[i].Op != want.Ops[i].Op || len(got.Ops[i].Entries) != len(want.Ops[i].Entries) {
			t.Fatalf("op %d mismatch: got %+v want %+v", i, got.Ops[i], want.Ops[i])
		}
		for j := range want.Ops[i].Entries {
			if !reflect.DeepEqual(got.Ops[i].Entries[j], want.Ops[i].Entries[j]) {
				t.Fatalf("op %d entry %d mismatch", i, j)
			}
		}
	}
	// Empty request round-trips too.
	if m, err := DecodeResyncReq(ResyncReq{}.Encode()); err != nil || len(m.Ops) != 0 {
		t.Fatalf("empty round trip: %+v, %v", m, err)
	}
}

func TestResyncReqRejectsBadOp(t *testing.T) {
	var b Buffer
	b.U32(1)
	b.U8(99) // not a re-sync op
	b.U32(0)
	if _, err := DecodeResyncReq(b.B); err == nil {
		t.Fatal("unknown op decoded without error")
	}
}

func TestResyncReqTruncated(t *testing.T) {
	full := ResyncReq{Ops: []ResyncOp{
		{Op: ResyncInsert, Entries: []mindex.Entry{{ID: 3, Perm: []int32{1}}}},
	}}.Encode()
	for n := range len(full) {
		if _, err := DecodeResyncReq(full[:n]); err == nil {
			t.Fatalf("truncation to %d bytes decoded without error", n)
		}
	}
}
