package wire

import (
	"math"
	"reflect"
	"testing"

	"simcloud/internal/mindex"
)

func TestHelloRespRoundTrip(t *testing.T) {
	cases := []HelloResp{
		{},
		{Mode: HelloModeEncrypted, NumPivots: 30, MaxLevel: 8, BucketCapacity: 200,
			Ranking: 1, EagerRootSplit: true, Shards: 16, Entries: math.MaxUint64},
		{Mode: HelloModePlain, NumPivots: 1, MaxLevel: 1, BucketCapacity: 1, Ranking: 2},
	}
	for _, want := range cases {
		got, err := DecodeHelloResp(want.Encode())
		if err != nil {
			t.Fatalf("%+v: %v", want, err)
		}
		if got != want {
			t.Fatalf("round trip: got %+v, want %+v", got, want)
		}
	}
}

func TestHelloRespTruncated(t *testing.T) {
	full := HelloResp{Mode: 1, NumPivots: 4, MaxLevel: 2, BucketCapacity: 8, Shards: 1}.Encode()
	for n := range len(full) {
		if _, err := DecodeHelloResp(full[:n]); err == nil {
			t.Fatalf("truncation to %d bytes decoded without error", n)
		}
	}
}

func TestBatchRankedRespRoundTrip(t *testing.T) {
	want := BatchRankedResp{
		ServerNanos: 42,
		Results: [][]mindex.RankedCandidate{
			nil,
			{
				{Entry: mindex.Entry{ID: 1, Perm: []int32{2, 0, 1}, Payload: []byte{9, 9}},
					Promise: 0.25, Prefix: []int32{2}},
				{Entry: mindex.Entry{ID: 2, Perm: []int32{2, 1, 0}, Dists: []float64{1, 2, 3}},
					Promise: 0.5, Prefix: []int32{2, 1}},
			},
		},
	}
	got, err := DecodeBatchRankedResp(want.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.ServerNanos != want.ServerNanos || len(got.Results) != len(want.Results) {
		t.Fatalf("round trip header mismatch: %+v", got)
	}
	if len(got.Results[0]) != 0 {
		t.Fatalf("empty result came back with %d candidates", len(got.Results[0]))
	}
	for i, rc := range want.Results[1] {
		g := got.Results[1][i]
		if g.Promise != rc.Promise || !reflect.DeepEqual(g.Prefix, rc.Prefix) ||
			!reflect.DeepEqual(g.Entry, rc.Entry) {
			t.Fatalf("candidate %d mismatch: got %+v, want %+v", i, g, rc)
		}
	}
}

func TestBatchRankedRespHostileCount(t *testing.T) {
	var b Buffer
	b.U64(0)
	b.U32(0xFFFFFFFF) // absurd result count for a tiny payload
	if _, err := DecodeBatchRankedResp(b.B); err == nil {
		t.Fatal("hostile result count decoded without error")
	}
}

func TestBatchQueryFirstCellRoundTrip(t *testing.T) {
	want := BatchQueryReq{Queries: []BatchQuery{
		{Kind: BatchFirstCell, Perm: []int32{3, 1, 2, 0}},
		{Kind: BatchRange, Dists: []float64{1, 2}, Radius: 0.5},
	}}
	got, err := DecodeBatchQueryReq(want.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip: got %+v, want %+v", got, want)
	}
}
