package wire

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync/atomic"
)

// MsgType identifies a protocol message.
type MsgType uint8

// Protocol messages. Requests flow client→server, responses server→client.
const (
	// MsgError carries a server-side error string.
	MsgError MsgType = iota + 1

	// MsgInsertEntries inserts pre-computed index entries (encrypted
	// deployment: the client computed permutations/distances and encrypted
	// the payloads; the server sees no plaintext).
	MsgInsertEntries
	// MsgInsertObjects inserts raw objects (plain deployment: the server
	// computes pivot distances itself).
	MsgInsertObjects

	// MsgRangeDists asks for range-query candidates given only the query's
	// pivot-distance vector (encrypted precise range, Algorithm 3).
	MsgRangeDists
	// MsgApproxPerm asks for a pre-ranked candidate set given only the
	// query's pivot permutation (encrypted approximate k-NN, Algorithm 4).
	MsgApproxPerm
	// MsgApproxDists is MsgApproxPerm with a distance vector instead of a
	// permutation (the distance-sum ranking strategy).
	MsgApproxDists
	// MsgFirstCell asks for the single most promising Voronoi cell — the
	// restricted candidate strategy of the paper's 1-NN comparison.
	MsgFirstCell

	// MsgRangePlain evaluates a full range query server-side (plain).
	MsgRangePlain
	// MsgKNNPlain evaluates a precise k-NN query server-side (plain).
	MsgKNNPlain
	// MsgApproxPlain evaluates an approximate k-NN server-side (plain).
	MsgApproxPlain

	// MsgCandidates returns a candidate set of entries plus server time.
	MsgCandidates
	// MsgResults returns refined results (plain deployment) plus server time.
	MsgResults
	// MsgAck acknowledges an insert, carrying server time.
	MsgAck

	// MsgGetNode fetches one encrypted node blob by ID (EHI baseline).
	MsgGetNode
	// MsgNodeBlob returns an encrypted node blob (EHI baseline).
	MsgNodeBlob
	// MsgPutNodes uploads encrypted node blobs (EHI construction).
	MsgPutNodes

	// MsgFDHQuery fetches the encrypted objects of the given hash buckets
	// (FDH baseline).
	MsgFDHQuery
	// MsgPutFDH uploads the FDH bucket table (FDH construction).
	MsgPutFDH

	// MsgDownloadAll fetches every stored entry (trivial baseline).
	MsgDownloadAll

	// MsgPutRaw uploads encrypted raw-data blobs keyed by object ID (the
	// raw-data storage of the paper's Figure 1).
	MsgPutRaw
	// MsgGetRaw fetches encrypted raw-data blobs by object ID.
	MsgGetRaw
	// MsgRawItems returns raw-data blobs plus server time.
	MsgRawItems

	// MsgBatchQuery carries several encrypted queries (range and/or
	// approximate) in one frame, so one round trip amortizes framing and
	// latency across k queries.
	MsgBatchQuery
	// MsgBatchCandidates returns one candidate set per batched query.
	MsgBatchCandidates

	// MsgDeleteEntries tombstones indexed entries. Each reference carries
	// an entry ID plus its permutation prefix (the same pivot-space routing
	// metadata an insert reveals); batchable like MsgInsertEntries.
	MsgDeleteEntries
	// MsgDeleteAck acknowledges a delete, carrying the count of entries
	// actually tombstoned plus server time.
	MsgDeleteAck

	// MsgHello asks a server to identify itself: deployment mode and the
	// index shape (pivot count, depth, ranking strategy). The cluster
	// coordinator hellos every node at startup to verify the nodes are
	// key-compatible before it federates them; it doubles as a health
	// check (the reply carries the live entry count).
	MsgHello
	// MsgHelloAck answers MsgHello with a HelloResp.
	MsgHelloAck

	// MsgBatchRanked is MsgBatchQuery with ranking annotations kept on the
	// reply: the payload is a BatchQueryReq, but every candidate returns
	// with its source cell's promise value and permutation prefix, so an
	// aggregation layer (the cluster coordinator) can merge per-node
	// streams by the same (promise, prefix, source) order the in-server
	// shard merge uses.
	MsgBatchRanked
	// MsgBatchRankedCandidates returns one ranked candidate set per query
	// of a MsgBatchRanked request.
	MsgBatchRankedCandidates

	// MsgDeleteObjects tombstones plain-deployment objects by ID (the plain
	// server owns the pivots, so no routing metadata is needed); answered
	// with MsgDeleteAck, batchable like MsgDeleteEntries.
	MsgDeleteObjects
	// MsgFirstCellPlain evaluates the restricted 1-cell approximate k-NN
	// fully server-side (plain deployment), the non-encrypted counterpart
	// of MsgFirstCell; answered with MsgResults.
	MsgFirstCellPlain

	// MsgFilteredQuery wraps an inner read request (MsgBatchRanked,
	// MsgRangeDists or MsgDownloadAll) with a first-level pivot restriction:
	// the server evaluates the inner request as if its index held only the
	// entries whose Perm[0] is in the allowed set, and answers with the
	// inner request's natural response type. A replicated coordinator uses
	// it to assign each first-level Voronoi cell to exactly one live owner,
	// so every entry is counted once no matter how many replicas hold it.
	MsgFilteredQuery
	// MsgResyncOps re-delivers the ordered write operations a node missed
	// while it was down (coordinator re-admission). The node applies them
	// idempotently — inserts of IDs it already holds are skipped — and
	// answers MsgAck when its state has caught up.
	MsgResyncOps

	// MsgIngestChunk streams one sequence-numbered chunk of pre-computed
	// entries during a bulk load (encrypted deployment). The client keeps a
	// window of unacknowledged chunks in flight, preparing the next chunk
	// (pivot distances, encryption) while earlier ones cross the wire and
	// build server-side; each chunk is answered by MsgIngestChunkAck.
	MsgIngestChunk
	// MsgIngestObjChunk is MsgIngestChunk for raw objects (plain
	// deployment): the server computes pivot distances itself.
	MsgIngestObjChunk
	// MsgIngestChunkAck acknowledges one streamed chunk, echoing its
	// sequence number. Under WAL policy "always" the ack additionally
	// promises the chunk's log record is on stable storage; under "group"
	// durability is deferred to the end-of-stream flush.
	MsgIngestChunkAck
	// MsgIngestEnd closes a streamed ingest: the server flushes its WAL
	// (a no-op without one) and answers MsgAck, so the final ack promises
	// every streamed chunk is applied and durable.
	MsgIngestEnd
)

var msgNames = map[MsgType]string{
	MsgError: "error", MsgInsertEntries: "insert-entries", MsgInsertObjects: "insert-objects",
	MsgRangeDists: "range-dists", MsgApproxPerm: "approx-perm", MsgApproxDists: "approx-dists",
	MsgFirstCell: "first-cell", MsgRangePlain: "range-plain", MsgKNNPlain: "knn-plain",
	MsgApproxPlain: "approx-plain", MsgCandidates: "candidates", MsgResults: "results",
	MsgAck: "ack", MsgGetNode: "get-node", MsgNodeBlob: "node-blob", MsgPutNodes: "put-nodes",
	MsgFDHQuery: "fdh-query", MsgPutFDH: "put-fdh", MsgDownloadAll: "download-all",
	MsgPutRaw: "put-raw", MsgGetRaw: "get-raw", MsgRawItems: "raw-items",
	MsgBatchQuery: "batch-query", MsgBatchCandidates: "batch-candidates",
	MsgDeleteEntries: "delete-entries", MsgDeleteAck: "delete-ack",
	MsgHello: "hello", MsgHelloAck: "hello-ack",
	MsgBatchRanked: "batch-ranked", MsgBatchRankedCandidates: "batch-ranked-candidates",
	MsgDeleteObjects: "delete-objects", MsgFirstCellPlain: "first-cell-plain",
	MsgFilteredQuery: "filtered-query", MsgResyncOps: "resync-ops",
	MsgIngestChunk: "ingest-chunk", MsgIngestObjChunk: "ingest-obj-chunk",
	MsgIngestChunkAck: "ingest-chunk-ack", MsgIngestEnd: "ingest-end",
}

// String implements fmt.Stringer.
func (m MsgType) String() string {
	if s, ok := msgNames[m]; ok {
		return s
	}
	return fmt.Sprintf("msg(%d)", uint8(m))
}

// MaxFrameSize bounds a single frame (1 GiB) against hostile or corrupted
// length prefixes.
const MaxFrameSize = 1 << 30

// WriteFrame writes one frame: length uint32 (big endian, covering type +
// payload), type byte, payload.
func WriteFrame(w io.Writer, t MsgType, payload []byte) error {
	if len(payload)+1 > MaxFrameSize {
		return fmt.Errorf("wire: frame of %d bytes exceeds limit", len(payload)+1)
	}
	var hdr [5]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(len(payload)+1))
	hdr[4] = byte(t)
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// ReadFrame reads one frame written by WriteFrame.
func ReadFrame(r io.Reader) (MsgType, []byte, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	size := binary.BigEndian.Uint32(hdr[:4])
	if size == 0 || size > MaxFrameSize {
		return 0, nil, fmt.Errorf("wire: implausible frame size %d", size)
	}
	payload := make([]byte, size-1)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, fmt.Errorf("wire: short frame body: %w", err)
	}
	return MsgType(hdr[4]), payload, nil
}

// CountingConn wraps a net.Conn and counts bytes in both directions — the
// "communication cost" measure of the paper's evaluation.
type CountingConn struct {
	net.Conn
	read    atomic.Int64
	written atomic.Int64
}

// NewCountingConn wraps conn.
func NewCountingConn(conn net.Conn) *CountingConn {
	return &CountingConn{Conn: conn}
}

// Read implements net.Conn.
func (c *CountingConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	c.read.Add(int64(n))
	return n, err
}

// Write implements net.Conn.
func (c *CountingConn) Write(p []byte) (int, error) {
	n, err := c.Conn.Write(p)
	c.written.Add(int64(n))
	return n, err
}

// BytesRead returns the bytes received so far.
func (c *CountingConn) BytesRead() int64 { return c.read.Load() }

// BytesWritten returns the bytes sent so far.
func (c *CountingConn) BytesWritten() int64 { return c.written.Load() }

// ResetCounters zeroes both byte counters (per-operation accounting).
func (c *CountingConn) ResetCounters() {
	c.read.Store(0)
	c.written.Store(0)
}
