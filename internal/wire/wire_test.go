package wire

import (
	"bytes"
	"net"
	"reflect"
	"testing"
	"testing/quick"

	"simcloud/internal/metric"
	"simcloud/internal/mindex"
)

func TestBufferReaderRoundTrip(t *testing.T) {
	var b Buffer
	b.U8(7)
	b.U32(1 << 20)
	b.U64(1 << 40)
	b.F64(3.25)
	b.Bytes([]byte{1, 2, 3})
	b.String("hello")
	b.F64Slice([]float64{1.5, -2.5})
	b.I32Slice([]int32{-1, 0, 7})
	b.Vec(metric.Vector{1, 2, 3.5})

	r := NewReader(b.B)
	if got := r.U8(); got != 7 {
		t.Fatalf("U8 = %d", got)
	}
	if got := r.U32(); got != 1<<20 {
		t.Fatalf("U32 = %d", got)
	}
	if got := r.U64(); got != 1<<40 {
		t.Fatalf("U64 = %d", got)
	}
	if got := r.F64(); got != 3.25 {
		t.Fatalf("F64 = %g", got)
	}
	if got := r.BytesField(); !bytes.Equal(got, []byte{1, 2, 3}) {
		t.Fatalf("Bytes = %v", got)
	}
	if got := r.StringField(); got != "hello" {
		t.Fatalf("String = %q", got)
	}
	if got := r.F64Slice(); !reflect.DeepEqual(got, []float64{1.5, -2.5}) {
		t.Fatalf("F64Slice = %v", got)
	}
	if got := r.I32Slice(); !reflect.DeepEqual(got, []int32{-1, 0, 7}) {
		t.Fatalf("I32Slice = %v", got)
	}
	if got := r.VecField(); !got.Equal(metric.Vector{1, 2, 3.5}) {
		t.Fatalf("Vec = %v", got)
	}
	if err := r.Err(); err != nil {
		t.Fatalf("Err = %v", err)
	}
}

func TestReaderStickyError(t *testing.T) {
	r := NewReader([]byte{1})
	_ = r.U32() // under-read
	if r.Err() == nil {
		t.Fatal("no error after under-read")
	}
	if got := r.U64(); got != 0 {
		t.Fatal("read after error returned data")
	}
}

func TestReaderTrailingBytes(t *testing.T) {
	var b Buffer
	b.U8(1)
	b.U8(2)
	r := NewReader(b.B)
	r.U8()
	if r.Err() == nil {
		t.Fatal("unconsumed payload bytes not reported")
	}
}

func TestReaderHostileLength(t *testing.T) {
	var b Buffer
	b.U32(1 << 30) // claims a gigabyte of floats
	r := NewReader(b.B)
	if got := r.F64Slice(); got != nil {
		t.Fatalf("hostile length yielded %d floats", len(got))
	}
	if r.Err() == nil {
		t.Fatal("hostile length accepted")
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payloads := [][]byte{nil, {}, {1}, bytes.Repeat([]byte{0xCC}, 100000)}
	for i, p := range payloads {
		if err := WriteFrame(&buf, MsgAck, p); err != nil {
			t.Fatal(err)
		}
		typ, got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if typ != MsgAck {
			t.Fatalf("case %d: type = %v", i, typ)
		}
		if !bytes.Equal(got, p) {
			t.Fatalf("case %d: payload mismatch (%d vs %d bytes)", i, len(got), len(p))
		}
	}
}

func TestReadFrameRejectsCorruptHeader(t *testing.T) {
	// Size zero.
	if _, _, err := ReadFrame(bytes.NewReader([]byte{0, 0, 0, 0, 1})); err == nil {
		t.Fatal("zero-size frame accepted")
	}
	// Implausibly large size.
	if _, _, err := ReadFrame(bytes.NewReader([]byte{0xFF, 0xFF, 0xFF, 0xFF, 1})); err == nil {
		t.Fatal("oversize frame accepted")
	}
	// Truncated body.
	var buf bytes.Buffer
	if err := WriteFrame(&buf, MsgAck, []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	if _, _, err := ReadFrame(bytes.NewReader(raw[:len(raw)-1])); err == nil {
		t.Fatal("truncated frame accepted")
	}
}

func TestMsgTypeStrings(t *testing.T) {
	if MsgCandidates.String() != "candidates" {
		t.Fatalf("got %q", MsgCandidates.String())
	}
	if MsgType(200).String() == "" {
		t.Fatal("unknown type renders empty")
	}
}

func sampleEntries() []mindex.Entry {
	return []mindex.Entry{
		{ID: 1, Perm: []int32{2, 0, 1}, Dists: []float64{1, 2, 3}, Payload: []byte{9, 8}},
		{ID: 2, Perm: []int32{0, 1, 2}, Vec: metric.Vector{1.5, 2.5}},
	}
}

func TestMessageRoundTrips(t *testing.T) {
	t.Run("insert-entries", func(t *testing.T) {
		in := InsertEntriesReq{Entries: sampleEntries()}
		out, err := DecodeInsertEntriesReq(in.Encode())
		if err != nil {
			t.Fatal(err)
		}
		if len(out.Entries) != 2 || out.Entries[0].ID != 1 || out.Entries[1].Vec[1] != 2.5 {
			t.Fatalf("round trip: %+v", out)
		}
	})
	t.Run("insert-objects", func(t *testing.T) {
		in := InsertObjectsReq{Objects: []metric.Object{{ID: 5, Vec: metric.Vector{1, 2}}}}
		out, err := DecodeInsertObjectsReq(in.Encode())
		if err != nil {
			t.Fatal(err)
		}
		if len(out.Objects) != 1 || out.Objects[0].ID != 5 {
			t.Fatalf("round trip: %+v", out)
		}
	})
	t.Run("delete-entries", func(t *testing.T) {
		in := DeleteEntriesReq{Refs: []mindex.Entry{
			{ID: 9, Perm: []int32{2, 0, 1}},
			{ID: 10, Perm: []int32{0, 1, 2}},
		}}
		out, err := DecodeDeleteEntriesReq(in.Encode())
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(out.Refs, in.Refs) {
			t.Fatalf("round trip: %+v", out)
		}
	})
	t.Run("delete-ack", func(t *testing.T) {
		in := DeleteAckResp{ServerNanos: 77, Deleted: 3}
		out, err := DecodeDeleteAckResp(in.Encode())
		if err != nil || out != in {
			t.Fatalf("round trip: %+v, %v", out, err)
		}
	})
	t.Run("range-dists", func(t *testing.T) {
		in := RangeDistsReq{Dists: []float64{1, 2, 3}, Radius: 4.5}
		out, err := DecodeRangeDistsReq(in.Encode())
		if err != nil || out.Radius != 4.5 || len(out.Dists) != 3 {
			t.Fatalf("round trip: %+v, %v", out, err)
		}
	})
	t.Run("approx-perm", func(t *testing.T) {
		in := ApproxPermReq{Perm: []int32{3, 1, 0, 2}, CandSize: 600}
		out, err := DecodeApproxPermReq(in.Encode())
		if err != nil || out.CandSize != 600 || !reflect.DeepEqual(out.Perm, in.Perm) {
			t.Fatalf("round trip: %+v, %v", out, err)
		}
	})
	t.Run("approx-dists", func(t *testing.T) {
		in := ApproxDistsReq{Dists: []float64{0.5}, CandSize: 10}
		out, err := DecodeApproxDistsReq(in.Encode())
		if err != nil || out.CandSize != 10 || out.Dists[0] != 0.5 {
			t.Fatalf("round trip: %+v, %v", out, err)
		}
	})
	t.Run("first-cell", func(t *testing.T) {
		in := FirstCellReq{Perm: []int32{1, 0}}
		out, err := DecodeFirstCellReq(in.Encode())
		if err != nil || !reflect.DeepEqual(out.Perm, in.Perm) {
			t.Fatalf("round trip: %+v, %v", out, err)
		}
	})
	t.Run("range-plain", func(t *testing.T) {
		in := RangePlainReq{Q: metric.Vector{7, 8}, Radius: 1}
		out, err := DecodeRangePlainReq(in.Encode())
		if err != nil || !out.Q.Equal(in.Q) || out.Radius != 1 {
			t.Fatalf("round trip: %+v, %v", out, err)
		}
	})
	t.Run("knn-plain", func(t *testing.T) {
		in := KNNPlainReq{Q: metric.Vector{1}, K: 30}
		out, err := DecodeKNNPlainReq(in.Encode())
		if err != nil || out.K != 30 || !out.Q.Equal(in.Q) {
			t.Fatalf("round trip: %+v, %v", out, err)
		}
	})
	t.Run("approx-plain", func(t *testing.T) {
		in := ApproxPlainReq{Q: metric.Vector{1, 2, 3}, K: 30, CandSize: 1500}
		out, err := DecodeApproxPlainReq(in.Encode())
		if err != nil || out.K != 30 || out.CandSize != 1500 {
			t.Fatalf("round trip: %+v, %v", out, err)
		}
	})
	t.Run("candidates", func(t *testing.T) {
		in := CandidatesResp{ServerNanos: 12345, Entries: sampleEntries()}
		out, err := DecodeCandidatesResp(in.Encode())
		if err != nil || out.ServerNanos != 12345 || len(out.Entries) != 2 {
			t.Fatalf("round trip: %+v, %v", out, err)
		}
	})
	t.Run("batch-query", func(t *testing.T) {
		in := BatchQueryReq{Queries: []BatchQuery{
			{Kind: BatchRange, Dists: []float64{1, 2}, Radius: 0.5},
			{Kind: BatchApproxPerm, Perm: []int32{1, 0, 2}, CandSize: 40},
			{Kind: BatchApproxDists, Dists: []float64{3}, CandSize: 7},
		}}
		out, err := DecodeBatchQueryReq(in.Encode())
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(out, in) {
			t.Fatalf("round trip: %+v", out)
		}
	})
	t.Run("batch-query-unknown-kind", func(t *testing.T) {
		var b Buffer
		b.U32(1)
		b.U8(99)
		if _, err := DecodeBatchQueryReq(b.B); err == nil {
			t.Fatal("unknown batch kind accepted")
		}
	})
	t.Run("batch-candidates", func(t *testing.T) {
		in := BatchQueryResp{ServerNanos: 77, Results: [][]mindex.Entry{
			sampleEntries(),
			nil,
			{{ID: 9, Perm: []int32{1}}},
		}}
		out, err := DecodeBatchQueryResp(in.Encode())
		if err != nil {
			t.Fatal(err)
		}
		if out.ServerNanos != 77 || len(out.Results) != 3 ||
			len(out.Results[0]) != 2 || len(out.Results[1]) != 0 || out.Results[2][0].ID != 9 {
			t.Fatalf("round trip: %+v", out)
		}
	})
	t.Run("results", func(t *testing.T) {
		in := ResultsResp{ServerNanos: 1, DistNanos: 2, Results: []mindex.Result{
			{ID: 1, Dist: 0.5, Vec: metric.Vector{1}},
			{ID: 2, Dist: 1.5},
		}}
		out, err := DecodeResultsResp(in.Encode())
		if err != nil || len(out.Results) != 2 || out.Results[0].Dist != 0.5 || out.DistNanos != 2 {
			t.Fatalf("round trip: %+v, %v", out, err)
		}
	})
	t.Run("ack", func(t *testing.T) {
		out, err := DecodeAckResp(AckResp{ServerNanos: 9, DistNanos: 3}.Encode())
		if err != nil || out.ServerNanos != 9 || out.DistNanos != 3 {
			t.Fatalf("round trip: %+v, %v", out, err)
		}
	})
	t.Run("error", func(t *testing.T) {
		out, err := DecodeErrorResp(ErrorResp{Msg: "boom"}.Encode())
		if err != nil || out.Msg != "boom" {
			t.Fatalf("round trip: %+v, %v", out, err)
		}
		re := &RemoteError{Msg: "x"}
		if re.Error() == "" {
			t.Fatal("empty remote error text")
		}
	})
	t.Run("put-nodes", func(t *testing.T) {
		in := PutNodesReq{RootID: 3, Nodes: []EHINode{{ID: 3, Blob: []byte{1}}, {ID: 4, Blob: nil}}}
		out, err := DecodePutNodesReq(in.Encode())
		if err != nil || out.RootID != 3 || len(out.Nodes) != 2 {
			t.Fatalf("round trip: %+v, %v", out, err)
		}
	})
	t.Run("get-node", func(t *testing.T) {
		out, err := DecodeGetNodeReq(GetNodeReq{ID: 77}.Encode())
		if err != nil || out.ID != 77 {
			t.Fatalf("round trip: %+v, %v", out, err)
		}
	})
	t.Run("node-blob", func(t *testing.T) {
		out, err := DecodeNodeBlobResp(NodeBlobResp{ServerNanos: 4, Blob: []byte{5, 6}}.Encode())
		if err != nil || out.ServerNanos != 4 || !bytes.Equal(out.Blob, []byte{5, 6}) {
			t.Fatalf("round trip: %+v, %v", out, err)
		}
	})
	t.Run("put-fdh", func(t *testing.T) {
		in := PutFDHReq{Items: []FDHItem{{Key: 1, Payload: []byte{1}}, {Key: 2, Payload: []byte{2, 3}}}}
		out, err := DecodePutFDHReq(in.Encode())
		if err != nil || len(out.Items) != 2 || out.Items[1].Key != 2 {
			t.Fatalf("round trip: %+v, %v", out, err)
		}
	})
	t.Run("fdh-query", func(t *testing.T) {
		in := FDHQueryReq{Keys: []uint64{9, 10, 11}}
		out, err := DecodeFDHQueryReq(in.Encode())
		if err != nil || !reflect.DeepEqual(out.Keys, in.Keys) {
			t.Fatalf("round trip: %+v, %v", out, err)
		}
	})
}

// Property: decoders never panic and never accept trailing garbage appended
// to a valid message.
func TestQuickDecodersRobust(t *testing.T) {
	f := func(p []byte) bool {
		if len(p) > 2048 {
			p = p[:2048]
		}
		_, _ = DecodeInsertEntriesReq(p)
		_, _ = DecodeDeleteEntriesReq(p)
		_, _ = DecodeDeleteAckResp(p)
		_, _ = DecodeRangeDistsReq(p)
		_, _ = DecodeApproxPermReq(p)
		_, _ = DecodeCandidatesResp(p)
		_, _ = DecodeResultsResp(p)
		_, _ = DecodePutNodesReq(p)
		_, _ = DecodePutFDHReq(p)
		_, _ = DecodeFDHQueryReq(p)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
	valid := RangeDistsReq{Dists: []float64{1}, Radius: 2}.Encode()
	if _, err := DecodeRangeDistsReq(append(valid, 0xFF)); err == nil {
		t.Fatal("trailing garbage accepted")
	}
}

func TestCountingConn(t *testing.T) {
	client, server := net.Pipe()
	defer client.Close()
	defer server.Close()
	cc := NewCountingConn(client)

	done := make(chan error, 1)
	go func() {
		_, payload, err := ReadFrame(server)
		if err != nil {
			done <- err
			return
		}
		done <- WriteFrame(server, MsgAck, payload)
	}()

	payload := bytes.Repeat([]byte{1}, 1000)
	if err := WriteFrame(cc, MsgDownloadAll, payload); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ReadFrame(cc); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if cc.BytesWritten() != 1005 {
		t.Fatalf("written = %d, want 1005", cc.BytesWritten())
	}
	if cc.BytesRead() != 1005 {
		t.Fatalf("read = %d, want 1005", cc.BytesRead())
	}
	cc.ResetCounters()
	if cc.BytesRead() != 0 || cc.BytesWritten() != 0 {
		t.Fatal("reset failed")
	}
}
