package wire

import "simcloud/internal/mindex"

// This file defines the replication messages: the pivot-filtered read
// envelope a replicated coordinator fans queries out with, and the re-sync
// operation stream it replays into a re-admitted node. See DESIGN.md
// §Replication for the ownership rule and recovery invariants these carry.

// FilteredReq wraps an inner read request with a first-level pivot
// restriction (MsgFilteredQuery). The server decodes Payload as an Inner
// request, evaluates it over only the entries whose Perm[0] is in Allow,
// and answers with Inner's natural response type.
type FilteredReq struct {
	// Allow lists the permitted first-level pivots (each in
	// [0, NumPivots)).
	Allow []int32
	// Inner is the wrapped request type: MsgBatchRanked, MsgRangeDists or
	// MsgDownloadAll.
	Inner MsgType
	// Payload is the wrapped request's encoded payload.
	Payload []byte
}

// Encode serializes the request payload.
func (m FilteredReq) Encode() []byte {
	var b Buffer
	b.I32Slice(m.Allow)
	b.U8(uint8(m.Inner))
	b.Bytes(m.Payload)
	return b.B
}

// DecodeFilteredReq parses a FilteredReq payload.
func DecodeFilteredReq(p []byte) (FilteredReq, error) {
	r := NewReader(p)
	m := FilteredReq{
		Allow:   r.I32Slice(),
		Inner:   MsgType(r.U8()),
		Payload: r.BytesField(),
	}
	return m, r.Err()
}

// Re-sync operation kinds (ResyncOp.Op).
const (
	// ResyncInsert re-delivers inserted entries.
	ResyncInsert uint8 = 1
	// ResyncDelete re-delivers delete references (ID + permutation prefix).
	ResyncDelete uint8 = 2
)

// ResyncOp is one write operation a down node missed, in the order the
// coordinator originally acknowledged it.
type ResyncOp struct {
	Op      uint8
	Entries []mindex.Entry
}

// ResyncReq carries the ordered journal of missed writes (MsgResyncOps).
// The receiving node applies the operations in order, skipping inserts of
// IDs it already holds — the crash may have lost the acknowledgment but not
// the write — and answers MsgAck once every operation is applied and logged.
type ResyncReq struct {
	Ops []ResyncOp
}

// Encode serializes the request payload.
func (m ResyncReq) Encode() []byte {
	var b Buffer
	b.U32(uint32(len(m.Ops)))
	for _, op := range m.Ops {
		b.U8(op.Op)
		b.U32(uint32(len(op.Entries)))
		for _, e := range op.Entries {
			b.B = mindex.AppendEntry(b.B, e)
		}
	}
	return b.B
}

// DecodeResyncReq parses a ResyncReq payload.
func DecodeResyncReq(p []byte) (ResyncReq, error) {
	r := NewReader(p)
	n := int(r.U32())
	if r.err != nil {
		return ResyncReq{}, r.Err()
	}
	// Each operation occupies at least 5 bytes: op byte + entry count.
	if n < 0 || n > len(r.b)/5+1 {
		return ResyncReq{}, ErrCodec
	}
	m := ResyncReq{Ops: make([]ResyncOp, 0, n)}
	for range n {
		op := ResyncOp{Op: r.U8()}
		cnt := int(r.U32())
		if r.err != nil {
			return ResyncReq{}, r.Err()
		}
		if op.Op != ResyncInsert && op.Op != ResyncDelete {
			return ResyncReq{}, ErrCodec
		}
		// A serialized entry is at least 20 bytes (mindex codec).
		if cnt < 0 || cnt > len(r.b)/20+1 {
			return ResyncReq{}, ErrCodec
		}
		op.Entries = make([]mindex.Entry, 0, cnt)
		for range cnt {
			e, rest, err := mindex.DecodeEntry(r.b)
			if err != nil {
				r.err = err
				return ResyncReq{}, r.Err()
			}
			r.b = rest
			op.Entries = append(op.Entries, e)
		}
		m.Ops = append(m.Ops, op)
	}
	return m, r.Err()
}
