package wire

import (
	"fmt"

	"simcloud/internal/metric"
	"simcloud/internal/mindex"
)

// This file defines the typed payloads of each protocol message. Every type
// has Encode() []byte and a package-level Decode function; both sides of the
// protocol share them, so the byte counts measured by the benchmark are the
// exact bytes a real deployment would ship.

// appendEntries writes a count-prefixed entry list.
func appendEntries(b *Buffer, entries []mindex.Entry) {
	b.U32(uint32(len(entries)))
	for i := range entries {
		b.B = mindex.AppendEntry(b.B, entries[i])
	}
}

func readEntries(r *Reader) []mindex.Entry {
	n := int(r.U32())
	if r.err != nil {
		return nil
	}
	// Each entry occupies at least 20 bytes on the wire.
	if n < 0 || n > len(r.b)/20+1 {
		r.err = ErrCodec
		return nil
	}
	out := make([]mindex.Entry, 0, n)
	for range n {
		e, rest, err := mindex.DecodeEntry(r.b)
		if err != nil {
			r.err = err
			return nil
		}
		r.b = rest
		out = append(out, e)
	}
	return out
}

// InsertEntriesReq uploads pre-computed entries (encrypted deployment).
type InsertEntriesReq struct {
	Entries []mindex.Entry
}

// Encode serializes the request payload.
func (m InsertEntriesReq) Encode() []byte {
	var b Buffer
	appendEntries(&b, m.Entries)
	return b.B
}

// DecodeInsertEntriesReq parses an InsertEntriesReq payload.
func DecodeInsertEntriesReq(p []byte) (InsertEntriesReq, error) {
	r := NewReader(p)
	m := InsertEntriesReq{Entries: readEntries(r)}
	return m, r.Err()
}

// InsertObjectsReq uploads raw objects (plain deployment).
type InsertObjectsReq struct {
	Objects []metric.Object
}

// Encode serializes the request payload.
func (m InsertObjectsReq) Encode() []byte {
	var b Buffer
	b.U32(uint32(len(m.Objects)))
	for _, o := range m.Objects {
		b.U64(o.ID)
		b.Vec(o.Vec)
	}
	return b.B
}

// DecodeInsertObjectsReq parses an InsertObjectsReq payload.
func DecodeInsertObjectsReq(p []byte) (InsertObjectsReq, error) {
	r := NewReader(p)
	n := int(r.U32())
	if n < 0 || n > len(p)/12+1 {
		return InsertObjectsReq{}, ErrCodec
	}
	m := InsertObjectsReq{Objects: make([]metric.Object, 0, n)}
	for range n {
		id := r.U64()
		vec := r.VecField()
		if r.err != nil {
			break
		}
		m.Objects = append(m.Objects, metric.Object{ID: id, Vec: vec})
	}
	return m, r.Err()
}

// DeleteEntriesReq tombstones the referenced entries (encrypted
// deployment). Each reference is an entry record carrying only the ID and
// the permutation prefix — the prefix's first element routes the delete to
// the owning index shard, so a delete reveals exactly the pivot-space
// metadata the original insert already revealed. The request reuses the
// entry codec and is batchable exactly like InsertEntriesReq.
type DeleteEntriesReq struct {
	Refs []mindex.Entry
}

// Encode serializes the request payload.
func (m DeleteEntriesReq) Encode() []byte {
	var b Buffer
	appendEntries(&b, m.Refs)
	return b.B
}

// DecodeDeleteEntriesReq parses a DeleteEntriesReq payload.
func DecodeDeleteEntriesReq(p []byte) (DeleteEntriesReq, error) {
	r := NewReader(p)
	m := DeleteEntriesReq{Refs: readEntries(r)}
	return m, r.Err()
}

// DeleteAckResp acknowledges a delete: Deleted counts the entries actually
// tombstoned (references to unknown or already-deleted IDs are skipped).
type DeleteAckResp struct {
	ServerNanos uint64
	Deleted     uint32
}

// Encode serializes the response payload.
func (m DeleteAckResp) Encode() []byte {
	var b Buffer
	b.U64(m.ServerNanos)
	b.U32(m.Deleted)
	return b.B
}

// DecodeDeleteAckResp parses a DeleteAckResp payload.
func DecodeDeleteAckResp(p []byte) (DeleteAckResp, error) {
	r := NewReader(p)
	m := DeleteAckResp{ServerNanos: r.U64(), Deleted: r.U32()}
	return m, r.Err()
}

// RangeDistsReq is the encrypted precise range query: pivot distances and
// radius only — the query object never leaves the client.
type RangeDistsReq struct {
	Dists  []float64
	Radius float64
}

// Encode serializes the request payload.
func (m RangeDistsReq) Encode() []byte {
	var b Buffer
	b.F64Slice(m.Dists)
	b.F64(m.Radius)
	return b.B
}

// DecodeRangeDistsReq parses a RangeDistsReq payload.
func DecodeRangeDistsReq(p []byte) (RangeDistsReq, error) {
	r := NewReader(p)
	m := RangeDistsReq{Dists: r.F64Slice(), Radius: r.F64()}
	return m, r.Err()
}

// ApproxPermReq is the encrypted approximate k-NN query under the footrule
// ranking: the query's pivot permutation and the requested candidate size.
type ApproxPermReq struct {
	Perm     []int32
	CandSize uint32
}

// Encode serializes the request payload.
func (m ApproxPermReq) Encode() []byte {
	var b Buffer
	b.I32Slice(m.Perm)
	b.U32(m.CandSize)
	return b.B
}

// DecodeApproxPermReq parses an ApproxPermReq payload.
func DecodeApproxPermReq(p []byte) (ApproxPermReq, error) {
	r := NewReader(p)
	m := ApproxPermReq{Perm: r.I32Slice(), CandSize: r.U32()}
	return m, r.Err()
}

// ApproxDistsReq is the encrypted approximate k-NN query under the
// distance-sum ranking: the query's pivot distances and candidate size.
type ApproxDistsReq struct {
	Dists    []float64
	CandSize uint32
}

// Encode serializes the request payload.
func (m ApproxDistsReq) Encode() []byte {
	var b Buffer
	b.F64Slice(m.Dists)
	b.U32(m.CandSize)
	return b.B
}

// DecodeApproxDistsReq parses an ApproxDistsReq payload.
func DecodeApproxDistsReq(p []byte) (ApproxDistsReq, error) {
	r := NewReader(p)
	m := ApproxDistsReq{Dists: r.F64Slice(), CandSize: r.U32()}
	return m, r.Err()
}

// FirstCellReq asks for the single most promising Voronoi cell.
type FirstCellReq struct {
	// Perm carries the query permutation (footrule ranking); Dists carries
	// the (transformed) query distance vector (distance-sum ranking) —
	// exactly the per-strategy disclosure split of the approximate k-NN
	// request pair. Exactly one of the two is non-empty.
	Perm  []int32
	Dists []float64
}

// Encode serializes the request payload.
func (m FirstCellReq) Encode() []byte {
	var b Buffer
	b.I32Slice(m.Perm)
	b.F64Slice(m.Dists)
	return b.B
}

// DecodeFirstCellReq parses a FirstCellReq payload.
func DecodeFirstCellReq(p []byte) (FirstCellReq, error) {
	r := NewReader(p)
	m := FirstCellReq{Perm: r.I32Slice(), Dists: r.F64Slice()}
	return m, r.Err()
}

// RangePlainReq is the plain precise range query carrying the raw query.
type RangePlainReq struct {
	Q      metric.Vector
	Radius float64
}

// Encode serializes the request payload.
func (m RangePlainReq) Encode() []byte {
	var b Buffer
	b.Vec(m.Q)
	b.F64(m.Radius)
	return b.B
}

// DecodeRangePlainReq parses a RangePlainReq payload.
func DecodeRangePlainReq(p []byte) (RangePlainReq, error) {
	r := NewReader(p)
	m := RangePlainReq{Q: r.VecField(), Radius: r.F64()}
	return m, r.Err()
}

// KNNPlainReq is the plain precise k-NN query.
type KNNPlainReq struct {
	Q metric.Vector
	K uint32
}

// Encode serializes the request payload.
func (m KNNPlainReq) Encode() []byte {
	var b Buffer
	b.Vec(m.Q)
	b.U32(m.K)
	return b.B
}

// DecodeKNNPlainReq parses a KNNPlainReq payload.
func DecodeKNNPlainReq(p []byte) (KNNPlainReq, error) {
	r := NewReader(p)
	m := KNNPlainReq{Q: r.VecField(), K: r.U32()}
	return m, r.Err()
}

// FirstCellPlainReq is the restricted 1-cell approximate k-NN of the
// paper's Section 5.4 comparison, evaluated fully server-side (plain
// deployment): the server ranks its Voronoi cells against the raw query,
// refines the single most promising cell and returns the k best answers.
type FirstCellPlainReq struct {
	Q metric.Vector
	K uint32
}

// Encode serializes the request payload.
func (m FirstCellPlainReq) Encode() []byte {
	var b Buffer
	b.Vec(m.Q)
	b.U32(m.K)
	return b.B
}

// DecodeFirstCellPlainReq parses a FirstCellPlainReq payload.
func DecodeFirstCellPlainReq(p []byte) (FirstCellPlainReq, error) {
	r := NewReader(p)
	m := FirstCellPlainReq{Q: r.VecField(), K: r.U32()}
	return m, r.Err()
}

// DeleteObjectsReq tombstones plain-deployment objects by ID. The plain
// server owns the pivots and the location map, so — unlike the encrypted
// DeleteEntriesReq — no permutation routing metadata travels with the
// request. Answered with MsgDeleteAck; batchable like MsgDeleteEntries.
type DeleteObjectsReq struct {
	IDs []uint64
}

// Encode serializes the request payload.
func (m DeleteObjectsReq) Encode() []byte {
	var b Buffer
	b.U32(uint32(len(m.IDs)))
	for _, id := range m.IDs {
		b.U64(id)
	}
	return b.B
}

// DecodeDeleteObjectsReq parses a DeleteObjectsReq payload.
func DecodeDeleteObjectsReq(p []byte) (DeleteObjectsReq, error) {
	r := NewReader(p)
	n := int(r.U32())
	// Each ID occupies exactly 8 bytes on the wire.
	if n < 0 || n > len(p)/8+1 {
		return DeleteObjectsReq{}, ErrCodec
	}
	m := DeleteObjectsReq{IDs: make([]uint64, 0, n)}
	for range n {
		id := r.U64()
		if r.err != nil {
			break
		}
		m.IDs = append(m.IDs, id)
	}
	return m, r.Err()
}

// ApproxPlainReq is the plain approximate k-NN query.
type ApproxPlainReq struct {
	Q        metric.Vector
	K        uint32
	CandSize uint32
}

// Encode serializes the request payload.
func (m ApproxPlainReq) Encode() []byte {
	var b Buffer
	b.Vec(m.Q)
	b.U32(m.K)
	b.U32(m.CandSize)
	return b.B
}

// DecodeApproxPlainReq parses an ApproxPlainReq payload.
func DecodeApproxPlainReq(p []byte) (ApproxPlainReq, error) {
	r := NewReader(p)
	m := ApproxPlainReq{Q: r.VecField(), K: r.U32(), CandSize: r.U32()}
	return m, r.Err()
}

// CandidatesResp returns a candidate set of entries; ServerNanos is the time
// the server spent preparing it (DistNanos of which went into distance
// computations — zero for encrypted deployments, where the server cannot
// compute distances at all).
type CandidatesResp struct {
	ServerNanos uint64
	DistNanos   uint64
	Entries     []mindex.Entry
}

// AppendTo appends the encoded response to b — the allocation-free variant
// a serving loop uses with a reused (or pooled) buffer. Candidate responses
// are the bulkiest frames the server emits, so this is the payload path
// worth keeping off the per-request allocator.
func (m CandidatesResp) AppendTo(b *Buffer) {
	b.U64(m.ServerNanos)
	b.U64(m.DistNanos)
	appendEntries(b, m.Entries)
}

// Encode serializes the response payload.
func (m CandidatesResp) Encode() []byte {
	var b Buffer
	m.AppendTo(&b)
	return b.B
}

// DecodeCandidatesResp parses a CandidatesResp payload.
func DecodeCandidatesResp(p []byte) (CandidatesResp, error) {
	r := NewReader(p)
	m := CandidatesResp{ServerNanos: r.U64(), DistNanos: r.U64(), Entries: readEntries(r)}
	return m, r.Err()
}

// ResultsResp returns refined results (plain deployment).
type ResultsResp struct {
	ServerNanos uint64
	DistNanos   uint64
	Results     []mindex.Result
}

// Encode serializes the response payload.
func (m ResultsResp) Encode() []byte {
	var b Buffer
	b.U64(m.ServerNanos)
	b.U64(m.DistNanos)
	b.U32(uint32(len(m.Results)))
	for _, res := range m.Results {
		b.U64(res.ID)
		b.F64(res.Dist)
		b.Vec(res.Vec)
	}
	return b.B
}

// DecodeResultsResp parses a ResultsResp payload.
func DecodeResultsResp(p []byte) (ResultsResp, error) {
	r := NewReader(p)
	m := ResultsResp{ServerNanos: r.U64(), DistNanos: r.U64()}
	n := int(r.U32())
	if n < 0 || n > len(p)/20+1 {
		return m, ErrCodec
	}
	m.Results = make([]mindex.Result, 0, n)
	for range n {
		id := r.U64()
		d := r.F64()
		vec := r.VecField()
		if r.err != nil {
			break
		}
		m.Results = append(m.Results, mindex.Result{ID: id, Dist: d, Vec: vec})
	}
	return m, r.Err()
}

// AckResp acknowledges an insert.
type AckResp struct {
	ServerNanos uint64
	DistNanos   uint64
}

// Encode serializes the response payload.
func (m AckResp) Encode() []byte {
	var b Buffer
	b.U64(m.ServerNanos)
	b.U64(m.DistNanos)
	return b.B
}

// DecodeAckResp parses an AckResp payload.
func DecodeAckResp(p []byte) (AckResp, error) {
	r := NewReader(p)
	m := AckResp{ServerNanos: r.U64(), DistNanos: r.U64()}
	return m, r.Err()
}

// ErrorResp carries a server-side failure to the client.
type ErrorResp struct {
	Msg string
}

// Encode serializes the response payload.
func (m ErrorResp) Encode() []byte {
	var b Buffer
	b.String(m.Msg)
	return b.B
}

// DecodeErrorResp parses an ErrorResp payload.
func DecodeErrorResp(p []byte) (ErrorResp, error) {
	r := NewReader(p)
	m := ErrorResp{Msg: r.StringField()}
	return m, r.Err()
}

// RemoteError is the client-side error for a MsgError response.
type RemoteError struct {
	Msg string
}

// Error implements error.
func (e *RemoteError) Error() string { return fmt.Sprintf("wire: server error: %s", e.Msg) }

// EHINode is one encrypted node blob of the EHI baseline index.
type EHINode struct {
	ID   uint64
	Blob []byte
}

// PutNodesReq uploads encrypted EHI nodes during construction.
type PutNodesReq struct {
	RootID uint64
	Nodes  []EHINode
}

// Encode serializes the request payload.
func (m PutNodesReq) Encode() []byte {
	var b Buffer
	b.U64(m.RootID)
	b.U32(uint32(len(m.Nodes)))
	for _, n := range m.Nodes {
		b.U64(n.ID)
		b.Bytes(n.Blob)
	}
	return b.B
}

// DecodePutNodesReq parses a PutNodesReq payload.
func DecodePutNodesReq(p []byte) (PutNodesReq, error) {
	r := NewReader(p)
	m := PutNodesReq{RootID: r.U64()}
	n := int(r.U32())
	if n < 0 || n > len(p)/12+1 {
		return m, ErrCodec
	}
	m.Nodes = make([]EHINode, 0, n)
	for range n {
		id := r.U64()
		blob := r.BytesField()
		if r.err != nil {
			break
		}
		m.Nodes = append(m.Nodes, EHINode{ID: id, Blob: blob})
	}
	return m, r.Err()
}

// GetNodeReq fetches one encrypted EHI node.
type GetNodeReq struct {
	ID uint64
}

// Encode serializes the request payload.
func (m GetNodeReq) Encode() []byte {
	var b Buffer
	b.U64(m.ID)
	return b.B
}

// DecodeGetNodeReq parses a GetNodeReq payload.
func DecodeGetNodeReq(p []byte) (GetNodeReq, error) {
	r := NewReader(p)
	m := GetNodeReq{ID: r.U64()}
	return m, r.Err()
}

// NodeBlobResp returns one encrypted EHI node.
type NodeBlobResp struct {
	ServerNanos uint64
	Blob        []byte
}

// Encode serializes the response payload.
func (m NodeBlobResp) Encode() []byte {
	var b Buffer
	b.U64(m.ServerNanos)
	b.Bytes(m.Blob)
	return b.B
}

// DecodeNodeBlobResp parses a NodeBlobResp payload.
func DecodeNodeBlobResp(p []byte) (NodeBlobResp, error) {
	r := NewReader(p)
	m := NodeBlobResp{ServerNanos: r.U64(), Blob: r.BytesField()}
	return m, r.Err()
}

// FDHItem is one encrypted object filed under an FDH bucket key.
type FDHItem struct {
	Key     uint64
	Payload []byte
}

// PutFDHReq uploads the FDH bucket table during construction.
type PutFDHReq struct {
	Items []FDHItem
}

// Encode serializes the request payload.
func (m PutFDHReq) Encode() []byte {
	var b Buffer
	b.U32(uint32(len(m.Items)))
	for _, it := range m.Items {
		b.U64(it.Key)
		b.Bytes(it.Payload)
	}
	return b.B
}

// DecodePutFDHReq parses a PutFDHReq payload.
func DecodePutFDHReq(p []byte) (PutFDHReq, error) {
	r := NewReader(p)
	n := int(r.U32())
	if n < 0 || n > len(p)/12+1 {
		return PutFDHReq{}, ErrCodec
	}
	m := PutFDHReq{Items: make([]FDHItem, 0, n)}
	for range n {
		key := r.U64()
		payload := r.BytesField()
		if r.err != nil {
			break
		}
		m.Items = append(m.Items, FDHItem{Key: key, Payload: payload})
	}
	return m, r.Err()
}

// RawItem is one encrypted raw-data blob keyed by its object ID — the
// raw-data storage of the paper's Figure 1, where metric-space search
// returns object IDs that the client resolves into the original data.
type RawItem struct {
	ID   uint64
	Blob []byte
}

// PutRawReq uploads encrypted raw-data blobs.
type PutRawReq struct {
	Items []RawItem
}

// Encode serializes the request payload.
func (m PutRawReq) Encode() []byte {
	var b Buffer
	b.U32(uint32(len(m.Items)))
	for _, it := range m.Items {
		b.U64(it.ID)
		b.Bytes(it.Blob)
	}
	return b.B
}

// DecodePutRawReq parses a PutRawReq payload.
func DecodePutRawReq(p []byte) (PutRawReq, error) {
	r := NewReader(p)
	n := int(r.U32())
	if n < 0 || n > len(p)/12+1 {
		return PutRawReq{}, ErrCodec
	}
	m := PutRawReq{Items: make([]RawItem, 0, n)}
	for range n {
		id := r.U64()
		blob := r.BytesField()
		if r.err != nil {
			break
		}
		m.Items = append(m.Items, RawItem{ID: id, Blob: blob})
	}
	return m, r.Err()
}

// GetRawReq fetches raw-data blobs by object ID.
type GetRawReq struct {
	IDs []uint64
}

// Encode serializes the request payload.
func (m GetRawReq) Encode() []byte {
	var b Buffer
	b.U32(uint32(len(m.IDs)))
	for _, id := range m.IDs {
		b.U64(id)
	}
	return b.B
}

// DecodeGetRawReq parses a GetRawReq payload.
func DecodeGetRawReq(p []byte) (GetRawReq, error) {
	r := NewReader(p)
	n := int(r.U32())
	if n < 0 || n > len(p)/8+1 {
		return GetRawReq{}, ErrCodec
	}
	m := GetRawReq{IDs: make([]uint64, 0, n)}
	for range n {
		m.IDs = append(m.IDs, r.U64())
	}
	return m, r.Err()
}

// RawItemsResp returns fetched raw-data blobs.
type RawItemsResp struct {
	ServerNanos uint64
	Items       []RawItem
}

// Encode serializes the response payload.
func (m RawItemsResp) Encode() []byte {
	var b Buffer
	b.U64(m.ServerNanos)
	b.U32(uint32(len(m.Items)))
	for _, it := range m.Items {
		b.U64(it.ID)
		b.Bytes(it.Blob)
	}
	return b.B
}

// DecodeRawItemsResp parses a RawItemsResp payload.
func DecodeRawItemsResp(p []byte) (RawItemsResp, error) {
	r := NewReader(p)
	m := RawItemsResp{ServerNanos: r.U64()}
	n := int(r.U32())
	if n < 0 || n > len(p)/12+1 {
		return m, ErrCodec
	}
	m.Items = make([]RawItem, 0, n)
	for range n {
		id := r.U64()
		blob := r.BytesField()
		if r.err != nil {
			break
		}
		m.Items = append(m.Items, RawItem{ID: id, Blob: blob})
	}
	return m, r.Err()
}

// Batch query kinds carried by a BatchQueryReq. Each kind mirrors one of
// the single-query encrypted requests and reveals exactly the same
// information per query.
const (
	// BatchRange is a precise range query (pivot distances + radius).
	BatchRange uint8 = iota + 1
	// BatchApproxPerm is an approximate k-NN candidate request under the
	// footrule ranking (pivot permutation + candidate size).
	BatchApproxPerm
	// BatchApproxDists is an approximate k-NN candidate request under the
	// distance-sum ranking (pivot distances + candidate size).
	BatchApproxDists
	// BatchFirstCell asks for the single most promising Voronoi cell
	// (pivot permutation only), the batched form of MsgFirstCell.
	BatchFirstCell
)

// BatchQuery is one query of a batched request: a tagged union over the
// three encrypted query shapes.
type BatchQuery struct {
	Kind     uint8
	Perm     []int32   // BatchApproxPerm, BatchFirstCell (footrule)
	Dists    []float64 // BatchRange, BatchApproxDists, BatchFirstCell (distsum)
	Radius   float64   // BatchRange
	CandSize uint32    // BatchApproxPerm, BatchApproxDists
}

// BatchQueryReq carries k encrypted queries in one frame, amortizing one
// round trip (and one frame header) over the whole batch. The server
// answers with a BatchQueryResp holding one candidate set per query, in
// request order.
type BatchQueryReq struct {
	Queries []BatchQuery
}

// Encode serializes the request payload.
func (m BatchQueryReq) Encode() []byte {
	var b Buffer
	b.U32(uint32(len(m.Queries)))
	for _, q := range m.Queries {
		b.U8(q.Kind)
		switch q.Kind {
		case BatchRange:
			b.F64Slice(q.Dists)
			b.F64(q.Radius)
		case BatchApproxPerm:
			b.I32Slice(q.Perm)
			b.U32(q.CandSize)
		case BatchApproxDists:
			b.F64Slice(q.Dists)
			b.U32(q.CandSize)
		case BatchFirstCell:
			b.I32Slice(q.Perm)
			b.F64Slice(q.Dists)
		}
	}
	return b.B
}

// DecodeBatchQueryReq parses a BatchQueryReq payload.
func DecodeBatchQueryReq(p []byte) (BatchQueryReq, error) {
	r := NewReader(p)
	n := int(r.U32())
	// Each query occupies at least 5 bytes (kind + one length prefix).
	if n < 0 || n > len(p)/5+1 {
		return BatchQueryReq{}, ErrCodec
	}
	m := BatchQueryReq{Queries: make([]BatchQuery, 0, n)}
	for range n {
		q := BatchQuery{Kind: r.U8()}
		switch q.Kind {
		case BatchRange:
			q.Dists = r.F64Slice()
			q.Radius = r.F64()
		case BatchApproxPerm:
			q.Perm = r.I32Slice()
			q.CandSize = r.U32()
		case BatchApproxDists:
			q.Dists = r.F64Slice()
			q.CandSize = r.U32()
		case BatchFirstCell:
			q.Perm = r.I32Slice()
			q.Dists = r.F64Slice()
		default:
			return BatchQueryReq{}, ErrCodec
		}
		if r.err != nil {
			break
		}
		m.Queries = append(m.Queries, q)
	}
	return m, r.Err()
}

// BatchQueryResp returns the candidate sets of a batched query, parallel to
// the request's query list. ServerNanos covers the whole batch.
type BatchQueryResp struct {
	ServerNanos uint64
	Results     [][]mindex.Entry
}

// AppendTo appends the encoded response to b (see CandidatesResp.AppendTo).
func (m BatchQueryResp) AppendTo(b *Buffer) {
	b.U64(m.ServerNanos)
	b.U32(uint32(len(m.Results)))
	for _, entries := range m.Results {
		appendEntries(b, entries)
	}
}

// Encode serializes the response payload.
func (m BatchQueryResp) Encode() []byte {
	var b Buffer
	m.AppendTo(&b)
	return b.B
}

// DecodeBatchQueryResp parses a BatchQueryResp payload.
func DecodeBatchQueryResp(p []byte) (BatchQueryResp, error) {
	r := NewReader(p)
	m := BatchQueryResp{ServerNanos: r.U64()}
	n := int(r.U32())
	// Each result occupies at least its 4-byte entry count.
	if n < 0 || n > len(p)/4+1 {
		return m, ErrCodec
	}
	m.Results = make([][]mindex.Entry, 0, n)
	for range n {
		entries := readEntries(r)
		if r.err != nil {
			break
		}
		m.Results = append(m.Results, entries)
	}
	return m, r.Err()
}

// FDHQueryReq fetches the encrypted objects stored under the given keys.
type FDHQueryReq struct {
	Keys []uint64
}

// Encode serializes the request payload.
func (m FDHQueryReq) Encode() []byte {
	var b Buffer
	b.U32(uint32(len(m.Keys)))
	for _, k := range m.Keys {
		b.U64(k)
	}
	return b.B
}

// DecodeFDHQueryReq parses an FDHQueryReq payload.
func DecodeFDHQueryReq(p []byte) (FDHQueryReq, error) {
	r := NewReader(p)
	n := int(r.U32())
	if n < 0 || n > len(p)/8+1 {
		return FDHQueryReq{}, ErrCodec
	}
	m := FDHQueryReq{Keys: make([]uint64, 0, n)}
	for range n {
		m.Keys = append(m.Keys, r.U64())
	}
	return m, r.Err()
}
