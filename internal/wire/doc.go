// Package wire implements the binary client–server protocol of the
// similarity cloud: length-prefixed frames over TCP, a compact field codec,
// and the typed request/response messages exchanged by the encrypted and
// plain clients, the server, the cluster coordinator, and the baseline
// protocols.
//
// The protocol is deliberately explicit about what each request reveals:
// encrypted-deployment requests carry only pivot permutations or pivot
// distance vectors (never the query object), while plain-deployment requests
// carry the raw query vector — making the privacy difference between the two
// variants directly visible on the wire, where the benchmark harness
// measures communication cost.
//
// # Key invariant: hostile-input safety and frame limits
//
// Every byte of a frame is untrusted until decoded. A frame is a uint32
// length prefix (covering type byte + payload) followed by the type byte
// and payload; ReadFrame rejects frames larger than MaxFrameSize (1 GiB)
// so a corrupted or hostile length prefix cannot make the receiver
// allocate unboundedly. Within a payload, every count-prefixed list bounds
// its claimed element count by the payload bytes actually present before
// allocating, and every decoder returns ErrCodec (never panics, never
// over-reads) on malformed input — properties exercised continuously by
// the fuzz targets in this package and by the CI fuzz-smoke job.
//
// Decoders accept exactly what the encoders produce, so the byte counts
// measured by the benchmarks are the exact bytes a real deployment ships.
//
// # Context-derived deadlines
//
// ArmContext is the single bridge between context semantics and net.Conn
// deadlines: it projects a context's deadline onto the connection for the
// duration of one exchange, interrupts blocked IO when the context is
// cancelled, and maps the resulting net timeout back to an error wrapping
// ctx.Err(). Every client round trip, every pipelined batch flight, and
// every coordinator→node exchange goes through it, so no layer above wire
// ever calls SetDeadline directly.
package wire
