package core

import (
	"context"
	"fmt"
	"time"

	"simcloud/internal/metric"
	"simcloud/internal/stats"
	"simcloud/internal/wire"
)

// Streamed ingest: the bulk-load counterpart of the pipelined batch
// exchange. InsertBatch prepares every entry up front and then ships the
// chunks; InsertStream instead prepares each chunk just before it is
// written, bounded by a window of Options.StreamWindow unacknowledged
// chunks — so the client-side construction work (pivot distances,
// encryption) of chunk k overlaps the transfer and server-side build of
// chunks k-window..k-1. The stream closes with MsgIngestEnd, whose ack the
// server sends only after flushing its WAL: under group-commit policies
// the per-chunk acks defer durability to exactly this point.
//
// Because preparation, transfer and server work deliberately overlap, the
// cost decomposition of a streamed ingest is not additive: CommTime
// reports the wall clock of the whole flight (minus credited server time),
// while DistCompTime/EncryptTime still report the summed CPU time of the
// preparation that ran inside it.

// streamIngest pipelines nChunks sequence-numbered ingest frames of the
// given type over conn under ctx, then closes the stream with
// MsgIngestEnd. encode is called just before chunk seq is written, from
// the writing goroutine. A reader goroutine drains the acks — verifying
// each echoes the expected sequence number — and refills the window; wire
// time and bytes are accounted like one pipelined exchange.
func streamIngest(ctx context.Context, conn *wire.CountingConn, typ wire.MsgType,
	nChunks, window int, encode func(seq int) ([]byte, error), costs *stats.Costs) error {
	disarm, err := wire.ArmContext(ctx, conn)
	if err != nil {
		return err
	}
	sentBefore, recvBefore := conn.BytesWritten(), conn.BytesRead()
	ioStart := time.Now()

	credits := make(chan struct{}, window)
	for range window {
		credits <- struct{}{}
	}
	// serverNanos and consumed are written by the reader goroutine and read
	// by the caller only after the readDone receive below (a happens-before
	// edge), so the shared costs are mutated from one goroutine at a time.
	var serverNanos uint64
	var consumed int
	readFailed := make(chan struct{})
	readDone := make(chan error, 1)
	go func() {
		err := func() error {
			for seq := 0; seq < nChunks; seq++ {
				typ, payload, err := wire.ReadFrame(conn)
				if err != nil {
					return err
				}
				consumed++
				if err := respError(frame{typ: typ, payload: payload}); err != nil {
					return fmt.Errorf("core: ingest chunk %d: %w", seq, err)
				}
				if typ != wire.MsgIngestChunkAck {
					return fmt.Errorf("core: unexpected ingest response %v", typ)
				}
				ack, err := wire.DecodeIngestChunkAckResp(payload)
				if err != nil {
					return err
				}
				if ack.Seq != uint32(seq) {
					return fmt.Errorf("core: ingest ack out of order: got %d, want %d", ack.Seq, seq)
				}
				serverNanos += ack.ServerNanos
				credits <- struct{}{}
			}
			typ, payload, err := wire.ReadFrame(conn)
			if err != nil {
				return err
			}
			consumed++
			if err := respError(frame{typ: typ, payload: payload}); err != nil {
				return fmt.Errorf("core: ingest end: %w", err)
			}
			if typ != wire.MsgAck {
				return fmt.Errorf("core: unexpected ingest end response %v", typ)
			}
			ack, err := wire.DecodeAckResp(payload)
			if err != nil {
				return err
			}
			serverNanos += ack.ServerNanos
			return nil
		}()
		if err != nil {
			// Unblock a writer waiting for window credit; the error itself
			// travels through readDone.
			close(readFailed)
		}
		readDone <- err
	}()

	var wrote int
	writeErr := func() error {
		for seq := 0; seq < nChunks; seq++ {
			select {
			case <-credits:
			case <-readFailed:
				return nil // the reader's error carries the cause
			}
			if err := ctx.Err(); err != nil {
				return err
			}
			payload, err := encode(seq)
			if err != nil {
				return err
			}
			if err := wire.WriteFrame(conn, typ, payload); err != nil {
				return err
			}
			wrote++
		}
		if err := wire.WriteFrame(conn, wire.MsgIngestEnd, wire.IngestEndReq{}.Encode()); err != nil {
			return err
		}
		wrote++
		return nil
	}()
	if writeErr != nil {
		// The reader may be waiting for acks that will never come; force its
		// pending read to fail. disarm restores the deadline below.
		conn.SetReadDeadline(time.Now())
	}
	readErr := <-readDone
	costs.CommTime += time.Since(ioStart)
	costs.BytesSent += conn.BytesWritten() - sentBefore
	costs.BytesReceived += conn.BytesRead() - recvBefore
	costs.RoundTrips++
	err = writeErr
	if err == nil {
		err = readErr
	}
	// A flight that failed on a server-answered error frame still has one
	// response in flight for every written-but-unconsumed frame (the server
	// answers each chunk independently). Drain them so the connection is left
	// perfectly framed for the next exchange — that is what lets the pool's
	// reusable-on-RemoteError classification stay true for pipelined streams.
	// If the drain itself fails, hide the remote error from the unwrap chain
	// (%v, not %w) so the lease is classified broken instead of re-pooled
	// with unknown bytes in flight.
	if err != nil && writeErr == nil && consumed < wrote {
		if derr := drainResponses(conn, wrote-consumed); derr != nil {
			err = fmt.Errorf("core: stream failed: %v (draining %d in-flight responses: %w)",
				err, wrote-consumed, derr)
		}
	}
	if err = disarm(err); err != nil {
		return err
	}
	creditServer(costs, serverNanos)
	return nil
}

// streamDrainTimeout bounds the post-failure response drain. At most
// StreamWindow+1 responses are outstanding and the server answers each
// frame as it processes it, so a healthy connection drains in
// milliseconds; a stalled one is handed back as broken instead.
const streamDrainTimeout = 10 * time.Second

// drainResponses reads and discards n response frames. The caller's
// context deadline (if armed) still interrupts the reads; the local
// deadline bounds the drain when there is none.
func drainResponses(conn *wire.CountingConn, n int) error {
	conn.SetReadDeadline(time.Now().Add(streamDrainTimeout))
	defer conn.SetReadDeadline(time.Time{})
	for range n {
		if _, _, err := wire.ReadFrame(conn); err != nil {
			return err
		}
	}
	return nil
}

// InsertStream is InsertStreamContext without a deadline.
func (c *EncryptedClient) InsertStream(objs []metric.Object) (stats.Costs, error) {
	return c.InsertStreamContext(context.Background(), objs)
}

// InsertStreamContext performs the encrypted bulk insert of Algorithm 1 in
// streaming mode: entries are prepared chunk by chunk (Options.BatchChunk
// objects each) and shipped as pipelined MsgIngestChunk frames with at
// most Options.StreamWindow chunks unacknowledged, so preparation overlaps
// transfer and server-side index building. The final acknowledgment — sent
// after the server's WAL flush — promises every chunk is applied and
// durable. A flight that fails mid-stream leaves an unknown prefix of the
// batch inserted; re-running it reports a duplicate-ID error (the engine
// rejects re-inserts), so callers retry with fresh IDs or distinct data.
func (c *EncryptedClient) InsertStreamContext(ctx context.Context, objs []metric.Object) (stats.Costs, error) {
	var costs stats.Costs
	start := time.Now()
	if len(objs) == 0 {
		finish(&costs, start)
		return costs, nil
	}
	chunk := c.opts.BatchChunk
	err := c.pool.withConn(ctx, func(conn *wire.CountingConn) error {
		return streamIngest(ctx, conn, wire.MsgIngestChunk, c.chunkCount(len(objs)), c.opts.StreamWindow,
			func(seq int) ([]byte, error) {
				sub := objs[seq*chunk : min((seq+1)*chunk, len(objs))]
				entries, err := c.prepareEntries(sub, &costs)
				if err != nil {
					return nil, err
				}
				return wire.IngestChunkReq{Seq: uint32(seq), Entries: entries}.Encode(), nil
			}, &costs)
	})
	if err != nil {
		return costs, err
	}
	finish(&costs, start)
	return costs, nil
}

// InsertStream is InsertStreamContext without a deadline.
func (c *PlainClient) InsertStream(objs []metric.Object) (stats.Costs, error) {
	return c.InsertStreamContext(context.Background(), objs)
}

// InsertStreamContext uploads raw objects in streaming mode: pipelined
// MsgIngestObjChunk frames windowed by the server's acks (the plain client
// takes no Options, so the chunk size and window are the encrypted
// client's defaults). There is no per-object preparation to overlap, but a
// large upload still interleaves transfer with server-side distance
// computation and index building instead of buffering the whole batch in
// one frame.
func (c *PlainClient) InsertStreamContext(ctx context.Context, objs []metric.Object) (stats.Costs, error) {
	var costs stats.Costs
	start := time.Now()
	if len(objs) == 0 {
		finish(&costs, start)
		return costs, nil
	}
	const chunk = 64 // Options.BatchChunk default
	const window = 4 // Options.StreamWindow default
	nChunks := (len(objs) + chunk - 1) / chunk
	err := c.pool.withConn(ctx, func(conn *wire.CountingConn) error {
		return streamIngest(ctx, conn, wire.MsgIngestObjChunk, nChunks, window,
			func(seq int) ([]byte, error) {
				sub := objs[seq*chunk : min((seq+1)*chunk, len(objs))]
				return wire.IngestObjChunkReq{Seq: uint32(seq), Objects: sub}.Encode(), nil
			}, &costs)
	})
	if err != nil {
		return costs, err
	}
	finish(&costs, start)
	return costs, nil
}

// InsertStream is InsertStreamContext without a deadline.
func (c *DirectClient) InsertStream(objs []metric.Object) (stats.Costs, error) {
	return c.InsertStreamContext(context.Background(), objs)
}

// InsertStreamContext performs the bulk insert chunk by chunk against the
// embedded engine: in-process there is no wire to overlap, but preparing
// and inserting in Options.BatchChunk-sized chunks bounds peak memory the
// same way the networked stream does and keeps the surface drop-in
// compatible across the backends. Chunks below the engine's bulk-build
// threshold take the incremental path — arrival order, and therefore index
// bytes, match a single InsertBulk of the whole batch either way.
func (c *DirectClient) InsertStreamContext(ctx context.Context, objs []metric.Object) (stats.Costs, error) {
	var costs stats.Costs
	start := time.Now()
	chunk := c.opts.BatchChunk
	for at := 0; at < len(objs); at += chunk {
		if err := ctx.Err(); err != nil {
			return costs, fmt.Errorf("core: direct ingest aborted: %w", err)
		}
		entries, err := c.prepareEntries(objs[at:min(at+chunk, len(objs))], &costs)
		if err != nil {
			return costs, err
		}
		engStart := time.Now()
		err = c.eng.InsertBulk(entries)
		costs.ServerTime += time.Since(engStart)
		if err != nil {
			return costs, err
		}
	}
	finish(&costs, start)
	return costs, nil
}
