package core

import (
	"context"
	"fmt"
	"time"

	"simcloud/internal/mindex"
	"simcloud/internal/pivot"
	"simcloud/internal/stats"
	"simcloud/internal/wire"
)

// The unified query path of the encrypted client: Search evaluates one
// Query of any kind, SearchBatch pipelines many. Both reveal to the server
// exactly what the corresponding legacy entry point revealed — a
// permutation or a (transformed) distance vector per query, nothing else —
// and both honor ctx end to end: every round trip runs under
// context-derived read/write deadlines, and the pipelined batch path
// checks for cancellation between chunks.

// queryDists computes the query–pivot distance vector (Algorithm 2 line 1),
// charging the client-side distance cost.
func (c *coder) queryDists(q Query, costs *stats.Costs) []float64 {
	distStart := time.Now()
	qDists := c.key.Pivots().Distances(q.Vec)
	costs.DistCompTime += time.Since(distStart)
	costs.DistComps += int64(c.key.Pivots().N())
	return qDists
}

// wireQuery translates one normalized Query (or the approximate first
// phase of a KindKNN query) into its wire form. KindRange reveals the
// transformed distance vector; the approximate kinds reveal the
// permutation (footrule ranking) or transformed distances (distance-sum
// ranking) — identical disclosure to the legacy single-query messages.
func (c *coder) wireQuery(nq Query, qDists []float64) wire.BatchQuery {
	switch nq.Kind {
	case KindRange:
		return wire.BatchQuery{
			Kind:   wire.BatchRange,
			Dists:  c.key.TransformDists(qDists),
			Radius: c.key.TransformRadius(nq.Radius),
		}
	case KindFirstCell:
		if c.opts.Ranking == mindex.RankDistSum {
			return wire.BatchQuery{Kind: wire.BatchFirstCell, Dists: c.key.TransformDists(qDists)}
		}
		return wire.BatchQuery{Kind: wire.BatchFirstCell, Perm: pivot.Permutation(qDists)}
	default: // KindApproxKNN, or the phase-1 approximate pass of KindKNN
		if c.opts.Ranking == mindex.RankDistSum {
			return wire.BatchQuery{
				Kind:     wire.BatchApproxDists,
				Dists:    c.key.TransformDists(qDists),
				CandSize: uint32(effCandSize(nq)),
			}
		}
		return wire.BatchQuery{
			Kind:     wire.BatchApproxPerm,
			Perm:     pivot.Permutation(qDists),
			CandSize: uint32(effCandSize(nq)),
		}
	}
}

// singleMessage maps a wire.BatchQuery onto the equivalent single-query
// protocol message, so a lone Search costs one slim frame instead of a
// batch envelope.
func singleMessage(wq wire.BatchQuery) (wire.MsgType, []byte) {
	switch wq.Kind {
	case wire.BatchRange:
		return wire.MsgRangeDists, wire.RangeDistsReq{Dists: wq.Dists, Radius: wq.Radius}.Encode()
	case wire.BatchApproxDists:
		return wire.MsgApproxDists, wire.ApproxDistsReq{Dists: wq.Dists, CandSize: wq.CandSize}.Encode()
	case wire.BatchFirstCell:
		return wire.MsgFirstCell, wire.FirstCellReq{Perm: wq.Perm, Dists: wq.Dists}.Encode()
	default:
		return wire.MsgApproxPerm, wire.ApproxPermReq{Perm: wq.Perm, CandSize: wq.CandSize}.Encode()
	}
}

// candidates runs one candidate-producing round trip under ctx.
func (c *EncryptedClient) candidates(ctx context.Context, wq wire.BatchQuery, costs *stats.Costs) ([]mindex.Entry, error) {
	reqType, payload := singleMessage(wq)
	respType, resp, err := c.roundTrip(ctx, reqType, payload, costs)
	if err != nil {
		return nil, err
	}
	if respType != wire.MsgCandidates {
		return nil, fmt.Errorf("core: unexpected %v response %v", reqType, respType)
	}
	m, err := wire.DecodeCandidatesResp(resp)
	if err != nil {
		return nil, err
	}
	creditServer(costs, m.ServerNanos)
	return m.Entries, nil
}

// Search evaluates one similarity query against the encrypted cloud. The
// candidate exchange and refinement mirror the legacy per-kind entry
// points exactly (identical disclosure, identical results); ctx adds what
// they lacked — its deadline bounds every round trip, and cancelling it
// interrupts an exchange blocked on a stalled server.
func (c *EncryptedClient) Search(ctx context.Context, q Query) ([]Result, stats.Costs, error) {
	var costs stats.Costs
	start := time.Now()
	nq, err := q.normalized()
	if err != nil {
		return nil, costs, err
	}
	out, err := c.searchOne(ctx, nq, &costs)
	if err != nil {
		return nil, costs, err
	}
	finish(&costs, start)
	return out, costs, nil
}

func (c *EncryptedClient) searchOne(ctx context.Context, nq Query, costs *stats.Costs) ([]Result, error) {
	if nq.Kind == KindKNN {
		return searchKNN(ctx, nq, costs, c.searchOne)
	}
	qDists := c.queryDists(nq, costs)
	cands, err := c.candidates(ctx, c.wireQuery(nq, qDists), costs)
	if err != nil {
		return nil, err
	}
	return c.finishQuery(nq, cands, costs)
}

// finishQuery applies the per-kind client-side epilogue to a candidate
// set: refinement (partial when RefineLimit is set), the radius filter for
// range queries, distance-sorting, and the K trim.
func (c *coder) finishQuery(nq Query, cands []mindex.Entry, costs *stats.Costs) ([]Result, error) {
	switch nq.Kind {
	case KindRange:
		refined, err := c.refine(nq.Vec, cands, costs)
		if err != nil {
			return nil, err
		}
		out := refined[:0]
		for _, res := range refined {
			if res.Dist <= nq.Radius {
				out = append(out, res)
			}
		}
		sortByDist(out)
		return out, nil
	default: // KindApproxKNN, KindFirstCell
		refined, err := c.refineLimited(nq.Vec, cands, nq.RefineLimit, costs)
		if err != nil {
			return nil, err
		}
		sortByDist(refined)
		if len(refined) > nq.K {
			refined = refined[:nq.K]
		}
		return refined, nil
	}
}

// knnRadius derives the phase-2 range radius ρk from the refined
// approximate answer: the k-th candidate distance upper-bounds the true
// k-th neighbor distance; fewer than k candidates fall back to everything.
func knnRadius(approx []Result, k int) float64 {
	if len(approx) >= k {
		return approx[len(approx)-1].Dist
	}
	return maxRadius
}

// searchKNN composes the two-phase precise k-NN of Section 4.2 —
// approximate pass for ρk, then the exact range query R(q, ρk), both under
// ctx — over any single-kind evaluator. The networked and in-process
// backends share this one composition, so the precision guarantee cannot
// silently diverge between them.
func searchKNN(ctx context.Context, nq Query, costs *stats.Costs,
	searchOne func(ctx context.Context, nq Query, costs *stats.Costs) ([]Result, error)) ([]Result, error) {
	approxQ := Query{Kind: KindApproxKNN, Vec: nq.Vec, K: nq.K, CandSize: nq.CandSize, TargetRecall: nq.TargetRecall}
	approx, err := searchOne(ctx, approxQ, costs)
	if err != nil {
		return nil, err
	}
	rho := knnRadius(approx, nq.K)
	within, err := searchOne(ctx, Query{Kind: KindRange, Vec: nq.Vec, Radius: rho}, costs)
	if err != nil {
		return nil, err
	}
	sortByDist(within)
	if len(within) > nq.K {
		within = within[:nq.K]
	}
	return within, nil
}

// SearchBatch evaluates many queries in pipelined chunks of
// Options.BatchChunk queries each, so the whole workload pays one
// round-trip latency plus streaming instead of one round trip per query.
// Kinds may be mixed freely; precise k-NN queries add one extra pipelined
// wave (their range phase, which needs the first wave's ρk). Results are
// per-query, in input order, refined exactly like Search. ctx cancellation
// is checked between chunks and interrupts blocked IO within one.
func (c *EncryptedClient) SearchBatch(ctx context.Context, qs []Query) ([][]Result, stats.Costs, error) {
	var costs stats.Costs
	start := time.Now()
	if len(qs) == 0 {
		finish(&costs, start)
		return nil, costs, nil
	}
	norm := make([]Query, len(qs))
	for i, q := range qs {
		nq, err := q.normalized()
		if err != nil {
			return nil, costs, fmt.Errorf("core: batch query %d: %w", i, err)
		}
		norm[i] = nq
	}
	wqs := make([]wire.BatchQuery, len(norm))
	for i, nq := range norm {
		wqs[i] = c.wireQuery(nq, c.queryDists(nq, &costs))
	}
	perQuery, err := c.batchCandidates(ctx, wqs, &costs, func(i int) int { return i })
	if err != nil {
		return nil, costs, err
	}

	out := make([][]Result, len(qs))
	var knnIdx []int     // queries needing the phase-2 range wave
	var knnRange []Query // their range queries, radius in original space
	var knnWave []wire.BatchQuery
	for i, nq := range norm {
		if nq.Kind == KindKNN {
			// Phase 1 is refined like an approximate query; ρk feeds wave 2.
			approx, err := c.refine(nq.Vec, perQuery[i], &costs)
			if err != nil {
				return nil, costs, err
			}
			sortByDist(approx)
			if len(approx) > nq.K {
				approx = approx[:nq.K]
			}
			rangeQ := Query{Kind: KindRange, Vec: nq.Vec, Radius: knnRadius(approx, nq.K)}
			knnIdx = append(knnIdx, i)
			knnRange = append(knnRange, rangeQ)
			knnWave = append(knnWave, c.wireQuery(rangeQ, c.queryDists(rangeQ, &costs)))
			continue
		}
		res, err := c.finishQuery(nq, perQuery[i], &costs)
		if err != nil {
			return nil, costs, err
		}
		out[i] = res
	}
	if len(knnIdx) > 0 {
		perKNN, err := c.batchCandidates(ctx, knnWave, &costs, func(i int) int { return knnIdx[i] })
		if err != nil {
			return nil, costs, err
		}
		for j, i := range knnIdx {
			// The range epilogue filters by the true ρk (the server pruned
			// conservatively in transformed space), then the K cut applies —
			// exactly the single-query KNN composition.
			within, err := c.finishQuery(knnRange[j], perKNN[j], &costs)
			if err != nil {
				return nil, costs, err
			}
			if len(within) > norm[i].K {
				within = within[:norm[i].K]
			}
			out[i] = within
		}
	}
	finish(&costs, start)
	return out, costs, nil
}

// batchCandidates ships the wire queries as pipelined MsgBatchQuery chunks
// over one leased connection and returns the per-query candidate sets.
// queryIndex maps a position in wqs back to the caller's query index — the
// identity for the first wave, the KNN subset mapping for the second — so
// a server error always names queries by the indices the caller knows.
func (c *EncryptedClient) batchCandidates(ctx context.Context, wqs []wire.BatchQuery, costs *stats.Costs, queryIndex func(int) int) ([][]mindex.Entry, error) {
	chunk := c.opts.BatchChunk
	reqs := make([]frame, 0, c.chunkCount(len(wqs)))
	for at := 0; at < len(wqs); at += chunk {
		reqs = append(reqs, frame{
			typ:     wire.MsgBatchQuery,
			payload: wire.BatchQueryReq{Queries: wqs[at:min(at+chunk, len(wqs))]}.Encode(),
		})
	}
	resps, err := c.exchange(ctx, reqs, costs)
	if err != nil {
		return nil, err
	}
	out := make([][]mindex.Entry, 0, len(wqs))
	for ci, r := range resps {
		if err := respError(r); err != nil {
			lo := ci * chunk
			// The server's "batch query N" counts within this chunk; the
			// wrapped range rebases it onto the caller's query indices.
			return nil, fmt.Errorf("core: query chunk %d (queries %d..%d): %w",
				ci, queryIndex(lo), queryIndex(min(lo+chunk, len(wqs))-1), err)
		}
		if r.typ != wire.MsgBatchCandidates {
			return nil, fmt.Errorf("core: unexpected batch query response %v", r.typ)
		}
		m, err := wire.DecodeBatchQueryResp(r.payload)
		if err != nil {
			return nil, err
		}
		creditServer(costs, m.ServerNanos)
		for _, cands := range m.Results {
			if len(out) >= len(wqs) {
				return nil, fmt.Errorf("core: server returned more batch results than queries")
			}
			out = append(out, cands)
		}
	}
	if len(out) != len(wqs) {
		return nil, fmt.Errorf("core: server returned %d batch results for %d queries", len(out), len(wqs))
	}
	return out, nil
}
