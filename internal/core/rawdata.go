package core

import (
	"context"
	"fmt"
	"time"

	"simcloud/internal/stats"
	"simcloud/internal/wire"
)

// Raw-data storage (Figure 1 of the paper): the original sensitive data —
// image files, full gene records — is stored encrypted and separately from
// the metric index; similarity search yields object IDs, which the
// authorized client then resolves against the raw-data storage and decrypts
// locally. The same AES key protects both stores, so "the raw data is
// always encrypted" (paper, note at the end of Section 2.3).

// UploadRaw is UploadRawContext without a deadline.
func (c *EncryptedClient) UploadRaw(items map[uint64][]byte) (stats.Costs, error) {
	return c.UploadRawContext(context.Background(), items)
}

// UploadRawContext encrypts and uploads raw-data blobs keyed by object ID.
func (c *EncryptedClient) UploadRawContext(ctx context.Context, items map[uint64][]byte) (stats.Costs, error) {
	var costs stats.Costs
	start := time.Now()
	wireItems := make([]wire.RawItem, 0, len(items))
	for id, blob := range items {
		encStart := time.Now()
		ct, err := c.key.Seal(blob)
		costs.EncryptTime += time.Since(encStart)
		if err != nil {
			return costs, fmt.Errorf("core: encrypting raw data %d: %w", id, err)
		}
		wireItems = append(wireItems, wire.RawItem{ID: id, Blob: ct})
	}
	respType, resp, err := c.roundTrip(ctx, wire.MsgPutRaw, wire.PutRawReq{Items: wireItems}.Encode(), &costs)
	if err != nil {
		return costs, err
	}
	if respType != wire.MsgAck {
		return costs, fmt.Errorf("core: unexpected raw upload response %v", respType)
	}
	ack, err := wire.DecodeAckResp(resp)
	if err != nil {
		return costs, err
	}
	creditServer(&costs, ack.ServerNanos)
	finish(&costs, start)
	return costs, nil
}

// FetchRaw is FetchRawContext without a deadline.
func (c *EncryptedClient) FetchRaw(ids []uint64) (map[uint64][]byte, stats.Costs, error) {
	return c.FetchRawContext(context.Background(), ids)
}

// FetchRawContext retrieves and decrypts the raw data of the given object
// IDs — the final step of the outsourced search flow after a similarity
// query has produced its answer set.
func (c *EncryptedClient) FetchRawContext(ctx context.Context, ids []uint64) (map[uint64][]byte, stats.Costs, error) {
	var costs stats.Costs
	start := time.Now()
	respType, resp, err := c.roundTrip(ctx, wire.MsgGetRaw, wire.GetRawReq{IDs: ids}.Encode(), &costs)
	if err != nil {
		return nil, costs, err
	}
	if respType != wire.MsgRawItems {
		return nil, costs, fmt.Errorf("core: unexpected raw fetch response %v", respType)
	}
	m, err := wire.DecodeRawItemsResp(resp)
	if err != nil {
		return nil, costs, err
	}
	creditServer(&costs, m.ServerNanos)
	out := make(map[uint64][]byte, len(m.Items))
	for _, it := range m.Items {
		decStart := time.Now()
		pt, err := c.key.Open(it.Blob)
		costs.DecryptTime += time.Since(decStart)
		if err != nil {
			return nil, costs, fmt.Errorf("core: decrypting raw data %d: %w", it.ID, err)
		}
		out[it.ID] = pt
	}
	finish(&costs, start)
	return out, costs, nil
}
