package core

import (
	"context"
	"fmt"
	"time"

	"simcloud/internal/metric"
	"simcloud/internal/mindex"
	"simcloud/internal/pivot"
	"simcloud/internal/stats"
	"simcloud/internal/wire"
)

// Deletion: the encrypted similarity cloud is mutable. To delete an object
// the client recomputes its pivot permutation (it holds the plaintext and
// the pivots) and ships {ID, permutation prefix} references — exactly the
// routing metadata the original insert revealed, so deletion leaks nothing
// new to the server. The server tombstones the entries immediately and
// reclaims the storage on its next compaction.

// deleteRefs performs the per-object client work of a delete: pivot
// distances (for the permutation) and the routing prefix. No encryption is
// involved — only the reference leaves the client.
func (c *coder) deleteRefs(objs []metric.Object, costs *stats.Costs) []mindex.Entry {
	pv := c.key.Pivots()
	refs := make([]mindex.Entry, len(objs))
	for i, o := range objs {
		distStart := time.Now()
		dists := pv.Distances(o.Vec)
		costs.DistCompTime += time.Since(distStart)
		costs.DistComps += int64(pv.N())
		refs[i] = mindex.Entry{ID: o.ID, Perm: pivot.Prefix(pivot.Permutation(dists), c.opts.PrefixLen)}
	}
	return refs
}

// Delete is DeleteContext without a deadline.
func (c *EncryptedClient) Delete(objs []metric.Object) (int, stats.Costs, error) {
	return c.DeleteContext(context.Background(), objs)
}

// DeleteContext removes the given objects from the encrypted index in one
// round trip under ctx. Objects the server does not know (or already
// deleted) are skipped; the count of entries actually deleted is returned.
func (c *EncryptedClient) DeleteContext(ctx context.Context, objs []metric.Object) (int, stats.Costs, error) {
	var costs stats.Costs
	start := time.Now()
	if len(objs) == 0 {
		finish(&costs, start)
		return 0, costs, nil
	}
	refs := c.deleteRefs(objs, &costs)
	respType, resp, err := c.roundTrip(ctx, wire.MsgDeleteEntries,
		wire.DeleteEntriesReq{Refs: refs}.Encode(), &costs)
	if err != nil {
		return 0, costs, err
	}
	if respType != wire.MsgDeleteAck {
		return 0, costs, fmt.Errorf("core: unexpected delete response %v", respType)
	}
	ack, err := wire.DecodeDeleteAckResp(resp)
	if err != nil {
		return 0, costs, err
	}
	creditServer(&costs, ack.ServerNanos)
	finish(&costs, start)
	return int(ack.Deleted), costs, nil
}

// DeleteBatch is DeleteBatchContext without a deadline.
func (c *EncryptedClient) DeleteBatch(objs []metric.Object) (int, stats.Costs, error) {
	return c.DeleteBatchContext(context.Background(), objs)
}

// DeleteBatchContext is Delete with chunked pipelining: the references are
// shipped as a sequence of MsgDeleteEntries frames of Options.BatchChunk
// references each, all in flight at once — the mutation mirror of
// InsertBatch, sharing its cost accounting (one round trip for the whole
// flight) and its context semantics.
func (c *EncryptedClient) DeleteBatchContext(ctx context.Context, objs []metric.Object) (int, stats.Costs, error) {
	var costs stats.Costs
	start := time.Now()
	if len(objs) == 0 {
		finish(&costs, start)
		return 0, costs, nil
	}
	refs := c.deleteRefs(objs, &costs)
	chunk := c.opts.BatchChunk
	reqs := make([]frame, 0, c.chunkCount(len(refs)))
	for at := 0; at < len(refs); at += chunk {
		reqs = append(reqs, frame{
			typ:     wire.MsgDeleteEntries,
			payload: wire.DeleteEntriesReq{Refs: refs[at:min(at+chunk, len(refs))]}.Encode(),
		})
	}
	resps, err := c.exchange(ctx, reqs, &costs)
	if err != nil {
		return 0, costs, err
	}
	deleted := 0
	for ci, r := range resps {
		if err := respError(r); err != nil {
			lo := ci * chunk
			return deleted, costs, fmt.Errorf("core: delete chunk %d (objects %d..%d): %w",
				ci, lo, min(lo+chunk, len(refs))-1, err)
		}
		if r.typ != wire.MsgDeleteAck {
			return deleted, costs, fmt.Errorf("core: unexpected batch delete response %v", r.typ)
		}
		ack, err := wire.DecodeDeleteAckResp(r.payload)
		if err != nil {
			return deleted, costs, err
		}
		deleted += int(ack.Deleted)
		creditServer(&costs, ack.ServerNanos)
	}
	finish(&costs, start)
	return deleted, costs, nil
}
