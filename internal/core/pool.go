package core

import (
	"context"
	"errors"
	"fmt"
	"net"

	"simcloud/internal/wire"
	"sync"
)

// ErrClientClosed reports an operation on a closed client.
var ErrClientClosed = errors.New("core: client is closed")

// connPool is the connection-lease pool behind the networked clients: each
// operation leases one connection for its exchange and returns it, so any
// number of goroutines can share one client without interleaving frames on
// a single socket. Connections are dialed on demand (through the dial
// function, which performs the hello handshake), kept idle between leases,
// and discarded the moment an exchange on them fails — a connection with a
// partial frame in flight is unusable, never poolable.
type connPool struct {
	dial func(ctx context.Context) (*wire.CountingConn, error)

	mu     sync.Mutex
	idle   []*wire.CountingConn
	leased map[*wire.CountingConn]struct{}
	closed bool
	dialed uint64 // connections ever dialed (monotonic)
	broken uint64 // connections discarded as broken (monotonic)
}

// PoolStats is a point-in-time view of a client's connection-lease pool —
// the per-upstream serving depth an operator watches: Leased is the number
// of exchanges in flight right now, Idle the warm connections ready for
// the next ones, and the monotonic Dialed/Discarded counters expose churn
// (a climbing Discarded means exchanges keep poisoning their connections).
type PoolStats struct {
	Idle      int    `json:"idle"`
	Leased    int    `json:"leased"`
	Dialed    uint64 `json:"dialed"`
	Discarded uint64 `json:"discarded"`
}

// stats reports the pool's current depth and lifetime counters.
func (p *connPool) stats() PoolStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return PoolStats{
		Idle:      len(p.idle),
		Leased:    len(p.leased),
		Dialed:    p.dialed,
		Discarded: p.broken,
	}
}

func newConnPool(dial func(ctx context.Context) (*wire.CountingConn, error)) *connPool {
	return &connPool{dial: dial, leased: make(map[*wire.CountingConn]struct{})}
}

// maxIdle caps the connections kept warm between leases: a burst of N
// concurrent operations may dial up to N connections, but only this many
// survive the burst — the rest close on release, so a long-lived client
// does not pin one socket per historical peak goroutine.
const maxIdle = 8

// get leases a connection: an idle one when available, a freshly dialed one
// otherwise. The dial respects ctx (deadline and cancellation).
func (p *connPool) get(ctx context.Context) (*wire.CountingConn, error) {
	if err := ctx.Err(); err != nil {
		// A dead context leases nothing — and, in particular, does not pop
		// a healthy idle connection only to condemn it unused.
		return nil, fmt.Errorf("%w: %w", wire.ErrNotStarted, err)
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, ErrClientClosed
	}
	if n := len(p.idle); n > 0 {
		conn := p.idle[n-1]
		p.idle = p.idle[:n-1]
		p.leased[conn] = struct{}{}
		p.mu.Unlock()
		return conn, nil
	}
	p.mu.Unlock()
	if p.dial == nil {
		return nil, errors.New("core: connection pool has no dialer")
	}
	conn, err := p.dial(ctx)
	if err != nil {
		return nil, err
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		conn.Close()
		return nil, ErrClientClosed
	}
	p.dialed++
	p.leased[conn] = struct{}{}
	p.mu.Unlock()
	return conn, nil
}

// put returns a leased connection. A broken connection (its exchange
// failed at the transport level, timed out, or was cancelled mid-frame) is
// closed instead of pooled; the next operation dials fresh.
func (p *connPool) put(conn *wire.CountingConn, broken bool) {
	p.mu.Lock()
	delete(p.leased, conn)
	if broken {
		p.broken++
	}
	if broken || p.closed || len(p.idle) >= maxIdle {
		p.mu.Unlock()
		conn.Close()
		return
	}
	p.idle = append(p.idle, conn)
	p.mu.Unlock()
}

// putIdle seeds the pool with an already-established connection (the eager
// first connection a Dial opens to fail fast on unreachable servers).
func (p *connPool) putIdle(conn *wire.CountingConn) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		conn.Close()
		return
	}
	p.dialed++
	p.idle = append(p.idle, conn)
}

// withConn runs one exchange on a leased connection: get, fn, put — with
// the broken-connection classification applied exactly once. Every
// networked operation (round trips and pipelined flights, encrypted and
// plain) goes through this helper, so the lease discipline cannot drift
// between call sites.
func (p *connPool) withConn(ctx context.Context, fn func(conn *wire.CountingConn) error) error {
	conn, err := p.get(ctx)
	if err != nil {
		return err
	}
	err = fn(conn)
	p.put(conn, connBroken(err))
	return err
}

// close closes every pooled connection — including leased ones, so
// operations blocked mid-read fail over promptly — and refuses further
// leases. Idempotent.
func (p *connPool) close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	idle := p.idle
	p.idle = nil
	leased := make([]*wire.CountingConn, 0, len(p.leased))
	for conn := range p.leased {
		leased = append(leased, conn)
	}
	p.mu.Unlock()
	var err error
	for _, conn := range idle {
		if cerr := conn.Close(); err == nil {
			err = cerr
		}
	}
	for _, conn := range leased {
		if cerr := conn.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// connBroken reports whether err poisons the connection it occurred on. An
// error frame the server answered (wire.RemoteError) leaves the connection
// perfectly framed and reusable, and an exchange aborted before any byte
// moved (wire.ErrNotStarted — the context was already dead) never touched
// it; everything else — transport errors, context interruptions, codec
// failures — means unknown bytes may be in flight, so the lease must not
// return to the pool.
func connBroken(err error) bool {
	if err == nil || errors.Is(err, wire.ErrNotStarted) {
		return false
	}
	var remote *wire.RemoteError
	return !errors.As(err, &remote)
}

// dialAndHello dials addr, performs the hello handshake under ctx, and
// verifies the server is the kind of deployment the caller can talk to.
// wantPivots > 0 additionally requires the server's index to be built over
// exactly that many pivots (the client key's pivot count — entries indexed
// under one pivot set are garbage under another). On ANY failure after the
// raw dial — handshake IO, a hello of the wrong shape, a mode or pivot
// mismatch — the connection is closed before the error returns: a failed
// Dial never leaks a socket.
func dialAndHello(ctx context.Context, addr string, wantMode uint8, wantPivots int) (*wire.CountingConn, error) {
	var d net.Dialer
	raw, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("core: dialing similarity cloud: %w", err)
	}
	conn := wire.NewCountingConn(raw)
	hello, err := helloHandshake(ctx, conn)
	if err == nil {
		err = checkHello(hello, wantMode, wantPivots)
	}
	if err != nil {
		conn.Close()
		return nil, err
	}
	return conn, nil
}

// helloHandshake runs the MsgHello round trip under ctx.
func helloHandshake(ctx context.Context, conn *wire.CountingConn) (wire.HelloResp, error) {
	disarm, err := wire.ArmContext(ctx, conn)
	if err != nil {
		return wire.HelloResp{}, err
	}
	hello, err := func() (wire.HelloResp, error) {
		if err := wire.WriteFrame(conn, wire.MsgHello, wire.HelloReq{}.Encode()); err != nil {
			return wire.HelloResp{}, fmt.Errorf("core: hello handshake: %w", err)
		}
		respType, payload, err := wire.ReadFrame(conn)
		if err != nil {
			return wire.HelloResp{}, fmt.Errorf("core: hello handshake: %w", err)
		}
		if respType == wire.MsgError {
			m, derr := wire.DecodeErrorResp(payload)
			if derr != nil {
				return wire.HelloResp{}, derr
			}
			return wire.HelloResp{}, &wire.RemoteError{Msg: m.Msg}
		}
		if respType != wire.MsgHelloAck {
			return wire.HelloResp{}, fmt.Errorf("core: unexpected hello response %v", respType)
		}
		return wire.DecodeHelloResp(payload)
	}()
	if err := disarm(err); err != nil {
		return wire.HelloResp{}, err
	}
	return hello, nil
}

// checkHello validates the handshake: the deployment mode must match the
// client flavor, and for encrypted clients the server's pivot count must
// match the key's.
func checkHello(hello wire.HelloResp, wantMode uint8, wantPivots int) error {
	if hello.Mode != wantMode {
		return fmt.Errorf("core: server runs the %s deployment, this client speaks the %s protocol",
			helloModeName(hello.Mode), helloModeName(wantMode))
	}
	if wantPivots > 0 && int(hello.NumPivots) != wantPivots {
		return fmt.Errorf("core: server index uses %d pivots, client key has %d — wrong key for this cloud",
			hello.NumPivots, wantPivots)
	}
	return nil
}

func helloModeName(mode uint8) string {
	switch mode {
	case wire.HelloModeEncrypted:
		return "encrypted"
	case wire.HelloModePlain:
		return "plain"
	}
	return fmt.Sprintf("mode(%d)", mode)
}
