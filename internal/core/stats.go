package core

import "simcloud/internal/engine"

// The unified stats surface: three ad-hoc shapes used to describe a
// deployment's health — engine.Stats (per-shard live/dead), mindex.Stats
// (tree shape) and the bare (hits, misses, ok) tuple of Index.CacheStats —
// and each consumer stitched them together by hand. Stats is the one
// facade over all of them plus the connection-lease pool, consumed by the
// gateway's /metrics endpoint, simbench and any operator tooling. Every
// section is plain data, JSON-encodable as-is.

// EngineStats describes the index engine's entry population: totals plus
// the per-shard decomposition (ShardLive[i]/ShardDead[i] describe shard i).
type EngineStats struct {
	Shards    int   `json:"shards"`
	Live      int   `json:"live"`
	Dead      int   `json:"dead"`
	ShardLive []int `json:"shard_live,omitempty"`
	ShardDead []int `json:"shard_dead,omitempty"`
}

// TreeStats describes the aggregated cell-tree shape across shards (counts
// sum; depth and bucket maxima take the max over shards).
type TreeStats struct {
	Leaves      int `json:"leaves"`
	InnerNodes  int `json:"inner_nodes"`
	MaxDepth    int `json:"max_depth"`
	MaxBucket   int `json:"max_bucket"`
	TotalBucket int `json:"total_bucket"`
}

// CacheStats reports the disk-bucket read-through cache counters summed
// over all disk-backed shards (all zero for memory storage).
type CacheStats struct {
	Hits   uint64 `json:"hits"`
	Misses uint64 `json:"misses"`
}

// IngestStats reports what the engine's insert paths have accepted since
// it opened: entries admitted, how many batches took the bottom-up bulk
// builder, and the encoded bytes those entries occupy in the bucket store.
// Zero for networked backends (the engine lives on the remote server).
type IngestStats struct {
	Entries uint64 `json:"entries"`
	Builds  uint64 `json:"builds"`
	Bytes   uint64 `json:"bytes"`
}

// HitRate returns hits / (hits + misses), or 0 before any lookup.
func (c CacheStats) HitRate() float64 {
	total := c.Hits + c.Misses
	if total == 0 {
		return 0
	}
	return float64(c.Hits) / float64(total)
}

// Stats is the unified operational view of one Searcher backend. Which
// sections carry data depends on the backend: an in-process DirectClient
// (or anything else exposing its engine) fills Engine/Tree/Cache; a
// networked client fills Pool (its lease-pool depth — the engine lives on
// the remote server). Collect it with CollectStats.
type Stats struct {
	Engine EngineStats `json:"engine"`
	Tree   TreeStats   `json:"tree"`
	Cache  CacheStats  `json:"cache"`
	Ingest IngestStats `json:"ingest"`
	Pool   PoolStats   `json:"pool"`
}

// engineStatser is satisfied by backends that can hand out their embedded
// engine (DirectClient; also any future server-side wrapper).
type engineStatser interface {
	Engine() *engine.ShardedIndex
}

// poolStatser is satisfied by the networked clients (their lease pool is
// the client-side resource worth watching).
type poolStatser interface {
	PoolStats() PoolStats
}

// backendStatser is satisfied by backends that render the unified shape
// themselves (KMeansDirect — its flat cell index is not a ShardedIndex).
type backendStatser interface {
	backendStats() Stats
}

// CollectStats gathers the unified stats a Searcher backend can report:
// engine-side sections when the backend embeds the engine in-process,
// lease-pool depth when it is networked. Unknown backends yield a zero
// Stats — collection never fails, it just reports less.
func CollectStats(s Searcher) Stats {
	var out Stats
	if es, ok := s.(engineStatser); ok {
		out.Merge(EngineStatsOf(es.Engine()))
	}
	if bs, ok := s.(backendStatser); ok {
		out.Merge(bs.backendStats())
	}
	if ps, ok := s.(poolStatser); ok {
		out.Pool = ps.PoolStats()
	}
	return out
}

// EngineStatsOf renders one engine's stats into the unified shape (the
// Pool section stays zero — an engine has no client pool).
func EngineStatsOf(eng *engine.ShardedIndex) Stats {
	es := eng.Stats()
	out := Stats{
		Engine: EngineStats{
			Shards: len(es.Shards),
			Live:   es.Total.Entries,
			Dead:   es.Total.Dead,
		},
		Tree: TreeStats{
			Leaves:      es.Total.Leaves,
			InnerNodes:  es.Total.InnerNodes,
			MaxDepth:    es.Total.MaxDepth,
			MaxBucket:   es.Total.MaxBucket,
			TotalBucket: es.Total.TotalBucket,
		},
		Cache: CacheStats{Hits: es.CacheHits, Misses: es.CacheMisses},
		Ingest: IngestStats{
			Entries: es.Ingest.Entries,
			Builds:  es.Ingest.Builds,
			Bytes:   es.Ingest.Bytes,
		},
	}
	if len(es.Shards) > 1 {
		out.Engine.ShardLive = make([]int, len(es.Shards))
		out.Engine.ShardDead = make([]int, len(es.Shards))
		for i, sh := range es.Shards {
			out.Engine.ShardLive[i] = sh.Entries
			out.Engine.ShardDead[i] = sh.Dead
		}
	}
	return out
}

// Merge folds other's engine-side sections into s (summing counts, taking
// maxima where the per-engine aggregation does) and adds the pool depths.
// A gateway fronting several tenants uses it to report fleet totals next
// to the per-tenant figures.
func (s *Stats) Merge(other Stats) {
	s.Engine.Shards += other.Engine.Shards
	s.Engine.Live += other.Engine.Live
	s.Engine.Dead += other.Engine.Dead
	s.Engine.ShardLive = append(s.Engine.ShardLive, other.Engine.ShardLive...)
	s.Engine.ShardDead = append(s.Engine.ShardDead, other.Engine.ShardDead...)
	s.Tree.Leaves += other.Tree.Leaves
	s.Tree.InnerNodes += other.Tree.InnerNodes
	s.Tree.MaxDepth = max(s.Tree.MaxDepth, other.Tree.MaxDepth)
	s.Tree.MaxBucket = max(s.Tree.MaxBucket, other.Tree.MaxBucket)
	s.Tree.TotalBucket += other.Tree.TotalBucket
	s.Cache.Hits += other.Cache.Hits
	s.Cache.Misses += other.Cache.Misses
	s.Ingest.Entries += other.Ingest.Entries
	s.Ingest.Builds += other.Ingest.Builds
	s.Ingest.Bytes += other.Ingest.Bytes
	s.Pool.Idle += other.Pool.Idle
	s.Pool.Leased += other.Pool.Leased
	s.Pool.Dialed += other.Pool.Dialed
	s.Pool.Discarded += other.Pool.Discarded
}
