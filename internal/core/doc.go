// Package core implements the Encrypted M-Index — the paper's contribution:
// client-side algorithms that let an authorized client, holding the secret
// key (pivot set + cipher key), use an untrusted similarity-cloud server as
// an efficient metric index without ever revealing plaintext objects,
// pivots, or the distance function.
//
// The division of labor follows Section 4.2:
//
//   - Insert (Algorithm 1): the client computes object–pivot distances,
//     derives the pivot permutation, encrypts the object, and ships
//     {permutation [, distances], ciphertext} to the server, which files it
//     into the M-Index cell tree.
//   - Search (Algorithm 2): the client computes query–pivot distances,
//     sends only the permutation (approximate k-NN) or the distance vector
//     (precise range) to the server, receives a pre-ranked candidate set of
//     encrypted objects, decrypts them, and refines by computing true
//     query–object distances.
//   - Precise k-NN: an approximate k-NN provides an upper bound ρk on the
//     k-th neighbor distance; the subsequent precise range query R(q, ρk)
//     guarantees the exact answer.
//
// # Key invariant: the server address is just an address
//
// A client built here never assumes what stands behind the address it
// dials: a bare server, a sharded server, or a cluster coordinator
// federating many servers (internal/cluster) all speak the identical
// protocol and return identically ordered candidate sets, so deployments
// scale from one process to many nodes without any client change — and
// without the client revealing anything more.
//
// Every operation returns a stats.Costs decomposition (client, server,
// communication time; encryption, decryption, distance-computation time;
// bytes on the wire), which the benchmark harness aggregates into the
// paper's tables.
package core
