// Package core implements the Encrypted M-Index — the paper's contribution:
// client-side algorithms that let an authorized client, holding the secret
// key (pivot set + cipher key), use an untrusted similarity-cloud server as
// an efficient metric index without ever revealing plaintext objects,
// pivots, or the distance function.
//
// The division of labor follows Section 4.2:
//
//   - Insert (Algorithm 1): the client computes object–pivot distances,
//     derives the pivot permutation, encrypts the object, and ships
//     {permutation [, distances], ciphertext} to the server, which files it
//     into the M-Index cell tree.
//   - Search (Algorithm 2): the client computes query–pivot distances,
//     sends only the permutation (approximate k-NN) or the distance vector
//     (precise range) to the server, receives a pre-ranked candidate set of
//     encrypted objects, decrypts them, and refines by computing true
//     query–object distances.
//   - Precise k-NN: an approximate k-NN provides an upper bound ρk on the
//     k-th neighbor distance; the subsequent precise range query R(q, ρk)
//     guarantees the exact answer.
//
// # The unified query surface
//
// One Query value (Kind ∈ {KindRange, KindKNN, KindApproxKNN,
// KindFirstCell} plus K, Radius, CandSize, RefineLimit) describes every
// similarity query, and the Searcher interface —
// Search(ctx, Query) / SearchBatch(ctx, []Query) — evaluates it on any of
// three backends:
//
//   - EncryptedClient: the paper's deployment. Client-side transform and
//     refinement; the server sees only pivot-space metadata.
//   - PlainClient: the non-encrypted baseline. The raw query travels to
//     the server, which refines everything itself.
//   - DirectClient: the index engine embedded in-process — the same coder
//     (transform + refinement) as EncryptedClient, no network.
//
// For the same key, configuration and collection, all three return
// identical result lists for every query kind (enforced by
// TestSearcherBackendEquivalence). The per-kind legacy methods (Range,
// KNN, ApproxKNN, ApproxKNNPartial, FirstCellKNN, ApproxKNNBatch) remain
// as thin wrappers over Search; see DESIGN.md §API for the deprecation
// policy.
//
// # Contexts, deadlines, concurrency
//
// Every operation takes (or has a ...Context variant taking) a
// context.Context that is honored end to end: the context's deadline
// becomes the connection's read/write deadline for each round trip
// (internal/wire.ArmContext), cancellation interrupts an exchange blocked
// on a stalled server, and the pipelined batch path additionally checks
// for cancellation between chunks. Context errors surface wrapped, so
// errors.Is(err, context.DeadlineExceeded) works.
//
// The networked clients are safe for concurrent use: operations lease
// connections from an internal pool (dialed on demand through the hello
// handshake, reused while healthy, discarded the moment an exchange on
// them fails), so goroutines sharing one client never interleave frames on
// one socket.
//
// # Key invariant: the server address is just an address
//
// A client built here never assumes what stands behind the address it
// dials: a bare server, a sharded server, or a cluster coordinator
// federating many servers (internal/cluster) all speak the identical
// protocol and return identically ordered candidate sets, so deployments
// scale from one process to many nodes without any client change — and
// without the client revealing anything more. The dial handshake verifies
// only what must hold for the conversation to be meaningful: deployment
// mode, and (for encrypted clients) the pivot count of the key.
//
// Every operation returns a stats.Costs decomposition (client, server,
// communication time; encryption, decryption, distance-computation time;
// bytes on the wire), which the benchmark harness aggregates into the
// paper's tables.
package core
