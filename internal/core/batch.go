package core

import (
	"context"
	"fmt"
	"time"

	"simcloud/internal/metric"
	"simcloud/internal/stats"
	"simcloud/internal/wire"
)

// Batched operations chunk their work into frames of Options.BatchChunk
// items and pipeline the chunks — every request frame is written back to
// back while a reader goroutine drains the responses — so k operations pay
// one round-trip latency plus streaming instead of k sequential round
// trips. The server processes pipelined frames in order (each one fanning
// out across its index shards), so responses match requests positionally.
//
// The whole flight runs on one leased connection under the caller's
// context: the context deadline bounds it, cancellation interrupts the
// blocked reader, and the writer checks for cancellation between chunks. A
// flight that dies mid-pipeline leaves its connection with unread frames
// in transit, so the lease is discarded, never pooled.

// frame is one protocol frame of a pipelined exchange.
type frame struct {
	typ     wire.MsgType
	payload []byte
}

// exchange leases a connection, pipelines the request frames over it under
// ctx, and returns the matching response frames in order. Wire time and
// bytes for the whole flight are accounted to costs as a single round trip
// (the chunks share the connection; latency is paid once).
func (c *EncryptedClient) exchange(ctx context.Context, reqs []frame, costs *stats.Costs) ([]frame, error) {
	var resps []frame
	err := c.pool.withConn(ctx, func(conn *wire.CountingConn) error {
		var err error
		resps, err = exchange(ctx, conn, reqs, costs)
		return err
	})
	return resps, err
}

// exchange pipelines reqs over conn under ctx.
func exchange(ctx context.Context, conn *wire.CountingConn, reqs []frame, costs *stats.Costs) ([]frame, error) {
	disarm, err := wire.ArmContext(ctx, conn)
	if err != nil {
		return nil, err
	}
	sentBefore, recvBefore := conn.BytesWritten(), conn.BytesRead()
	ioStart := time.Now()
	resps := make([]frame, len(reqs))
	readDone := make(chan error, 1)
	go func() {
		for i := range resps {
			typ, payload, err := wire.ReadFrame(conn)
			if err != nil {
				readDone <- err
				return
			}
			resps[i] = frame{typ: typ, payload: payload}
		}
		readDone <- nil
	}()
	var writeErr error
	for _, r := range reqs {
		// Cancellation check between chunks: a long flight stops writing
		// promptly instead of discovering the dead context at read time.
		if err := ctx.Err(); err != nil {
			writeErr = err
			break
		}
		if err := wire.WriteFrame(conn, r.typ, r.payload); err != nil {
			writeErr = err
			break
		}
	}
	if writeErr != nil {
		// The reader may be waiting for responses that will never come;
		// force its pending read to fail. ArmContext's disarm restores the
		// deadline after the single readDone receive below.
		conn.SetReadDeadline(time.Now())
	}
	readErr := <-readDone
	costs.CommTime += time.Since(ioStart)
	costs.BytesSent += conn.BytesWritten() - sentBefore
	costs.BytesReceived += conn.BytesRead() - recvBefore
	costs.RoundTrips++
	err = writeErr
	if err == nil {
		err = readErr
	}
	if err = disarm(err); err != nil {
		return nil, err
	}
	return resps, nil
}

// respError interprets a MsgError response frame (nil for any other type).
// Callers attach their own chunk context: a server error names the failing
// item by its index *within one frame*, which is meaningless to the user
// without the chunk's offset in the original batch.
func respError(r frame) error {
	if r.typ != wire.MsgError {
		return nil
	}
	m, derr := wire.DecodeErrorResp(r.payload)
	if derr != nil {
		return derr
	}
	return &wire.RemoteError{Msg: m.Msg}
}

// chunkCount returns the number of BatchChunk-sized chunks covering n.
func (c *coder) chunkCount(n int) int {
	return (n + c.opts.BatchChunk - 1) / c.opts.BatchChunk
}

// InsertBatch is InsertBatchContext without a deadline.
func (c *EncryptedClient) InsertBatch(objs []metric.Object) (stats.Costs, error) {
	return c.InsertBatchContext(context.Background(), objs)
}

// InsertBatchContext is Insert with chunked pipelining: the prepared
// entries are shipped as a sequence of MsgInsertEntries frames of
// Options.BatchChunk entries each, all in flight at once. On a sharded
// server every chunk is routed to the index shards in parallel, so ingest
// overlaps transfer, framing and indexing instead of serializing them.
func (c *EncryptedClient) InsertBatchContext(ctx context.Context, objs []metric.Object) (stats.Costs, error) {
	var costs stats.Costs
	start := time.Now()
	if len(objs) == 0 {
		finish(&costs, start)
		return costs, nil
	}
	entries, err := c.prepareEntries(objs, &costs)
	if err != nil {
		return costs, err
	}
	chunk := c.opts.BatchChunk
	reqs := make([]frame, 0, c.chunkCount(len(entries)))
	for at := 0; at < len(entries); at += chunk {
		reqs = append(reqs, frame{
			typ:     wire.MsgInsertEntries,
			payload: wire.InsertEntriesReq{Entries: entries[at:min(at+chunk, len(entries))]}.Encode(),
		})
	}
	resps, err := c.exchange(ctx, reqs, &costs)
	if err != nil {
		return costs, err
	}
	for ci, r := range resps {
		if err := respError(r); err != nil {
			lo := ci * chunk
			return costs, fmt.Errorf("core: insert chunk %d (objects %d..%d): %w",
				ci, lo, min(lo+chunk, len(entries))-1, err)
		}
		if r.typ != wire.MsgAck {
			return costs, fmt.Errorf("core: unexpected batch insert response %v", r.typ)
		}
		ack, err := wire.DecodeAckResp(r.payload)
		if err != nil {
			return costs, err
		}
		creditServer(&costs, ack.ServerNanos)
	}
	finish(&costs, start)
	return costs, nil
}

// ApproxKNNBatch evaluates approximate k-NN for many queries at once.
//
// Deprecated: use SearchBatch with KindApproxKNN queries, which adds
// context support and mixed query kinds.
func (c *EncryptedClient) ApproxKNNBatch(qs []metric.Vector, k, candSize int) ([][]Result, stats.Costs, error) {
	if k <= 0 || candSize <= 0 {
		return nil, stats.Costs{}, fmt.Errorf("core: k and candSize must be positive (k=%d, candSize=%d)", k, candSize)
	}
	queries := make([]Query, len(qs))
	for i, q := range qs {
		queries[i] = Query{Kind: KindApproxKNN, Vec: q, K: k, CandSize: candSize}
	}
	return c.SearchBatch(context.Background(), queries)
}
