package core

import (
	"fmt"
	"time"

	"simcloud/internal/metric"
	"simcloud/internal/mindex"
	"simcloud/internal/pivot"
	"simcloud/internal/stats"
	"simcloud/internal/wire"
)

// Batched operations: InsertBatch and ApproxKNNBatch chunk their work into
// frames of Options.BatchChunk items and pipeline the chunks — every
// request frame is written back to back while a reader goroutine drains the
// responses — so k operations pay one round-trip latency plus streaming
// instead of k sequential round trips. The server processes pipelined
// frames in order (each one fanning out across its index shards), so
// responses match requests positionally.

// frame is one protocol frame of a pipelined exchange.
type frame struct {
	typ     wire.MsgType
	payload []byte
}

// exchange pipelines the request frames over the connection and returns the
// matching response frames in order. Wire time and bytes for the whole
// flight are accounted to costs as a single round trip (the chunks share
// the connection; latency is paid once).
func (c *EncryptedClient) exchange(reqs []frame, costs *stats.Costs) ([]frame, error) {
	sentBefore, recvBefore := c.conn.BytesWritten(), c.conn.BytesRead()
	ioStart := time.Now()
	resps := make([]frame, len(reqs))
	readDone := make(chan error, 1)
	go func() {
		for i := range resps {
			typ, payload, err := wire.ReadFrame(c.conn)
			if err != nil {
				readDone <- err
				return
			}
			resps[i] = frame{typ: typ, payload: payload}
		}
		readDone <- nil
	}()
	var writeErr error
	for _, r := range reqs {
		if err := wire.WriteFrame(c.conn, r.typ, r.payload); err != nil {
			writeErr = err
			break
		}
	}
	if writeErr != nil {
		// The reader may be waiting for responses that will never come;
		// force its pending read to fail. The deadline is restored after
		// the single readDone receive below.
		c.conn.SetReadDeadline(time.Now())
	}
	readErr := <-readDone
	if writeErr != nil {
		c.conn.SetReadDeadline(time.Time{})
	}
	costs.CommTime += time.Since(ioStart)
	costs.BytesSent += c.conn.BytesWritten() - sentBefore
	costs.BytesReceived += c.conn.BytesRead() - recvBefore
	costs.RoundTrips++
	if writeErr != nil {
		return nil, writeErr
	}
	if readErr != nil {
		return nil, readErr
	}
	return resps, nil
}

// respError interprets a MsgError response frame (nil for any other type).
// Callers attach their own chunk context: a server error names the failing
// item by its index *within one frame*, which is meaningless to the user
// without the chunk's offset in the original batch.
func respError(r frame) error {
	if r.typ != wire.MsgError {
		return nil
	}
	m, derr := wire.DecodeErrorResp(r.payload)
	if derr != nil {
		return derr
	}
	return &wire.RemoteError{Msg: m.Msg}
}

// chunkCount returns the number of BatchChunk-sized chunks covering n.
func (c *EncryptedClient) chunkCount(n int) int {
	return (n + c.opts.BatchChunk - 1) / c.opts.BatchChunk
}

// InsertBatch is Insert with chunked pipelining: the prepared entries are
// shipped as a sequence of MsgInsertEntries frames of Options.BatchChunk
// entries each, all in flight at once. On a sharded server every chunk is
// routed to the index shards in parallel, so ingest overlaps transfer,
// framing and indexing instead of serializing them.
func (c *EncryptedClient) InsertBatch(objs []metric.Object) (stats.Costs, error) {
	var costs stats.Costs
	start := time.Now()
	if len(objs) == 0 {
		finish(&costs, start)
		return costs, nil
	}
	entries, err := c.prepareEntries(objs, &costs)
	if err != nil {
		return costs, err
	}
	chunk := c.opts.BatchChunk
	reqs := make([]frame, 0, c.chunkCount(len(entries)))
	for at := 0; at < len(entries); at += chunk {
		reqs = append(reqs, frame{
			typ:     wire.MsgInsertEntries,
			payload: wire.InsertEntriesReq{Entries: entries[at:min(at+chunk, len(entries))]}.Encode(),
		})
	}
	resps, err := c.exchange(reqs, &costs)
	if err != nil {
		return costs, err
	}
	for ci, r := range resps {
		if err := respError(r); err != nil {
			lo := ci * chunk
			return costs, fmt.Errorf("core: insert chunk %d (objects %d..%d): %w",
				ci, lo, min(lo+chunk, len(entries))-1, err)
		}
		if r.typ != wire.MsgAck {
			return costs, fmt.Errorf("core: unexpected batch insert response %v", r.typ)
		}
		ack, err := wire.DecodeAckResp(r.payload)
		if err != nil {
			return costs, err
		}
		creditServer(&costs, ack.ServerNanos)
	}
	finish(&costs, start)
	return costs, nil
}

// ApproxKNNBatch evaluates approximate k-NN for many queries at once: the
// queries are packed into MsgBatchQuery frames of Options.BatchChunk
// queries each and pipelined, so the whole workload pays one round-trip
// latency. Each query reveals exactly what its single-query counterpart
// reveals (permutation or transformed distance vector). Results are
// per-query, in input order, each refined locally like ApproxKNN.
func (c *EncryptedClient) ApproxKNNBatch(qs []metric.Vector, k, candSize int) ([][]Result, stats.Costs, error) {
	var costs stats.Costs
	start := time.Now()
	if k <= 0 || candSize <= 0 {
		return nil, costs, fmt.Errorf("core: k and candSize must be positive (k=%d, candSize=%d)", k, candSize)
	}
	if len(qs) == 0 {
		finish(&costs, start)
		return nil, costs, nil
	}

	queries := make([]wire.BatchQuery, len(qs))
	for i, q := range qs {
		distStart := time.Now()
		qDists := c.key.Pivots().Distances(q) // Alg. 2 line 1, per query
		costs.DistCompTime += time.Since(distStart)
		costs.DistComps += int64(c.key.Pivots().N())
		if c.opts.Ranking == mindex.RankDistSum {
			queries[i] = wire.BatchQuery{
				Kind:     wire.BatchApproxDists,
				Dists:    c.key.TransformDists(qDists),
				CandSize: uint32(candSize),
			}
		} else {
			queries[i] = wire.BatchQuery{
				Kind:     wire.BatchApproxPerm,
				Perm:     pivot.Permutation(qDists), // Alg. 2 line 8
				CandSize: uint32(candSize),
			}
		}
	}
	chunk := c.opts.BatchChunk
	reqs := make([]frame, 0, c.chunkCount(len(queries)))
	for at := 0; at < len(queries); at += chunk {
		reqs = append(reqs, frame{
			typ:     wire.MsgBatchQuery,
			payload: wire.BatchQueryReq{Queries: queries[at:min(at+chunk, len(queries))]}.Encode(),
		})
	}
	resps, err := c.exchange(reqs, &costs)
	if err != nil {
		return nil, costs, err
	}

	out := make([][]Result, 0, len(qs))
	for ci, r := range resps {
		if err := respError(r); err != nil {
			lo := ci * chunk
			// The server's "batch query N" counts within this chunk; the
			// wrapped range rebases it onto the caller's query indices.
			return nil, costs, fmt.Errorf("core: query chunk %d (queries %d..%d): %w",
				ci, lo, min(lo+chunk, len(qs))-1, err)
		}
		if r.typ != wire.MsgBatchCandidates {
			return nil, costs, fmt.Errorf("core: unexpected batch query response %v", r.typ)
		}
		m, err := wire.DecodeBatchQueryResp(r.payload)
		if err != nil {
			return nil, costs, err
		}
		creditServer(&costs, m.ServerNanos)
		for _, cands := range m.Results {
			qi := len(out)
			if qi >= len(qs) {
				return nil, costs, fmt.Errorf("core: server returned more batch results than queries")
			}
			refined, err := c.refine(qs[qi], cands, &costs)
			if err != nil {
				return nil, costs, err
			}
			sortByDist(refined)
			if len(refined) > k {
				refined = refined[:k]
			}
			out = append(out, refined)
		}
	}
	if len(out) != len(qs) {
		return nil, costs, fmt.Errorf("core: server returned %d batch results for %d queries", len(out), len(qs))
	}
	finish(&costs, start)
	return out, costs, nil
}
