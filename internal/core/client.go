package core

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"simcloud/internal/metric"
	"simcloud/internal/mindex"
	"simcloud/internal/pivot"
	"simcloud/internal/secret"
	"simcloud/internal/stats"
	"simcloud/internal/wire"
)

// Result is one refined similarity-search answer on the client.
type Result struct {
	ID     uint64
	Dist   float64
	Object metric.Object
}

// Options configures an encrypted client.
type Options struct {
	// PrefixLen is the permutation-prefix length stored with each object.
	// It must be at least the server index's MaxLevel. Shorter prefixes
	// shrink records and communication; the full permutation (NumPivots)
	// maximizes future re-partitioning freedom. Default: MaxLevel.
	PrefixLen int
	// StoreDists ships the full object–pivot distance vector with every
	// insert (the paper's "precise strategy", Algorithm 1 line 4). It
	// enables server-side pivot filtering for range queries at the price of
	// larger records. Default: permutations only (Algorithm 1 line 7).
	StoreDists bool
	// Ranking must match the server's configured cell-ranking strategy: it
	// decides whether approximate queries send the query permutation
	// (footrule) or the query distance vector (distance-sum).
	Ranking mindex.RankStrategy
	// MaxLevel mirrors the server index's MaxLevel (prefix floor).
	MaxLevel int
	// Workers parallelizes the client-side construction work (pivot
	// distances + encryption) across goroutines during Insert. Results are
	// identical for any value; reported EncryptTime/DistCompTime become
	// summed CPU time across workers. Default 1 (the paper's single-client
	// measurement setup).
	Workers int
	// BatchChunk is the number of queries (SearchBatch) or entries
	// (InsertBatch) carried per pipelined frame. Smaller chunks let the
	// server start answering earlier; larger chunks amortize more framing.
	// Default 64.
	BatchChunk int
	// StreamWindow is the maximum number of unacknowledged chunks a
	// streamed ingest (InsertStream) keeps in flight. A deeper window hides
	// more server build time behind client-side preparation at the price of
	// more unflushed state on a crashed connection. Default 4.
	StreamWindow int
}

func (o *Options) withDefaults() Options {
	out := *o
	if out.MaxLevel == 0 {
		out.MaxLevel = 8
	}
	if out.PrefixLen == 0 {
		out.PrefixLen = out.MaxLevel
	}
	if out.Ranking == 0 {
		out.Ranking = mindex.RankFootrule
	}
	if out.Workers == 0 {
		out.Workers = 1
	}
	if out.BatchChunk == 0 {
		out.BatchChunk = 64
	}
	if out.StreamWindow == 0 {
		out.StreamWindow = 4
	}
	return out
}

// coder performs the client-side half of the paper's algorithms — pivot
// distances, permutations, encryption on the way in; decryption and true
// distances on the way out. It is what makes a client "authorized": the
// networked EncryptedClient and the in-process DirectClient share it
// verbatim, so the two backends produce bit-identical entries and
// refinements.
type coder struct {
	key  *secret.Key
	opts Options
}

// Key returns the client's secret key.
func (c *coder) Key() *secret.Key { return c.key }

// EncryptedClient is an authorized client of the encrypted similarity
// cloud. It is safe for concurrent use: operations lease connections from
// an internal pool (dialed on demand, reused when idle), so N goroutines
// sharing one client run N concurrent exchanges instead of racing on one
// socket.
type EncryptedClient struct {
	coder
	addr string
	pool *connPool
}

var _ Searcher = (*EncryptedClient)(nil)

// DialEncrypted connects an authorized client holding key to the encrypted
// server at addr. Equivalent to DialEncryptedContext with the background
// context.
func DialEncrypted(addr string, key *secret.Key, opts Options) (*EncryptedClient, error) {
	return DialEncryptedContext(context.Background(), addr, key, opts)
}

// DialEncryptedContext connects an authorized client holding key to the
// encrypted server at addr. The first connection is established eagerly
// under ctx — including a hello handshake verifying the server runs the
// encrypted deployment over the key's pivot count — so an unreachable or
// incompatible cloud fails here, not on the first query. Further
// connections are dialed on demand as concurrent operations need them.
func DialEncryptedContext(ctx context.Context, addr string, key *secret.Key, opts Options) (*EncryptedClient, error) {
	o := opts.withDefaults()
	if o.PrefixLen < o.MaxLevel {
		return nil, fmt.Errorf("core: PrefixLen %d below index MaxLevel %d", o.PrefixLen, o.MaxLevel)
	}
	if o.PrefixLen > key.Pivots().N() {
		o.PrefixLen = key.Pivots().N()
	}
	c := &EncryptedClient{coder: coder{key: key, opts: o}, addr: addr}
	c.pool = newConnPool(func(ctx context.Context) (*wire.CountingConn, error) {
		return dialAndHello(ctx, addr, wire.HelloModeEncrypted, key.Pivots().N())
	})
	conn, err := c.pool.dial(ctx)
	if err != nil {
		return nil, err
	}
	c.pool.putIdle(conn)
	return c, nil
}

// Addr returns the server address the client dials.
func (c *EncryptedClient) Addr() string { return c.addr }

// PoolStats reports the connection-lease pool's current depth and lifetime
// dial/discard counters (see PoolStats; surfaced per backend through
// CollectStats and the gateway's /metrics endpoint).
func (c *EncryptedClient) PoolStats() PoolStats { return c.pool.stats() }

// Close releases every pooled connection, interrupting in-flight
// operations.
func (c *EncryptedClient) Close() error { return c.pool.close() }

// roundTrip sends one request and reads one response on a pooled
// connection, measuring the time spent on the wire and the bytes in both
// directions. ctx bounds the whole exchange.
func (c *EncryptedClient) roundTrip(ctx context.Context, t wire.MsgType, payload []byte, costs *stats.Costs) (wire.MsgType, []byte, error) {
	var respType wire.MsgType
	var resp []byte
	err := c.pool.withConn(ctx, func(conn *wire.CountingConn) error {
		var err error
		respType, resp, err = roundTrip(ctx, conn, t, payload, costs)
		return err
	})
	return respType, resp, err
}

// roundTrip is one request/response exchange on conn under ctx: the
// context's deadline becomes the connection's read/write deadline for this
// round trip, and cancellation interrupts a blocked read.
func roundTrip(ctx context.Context, conn *wire.CountingConn, t wire.MsgType, payload []byte, costs *stats.Costs) (wire.MsgType, []byte, error) {
	disarm, err := wire.ArmContext(ctx, conn)
	if err != nil {
		return 0, nil, err
	}
	sentBefore, recvBefore := conn.BytesWritten(), conn.BytesRead()
	ioStart := time.Now()
	respType, resp, err := func() (wire.MsgType, []byte, error) {
		if err := wire.WriteFrame(conn, t, payload); err != nil {
			return 0, nil, err
		}
		return wire.ReadFrame(conn)
	}()
	ioTime := time.Since(ioStart)
	costs.CommTime += ioTime // server time is subtracted by the caller
	costs.BytesSent += conn.BytesWritten() - sentBefore
	costs.BytesReceived += conn.BytesRead() - recvBefore
	costs.RoundTrips++
	if err = disarm(err); err != nil {
		return 0, nil, err
	}
	if respType == wire.MsgError {
		m, derr := wire.DecodeErrorResp(resp)
		if derr != nil {
			return 0, nil, derr
		}
		return 0, nil, &wire.RemoteError{Msg: m.Msg}
	}
	return respType, resp, nil
}

// creditServer moves the server-reported processing time out of the
// measured wire time.
func creditServer(costs *stats.Costs, serverNanos uint64) {
	st := time.Duration(serverNanos)
	costs.ServerTime += st
	costs.CommTime -= st
	if costs.CommTime < 0 {
		costs.CommTime = 0
	}
}

// prepareEntry performs the per-object client work of Algorithm 1: pivot
// distances, permutation prefix, encryption.
func (c *coder) prepareEntry(o metric.Object, costs *stats.Costs) (mindex.Entry, error) {
	pv := c.key.Pivots()
	distStart := time.Now()
	dists := pv.Distances(o.Vec) // Alg. 1 line 1
	costs.DistCompTime += time.Since(distStart)
	costs.DistComps += int64(pv.N())

	perm := pivot.Permutation(dists) // Alg. 1 line 6

	encStart := time.Now()
	payload, err := c.key.EncryptObject(o) // Alg. 1 line 8
	costs.EncryptTime += time.Since(encStart)
	if err != nil {
		return mindex.Entry{}, fmt.Errorf("core: encrypting object %d: %w", o.ID, err)
	}
	e := mindex.Entry{
		ID:      o.ID,
		Perm:    pivot.Prefix(perm, c.opts.PrefixLen),
		Payload: payload,
	}
	if c.opts.StoreDists {
		// Alg. 1 line 4 (precise strategy). When the key carries a
		// distribution-hiding transformation, the server receives only
		// transformed distances (privacy level 4; see internal/transform).
		e.Dists = c.key.TransformDists(dists)
	}
	return e, nil
}

// prepareEntries runs the per-object client work of Algorithm 1 over the
// whole batch, across Options.Workers goroutines when configured.
func (c *coder) prepareEntries(objs []metric.Object, costs *stats.Costs) ([]mindex.Entry, error) {
	entries := make([]mindex.Entry, len(objs))
	if c.opts.Workers <= 1 || len(objs) < 2 {
		for i, o := range objs {
			e, err := c.prepareEntry(o, costs)
			if err != nil {
				return nil, err
			}
			entries[i] = e
		}
		return entries, nil
	}
	workers := min(c.opts.Workers, len(objs))
	type workerResult struct {
		costs stats.Costs
		err   error
	}
	results := make([]workerResult, workers)
	var wg sync.WaitGroup
	for w := range workers {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r := &results[w]
			for i := w; i < len(objs); i += workers {
				e, err := c.prepareEntry(objs[i], &r.costs)
				if err != nil {
					r.err = err
					return
				}
				entries[i] = e
			}
		}()
	}
	wg.Wait()
	for _, r := range results {
		if r.err != nil {
			return nil, r.err
		}
		costs.Accumulate(r.costs)
	}
	return entries, nil
}

// Insert performs the encrypted bulk insert of Algorithm 1 (see
// InsertContext) without a deadline.
func (c *EncryptedClient) Insert(objs []metric.Object) (stats.Costs, error) {
	return c.InsertContext(context.Background(), objs)
}

// InsertContext performs the encrypted bulk insert of Algorithm 1: per
// object, the client computes pivot distances, derives the permutation
// prefix, encrypts the object, and ships the entries to the server. ctx
// bounds the round trip.
func (c *EncryptedClient) InsertContext(ctx context.Context, objs []metric.Object) (stats.Costs, error) {
	var costs stats.Costs
	start := time.Now()
	entries, err := c.prepareEntries(objs, &costs)
	if err != nil {
		return costs, err
	}
	respType, resp, err := c.roundTrip(ctx, wire.MsgInsertEntries, wire.InsertEntriesReq{Entries: entries}.Encode(), &costs)
	if err != nil {
		return costs, err
	}
	if respType != wire.MsgAck {
		return costs, fmt.Errorf("core: unexpected insert response %v", respType)
	}
	ack, err := wire.DecodeAckResp(resp)
	if err != nil {
		return costs, err
	}
	creditServer(&costs, ack.ServerNanos)
	finish(&costs, start)
	return costs, nil
}

// finish completes the cost decomposition: client time is everything not
// spent on the wire, matching the paper's "data encryption/decryption,
// distance computations, and processing overhead".
func finish(costs *stats.Costs, start time.Time) {
	costs.Overall = time.Since(start)
	costs.ClientTime = costs.Overall - costs.ServerTime - costs.CommTime
	if costs.ClientTime < 0 {
		costs.ClientTime = 0
	}
}

// refine decrypts candidate entries and computes their true distances to
// the query (Algorithm 2, lines 11–16). The two phases run batched —
// decrypt everything, then compute all distances — so the cost
// decomposition pays one clock read per phase instead of two per candidate:
// at the paper's candidate-set sizes the per-candidate clock calls were
// themselves a measurable distortion of exactly the client-side times the
// Tables report.
func (c *coder) refine(q metric.Vector, cands []mindex.Entry, costs *stats.Costs) ([]Result, error) {
	dist := c.key.Pivots().Dist
	out := make([]Result, 0, len(cands))
	decStart := time.Now()
	for _, e := range cands {
		o, err := c.key.DecryptObject(e.Payload)
		if err != nil {
			costs.DecryptTime += time.Since(decStart)
			return nil, fmt.Errorf("core: decrypting candidate %d: %w", e.ID, err)
		}
		out = append(out, Result{ID: o.ID, Object: o})
	}
	costs.DecryptTime += time.Since(decStart)
	distStart := time.Now()
	for i := range out {
		out[i].Dist = dist.Dist(q, out[i].Object.Vec)
	}
	costs.DistCompTime += time.Since(distStart)
	costs.DistComps += int64(len(out))
	costs.Candidates += int64(len(cands))
	return out, nil
}

// refineLimited refines at most limit candidates (0 = everything), keeping
// the pre-ranked most promising prefix; Candidates is accounted as the
// number transferred, not merely refined, matching the paper's
// communication-cost measure.
func (c *coder) refineLimited(q metric.Vector, cands []mindex.Entry, limit int, costs *stats.Costs) ([]Result, error) {
	received := len(cands)
	if limit > 0 && len(cands) > limit {
		cands = cands[:limit] // pre-ranked: keep the most promising prefix
	}
	refined, err := c.refine(q, cands, costs)
	if err != nil {
		return nil, err
	}
	costs.Candidates += int64(received - len(cands))
	return refined, nil
}

// Legacy query surface. These methods predate the unified Query API and
// remain as thin wrappers over Search so existing callers keep working;
// new code should build a Query and call Search / SearchBatch, which add
// context support (deadlines, cancellation) these entry points lack. See
// DESIGN.md §API for the deprecation policy.

// Range evaluates the precise range query R(q, r): the client reveals only
// the query–pivot distance vector; the server returns pivot-filtered
// candidates that the client decrypts and refines.
//
// Deprecated: use Search with KindRange.
func (c *EncryptedClient) Range(q metric.Vector, r float64) ([]Result, stats.Costs, error) {
	return c.Search(context.Background(), Query{Kind: KindRange, Vec: q, Radius: r})
}

// ApproxKNN evaluates the approximate k-NN query of Algorithm 2: the client
// reveals the query permutation (footrule ranking) or distance vector
// (distance-sum ranking) plus the requested candidate-set size, then refines
// the returned pre-ranked candidates.
//
// Deprecated: use Search with KindApproxKNN.
func (c *EncryptedClient) ApproxKNN(q metric.Vector, k, candSize int) ([]Result, stats.Costs, error) {
	if k <= 0 || candSize <= 0 {
		return nil, stats.Costs{}, fmt.Errorf("core: k and candSize must be positive (k=%d, candSize=%d)", k, candSize)
	}
	return c.Search(context.Background(), Query{Kind: KindApproxKNN, Vec: q, K: k, CandSize: candSize})
}

// ApproxKNNPartial is ApproxKNN with client-side partial refinement: the
// candidate set arrives pre-ranked by cell promise, so the client "can
// choose to decrypt and compute distances only for candidates with the
// highest rank to speed up the search process" (Section 4.2). Only the
// first refineLimit candidates are decrypted and refined; the remainder is
// paid for in communication but not in decryption or distance time.
//
// Deprecated: use Search with KindApproxKNN and RefineLimit.
func (c *EncryptedClient) ApproxKNNPartial(q metric.Vector, k, candSize, refineLimit int) ([]Result, stats.Costs, error) {
	if k <= 0 || candSize <= 0 || refineLimit <= 0 {
		return nil, stats.Costs{}, fmt.Errorf("core: k, candSize and refineLimit must be positive (k=%d candSize=%d refineLimit=%d)",
			k, candSize, refineLimit)
	}
	return c.Search(context.Background(),
		Query{Kind: KindApproxKNN, Vec: q, K: k, CandSize: candSize, RefineLimit: refineLimit})
}

// KNN evaluates the precise k-NN query as Section 4.2 prescribes: an
// approximate k-NN determines ρk, the distance to the k-th candidate
// neighbor (an upper bound on the true k-th neighbor distance), and the
// precise range query R(q, ρk) then guarantees completeness. Two round
// trips; candSize tunes the first phase.
//
// Deprecated: use Search with KindKNN.
func (c *EncryptedClient) KNN(q metric.Vector, k, candSize int) ([]Result, stats.Costs, error) {
	if k <= 0 || candSize <= 0 {
		return nil, stats.Costs{}, fmt.Errorf("core: k and candSize must be positive (k=%d, candSize=%d)", k, candSize)
	}
	return c.Search(context.Background(), Query{Kind: KindKNN, Vec: q, K: k, CandSize: candSize})
}

// FirstCellKNN evaluates the restricted 1-cell approximate k-NN of the
// paper's Section 5.4 comparison: the server contributes exactly one
// Voronoi cell as the candidate set.
//
// Deprecated: use Search with KindFirstCell.
func (c *EncryptedClient) FirstCellKNN(q metric.Vector, k int) ([]Result, stats.Costs, error) {
	if k <= 0 {
		return nil, stats.Costs{}, fmt.Errorf("core: k must be positive, got %d", k)
	}
	return c.Search(context.Background(), Query{Kind: KindFirstCell, Vec: q, K: k})
}

// maxRadius is an effectively unbounded query radius.
const maxRadius = 1e300

func sortByDist(rs []Result) {
	sort.Slice(rs, func(i, j int) bool {
		if rs[i].Dist != rs[j].Dist {
			return rs[i].Dist < rs[j].Dist
		}
		return rs[i].ID < rs[j].ID
	})
}
