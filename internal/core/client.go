package core

import (
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"simcloud/internal/metric"
	"simcloud/internal/mindex"
	"simcloud/internal/pivot"
	"simcloud/internal/secret"
	"simcloud/internal/stats"
	"simcloud/internal/wire"
)

// Result is one refined similarity-search answer on the client.
type Result struct {
	ID     uint64
	Dist   float64
	Object metric.Object
}

// Options configures an encrypted client.
type Options struct {
	// PrefixLen is the permutation-prefix length stored with each object.
	// It must be at least the server index's MaxLevel. Shorter prefixes
	// shrink records and communication; the full permutation (NumPivots)
	// maximizes future re-partitioning freedom. Default: MaxLevel.
	PrefixLen int
	// StoreDists ships the full object–pivot distance vector with every
	// insert (the paper's "precise strategy", Algorithm 1 line 4). It
	// enables server-side pivot filtering for range queries at the price of
	// larger records. Default: permutations only (Algorithm 1 line 7).
	StoreDists bool
	// Ranking must match the server's configured cell-ranking strategy: it
	// decides whether approximate queries send the query permutation
	// (footrule) or the query distance vector (distance-sum).
	Ranking mindex.RankStrategy
	// MaxLevel mirrors the server index's MaxLevel (prefix floor).
	MaxLevel int
	// Workers parallelizes the client-side construction work (pivot
	// distances + encryption) across goroutines during Insert. Results are
	// identical for any value; reported EncryptTime/DistCompTime become
	// summed CPU time across workers. Default 1 (the paper's single-client
	// measurement setup).
	Workers int
	// BatchChunk is the number of queries (ApproxKNNBatch) or entries
	// (InsertBatch) carried per pipelined frame. Smaller chunks let the
	// server start answering earlier; larger chunks amortize more framing.
	// Default 64.
	BatchChunk int
}

func (o *Options) withDefaults() Options {
	out := *o
	if out.MaxLevel == 0 {
		out.MaxLevel = 8
	}
	if out.PrefixLen == 0 {
		out.PrefixLen = out.MaxLevel
	}
	if out.Ranking == 0 {
		out.Ranking = mindex.RankFootrule
	}
	if out.Workers == 0 {
		out.Workers = 1
	}
	if out.BatchChunk == 0 {
		out.BatchChunk = 64
	}
	return out
}

// EncryptedClient is an authorized client of the encrypted similarity
// cloud. It is not safe for concurrent use; open one client per goroutine
// (each holds its own connection, as in the paper's client–server setup).
type EncryptedClient struct {
	conn *wire.CountingConn
	key  *secret.Key
	opts Options
}

// DialEncrypted connects an authorized client holding key to the encrypted
// server at addr.
func DialEncrypted(addr string, key *secret.Key, opts Options) (*EncryptedClient, error) {
	o := opts.withDefaults()
	if o.PrefixLen < o.MaxLevel {
		return nil, fmt.Errorf("core: PrefixLen %d below index MaxLevel %d", o.PrefixLen, o.MaxLevel)
	}
	if o.PrefixLen > key.Pivots().N() {
		o.PrefixLen = key.Pivots().N()
	}
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("core: dialing similarity cloud: %w", err)
	}
	return &EncryptedClient{conn: wire.NewCountingConn(conn), key: key, opts: o}, nil
}

// Close releases the connection.
func (c *EncryptedClient) Close() error { return c.conn.Close() }

// Key returns the client's secret key.
func (c *EncryptedClient) Key() *secret.Key { return c.key }

// roundTrip sends one request and reads one response, measuring the time
// spent on the wire and the bytes in both directions.
func (c *EncryptedClient) roundTrip(t wire.MsgType, payload []byte, costs *stats.Costs) (wire.MsgType, []byte, error) {
	return roundTrip(c.conn, t, payload, costs)
}

func roundTrip(conn *wire.CountingConn, t wire.MsgType, payload []byte, costs *stats.Costs) (wire.MsgType, []byte, error) {
	sentBefore, recvBefore := conn.BytesWritten(), conn.BytesRead()
	ioStart := time.Now()
	if err := wire.WriteFrame(conn, t, payload); err != nil {
		return 0, nil, err
	}
	respType, resp, err := wire.ReadFrame(conn)
	ioTime := time.Since(ioStart)
	costs.CommTime += ioTime // server time is subtracted by the caller
	costs.BytesSent += conn.BytesWritten() - sentBefore
	costs.BytesReceived += conn.BytesRead() - recvBefore
	costs.RoundTrips++
	if err != nil {
		return 0, nil, err
	}
	if respType == wire.MsgError {
		m, derr := wire.DecodeErrorResp(resp)
		if derr != nil {
			return 0, nil, derr
		}
		return 0, nil, &wire.RemoteError{Msg: m.Msg}
	}
	return respType, resp, nil
}

// creditServer moves the server-reported processing time out of the
// measured wire time.
func creditServer(costs *stats.Costs, serverNanos uint64) {
	st := time.Duration(serverNanos)
	costs.ServerTime += st
	costs.CommTime -= st
	if costs.CommTime < 0 {
		costs.CommTime = 0
	}
}

// prepareEntry performs the per-object client work of Algorithm 1: pivot
// distances, permutation prefix, encryption.
func (c *EncryptedClient) prepareEntry(o metric.Object, costs *stats.Costs) (mindex.Entry, error) {
	pv := c.key.Pivots()
	distStart := time.Now()
	dists := pv.Distances(o.Vec) // Alg. 1 line 1
	costs.DistCompTime += time.Since(distStart)
	costs.DistComps += int64(pv.N())

	perm := pivot.Permutation(dists) // Alg. 1 line 6

	encStart := time.Now()
	payload, err := c.key.EncryptObject(o) // Alg. 1 line 8
	costs.EncryptTime += time.Since(encStart)
	if err != nil {
		return mindex.Entry{}, fmt.Errorf("core: encrypting object %d: %w", o.ID, err)
	}
	e := mindex.Entry{
		ID:      o.ID,
		Perm:    pivot.Prefix(perm, c.opts.PrefixLen),
		Payload: payload,
	}
	if c.opts.StoreDists {
		// Alg. 1 line 4 (precise strategy). When the key carries a
		// distribution-hiding transformation, the server receives only
		// transformed distances (privacy level 4; see internal/transform).
		e.Dists = c.key.TransformDists(dists)
	}
	return e, nil
}

// prepareEntries runs the per-object client work of Algorithm 1 over the
// whole batch, across Options.Workers goroutines when configured.
func (c *EncryptedClient) prepareEntries(objs []metric.Object, costs *stats.Costs) ([]mindex.Entry, error) {
	entries := make([]mindex.Entry, len(objs))
	if c.opts.Workers <= 1 || len(objs) < 2 {
		for i, o := range objs {
			e, err := c.prepareEntry(o, costs)
			if err != nil {
				return nil, err
			}
			entries[i] = e
		}
		return entries, nil
	}
	workers := min(c.opts.Workers, len(objs))
	type workerResult struct {
		costs stats.Costs
		err   error
	}
	results := make([]workerResult, workers)
	var wg sync.WaitGroup
	for w := range workers {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r := &results[w]
			for i := w; i < len(objs); i += workers {
				e, err := c.prepareEntry(objs[i], &r.costs)
				if err != nil {
					r.err = err
					return
				}
				entries[i] = e
			}
		}()
	}
	wg.Wait()
	for _, r := range results {
		if r.err != nil {
			return nil, r.err
		}
		costs.Accumulate(r.costs)
	}
	return entries, nil
}

// Insert performs the encrypted bulk insert of Algorithm 1: per object, the
// client computes pivot distances, derives the permutation prefix, encrypts
// the object, and ships the entries to the server.
func (c *EncryptedClient) Insert(objs []metric.Object) (stats.Costs, error) {
	var costs stats.Costs
	start := time.Now()
	entries, err := c.prepareEntries(objs, &costs)
	if err != nil {
		return costs, err
	}
	respType, resp, err := c.roundTrip(wire.MsgInsertEntries, wire.InsertEntriesReq{Entries: entries}.Encode(), &costs)
	if err != nil {
		return costs, err
	}
	if respType != wire.MsgAck {
		return costs, fmt.Errorf("core: unexpected insert response %v", respType)
	}
	ack, err := wire.DecodeAckResp(resp)
	if err != nil {
		return costs, err
	}
	creditServer(&costs, ack.ServerNanos)
	finish(&costs, start)
	return costs, nil
}

// finish completes the cost decomposition: client time is everything not
// spent on the wire, matching the paper's "data encryption/decryption,
// distance computations, and processing overhead".
func finish(costs *stats.Costs, start time.Time) {
	costs.Overall = time.Since(start)
	costs.ClientTime = costs.Overall - costs.ServerTime - costs.CommTime
	if costs.ClientTime < 0 {
		costs.ClientTime = 0
	}
}

// refine decrypts candidate entries and computes their true distances to
// the query (Algorithm 2, lines 11–16); limit < 0 refines everything.
func (c *EncryptedClient) refine(q metric.Vector, cands []mindex.Entry, costs *stats.Costs) ([]Result, error) {
	dist := c.key.Pivots().Dist
	out := make([]Result, 0, len(cands))
	for _, e := range cands {
		decStart := time.Now()
		o, err := c.key.DecryptObject(e.Payload)
		costs.DecryptTime += time.Since(decStart)
		if err != nil {
			return nil, fmt.Errorf("core: decrypting candidate %d: %w", e.ID, err)
		}
		distStart := time.Now()
		d := dist.Dist(q, o.Vec)
		costs.DistCompTime += time.Since(distStart)
		costs.DistComps++
		out = append(out, Result{ID: o.ID, Dist: d, Object: o})
	}
	costs.Candidates += int64(len(cands))
	return out, nil
}

// Range evaluates the precise range query R(q, r): the client reveals only
// the query–pivot distance vector; the server returns pivot-filtered
// candidates that the client decrypts and refines.
func (c *EncryptedClient) Range(q metric.Vector, r float64) ([]Result, stats.Costs, error) {
	var costs stats.Costs
	start := time.Now()
	distStart := time.Now()
	qDists := c.key.Pivots().Distances(q) // Alg. 2 line 1
	costs.DistCompTime += time.Since(distStart)
	costs.DistComps += int64(c.key.Pivots().N())

	// Under a distribution-hiding transformation the server prunes in
	// transformed space with a slope-scaled radius — a candidate superset,
	// so exactness survives the client-side refinement below.
	respType, resp, err := c.roundTrip(wire.MsgRangeDists,
		wire.RangeDistsReq{
			Dists:  c.key.TransformDists(qDists),
			Radius: c.key.TransformRadius(r),
		}.Encode(), &costs)
	if err != nil {
		return nil, costs, err
	}
	if respType != wire.MsgCandidates {
		return nil, costs, fmt.Errorf("core: unexpected range response %v", respType)
	}
	m, err := wire.DecodeCandidatesResp(resp)
	if err != nil {
		return nil, costs, err
	}
	creditServer(&costs, m.ServerNanos)
	refined, err := c.refine(q, m.Entries, &costs)
	if err != nil {
		return nil, costs, err
	}
	out := refined[:0]
	for _, res := range refined {
		if res.Dist <= r {
			out = append(out, res)
		}
	}
	sortByDist(out)
	finish(&costs, start)
	return out, costs, nil
}

// ApproxKNN evaluates the approximate k-NN query of Algorithm 2: the client
// reveals the query permutation (footrule ranking) or distance vector
// (distance-sum ranking) plus the requested candidate-set size, then refines
// the returned pre-ranked candidates.
func (c *EncryptedClient) ApproxKNN(q metric.Vector, k, candSize int) ([]Result, stats.Costs, error) {
	var costs stats.Costs
	start := time.Now()
	if k <= 0 || candSize <= 0 {
		return nil, costs, fmt.Errorf("core: k and candSize must be positive (k=%d, candSize=%d)", k, candSize)
	}
	distStart := time.Now()
	qDists := c.key.Pivots().Distances(q) // Alg. 2 line 1
	costs.DistCompTime += time.Since(distStart)
	costs.DistComps += int64(c.key.Pivots().N())

	var reqType wire.MsgType
	var payload []byte
	if c.opts.Ranking == mindex.RankDistSum {
		// Transformed distances preserve the permutation and the relative
		// cell ordering, so the distance-sum request also hides raw values.
		reqType, payload = wire.MsgApproxDists,
			wire.ApproxDistsReq{Dists: c.key.TransformDists(qDists), CandSize: uint32(candSize)}.Encode()
	} else {
		perm := pivot.Permutation(qDists) // Alg. 2 line 8
		reqType, payload = wire.MsgApproxPerm,
			wire.ApproxPermReq{Perm: perm, CandSize: uint32(candSize)}.Encode()
	}
	respType, resp, err := c.roundTrip(reqType, payload, &costs)
	if err != nil {
		return nil, costs, err
	}
	if respType != wire.MsgCandidates {
		return nil, costs, fmt.Errorf("core: unexpected approx response %v", respType)
	}
	m, err := wire.DecodeCandidatesResp(resp)
	if err != nil {
		return nil, costs, err
	}
	creditServer(&costs, m.ServerNanos)
	refined, err := c.refine(q, m.Entries, &costs)
	if err != nil {
		return nil, costs, err
	}
	sortByDist(refined)
	if len(refined) > k {
		refined = refined[:k]
	}
	finish(&costs, start)
	return refined, costs, nil
}

// ApproxKNNPartial is ApproxKNN with client-side partial refinement: the
// candidate set arrives pre-ranked by cell promise, so the client "can
// choose to decrypt and compute distances only for candidates with the
// highest rank to speed up the search process" (Section 4.2). Only the
// first refineLimit candidates are decrypted and refined; the remainder is
// paid for in communication but not in decryption or distance time.
func (c *EncryptedClient) ApproxKNNPartial(q metric.Vector, k, candSize, refineLimit int) ([]Result, stats.Costs, error) {
	var costs stats.Costs
	start := time.Now()
	if k <= 0 || candSize <= 0 || refineLimit <= 0 {
		return nil, costs, fmt.Errorf("core: k, candSize and refineLimit must be positive (k=%d candSize=%d refineLimit=%d)",
			k, candSize, refineLimit)
	}
	distStart := time.Now()
	qDists := c.key.Pivots().Distances(q)
	costs.DistCompTime += time.Since(distStart)
	costs.DistComps += int64(c.key.Pivots().N())

	perm := pivot.Permutation(qDists)
	respType, resp, err := c.roundTrip(wire.MsgApproxPerm,
		wire.ApproxPermReq{Perm: perm, CandSize: uint32(candSize)}.Encode(), &costs)
	if err != nil {
		return nil, costs, err
	}
	if respType != wire.MsgCandidates {
		return nil, costs, fmt.Errorf("core: unexpected approx response %v", respType)
	}
	m, err := wire.DecodeCandidatesResp(resp)
	if err != nil {
		return nil, costs, err
	}
	creditServer(&costs, m.ServerNanos)
	cands := m.Entries
	received := len(cands)
	if len(cands) > refineLimit {
		cands = cands[:refineLimit] // pre-ranked: keep the most promising prefix
	}
	refined, err := c.refine(q, cands, &costs)
	if err != nil {
		return nil, costs, err
	}
	costs.Candidates = int64(received) // transferred, not merely refined
	sortByDist(refined)
	if len(refined) > k {
		refined = refined[:k]
	}
	finish(&costs, start)
	return refined, costs, nil
}

// KNN evaluates the precise k-NN query as Section 4.2 prescribes: an
// approximate k-NN determines ρk, the distance to the k-th candidate
// neighbor (an upper bound on the true k-th neighbor distance), and the
// precise range query R(q, ρk) then guarantees completeness. Two round
// trips; candSize tunes the first phase.
func (c *EncryptedClient) KNN(q metric.Vector, k, candSize int) ([]Result, stats.Costs, error) {
	start := time.Now()
	approx, costs, err := c.ApproxKNN(q, k, candSize)
	if err != nil {
		return nil, costs, err
	}
	rho := maxRadius // fewer than k candidates found: fall back to everything
	if len(approx) >= k {
		rho = approx[len(approx)-1].Dist
	}
	within, rangeCosts, err := c.Range(q, rho)
	if err != nil {
		return nil, costs, err
	}
	costs.Accumulate(rangeCosts)
	sortByDist(within)
	if len(within) > k {
		within = within[:k]
	}
	costs.Overall = time.Since(start)
	costs.ClientTime = costs.Overall - costs.ServerTime - costs.CommTime
	if costs.ClientTime < 0 {
		costs.ClientTime = 0
	}
	return within, costs, nil
}

// FirstCellKNN evaluates the restricted 1-cell approximate k-NN of the
// paper's Section 5.4 comparison: the server contributes exactly one
// Voronoi cell as the candidate set.
func (c *EncryptedClient) FirstCellKNN(q metric.Vector, k int) ([]Result, stats.Costs, error) {
	var costs stats.Costs
	start := time.Now()
	if k <= 0 {
		return nil, costs, fmt.Errorf("core: k must be positive, got %d", k)
	}
	distStart := time.Now()
	qDists := c.key.Pivots().Distances(q)
	costs.DistCompTime += time.Since(distStart)
	costs.DistComps += int64(c.key.Pivots().N())

	perm := pivot.Permutation(qDists)
	respType, resp, err := c.roundTrip(wire.MsgFirstCell, wire.FirstCellReq{Perm: perm}.Encode(), &costs)
	if err != nil {
		return nil, costs, err
	}
	if respType != wire.MsgCandidates {
		return nil, costs, fmt.Errorf("core: unexpected first-cell response %v", respType)
	}
	m, err := wire.DecodeCandidatesResp(resp)
	if err != nil {
		return nil, costs, err
	}
	creditServer(&costs, m.ServerNanos)
	refined, err := c.refine(q, m.Entries, &costs)
	if err != nil {
		return nil, costs, err
	}
	sortByDist(refined)
	if len(refined) > k {
		refined = refined[:k]
	}
	finish(&costs, start)
	return refined, costs, nil
}

// maxRadius is an effectively unbounded query radius.
const maxRadius = 1e300

func sortByDist(rs []Result) {
	sort.Slice(rs, func(i, j int) bool {
		if rs[i].Dist != rs[j].Dist {
			return rs[i].Dist < rs[j].Dist
		}
		return rs[i].ID < rs[j].ID
	})
}
