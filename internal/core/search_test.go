package core

import (
	"context"
	"fmt"
	"math/rand/v2"
	"testing"

	"simcloud/internal/dataset"
	"simcloud/internal/metric"
	"simcloud/internal/mindex"
	"simcloud/internal/pivot"
	"simcloud/internal/secret"
	"simcloud/internal/server"
)

// threeBackends builds the same seeded collection behind all three
// Searcher implementations: an encrypted server + client, a plain server +
// client over the same pivots, and an in-process DirectClient over the
// same key and configuration.
func threeBackends(t *testing.T) (*EncryptedClient, *PlainClient, *DirectClient, *dataset.Dataset) {
	t.Helper()
	ds := dataset.Clustered(2026, 900, 6, 7, metric.L2{})
	rng := rand.New(rand.NewPCG(2026, 1))
	pv := pivot.SelectRandom(rng, ds.Dist, ds.Objects, testPivotCount)
	key, err := secret.Generate(pv, secret.ModeCTRHMAC)
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig()
	opts := Options{MaxLevel: testMaxLevel, StoreDists: true}

	encSrv, err := server.NewEncrypted(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := encSrv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { encSrv.Close() })
	enc, err := DialEncrypted(encSrv.Addr(), key, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { enc.Close() })

	plainSrv, err := server.NewPlain(cfg, pv)
	if err != nil {
		t.Fatal(err)
	}
	if err := plainSrv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { plainSrv.Close() })
	plain, err := DialPlain(plainSrv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { plain.Close() })

	direct, err := NewDirect(cfg, key, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { direct.Close() })

	if _, err := enc.Insert(ds.Objects); err != nil {
		t.Fatal(err)
	}
	if _, err := plain.Insert(ds.Objects); err != nil {
		t.Fatal(err)
	}
	if _, err := direct.Insert(ds.Objects); err != nil {
		t.Fatal(err)
	}
	return enc, plain, direct, ds
}

// equivalenceQueries is the four-kind query matrix of the acceptance test.
func equivalenceQueries(ds *dataset.Dataset) []Query {
	rng := rand.New(rand.NewPCG(7, 2026))
	var qs []Query
	for range 4 {
		v := ds.Objects[rng.IntN(len(ds.Objects))].Vec
		qs = append(qs,
			Query{Kind: KindRange, Vec: v, Radius: 6},
			Query{Kind: KindKNN, Vec: v, K: 10, CandSize: 80},
			Query{Kind: KindApproxKNN, Vec: v, K: 5, CandSize: 60},
			Query{Kind: KindFirstCell, Vec: v, K: 5},
		)
	}
	// A query vector that is not a member of the collection.
	qs = append(qs, Query{Kind: KindKNN, Vec: metric.Vector{1, 2, 3, 4, 5, 6}, K: 7, CandSize: 70})
	return qs
}

func diffResults(a, b []Result) string {
	if len(a) != len(b) {
		return fmt.Sprintf("length %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].ID != b[i].ID || a[i].Dist != b[i].Dist {
			return fmt.Sprintf("position %d: (%d, %g) vs (%d, %g)", i, a[i].ID, a[i].Dist, b[i].ID, b[i].Dist)
		}
	}
	return ""
}

// TestSearcherBackendEquivalence: all three backends return identical
// result lists for the same seeded dataset across all four query kinds —
// the acceptance criterion of the unified Search API.
func TestSearcherBackendEquivalence(t *testing.T) {
	enc, plain, direct, ds := threeBackends(t)
	ctx := context.Background()
	for qi, q := range equivalenceQueries(ds) {
		want, _, err := enc.Search(ctx, q)
		if err != nil {
			t.Fatalf("query %d (%v): encrypted: %v", qi, q.Kind, err)
		}
		if q.Kind != KindRange && len(want) == 0 {
			t.Fatalf("query %d (%v): encrypted returned no results", qi, q.Kind)
		}
		gotPlain, _, err := plain.Search(ctx, q)
		if err != nil {
			t.Fatalf("query %d (%v): plain: %v", qi, q.Kind, err)
		}
		if d := diffResults(want, gotPlain); d != "" {
			t.Errorf("query %d (%v): plain differs from encrypted: %s", qi, q.Kind, d)
		}
		gotDirect, _, err := direct.Search(ctx, q)
		if err != nil {
			t.Fatalf("query %d (%v): direct: %v", qi, q.Kind, err)
		}
		if d := diffResults(want, gotDirect); d != "" {
			t.Errorf("query %d (%v): direct differs from encrypted: %s", qi, q.Kind, d)
		}
	}
}

// TestSearchBatchMatchesSearch: on every backend, a mixed-kind SearchBatch
// returns exactly what per-query Search calls return.
func TestSearchBatchMatchesSearch(t *testing.T) {
	enc, plain, direct, ds := threeBackends(t)
	ctx := context.Background()
	qs := equivalenceQueries(ds)
	for _, backend := range []struct {
		name string
		s    Searcher
	}{
		{"encrypted", enc}, {"plain", plain}, {"direct", direct},
	} {
		batched, _, err := backend.s.SearchBatch(ctx, qs)
		if err != nil {
			t.Fatalf("%s: SearchBatch: %v", backend.name, err)
		}
		if len(batched) != len(qs) {
			t.Fatalf("%s: %d batch results for %d queries", backend.name, len(batched), len(qs))
		}
		for qi, q := range qs {
			want, _, err := backend.s.Search(ctx, q)
			if err != nil {
				t.Fatalf("%s: query %d: %v", backend.name, qi, err)
			}
			if d := diffResults(want, batched[qi]); d != "" {
				t.Errorf("%s: query %d (%v): batch differs from single: %s", backend.name, qi, q.Kind, d)
			}
		}
	}
}

// TestSearchMatchesLegacyMethods: the legacy entry points are wrappers
// over Search; both spellings must agree exactly.
func TestSearchMatchesLegacyMethods(t *testing.T) {
	enc, _, _, ds := threeBackends(t)
	ctx := context.Background()
	q := ds.Objects[11].Vec

	legacy, _, err := enc.ApproxKNN(q, 5, 60)
	if err != nil {
		t.Fatal(err)
	}
	unified, _, err := enc.Search(ctx, Query{Kind: KindApproxKNN, Vec: q, K: 5, CandSize: 60})
	if err != nil {
		t.Fatal(err)
	}
	if d := diffResults(legacy, unified); d != "" {
		t.Errorf("ApproxKNN vs Search: %s", d)
	}

	legacy, _, err = enc.ApproxKNNPartial(q, 5, 60, 20)
	if err != nil {
		t.Fatal(err)
	}
	unified, _, err = enc.Search(ctx, Query{Kind: KindApproxKNN, Vec: q, K: 5, CandSize: 60, RefineLimit: 20})
	if err != nil {
		t.Fatal(err)
	}
	if d := diffResults(legacy, unified); d != "" {
		t.Errorf("ApproxKNNPartial vs Search: %s", d)
	}

	legacy, _, err = enc.Range(q, 8)
	if err != nil {
		t.Fatal(err)
	}
	unified, _, err = enc.Search(ctx, Query{Kind: KindRange, Vec: q, Radius: 8})
	if err != nil {
		t.Fatal(err)
	}
	if d := diffResults(legacy, unified); d != "" {
		t.Errorf("Range vs Search: %s", d)
	}
}

// TestQueryValidation: malformed queries fail identically on every
// backend, before any IO.
func TestQueryValidation(t *testing.T) {
	enc, plain, direct, ds := threeBackends(t)
	ctx := context.Background()
	bad := []Query{
		{},                           // no kind, no vector
		{Kind: KindRange, Radius: 1}, // no vector
		{Kind: KindRange, Vec: ds.Objects[0].Vec, Radius: -1},
		{Kind: KindKNN, Vec: ds.Objects[0].Vec}, // k missing
		{Kind: KindApproxKNN, Vec: ds.Objects[0].Vec, K: 3, CandSize: -1},
		{Kind: KindApproxKNN, Vec: ds.Objects[0].Vec, K: 3, RefineLimit: -1},
		{Kind: KindKNN, Vec: ds.Objects[0].Vec, K: 3, RefineLimit: 5}, // breaks precision
		{Kind: QueryKind(99), Vec: ds.Objects[0].Vec, K: 3},
	}
	for i, q := range bad {
		for _, backend := range []struct {
			name string
			s    Searcher
		}{
			{"encrypted", enc}, {"plain", plain}, {"direct", direct},
		} {
			if _, _, err := backend.s.Search(ctx, q); err == nil {
				t.Errorf("%s: bad query %d accepted", backend.name, i)
			}
		}
	}
}

// TestFirstCellDistSum: the first-cell query works under the distance-sum
// ranking on every backend (regression: the request used to carry only a
// permutation, which a distance-sum promise function cannot rank — an
// index-out-of-range panic in-process and on the server).
func TestFirstCellDistSum(t *testing.T) {
	ds := dataset.Clustered(11, 600, 6, 6, metric.L2{})
	rng := rand.New(rand.NewPCG(11, 1))
	pv := pivot.SelectRandom(rng, ds.Dist, ds.Objects, testPivotCount)
	key, err := secret.Generate(pv, secret.ModeCTRHMAC)
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig()
	cfg.Ranking = mindex.RankDistSum
	opts := Options{MaxLevel: testMaxLevel, Ranking: mindex.RankDistSum, StoreDists: true}

	encSrv, err := server.NewEncrypted(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := encSrv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { encSrv.Close() })
	enc, err := DialEncrypted(encSrv.Addr(), key, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { enc.Close() })

	plainSrv, err := server.NewPlain(cfg, pv)
	if err != nil {
		t.Fatal(err)
	}
	if err := plainSrv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { plainSrv.Close() })
	plain, err := DialPlain(plainSrv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { plain.Close() })

	direct, err := NewDirect(cfg, key, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { direct.Close() })

	for _, ins := range []func() error{
		func() error { _, err := enc.Insert(ds.Objects); return err },
		func() error { _, err := plain.Insert(ds.Objects); return err },
		func() error { _, err := direct.Insert(ds.Objects); return err },
	} {
		if err := ins(); err != nil {
			t.Fatal(err)
		}
	}

	ctx := context.Background()
	q := Query{Kind: KindFirstCell, Vec: ds.Objects[42].Vec, K: 3}
	want, _, err := enc.Search(ctx, q)
	if err != nil {
		t.Fatalf("encrypted first-cell under distsum: %v", err)
	}
	if len(want) == 0 {
		t.Fatal("encrypted first-cell under distsum returned nothing")
	}
	gotPlain, _, err := plain.Search(ctx, q)
	if err != nil {
		t.Fatalf("plain first-cell under distsum: %v", err)
	}
	if d := diffResults(want, gotPlain); d != "" {
		t.Errorf("plain differs from encrypted under distsum: %s", d)
	}
	gotDirect, _, err := direct.Search(ctx, q)
	if err != nil {
		t.Fatalf("direct first-cell under distsum: %v", err)
	}
	if d := diffResults(want, gotDirect); d != "" {
		t.Errorf("direct differs from encrypted under distsum: %s", d)
	}
}

// TestPlainDeleteParity: the plain deployment supports deletion like the
// encrypted one, so baseline-vs-encrypted experiments can mutate like for
// like; post-delete answers stay identical across backends.
func TestPlainDeleteParity(t *testing.T) {
	enc, plain, direct, ds := threeBackends(t)
	ctx := context.Background()
	victims := ds.Objects[100:200]

	encDel, _, err := enc.Delete(victims)
	if err != nil {
		t.Fatal(err)
	}
	plainDel, _, err := plain.Delete(victims)
	if err != nil {
		t.Fatal(err)
	}
	directDel, _, err := direct.Delete(victims)
	if err != nil {
		t.Fatal(err)
	}
	if encDel != len(victims) || plainDel != encDel || directDel != encDel {
		t.Fatalf("deleted counts diverge: encrypted %d, plain %d, direct %d (want %d)",
			encDel, plainDel, directDel, len(victims))
	}
	// Deleting again is a no-op everywhere.
	if n, _, err := plain.Delete(victims[:10]); err != nil || n != 0 {
		t.Fatalf("plain re-delete: n=%d err=%v", n, err)
	}

	q := Query{Kind: KindKNN, Vec: victims[3].Vec, K: 8, CandSize: 80}
	want, _, err := enc.Search(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range want {
		if r.ID >= victims[0].ID && r.ID <= victims[len(victims)-1].ID {
			t.Fatalf("deleted object %d still in encrypted answer", r.ID)
		}
	}
	gotPlain, _, err := plain.Search(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if d := diffResults(want, gotPlain); d != "" {
		t.Errorf("post-delete: plain differs from encrypted: %s", d)
	}
	gotDirect, _, err := direct.Search(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if d := diffResults(want, gotDirect); d != "" {
		t.Errorf("post-delete: direct differs from encrypted: %s", d)
	}
}
