package core

import (
	"context"
	"math"
	"math/rand/v2"
	"sort"
	"testing"

	"simcloud/internal/dataset"
	"simcloud/internal/kmeans"
	"simcloud/internal/metric"
	"simcloud/internal/mindex"
	"simcloud/internal/pivot"
	"simcloud/internal/secret"
)

// kmeansBackend trains centroids on the collection, folds them into a
// secret key, and loads a KMeansDirect over the data — the fourth Searcher
// backend, built the way a client deployment would build it.
func kmeansBackend(t *testing.T, ds *dataset.Dataset, k int, insert bool) (*KMeansDirect, *kmeans.Model) {
	t.Helper()
	m, err := kmeans.Train(kmeans.TrainConfig{K: k, Seed: 2026, Dist: ds.Dist}, ds.Objects)
	if err != nil {
		t.Fatal(err)
	}
	key, err := secret.Generate(m.PivotSet(), secret.ModeCTRHMAC)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewKMeansDirect(kmeans.Config{NumCentroids: k, Storage: mindex.StorageMemory}, key, Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	if insert {
		if _, err := c.Insert(ds.Objects); err != nil {
			t.Fatal(err)
		}
	}
	return c, m
}

// TestKMeansExactMatchesBruteForce: the family's precise kinds — range and
// two-phase k-NN — return exactly the brute-force answer, the equivalence
// criterion every exact backend meets.
func TestKMeansExactMatchesBruteForce(t *testing.T) {
	ds := dataset.Clustered(2027, 900, 6, 7, metric.L2{})
	c, _ := kmeansBackend(t, ds, 12, true)
	ctx := context.Background()
	rng := rand.New(rand.NewPCG(9, 2027))
	for qi := 0; qi < 12; qi++ {
		q := ds.Objects[rng.IntN(len(ds.Objects))].Vec

		got, _, err := c.Search(ctx, Query{Kind: KindRange, Vec: q, Radius: 5})
		if err != nil {
			t.Fatal(err)
		}
		want := make(map[uint64]float64)
		for _, o := range ds.Objects {
			if d := ds.Dist.Dist(q, o.Vec); d <= 5 {
				want[o.ID] = d
			}
		}
		if len(got) != len(want) {
			t.Fatalf("query %d: range returned %d results, brute force %d", qi, len(got), len(want))
		}
		for _, r := range got {
			if d, ok := want[r.ID]; !ok || d != r.Dist {
				t.Fatalf("query %d: range result (%d, %g) not in brute force", qi, r.ID, r.Dist)
			}
		}

		knn, _, err := c.Search(ctx, Query{Kind: KindKNN, Vec: q, K: 10, CandSize: 60})
		if err != nil {
			t.Fatal(err)
		}
		truth := bruteKNN(ds, q, 10)
		if d := diffResults(truth, knn); d != "" {
			t.Fatalf("query %d: precise k-NN differs from brute force: %s", qi, d)
		}
	}
	// Out-of-collection query vector.
	q := metric.Vector{0.5, -1, 2, 0, 1, -0.5}
	knn, _, err := c.Search(ctx, Query{Kind: KindKNN, Vec: q, K: 7})
	if err != nil {
		t.Fatal(err)
	}
	if d := diffResults(bruteKNN(ds, q, 7), knn); d != "" {
		t.Fatalf("out-of-collection k-NN differs from brute force: %s", d)
	}
}

// TestKMeansAgreesWithMIndexBackend: both index families answer the exact
// kinds identically — different routing, same metric truth.
func TestKMeansAgreesWithMIndexBackend(t *testing.T) {
	ds := dataset.Clustered(2028, 700, 6, 6, metric.L2{})
	km, _ := kmeansBackend(t, ds, 10, true)

	rng := rand.New(rand.NewPCG(2028, 1))
	pv := pivot.SelectRandom(rng, ds.Dist, ds.Objects, testPivotCount)
	key, err := secret.Generate(pv, secret.ModeCTRHMAC)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := NewDirect(testConfig(), key, Options{MaxLevel: testMaxLevel, StoreDists: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { direct.Close() })
	if _, err := direct.Insert(ds.Objects); err != nil {
		t.Fatal(err)
	}

	ctx := context.Background()
	for qi := 0; qi < 8; qi++ {
		q := ds.Objects[qi*80].Vec
		for _, query := range []Query{
			{Kind: KindRange, Vec: q, Radius: 6},
			{Kind: KindKNN, Vec: q, K: 9, CandSize: 70},
		} {
			want, _, err := direct.Search(ctx, query)
			if err != nil {
				t.Fatal(err)
			}
			got, _, err := km.Search(ctx, query)
			if err != nil {
				t.Fatal(err)
			}
			if d := diffResults(want, got); d != "" {
				t.Fatalf("query %d (%v): kmeans differs from M-Index: %s", qi, query.Kind, d)
			}
		}
	}
}

// TestKMeansBatchAndApproxShape: SearchBatch matches Search on every kind;
// the approximate kinds return at most K refined results.
func TestKMeansBatchAndApproxShape(t *testing.T) {
	ds := dataset.Clustered(2029, 500, 6, 5, metric.L2{})
	c, _ := kmeansBackend(t, ds, 8, true)
	ctx := context.Background()
	qs := []Query{
		{Kind: KindRange, Vec: ds.Objects[3].Vec, Radius: 4},
		{Kind: KindKNN, Vec: ds.Objects[50].Vec, K: 6, CandSize: 50},
		{Kind: KindApproxKNN, Vec: ds.Objects[100].Vec, K: 5, CandSize: 40},
		{Kind: KindApproxKNN, Vec: ds.Objects[150].Vec, K: 5, CandSize: 40, RefineLimit: 20},
		{Kind: KindFirstCell, Vec: ds.Objects[200].Vec, K: 4},
	}
	batched, _, err := c.SearchBatch(ctx, qs)
	if err != nil {
		t.Fatal(err)
	}
	if len(batched) != len(qs) {
		t.Fatalf("%d batch results for %d queries", len(batched), len(qs))
	}
	for qi, q := range qs {
		want, _, err := c.Search(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		if d := diffResults(want, batched[qi]); d != "" {
			t.Fatalf("query %d (%v): batch differs from single: %s", qi, q.Kind, d)
		}
		if q.Kind != KindRange && len(want) > q.K {
			t.Fatalf("query %d returned %d results for K=%d", qi, len(want), q.K)
		}
		if q.Kind != KindRange && len(want) == 0 {
			t.Fatalf("query %d (%v) returned nothing", qi, q.Kind)
		}
	}
}

// TestKMeansRecallCurveDeterministic: recall against exact truth is a
// deterministic, non-decreasing function of the candidate budget, reaching
// 1.0 when the budget covers the collection.
func TestKMeansRecallCurveDeterministic(t *testing.T) {
	ds := dataset.Clustered(2030, 800, 8, 9, metric.L2{})
	c, _ := kmeansBackend(t, ds, 12, true)
	ctx := context.Background()
	const k = 10
	budgets := []int{k, 40, 120, 300, len(ds.Objects)}
	curve := func() []float64 {
		out := make([]float64, len(budgets))
		for bi, cand := range budgets {
			var recall float64
			for qi := 0; qi < 20; qi++ {
				q := ds.Objects[qi*37].Vec
				truth, _, err := c.Search(ctx, Query{Kind: KindKNN, Vec: q, K: k})
				if err != nil {
					t.Fatal(err)
				}
				ids := make(map[uint64]struct{}, k)
				for _, r := range truth {
					ids[r.ID] = struct{}{}
				}
				approx, _, err := c.Search(ctx, Query{Kind: KindApproxKNN, Vec: q, K: k, CandSize: cand})
				if err != nil {
					t.Fatal(err)
				}
				hit := 0
				for _, r := range approx {
					if _, ok := ids[r.ID]; ok {
						hit++
					}
				}
				recall += float64(hit) / float64(k)
			}
			out[bi] = recall / 20
		}
		return out
	}
	a := curve()
	b := curve()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("recall curve not deterministic at budget %d: %g vs %g", budgets[i], a[i], b[i])
		}
		if i > 0 && a[i] < a[i-1] {
			t.Fatalf("recall decreased with budget: %g at %d after %g at %d", a[i], budgets[i], a[i-1], budgets[i-1])
		}
	}
	if a[len(a)-1] != 1 {
		t.Fatalf("full-collection budget recall = %g, want 1", a[len(a)-1])
	}
	if a[0] >= a[len(a)-2] && a[0] == 1 {
		t.Fatal("curve is flat at 1 — the ablation would show nothing")
	}
}

// TestKMeansDeleteHides: deleted objects vanish from every query kind and
// the family's delete reporting matches the other backends' semantics.
func TestKMeansDeleteHides(t *testing.T) {
	ds := dataset.Clustered(2031, 400, 6, 4, metric.L2{})
	c, _ := kmeansBackend(t, ds, 6, true)
	ctx := context.Background()
	victims := ds.Objects[40:80]
	n, _, err := c.Delete(victims)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(victims) {
		t.Fatalf("deleted %d, want %d", n, len(victims))
	}
	if n, _, err := c.Delete(victims[:5]); err != nil || n != 0 {
		t.Fatalf("re-delete: n=%d err=%v", n, err)
	}
	gone := make(map[uint64]struct{})
	for _, v := range victims {
		gone[v.ID] = struct{}{}
	}
	for _, q := range []Query{
		{Kind: KindRange, Vec: victims[0].Vec, Radius: 8},
		{Kind: KindKNN, Vec: victims[1].Vec, K: 10},
		{Kind: KindApproxKNN, Vec: victims[2].Vec, K: 10, CandSize: 200},
		{Kind: KindFirstCell, Vec: victims[3].Vec, K: 10},
	} {
		res, _, err := c.Search(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range res {
			if _, dead := gone[r.ID]; dead {
				t.Fatalf("%v: deleted object %d still answered", q.Kind, r.ID)
			}
		}
	}
}

// TestKMeansTargetRecallValidation: the TargetRecall contract is enforced
// uniformly at normalization time.
func TestKMeansTargetRecallValidation(t *testing.T) {
	ds := dataset.Clustered(2032, 200, 6, 3, metric.L2{})
	c, _ := kmeansBackend(t, ds, 4, true)
	ctx := context.Background()
	v := ds.Objects[0].Vec
	bad := []Query{
		{Kind: KindApproxKNN, Vec: v, K: 5, TargetRecall: 1.2},
		{Kind: KindApproxKNN, Vec: v, K: 5, TargetRecall: -0.5},
		{Kind: KindApproxKNN, Vec: v, K: 5, TargetRecall: 1},
		{Kind: KindApproxKNN, Vec: v, K: 5, TargetRecall: 0.9, CandSize: 50},
		{Kind: KindRange, Vec: v, Radius: 2, TargetRecall: 0.9},
		{Kind: KindFirstCell, Vec: v, K: 5, TargetRecall: 0.9},
	}
	for i, q := range bad {
		if _, _, err := c.Search(ctx, q); !IsQueryError(err) {
			t.Errorf("bad TargetRecall query %d: err = %v, want a query error", i, err)
		}
	}
	// Without a predictor, a valid TargetRecall degrades to the default
	// candidate size instead of failing.
	res, _, err := c.Search(ctx, Query{Kind: KindApproxKNN, Vec: v, K: 5, TargetRecall: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 5 {
		t.Fatalf("predictor-less TargetRecall query returned %d results", len(res))
	}
	if _, _, err := c.Search(ctx, Query{Kind: KindKNN, Vec: v, K: 5, TargetRecall: 0.9}); err != nil {
		t.Fatalf("TargetRecall on precise k-NN: %v", err)
	}
}

// TestKMeansCollectStats: the unified stats facade reports the cell index
// through the backendStatser hook.
func TestKMeansCollectStats(t *testing.T) {
	ds := dataset.Clustered(2033, 300, 6, 4, metric.L2{})
	c, _ := kmeansBackend(t, ds, 6, true)
	st := CollectStats(c)
	if st.Engine.Shards != 1 || st.Engine.Live != 300 || st.Engine.Dead != 0 {
		t.Fatalf("engine stats = %+v", st.Engine)
	}
	if st.Tree.Leaves != 6 || st.Tree.MaxDepth != 1 || st.Tree.TotalBucket != 300 {
		t.Fatalf("tree stats = %+v", st.Tree)
	}
	if st.Ingest.Entries != 300 || st.Ingest.Bytes == 0 {
		t.Fatalf("ingest stats = %+v", st.Ingest)
	}
	if _, _, err := c.Delete(ds.Objects[:10]); err != nil {
		t.Fatal(err)
	}
	st = CollectStats(c)
	if st.Engine.Live != 290 || st.Engine.Dead != 10 {
		t.Fatalf("post-delete engine stats = %+v", st.Engine)
	}
}

// TestKMeansWrongKeyRejected: a key whose pivot count disagrees with the
// cell count fails fast.
func TestKMeansWrongKeyRejected(t *testing.T) {
	ds := dataset.Clustered(2034, 100, 6, 3, metric.L2{})
	m, err := kmeans.Train(kmeans.TrainConfig{K: 5, Seed: 1, Dist: ds.Dist}, ds.Objects)
	if err != nil {
		t.Fatal(err)
	}
	key, err := secret.Generate(m.PivotSet(), secret.ModeCTRHMAC)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewKMeansDirect(kmeans.Config{NumCentroids: 7, Storage: mindex.StorageMemory}, key, Options{}); err == nil {
		t.Fatal("pivot/cell count mismatch accepted")
	}
}

// TestKMeansSnapshotRoundTripThroughBackend: snapshot the cell index, wrap
// the restored index in a new client, and get identical exact answers.
func TestKMeansSnapshotRoundTripThroughBackend(t *testing.T) {
	ds := dataset.Clustered(2035, 300, 6, 4, metric.L2{})
	m, err := kmeans.Train(kmeans.TrainConfig{K: 6, Seed: 2026, Dist: ds.Dist}, ds.Objects)
	if err != nil {
		t.Fatal(err)
	}
	key, err := secret.Generate(m.PivotSet(), secret.ModeCTRHMAC)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	cfg := kmeans.Config{NumCentroids: 6, Storage: mindex.StorageDisk, DiskPath: dir + "/cells"}
	c, err := NewKMeansDirect(cfg, key, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Insert(ds.Objects); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	q := Query{Kind: KindKNN, Vec: ds.Objects[123].Vec, K: 8}
	want, _, err := c.Search(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	snap := dir + "/kmeans.snap"
	if err := c.Index().SaveSnapshot(snap); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	idx, err := kmeans.LoadSnapshot(cfg, snap)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { idx.Close() })
	// The model codec carries the centroids across the restart; the cipher
	// key itself is persisted client-side (regenerating it could never
	// decrypt the stored payloads), so the restored client reuses it.
	blob, err := m.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	m2, err := kmeans.UnmarshalModel(blob)
	if err != nil {
		t.Fatal(err)
	}
	if m2.K() != 6 || !m2.Centroids[0].Equal(m.Centroids[0]) {
		t.Fatal("model codec lost the centroids")
	}
	c2, err := NewKMeansDirectWithIndex(idx, key, Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c2.Close() })
	got, _, err := c2.Search(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if d := diffResults(want, got); d != "" {
		t.Fatalf("restored backend differs: %s", d)
	}
}

// predictorWorkload is the multi-density collection of the predictor
// acceptance test: a clustered core plus a uniform sparse background. The
// two populations need very different candidate budgets — a cluster query
// finds its neighbors inside its own tight cell, a background query's
// neighbors scatter across many near-tied cells — and the nearest-centroid
// distance d1 separates them, so the workload carries the signal the
// predictor is built to learn.
func predictorWorkload() *dataset.Dataset {
	ds := dataset.Clustered(2036, 1800, 8, 14, metric.L2{})
	rng := rand.New(rand.NewPCG(2036, 0xBA5E))
	objs := append([]metric.Object(nil), ds.Objects...)
	for i := 0; i < 400; i++ {
		v := make(metric.Vector, ds.Dim)
		for j := range v {
			v[j] = float32(rng.Float64()*56 - 28)
		}
		objs = append(objs, metric.Object{ID: uint64(len(ds.Objects) + i), Vec: v})
	}
	return &dataset.Dataset{Name: "mixed-density", Objects: objs, Dim: ds.Dim, Dist: ds.Dist}
}

// kmeansEvalProfile is one held-out query's ground-truth coverage profile,
// shared by the predictor acceptance test below.
type kmeansEvalProfile struct {
	d1   float64
	need []int
}

func kmeansProfiles(t *testing.T, c *KMeansDirect, queries []metric.Object, k int) []kmeansEvalProfile {
	t.Helper()
	ctx := context.Background()
	out := make([]kmeansEvalProfile, 0, len(queries))
	for _, q := range queries {
		truthRes, _, err := c.Search(ctx, Query{Kind: KindKNN, Vec: q.Vec, K: k})
		if err != nil {
			t.Fatal(err)
		}
		truth := make(map[uint64]struct{}, k)
		for _, r := range truthRes {
			truth[r.ID] = struct{}{}
		}
		tDists := c.Key().TransformDists(c.Key().Pivots().Distances(q.Vec))
		stream, err := c.Index().ApproxRanked(tDists, c.Index().Size())
		if err != nil {
			t.Fatal(err)
		}
		need := make([]int, k)
		for j := range need {
			need[j] = math.MaxInt
		}
		covered := 0
		for pos, rc := range stream {
			if _, hit := truth[rc.Entry.ID]; hit {
				need[covered] = pos + 1
				covered++
				if covered == k {
					break
				}
			}
		}
		d1 := math.Inf(1)
		for _, d := range tDists {
			if d < d1 {
				d1 = d
			}
		}
		out = append(out, kmeansEvalProfile{d1: d1, need: need})
	}
	return out
}

func recallAt(p kmeansEvalProfile, cand, k int) float64 {
	covered := 0
	for j := k - 1; j >= 0; j-- {
		if p.need[j] <= cand {
			covered = j + 1
			break
		}
	}
	return float64(covered) / float64(k)
}

// TestKMeansPredictorBeatsGlobalCandSize: the acceptance criterion of the
// learned predictor — calibrated on one query sample and evaluated on a
// held-out one, it reaches the target recall within two points while
// spending fewer candidates on average than the best global constant that
// reaches the same recall.
func TestKMeansPredictorBeatsGlobalCandSize(t *testing.T) {
	ds := predictorWorkload()
	queries, rest := dataset.SampleQueries(ds, 200, 77, true)
	indexed := &dataset.Dataset{Name: ds.Name, Objects: rest, Dim: ds.Dim, Dist: ds.Dist}
	c, _ := kmeansBackend(t, indexed, 16, true)
	ctx := context.Background()
	const k = 10
	const target = 0.9

	calQ := make([]metric.Vector, 0, 100)
	for _, q := range queries[:100] {
		calQ = append(calQ, q.Vec)
	}
	pred, err := c.Calibrate(ctx, calQ, k, []float64{0.8, target, 0.95}, 6)
	if err != nil {
		t.Fatal(err)
	}
	c.SetPredictor(pred)

	holdout := kmeansProfiles(t, c, queries[100:], k)

	// Predictor performance on the held-out queries.
	var predRecall, predCand float64
	for _, p := range holdout {
		cand := pred.CandSize(target, p.d1)
		predRecall += recallAt(p, cand, k)
		predCand += float64(cand)
	}
	predRecall /= float64(len(holdout))
	predCand /= float64(len(holdout))
	if predRecall < target-0.02 {
		t.Fatalf("predictor recall %.3f misses target %.2f by more than 2 points", predRecall, target)
	}

	// Best global constant on the same held-out queries: the smallest
	// candidate budget whose mean recall reaches the same bar.
	cands := []int{}
	for _, p := range holdout {
		for _, n := range p.need {
			if n != math.MaxInt {
				cands = append(cands, n)
			}
		}
	}
	sort.Ints(cands)
	bestGlobal := cands[len(cands)-1]
	for _, cand := range cands {
		var recall float64
		for _, p := range holdout {
			recall += recallAt(p, cand, k)
		}
		if recall/float64(len(holdout)) >= predRecall {
			bestGlobal = cand
			break
		}
	}
	if predCand >= float64(bestGlobal) {
		t.Fatalf("predictor spends %.1f mean candidates, best global constant %d — no win", predCand, bestGlobal)
	}
	t.Logf("predictor: recall %.3f at %.1f mean candidates; best global: %d candidates", predRecall, predCand, bestGlobal)

	// The live query path resolves TargetRecall through the installed
	// predictor: the candidate cost of one query equals its prediction.
	q := queries[150]
	tDists := c.Key().TransformDists(c.Key().Pivots().Distances(q.Vec))
	d1 := math.Inf(1)
	for _, d := range tDists {
		if d < d1 {
			d1 = d
		}
	}
	wantCand := int64(pred.CandSize(target, d1))
	_, costs, err := c.Search(ctx, Query{Kind: KindApproxKNN, Vec: q.Vec, K: k, TargetRecall: target})
	if err != nil {
		t.Fatal(err)
	}
	if costs.Candidates != wantCand {
		t.Fatalf("TargetRecall query transferred %d candidates, predictor says %d", costs.Candidates, wantCand)
	}
}
