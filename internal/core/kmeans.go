package core

import (
	"context"
	"fmt"
	"math"
	"sync/atomic"
	"time"

	"simcloud/internal/kmeans"
	"simcloud/internal/merge"
	"simcloud/internal/metric"
	"simcloud/internal/mindex"
	"simcloud/internal/secret"
	"simcloud/internal/stats"
)

// KMeansDirect is the second index family under the Searcher contract: the
// k-means clustered routing backend, embedded in-process like DirectClient.
// The client key's pivots are the trained centroids (kmeans.Model.PivotSet
// → secret.Generate), and the shared coder runs the identical Algorithm 1
// client work — with the prefix pinned to length one, whose single element
// routes the object to its nearest centroid's cell, and the full
// transformed centroid-distance vector always stored (the precise strategy
// is what makes exact queries exact in this family). The server-side cell
// index therefore holds exactly what an encrypted deployment would:
// ciphertexts plus pivot-space metadata.
//
// Exactness carries over: range queries prune with true lower bounds in
// transformed space and refine client-side; precise k-NN composes the same
// two-phase searchKNN as every other backend. The approximate kinds fan out
// to the nearest centroids under the (promise, prefix, source) merge
// discipline of internal/merge.
//
// KMeansDirect implements Searcher and is safe for concurrent use.
type KMeansDirect struct {
	coder
	idx      *kmeans.Index
	ownIndex bool
	pred     atomic.Pointer[kmeans.Predictor]
}

var _ Searcher = (*KMeansDirect)(nil)

// NewKMeansDirect creates an in-process k-means backend over a fresh cell
// index built from cfg. key must be generated over the trained centroids
// (its pivot count is the cell count). Options.PrefixLen, MaxLevel and
// StoreDists are fixed by the family (1, 1, true) — supplied values for
// those fields are ignored; the remaining options (Workers, …) apply as
// usual.
func NewKMeansDirect(cfg kmeans.Config, key *secret.Key, opts Options) (*KMeansDirect, error) {
	idx, err := kmeans.New(cfg)
	if err != nil {
		return nil, err
	}
	c, err := NewKMeansDirectWithIndex(idx, key, opts)
	if err != nil {
		idx.Close()
		return nil, err
	}
	c.ownIndex = true
	return c, nil
}

// NewKMeansDirectWithIndex wraps an existing cell index — typically one
// restored via kmeans.LoadSnapshot — without taking ownership: closing the
// client does not close the index.
func NewKMeansDirectWithIndex(idx *kmeans.Index, key *secret.Key, opts Options) (*KMeansDirect, error) {
	if key.Pivots().N() != idx.Config().NumCentroids {
		return nil, fmt.Errorf("core: kmeans index uses %d centroids, client key has %d pivots — wrong key for this index",
			idx.Config().NumCentroids, key.Pivots().N())
	}
	o := opts.withDefaults()
	// The family's fixed coder shape: one-element routing prefix (the
	// nearest-centroid cell) and the precise strategy always on.
	o.MaxLevel = 1
	o.PrefixLen = 1
	o.StoreDists = true
	return &KMeansDirect{coder: coder{key: key, opts: o}, idx: idx}, nil
}

// Index exposes the embedded cell index (snapshots, stats).
func (c *KMeansDirect) Index() *kmeans.Index { return c.idx }

// SetPredictor installs (or, with nil, removes) the learned candidate-size
// predictor consulted by TargetRecall queries. Safe to call concurrently
// with searches; each query reads the predictor once.
func (c *KMeansDirect) SetPredictor(p *kmeans.Predictor) { c.pred.Store(p) }

// Predictor returns the installed predictor, or nil.
func (c *KMeansDirect) Predictor() *kmeans.Predictor { return c.pred.Load() }

// Close releases the cell index when the client owns it (created by
// NewKMeansDirect); a wrapped index is left running.
func (c *KMeansDirect) Close() error {
	if c.ownIndex {
		return c.idx.Close()
	}
	return nil
}

// resolveCandSize picks the candidate budget for one approximate query: the
// explicit CandSize, else the predictor's per-query answer (feature: the
// transformed distance to the nearest centroid), else the global default.
func (c *KMeansDirect) resolveCandSize(nq Query, tDists []float64) int {
	if nq.CandSize > 0 {
		return nq.CandSize
	}
	if nq.TargetRecall > 0 {
		if p := c.pred.Load(); p != nil {
			d1 := math.Inf(1)
			for _, d := range tDists {
				if d < d1 {
					d1 = d
				}
			}
			return p.CandSize(nq.TargetRecall, d1)
		}
	}
	return DefaultCandSize(nq.K)
}

// indexCandidates evaluates one query kind against the cell index, charging
// the index time to ServerTime exactly like DirectClient charges its engine
// — the cost decomposition stays comparable across the in-process backends.
func (c *KMeansDirect) indexCandidates(ctx context.Context, nq Query, tDists []float64, costs *stats.Costs) ([]mindex.Entry, error) {
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("core: kmeans search aborted: %w", err)
	}
	idxStart := time.Now()
	var cands []mindex.Entry
	var err error
	switch nq.Kind {
	case KindRange:
		cands, err = c.idx.RangeByDists(tDists, c.key.TransformRadius(nq.Radius))
	case KindFirstCell:
		cands, _, _, err = c.idx.FirstCellRanked(tDists)
	default: // KindApproxKNN (searchKNN never sends KindKNN here)
		candSize := c.resolveCandSize(nq, tDists)
		var rcs []mindex.RankedCandidate
		rcs, err = c.idx.ApproxRanked(tDists, candSize)
		if err == nil {
			// One partition today, but the candidates flow through the shared
			// (promise, prefix, source) merge discipline, so a sharded cell
			// index would order — and thus answer — identically.
			cands = merge.Entries(merge.Ranked([][]mindex.RankedCandidate{rcs}), candSize)
		}
	}
	costs.ServerTime += time.Since(idxStart)
	return cands, err
}

// Search evaluates one similarity query against the cell index, with the
// identical client-side epilogue (refinement, radius filter, K trim) the
// other backends apply.
func (c *KMeansDirect) Search(ctx context.Context, q Query) ([]Result, stats.Costs, error) {
	var costs stats.Costs
	start := time.Now()
	nq, err := q.normalized()
	if err != nil {
		return nil, costs, err
	}
	out, err := c.searchOne(ctx, nq, &costs)
	if err != nil {
		return nil, costs, err
	}
	finish(&costs, start)
	return out, costs, nil
}

func (c *KMeansDirect) searchOne(ctx context.Context, nq Query, costs *stats.Costs) ([]Result, error) {
	if nq.Kind == KindKNN {
		return searchKNN(ctx, nq, costs, c.searchOne)
	}
	qDists := c.queryDists(nq, costs)
	cands, err := c.indexCandidates(ctx, nq, c.key.TransformDists(qDists), costs)
	if err != nil {
		return nil, err
	}
	return c.finishQuery(nq, cands, costs)
}

// SearchBatch evaluates the queries sequentially (no round trip to
// amortize), checking ctx between queries. Results are per-query, in input
// order, identical to per-query Search.
func (c *KMeansDirect) SearchBatch(ctx context.Context, qs []Query) ([][]Result, stats.Costs, error) {
	var costs stats.Costs
	start := time.Now()
	if len(qs) == 0 {
		finish(&costs, start)
		return nil, costs, nil
	}
	out := make([][]Result, len(qs))
	for i, q := range qs {
		nq, err := q.normalized()
		if err != nil {
			return nil, costs, fmt.Errorf("core: batch query %d: %w", i, err)
		}
		if err := ctx.Err(); err != nil {
			return nil, costs, fmt.Errorf("core: batch aborted at query %d: %w", i, err)
		}
		res, err := c.searchOne(ctx, nq, &costs)
		if err != nil {
			return nil, costs, err
		}
		out[i] = res
	}
	finish(&costs, start)
	return out, costs, nil
}

// Insert is InsertContext without a deadline.
func (c *KMeansDirect) Insert(objs []metric.Object) (stats.Costs, error) {
	return c.InsertContext(context.Background(), objs)
}

// InsertContext performs the bulk insert of Algorithm 1 against the cell
// index: the client work (centroid distances, one-element routing prefix,
// encryption) is the shared coder's, the entries land without a wire.
func (c *KMeansDirect) InsertContext(ctx context.Context, objs []metric.Object) (stats.Costs, error) {
	var costs stats.Costs
	start := time.Now()
	entries, err := c.prepareEntries(objs, &costs)
	if err != nil {
		return costs, err
	}
	if err := ctx.Err(); err != nil {
		return costs, fmt.Errorf("core: kmeans insert aborted: %w", err)
	}
	idxStart := time.Now()
	err = c.idx.Insert(entries)
	costs.ServerTime += time.Since(idxStart)
	if err != nil {
		return costs, err
	}
	finish(&costs, start)
	return costs, nil
}

// InsertBatch aliases InsertContext (see DirectClient.InsertBatch).
func (c *KMeansDirect) InsertBatch(objs []metric.Object) (stats.Costs, error) {
	return c.InsertContext(context.Background(), objs)
}

// Delete is DeleteContext without a deadline.
func (c *KMeansDirect) Delete(objs []metric.Object) (int, stats.Costs, error) {
	return c.DeleteContext(context.Background(), objs)
}

// DeleteContext removes the given objects from the cell index, by the same
// {ID, routing prefix} references every backend's delete ships.
func (c *KMeansDirect) DeleteContext(ctx context.Context, objs []metric.Object) (int, stats.Costs, error) {
	var costs stats.Costs
	start := time.Now()
	if len(objs) == 0 {
		finish(&costs, start)
		return 0, costs, nil
	}
	refs := c.deleteRefs(objs, &costs)
	if err := ctx.Err(); err != nil {
		return 0, costs, fmt.Errorf("core: kmeans delete aborted: %w", err)
	}
	idxStart := time.Now()
	deleted, err := c.idx.Delete(refs)
	costs.ServerTime += time.Since(idxStart)
	if err != nil {
		return 0, costs, err
	}
	finish(&costs, start)
	return deleted, costs, nil
}

// DeleteBatch aliases DeleteContext (see InsertBatch).
func (c *KMeansDirect) DeleteBatch(objs []metric.Object) (int, stats.Costs, error) {
	return c.DeleteContext(context.Background(), objs)
}

// Calibrate profiles the given queries against the backend's own exact
// k-NN ground truth and fits a candidate-size predictor (one curve per
// target recall level, over bins equal-mass feature bins). The profile
// records, per query, the minimal candidate budget at which the
// promise-ranked candidate stream covers each of the true k neighbors —
// under the index's deployed Fanout bound, so the fitted model predicts
// for the configuration it will serve. Install the result with
// SetPredictor (and persist it with kmeans.Predictor.Marshal).
func (c *KMeansDirect) Calibrate(ctx context.Context, queries []metric.Vector, k int, levels []float64, bins int) (*kmeans.Predictor, error) {
	if k <= 0 {
		return nil, fmt.Errorf("core: calibration k must be positive, got %d", k)
	}
	if c.idx.Size() < k {
		return nil, fmt.Errorf("core: cannot calibrate k=%d against %d indexed objects", k, c.idx.Size())
	}
	samples := make([]kmeans.CalSample, 0, len(queries))
	for qi, q := range queries {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("core: calibration aborted at query %d: %w", qi, err)
		}
		truthRes, _, err := c.Search(ctx, Query{Kind: KindKNN, Vec: q, K: k})
		if err != nil {
			return nil, fmt.Errorf("core: calibration query %d: %w", qi, err)
		}
		if len(truthRes) < k {
			return nil, fmt.Errorf("core: calibration query %d found only %d exact neighbors", qi, len(truthRes))
		}
		truth := make(map[uint64]struct{}, k)
		for _, r := range truthRes {
			truth[r.ID] = struct{}{}
		}
		tDists := c.key.TransformDists(c.key.Pivots().Distances(q))
		stream, err := c.idx.ApproxRanked(tDists, c.idx.Size())
		if err != nil {
			return nil, fmt.Errorf("core: calibration query %d: %w", qi, err)
		}
		need := make([]int, k)
		for j := range need {
			need[j] = math.MaxInt
		}
		covered := 0
		for pos, rc := range stream {
			if _, hit := truth[rc.Entry.ID]; hit {
				need[covered] = pos + 1
				covered++
				if covered == k {
					break
				}
			}
		}
		d1 := math.Inf(1)
		for _, d := range tDists {
			if d < d1 {
				d1 = d
			}
		}
		samples = append(samples, kmeans.CalSample{D1: d1, Need: need})
	}
	return kmeans.FitPredictor(samples, k, levels, bins)
}

// backendStats renders the cell index into the unified stats shape for
// CollectStats: the flat cell table reports as one shard whose "tree" is a
// single level of leaves.
func (c *KMeansDirect) backendStats() Stats {
	ks := c.idx.Stats()
	entries, bytes := c.idx.IngestStats()
	out := Stats{
		Engine: EngineStats{Shards: 1, Live: ks.Live, Dead: ks.Dead},
		Tree: TreeStats{
			Leaves:      ks.Cells,
			MaxDepth:    1,
			MaxBucket:   ks.MaxCell,
			TotalBucket: ks.TotalStored,
		},
		Ingest: IngestStats{Entries: entries, Bytes: bytes},
	}
	if hits, misses, ok := c.idx.CacheStats(); ok {
		out.Cache = CacheStats{Hits: hits, Misses: misses}
	}
	return out
}
