package core

import (
	"math/rand/v2"
	"strings"
	"testing"
	"time"

	"simcloud/internal/dataset"
	"simcloud/internal/metric"
	"simcloud/internal/mindex"
	"simcloud/internal/pivot"
	"simcloud/internal/secret"
	"simcloud/internal/server"
)

// batchCloud builds an encrypted cloud over an explicit server config, so
// batch tests can vary sharding and ranking.
func batchCloud(t *testing.T, cfg mindex.Config, opts Options) (*EncryptedClient, *dataset.Dataset, *server.Server) {
	t.Helper()
	ds := dataset.Clustered(77, 600, 6, 5, metric.L2{})
	rng := rand.New(rand.NewPCG(77, 1))
	pv := pivot.SelectRandom(rng, ds.Dist, ds.Objects, cfg.NumPivots)
	key, err := secret.Generate(pv, secret.ModeCTRHMAC)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.NewEncrypted(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	opts.MaxLevel = cfg.MaxLevel
	opts.Ranking = cfg.Ranking
	client, err := DialEncrypted(srv.Addr(), key, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { client.Close() })
	return client, ds, srv
}

func sameResults(a, b []Result) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].ID != b[i].ID || a[i].Dist != b[i].Dist {
			return false
		}
	}
	return true
}

// TestInsertBatchMatchesInsert: pipelined chunked ingest must leave the
// server in the same state as one monolithic insert.
func TestInsertBatchMatchesInsert(t *testing.T) {
	for _, shards := range []int{1, 4} {
		cfg := testConfig()
		cfg.Shards = shards
		mono, ds, monoSrv := batchCloud(t, cfg, Options{})
		if _, err := mono.Insert(ds.Objects); err != nil {
			t.Fatal(err)
		}
		// Small chunk forces many in-flight frames.
		piped, _, pipedSrv := batchCloud(t, cfg, Options{BatchChunk: 50})
		costs, err := piped.InsertBatch(ds.Objects)
		if err != nil {
			t.Fatal(err)
		}
		if costs.RoundTrips != 1 {
			t.Fatalf("pipelined insert reported %d round trips, want 1", costs.RoundTrips)
		}
		if pipedSrv.Index().Size() != monoSrv.Index().Size() {
			t.Fatalf("shards=%d: batch ingest left %d entries, monolithic %d",
				shards, pipedSrv.Index().Size(), monoSrv.Index().Size())
		}
		q := ds.Objects[3].Vec
		want, _, err := mono.ApproxKNN(q, 10, 120)
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := piped.ApproxKNN(q, 10, 120)
		if err != nil {
			t.Fatal(err)
		}
		if !sameResults(got, want) {
			t.Fatalf("shards=%d: post-ingest results differ", shards)
		}
	}
}

// TestApproxKNNBatchMatchesSequential: a batched query flight must return,
// per query, exactly what the sequential single-query path returns.
func TestApproxKNNBatchMatchesSequential(t *testing.T) {
	for _, tc := range []struct {
		name    string
		ranking mindex.RankStrategy
		shards  int
	}{
		{"footrule", mindex.RankFootrule, 1},
		{"footrule-sharded", mindex.RankFootrule, 4},
		{"distsum", mindex.RankDistSum, 1},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := testConfig()
			cfg.Ranking = tc.ranking
			cfg.Shards = tc.shards
			// Chunk of 3 splits 8 queries across 3 pipelined frames.
			client, ds, _ := batchCloud(t, cfg, Options{BatchChunk: 3})
			if _, err := client.Insert(ds.Objects); err != nil {
				t.Fatal(err)
			}
			qs := make([]metric.Vector, 8)
			for i := range qs {
				qs[i] = ds.Objects[i*31].Vec
			}
			const k, candSize = 10, 100
			batched, costs, err := client.ApproxKNNBatch(qs, k, candSize)
			if err != nil {
				t.Fatal(err)
			}
			if len(batched) != len(qs) {
				t.Fatalf("got %d result lists for %d queries", len(batched), len(qs))
			}
			if costs.RoundTrips != 1 {
				t.Fatalf("batch reported %d round trips, want 1", costs.RoundTrips)
			}
			if costs.Candidates != int64(len(qs)*candSize) {
				t.Fatalf("batch refined %d candidates, want %d", costs.Candidates, len(qs)*candSize)
			}
			for i, q := range qs {
				want, _, err := client.ApproxKNN(q, k, candSize)
				if err != nil {
					t.Fatal(err)
				}
				if !sameResults(batched[i], want) {
					t.Fatalf("query %d: batched results differ from sequential", i)
				}
			}
		})
	}
}

// TestBatchErrorCarriesChunkContext: a server error for one chunk must
// name the chunk and its query range — the server's own "batch query N"
// index is frame-local and useless without the offset.
func TestBatchErrorCarriesChunkContext(t *testing.T) {
	cfg := testConfig()
	cfg.Ranking = mindex.RankDistSum
	client, ds, srv := batchCloud(t, cfg, Options{})
	if _, err := client.Insert(ds.Objects[:100]); err != nil {
		t.Fatal(err)
	}
	// A second client that disagrees with the server's ranking sends
	// permutations where distance vectors are expected.
	bad, err := DialEncrypted(srv.Addr(), client.Key(), Options{
		MaxLevel: cfg.MaxLevel, Ranking: mindex.RankFootrule, BatchChunk: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { bad.Close() })
	qs := []metric.Vector{ds.Objects[0].Vec, ds.Objects[1].Vec, ds.Objects[2].Vec}
	_, _, err = bad.ApproxKNNBatch(qs, 3, 10)
	if err == nil {
		t.Fatal("mismatched ranking accepted")
	}
	if !strings.Contains(err.Error(), "query chunk 0 (queries 0..1)") {
		t.Fatalf("batch error lacks chunk context: %v", err)
	}
}

// TestBatchOnDeadConnection: a pipelined exchange whose writes fail must
// return the error promptly instead of deadlocking on the reader.
func TestBatchOnDeadConnection(t *testing.T) {
	client, ds, _ := batchCloud(t, testConfig(), Options{BatchChunk: 10})
	if err := client.Close(); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := client.InsertBatch(ds.Objects[:100])
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("InsertBatch on closed connection succeeded")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("InsertBatch on closed connection hung")
	}
}

// TestApproxKNNBatchValidation: bad parameters and empty input.
func TestApproxKNNBatchValidation(t *testing.T) {
	client, ds, _ := batchCloud(t, testConfig(), Options{})
	if _, err := client.Insert(ds.Objects[:50]); err != nil {
		t.Fatal(err)
	}
	if _, _, err := client.ApproxKNNBatch([]metric.Vector{ds.Objects[0].Vec}, 0, 10); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, _, err := client.ApproxKNNBatch([]metric.Vector{ds.Objects[0].Vec}, 1, 0); err == nil {
		t.Fatal("candSize=0 accepted")
	}
	out, _, err := client.ApproxKNNBatch(nil, 5, 10)
	if err != nil || out != nil {
		t.Fatalf("empty batch: %v, %v", out, err)
	}
	if costs, err := client.InsertBatch(nil); err != nil || costs.RoundTrips != 0 {
		t.Fatalf("empty insert batch: %+v, %v", costs, err)
	}
}
