package core

import (
	"context"
	"errors"
	"fmt"

	"simcloud/internal/metric"
	"simcloud/internal/stats"
)

// QueryKind selects the similarity-query flavor a Query evaluates.
type QueryKind uint8

// Query kinds, mirroring the paper's query taxonomy (Section 4.2).
const (
	// KindRange is the precise range query R(q, r): every object within
	// Radius of Vec, exactly.
	KindRange QueryKind = iota + 1
	// KindKNN is the precise k-NN query: an approximate pass determines the
	// candidate radius ρk and a range query R(q, ρk) guarantees
	// completeness (two round trips on networked backends).
	KindKNN
	// KindApproxKNN is the approximate k-NN query: the K best of a
	// promise-ranked candidate set of CandSize objects.
	KindApproxKNN
	// KindFirstCell is the restricted 1-cell approximate k-NN of the
	// paper's Section 5.4 comparison: the single most promising Voronoi
	// cell is the whole candidate set.
	KindFirstCell
)

// String implements fmt.Stringer.
func (k QueryKind) String() string {
	switch k {
	case KindRange:
		return "range"
	case KindKNN:
		return "knn"
	case KindApproxKNN:
		return "approx-knn"
	case KindFirstCell:
		return "first-cell"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Query is one similarity query, uniform across every backend and kind.
// Exactly which fields matter depends on Kind:
//
//	KindRange      Vec, Radius
//	KindKNN        Vec, K, CandSize (phase-1 tuning; 0 = DefaultCandSize)
//	KindApproxKNN  Vec, K, CandSize (0 = DefaultCandSize), RefineLimit
//	KindFirstCell  Vec, K, RefineLimit
//
// Unused fields are ignored. A Query is a plain value — build it with a
// struct literal and pass it to any Searcher.
type Query struct {
	// Kind selects the query flavor.
	Kind QueryKind
	// Vec is the query object's descriptor.
	Vec metric.Vector
	// K is the number of nearest neighbors requested (all kinds but Range).
	K int
	// Radius is the range-query radius (KindRange only).
	Radius float64
	// CandSize is the candidate-set size of the approximate phase
	// (KindApproxKNN, and the phase-1 tuning knob of KindKNN). 0 picks
	// DefaultCandSize(K); it affects cost and — for KindApproxKNN —
	// recall, never correctness of KindKNN.
	CandSize int
	// RefineLimit caps client-side refinement at the most promising
	// RefineLimit candidates (Section 4.2's partial refinement;
	// KindApproxKNN and KindFirstCell on client-refining backends). 0
	// refines everything. The plain backend refines server-side and
	// ignores it.
	RefineLimit int
	// TargetRecall, when positive, asks the backend to choose the
	// candidate-set size per query so the expected recall hits this level
	// (KindApproxKNN, and the phase-1 tuning of KindKNN — where it trades
	// phase-2 work, never correctness). It must lie in (0, 1) and excludes
	// an explicit CandSize. Backends with a fitted candidate-size predictor
	// (KMeansDirect, see SetPredictor) resolve it per query from the
	// query's routing features; all others fall back to DefaultCandSize.
	TargetRecall float64
}

// DefaultCandSize is the candidate-set size used when Query.CandSize is
// left 0: generous enough for high recall at moderate k (the paper's
// sweeps use 10–70 candidates per requested neighbor).
func DefaultCandSize(k int) int { return max(20*k, 100) }

// effCandSize resolves a normalized query's candidate-set size for backends
// without a per-query predictor: the explicit CandSize when set, else the
// global default (a TargetRecall query keeps CandSize 0 as the predictor
// sentinel — here it degrades to the default rather than failing).
func effCandSize(nq Query) int {
	if nq.CandSize > 0 {
		return nq.CandSize
	}
	return DefaultCandSize(nq.K)
}

// ErrBadQuery marks query-validation failures, so callers serving remote
// users (the gateway) can separate "the request was malformed" from "the
// backend failed" without matching error strings: errors.Is(err,
// ErrBadQuery), or the IsQueryError shorthand.
var ErrBadQuery = errors.New("invalid query")

// IsQueryError reports whether err is a query-validation failure.
func IsQueryError(err error) bool { return errors.Is(err, ErrBadQuery) }

func badQuery(format string, args ...any) error {
	return fmt.Errorf("core: "+format+": %w", append(args, ErrBadQuery)...)
}

// normalized validates the query and fills defaults; every backend calls it
// first, so the three implementations agree on what a well-formed Query is.
// All validation failures wrap ErrBadQuery.
func (q Query) normalized() (Query, error) {
	if len(q.Vec) == 0 {
		return q, badQuery("query vector is empty")
	}
	switch q.Kind {
	case KindRange:
		if q.Radius < 0 {
			return q, badQuery("range radius must be non-negative, got %g", q.Radius)
		}
		if q.RefineLimit != 0 {
			return q, badQuery("RefineLimit applies to approximate queries only (kind %v)", q.Kind)
		}
		if q.TargetRecall != 0 {
			return q, badQuery("TargetRecall applies to candidate-set queries only (kind %v)", q.Kind)
		}
	case KindKNN, KindApproxKNN, KindFirstCell:
		if q.K <= 0 {
			return q, badQuery("k must be positive, got %d", q.K)
		}
		if q.CandSize < 0 {
			return q, badQuery("CandSize must be non-negative, got %d", q.CandSize)
		}
		if q.TargetRecall != 0 {
			if q.Kind == KindFirstCell {
				return q, badQuery("TargetRecall cannot steer the fixed 1-cell candidate set (kind %v)", q.Kind)
			}
			if q.TargetRecall <= 0 || q.TargetRecall >= 1 {
				return q, badQuery("TargetRecall must lie in (0, 1), got %g", q.TargetRecall)
			}
			if q.CandSize != 0 {
				return q, badQuery("CandSize and TargetRecall are mutually exclusive (set one)")
			}
			// CandSize stays 0: the sentinel a predictor-equipped backend
			// resolves per query; everyone else applies effCandSize.
		} else if q.CandSize == 0 {
			q.CandSize = DefaultCandSize(q.K)
		}
		if q.RefineLimit < 0 {
			return q, badQuery("RefineLimit must be non-negative, got %d", q.RefineLimit)
		}
		if q.RefineLimit != 0 && q.Kind == KindKNN {
			return q, badQuery("RefineLimit would break the precise k-NN guarantee (kind %v)", q.Kind)
		}
	default:
		return q, badQuery("unknown query kind %v", q.Kind)
	}
	return q, nil
}

// Searcher is the uniform query surface of the similarity cloud, satisfied
// by all three backends:
//
//   - EncryptedClient — the paper's deployment: an authorized client of an
//     untrusted server, transform and refinement on the client.
//   - PlainClient — the non-encrypted baseline: the server does everything.
//   - DirectClient — the index engine embedded in-process, no network.
//
// Search evaluates one query; SearchBatch evaluates many with backends free
// to amortize round trips (results are per-query, in input order). Both
// honor ctx: its deadline bounds every round trip and cancellation
// interrupts blocked IO, surfacing as an error wrapping ctx.Err().
//
// Implementations are safe for concurrent use.
type Searcher interface {
	Search(ctx context.Context, q Query) ([]Result, stats.Costs, error)
	SearchBatch(ctx context.Context, qs []Query) ([][]Result, stats.Costs, error)
	Close() error
}
