package core

import (
	"context"
	"errors"
	"fmt"
	"math/rand/v2"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"simcloud/internal/dataset"
	"simcloud/internal/metric"
	"simcloud/internal/pivot"
	"simcloud/internal/secret"
	"simcloud/internal/wire"
)

func testKey(t *testing.T) (*secret.Key, *dataset.Dataset) {
	t.Helper()
	ds := dataset.Clustered(42, 200, 6, 4, metric.L2{})
	rng := rand.New(rand.NewPCG(42, 1))
	pv := pivot.SelectRandom(rng, ds.Dist, ds.Objects, testPivotCount)
	key, err := secret.Generate(pv, secret.ModeCTRHMAC)
	if err != nil {
		t.Fatal(err)
	}
	return key, ds
}

// stalledServer answers the hello handshake correctly and then swallows
// every further frame without ever replying — the pathological peer the
// context plumbing exists for. It reports how many connections it has
// accepted and how many of them the client has closed.
type stalledServer struct {
	ln     net.Listener
	opened atomic.Int32
	closed atomic.Int32
}

func newStalledServer(t *testing.T, mode uint8, numPivots int) *stalledServer {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := &stalledServer{ln: ln}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			s.opened.Add(1)
			go func(conn net.Conn) {
				defer func() {
					conn.Close()
					s.closed.Add(1)
				}()
				for {
					typ, _, err := wire.ReadFrame(conn)
					if err != nil {
						return // client closed (or gave up)
					}
					if typ == wire.MsgHello {
						resp := wire.HelloResp{Mode: mode, NumPivots: uint32(numPivots)}.Encode()
						if err := wire.WriteFrame(conn, wire.MsgHelloAck, resp); err != nil {
							return
						}
						continue
					}
					// Any real request: stall forever (never answer).
					select {}
				}
			}(conn)
		}
	}()
	return s
}

// TestSearchDeadlineAgainstStalledServer is the acceptance criterion: a
// blocked server no longer hangs the client — a Search under a
// 100ms-deadline context against a stalled listener returns within ~1s
// with an error wrapping context.DeadlineExceeded.
func TestSearchDeadlineAgainstStalledServer(t *testing.T) {
	key, ds := testKey(t)
	srv := newStalledServer(t, wire.HelloModeEncrypted, testPivotCount)
	client, err := DialEncrypted(srv.ln.Addr().String(), key, Options{MaxLevel: testMaxLevel})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, _, err = client.Search(ctx, Query{Kind: KindApproxKNN, Vec: ds.Objects[0].Vec, K: 3, CandSize: 10})
	elapsed := time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expected context.DeadlineExceeded, got %v", err)
	}
	if elapsed > time.Second {
		t.Fatalf("deadline-bounded Search took %v", elapsed)
	}
}

// TestSearchCancelInterruptsBlockedRead: cancelling the context (no
// deadline involved) interrupts a Search blocked on a stalled server.
func TestSearchCancelInterruptsBlockedRead(t *testing.T) {
	key, ds := testKey(t)
	srv := newStalledServer(t, wire.HelloModeEncrypted, testPivotCount)
	client, err := DialEncrypted(srv.ln.Addr().String(), key, Options{MaxLevel: testMaxLevel})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, _, err = client.SearchBatch(ctx, []Query{
		{Kind: KindRange, Vec: ds.Objects[0].Vec, Radius: 5},
		{Kind: KindApproxKNN, Vec: ds.Objects[1].Vec, K: 2, CandSize: 10},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("expected context.Canceled, got %v", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("cancelled SearchBatch took %v", elapsed)
	}
}

// TestBatchCancelLeavesClientUsable: a context cancelled mid-batch poisons
// only its leased connection; a subsequent Search on a fresh lease works.
func TestBatchCancelLeavesClientUsable(t *testing.T) {
	client, ds, _ := testCloud(t, Options{BatchChunk: 4}, true)

	cancelled, cancel := context.WithCancel(context.Background())
	cancel() // dead before the flight starts
	qs := make([]Query, 32)
	for i := range qs {
		qs[i] = Query{Kind: KindApproxKNN, Vec: ds.Objects[i].Vec, K: 3, CandSize: 20}
	}
	if _, _, err := client.SearchBatch(cancelled, qs); !errors.Is(err, context.Canceled) {
		t.Fatalf("expected context.Canceled, got %v", err)
	}

	// A short-deadline batch that dies mid-flight (the deadline fires while
	// chunks are in transit on a live server is timing-dependent; the
	// already-expired deadline exercises the same release path).
	expired, cancel2 := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel2()
	if _, _, err := client.SearchBatch(expired, qs); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expected context.DeadlineExceeded, got %v", err)
	}

	// The client survives: fresh lease, working query, exact same answer as
	// an uncancelled client would produce.
	got, _, err := client.Search(context.Background(), Query{Kind: KindApproxKNN, Vec: ds.Objects[0].Vec, K: 3, CandSize: 20})
	if err != nil {
		t.Fatalf("Search after cancelled batch: %v", err)
	}
	if len(got) == 0 {
		t.Fatal("Search after cancelled batch returned nothing")
	}
}

// TestConcurrentSearchSharedClient hammers one EncryptedClient from many
// goroutines through the lease pool (run under -race in CI): mixed kinds,
// batches, and mutations must neither race nor cross answers between
// goroutines.
func TestConcurrentSearchSharedClient(t *testing.T) {
	client, ds, _ := testCloud(t, Options{BatchChunk: 8}, true)
	ctx := context.Background()

	// Precompute the expected answer of every probe sequentially; queries
	// are deterministic, so each goroutine must reproduce them exactly — a
	// crossed response (another goroutine's answer on the same lease) shows
	// up as a wrong answer, not just as a race.
	probes := make([]Query, 6)
	expected := make([][]Result, len(probes))
	for i := range probes {
		kinds := []Query{
			{Kind: KindApproxKNN, Vec: ds.Objects[i*37].Vec, K: 3, CandSize: 30},
			{Kind: KindRange, Vec: ds.Objects[i*37].Vec, Radius: 4},
			{Kind: KindFirstCell, Vec: ds.Objects[i*37].Vec, K: 2},
		}
		probes[i] = kinds[i%len(kinds)]
		want, _, err := client.Search(ctx, probes[i])
		if err != nil {
			t.Fatal(err)
		}
		expected[i] = want
	}

	const goroutines = 8
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for w := range goroutines {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(uint64(w), 99))
			for range 12 {
				pi := rng.IntN(len(probes))
				if rng.IntN(2) == 0 {
					got, _, err := client.Search(ctx, probes[pi])
					if err != nil {
						errs <- err
						return
					}
					if d := diffResults(expected[pi], got); d != "" {
						errs <- fmt.Errorf("probe %d: concurrent answer differs: %s", pi, d)
						return
					}
				} else {
					pj := rng.IntN(len(probes))
					got, _, err := client.SearchBatch(ctx, []Query{probes[pi], probes[pj]})
					if err != nil {
						errs <- err
						return
					}
					if d := diffResults(expected[pi], got[0]); d != "" {
						errs <- fmt.Errorf("probe %d: batched answer differs: %s", pi, d)
						return
					}
					if d := diffResults(expected[pj], got[1]); d != "" {
						errs <- fmt.Errorf("probe %d: batched answer differs: %s", pj, d)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestPoolHygiene: a pre-cancelled context must not condemn a healthy
// idle connection, and a concurrency burst must not pin one socket per
// peak goroutine after it drains.
func TestPoolHygiene(t *testing.T) {
	client, ds, _ := testCloud(t, Options{}, true)
	idleCount := func() int {
		client.pool.mu.Lock()
		defer client.pool.mu.Unlock()
		return len(client.pool.idle)
	}
	probe := Query{Kind: KindApproxKNN, Vec: ds.Objects[0].Vec, K: 2, CandSize: 20}

	before := idleCount()
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := client.Search(cancelled, probe); !errors.Is(err, context.Canceled) {
		t.Fatalf("expected context.Canceled, got %v", err)
	}
	if got := idleCount(); got != before {
		t.Errorf("pre-cancelled Search changed the idle pool: %d -> %d", before, got)
	}

	var wg sync.WaitGroup
	for range 4 * maxIdle {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, _, err := client.Search(context.Background(), probe); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if got := idleCount(); got > maxIdle {
		t.Errorf("idle pool holds %d connections after the burst, cap is %d", got, maxIdle)
	}
}

// TestDialFailureClosesConn audits the connection-leak fix: a dial that
// fails after the TCP connect — here a handshake pivot-count mismatch —
// must close the raw connection, observed through the wrapped listener's
// open/closed accounting.
func TestDialFailureClosesConn(t *testing.T) {
	key, _ := testKey(t) // key over testPivotCount pivots
	srv := newStalledServer(t, wire.HelloModeEncrypted, testPivotCount+3)
	if _, err := DialEncrypted(srv.ln.Addr().String(), key, Options{MaxLevel: testMaxLevel}); err == nil {
		t.Fatal("pivot-count mismatch accepted")
	}
	waitFor(t, "handshake-rejected connection closed", func() bool {
		return srv.opened.Load() == 1 && srv.closed.Load() == 1
	})

	// Mode mismatch: a plain client dialing an encrypted deployment.
	if _, err := DialPlain(srv.ln.Addr().String()); err == nil {
		t.Fatal("mode mismatch accepted")
	}
	waitFor(t, "mode-rejected connection closed", func() bool {
		return srv.opened.Load() == 2 && srv.closed.Load() == 2
	})
}

// TestDialContextDeadline: the dial handshake itself is bounded by ctx —
// a listener that accepts but never answers the hello cannot hang Dial.
func TestDialContextDeadline(t *testing.T) {
	key, _ := testKey(t)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			_ = conn // accept and never answer anything
		}
	}()
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = DialEncryptedContext(ctx, ln.Addr().String(), key, Options{MaxLevel: testMaxLevel})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expected context.DeadlineExceeded, got %v", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("deadline-bounded dial took %v", elapsed)
	}
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}
