package core

import (
	"math/rand/v2"
	"sort"
	"testing"

	"simcloud/internal/dataset"
	"simcloud/internal/metric"
	"simcloud/internal/pivot"
	"simcloud/internal/secret"
	"simcloud/internal/server"
)

// transformCloud builds an encrypted cloud whose key carries the
// distribution-hiding distance transformation (precise strategy).
func transformCloud(t *testing.T) (*EncryptedClient, *dataset.Dataset, *server.Server) {
	t.Helper()
	ds := dataset.Clustered(55, 700, 6, 8, metric.L2{})
	rng := rand.New(rand.NewPCG(55, 1))
	pv := pivot.SelectRandom(rng, ds.Dist, ds.Objects, testPivotCount)
	key, err := secret.Generate(pv, secret.ModeCTRHMAC)
	if err != nil {
		t.Fatal(err)
	}
	// Fit the equalizing transform from a sample of object–pivot distances.
	var sample []float64
	for i := 0; i < len(ds.Objects); i += 4 {
		sample = append(sample, pv.Distances(ds.Objects[i].Vec)...)
	}
	if err := key.FitTransform(sample, 32); err != nil {
		t.Fatal(err)
	}
	srv, err := server.NewEncrypted(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	client, err := DialEncrypted(srv.Addr(), key, Options{StoreDists: true, MaxLevel: testMaxLevel})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { client.Close() })
	if _, err := client.Insert(ds.Objects); err != nil {
		t.Fatal(err)
	}
	return client, ds, srv
}

// The headline guarantee: queries stay exact under the transformation.
func TestTransformedRangeStillExact(t *testing.T) {
	client, ds, _ := transformCloud(t)
	rng := rand.New(rand.NewPCG(56, 56))
	for trial := range 10 {
		q := ds.Objects[rng.IntN(len(ds.Objects))].Vec
		r := []float64{1, 4, 10}[trial%3]
		got, _, err := client.Range(q, r)
		if err != nil {
			t.Fatal(err)
		}
		want := 0
		for _, o := range ds.Objects {
			if ds.Dist.Dist(q, o.Vec) <= r {
				want++
			}
		}
		if len(got) != want {
			t.Fatalf("r=%g: got %d results, want %d", r, len(got), want)
		}
		for _, res := range got {
			if res.Dist > r {
				t.Fatalf("result at %g beyond radius %g", res.Dist, r)
			}
		}
	}
}

func TestTransformedPreciseKNNStillExact(t *testing.T) {
	client, ds, _ := transformCloud(t)
	rng := rand.New(rand.NewPCG(57, 57))
	for range 6 {
		q := ds.Objects[rng.IntN(len(ds.Objects))].Vec
		k := 1 + rng.IntN(8)
		got, _, err := client.KNN(q, k, 50)
		if err != nil {
			t.Fatal(err)
		}
		want := bruteKNN(ds, q, k)
		if len(got) != len(want) {
			t.Fatalf("k=%d: got %d, want %d", k, len(got), len(want))
		}
		for i := range got {
			if got[i].Dist != want[i].Dist {
				t.Fatalf("k=%d rank %d: %g vs %g", k, i, got[i].Dist, want[i].Dist)
			}
		}
	}
}

// The server must see only transformed (near-uniform, [0,1]-ranged)
// distances — not the raw distance distribution.
func TestTransformHidesDistribution(t *testing.T) {
	client, _, srv := transformCloud(t)
	_ = client
	entries, err := srv.Index().AllEntries()
	if err != nil {
		t.Fatal(err)
	}
	var all []float64
	for _, e := range entries {
		if e.Dists == nil {
			t.Fatal("precise-strategy entry lacks distances")
		}
		all = append(all, e.Dists...)
	}
	sort.Float64s(all)
	// Transformed distances live in [0, ~1] (extrapolation may exceed 1
	// slightly) and are roughly uniform: the median must sit near 0.5.
	if all[0] < 0 || all[len(all)-1] > 1.5 {
		t.Fatalf("transformed distances out of range: [%g, %g]", all[0], all[len(all)-1])
	}
	median := all[len(all)/2]
	if median < 0.35 || median > 0.65 {
		t.Fatalf("transformed distance median %g — distribution not equalized", median)
	}
	// Quartiles near uniform too.
	q1, q3 := all[len(all)/4], all[3*len(all)/4]
	if q1 < 0.1 || q1 > 0.4 || q3 < 0.6 || q3 > 0.9 {
		t.Fatalf("transformed quartiles %g/%g — distribution not equalized", q1, q3)
	}
}

// An untransformed deployment stores raw distances whose distribution is
// visibly non-uniform — the contrast the transformation removes.
func TestUntransformedLeaksDistribution(t *testing.T) {
	_, _, _, srv := testCloudSrv(t, Options{StoreDists: true}, true)
	entries, err := srv.Index().AllEntries()
	if err != nil {
		t.Fatal(err)
	}
	var all []float64
	for _, e := range entries {
		all = append(all, e.Dists...)
	}
	sort.Float64s(all)
	maxD := all[len(all)-1]
	if maxD <= 1.5 {
		t.Skip("raw distances already tiny; contrast test uninformative")
	}
	// Raw metric distances are not confined to [0,1] — the attacker sees
	// the true scale and shape of the metric space.
	if all[len(all)/2]/maxD > 0.65 || all[len(all)/2]/maxD < 0.05 {
		// The median/max ratio is a loose shape check; the essential
		// assertion is the scale leak above.
		t.Logf("raw distance median/max ratio: %g", all[len(all)/2]/maxD)
	}
}

func TestTransformSurvivesKeyMarshal(t *testing.T) {
	client, ds, _ := transformCloud(t)
	blob, err := client.Key().Marshal()
	if err != nil {
		t.Fatal(err)
	}
	restored, err := secret.Unmarshal(blob)
	if err != nil {
		t.Fatal(err)
	}
	if restored.Transform() == nil {
		t.Fatal("transform lost in key marshaling")
	}
	// The restored key must produce identical transformed vectors.
	dists := client.Key().Pivots().Distances(ds.Objects[0].Vec)
	a := client.Key().TransformDists(dists)
	b := restored.TransformDists(dists)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("transform differs after marshal at %d: %g vs %g", i, a[i], b[i])
		}
	}
}

func TestTransformDeterministicPerKey(t *testing.T) {
	ds := dataset.Clustered(58, 200, 4, 4, metric.L1{})
	rng := rand.New(rand.NewPCG(58, 1))
	pv := pivot.SelectRandom(rng, ds.Dist, ds.Objects, 6)
	key, err := secret.Generate(pv, secret.ModeCTRHMAC)
	if err != nil {
		t.Fatal(err)
	}
	var sample []float64
	for _, o := range ds.Objects[:50] {
		sample = append(sample, pv.Distances(o.Vec)...)
	}
	if err := key.FitTransform(sample, 16); err != nil {
		t.Fatal(err)
	}
	first := key.TransformDists([]float64{1, 5, 20})
	if err := key.FitTransform(sample, 16); err != nil {
		t.Fatal(err)
	}
	second := key.TransformDists([]float64{1, 5, 20})
	for i := range first {
		if first[i] != second[i] {
			t.Fatal("re-fitting with the same key and sample changed the transform")
		}
	}
}
