package core

import (
	"context"
	"math/rand/v2"
	"strings"
	"testing"

	"simcloud/internal/dataset"
	"simcloud/internal/metric"
	"simcloud/internal/pivot"
	"simcloud/internal/secret"
	"simcloud/internal/server"
	"simcloud/internal/wal"
)

// TestInsertStreamMatchesInsert: the streamed ingest must leave the server
// in the same state as one monolithic insert, across shard counts and with
// a chunk/window combination small enough to exercise the ack window many
// times over.
func TestInsertStreamMatchesInsert(t *testing.T) {
	for _, shards := range []int{1, 4} {
		cfg := testConfig()
		cfg.Shards = shards
		mono, ds, monoSrv := batchCloud(t, cfg, Options{})
		if _, err := mono.Insert(ds.Objects); err != nil {
			t.Fatal(err)
		}
		streamed, _, streamedSrv := batchCloud(t, cfg, Options{BatchChunk: 32, StreamWindow: 3})
		costs, err := streamed.InsertStream(ds.Objects)
		if err != nil {
			t.Fatal(err)
		}
		if costs.RoundTrips != 1 {
			t.Fatalf("streamed insert reported %d round trips, want 1", costs.RoundTrips)
		}
		if costs.EncryptTime <= 0 || costs.DistCompTime <= 0 || costs.BytesSent <= 0 {
			t.Fatalf("implausible stream costs: %+v", costs)
		}
		if streamedSrv.Index().Size() != monoSrv.Index().Size() {
			t.Fatalf("shards=%d: streamed ingest left %d entries, monolithic %d",
				shards, streamedSrv.Index().Size(), monoSrv.Index().Size())
		}
		q := ds.Objects[3].Vec
		want, _, err := mono.ApproxKNN(q, 10, 120)
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := streamed.ApproxKNN(q, 10, 120)
		if err != nil {
			t.Fatal(err)
		}
		if !sameResults(got, want) {
			t.Fatalf("shards=%d: post-ingest results differ", shards)
		}
	}
}

// TestInsertStreamGroupCommitWAL: a streamed ingest against a group-commit
// WAL must log every chunk, and the recovered log must replay to the full
// ingested state — the end-of-stream flush closes the commit window before
// the final ack, so nothing acknowledged is lost to an unflushed tail.
func TestInsertStreamGroupCommitWAL(t *testing.T) {
	ds := dataset.Clustered(42, 500, 6, 8, metric.L2{})
	rng := rand.New(rand.NewPCG(42, 1))
	pv := pivot.SelectRandom(rng, ds.Dist, ds.Objects, testPivotCount)
	key, err := secret.Generate(pv, secret.ModeCTRHMAC)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	log, recs, err := wal.Open(dir, wal.SyncGroup)
	if err != nil {
		t.Fatal(err)
	}
	defer log.Close()
	if len(recs) != 0 {
		t.Fatalf("fresh log recovered %d records", len(recs))
	}
	srv, err := server.NewEncrypted(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	srv.AttachWAL(log)
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	client, err := DialEncrypted(srv.Addr(), key, Options{MaxLevel: testMaxLevel, BatchChunk: 32, StreamWindow: 4})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { client.Close() })

	if _, err := client.InsertStream(ds.Objects); err != nil {
		t.Fatal(err)
	}
	// Simulate restart: reopen the log and check one record per chunk,
	// covering every object — the end-of-stream flush made the whole
	// group-commit window durable before the final ack.
	client.Close()
	srv.Close()
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}
	log2, recovered, err := wal.Open(dir, wal.SyncGroup)
	if err != nil {
		t.Fatal(err)
	}
	defer log2.Close()
	wantChunks := (len(ds.Objects) + 31) / 32
	if len(recovered) != wantChunks {
		t.Fatalf("log holds %d records, want %d chunks", len(recovered), wantChunks)
	}
	total := 0
	for _, rec := range recovered {
		if rec.Op != wal.OpInsert {
			t.Fatalf("unexpected op %d in ingest log", rec.Op)
		}
		total += len(rec.Entries)
	}
	if total != len(ds.Objects) {
		t.Fatalf("log covers %d entries, want %d", total, len(ds.Objects))
	}
}

// TestInsertStreamDuplicateFails: a server rejection mid-stream must
// surface as an error naming the failing chunk, not hang the window.
func TestInsertStreamDuplicateFails(t *testing.T) {
	client, ds, _, _ := testCloudSrv(t, Options{BatchChunk: 16, StreamWindow: 2}, false)
	if _, err := client.InsertStream(ds.Objects[:100]); err != nil {
		t.Fatal(err)
	}
	_, err := client.InsertStream(ds.Objects[:100])
	if err == nil {
		t.Fatal("re-streaming the same IDs succeeded")
	}
	if !strings.Contains(err.Error(), "ingest chunk 0") {
		t.Fatalf("error does not name the failing chunk: %v", err)
	}
	// The failed flight had up to StreamWindow chunks (plus their error
	// responses) in flight past the first rejection; the client must drain
	// them before re-pooling the connection, so the next exchanges — a
	// query and a fresh stream — see a cleanly framed connection, not a
	// stale ingest ack.
	if _, _, err := client.ApproxKNN(ds.Objects[0].Vec, 5, 60); err != nil {
		t.Fatalf("query after failed stream: %v", err)
	}
	if _, err := client.InsertStream(ds.Objects[100:200]); err != nil {
		t.Fatalf("fresh stream after failed stream: %v", err)
	}
	if _, _, err := client.ApproxKNN(ds.Objects[150].Vec, 5, 60); err != nil {
		t.Fatalf("query after recovered stream: %v", err)
	}
}

// TestInsertStreamPlain: the plain deployment's streamed upload must match
// a monolithic upload.
func TestInsertStreamPlain(t *testing.T) {
	ds := dataset.Clustered(43, 600, 6, 8, metric.L2{})
	rng := rand.New(rand.NewPCG(43, 1))
	pv := pivot.SelectRandom(rng, ds.Dist, ds.Objects, testPivotCount)
	newClient := func() (*PlainClient, *server.Server) {
		srv, err := server.NewPlain(testConfig(), pv)
		if err != nil {
			t.Fatal(err)
		}
		if err := srv.Start("127.0.0.1:0"); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Close() })
		client, err := DialPlain(srv.Addr())
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { client.Close() })
		return client, srv
	}
	mono, monoSrv := newClient()
	if _, err := mono.Insert(ds.Objects); err != nil {
		t.Fatal(err)
	}
	streamed, streamedSrv := newClient()
	costs, err := streamed.InsertStream(ds.Objects)
	if err != nil {
		t.Fatal(err)
	}
	if costs.RoundTrips != 1 || costs.ServerTime <= 0 {
		t.Fatalf("implausible plain stream costs: %+v", costs)
	}
	if streamedSrv.PlainIndex().Idx.Size() != monoSrv.PlainIndex().Idx.Size() {
		t.Fatalf("streamed plain ingest left %d entries, monolithic %d",
			streamedSrv.PlainIndex().Idx.Size(), monoSrv.PlainIndex().Idx.Size())
	}
	q := ds.Objects[5].Vec
	want, _, err := mono.KNN(q, 10)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := streamed.KNN(q, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !sameResults(got, want) {
		t.Fatal("post-ingest plain results differ")
	}
}

// TestInsertStreamDirect: the in-process client's chunked ingest must leave
// the engine identical (stats and reads) to one bulk insert.
func TestInsertStreamDirect(t *testing.T) {
	ds := dataset.Clustered(44, 700, 6, 8, metric.L2{})
	rng := rand.New(rand.NewPCG(44, 1))
	pv := pivot.SelectRandom(rng, ds.Dist, ds.Objects, testPivotCount)
	key, err := secret.Generate(pv, secret.ModeCTRHMAC)
	if err != nil {
		t.Fatal(err)
	}
	newDirect := func() *DirectClient {
		c, err := NewDirect(testConfig(), key, Options{MaxLevel: testMaxLevel, BatchChunk: 48})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { c.Close() })
		return c
	}
	mono, streamed := newDirect(), newDirect()
	if _, err := mono.Insert(ds.Objects); err != nil {
		t.Fatal(err)
	}
	if _, err := streamed.InsertStream(ds.Objects); err != nil {
		t.Fatal(err)
	}
	if mono.Engine().Size() != streamed.Engine().Size() {
		t.Fatalf("sizes differ: %d vs %d", mono.Engine().Size(), streamed.Engine().Size())
	}
	q := Query{Kind: KindApproxKNN, Vec: ds.Objects[9].Vec, K: 10, CandSize: 120}
	want, _, err := mono.Search(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := streamed.Search(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if !sameResults(got, want) {
		t.Fatal("post-ingest direct results differ")
	}
}
