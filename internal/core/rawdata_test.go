package core

import (
	"bytes"
	"fmt"
	"testing"

	"simcloud/internal/secret"
)

func TestRawDataRoundTrip(t *testing.T) {
	client, ds, _ := testCloud(t, Options{}, true)
	// Upload raw records for the first 50 objects.
	items := map[uint64][]byte{}
	for i := range 50 {
		items[uint64(i)] = fmt.Appendf(nil, "raw record for object %d: %v", i, ds.Objects[i].Vec[:2])
	}
	costs, err := client.UploadRaw(items)
	if err != nil {
		t.Fatal(err)
	}
	if costs.EncryptTime <= 0 {
		t.Fatal("raw upload reported no encryption time")
	}

	// The complete outsourced flow: similarity search → IDs → raw fetch.
	res, _, err := client.ApproxKNN(ds.Objects[7].Vec, 5, 100)
	if err != nil {
		t.Fatal(err)
	}
	var ids []uint64
	for _, r := range res {
		if r.ID < 50 {
			ids = append(ids, r.ID)
		}
	}
	if len(ids) == 0 {
		t.Skip("no neighbors among the raw-stored objects")
	}
	raw, fcosts, err := client.FetchRaw(ids)
	if err != nil {
		t.Fatal(err)
	}
	if fcosts.DecryptTime <= 0 {
		t.Fatal("raw fetch reported no decryption time")
	}
	for _, id := range ids {
		want := items[id]
		if !bytes.Equal(raw[id], want) {
			t.Fatalf("raw record %d mismatch: %q vs %q", id, raw[id], want)
		}
	}
}

func TestRawDataUnknownID(t *testing.T) {
	client, _, _ := testCloud(t, Options{}, false)
	if _, err := client.UploadRaw(map[uint64][]byte{1: []byte("x")}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := client.FetchRaw([]uint64{1, 999}); err == nil {
		t.Fatal("fetch of unknown raw ID succeeded")
	}
}

func TestRawDataServerStoresOnlyCiphertext(t *testing.T) {
	client, _, key := testCloud(t, Options{}, false)
	plaintext := []byte("the sensitive raw record")
	if _, err := client.UploadRaw(map[uint64][]byte{5: plaintext}); err != nil {
		t.Fatal(err)
	}
	// Fetch through a foreign key: the blob arrives but cannot be opened.
	otherKey, err := secret.Generate(key.Pivots(), secret.ModeCTRHMAC)
	if err != nil {
		t.Fatal(err)
	}
	attacker, err := DialEncrypted(client.Addr(), otherKey,
		Options{MaxLevel: testMaxLevel})
	if err != nil {
		t.Fatal(err)
	}
	defer attacker.Close()
	if _, _, err := attacker.FetchRaw([]uint64{5}); err == nil {
		t.Fatal("attacker decrypted raw data without the key")
	}
}
