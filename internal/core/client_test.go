package core

import (
	"errors"
	"math/rand/v2"
	"net"
	"sort"
	"sync"
	"testing"

	"simcloud/internal/dataset"
	"simcloud/internal/metric"
	"simcloud/internal/mindex"
	"simcloud/internal/pivot"
	"simcloud/internal/secret"
	"simcloud/internal/server"
	"simcloud/internal/wire"
)

const (
	testPivotCount = 10
	testMaxLevel   = 4
)

func testConfig() mindex.Config {
	return mindex.Config{
		NumPivots:      testPivotCount,
		MaxLevel:       testMaxLevel,
		BucketCapacity: 25,
		Storage:        mindex.StorageMemory,
		Ranking:        mindex.RankFootrule,
	}
}

// testCloud spins up an encrypted server + authorized client over loopback
// TCP and indexes the data set.
func testCloud(t *testing.T, opts Options, insert bool) (*EncryptedClient, *dataset.Dataset, *secret.Key) {
	client, ds, key, _ := testCloudSrv(t, opts, insert)
	return client, ds, key
}

func testCloudSrv(t *testing.T, opts Options, insert bool) (*EncryptedClient, *dataset.Dataset, *secret.Key, *server.Server) {
	t.Helper()
	ds := dataset.Clustered(42, 800, 6, 8, metric.L2{})
	rng := rand.New(rand.NewPCG(42, 1))
	pv := pivot.SelectRandom(rng, ds.Dist, ds.Objects, testPivotCount)
	key, err := secret.Generate(pv, secret.ModeCTRHMAC)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.NewEncrypted(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	opts.MaxLevel = testMaxLevel
	client, err := DialEncrypted(srv.Addr(), key, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { client.Close() })
	if insert {
		costs, err := client.Insert(ds.Objects)
		if err != nil {
			t.Fatal(err)
		}
		if costs.EncryptTime <= 0 || costs.DistCompTime <= 0 || costs.BytesSent <= 0 {
			t.Fatalf("implausible insert costs: %+v", costs)
		}
	}
	return client, ds, key, srv
}

func bruteKNN(ds *dataset.Dataset, q metric.Vector, k int) []Result {
	out := make([]Result, 0, len(ds.Objects))
	for _, o := range ds.Objects {
		out = append(out, Result{ID: o.ID, Dist: ds.Dist.Dist(q, o.Vec), Object: o})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Dist != out[j].Dist {
			return out[i].Dist < out[j].Dist
		}
		return out[i].ID < out[j].ID
	})
	if len(out) > k {
		out = out[:k]
	}
	return out
}

func TestEncryptedRangeMatchesBruteForce(t *testing.T) {
	client, ds, _ := testCloud(t, Options{StoreDists: true}, true)
	rng := rand.New(rand.NewPCG(7, 7))
	for trial := range 10 {
		q := ds.Objects[rng.IntN(len(ds.Objects))].Vec
		r := []float64{1, 4, 12}[trial%3]
		got, costs, err := client.Range(q, r)
		if err != nil {
			t.Fatal(err)
		}
		want := map[uint64]float64{}
		for _, o := range ds.Objects {
			if d := ds.Dist.Dist(q, o.Vec); d <= r {
				want[o.ID] = d
			}
		}
		if len(got) != len(want) {
			t.Fatalf("r=%g: got %d results, want %d", r, len(got), len(want))
		}
		for _, res := range got {
			if wd, ok := want[res.ID]; !ok || wd != res.Dist {
				t.Fatalf("result %d dist %g, want %g (present=%v)", res.ID, res.Dist, wd, ok)
			}
		}
		if costs.DecryptTime <= 0 || costs.BytesReceived <= 0 {
			t.Fatalf("implausible search costs: %+v", costs)
		}
		if costs.Candidates < int64(len(want)) {
			t.Fatalf("candidate set %d smaller than answer %d", costs.Candidates, len(want))
		}
	}
}

func TestEncryptedPreciseKNNMatchesBruteForce(t *testing.T) {
	client, ds, _ := testCloud(t, Options{StoreDists: true}, true)
	rng := rand.New(rand.NewPCG(8, 8))
	for range 8 {
		q := ds.Objects[rng.IntN(len(ds.Objects))].Vec
		k := 1 + rng.IntN(10)
		got, _, err := client.KNN(q, k, 64)
		if err != nil {
			t.Fatal(err)
		}
		want := bruteKNN(ds, q, k)
		if len(got) != len(want) {
			t.Fatalf("k=%d: %d results, want %d", k, len(got), len(want))
		}
		for i := range got {
			if got[i].Dist != want[i].Dist {
				t.Fatalf("k=%d rank %d: dist %g, want %g", k, i, got[i].Dist, want[i].Dist)
			}
		}
	}
}

func TestEncryptedApproxKNNRecall(t *testing.T) {
	client, ds, _ := testCloud(t, Options{}, true)
	rng := rand.New(rand.NewPCG(9, 9))
	const k = 10
	recallAt := func(candSize int) float64 {
		var sum float64
		const queries = 15
		for range queries {
			q := ds.Objects[rng.IntN(len(ds.Objects))].Vec
			got, costs, err := client.ApproxKNN(q, k, candSize)
			if err != nil {
				t.Fatal(err)
			}
			if costs.Candidates > int64(candSize) {
				t.Fatalf("candidate set %d exceeds requested %d", costs.Candidates, candSize)
			}
			want := bruteKNN(ds, q, k)
			hit := 0
			wantIDs := map[uint64]bool{}
			for _, w := range want {
				wantIDs[w.ID] = true
			}
			for _, g := range got {
				if wantIDs[g.ID] {
					hit++
				}
			}
			sum += float64(hit) / float64(len(want)) * 100
		}
		return sum / queries
	}
	small := recallAt(40)
	big := recallAt(400)
	full := recallAt(len(ds.Objects))
	if big < small-10 { // allow sampling noise, but the trend must hold
		t.Fatalf("recall did not improve with candidate size: %g%% -> %g%%", small, big)
	}
	if full != 100 {
		t.Fatalf("full candidate set recall = %g%%, want 100%%", full)
	}
}

func TestEncryptedServerSeesNoPlaintext(t *testing.T) {
	_, ds, _, srv := testCloudSrv(t, Options{}, true)
	// White-box check of the server-side index: every entry must hold an
	// opaque payload and no raw vector; with StoreDists=false not even the
	// distance vector is present — only the permutation prefix.
	entries, err := srv.Index().AllEntries()
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != len(ds.Objects) {
		t.Fatalf("server holds %d entries, want %d", len(entries), len(ds.Objects))
	}
	for _, e := range entries {
		if e.Vec != nil {
			t.Fatal("server stores a raw vector")
		}
		if e.Dists != nil {
			t.Fatal("server stores pivot distances despite approximate strategy")
		}
		if len(e.Payload) == 0 {
			t.Fatal("server entry has no encrypted payload")
		}
		if len(e.Perm) != testMaxLevel {
			t.Fatalf("permutation prefix length %d, want %d", len(e.Perm), testMaxLevel)
		}
	}
}

func TestPlainClientEndToEnd(t *testing.T) {
	ds := dataset.Clustered(43, 600, 6, 8, metric.L2{})
	rng := rand.New(rand.NewPCG(43, 1))
	pv := pivot.SelectRandom(rng, ds.Dist, ds.Objects, testPivotCount)
	srv, err := server.NewPlain(testConfig(), pv)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	client, err := DialPlain(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	costs, err := client.Insert(ds.Objects)
	if err != nil {
		t.Fatal(err)
	}
	if costs.ServerTime <= 0 || costs.DistCompTime <= 0 {
		t.Fatalf("implausible plain insert costs: %+v", costs)
	}
	if costs.EncryptTime != 0 {
		t.Fatal("plain insert reported encryption time")
	}

	q := ds.Objects[5].Vec
	// Precise KNN against brute force.
	got, kcosts, err := client.KNN(q, 7)
	if err != nil {
		t.Fatal(err)
	}
	want := bruteKNN(ds, q, 7)
	if len(got) != len(want) {
		t.Fatalf("knn: %d results, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i].Dist != want[i].Dist {
			t.Fatalf("knn rank %d: %g vs %g", i, got[i].Dist, want[i].Dist)
		}
	}
	if kcosts.DecryptTime != 0 {
		t.Fatal("plain search reported decryption time")
	}

	// Range.
	rres, _, err := client.Range(q, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rres {
		if r.Dist > 5 {
			t.Fatalf("range result at %g beyond radius", r.Dist)
		}
	}

	// Approximate: returns k results, comm cost independent of candSize.
	a1, c1, err := client.ApproxKNN(q, 5, 50)
	if err != nil {
		t.Fatal(err)
	}
	a2, c2, err := client.ApproxKNN(q, 5, 400)
	if err != nil {
		t.Fatal(err)
	}
	if len(a1) != 5 || len(a2) != 5 {
		t.Fatalf("approx sizes: %d, %d", len(a1), len(a2))
	}
	if c1.BytesReceived != c2.BytesReceived {
		t.Fatalf("plain approx comm cost varies with candSize: %d vs %d",
			c1.BytesReceived, c2.BytesReceived)
	}
}

func TestWrongKeyCannotDecrypt(t *testing.T) {
	client, ds, _ := testCloud(t, Options{}, true)
	// A second "attacker" client with a different cipher key but the same
	// pivots can send well-formed queries yet cannot decrypt candidates.
	otherKey, err := secret.Generate(client.Key().Pivots(), secret.ModeCTRHMAC)
	if err != nil {
		t.Fatal(err)
	}
	attacker, err := DialEncrypted(client.Addr(), otherKey,
		Options{MaxLevel: testMaxLevel})
	if err != nil {
		t.Fatal(err)
	}
	defer attacker.Close()
	_, _, err = attacker.ApproxKNN(ds.Objects[0].Vec, 5, 50)
	if err == nil {
		t.Fatal("attacker refined candidates without the data key")
	}
	if !errors.Is(err, secret.ErrAuth) {
		t.Fatalf("expected authentication failure, got %v", err)
	}
}

func TestModeMismatchIsRemoteError(t *testing.T) {
	client, ds, _ := testCloud(t, Options{}, false)
	_ = ds
	// Speak the plain protocol to the encrypted server.
	// A plain client wired straight onto the encrypted server's address,
	// skipping the dial handshake (which would catch the mismatch early):
	// the pool leases raw connections without a hello.
	raw, err := net.Dial("tcp", client.Addr())
	if err != nil {
		t.Fatal(err)
	}
	pc := &PlainClient{addr: client.Addr(), pool: newConnPool(nil)}
	pc.pool.putIdle(wire.NewCountingConn(raw))
	defer pc.Close()
	_, err = pc.Insert([]metric.Object{{ID: 1, Vec: metric.Vector{1, 2, 3, 4, 5, 6}}})
	var remote *wire.RemoteError
	if !errors.As(err, &remote) {
		t.Fatalf("expected remote error, got %v", err)
	}
}

func TestValidation(t *testing.T) {
	client, ds, _ := testCloud(t, Options{}, true)
	q := ds.Objects[0].Vec
	if _, _, err := client.ApproxKNN(q, 0, 10); err == nil {
		t.Error("k=0 accepted")
	}
	if _, _, err := client.ApproxKNN(q, 5, 0); err == nil {
		t.Error("candSize=0 accepted")
	}
	if _, _, err := client.FirstCellKNN(q, 0); err == nil {
		t.Error("first-cell k=0 accepted")
	}
	if _, err := DialEncrypted("127.0.0.1:1", nil, Options{PrefixLen: 1, MaxLevel: 8}); err == nil {
		t.Error("PrefixLen < MaxLevel accepted")
	}
}

func TestFirstCellKNN(t *testing.T) {
	client, ds, _ := testCloud(t, Options{}, true)
	rng := rand.New(rand.NewPCG(10, 10))
	hits := 0
	const queries = 30
	for range queries {
		q := ds.Objects[rng.IntN(len(ds.Objects))].Vec
		got, costs, err := client.FirstCellKNN(q, 1)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 1 {
			t.Fatalf("got %d results", len(got))
		}
		if costs.Candidates <= 0 {
			t.Fatal("no candidates transferred")
		}
		want := bruteKNN(ds, q, 1)
		if got[0].ID == want[0].ID {
			hits++
		}
	}
	// The query object itself is indexed, so its own cell is always the
	// most promising one and the 1-NN (the object, distance 0) must be found
	// in the vast majority of cases.
	if hits < queries*3/4 {
		t.Fatalf("1-NN recall %d/%d too low", hits, queries)
	}
}

func TestConcurrentClients(t *testing.T) {
	client, ds, key := testCloud(t, Options{}, true)
	addr := client.Addr()
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for w := range 8 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := DialEncrypted(addr, key, Options{MaxLevel: testMaxLevel})
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			rng := rand.New(rand.NewPCG(uint64(w), 77))
			for range 10 {
				q := ds.Objects[rng.IntN(len(ds.Objects))].Vec
				if _, _, err := c.ApproxKNN(q, 5, 60); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestParallelInsertEquivalent(t *testing.T) {
	ds := dataset.Clustered(91, 600, 6, 8, metric.L2{})
	rng := rand.New(rand.NewPCG(91, 1))
	pv := pivot.SelectRandom(rng, ds.Dist, ds.Objects, testPivotCount)
	key, err := secret.Generate(pv, secret.ModeCTRHMAC)
	if err != nil {
		t.Fatal(err)
	}
	build := func(workers int) (*server.Server, *EncryptedClient) {
		srv, err := server.NewEncrypted(testConfig())
		if err != nil {
			t.Fatal(err)
		}
		if err := srv.Start("127.0.0.1:0"); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Close() })
		c, err := DialEncrypted(srv.Addr(), key, Options{MaxLevel: testMaxLevel, Workers: workers, StoreDists: true})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { c.Close() })
		costs, err := c.Insert(ds.Objects)
		if err != nil {
			t.Fatal(err)
		}
		if costs.EncryptTime <= 0 || costs.DistComps != int64(len(ds.Objects)*testPivotCount) {
			t.Fatalf("workers=%d: implausible costs %+v", workers, costs)
		}
		return srv, c
	}
	srv1, c1 := build(1)
	srv4, c4 := build(4)

	// Identical server-side index structure and identical query answers.
	st1, st4 := srv1.Index().TreeStats(), srv4.Index().TreeStats()
	if st1 != st4 {
		t.Fatalf("tree stats differ: %+v vs %+v", st1, st4)
	}
	q := ds.Objects[11].Vec
	r1, _, err := c1.Range(q, 6)
	if err != nil {
		t.Fatal(err)
	}
	r4, _, err := c4.Range(q, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(r1) != len(r4) {
		t.Fatalf("range results differ: %d vs %d", len(r1), len(r4))
	}
	for i := range r1 {
		if r1[i].ID != r4[i].ID || r1[i].Dist != r4[i].Dist {
			t.Fatalf("result %d differs", i)
		}
	}
}

func TestApproxKNNPartialRefinement(t *testing.T) {
	client, ds, _ := testCloud(t, Options{}, true)
	q := ds.Objects[21].Vec
	_, fullCosts, err := client.ApproxKNN(q, 10, 400)
	if err != nil {
		t.Fatal(err)
	}
	partial, partCosts, err := client.ApproxKNNPartial(q, 10, 400, 80)
	if err != nil {
		t.Fatal(err)
	}
	if len(partial) != 10 {
		t.Fatalf("partial returned %d results", len(partial))
	}
	// Same bytes cross the wire (same candidate set), but the partial
	// variant decrypts a fifth of it.
	if partCosts.BytesReceived != fullCosts.BytesReceived {
		t.Fatalf("partial transfer %d != full transfer %d",
			partCosts.BytesReceived, fullCosts.BytesReceived)
	}
	if partCosts.DistComps >= fullCosts.DistComps {
		t.Fatalf("partial refinement did not reduce distance computations: %d vs %d",
			partCosts.DistComps, fullCosts.DistComps)
	}
	// The query object itself sits in the most promising cell, so even the
	// partial refinement must find it.
	if partial[0].Dist != 0 {
		t.Fatalf("partial refinement missed the query object: nearest %g", partial[0].Dist)
	}
	// Validation.
	if _, _, err := client.ApproxKNNPartial(q, 10, 400, 0); err == nil {
		t.Fatal("refineLimit=0 accepted")
	}
}
