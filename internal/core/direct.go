package core

import (
	"context"
	"fmt"
	"time"

	"simcloud/internal/engine"
	"simcloud/internal/metric"
	"simcloud/internal/mindex"
	"simcloud/internal/pivot"
	"simcloud/internal/secret"
	"simcloud/internal/stats"
	"simcloud/internal/wire"
)

// DirectClient embeds the similarity-cloud engine in-process: the same
// client-side transform and refinement as EncryptedClient (the shared
// coder), the same sharded M-Index engine a server hosts, but no network
// between them — the embedded-library scenario. The index still stores
// only ciphertexts plus pivot-space metadata (entries are bit-identical to
// what an encrypted server would hold), so a snapshot taken here can be
// served remotely later and vice versa; what disappears is the wire, not
// the privacy boundary.
//
// DirectClient implements Searcher, so examples and benchmarks written
// against the unified query API run unchanged in-process. It is safe for
// concurrent use (the engine locks per shard).
type DirectClient struct {
	coder
	eng       *engine.ShardedIndex
	ownEngine bool
}

var _ Searcher = (*DirectClient)(nil)

// NewDirect creates an in-process client over a fresh engine built from
// cfg. The key plays the same role as for DialEncrypted (pivots, cipher,
// optional distance transform) and must match cfg's pivot count.
func NewDirect(cfg mindex.Config, key *secret.Key, opts Options) (*DirectClient, error) {
	eng, err := engine.New(cfg)
	if err != nil {
		return nil, err
	}
	c, err := NewDirectWithEngine(eng, key, opts)
	if err != nil {
		eng.Close()
		return nil, err
	}
	c.ownEngine = true
	return c, nil
}

// NewDirectWithEngine wraps an existing engine — typically one restored
// from a snapshot — without taking ownership of it: closing the client
// does not close the engine.
func NewDirectWithEngine(eng *engine.ShardedIndex, key *secret.Key, opts Options) (*DirectClient, error) {
	// Validate exactly like DialEncryptedContext, so the same Options are
	// accepted or rejected identically across the backends — code validated
	// against the embedded backend must not fail when pointed at a server.
	o := opts.withDefaults()
	if o.PrefixLen < o.MaxLevel {
		return nil, fmt.Errorf("core: PrefixLen %d below index MaxLevel %d", o.PrefixLen, o.MaxLevel)
	}
	if o.PrefixLen > key.Pivots().N() {
		o.PrefixLen = key.Pivots().N()
	}
	if key.Pivots().N() != eng.Config().NumPivots {
		return nil, fmt.Errorf("core: engine index uses %d pivots, client key has %d — wrong key for this index",
			eng.Config().NumPivots, key.Pivots().N())
	}
	// The dialed client learns the server's MaxLevel the hard way (a too-
	// short prefix is rejected at insert); here the engine is in hand, so
	// the mismatch can fail fast with the same meaning.
	if o.PrefixLen < eng.Config().MaxLevel {
		return nil, fmt.Errorf("core: PrefixLen %d below engine index MaxLevel %d (set Options.MaxLevel to match the engine)",
			o.PrefixLen, eng.Config().MaxLevel)
	}
	return &DirectClient{coder: coder{key: key, opts: o}, eng: eng}, nil
}

// Engine exposes the embedded index engine (snapshots, stats, compaction).
func (c *DirectClient) Engine() *engine.ShardedIndex { return c.eng }

// Close releases the engine when the client owns it (created by NewDirect);
// a wrapped engine is left running.
func (c *DirectClient) Close() error {
	if c.ownEngine {
		return c.eng.Close()
	}
	return nil
}

// evalWire evaluates one wire-shaped query against the embedded engine —
// the in-process mirror of the server's dispatch, so a DirectClient query
// touches exactly the index code paths a remote one would.
func (c *DirectClient) evalWire(wq wire.BatchQuery) ([]mindex.Entry, error) {
	switch wq.Kind {
	case wire.BatchRange:
		return c.eng.RangeByDists(wq.Dists, wq.Radius)
	case wire.BatchApproxPerm:
		return c.eng.ApproxCandidates(mindex.ApproxQuery{Ranks: pivot.Ranks(wq.Perm)}, int(wq.CandSize))
	case wire.BatchApproxDists:
		return c.eng.ApproxCandidates(mindex.ApproxQuery{
			Dists: wq.Dists,
			Ranks: pivot.Ranks(pivot.Permutation(wq.Dists)),
		}, int(wq.CandSize))
	default: // wire.BatchFirstCell
		aq := mindex.ApproxQuery{Dists: wq.Dists}
		if len(wq.Perm) > 0 {
			aq.Ranks = pivot.Ranks(wq.Perm)
		}
		return c.eng.FirstCellCandidates(aq)
	}
}

// engineCandidates evaluates the wire query, charging the engine time to
// ServerTime — the cost decomposition stays comparable with the networked
// backends (CommTime and the byte counters are structurally zero here).
func (c *DirectClient) engineCandidates(ctx context.Context, wq wire.BatchQuery, costs *stats.Costs) ([]mindex.Entry, error) {
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("core: direct search aborted: %w", err)
	}
	engStart := time.Now()
	cands, err := c.evalWire(wq)
	costs.ServerTime += time.Since(engStart)
	return cands, err
}

// Search evaluates one similarity query against the embedded engine, with
// the identical client-side epilogue (refinement, radius filter, K trim)
// the encrypted client applies — for the same key, dataset and
// configuration the two backends return identical result lists. ctx is
// checked between the preparation, engine and refinement phases.
func (c *DirectClient) Search(ctx context.Context, q Query) ([]Result, stats.Costs, error) {
	var costs stats.Costs
	start := time.Now()
	nq, err := q.normalized()
	if err != nil {
		return nil, costs, err
	}
	out, err := c.searchOne(ctx, nq, &costs)
	if err != nil {
		return nil, costs, err
	}
	finish(&costs, start)
	return out, costs, nil
}

func (c *DirectClient) searchOne(ctx context.Context, nq Query, costs *stats.Costs) ([]Result, error) {
	if nq.Kind == KindKNN {
		return searchKNN(ctx, nq, costs, c.searchOne)
	}
	qDists := c.queryDists(nq, costs)
	cands, err := c.engineCandidates(ctx, c.wireQuery(nq, qDists), costs)
	if err != nil {
		return nil, err
	}
	return c.finishQuery(nq, cands, costs)
}

// SearchBatch evaluates the queries sequentially (there is no round trip
// to amortize in-process), checking ctx between queries. Results are
// per-query, in input order, identical to per-query Search.
func (c *DirectClient) SearchBatch(ctx context.Context, qs []Query) ([][]Result, stats.Costs, error) {
	var costs stats.Costs
	start := time.Now()
	if len(qs) == 0 {
		finish(&costs, start)
		return nil, costs, nil
	}
	out := make([][]Result, len(qs))
	for i, q := range qs {
		nq, err := q.normalized()
		if err != nil {
			return nil, costs, fmt.Errorf("core: batch query %d: %w", i, err)
		}
		if err := ctx.Err(); err != nil {
			return nil, costs, fmt.Errorf("core: batch aborted at query %d: %w", i, err)
		}
		res, err := c.searchOne(ctx, nq, &costs)
		if err != nil {
			return nil, costs, err
		}
		out[i] = res
	}
	finish(&costs, start)
	return out, costs, nil
}

// Insert is InsertContext without a deadline.
func (c *DirectClient) Insert(objs []metric.Object) (stats.Costs, error) {
	return c.InsertContext(context.Background(), objs)
}

// InsertContext performs the bulk insert of Algorithm 1 against the
// embedded engine: the client-side work (pivot distances, permutation
// prefixes, encryption) is identical to the networked insert; the shipped
// entries land in the engine without a wire in between.
func (c *DirectClient) InsertContext(ctx context.Context, objs []metric.Object) (stats.Costs, error) {
	var costs stats.Costs
	start := time.Now()
	entries, err := c.prepareEntries(objs, &costs)
	if err != nil {
		return costs, err
	}
	if err := ctx.Err(); err != nil {
		return costs, fmt.Errorf("core: direct insert aborted: %w", err)
	}
	engStart := time.Now()
	err = c.eng.InsertBulk(entries)
	costs.ServerTime += time.Since(engStart)
	if err != nil {
		return costs, err
	}
	finish(&costs, start)
	return costs, nil
}

// InsertBatch aliases InsertContext: in-process there are no frames to
// pipeline, but the method keeps DirectClient drop-in compatible with code
// written against the networked client's batch surface.
func (c *DirectClient) InsertBatch(objs []metric.Object) (stats.Costs, error) {
	return c.InsertContext(context.Background(), objs)
}

// Delete is DeleteContext without a deadline.
func (c *DirectClient) Delete(objs []metric.Object) (int, stats.Costs, error) {
	return c.DeleteContext(context.Background(), objs)
}

// DeleteContext removes the given objects from the embedded index, by the
// same {ID, permutation prefix} references the networked delete ships.
func (c *DirectClient) DeleteContext(ctx context.Context, objs []metric.Object) (int, stats.Costs, error) {
	var costs stats.Costs
	start := time.Now()
	if len(objs) == 0 {
		finish(&costs, start)
		return 0, costs, nil
	}
	refs := c.deleteRefs(objs, &costs)
	if err := ctx.Err(); err != nil {
		return 0, costs, fmt.Errorf("core: direct delete aborted: %w", err)
	}
	engStart := time.Now()
	deleted, err := c.eng.Delete(refs)
	costs.ServerTime += time.Since(engStart)
	if err != nil {
		return 0, costs, err
	}
	finish(&costs, start)
	return deleted, costs, nil
}

// DeleteBatch aliases DeleteContext (see InsertBatch).
func (c *DirectClient) DeleteBatch(objs []metric.Object) (int, stats.Costs, error) {
	return c.DeleteContext(context.Background(), objs)
}
