package core

import (
	"testing"

	"simcloud/internal/metric"
)

// TestDeleteEndToEnd: deleting objects through the encrypted client must
// remove exactly those objects from every later query, on 1 and 4 shards,
// for both the single-frame Delete and the pipelined DeleteBatch.
func TestDeleteEndToEnd(t *testing.T) {
	for _, shards := range []int{1, 4} {
		for _, batched := range []bool{false, true} {
			cfg := testConfig()
			cfg.Shards = shards
			client, ds, srv := batchCloud(t, cfg, Options{BatchChunk: 50})
			if _, err := client.Insert(ds.Objects); err != nil {
				t.Fatal(err)
			}

			victims := ds.Objects[:150]
			gone := make(map[uint64]bool, len(victims))
			for _, o := range victims {
				gone[o.ID] = true
			}
			var deleted int
			var err error
			if batched {
				deleted, _, err = client.DeleteBatch(victims)
			} else {
				deleted, _, err = client.Delete(victims)
			}
			if err != nil {
				t.Fatalf("shards=%d batched=%v: %v", shards, batched, err)
			}
			if deleted != len(victims) {
				t.Fatalf("shards=%d batched=%v: deleted %d, want %d", shards, batched, deleted, len(victims))
			}
			if srv.Index().Size() != ds.Size()-len(victims) {
				t.Fatalf("server size = %d, want %d", srv.Index().Size(), ds.Size()-len(victims))
			}

			// Deleting the same objects again is a no-op.
			again, _, err := client.Delete(victims)
			if err != nil {
				t.Fatal(err)
			}
			if again != 0 {
				t.Fatalf("re-delete removed %d entries", again)
			}

			// Unbounded range: exactly the survivors come back, decryptable.
			res, _, err := client.Range(ds.Objects[200].Vec, 1e18)
			if err != nil {
				t.Fatal(err)
			}
			if len(res) != ds.Size()-len(victims) {
				t.Fatalf("range returned %d results, want %d", len(res), ds.Size()-len(victims))
			}
			for _, r := range res {
				if gone[r.ID] {
					t.Fatalf("deleted object %d still retrievable", r.ID)
				}
			}

			// Approximate search never surfaces deleted candidates either.
			knn, _, err := client.ApproxKNN(victims[0].Vec, 10, 200)
			if err != nil {
				t.Fatal(err)
			}
			for _, r := range knn {
				if gone[r.ID] {
					t.Fatalf("approx surfaced deleted object %d", r.ID)
				}
			}
		}
	}
}

// TestDeleteEmptyAndUnknown covers the degenerate inputs.
func TestDeleteEmptyAndUnknown(t *testing.T) {
	cfg := testConfig()
	client, ds, _ := batchCloud(t, cfg, Options{})
	if _, err := client.Insert(ds.Objects[:50]); err != nil {
		t.Fatal(err)
	}
	if n, _, err := client.Delete(nil); err != nil || n != 0 {
		t.Fatalf("empty delete = %d, %v", n, err)
	}
	if n, _, err := client.DeleteBatch(nil); err != nil || n != 0 {
		t.Fatalf("empty batch delete = %d, %v", n, err)
	}
	unknown := []metric.Object{{ID: 1 << 40, Vec: ds.Objects[0].Vec}}
	if n, _, err := client.Delete(unknown); err != nil || n != 0 {
		t.Fatalf("unknown delete = %d, %v", n, err)
	}
}
