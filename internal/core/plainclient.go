package core

import (
	"context"
	"fmt"
	"time"

	"simcloud/internal/metric"
	"simcloud/internal/stats"
	"simcloud/internal/wire"
)

// PlainClient is the client of the basic (non-encrypted) M-Index
// deployment, the baseline of the paper's comparison tables. It ships raw
// objects and queries; the server does all the work and returns final
// answers, so "the amount of work on the client is negligible".
//
// Like EncryptedClient it is safe for concurrent use: operations lease
// connections from an internal pool, and it implements the same Searcher
// interface, so baseline-vs-encrypted experiments run the identical query
// code against both deployments.
type PlainClient struct {
	addr string
	pool *connPool
}

var _ Searcher = (*PlainClient)(nil)

// DialPlain connects to the plain server at addr. Equivalent to
// DialPlainContext with the background context.
func DialPlain(addr string) (*PlainClient, error) {
	return DialPlainContext(context.Background(), addr)
}

// DialPlainContext connects to the plain server at addr. The first
// connection is established eagerly under ctx — including a hello
// handshake verifying the server really runs the plain deployment — so a
// wrong address fails here, not on the first query.
func DialPlainContext(ctx context.Context, addr string) (*PlainClient, error) {
	c := &PlainClient{addr: addr}
	c.pool = newConnPool(func(ctx context.Context) (*wire.CountingConn, error) {
		return dialAndHello(ctx, addr, wire.HelloModePlain, 0)
	})
	conn, err := c.pool.dial(ctx)
	if err != nil {
		return nil, err
	}
	c.pool.putIdle(conn)
	return c, nil
}

// Addr returns the server address the client dials.
func (c *PlainClient) Addr() string { return c.addr }

// PoolStats reports the connection-lease pool's current depth and lifetime
// dial/discard counters (see PoolStats).
func (c *PlainClient) PoolStats() PoolStats { return c.pool.stats() }

// Close releases every pooled connection, interrupting in-flight
// operations.
func (c *PlainClient) Close() error { return c.pool.close() }

// roundTrip runs one exchange on a pooled connection under ctx.
func (c *PlainClient) roundTrip(ctx context.Context, t wire.MsgType, payload []byte, costs *stats.Costs) (wire.MsgType, []byte, error) {
	var respType wire.MsgType
	var resp []byte
	err := c.pool.withConn(ctx, func(conn *wire.CountingConn) error {
		var err error
		respType, resp, err = roundTrip(ctx, conn, t, payload, costs)
		return err
	})
	return respType, resp, err
}

// Insert is InsertContext without a deadline.
func (c *PlainClient) Insert(objs []metric.Object) (stats.Costs, error) {
	return c.InsertContext(context.Background(), objs)
}

// InsertContext uploads a bulk of raw objects; the server computes pivot
// distances and builds the index.
func (c *PlainClient) InsertContext(ctx context.Context, objs []metric.Object) (stats.Costs, error) {
	var costs stats.Costs
	start := time.Now()
	respType, resp, err := c.roundTrip(ctx, wire.MsgInsertObjects,
		wire.InsertObjectsReq{Objects: objs}.Encode(), &costs)
	if err != nil {
		return costs, err
	}
	if respType != wire.MsgAck {
		return costs, fmt.Errorf("core: unexpected insert response %v", respType)
	}
	ack, err := wire.DecodeAckResp(resp)
	if err != nil {
		return costs, err
	}
	creditServer(&costs, ack.ServerNanos)
	costs.DistCompTime = time.Duration(ack.DistNanos) // server-side distance time
	finish(&costs, start)
	return costs, nil
}

// plainMessage maps a normalized Query onto its plain-protocol frame. The
// raw query vector travels to the server — the defining disclosure of the
// non-encrypted baseline.
func plainMessage(nq Query) (wire.MsgType, []byte) {
	switch nq.Kind {
	case KindRange:
		return wire.MsgRangePlain, wire.RangePlainReq{Q: nq.Vec, Radius: nq.Radius}.Encode()
	case KindKNN:
		return wire.MsgKNNPlain, wire.KNNPlainReq{Q: nq.Vec, K: uint32(nq.K)}.Encode()
	case KindFirstCell:
		return wire.MsgFirstCellPlain, wire.FirstCellPlainReq{Q: nq.Vec, K: uint32(nq.K)}.Encode()
	default: // KindApproxKNN
		return wire.MsgApproxPlain,
			wire.ApproxPlainReq{Q: nq.Vec, K: uint32(nq.K), CandSize: uint32(effCandSize(nq))}.Encode()
	}
}

// decodeResults interprets one MsgResults response frame.
func decodeResults(respType wire.MsgType, resp []byte, costs *stats.Costs) ([]Result, error) {
	if respType != wire.MsgResults {
		return nil, fmt.Errorf("core: unexpected plain query response %v", respType)
	}
	m, err := wire.DecodeResultsResp(resp)
	if err != nil {
		return nil, err
	}
	creditServer(costs, m.ServerNanos)
	costs.DistCompTime += time.Duration(m.DistNanos) // server-side distance time
	out := make([]Result, len(m.Results))
	for i, r := range m.Results {
		out[i] = Result{ID: r.ID, Dist: r.Dist, Object: metric.Object{ID: r.ID, Vec: r.Vec}}
	}
	return out, nil
}

// Search evaluates one similarity query fully server-side. All four query
// kinds are supported; RefineLimit is ignored (the plain server refines
// everything — there is no client-side refinement to limit). ctx bounds
// the round trip exactly as for the encrypted client.
func (c *PlainClient) Search(ctx context.Context, q Query) ([]Result, stats.Costs, error) {
	var costs stats.Costs
	start := time.Now()
	nq, err := q.normalized()
	if err != nil {
		return nil, costs, err
	}
	reqType, payload := plainMessage(nq)
	respType, resp, err := c.roundTrip(ctx, reqType, payload, &costs)
	if err != nil {
		return nil, costs, err
	}
	out, err := decodeResults(respType, resp, &costs)
	if err != nil {
		return nil, costs, err
	}
	finish(&costs, start)
	return out, costs, nil
}

// SearchBatch evaluates many queries by pipelining one frame per query
// over a single leased connection — the plain protocol has no batch
// envelope, but the server answers pipelined frames in order, so the whole
// workload still pays one round-trip latency. Results are per-query, in
// input order; ctx cancellation is checked between writes and interrupts
// the blocked reader.
func (c *PlainClient) SearchBatch(ctx context.Context, qs []Query) ([][]Result, stats.Costs, error) {
	var costs stats.Costs
	start := time.Now()
	if len(qs) == 0 {
		finish(&costs, start)
		return nil, costs, nil
	}
	reqs := make([]frame, len(qs))
	for i, q := range qs {
		nq, err := q.normalized()
		if err != nil {
			return nil, costs, fmt.Errorf("core: batch query %d: %w", i, err)
		}
		typ, payload := plainMessage(nq)
		reqs[i] = frame{typ: typ, payload: payload}
	}
	var resps []frame
	if err := c.pool.withConn(ctx, func(conn *wire.CountingConn) error {
		var err error
		resps, err = exchange(ctx, conn, reqs, &costs)
		return err
	}); err != nil {
		return nil, costs, err
	}
	out := make([][]Result, len(qs))
	for i, r := range resps {
		if err := respError(r); err != nil {
			return nil, costs, fmt.Errorf("core: batch query %d: %w", i, err)
		}
		res, err := decodeResults(r.typ, r.payload, &costs)
		if err != nil {
			return nil, costs, err
		}
		out[i] = res
	}
	finish(&costs, start)
	return out, costs, nil
}

// Range evaluates the precise range query R(q, r) fully server-side.
//
// Deprecated: use Search with KindRange.
func (c *PlainClient) Range(q metric.Vector, r float64) ([]Result, stats.Costs, error) {
	return c.Search(context.Background(), Query{Kind: KindRange, Vec: q, Radius: r})
}

// KNN evaluates the precise k-NN query fully server-side.
//
// Deprecated: use Search with KindKNN.
func (c *PlainClient) KNN(q metric.Vector, k int) ([]Result, stats.Costs, error) {
	if k <= 0 {
		return nil, stats.Costs{}, fmt.Errorf("core: k must be positive, got %d", k)
	}
	return c.Search(context.Background(), Query{Kind: KindKNN, Vec: q, K: k})
}

// ApproxKNN evaluates the approximate k-NN query fully server-side; the
// candidate set of candSize objects is collected and refined on the server,
// which returns only the k best answers.
//
// Deprecated: use Search with KindApproxKNN.
func (c *PlainClient) ApproxKNN(q metric.Vector, k, candSize int) ([]Result, stats.Costs, error) {
	if k <= 0 || candSize <= 0 {
		return nil, stats.Costs{}, fmt.Errorf("core: k and candSize must be positive (k=%d, candSize=%d)", k, candSize)
	}
	return c.Search(context.Background(), Query{Kind: KindApproxKNN, Vec: q, K: k, CandSize: candSize})
}

// FirstCellKNN evaluates the restricted 1-cell approximate k-NN fully
// server-side — the plain counterpart of the encrypted first-cell query,
// completing kind parity between the deployments.
//
// Deprecated: use Search with KindFirstCell.
func (c *PlainClient) FirstCellKNN(q metric.Vector, k int) ([]Result, stats.Costs, error) {
	if k <= 0 {
		return nil, stats.Costs{}, fmt.Errorf("core: k must be positive, got %d", k)
	}
	return c.Search(context.Background(), Query{Kind: KindFirstCell, Vec: q, K: k})
}

// Delete is DeleteContext without a deadline.
func (c *PlainClient) Delete(objs []metric.Object) (int, stats.Costs, error) {
	return c.DeleteContext(context.Background(), objs)
}

// DeleteContext removes the given objects from the plain index in one
// round trip: the server owns the location map, so bare IDs suffice (no
// routing metadata travels, unlike the encrypted delete). Unknown or
// already-deleted IDs are skipped; the count actually deleted is returned
// — signature-compatible with EncryptedClient.Delete so baseline
// experiments mutate like for like.
func (c *PlainClient) DeleteContext(ctx context.Context, objs []metric.Object) (int, stats.Costs, error) {
	var costs stats.Costs
	start := time.Now()
	if len(objs) == 0 {
		finish(&costs, start)
		return 0, costs, nil
	}
	ids := make([]uint64, len(objs))
	for i, o := range objs {
		ids[i] = o.ID
	}
	respType, resp, err := c.roundTrip(ctx, wire.MsgDeleteObjects,
		wire.DeleteObjectsReq{IDs: ids}.Encode(), &costs)
	if err != nil {
		return 0, costs, err
	}
	if respType != wire.MsgDeleteAck {
		return 0, costs, fmt.Errorf("core: unexpected delete response %v", respType)
	}
	ack, err := wire.DecodeDeleteAckResp(resp)
	if err != nil {
		return 0, costs, err
	}
	creditServer(&costs, ack.ServerNanos)
	finish(&costs, start)
	return int(ack.Deleted), costs, nil
}
