package core

import (
	"fmt"
	"net"
	"time"

	"simcloud/internal/metric"
	"simcloud/internal/stats"
	"simcloud/internal/wire"
)

// PlainClient is the client of the basic (non-encrypted) M-Index
// deployment, the baseline of the paper's comparison tables. It ships raw
// objects and queries; the server does all the work and returns final
// answers, so "the amount of work on the client is negligible".
//
// Like EncryptedClient it is not safe for concurrent use.
type PlainClient struct {
	conn *wire.CountingConn
}

// DialPlain connects to the plain server at addr.
func DialPlain(addr string) (*PlainClient, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("core: dialing similarity cloud: %w", err)
	}
	return &PlainClient{conn: wire.NewCountingConn(conn)}, nil
}

// Close releases the connection.
func (c *PlainClient) Close() error { return c.conn.Close() }

// Insert uploads a bulk of raw objects; the server computes pivot distances
// and builds the index.
func (c *PlainClient) Insert(objs []metric.Object) (stats.Costs, error) {
	var costs stats.Costs
	start := time.Now()
	respType, resp, err := roundTrip(c.conn, wire.MsgInsertObjects,
		wire.InsertObjectsReq{Objects: objs}.Encode(), &costs)
	if err != nil {
		return costs, err
	}
	if respType != wire.MsgAck {
		return costs, fmt.Errorf("core: unexpected insert response %v", respType)
	}
	ack, err := wire.DecodeAckResp(resp)
	if err != nil {
		return costs, err
	}
	creditServer(&costs, ack.ServerNanos)
	costs.DistCompTime = time.Duration(ack.DistNanos) // server-side distance time
	finish(&costs, start)
	return costs, nil
}

// query runs one plain request returning refined results.
func (c *PlainClient) query(reqType wire.MsgType, payload []byte) ([]Result, stats.Costs, error) {
	var costs stats.Costs
	start := time.Now()
	respType, resp, err := roundTrip(c.conn, reqType, payload, &costs)
	if err != nil {
		return nil, costs, err
	}
	if respType != wire.MsgResults {
		return nil, costs, fmt.Errorf("core: unexpected response %v to %v", respType, reqType)
	}
	m, err := wire.DecodeResultsResp(resp)
	if err != nil {
		return nil, costs, err
	}
	creditServer(&costs, m.ServerNanos)
	costs.DistCompTime = time.Duration(m.DistNanos) // server-side distance time
	out := make([]Result, len(m.Results))
	for i, r := range m.Results {
		out[i] = Result{ID: r.ID, Dist: r.Dist, Object: metric.Object{ID: r.ID, Vec: r.Vec}}
	}
	finish(&costs, start)
	return out, costs, nil
}

// Range evaluates the precise range query R(q, r) fully server-side.
func (c *PlainClient) Range(q metric.Vector, r float64) ([]Result, stats.Costs, error) {
	return c.query(wire.MsgRangePlain, wire.RangePlainReq{Q: q, Radius: r}.Encode())
}

// KNN evaluates the precise k-NN query fully server-side.
func (c *PlainClient) KNN(q metric.Vector, k int) ([]Result, stats.Costs, error) {
	if k <= 0 {
		return nil, stats.Costs{}, fmt.Errorf("core: k must be positive, got %d", k)
	}
	return c.query(wire.MsgKNNPlain, wire.KNNPlainReq{Q: q, K: uint32(k)}.Encode())
}

// ApproxKNN evaluates the approximate k-NN query fully server-side; the
// candidate set of candSize objects is collected and refined on the server,
// which returns only the k best answers.
func (c *PlainClient) ApproxKNN(q metric.Vector, k, candSize int) ([]Result, stats.Costs, error) {
	if k <= 0 || candSize <= 0 {
		return nil, stats.Costs{}, fmt.Errorf("core: k and candSize must be positive (k=%d, candSize=%d)", k, candSize)
	}
	return c.query(wire.MsgApproxPlain,
		wire.ApproxPlainReq{Q: q, K: uint32(k), CandSize: uint32(candSize)}.Encode())
}
