package gateway

import (
	"fmt"

	"simcloud/internal/core"
	"simcloud/internal/metric"
)

// The gateway's JSON vocabulary. These types are the HTTP API contract —
// the open-loop load generator (internal/bench) and any HTTP client build
// requests and decode responses through them.

// SearchRequest is the body of POST /v1/search: one Query in JSON form.
// Kind uses the QueryKind string names ("range", "knn", "approx-knn",
// "first-cell"); unset optional fields follow the Query defaults
// (cand_size 0 = DefaultCandSize(k)).
type SearchRequest struct {
	Kind        string    `json:"kind"`
	Vec         []float32 `json:"vec"`
	K           int       `json:"k,omitempty"`
	Radius      float64   `json:"radius,omitempty"`
	CandSize    int       `json:"cand_size,omitempty"`
	RefineLimit int       `json:"refine_limit,omitempty"`
}

// BatchRequest is the body of POST /v1/search/batch.
type BatchRequest struct {
	Queries []SearchRequest `json:"queries"`
}

// SearchResult is one answer object.
type SearchResult struct {
	ID   uint64    `json:"id"`
	Dist float64   `json:"dist"`
	Vec  []float32 `json:"vec,omitempty"`
}

// SearchResponse is the body of a successful POST /v1/search. CandSize is
// the candidate-set size actually evaluated — smaller than requested when
// admission control shed load — and Degraded flags exactly that case, so a
// client can distinguish a full-fidelity answer from a shed one.
type SearchResponse struct {
	Results  []SearchResult `json:"results"`
	CandSize int            `json:"cand_size,omitempty"`
	Degraded bool           `json:"degraded,omitempty"`
}

// BatchResponse is the body of a successful POST /v1/search/batch:
// per-query result lists in input order, one shed flag for the whole batch
// (the factor is decided at admission, before any query runs).
type BatchResponse struct {
	Results  [][]SearchResult `json:"results"`
	Degraded bool             `json:"degraded,omitempty"`
}

// ErrorResponse is the body of every non-2xx answer.
type ErrorResponse struct {
	Error string `json:"error"`
}

// parseKind maps the JSON kind names onto core.QueryKind — the inverse of
// QueryKind.String().
func parseKind(s string) (core.QueryKind, error) {
	switch s {
	case "range":
		return core.KindRange, nil
	case "knn":
		return core.KindKNN, nil
	case "approx-knn":
		return core.KindApproxKNN, nil
	case "first-cell":
		return core.KindFirstCell, nil
	}
	return 0, fmt.Errorf(`unknown query kind %q (want "range", "knn", "approx-knn" or "first-cell")`, s)
}

// toQuery converts the JSON form into the core Query every backend
// validates (Query.normalized stays the single validation point — the
// gateway only translates).
func (r SearchRequest) toQuery() (core.Query, error) {
	kind, err := parseKind(r.Kind)
	if err != nil {
		return core.Query{}, err
	}
	return core.Query{
		Kind:        kind,
		Vec:         metric.Vector(r.Vec),
		K:           r.K,
		Radius:      r.Radius,
		CandSize:    r.CandSize,
		RefineLimit: r.RefineLimit,
	}, nil
}

// fromResults renders backend results into the JSON shape.
func fromResults(rs []core.Result) []SearchResult {
	out := make([]SearchResult, len(rs))
	for i, r := range rs {
		out[i] = SearchResult{ID: r.ID, Dist: r.Dist, Vec: r.Object.Vec}
	}
	return out
}
