// Package gateway is the similarity cloud's front door for fleets: an
// HTTP/JSON server over the unified Searcher interface, so anything that
// can speak HTTP — load balancers, sidecars, curl — can search without
// linking the Go client or speaking the custom TCP protocol.
//
// Three concerns live here, in the order a request meets them:
//
//   - Tenancy. Every request authenticates with a per-tenant API key
//     (Authorization: Bearer or X-API-Key) that maps to that tenant's own
//     Searcher backend — its own secret key, its own index. Tenants are
//     fully isolated: one tenant's key can never touch another tenant's
//     entries, generalizing the examples/multiuser story to a served API.
//
//   - Admission control. A gateway fronting millions of users must degrade
//     before it collapses. Requests pass a per-tenant token bucket (flood
//     isolation: one tenant's burst cannot starve another's quota), then a
//     server-wide max-inflight gate. Between the shed threshold and the
//     hard cap, approximate queries keep being served with a CandSize
//     degraded in steps — recall bends before availability breaks — and
//     only past the hard cap does the gateway refuse, with 429 and a
//     Retry-After hint. See DESIGN.md §Gateway for the full ladder.
//
//   - Observability. /metrics exports the unified stats surface
//     (core.CollectStats: engine live/dead per shard, cache hit rate,
//     lease-pool depth) plus the gateway's own counters and latency
//     histogram in Prometheus text format; /v1/stats serves the same as
//     JSON.
//
// The HTTP layer adds semantics, never changes results: a query answered
// through the gateway returns exactly what the tenant's backend returns
// for the same Query (enforced by the gateway equivalence test), modulo
// admission-control CandSize degradation, which is reported in the
// response (`cand_size`, `degraded`) so clients can tell a shed answer
// from a full one.
package gateway
