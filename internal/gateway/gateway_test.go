package gateway

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"simcloud/internal/core"
	"simcloud/internal/stats"
)

// postJSON sends one request and decodes the response body into out.
func postJSON(t *testing.T, client *http.Client, url, apiKey string, body, out any) int {
	t.Helper()
	blob, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	if apiKey != "" {
		req.Header.Set("X-API-Key", apiKey)
	}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding %d response: %v", resp.StatusCode, err)
		}
	} else {
		io.Copy(io.Discard, resp.Body)
	}
	return resp.StatusCode
}

// demoGateway builds a one-tenant gateway over an in-process index and
// serves it from an httptest server.
func demoGateway(t *testing.T, adm Admission) (*httptest.Server, core.Searcher) {
	t.Helper()
	tenant, err := DemoTenant("t1", "t1-key", 7, 800, 6, 12, 8)
	if err != nil {
		t.Fatal(err)
	}
	gw, err := New(Config{Tenants: []Tenant{tenant}, Admission: adm})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(gw)
	t.Cleanup(func() { srv.Close(); gw.Close() })
	return srv, tenant.Backend
}

// queryVec returns a deterministic in-space query vector.
func queryVec(dim int, seed float32) []float32 {
	vec := make([]float32, dim)
	for i := range vec {
		vec[i] = seed + float32(i)
	}
	return vec
}

// TestGatewayEquivalence is the HTTP leg of the three-backend equivalence
// guarantee: for every query kind, the results served over the gateway are
// identical — IDs, distances, vectors — to what the tenant's backend
// returns for the same Query through the Go Search API.
func TestGatewayEquivalence(t *testing.T) {
	srv, backend := demoGateway(t, Admission{})
	vec := queryVec(6, 1.5)

	cases := []struct {
		name string
		req  SearchRequest
		q    core.Query
	}{
		{"range", SearchRequest{Kind: "range", Vec: vec, Radius: 12},
			core.Query{Kind: core.KindRange, Vec: vec, Radius: 12}},
		{"knn", SearchRequest{Kind: "knn", Vec: vec, K: 5},
			core.Query{Kind: core.KindKNN, Vec: vec, K: 5}},
		{"approx-knn", SearchRequest{Kind: "approx-knn", Vec: vec, K: 5, CandSize: 100},
			core.Query{Kind: core.KindApproxKNN, Vec: vec, K: 5, CandSize: 100}},
		{"first-cell", SearchRequest{Kind: "first-cell", Vec: vec, K: 3},
			core.Query{Kind: core.KindFirstCell, Vec: vec, K: 3}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			want, _, err := backend.Search(context.Background(), tc.q)
			if err != nil {
				t.Fatal(err)
			}
			var got SearchResponse
			if code := postJSON(t, srv.Client(), srv.URL+"/v1/search", "t1-key", tc.req, &got); code != 200 {
				t.Fatalf("HTTP %d", code)
			}
			if got.Degraded {
				t.Fatal("unloaded gateway degraded a query")
			}
			assertSameResults(t, got.Results, want)
		})
	}

	// And the batch route: all four kinds in one request must equal the
	// backend's SearchBatch answer query by query.
	t.Run("batch", func(t *testing.T) {
		var reqs []SearchRequest
		var qs []core.Query
		for _, tc := range cases {
			reqs = append(reqs, tc.req)
			qs = append(qs, tc.q)
		}
		want, _, err := backend.SearchBatch(context.Background(), qs)
		if err != nil {
			t.Fatal(err)
		}
		var got BatchResponse
		if code := postJSON(t, srv.Client(), srv.URL+"/v1/search/batch", "t1-key", BatchRequest{Queries: reqs}, &got); code != 200 {
			t.Fatalf("HTTP %d", code)
		}
		if len(got.Results) != len(want) {
			t.Fatalf("batch returned %d result lists, want %d", len(got.Results), len(want))
		}
		for i := range want {
			assertSameResults(t, got.Results[i], want[i])
		}
	})
}

func assertSameResults(t *testing.T, got []SearchResult, want []core.Result) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d results, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].ID != want[i].ID || got[i].Dist != want[i].Dist {
			t.Fatalf("result %d: got id=%d dist=%v, want id=%d dist=%v",
				i, got[i].ID, got[i].Dist, want[i].ID, want[i].Dist)
		}
		if len(got[i].Vec) != len(want[i].Object.Vec) {
			t.Fatalf("result %d: vector length %d, want %d", i, len(got[i].Vec), len(want[i].Object.Vec))
		}
		for d := range want[i].Object.Vec {
			if got[i].Vec[d] != want[i].Object.Vec[d] {
				t.Fatalf("result %d dim %d: %v != %v", i, d, got[i].Vec[d], want[i].Object.Vec[d])
			}
		}
	}
}

func TestGatewayAuth(t *testing.T) {
	srv, _ := demoGateway(t, Admission{})
	req := SearchRequest{Kind: "knn", Vec: queryVec(6, 0), K: 1}

	var errResp ErrorResponse
	if code := postJSON(t, srv.Client(), srv.URL+"/v1/search", "", req, &errResp); code != 401 {
		t.Fatalf("no key: HTTP %d, want 401", code)
	}
	if code := postJSON(t, srv.Client(), srv.URL+"/v1/search", "wrong", req, &errResp); code != 401 {
		t.Fatalf("wrong key: HTTP %d, want 401", code)
	}
	// Bearer form works too.
	blob, _ := json.Marshal(req)
	hreq, _ := http.NewRequest(http.MethodPost, srv.URL+"/v1/search", bytes.NewReader(blob))
	hreq.Header.Set("Authorization", "Bearer t1-key")
	resp, err := srv.Client().Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("bearer key: HTTP %d, want 200", resp.StatusCode)
	}
}

func TestGatewayRejectsMalformed(t *testing.T) {
	srv, _ := demoGateway(t, Admission{})
	for name, body := range map[string]any{
		"bad kind":  SearchRequest{Kind: "wat", Vec: queryVec(6, 0)},
		"bad query": SearchRequest{Kind: "knn", Vec: queryVec(6, 0), K: -2},
		"no vector": SearchRequest{Kind: "knn", K: 3},
	} {
		var errResp ErrorResponse
		if code := postJSON(t, srv.Client(), srv.URL+"/v1/search", "t1-key", body, &errResp); code != 400 {
			t.Errorf("%s: HTTP %d, want 400", name, code)
		}
		if errResp.Error == "" {
			t.Errorf("%s: empty error message", name)
		}
	}
}

// blockingSearcher is a fake backend whose searches park until released —
// the saturation tests hold the gateway at an exact inflight level with it.
type blockingSearcher struct {
	mu          sync.Mutex
	gate        chan struct{}
	releaseOnce sync.Once
	started     chan struct{} // one tick per search that has entered
	cands       []int         // CandSize of every query served
}

func newBlockingSearcher() *blockingSearcher {
	return &blockingSearcher{gate: make(chan struct{}), started: make(chan struct{}, 1024)}
}

// release unparks every current and future search (idempotent).
func (b *blockingSearcher) release() { b.releaseOnce.Do(func() { close(b.gate) }) }

func (b *blockingSearcher) Search(ctx context.Context, q core.Query) ([]core.Result, stats.Costs, error) {
	b.mu.Lock()
	b.cands = append(b.cands, q.CandSize)
	b.mu.Unlock()
	b.started <- struct{}{}
	select {
	case <-b.gate:
	case <-ctx.Done():
	}
	return nil, stats.Costs{}, nil
}

func (b *blockingSearcher) SearchBatch(ctx context.Context, qs []core.Query) ([][]core.Result, stats.Costs, error) {
	out := make([][]core.Result, len(qs))
	for range qs {
		b.started <- struct{}{}
	}
	select {
	case <-b.gate:
	case <-ctx.Done():
	}
	return out, stats.Costs{}, nil
}

func (b *blockingSearcher) Close() error { return nil }

func (b *blockingSearcher) candSizes() []int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]int(nil), b.cands...)
}

func blockingGateway(t *testing.T, adm Admission, tenants ...string) (*httptest.Server, *blockingSearcher) {
	t.Helper()
	backend := newBlockingSearcher()
	var ts []Tenant
	for _, name := range tenants {
		ts = append(ts, Tenant{Name: name, Key: name + "-key", Backend: backend})
	}
	gw, err := New(Config{Tenants: ts, Admission: adm})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(gw)
	t.Cleanup(func() { backend.release(); srv.Close() })
	return srv, backend
}

// TestSaturationRefusal: past the hard inflight cap the gateway answers 429
// with a Retry-After hint, and releases capacity cleanly afterwards.
func TestSaturationRefusal(t *testing.T) {
	const cap = 4
	srv, backend := blockingGateway(t, Admission{MaxInflight: cap, ShedStart: 0.999}, "t1")
	req := SearchRequest{Kind: "approx-knn", Vec: queryVec(4, 0), K: 2}
	blob, _ := json.Marshal(req)

	// Park cap requests inside the backend.
	var wg sync.WaitGroup
	for range cap {
		wg.Add(1)
		go func() {
			defer wg.Done()
			hreq, _ := http.NewRequest(http.MethodPost, srv.URL+"/v1/search", bytes.NewReader(blob))
			hreq.Header.Set("X-API-Key", "t1-key")
			resp, err := srv.Client().Do(hreq)
			if err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}()
	}
	for range cap {
		<-backend.started
	}

	// The cap+1'th request must be refused, not queued.
	hreq, _ := http.NewRequest(http.MethodPost, srv.URL+"/v1/search", bytes.NewReader(blob))
	hreq.Header.Set("X-API-Key", "t1-key")
	resp, err := srv.Client().Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated gateway answered %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without a Retry-After header")
	}
	var errResp ErrorResponse
	if err := json.NewDecoder(resp.Body).Decode(&errResp); err != nil || errResp.Error == "" {
		t.Fatalf("429 body: %v %q", err, errResp.Error)
	}
	backend.release()
	wg.Wait()

	// With the parked requests released, service resumes at full fidelity.
	var ok SearchResponse
	if code := postJSON(t, srv.Client(), srv.URL+"/v1/search", "t1-key", req, &ok); code != 200 {
		t.Fatalf("post-saturation request: HTTP %d, want 200", code)
	}
}

// TestTenantRateIsolation: tenant A exhausting its token bucket is refused
// with 429 while tenant B's requests keep being served — one tenant's flood
// cannot starve another's quota.
func TestTenantRateIsolation(t *testing.T) {
	srv, backend := blockingGateway(t,
		Admission{TenantQPS: 0.001, TenantBurst: 3}, "a", "b")
	backend.release() // searches return immediately
	req := SearchRequest{Kind: "approx-knn", Vec: queryVec(4, 0), K: 2}

	// A's burst of 3 passes; everything after is rate-refused (refill at
	// 0.001 tokens/s is nothing on the test's time scale).
	for i := range 3 {
		if code := postJSON(t, srv.Client(), srv.URL+"/v1/search", "a-key", req, nil); code != 200 {
			t.Fatalf("tenant a request %d: HTTP %d, want 200", i, code)
		}
	}
	refused := 0
	for range 5 {
		if code := postJSON(t, srv.Client(), srv.URL+"/v1/search", "a-key", req, nil); code == http.StatusTooManyRequests {
			refused++
		}
	}
	if refused != 5 {
		t.Fatalf("flooding tenant a: %d/5 refusals, want 5", refused)
	}

	// B's bucket is untouched by A's flood.
	for i := range 3 {
		if code := postJSON(t, srv.Client(), srv.URL+"/v1/search", "b-key", req, nil); code != 200 {
			t.Fatalf("tenant b request %d after a's flood: HTTP %d, want 200", i, code)
		}
	}
}

// TestShedDegradesBeforeRefusal drives inflight load through the shedding
// band and checks the ladder's ordering: full fidelity at low load, reduced
// CandSize (reported as degraded, never below K) as load grows, and 429
// only past the hard cap.
func TestShedDegradesBeforeRefusal(t *testing.T) {
	const cap = 8
	srv, backend := blockingGateway(t, Admission{MaxInflight: cap, ShedStart: 0.25}, "t1")
	const candFull = 100
	req := SearchRequest{Kind: "approx-knn", Vec: queryVec(4, 0), K: 2, CandSize: candFull}
	blob, _ := json.Marshal(req)

	responses := make(chan *http.Response, cap)
	var wg sync.WaitGroup
	for range cap {
		wg.Add(1)
		go func() {
			defer wg.Done()
			hreq, _ := http.NewRequest(http.MethodPost, srv.URL+"/v1/search", bytes.NewReader(blob))
			hreq.Header.Set("X-API-Key", "t1-key")
			resp, err := srv.Client().Do(hreq)
			if err == nil {
				responses <- resp
			}
		}()
		<-backend.started // serialize: each request enters before the next is sent
	}

	// All cap requests were admitted (shedding, never refusing, below the
	// cap) and the ones above the shed threshold ran with a smaller
	// CandSize, floored at K.
	cands := backend.candSizes()
	if len(cands) != cap {
		t.Fatalf("backend served %d queries, want %d", len(cands), cap)
	}
	if cands[0] != candFull {
		t.Fatalf("first query CandSize %d, want the full %d", cands[0], candFull)
	}
	last := cands[cap-1]
	if last >= candFull {
		t.Fatalf("query at the cap ran at CandSize %d, want < %d", last, candFull)
	}
	if last < req.K {
		t.Fatalf("shed CandSize %d fell below K=%d", last, req.K)
	}
	for i := 1; i < cap; i++ {
		if cands[i] > cands[i-1] {
			t.Fatalf("CandSize grew under rising load: %v", cands)
		}
	}

	// Past the cap: refusal.
	hreq, _ := http.NewRequest(http.MethodPost, srv.URL+"/v1/search", bytes.NewReader(blob))
	hreq.Header.Set("X-API-Key", "t1-key")
	resp, err := srv.Client().Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("past-cap request answered %d, want 429", resp.StatusCode)
	}

	backend.release()
	wg.Wait()
	close(responses)
	degraded := 0
	for resp := range responses {
		var sr SearchResponse
		if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if sr.Degraded {
			degraded++
			if sr.CandSize >= candFull {
				t.Fatalf("degraded response reports CandSize %d >= %d", sr.CandSize, candFull)
			}
		}
	}
	if degraded == 0 {
		t.Fatal("no response reported degradation despite shed CandSizes")
	}
}

// TestMetricsEndpoint scrapes /metrics after a known request mix and checks
// the counters add up and render in Prometheus text shape.
func TestMetricsEndpoint(t *testing.T) {
	srv, _ := demoGateway(t, Admission{})
	req := SearchRequest{Kind: "approx-knn", Vec: queryVec(6, 2), K: 3}
	for range 5 {
		if code := postJSON(t, srv.Client(), srv.URL+"/v1/search", "t1-key", req, nil); code != 200 {
			t.Fatalf("HTTP %d", code)
		}
	}
	postJSON(t, srv.Client(), srv.URL+"/v1/search", "t1-key", SearchRequest{Kind: "wat"}, nil)

	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("metrics Content-Type %q", ct)
	}
	blob, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(blob)
	for _, want := range []string{
		`simgate_requests_total{tenant="t1",code="200"} 5`,
		`simgate_requests_total{tenant="t1",code="400"} 1`,
		`simgate_queries_total{tenant="t1"} 5`,
		`simgate_request_seconds_count 5`,
		`simgate_engine_live{tenant="t1"} 800`,
		`simgate_ingest_entries_total{tenant="t1"} 800`,
		"# TYPE simgate_request_seconds histogram",
		`simgate_request_seconds_bucket{le="+Inf"} 5`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics output missing %q", want)
		}
	}
	// Every sample line parses as "name{labels} value" or "name value".
	for _, line := range strings.Split(strings.TrimSpace(text), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Errorf("unparseable metrics line %q", line)
		}
	}
}

// TestStatsEndpoint checks /v1/stats serves the unified core.Stats shape.
func TestStatsEndpoint(t *testing.T) {
	srv, _ := demoGateway(t, Admission{})
	hreq, _ := http.NewRequest(http.MethodGet, srv.URL+"/v1/stats", nil)
	hreq.Header.Set("X-API-Key", "t1-key")
	resp, err := srv.Client().Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("HTTP %d", resp.StatusCode)
	}
	var body struct {
		Tenant  string     `json:"tenant"`
		Backend core.Stats `json:"backend"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.Tenant != "t1" {
		t.Fatalf("tenant %q, want t1", body.Tenant)
	}
	if body.Backend.Engine.Live != 800 {
		t.Fatalf("engine live %d, want 800", body.Backend.Engine.Live)
	}
}

// TestShedFactorBands pins the discrete shedding ladder with defaults:
// 1 → 0.75 → 0.5 → 0.25 as inflight load crosses the three bands.
func TestShedFactorBands(t *testing.T) {
	a := newAdmission(Admission{MaxInflight: 100})
	for _, tc := range []struct {
		inflight int64
		want     float64
	}{
		{1, 1}, {50, 1}, {51, 0.75}, {66, 0.75}, {67, 0.5}, {83, 0.5}, {84, 0.25}, {100, 0.25},
	} {
		if got := a.shedFactor(tc.inflight); got != tc.want {
			t.Errorf("shedFactor(%d) = %v, want %v", tc.inflight, got, tc.want)
		}
	}
}

// TestTokenBucket pins refill arithmetic and the Retry-After computation.
func TestTokenBucket(t *testing.T) {
	now := time.Unix(1000, 0)
	b := newTokenBucket(10, 5) // 10 tokens/s, burst 5

	for i := range 5 {
		if ok, _ := b.take(now, 1); !ok {
			t.Fatalf("take %d within burst refused", i)
		}
	}
	ok, wait := b.take(now, 1)
	if ok {
		t.Fatal("empty bucket admitted")
	}
	if wait != 100*time.Millisecond {
		t.Fatalf("wait %v, want 100ms (1 token at 10/s)", wait)
	}
	// After 200ms two tokens refilled.
	now = now.Add(200 * time.Millisecond)
	if ok, _ := b.take(now, 2); !ok {
		t.Fatal("refilled tokens not granted")
	}
	if ok, _ := b.take(now, 1); ok {
		t.Fatal("bucket over-refilled")
	}
	// A nil bucket (unlimited) always admits.
	var unlimited *tokenBucket
	if ok, _ := unlimited.take(now, 1e9); !ok {
		t.Fatal("unlimited bucket refused")
	}
}

// TestBatchCostsPerQueryTokens: a batch of n queries spends n tokens.
func TestBatchCostsPerQueryTokens(t *testing.T) {
	srv, backend := blockingGateway(t, Admission{TenantQPS: 0.001, TenantBurst: 4}, "t1")
	backend.release()
	vec := queryVec(4, 0)
	batch := BatchRequest{Queries: []SearchRequest{
		{Kind: "approx-knn", Vec: vec, K: 1},
		{Kind: "approx-knn", Vec: vec, K: 1},
		{Kind: "approx-knn", Vec: vec, K: 1},
	}}
	if code := postJSON(t, srv.Client(), srv.URL+"/v1/search/batch", "t1-key", batch, nil); code != 200 {
		t.Fatalf("first batch: HTTP %d, want 200", code)
	}
	// 1 token left of 4: a 3-query batch no longer fits.
	if code := postJSON(t, srv.Client(), srv.URL+"/v1/search/batch", "t1-key", batch, nil); code != http.StatusTooManyRequests {
		t.Fatalf("second batch: HTTP %d, want 429", code)
	}
	// ...but a single query does.
	single := SearchRequest{Kind: "approx-knn", Vec: vec, K: 1}
	if code := postJSON(t, srv.Client(), srv.URL+"/v1/search", "t1-key", single, nil); code != 200 {
		t.Fatalf("single query after batch: HTTP %d, want 200", code)
	}
}

// TestConfigValidation pins the constructor's rejection of bad configs.
func TestConfigValidation(t *testing.T) {
	backend := newBlockingSearcher()
	for name, cfg := range map[string]Config{
		"no tenants": {},
		"no name":    {Tenants: []Tenant{{Key: "k", Backend: backend}}},
		"no key":     {Tenants: []Tenant{{Name: "a", Backend: backend}}},
		"no backend": {Tenants: []Tenant{{Name: "a", Key: "k"}}},
		"dup name": {Tenants: []Tenant{
			{Name: "a", Key: "k1", Backend: backend}, {Name: "a", Key: "k2", Backend: backend}}},
		"dup key": {Tenants: []Tenant{
			{Name: "a", Key: "k", Backend: backend}, {Name: "b", Key: "k", Backend: backend}}},
	} {
		if _, err := New(cfg); err == nil {
			t.Errorf("%s: New accepted the config", name)
		}
	}
}

// TestConcurrentMixedLoad hammers one gateway from many goroutines under
// the race detector: successes, rate refusals and shed responses may all
// happen, but counters must balance and nothing may fall through as an
// unexpected status.
func TestConcurrentMixedLoad(t *testing.T) {
	tenant, err := DemoTenant("t1", "t1-key", 7, 400, 6, 12, 8)
	if err != nil {
		t.Fatal(err)
	}
	gw, err := New(Config{
		Tenants:   []Tenant{tenant},
		Admission: Admission{MaxInflight: 8, TenantQPS: 1000, TenantBurst: 50},
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(gw)
	defer func() { srv.Close(); gw.Close() }()

	req := SearchRequest{Kind: "approx-knn", Vec: queryVec(6, 1), K: 3}
	blob, _ := json.Marshal(req)
	var wg sync.WaitGroup
	var unexpected stats.Counter
	for range 16 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for range 20 {
				hreq, _ := http.NewRequest(http.MethodPost, srv.URL+"/v1/search", bytes.NewReader(blob))
				hreq.Header.Set("X-API-Key", "t1-key")
				resp, err := srv.Client().Do(hreq)
				if err != nil {
					unexpected.Add(1)
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != 200 && resp.StatusCode != 429 {
					unexpected.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	if n := unexpected.Value(); n > 0 {
		t.Fatalf("%d requests failed with neither 200 nor 429", n)
	}

	// The request counters must account for all 320 requests.
	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	blob2, _ := io.ReadAll(resp.Body)
	var total int64
	for _, line := range strings.Split(string(blob2), "\n") {
		if strings.HasPrefix(line, "simgate_requests_total{") {
			var v int64
			if _, err := fmt.Sscanf(line[strings.LastIndex(line, " ")+1:], "%d", &v); err == nil {
				total += v
			}
		}
	}
	if total != 16*20 {
		t.Fatalf("request counters sum to %d, want %d", total, 16*20)
	}
}
