package gateway

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"simcloud/internal/core"
	"simcloud/internal/stats"
)

// tenantMetrics is one tenant's request accounting. Counters are
// stats.Counter (atomic), so the serving path never takes a lock to count.
type tenantMetrics struct {
	codes        [6]stats.Counter // indexed by codeSlot: 200,400,401,429,500,other
	queries      stats.Counter    // individual queries served (batch members count)
	shed         stats.Counter    // requests served with a degraded CandSize
	rejectedLoad stats.Counter    // 429s from the max-inflight gate
	rejectedRate stats.Counter    // 429s from the tenant token bucket
}

var codeSlots = [...]int{200, 400, 401, 429, 500}

func codeSlot(code int) int {
	for i, c := range codeSlots {
		if c == code {
			return i
		}
	}
	return len(codeSlots) // "other"
}

func codeName(slot int) string {
	if slot < len(codeSlots) {
		return fmt.Sprint(codeSlots[slot])
	}
	return "other"
}

// metrics is the gateway-wide registry: per-tenant counters plus one
// latency histogram over served (non-rejected) requests.
type metrics struct {
	start   time.Time
	latency *stats.Histogram
}

func newMetrics() *metrics {
	return &metrics{start: time.Now(), latency: stats.NewHistogram(nil)}
}

// writePrometheus renders the whole metrics surface in the Prometheus text
// exposition format: the gateway's own counters and histogram, then the
// unified per-backend stats (engine population, cache, lease pool) from
// core.CollectStats, labeled by tenant.
func (g *Gateway) writePrometheus(w io.Writer) {
	m := g.metrics
	names := g.tenantNames()

	fmt.Fprintf(w, "# HELP simgate_uptime_seconds Seconds since the gateway started.\n")
	fmt.Fprintf(w, "# TYPE simgate_uptime_seconds gauge\n")
	fmt.Fprintf(w, "simgate_uptime_seconds %g\n", time.Since(m.start).Seconds())

	fmt.Fprintf(w, "# HELP simgate_inflight Requests currently being served.\n")
	fmt.Fprintf(w, "# TYPE simgate_inflight gauge\n")
	fmt.Fprintf(w, "simgate_inflight %d\n", g.adm.Inflight())

	fmt.Fprintf(w, "# HELP simgate_max_inflight The admission hard cap.\n")
	fmt.Fprintf(w, "# TYPE simgate_max_inflight gauge\n")
	fmt.Fprintf(w, "simgate_max_inflight %d\n", g.adm.cfg.MaxInflight)

	fmt.Fprintf(w, "# HELP simgate_requests_total HTTP requests by tenant and status code.\n")
	fmt.Fprintf(w, "# TYPE simgate_requests_total counter\n")
	for _, name := range names {
		t := g.tenantsByName[name]
		for slot := range t.metrics.codes {
			if v := t.metrics.codes[slot].Value(); v > 0 {
				fmt.Fprintf(w, "simgate_requests_total{tenant=%q,code=%q} %d\n", name, codeName(slot), v)
			}
		}
	}

	fmt.Fprintf(w, "# HELP simgate_queries_total Queries served (batch members counted individually).\n")
	fmt.Fprintf(w, "# TYPE simgate_queries_total counter\n")
	for _, name := range names {
		fmt.Fprintf(w, "simgate_queries_total{tenant=%q} %d\n", name, g.tenantsByName[name].metrics.queries.Value())
	}

	fmt.Fprintf(w, "# HELP simgate_shed_total Requests served with a load-shed (degraded) CandSize.\n")
	fmt.Fprintf(w, "# TYPE simgate_shed_total counter\n")
	for _, name := range names {
		fmt.Fprintf(w, "simgate_shed_total{tenant=%q} %d\n", name, g.tenantsByName[name].metrics.shed.Value())
	}

	fmt.Fprintf(w, "# HELP simgate_rejected_total Requests refused with 429, by reason.\n")
	fmt.Fprintf(w, "# TYPE simgate_rejected_total counter\n")
	for _, name := range names {
		t := g.tenantsByName[name]
		fmt.Fprintf(w, "simgate_rejected_total{tenant=%q,reason=\"inflight\"} %d\n", name, t.metrics.rejectedLoad.Value())
		fmt.Fprintf(w, "simgate_rejected_total{tenant=%q,reason=\"rate\"} %d\n", name, t.metrics.rejectedRate.Value())
	}

	// The request latency histogram, Prometheus-style: cumulative buckets
	// with `le` bounds in seconds, then _sum and _count.
	fmt.Fprintf(w, "# HELP simgate_request_seconds Latency of served (non-rejected) requests.\n")
	fmt.Fprintf(w, "# TYPE simgate_request_seconds histogram\n")
	for _, b := range m.latency.Buckets() {
		fmt.Fprintf(w, "simgate_request_seconds_bucket{le=%q} %d\n", formatSeconds(b.UpperBound), b.Count)
	}
	fmt.Fprintf(w, "simgate_request_seconds_bucket{le=\"+Inf\"} %d\n", m.latency.Count())
	fmt.Fprintf(w, "simgate_request_seconds_sum %g\n", m.latency.Sum().Seconds())
	fmt.Fprintf(w, "simgate_request_seconds_count %d\n", m.latency.Count())

	// Unified backend stats per tenant: engine population (per shard),
	// cache hit rate inputs, lease-pool depth — whatever the tenant's
	// backend can report through the one CollectStats surface.
	writeBackendHeader(w)
	for _, name := range names {
		writeBackendStats(w, name, core.CollectStats(g.tenantsByName[name].backend))
	}
}

func writeBackendHeader(w io.Writer) {
	fmt.Fprintf(w, "# HELP simgate_engine_live Live entries in the tenant backend's engine.\n")
	fmt.Fprintf(w, "# TYPE simgate_engine_live gauge\n")
	fmt.Fprintf(w, "# HELP simgate_engine_dead Tombstoned entries awaiting compaction.\n")
	fmt.Fprintf(w, "# TYPE simgate_engine_dead gauge\n")
	fmt.Fprintf(w, "# HELP simgate_shard_live Live entries per shard.\n")
	fmt.Fprintf(w, "# TYPE simgate_shard_live gauge\n")
	fmt.Fprintf(w, "# HELP simgate_shard_dead Tombstoned entries per shard.\n")
	fmt.Fprintf(w, "# TYPE simgate_shard_dead gauge\n")
	fmt.Fprintf(w, "# HELP simgate_cache_hits_total Disk bucket-cache hits.\n")
	fmt.Fprintf(w, "# TYPE simgate_cache_hits_total counter\n")
	fmt.Fprintf(w, "# HELP simgate_cache_misses_total Disk bucket-cache misses.\n")
	fmt.Fprintf(w, "# TYPE simgate_cache_misses_total counter\n")
	fmt.Fprintf(w, "# HELP simgate_ingest_entries_total Entries accepted by the backend's insert paths.\n")
	fmt.Fprintf(w, "# TYPE simgate_ingest_entries_total counter\n")
	fmt.Fprintf(w, "# HELP simgate_ingest_builds_total Bulk batches that took the bottom-up builder.\n")
	fmt.Fprintf(w, "# TYPE simgate_ingest_builds_total counter\n")
	fmt.Fprintf(w, "# HELP simgate_ingest_bytes_total Encoded bytes of accepted entries.\n")
	fmt.Fprintf(w, "# TYPE simgate_ingest_bytes_total counter\n")
	fmt.Fprintf(w, "# HELP simgate_pool_idle Idle connections in the tenant's lease pool.\n")
	fmt.Fprintf(w, "# TYPE simgate_pool_idle gauge\n")
	fmt.Fprintf(w, "# HELP simgate_pool_leased Leased (in-flight) connections in the tenant's lease pool.\n")
	fmt.Fprintf(w, "# TYPE simgate_pool_leased gauge\n")
	fmt.Fprintf(w, "# HELP simgate_pool_dialed_total Connections ever dialed by the tenant's lease pool.\n")
	fmt.Fprintf(w, "# TYPE simgate_pool_dialed_total counter\n")
	fmt.Fprintf(w, "# HELP simgate_pool_discarded_total Connections discarded as broken.\n")
	fmt.Fprintf(w, "# TYPE simgate_pool_discarded_total counter\n")
}

func writeBackendStats(w io.Writer, name string, s core.Stats) {
	fmt.Fprintf(w, "simgate_engine_live{tenant=%q} %d\n", name, s.Engine.Live)
	fmt.Fprintf(w, "simgate_engine_dead{tenant=%q} %d\n", name, s.Engine.Dead)
	for i := range s.Engine.ShardLive {
		fmt.Fprintf(w, "simgate_shard_live{tenant=%q,shard=\"%d\"} %d\n", name, i, s.Engine.ShardLive[i])
		fmt.Fprintf(w, "simgate_shard_dead{tenant=%q,shard=\"%d\"} %d\n", name, i, s.Engine.ShardDead[i])
	}
	fmt.Fprintf(w, "simgate_cache_hits_total{tenant=%q} %d\n", name, s.Cache.Hits)
	fmt.Fprintf(w, "simgate_cache_misses_total{tenant=%q} %d\n", name, s.Cache.Misses)
	fmt.Fprintf(w, "simgate_ingest_entries_total{tenant=%q} %d\n", name, s.Ingest.Entries)
	fmt.Fprintf(w, "simgate_ingest_builds_total{tenant=%q} %d\n", name, s.Ingest.Builds)
	fmt.Fprintf(w, "simgate_ingest_bytes_total{tenant=%q} %d\n", name, s.Ingest.Bytes)
	fmt.Fprintf(w, "simgate_pool_idle{tenant=%q} %d\n", name, s.Pool.Idle)
	fmt.Fprintf(w, "simgate_pool_leased{tenant=%q} %d\n", name, s.Pool.Leased)
	fmt.Fprintf(w, "simgate_pool_dialed_total{tenant=%q} %d\n", name, s.Pool.Dialed)
	fmt.Fprintf(w, "simgate_pool_discarded_total{tenant=%q} %d\n", name, s.Pool.Discarded)
}

// formatSeconds renders a duration bound as a seconds value with no
// trailing zeros (Prometheus `le` label convention).
func formatSeconds(d time.Duration) string {
	s := fmt.Sprintf("%g", d.Seconds())
	return strings.TrimSuffix(s, ".0")
}

// tenantNames returns the tenant names in stable (sorted) order, so
// successive scrapes render metrics in a deterministic layout.
func (g *Gateway) tenantNames() []string {
	names := make([]string, 0, len(g.tenantsByName))
	for name := range g.tenantsByName {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
