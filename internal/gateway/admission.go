package gateway

import (
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// Admission configures the gateway's admission-control ladder. The zero
// value means "defaults": a 256-request hard cap, shedding from half load,
// CandSize floor at a quarter, no per-tenant rate limit.
type Admission struct {
	// MaxInflight is the hard cap on concurrently served requests. A
	// request arriving beyond it is refused with 429 + Retry-After.
	// 0 picks DefaultMaxInflight; negative disables the cap (no refusal,
	// no shedding — benchmarking only).
	MaxInflight int
	// ShedStart is the inflight fraction of MaxInflight at which CandSize
	// degradation begins. 0 picks DefaultShedStart. At or below it,
	// queries run at full fidelity.
	ShedStart float64
	// ShedFloor is the lowest CandSize multiplier shedding may apply
	// (never below the query's K). 0 picks DefaultShedFloor.
	ShedFloor float64
	// TenantQPS is the per-tenant token-bucket refill rate in queries per
	// second (batch requests consume one token per query). 0 = unlimited.
	TenantQPS float64
	// TenantBurst is the token-bucket capacity. 0 picks
	// max(1, 2×TenantQPS).
	TenantBurst int
	// RetryAfter is the Retry-After hint attached to max-inflight
	// refusals (rate-limit refusals compute the exact token wait).
	// 0 picks one second.
	RetryAfter time.Duration
}

// Admission-control defaults.
const (
	DefaultMaxInflight = 256
	DefaultShedStart   = 0.5
	DefaultShedFloor   = 0.25
)

func (a Admission) withDefaults() Admission {
	if a.MaxInflight == 0 {
		a.MaxInflight = DefaultMaxInflight
	}
	if a.ShedStart == 0 {
		a.ShedStart = DefaultShedStart
	}
	if a.ShedFloor == 0 {
		a.ShedFloor = DefaultShedFloor
	}
	if a.TenantBurst == 0 {
		a.TenantBurst = max(1, int(2*a.TenantQPS))
	}
	if a.RetryAfter == 0 {
		a.RetryAfter = time.Second
	}
	return a
}

// admission is the runtime state of the ladder: one inflight counter for
// the whole gateway (tenant buckets live on the tenants).
type admission struct {
	cfg      Admission
	inflight atomic.Int64
}

func newAdmission(cfg Admission) *admission {
	return &admission{cfg: cfg.withDefaults()}
}

// acquire claims one inflight slot. It returns the release closure, the
// CandSize multiplier the current load dictates (1 = full fidelity), and
// whether the request was admitted at all. The counter is incremented
// optimistically and rolled back on refusal, so concurrent acquires never
// admit past the cap.
func (a *admission) acquire() (release func(), shed float64, ok bool) {
	if a.cfg.MaxInflight < 0 {
		return func() {}, 1, true
	}
	n := a.inflight.Add(1)
	if n > int64(a.cfg.MaxInflight) {
		a.inflight.Add(-1)
		return nil, 0, false
	}
	return func() { a.inflight.Add(-1) }, a.shedFactor(n), true
}

// shedFactor maps the current inflight count onto the CandSize multiplier:
// 1 at or below ShedStart×MaxInflight, then three discrete steps down to
// ShedFloor as load approaches the hard cap. Steps — not a continuum — so
// a given load level yields a stable, explainable fidelity, and the
// response's cand_size field takes one of four values an operator can
// alert on.
func (a *admission) shedFactor(inflight int64) float64 {
	frac := float64(inflight) / float64(a.cfg.MaxInflight)
	if frac <= a.cfg.ShedStart {
		return 1
	}
	// Position within (ShedStart, 1], split into three equal bands.
	pos := (frac - a.cfg.ShedStart) / (1 - a.cfg.ShedStart)
	span := 1 - a.cfg.ShedFloor
	switch {
	case pos <= 1.0/3:
		return 1 - span/3 // e.g. 0.75 with the defaults
	case pos <= 2.0/3:
		return 1 - 2*span/3 // e.g. 0.50
	default:
		return a.cfg.ShedFloor // e.g. 0.25
	}
}

// Inflight returns the number of requests currently being served.
func (a *admission) Inflight() int64 { return a.inflight.Load() }

// tokenBucket is a classic leaky token bucket: tokens refill continuously
// at rate per second up to burst; each admitted query spends one.
type tokenBucket struct {
	mu     sync.Mutex
	rate   float64
	burst  float64
	tokens float64
	last   time.Time
}

func newTokenBucket(rate float64, burst int) *tokenBucket {
	if rate <= 0 {
		return nil // unlimited
	}
	return &tokenBucket{rate: rate, burst: float64(burst), tokens: float64(burst)}
}

// take spends n tokens if available. When they are not, it reports how
// long until they will be — the Retry-After a client should honor.
func (b *tokenBucket) take(now time.Time, n float64) (ok bool, wait time.Duration) {
	if b == nil {
		return true, 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.last.IsZero() {
		b.tokens = math.Min(b.burst, b.tokens+b.rate*now.Sub(b.last).Seconds())
	}
	b.last = now
	if b.tokens >= n {
		b.tokens -= n
		return true, 0
	}
	need := n - b.tokens
	return false, time.Duration(need / b.rate * float64(time.Second))
}
