package gateway

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strings"
	"time"

	"simcloud/internal/core"
)

// Tenant declares one tenant of the gateway: a display name (used in
// metrics labels and logs — never secret), the API key requests must
// present, and the tenant's own Searcher backend. The backend carries the
// tenant's secret key, so isolation is structural: a request can only ever
// reach the backend its API key maps to.
type Tenant struct {
	Name    string
	Key     string
	Backend core.Searcher
}

// Config assembles a Gateway.
type Config struct {
	Tenants   []Tenant
	Admission Admission
}

// tenant is the runtime state per tenant: the backend, the tenant's token
// bucket, and its metric counters.
type tenant struct {
	name    string
	backend core.Searcher
	bucket  *tokenBucket
	metrics tenantMetrics
}

// Gateway is the HTTP front end. It implements http.Handler; serve it with
// any http.Server. Routes:
//
//	POST /v1/search        one query            (auth required)
//	POST /v1/search/batch  many queries         (auth required)
//	GET  /v1/stats         unified stats, JSON  (auth required; own tenant)
//	GET  /metrics          Prometheus text      (open)
//	GET  /healthz          liveness             (open)
type Gateway struct {
	adm           *admission
	metrics       *metrics
	tenantsByKey  map[string]*tenant
	tenantsByName map[string]*tenant
	mux           *http.ServeMux
}

// New builds a Gateway from cfg. Tenant names and keys must be non-empty
// and unique.
func New(cfg Config) (*Gateway, error) {
	if len(cfg.Tenants) == 0 {
		return nil, errors.New("gateway: no tenants configured")
	}
	adm := newAdmission(cfg.Admission)
	g := &Gateway{
		adm:           adm,
		metrics:       newMetrics(),
		tenantsByKey:  make(map[string]*tenant, len(cfg.Tenants)),
		tenantsByName: make(map[string]*tenant, len(cfg.Tenants)),
	}
	for _, tc := range cfg.Tenants {
		if tc.Name == "" || tc.Key == "" {
			return nil, fmt.Errorf("gateway: tenant needs both a name and a key (got name=%q)", tc.Name)
		}
		if tc.Backend == nil {
			return nil, fmt.Errorf("gateway: tenant %q has no backend", tc.Name)
		}
		if _, dup := g.tenantsByName[tc.Name]; dup {
			return nil, fmt.Errorf("gateway: duplicate tenant name %q", tc.Name)
		}
		if _, dup := g.tenantsByKey[tc.Key]; dup {
			return nil, fmt.Errorf("gateway: duplicate API key (tenant %q)", tc.Name)
		}
		t := &tenant{
			name:    tc.Name,
			backend: tc.Backend,
			bucket:  newTokenBucket(adm.cfg.TenantQPS, adm.cfg.TenantBurst),
		}
		g.tenantsByName[tc.Name] = t
		g.tenantsByKey[tc.Key] = t
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/search", g.handleSearch)
	mux.HandleFunc("POST /v1/search/batch", g.handleBatch)
	mux.HandleFunc("GET /v1/stats", g.handleStats)
	mux.HandleFunc("GET /metrics", g.handleMetrics)
	mux.HandleFunc("GET /healthz", g.handleHealthz)
	g.mux = mux
	return g, nil
}

// ServeHTTP dispatches to the gateway's routes.
func (g *Gateway) ServeHTTP(w http.ResponseWriter, r *http.Request) { g.mux.ServeHTTP(w, r) }

// Close closes every tenant backend, returning the first error.
func (g *Gateway) Close() error {
	var first error
	for _, t := range g.tenantsByName {
		if err := t.backend.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// authenticate resolves the request's API key (Authorization: Bearer or
// X-API-Key) to its tenant. Unknown and missing keys are indistinguishable
// to the caller — both 401.
func (g *Gateway) authenticate(r *http.Request) *tenant {
	key := r.Header.Get("X-API-Key")
	if auth := r.Header.Get("Authorization"); key == "" && strings.HasPrefix(auth, "Bearer ") {
		key = strings.TrimPrefix(auth, "Bearer ")
	}
	if key == "" {
		return nil
	}
	return g.tenantsByKey[key]
}

// writeJSON encodes v with the given status and records the code on the
// tenant's counters (t may be nil before authentication succeeded).
func (g *Gateway) writeJSON(w http.ResponseWriter, t *tenant, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
	if t != nil {
		t.metrics.codes[codeSlot(code)].Add(1)
	}
}

func (g *Gateway) writeError(w http.ResponseWriter, t *tenant, code int, msg string) {
	g.writeJSON(w, t, code, ErrorResponse{Error: msg})
}

// retryAfterSeconds renders a wait as the integer-seconds Retry-After
// header value, rounding up so a client that honors it is never early.
func retryAfterSeconds(wait time.Duration) string {
	return fmt.Sprint(int(math.Ceil(wait.Seconds())))
}

// admit runs the ladder for a request costing n queries: the tenant's
// token bucket first (flood isolation), then the server-wide inflight
// gate. On admission it returns the release closure and the shed factor;
// on refusal it has already written the 429.
func (g *Gateway) admit(w http.ResponseWriter, t *tenant, n int) (release func(), shed float64, ok bool) {
	if ok, wait := t.bucket.take(time.Now(), float64(n)); !ok {
		t.metrics.rejectedRate.Add(1)
		w.Header().Set("Retry-After", retryAfterSeconds(wait))
		g.writeError(w, t, http.StatusTooManyRequests, "tenant rate limit exceeded")
		return nil, 0, false
	}
	release, shed, ok = g.adm.acquire()
	if !ok {
		t.metrics.rejectedLoad.Add(1)
		w.Header().Set("Retry-After", retryAfterSeconds(g.adm.cfg.RetryAfter))
		g.writeError(w, t, http.StatusTooManyRequests, "server at capacity")
		return nil, 0, false
	}
	return release, shed, true
}

// shedQuery applies the shed factor to one query: the approximate kinds
// get their CandSize (explicit or default) scaled down, floored at K so an
// answer always has K candidates to choose from. Range queries pass
// through untouched — their cost is radius-driven and their contract is
// exactness. It reports the effective CandSize and whether it degraded.
func shedQuery(q core.Query, shed float64) (core.Query, int, bool) {
	if shed >= 1 || (q.Kind != core.KindApproxKNN && q.Kind != core.KindKNN) {
		return q, q.CandSize, false
	}
	cand := q.CandSize
	if cand == 0 {
		cand = core.DefaultCandSize(q.K)
	}
	scaled := max(int(float64(cand)*shed), q.K)
	if scaled >= cand {
		return q, cand, false
	}
	q.CandSize = scaled
	return q, scaled, true
}

func (g *Gateway) handleSearch(w http.ResponseWriter, r *http.Request) {
	t := g.authenticate(r)
	if t == nil {
		g.writeError(w, nil, http.StatusUnauthorized, "missing or unknown API key")
		return
	}
	var req SearchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		g.writeError(w, t, http.StatusBadRequest, "malformed JSON: "+err.Error())
		return
	}
	q, err := req.toQuery()
	if err != nil {
		g.writeError(w, t, http.StatusBadRequest, err.Error())
		return
	}
	release, shed, ok := g.admit(w, t, 1)
	if !ok {
		return
	}
	defer release()

	q, cand, degraded := shedQuery(q, shed)
	start := time.Now()
	results, _, err := t.backend.Search(r.Context(), q)
	if err != nil {
		// Backend validation errors (bad K, bad radius, wrong dimension)
		// are the client's fault; anything else is the server's.
		code := http.StatusInternalServerError
		if core.IsQueryError(err) {
			code = http.StatusBadRequest
		}
		g.writeError(w, t, code, err.Error())
		return
	}
	g.metrics.latency.Observe(time.Since(start))
	t.metrics.queries.Add(1)
	if degraded {
		t.metrics.shed.Add(1)
	}
	g.writeJSON(w, t, http.StatusOK, SearchResponse{
		Results:  fromResults(results),
		CandSize: cand,
		Degraded: degraded,
	})
}

func (g *Gateway) handleBatch(w http.ResponseWriter, r *http.Request) {
	t := g.authenticate(r)
	if t == nil {
		g.writeError(w, nil, http.StatusUnauthorized, "missing or unknown API key")
		return
	}
	var req BatchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		g.writeError(w, t, http.StatusBadRequest, "malformed JSON: "+err.Error())
		return
	}
	if len(req.Queries) == 0 {
		g.writeError(w, t, http.StatusBadRequest, "empty batch")
		return
	}
	qs := make([]core.Query, len(req.Queries))
	for i, sr := range req.Queries {
		q, err := sr.toQuery()
		if err != nil {
			g.writeError(w, t, http.StatusBadRequest, fmt.Sprintf("query %d: %v", i, err))
			return
		}
		qs[i] = q
	}
	// A batch costs one token per query, and one admission slot — the
	// backend pipelines it over one connection, so inflight counts
	// connections' worth of work, not queries.
	release, shed, ok := g.admit(w, t, len(qs))
	if !ok {
		return
	}
	defer release()

	degraded := false
	for i := range qs {
		var d bool
		qs[i], _, d = shedQuery(qs[i], shed)
		degraded = degraded || d
	}
	start := time.Now()
	results, _, err := t.backend.SearchBatch(r.Context(), qs)
	if err != nil {
		code := http.StatusInternalServerError
		if core.IsQueryError(err) {
			code = http.StatusBadRequest
		}
		g.writeError(w, t, code, err.Error())
		return
	}
	g.metrics.latency.Observe(time.Since(start))
	t.metrics.queries.Add(int64(len(qs)))
	if degraded {
		t.metrics.shed.Add(1)
	}
	out := make([][]SearchResult, len(results))
	for i, rs := range results {
		out[i] = fromResults(rs)
	}
	g.writeJSON(w, t, http.StatusOK, BatchResponse{Results: out, Degraded: degraded})
}

// statsResponse is the JSON body of GET /v1/stats: the calling tenant's
// unified backend stats plus the gateway's admission snapshot.
type statsResponse struct {
	Tenant   string     `json:"tenant"`
	Backend  core.Stats `json:"backend"`
	Inflight int64      `json:"inflight"`
}

func (g *Gateway) handleStats(w http.ResponseWriter, r *http.Request) {
	t := g.authenticate(r)
	if t == nil {
		g.writeError(w, nil, http.StatusUnauthorized, "missing or unknown API key")
		return
	}
	g.writeJSON(w, t, http.StatusOK, statsResponse{
		Tenant:   t.name,
		Backend:  core.CollectStats(t.backend),
		Inflight: g.adm.Inflight(),
	})
}

func (g *Gateway) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	g.writePrometheus(w)
}

func (g *Gateway) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}
