package gateway

import (
	"math/rand/v2"

	"simcloud/internal/core"
	"simcloud/internal/dataset"
	"simcloud/internal/metric"
	"simcloud/internal/mindex"
	"simcloud/internal/pivot"
	"simcloud/internal/secret"
)

// DemoTenant builds one self-contained tenant: an in-process DirectClient
// over clustered data and pivots seeded per tenant, so different tenants
// hold different collections under different secret keys. It backs simgate's
// demo mode, simbench's self-hosted open-loop target, and the gateway tests
// — anywhere a real tenant backend is wanted without external setup.
func DemoTenant(name, apiKey string, seed uint64, n, dim, numPivots, maxLevel int) (Tenant, error) {
	ds := dataset.Clustered(seed, n, dim, 5, metric.L2{})
	rng := rand.New(rand.NewPCG(seed, 2012))
	pivots := pivot.SelectRandom(rng, ds.Dist, ds.Objects, numPivots)
	key, err := secret.Generate(pivots, secret.ModeGCM)
	if err != nil {
		return Tenant{}, err
	}
	cfg := mindex.Config{
		NumPivots:      numPivots,
		MaxLevel:       min(maxLevel, numPivots),
		BucketCapacity: 200,
		Storage:        mindex.StorageMemory,
		Ranking:        mindex.RankFootrule,
	}
	client, err := core.NewDirect(cfg, key, core.Options{})
	if err != nil {
		return Tenant{}, err
	}
	if _, err := client.Insert(ds.Objects); err != nil {
		client.Close()
		return Tenant{}, err
	}
	return Tenant{Name: name, Key: apiKey, Backend: client}, nil
}
