package cluster_test

// Deterministic fault-injection tests of the replicated cluster: WAL-backed
// nodes behind faultnet proxies, killed and restarted mid-run, with every
// answer compared byte-for-byte against a healthy single server. The fault
// schedule is seeded, so the whole suite is reproducible under -race.

import (
	"context"
	"fmt"
	"slices"
	"sync"
	"testing"
	"time"

	"simcloud"
	"simcloud/internal/cluster"
	"simcloud/internal/core"
	"simcloud/internal/engine"
	"simcloud/internal/faultnet"
	"simcloud/internal/server"
	"simcloud/internal/wal"
)

// startWALServer boots (or re-boots) an encrypted node whose entry store is
// recovered from the write-ahead log in dir: open the log, replay the
// surviving records into a fresh engine, attach the log for new mutations,
// and serve. On first boot the log is empty and this is a plain cold start.
func startWALServer(t *testing.T, cfg simcloud.Config, dir string) *server.Server {
	t.Helper()
	eng, err := engine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	l, recs, err := wal.Open(dir, wal.SyncNever)
	if err != nil {
		t.Fatal(err)
	}
	if err := wal.Replay(recs, eng); err != nil {
		t.Fatal(err)
	}
	srv := server.NewEncryptedWithEngine(eng)
	srv.AttachWAL(l)
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		srv.Close()
		l.Close()
	})
	return srv
}

// startProxy fronts a node with a fault-injecting proxy so the node can be
// killed and restarted on a fresh port while the coordinator keeps one
// stable address to re-dial.
func startFaultProxy(t *testing.T, backend string, sched faultnet.Schedule) *faultnet.Proxy {
	t.Helper()
	p, err := faultnet.Listen("127.0.0.1:0", backend, sched)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	return p
}

func resultsEqual(a, b []core.Result) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].ID != b[i].ID || a[i].Dist != b[i].Dist {
			return false
		}
	}
	return true
}

// TestReplicatedEquivalenceUnderFaults is the acceptance test: an R=2,
// 3-node cluster of WAL-backed servers behind seeded fault proxies is
// driven through node kills, WAL restarts, journal re-syncs and a network
// partition, and after (and during) every fault the cluster's answers to
// all four query kinds stay byte-identical to a healthy single server over
// the same logical collection.
func TestReplicatedEquivalenceUnderFaults(t *testing.T) {
	w := newWorld(t, 1500)
	ref := startServer(t, nodeConfig(false))
	refClient := dial(t, ref.Addr(), w.key)

	cfg := nodeConfig(true)
	const numNodes = 3
	dirs := make([]string, numNodes)
	srvs := make([]*server.Server, numNodes)
	proxies := make([]*faultnet.Proxy, numNodes)
	addrs := make([]string, numNodes)
	for i := range srvs {
		dirs[i] = t.TempDir()
		srvs[i] = startWALServer(t, cfg, dirs[i])
		proxies[i] = startFaultProxy(t, srvs[i].Addr(), faultnet.Seeded(42+int64(i)))
		addrs[i] = proxies[i].Addr()
	}
	coord, err := cluster.New(addrs, cluster.Options{Replicas: 2, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	if err := coord.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { coord.Close() })
	client := dial(t, coord.Addr(), w.key)

	queries := []int{3, 123, 456, 789, 1011, 1313}
	check := func(label string) {
		t.Helper()
		for _, qi := range queries {
			q := w.data.Objects[qi].Vec

			// The raw ranked candidate stream, element for element.
			want := approxCandidateIDs(t, ref.Addr(), w, q, 200)
			got := approxCandidateIDs(t, coord.Addr(), w, q, 200)
			if !slices.Equal(got, want) {
				t.Fatalf("%s: query %d: candidate list diverges from single server\n got %v\nwant %v",
					label, qi, got, want)
			}
			if got, want := firstCellIDs(t, coord.Addr(), w, q), firstCellIDs(t, ref.Addr(), w, q); !slices.Equal(got, want) {
				t.Fatalf("%s: query %d: first cell diverges", label, qi)
			}

			// All four refined query kinds through the unchanged client.
			wantRange, _, err := refClient.Range(q, 2.5)
			if err != nil {
				t.Fatal(err)
			}
			gotRange, _, err := client.Range(q, 2.5)
			if err != nil {
				t.Fatalf("%s: query %d: range: %v", label, qi, err)
			}
			if !slices.Equal(resultIDs(gotRange), resultIDs(wantRange)) {
				t.Fatalf("%s: query %d: range result diverges (%d vs %d ids)",
					label, qi, len(gotRange), len(wantRange))
			}
			wantKNN, _, err := refClient.KNN(q, 10, 200)
			if err != nil {
				t.Fatal(err)
			}
			gotKNN, _, err := client.KNN(q, 10, 200)
			if err != nil {
				t.Fatalf("%s: query %d: knn: %v", label, qi, err)
			}
			if !resultsEqual(gotKNN, wantKNN) {
				t.Fatalf("%s: query %d: knn diverges", label, qi)
			}
			wantApprox, _, err := refClient.ApproxKNN(q, 10, 200)
			if err != nil {
				t.Fatal(err)
			}
			gotApprox, _, err := client.ApproxKNN(q, 10, 200)
			if err != nil {
				t.Fatalf("%s: query %d: approx knn: %v", label, qi, err)
			}
			if !resultsEqual(gotApprox, wantApprox) {
				t.Fatalf("%s: query %d: approx knn diverges", label, qi)
			}
			wantCell, _, err := refClient.FirstCellKNN(q, 5)
			if err != nil {
				t.Fatal(err)
			}
			gotCell, _, err := client.FirstCellKNN(q, 5)
			if err != nil {
				t.Fatalf("%s: query %d: first-cell knn: %v", label, qi, err)
			}
			if !resultsEqual(gotCell, wantCell) {
				t.Fatalf("%s: query %d: first-cell knn diverges", label, qi)
			}
		}
	}
	insertBoth := func(objs []simcloud.Object) {
		t.Helper()
		if _, err := refClient.InsertBatch(objs); err != nil {
			t.Fatal(err)
		}
		if _, err := client.InsertBatch(objs); err != nil {
			t.Fatal(err)
		}
	}
	// The initial bulk goes through the streaming ingest pipeline on both
	// sides: the fault sweep then runs against state seeded the way a real
	// bulk load arrives (pipelined chunk frames, replicated fan-out), and
	// every later equivalence check doubles as proof that streamed and
	// batched ingest converge to the same served state.
	streamBoth := func(objs []simcloud.Object) {
		t.Helper()
		if _, err := refClient.InsertStream(objs); err != nil {
			t.Fatal(err)
		}
		if _, err := client.InsertStream(objs); err != nil {
			t.Fatal(err)
		}
	}
	deleteBoth := func(objs []simcloud.Object) {
		t.Helper()
		wantDel, _, err := refClient.DeleteBatch(objs)
		if err != nil {
			t.Fatal(err)
		}
		gotDel, _, err := client.DeleteBatch(objs)
		if err != nil {
			t.Fatal(err)
		}
		if gotDel != wantDel || gotDel != len(objs) {
			t.Fatalf("cluster deleted %d, single server %d, want %d", gotDel, wantDel, len(objs))
		}
	}

	first, second := w.data.Objects[:1000], w.data.Objects[1000:]
	streamBoth(first)
	check("healthy")

	// Kill node 1 mid-run, then keep writing: inserts and deletes owned by
	// the dead node must journal on the coordinator while their second
	// replica keeps the data served exactly.
	srvs[1].Close()
	insertBoth(second)
	deleteBoth(w.data.Objects[100:150])
	if live := coord.LiveNodes(); len(live) != 2 {
		t.Fatalf("after kill: %d live nodes, want 2 (%v)", len(live), live)
	}
	check("degraded")

	// Restart node 1 from its WAL on a fresh port and re-admit it: WAL
	// replay restores the pre-crash state, the journal replay delivers the
	// writes it missed.
	srvs[1] = startWALServer(t, cfg, dirs[1])
	proxies[1].SetBackend(srvs[1].Addr())
	if n := coord.ProbeDownNodes(context.Background()); n != 1 {
		t.Fatalf("probe re-admitted %d nodes, want 1", n)
	}
	if live := coord.LiveNodes(); len(live) != numNodes {
		t.Fatalf("after re-admission: %d live nodes, want %d (%v)", len(live), numNodes, live)
	}
	check("recovered")

	// Kill node 0: the cells it owned fail over to their backup — the node
	// that was just recovered from WAL + journal replay — so this check
	// proves the recovered state is byte-identical, not merely similar.
	srvs[0].Close()
	check("failover-to-recovered")
	if live := coord.LiveNodes(); len(live) != 2 {
		t.Fatalf("after second kill: %d live nodes, want 2 (%v)", len(live), live)
	}
	srvs[0] = startWALServer(t, cfg, dirs[0])
	proxies[0].SetBackend(srvs[0].Addr())
	if n := coord.ProbeDownNodes(context.Background()); n != 1 {
		t.Fatalf("probe re-admitted %d nodes, want 1", n)
	}
	check("healed")

	// Partition node 2 at the network (process stays up), write through the
	// outage, heal, re-admit: the journaled deletes replay on re-admission.
	proxies[2].Partition(true)
	deleteBoth(w.data.Objects[200:230])
	if live := coord.LiveNodes(); len(live) != 2 {
		t.Fatalf("during partition: %d live nodes, want 2 (%v)", len(live), live)
	}
	check("partitioned")
	proxies[2].Partition(false)
	if n := coord.ProbeDownNodes(context.Background()); n != 1 {
		t.Fatalf("probe re-admitted %d nodes after heal, want 1", n)
	}
	check("journal-replayed")

	// R=2 invariant: after every node is live and re-synced, the cluster
	// holds exactly two copies of each surviving entry.
	total := len(w.data.Objects) - 50 - 30
	sum := 0
	for _, s := range srvs {
		sum += s.Index().Size()
	}
	if sum != 2*total {
		t.Fatalf("nodes hold %d entries total, want %d (2 copies of %d)", sum, 2*total, total)
	}
}

// TestReprobeReadmitsNode covers the unreplicated (R=1) sticky-down fix:
// the background re-probe loop re-admits a restarted node without operator
// intervention, and the coordinator switches deletes to broadcast because
// placement epochs are now mixed.
func TestReprobeReadmitsNode(t *testing.T) {
	w := newWorld(t, 400)
	cfg := nodeConfig(true)
	dirs := []string{t.TempDir(), t.TempDir()}
	srvs := []*server.Server{
		startWALServer(t, cfg, dirs[0]),
		startWALServer(t, cfg, dirs[1]),
	}
	proxies := []*faultnet.Proxy{
		startFaultProxy(t, srvs[0].Addr(), faultnet.Clean()),
		startFaultProxy(t, srvs[1].Addr(), faultnet.Clean()),
	}
	coord, err := cluster.New([]string{proxies[0].Addr(), proxies[1].Addr()},
		cluster.Options{ReprobeInterval: 25 * time.Millisecond, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	if err := coord.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { coord.Close() })
	client := dial(t, coord.Addr(), w.key)

	first, second := w.data.Objects[:300], w.data.Objects[300:]
	if _, err := client.InsertBatch(first); err != nil {
		t.Fatal(err)
	}

	// Kill node 1; the next insert discovers the death and re-routes.
	srvs[1].Close()
	if _, err := client.InsertBatch(second); err != nil {
		t.Fatal(err)
	}
	if live := coord.LiveNodes(); len(live) != 1 {
		t.Fatalf("after kill: %d live nodes, want 1 (%v)", len(live), live)
	}

	// Restart from WAL behind the same proxy address; the background probe
	// loop must re-admit it without any call from here.
	srvs[1] = startWALServer(t, cfg, dirs[1])
	proxies[1].SetBackend(srvs[1].Addr())
	deadline := time.Now().Add(5 * time.Second)
	for len(coord.LiveNodes()) != 2 {
		if time.Now().After(deadline) {
			t.Fatal("background re-probe never re-admitted the restarted node")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Every entry is somewhere: pre-kill placement on node 1 survived via
	// the WAL, re-routed entries live on node 0.
	if got := srvs[0].Index().Size() + srvs[1].Index().Size(); got != len(w.data.Objects) {
		t.Fatalf("nodes hold %d entries, want %d", got, len(w.data.Objects))
	}

	// Placement is now mixed (mod-2 before the kill, mod-1 during it), so
	// deletes must broadcast even though both nodes are live again — refs
	// from both epochs must actually die.
	victims := append(append([]simcloud.Object{}, first[:20]...), second[:20]...)
	deleted, _, err := client.DeleteBatch(victims)
	if err != nil {
		t.Fatal(err)
	}
	if deleted != len(victims) {
		t.Fatalf("deleted %d of %d across placement epochs", deleted, len(victims))
	}
	res, _, err := client.ApproxKNN(w.data.Objects[250].Vec, 5, 200)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) == 0 {
		t.Fatal("no results after re-admission")
	}
}

// TestConcurrentQueriesDuringKill: with R=2, queries racing a node kill
// must neither error nor come back short — every cell always has a live
// replica, and the coordinator reassigns read ownership mid-flight. Run
// under -race in CI, this also exercises the journal/readmission locking.
func TestConcurrentQueriesDuringKill(t *testing.T) {
	w := newWorld(t, 1000)
	srvs := make([]*server.Server, 3)
	addrs := make([]string, 3)
	for i := range srvs {
		srvs[i] = startServer(t, nodeConfig(true))
		addrs[i] = srvs[i].Addr()
	}
	coord, err := cluster.New(addrs, cluster.Options{Replicas: 2, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	if err := coord.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { coord.Close() })
	client := dial(t, coord.Addr(), w.key)
	if _, err := client.InsertBatch(w.data.Objects); err != nil {
		t.Fatal(err)
	}

	const workers = 8
	const perWorker = 30
	const k = 10
	errc := make(chan error, workers*perWorker)
	var wg sync.WaitGroup
	for wkr := range workers {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range perWorker {
				q := w.data.Objects[(wkr*131+i*17)%len(w.data.Objects)].Vec
				res, _, err := client.ApproxKNN(q, k, 200)
				if err != nil {
					errc <- err
					return
				}
				if len(res) != k {
					errc <- fmt.Errorf("worker %d query %d: %d results, want %d", wkr, i, len(res), k)
					return
				}
			}
		}()
	}
	// Kill a node while the workers are mid-flight.
	time.Sleep(20 * time.Millisecond)
	srvs[1].Close()
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Errorf("query during kill: %v", err)
	}
	if live := coord.LiveNodes(); len(live) != 2 {
		t.Fatalf("after kill: %d live nodes, want 2 (%v)", len(live), live)
	}
}
